package main

// The persistent-store subcommands: record a corpus of closed-loop
// runs into an on-disk campaign store, replay the archived traces
// through the offline evaluator, and diff a replay against recorded
// baselines (the regression check).

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/trace"
)

// engineOptions assembles engine options for a run-campaign
// subcommand, opening the persistent store when a directory is given.
// record is the trace recording level for the engine's runs; summary
// consumers (mrf, rate, campaign) pass trace.LevelSummary to skip row
// materialization, and store-recorded runs stay full regardless (the
// engine upgrades persistable jobs). The returned closer is non-nil
// exactly when a store was opened.
func engineOptions(storeDir string, workers int, record trace.Level) (engine.Options, func(), error) {
	opts := engine.Options{Workers: workers, Record: record}
	if storeDir == "" {
		return opts, func() {}, nil
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return opts, nil, err
	}
	opts.Store = st
	return opts, func() { st.Close() }, nil
}

// cmdStore dispatches the store-maintenance subcommands.
func cmdStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: zhuyi store <migrate|index> [flags]")
	}
	switch args[0] {
	case "migrate":
		return cmdStoreMigrate(args[1:])
	case "index":
		return cmdStoreIndex(args[1:])
	default:
		return fmt.Errorf("unknown store subcommand %q (migrate, index)", args[0])
	}
}

// cmdStoreMigrate rewrites every archived trace object to the target
// on-disk format in place: each object is decoded, verified against
// its content hash, rewritten through a temp file, fsynced, and
// renamed — a crash mid-migration leaves every object readable in one
// format or the other, never half-written.
func cmdStoreMigrate(args []string) error {
	fs := flag.NewFlagSet("store migrate", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (required)")
	to := fs.String("to", string(store.FormatZYT), "target object format: zyt (binary columnar) or jsonl (legacy gzip JSONL)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("store migrate: -store is required")
	}
	target, err := store.ParseFormat(*to)
	if err != nil {
		return err
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	stats, err := st.Migrate(target)
	if err != nil {
		return err
	}
	fmt.Printf("migrated %s to %s: %d objects scanned, %d rewritten, %d already current (%d -> %d bytes)\n",
		*dir, target, stats.Scanned, stats.Rewritten, stats.Skipped, stats.BytesIn, stats.BytesOut)
	return nil
}

// cmdStoreIndex rebuilds the manifest sidecar index so the next Open
// skips the full JSONL parse.
func cmdStoreIndex(args []string) error {
	fs := flag.NewFlagSet("store index", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("store index: -store is required")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.RebuildSidecar(); err != nil {
		return err
	}
	fmt.Printf("sidecar index rebuilt: %d entries in %s\n", st.Len(), *dir)
	return nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (required)")
	names := fs.String("scenarios", "", "comma-separated scenario names (default: by -tags)")
	tags := fs.String("tags", scenario.TagTable1, "registry tags selecting scenarios when -scenarios is empty")
	fprs := fs.String("fprs", "", "comma-separated rates (default: the Table-1 grid)")
	seeds := fs.Int("seeds", 10, "seeded runs per (scenario, rate) point")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	baselines := fs.Bool("baselines", true, "refresh regression baselines for the recorded points")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("record: -store is required")
	}
	// Zero seeds would record an empty campaign and exit 0.
	if *seeds <= 0 {
		return fmt.Errorf("record: -seeds must be positive, got %d", *seeds)
	}

	scs, err := resolveScenarios(*names, *tags)
	if err != nil {
		return err
	}
	grid, err := parseFPRs(*fprs)
	if err != nil {
		return err
	}

	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	eng := engine.New(engine.Options{Workers: *workers, Store: st})
	defer eng.Close()

	var jobs []engine.Job
	for _, sc := range scs {
		for _, fpr := range grid {
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				jobs = append(jobs, engine.Job{Scenario: sc, FPR: fpr, Seed: seed})
			}
		}
	}
	batch, err := eng.RunBatch(context.Background(), jobs)
	if err != nil {
		return err
	}
	s := batch.Stats
	fmt.Printf("recorded %d points in %s: %d fresh, %d disk hits, %d memory hits (%d scenarios x %d rates x %d seeds)\n",
		s.Jobs, s.Wall.Round(1e6), s.Executed, s.DiskHits, s.CacheHits, len(scs), len(grid), *seeds)

	if !*baselines {
		return nil
	}
	// Refresh baselines only for the scenarios this invocation
	// recorded: an incremental record must not silently re-baseline the
	// rest of the store (that would erase exactly the divergences the
	// harness exists to catch). Re-run record over everything — or
	// delete baselines.jsonl — to re-baseline deliberately.
	recorded := make([]string, len(scs))
	for i, sc := range scs {
		recorded[i] = sc.Name
	}
	rep, err := replay.Run(context.Background(), st, replay.Options{Workers: *workers, Scenarios: recorded})
	if err != nil {
		return err
	}
	if err := replay.WriteBaselines(st, rep.Summaries); err != nil {
		return err
	}
	fmt.Printf("baselines refreshed: %d runs (%d scenarios) -> %s\n",
		len(rep.Summaries), len(recorded), replay.BaselinePath(st))
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (required)")
	names := fs.String("scenarios", "", "comma-separated scenario names (default: every archived run)")
	every := fs.Float64("every", 0.1, "offline evaluation period, s")
	workers := fs.Int("workers", 0, "concurrent replays (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("replay: -store is required")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	rep, err := replay.Run(context.Background(), st, replay.Options{
		EvalEvery: *every, Workers: *workers, Scenarios: splitList(*names),
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %5s %5s %6s %9s %8s %8s %7s\n",
		"Scenario", "FPR", "seed", "rows", "collided", "min-gap", "est-max", "alarms")
	for _, s := range rep.Summaries {
		gap := "+Inf"
		if !s.MinGapInfinite {
			gap = fmt.Sprintf("%.2f", s.MinGap)
		}
		collided := "no"
		if s.Collided {
			collided = fmt.Sprintf("t=%.2f", s.CollisionTime)
		}
		fmt.Printf("%-28s %5g %5d %6d %9s %8s %8.2f %7d\n",
			s.Scenario, s.FPR, s.Seed, s.Rows, collided, gap, s.MaxEstFPR, s.Alarms)
	}
	fmt.Printf("# replayed %d archived runs in %s (no simulation)\n", len(rep.Summaries), rep.Wall.Round(1e6))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (required)")
	every := fs.Float64("every", 0.1, "offline evaluation period, s (must match the recorded baselines)")
	workers := fs.Int("workers", 0, "concurrent replays (0 = GOMAXPROCS)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("diff: -store is required")
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	base, err := replay.LoadBaselines(st)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("diff: no baselines in %s (run 'zhuyi record' first)", *dir)
		}
		return err
	}
	rep, err := replay.Run(context.Background(), st, replay.Options{EvalEvery: *every, Workers: *workers})
	if err != nil {
		return err
	}
	divs := replay.Diff(base, rep.Summaries)
	if len(divs) == 0 {
		fmt.Printf("zero divergences: %d archived runs replayed against %d baselines in %s\n",
			len(rep.Summaries), len(base), rep.Wall.Round(1e6))
		return nil
	}
	for _, d := range divs {
		fmt.Println(d.String())
	}
	return fmt.Errorf("diff: %d divergence(s) across %d archived runs", len(divs), len(rep.Summaries))
}

// resolveScenarios returns explicit names, or the registry selection
// for the tags.
func resolveScenarios(names, tags string) ([]scenario.Scenario, error) {
	if names != "" {
		var out []scenario.Scenario
		for _, name := range splitList(names) {
			sc, ok := scenario.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q (try 'zhuyi scenarios list')", name)
			}
			out = append(out, sc)
		}
		return out, nil
	}
	out := scenario.Default().List(splitList(tags)...)
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios match tags %q", tags)
	}
	return out, nil
}

// parseFPRs parses a comma-separated rate list; empty selects the
// Table-1 grid.
func parseFPRs(s string) ([]float64, error) {
	if s == "" {
		return metrics.DefaultFPRGrid(), nil
	}
	var out []float64
	for _, item := range splitList(s) {
		f, err := strconv.ParseFloat(item, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad rate %q in -fprs", item)
		}
		out = append(out, f)
	}
	return out, nil
}
