// Command zhuyi runs the Zhuyi model from the command line:
//
//	zhuyi estimate -trace trace.jsonl        offline per-camera FPR series from a recorded trace
//	zhuyi sweep -sn 30                       Figure-8 velocity sensitivity grid
//	zhuyi demand -actors 2 -trajectories 1   the model's own compute demand (§4.2)
//	zhuyi mrf -scenario cut-out -seeds 10    minimum required FPR search
//	zhuyi rate -scenario cut-out -fpr 5      collision rate at a fixed rate
//
// The run-campaign subcommands (mrf, rate) take -workers to size the
// engine's simulation pool (default: GOMAXPROCS).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "demand":
		err = cmdDemand(os.Args[2:])
	case "mrf":
		err = cmdMRF(os.Args[2:])
	case "rate":
		err = cmdRate(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zhuyi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: zhuyi <estimate|sweep|demand|mrf|rate> [flags]")
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	path := fs.String("trace", "", "JSONL trace recorded by simrun")
	every := fs.Float64("every", 0.1, "evaluation period, s")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("estimate: -trace is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(tr, core.OfflineOptions{EvalEvery: *every})
	if err != nil {
		return err
	}
	fmt.Printf("# scenario %s run at %g FPR (%d rows)\n", tr.Meta.Scenario, tr.Meta.FPR, tr.Len())
	fmt.Printf("%8s", "t(s)")
	for _, cam := range off.Cameras {
		fmt.Printf(" %10s", cam)
	}
	fmt.Println(" (latency ms)")
	for _, pt := range off.Points {
		fmt.Printf("%8.2f", pt.Time)
		for _, cam := range off.Cameras {
			fmt.Printf(" %10.0f", pt.Latency[cam]*1000)
		}
		fmt.Println()
	}
	fmt.Printf("# max estimated FPR: %.2f\n", off.MaxFPR())
	for cam, f := range off.MaxCameraFPR() {
		fmt.Printf("#   %s: %.2f\n", cam, f)
	}
	fmt.Printf("# max sum FPR (analyzed cameras): %.2f (fraction of 3x30: %.2f)\n",
		off.MaxSumFPR(), off.MaxSumFPR()/90)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	sn := fs.Float64("sn", 30, "fixed tolerable distance, m (paper: 30 and 100)")
	fs.Parse(args)
	res := experiments.Figure8(*sn)
	experiments.WriteSweep(os.Stdout, res)
	sum := experiments.Summarize(res)
	fmt.Printf("# feasible %d, 30+ %d, unavoidable %d; max FPR %d (streets <=25mph: %d)\n",
		sum.Feasible, sum.ThirtyPlus, sum.Unavoidable, sum.MaxFPR, sum.StreetMaxFPR)
	return nil
}

func cmdDemand(args []string) error {
	fs := flag.NewFlagSet("demand", flag.ExitOnError)
	actors := fs.Int("actors", 2, "number of surrounding actors |A|")
	trajs := fs.Int("trajectories", 1, "predicted trajectories per actor |T|")
	gops := fs.Float64("gops", 10, "processor throughput, GOPS")
	fs.Parse(args)
	d := core.NewDemand(*actors, *trajs, core.DefaultParams())
	fmt.Printf("ops per Zhuyi evaluation: %d (|A|=%d x |T|=%d x M=%d x L=%d x C=%d)\n",
		d.Ops(), d.Actors, d.Trajectories, d.M, d.L, d.OpsPerIter)
	fmt.Printf("execution on %.0f GOPS: %.3f ms\n", *gops, d.ExecutionSeconds(*gops*1e9)*1000)
	return nil
}

func cmdMRF(args []string) error {
	fs := flag.NewFlagSet("mrf", flag.ExitOnError)
	name := fs.String("scenario", scenario.CutOut, "scenario name")
	seeds := fs.Int("seeds", 10, "seeded runs per rate")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	fs.Parse(args)
	sc, ok := scenario.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", *name)
	}
	eng := engine.New(engine.Options{Workers: *workers})
	m, err := metrics.FindMRFContext(context.Background(), eng, sc, metrics.DefaultFPRGrid(), *seeds)
	if err != nil {
		return err
	}
	fmt.Printf("%s: MRF = %s (cameras: %v, %d runs on %d workers)\n",
		sc.Name, m.String(), sensor.AnalyzedCameras(), m.Runs, eng.Workers())
	for _, f := range metrics.DefaultFPRGrid() {
		if n, ok := m.Collisions[f]; ok {
			fmt.Printf("  FPR %4g: %d/%d collisions\n", f, n, m.Seeds)
		} else {
			fmt.Printf("  FPR %4g: skipped (below a colliding rate)\n", f)
		}
	}
	return nil
}

func cmdRate(args []string) error {
	fs := flag.NewFlagSet("rate", flag.ExitOnError)
	name := fs.String("scenario", scenario.CutOut, "scenario name")
	fpr := fs.Float64("fpr", 5, "uniform per-camera frame processing rate")
	runs := fs.Int("runs", 10, "seeded runs")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	fs.Parse(args)
	sc, ok := scenario.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", *name)
	}
	eng := engine.New(engine.Options{Workers: *workers})
	rate, err := metrics.CollisionRateContext(context.Background(), eng, sc, *fpr, *runs)
	if err != nil {
		return err
	}
	fmt.Printf("%s @ %g FPR: collision rate %.2f (%d runs on %d workers)\n",
		sc.Name, *fpr, rate, *runs, eng.Workers())
	return nil
}
