// Command zhuyi runs the Zhuyi model from the command line:
//
//	zhuyi estimate -trace trace.jsonl        offline per-camera FPR series from a recorded trace
//	zhuyi sweep -sn 30                       Figure-8 velocity sensitivity grid
//	zhuyi demand -actors 2 -trajectories 1   the model's own compute demand (§4.2)
//	zhuyi mrf -scenario cut-out -seeds 10    minimum required FPR search
//	zhuyi rate -scenario cut-out -fpr 5      collision rate at a fixed rate
//	zhuyi scenarios list -tags table1        registered scenario catalog
//	zhuyi scenarios describe -scenario X     one scenario's spec and compiled geometry
//	zhuyi scenarios generate -n 50 -seed 1   procedural scenario corpus (validated)
//	zhuyi scenarios search -seed 1 -top 20   evolve families toward MRF-hard corpora
//	zhuyi record -store DIR -tags table1     archive a corpus of runs into a persistent store
//	zhuyi replay -store DIR                  re-evaluate archived traces (no simulation)
//	zhuyi diff -store DIR                    diff a replay against recorded baselines
//	zhuyi store migrate -store DIR -to zyt   rewrite archived trace objects between formats
//	zhuyi store index -store DIR             rebuild the manifest sidecar index
//	zhuyi campaign -fprs 5,30 -seeds 3       batch of seeded runs, local or -server URL
//	zhuyi serve -addr :8080 -store DIR       the HTTP campaign service (see docs/api.md)
//
// The run-campaign subcommands (mrf, rate, record, campaign, serve)
// take -workers to size the engine's simulation pool (default:
// GOMAXPROCS). Scenario names resolve through the registry, so
// mrf/rate also accept ODD variants (e.g. truck-cut-out) beyond the
// paper's nine. record archives every fresh run into a
// content-addressed store and refreshes the replay baselines; diff
// exits non-zero when any archived run's replay diverges from its
// baseline. serve exposes the same engine+store stack over HTTP with
// graceful drain on SIGTERM; campaign -server runs the batch through
// a remote serve instance via the typed Go client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "demand":
		err = cmdDemand(os.Args[2:])
	case "mrf":
		err = cmdMRF(os.Args[2:])
	case "rate":
		err = cmdRate(os.Args[2:])
	case "scenarios":
		err = cmdScenarios(os.Args[2:])
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zhuyi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: zhuyi <estimate|sweep|demand|mrf|rate|scenarios|record|replay|diff|store|campaign|serve> [flags]")
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	path := fs.String("trace", "", "JSONL trace recorded by simrun")
	every := fs.Float64("every", 0.1, "evaluation period, s")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("estimate: -trace is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(tr, core.OfflineOptions{EvalEvery: *every})
	if err != nil {
		return err
	}
	fmt.Printf("# scenario %s run at %g FPR (%d rows)\n", tr.Meta.Scenario, tr.Meta.FPR, tr.Len())
	fmt.Printf("%8s", "t(s)")
	for _, cam := range off.Cameras {
		fmt.Printf(" %10s", cam)
	}
	fmt.Println(" (latency ms)")
	for _, pt := range off.Points {
		fmt.Printf("%8.2f", pt.Time)
		for _, cam := range off.Cameras {
			fmt.Printf(" %10.0f", pt.Latency[cam]*1000)
		}
		fmt.Println()
	}
	fmt.Printf("# max estimated FPR: %.2f\n", off.MaxFPR())
	for cam, f := range off.MaxCameraFPR() {
		fmt.Printf("#   %s: %.2f\n", cam, f)
	}
	fmt.Printf("# max sum FPR (analyzed cameras): %.2f (fraction of 3x30: %.2f)\n",
		off.MaxSumFPR(), off.MaxSumFPR()/90)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	sn := fs.Float64("sn", 30, "fixed tolerable distance, m (paper: 30 and 100)")
	fs.Parse(args)
	res := experiments.Figure8(*sn)
	experiments.WriteSweep(os.Stdout, res)
	sum := experiments.Summarize(res)
	fmt.Printf("# feasible %d, 30+ %d, unavoidable %d; max FPR %d (streets <=25mph: %d)\n",
		sum.Feasible, sum.ThirtyPlus, sum.Unavoidable, sum.MaxFPR, sum.StreetMaxFPR)
	return nil
}

func cmdDemand(args []string) error {
	fs := flag.NewFlagSet("demand", flag.ExitOnError)
	actors := fs.Int("actors", 2, "number of surrounding actors |A|")
	trajs := fs.Int("trajectories", 1, "predicted trajectories per actor |T|")
	gops := fs.Float64("gops", 10, "processor throughput, GOPS")
	fs.Parse(args)
	d := core.NewDemand(*actors, *trajs, core.DefaultParams())
	fmt.Printf("ops per Zhuyi evaluation: %d (|A|=%d x |T|=%d x M=%d x L=%d x C=%d)\n",
		d.Ops(), d.Actors, d.Trajectories, d.M, d.L, d.OpsPerIter)
	fmt.Printf("execution on %.0f GOPS: %.3f ms\n", *gops, d.ExecutionSeconds(*gops*1e9)*1000)
	return nil
}

func cmdMRF(args []string) error {
	fs := flag.NewFlagSet("mrf", flag.ExitOnError)
	name := fs.String("scenario", scenario.CutOut, "scenario name (see 'zhuyi scenarios list')")
	seeds := fs.Int("seeds", 10, "seeded runs per rate")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	storeDir := fs.String("store", "", "persistent run store: archived points answer from the manifest, fresh runs are archived")
	fs.Parse(args)
	sc, ok := scenario.Lookup(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try 'zhuyi scenarios list')", *name)
	}
	// The search reads nothing but collision outcomes, so runs record
	// at summary level (store-archived points stay full).
	opts, closeStore, err := engineOptions(*storeDir, *workers, trace.LevelSummary)
	if err != nil {
		return err
	}
	defer closeStore()
	eng := engine.New(opts)
	m, err := metrics.FindMRFContext(context.Background(), eng, sc, metrics.DefaultFPRGrid(), *seeds)
	if err != nil {
		return err
	}
	fmt.Printf("%s: MRF = %s (cameras: %v, %d runs on %d workers)\n",
		sc.Name, m.String(), sensor.AnalyzedCameras(), m.Runs, eng.Workers())
	for _, f := range metrics.DefaultFPRGrid() {
		if n, ok := m.Collisions[f]; ok {
			fmt.Printf("  FPR %4g: %d/%d collisions\n", f, n, m.Seeds)
		} else {
			fmt.Printf("  FPR %4g: skipped (below a colliding rate)\n", f)
		}
	}
	return nil
}

func cmdRate(args []string) error {
	fs := flag.NewFlagSet("rate", flag.ExitOnError)
	name := fs.String("scenario", scenario.CutOut, "scenario name (see 'zhuyi scenarios list')")
	fpr := fs.Float64("fpr", 5, "uniform per-camera frame processing rate")
	runs := fs.Int("runs", 10, "seeded runs")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	storeDir := fs.String("store", "", "persistent run store: archived points answer from the manifest, fresh runs are archived")
	fs.Parse(args)
	sc, ok := scenario.Lookup(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try 'zhuyi scenarios list')", *name)
	}
	opts, closeStore, err := engineOptions(*storeDir, *workers, trace.LevelSummary)
	if err != nil {
		return err
	}
	defer closeStore()
	eng := engine.New(opts)
	rate, err := metrics.CollisionRateContext(context.Background(), eng, sc, *fpr, *runs)
	if err != nil {
		return err
	}
	fmt.Printf("%s @ %g FPR: collision rate %.2f (%d runs on %d workers)\n",
		sc.Name, *fpr, rate, *runs, eng.Workers())
	return nil
}

func cmdScenarios(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: zhuyi scenarios <list|describe|generate|search> [flags]")
	}
	switch args[0] {
	case "list":
		return cmdScenariosList(args[1:])
	case "describe":
		return cmdScenariosDescribe(args[1:])
	case "generate":
		return cmdScenariosGenerate(args[1:])
	case "search":
		return cmdScenariosSearch(args[1:])
	default:
		return fmt.Errorf("unknown scenarios subcommand %q (list, describe, generate, search)", args[0])
	}
}

func cmdScenariosList(args []string) error {
	fs := flag.NewFlagSet("scenarios list", flag.ExitOnError)
	tags := fs.String("tags", "", "comma-separated tags to filter by (e.g. table1, variant)")
	fs.Parse(args)
	entries := scenario.Default().Entries(splitList(*tags)...)
	if len(entries) == 0 {
		return fmt.Errorf("no scenarios match tags %q", *tags)
	}
	fmt.Printf("%-28s %5s %-18s %s\n", "Name", "mph", "Tags", "Description")
	for _, e := range entries {
		fmt.Printf("%-28s %5.1f %-18s %s\n",
			e.Scenario.Name, e.Scenario.EgoSpeedMPH, strings.Join(e.Tags, ","), e.Scenario.Description)
	}
	return nil
}

// splitList parses a comma-separated flag value, trimming whitespace.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, item := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(item))
	}
	return out
}

func cmdScenariosDescribe(args []string) error {
	fs := flag.NewFlagSet("scenarios describe", flag.ExitOnError)
	name := fs.String("scenario", scenario.CutOut, "scenario name")
	fpr := fs.Float64("fpr", 30, "rate for the compiled-geometry preview")
	seed := fs.Int64("seed", 1, "jitter seed for the compiled-geometry preview")
	fs.Parse(args)
	if *fpr <= 0 {
		return fmt.Errorf("scenarios describe: -fpr must be positive, got %g", *fpr)
	}
	sc, ok := scenario.Lookup(*name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try 'zhuyi scenarios list')", *name)
	}
	e, _ := scenario.Default().Get(sc.Name)
	fmt.Printf("%s — %s\n", sc.Name, sc.Description)
	fmt.Printf("  ego: %g mph, activity front=%v right=%v left=%v, tags: %s\n",
		sc.EgoSpeedMPH, sc.FrontActivity, sc.RightActivity, sc.LeftActivity, strings.Join(e.Tags, ","))
	if e.Spec != nil {
		sp := *e.Spec
		road := fmt.Sprintf("straight, %.0f m", sp.Road.Length)
		if sp.Road.Curved {
			road = fmt.Sprintf("curved, lead-in %.0f m, radius %.0f m, arc %.0f m",
				sp.Road.LeadIn, sp.Road.Radius, sp.Road.ArcLen)
		}
		fmt.Printf("  spec: %d-lane road (%s), ego lane %d, %.0f s, %d actors\n",
			sp.Road.Lanes, road, sp.EgoLane, sp.Duration, len(sp.Actors))
	}
	cfg := sc.Build(*fpr, *seed)
	fmt.Printf("  compiled at fpr %g seed %d:\n", *fpr, *seed)
	for _, a := range cfg.Actors {
		stages := 0
		if a.Script != nil {
			stages = len(a.Script.Stages)
		}
		fmt.Printf("    %-14s s=%7.2f m  d=%6.2f m  v=%5.2f m/s  stages=%d\n",
			a.ID, a.Init.S, a.Init.D, a.Init.Speed, stages)
	}
	return nil
}

func cmdScenariosGenerate(args []string) error {
	fs := flag.NewFlagSet("scenarios generate", flag.ExitOnError)
	n := fs.Int("n", 20, "number of scenarios to generate")
	seed := fs.Int64("seed", 1, "generator seed (same seed reproduces the corpus)")
	families := fs.String("families", "", "comma-separated families (default: all of "+familyList()+")")
	checkSeeds := fs.Int64("check-seeds", 3, "jitter seeds to compile-check each spec with")
	fs.Parse(args)

	// An empty corpus is never what the caller meant: fail loudly
	// instead of printing a header and exiting 0.
	if *n <= 0 {
		return fmt.Errorf("scenarios generate: -n must be positive, got %d", *n)
	}
	if *checkSeeds < 0 {
		return fmt.Errorf("scenarios generate: -check-seeds must be non-negative, got %d", *checkSeeds)
	}
	var fams []scenario.Family
	for _, f := range splitList(*families) {
		fams = append(fams, scenario.Family(f))
	}
	opt := scenario.GenOptions{Seed: *seed, Families: fams}
	if err := opt.Validate(); err != nil {
		return err
	}
	specs := scenario.NewGenerator(opt).Generate(*n)

	names := make(map[string]bool, len(specs))
	fmt.Printf("%-24s %5s %s\n", "Name", "mph", "Description")
	for _, sp := range specs {
		if names[sp.Name] {
			return fmt.Errorf("generator produced duplicate name %q", sp.Name)
		}
		names[sp.Name] = true
		if err := sp.Validate(); err != nil {
			return fmt.Errorf("generated spec invalid: %w", err)
		}
		for s := int64(1); s <= *checkSeeds; s++ {
			if err := sim.ValidateConfig(sp.Compile(30, s)); err != nil {
				return fmt.Errorf("%s seed %d: compiled config invalid: %w", sp.Name, s, err)
			}
		}
		fmt.Printf("%-24s %5.0f %s\n", sp.Name, sp.EgoSpeedMPH, sp.Description)
	}
	fmt.Printf("# %d distinct valid scenarios (generator seed %d)\n", len(names), *seed)
	return nil
}

func familyList() string {
	var out []string
	for _, f := range scenario.Families() {
		out = append(out, string(f))
	}
	return strings.Join(out, ",")
}
