package main

// Flag-validation wall for the corpus-producing subcommands: counts
// that would silently produce empty output (zero/negative corpora,
// seeds, budgets) must be rejected with an error, not exit 0.

import (
	"strings"
	"testing"
)

func wantErr(t *testing.T, name string, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: accepted, want error containing %q", name, frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("%s: error %q does not mention %q", name, err, frag)
	}
}

func TestScenariosGenerateRejectsZeroCount(t *testing.T) {
	wantErr(t, "generate -n 0", cmdScenariosGenerate([]string{"-n", "0"}), "-n must be positive")
	wantErr(t, "generate -n -3", cmdScenariosGenerate([]string{"-n", "-3"}), "-n must be positive")
	wantErr(t, "generate -check-seeds -1",
		cmdScenariosGenerate([]string{"-n", "1", "-check-seeds", "-1"}), "-check-seeds must be non-negative")
}

func TestScenariosDescribeRejectsZeroRate(t *testing.T) {
	wantErr(t, "describe -fpr 0", cmdScenariosDescribe([]string{"-fpr", "0"}), "-fpr must be positive")
}

func TestScenariosSearchRejectsZeroBudgets(t *testing.T) {
	wantErr(t, "search -generations 0",
		cmdScenariosSearch([]string{"-generations", "0"}), "-generations must be positive")
	wantErr(t, "search -population 0",
		cmdScenariosSearch([]string{"-population", "0"}), "-population must be positive")
	wantErr(t, "search -mrf-seeds 0",
		cmdScenariosSearch([]string{"-mrf-seeds", "0"}), "-mrf-seeds must be positive")
	wantErr(t, "search -top -1",
		cmdScenariosSearch([]string{"-top", "-1"}), "-top must be non-negative")
	wantErr(t, "search bad family",
		cmdScenariosSearch([]string{"-families", "no-such-family"}), "unknown family")
	wantErr(t, "search bad rate",
		cmdScenariosSearch([]string{"-fprs", "0"}), "bad rate")
}

func TestCampaignRejectsZeroSeeds(t *testing.T) {
	wantErr(t, "campaign -seeds 0", cmdCampaign([]string{"-seeds", "0"}), "-seeds must be positive")
	wantErr(t, "record -seeds 0",
		cmdRecord([]string{"-store", t.TempDir(), "-seeds", "0"}), "-seeds must be positive")
}
