package main

// The campaign service subcommand: `zhuyi serve` binds the HTTP API of
// internal/server to a listener, with graceful drain on SIGINT/SIGTERM
// — in-flight campaign streams finish (up to a drain timeout) before
// the process exits, and the engine's lifetime stats are printed on
// the way out.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/trace"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
	storeDir := fs.String("store", "", "persistent run store: archived points answer from disk, fresh runs are archived")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight requests")
	fs.Parse(args)

	// Campaign responses stream summaries, never traces, so the service
	// engine records at summary level; with a store attached the engine
	// upgrades archivable points back to full.
	opts, closeStore, err := engineOptions(*storeDir, *workers, trace.LevelSummary)
	if err != nil {
		return err
	}
	defer closeStore()
	eng := engine.New(opts)
	defer eng.Close()
	srv := server.New(server.Options{Engine: eng})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	storeNote := "none"
	if *storeDir != "" {
		storeNote = *storeDir
	}
	// The "listening on" line is machine-read by the CI server smoke to
	// discover the bound port; keep its shape stable.
	fmt.Printf("zhuyi serve: listening on http://%s (workers %d, store %s)\n",
		ln.Addr(), eng.Workers(), storeNote)

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight campaign
		// streams complete, then close.
		stop()
		fmt.Println("zhuyi serve: shutting down, draining in-flight requests")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
	}
	st := eng.Stats()
	fmt.Printf("zhuyi serve: done — %d fresh simulations, %d memory hits, %d disk hits, %d archived\n",
		st.Executed, st.CacheHits, st.DiskHits, st.Archived)
	return nil
}
