package main

// The campaign service subcommand: `zhuyi serve` binds the HTTP API of
// internal/server to a listener, with graceful drain on SIGINT/SIGTERM
// — in-flight campaign streams finish (up to a drain timeout) before
// the process exits, and the engine's lifetime stats are printed on
// the way out.
//
// With -coordinator, the same subcommand binds the fabric tier instead
// (internal/fabric): campaign points shard across the -replicas worker
// set by consistent hashing, warm queries answer from the shared
// -store manifest, and dead replicas are retried around the ring.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
	storeDir := fs.String("store", "", "persistent run store: archived points answer from disk, fresh runs are archived")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight requests")
	coordinator := fs.Bool("coordinator", false, "run as a fabric coordinator sharding campaigns across -replicas instead of simulating locally")
	replicas := fs.String("replicas", "", "coordinator mode: comma-separated worker base URLs (e.g. http://10.0.0.1:8080,http://10.0.0.2:8080)")
	stall := fs.Duration("stall-timeout", 60*time.Second, "coordinator mode: per-point completion watchdog; a replica streaming nothing for this long is retried around the ring")
	retries := fs.Int("retries", 0, "coordinator mode: extra replicas offered to a point after its owner fails (0 = up to 2)")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "coordinator mode: base delay before each retry wave")
	fs.Parse(args)

	if *coordinator {
		return serveCoordinator(*addr, *storeDir, *replicas, *stall, *retries, *backoff, *drain)
	}
	if *replicas != "" {
		return fmt.Errorf("serve: -replicas requires -coordinator")
	}

	// Campaign responses stream summaries, never traces, so the service
	// engine records at summary level; with a store attached the engine
	// upgrades archivable points back to full.
	opts, closeStore, err := engineOptions(*storeDir, *workers, trace.LevelSummary)
	if err != nil {
		return err
	}
	defer closeStore()
	// One admission gate shared by the engine's campaign workers and
	// the server's rate path: workers yield between jobs while a rate
	// request is in flight, so batch traffic cannot starve the
	// latency-sensitive endpoint.
	gate := admission.NewGate(0)
	opts.Admission = gate
	eng := engine.New(opts)
	defer eng.Close()
	srv := server.New(server.Options{Engine: eng, Admission: gate})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	storeNote := "none"
	if *storeDir != "" {
		storeNote = *storeDir
	}
	// The "listening on" line is machine-read by the CI server smoke to
	// discover the bound port; keep its shape stable.
	fmt.Printf("zhuyi serve: listening on http://%s (workers %d, store %s)\n",
		ln.Addr(), eng.Workers(), storeNote)

	if err := serveUntilSignal(ln, srv.Handler(), *drain); err != nil {
		return err
	}
	// The HTTP drain above settled in-flight requests; now flush the
	// asynchronous archive queue so every fresh run this process
	// produced is on disk before the final stats print and exit.
	eng.Drain()
	st := eng.Stats()
	fmt.Printf("zhuyi serve: done — %d fresh simulations, %d memory hits, %d disk hits, %d archived\n",
		st.Executed, st.CacheHits, st.DiskHits, st.Archived)
	return nil
}

// serveCoordinator runs the fabric tier: shared-store warm answers,
// cold fan-out to the replica set.
func serveCoordinator(addr, storeDir, replicas string, stall time.Duration, retries int, backoff time.Duration, drain time.Duration) error {
	urls := splitList(replicas)
	if len(urls) == 0 {
		return fmt.Errorf("serve: -coordinator requires -replicas URL[,URL...]")
	}
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
	}
	coord, err := fabric.New(fabric.Options{
		Replicas:     urls,
		Store:        st,
		StallTimeout: stall,
		Retries:      retries,
		Backoff:      backoff,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	storeNote := "none"
	if storeDir != "" {
		storeNote = storeDir
	}
	// Same machine-read shape as worker mode, plus the replica count so
	// the fabric smoke can assert what it started.
	fmt.Printf("zhuyi serve: listening on http://%s (coordinator, %d replicas, store %s)\n",
		ln.Addr(), len(urls), storeNote)

	if err := serveUntilSignal(ln, coord.Handler(), drain); err != nil {
		return err
	}
	es := coord.Ring()
	fmt.Printf("zhuyi serve: coordinator done — %d replicas\n", len(es.Replicas()))
	return nil
}

// serveUntilSignal serves the handler until SIGINT/SIGTERM, then
// drains in-flight requests for up to the drain timeout.
func serveUntilSignal(ln net.Listener, h http.Handler, drain time.Duration) error {
	hs := &http.Server{Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight campaign
		// streams complete, then close.
		stop()
		fmt.Println("zhuyi serve: shutting down, draining in-flight requests")
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}
