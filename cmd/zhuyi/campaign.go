package main

// The campaign subcommand: run a batch of (scenario, FPR, seed) points
// either locally (on a private engine, optionally store-backed) or
// against a remote `zhuyi serve` instance via the typed client —
// exercising exactly the facade API (zhuyi.Campaign / zhuyi.Client)
// the library documents.

import (
	"context"
	"flag"
	"fmt"
	"math"

	zhuyi "repro"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	serverURL := fs.String("server", "", "campaign service base URL (e.g. http://127.0.0.1:8080); empty runs locally")
	names := fs.String("scenarios", "", "comma-separated scenario names (default: by -tags)")
	tags := fs.String("tags", scenario.TagTable1, "registry tags selecting scenarios when -scenarios is empty")
	fprs := fs.String("fprs", "30", "comma-separated rates")
	seeds := fs.Int("seeds", 3, "seeded runs per (scenario, rate) point")
	workers := fs.Int("workers", 0, "local mode: concurrent simulations (0 = GOMAXPROCS)")
	storeDir := fs.String("store", "", "local mode: persistent run store")
	record := fs.String("record", "summary", "local mode: trace recording level (full, summary, off); store-archived points stay full")
	quiet := fs.Bool("quiet", false, "suppress per-point lines, print only the stats summary")
	prof := profiling.Register(fs)
	fs.Parse(args)

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	// Zero seeds would run an empty campaign and exit 0.
	if *seeds <= 0 {
		return fmt.Errorf("campaign: -seeds must be positive, got %d", *seeds)
	}
	level, err := trace.ParseLevel(*record)
	if err != nil {
		return err
	}
	scs, err := resolveScenarios(*names, *tags)
	if err != nil {
		return err
	}
	grid, err := parseFPRs(*fprs)
	if err != nil {
		return err
	}
	var points []zhuyi.CampaignPoint
	for _, sc := range scs {
		for _, fpr := range grid {
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				points = append(points, zhuyi.CampaignPoint{Scenario: sc.Name, FPR: fpr, Seed: seed})
			}
		}
	}

	ctx := context.Background()
	var res *zhuyi.CampaignResult
	if *serverURL != "" {
		cl := zhuyi.NewClient(*serverURL)
		res, err = cl.CampaignStream(ctx, points, func(p zhuyi.PointResult) {
			if !*quiet {
				printPointLine(p.Scenario, p.FPR, p.Seed, p.Source, p.Collided, p.CollisionTime, p.MinGapInfinite, p.MinBumperGap)
			}
		})
	} else {
		opts, closeStore, oerr := engineOptions(*storeDir, *workers, level)
		if oerr != nil {
			return oerr
		}
		defer closeStore()
		eng := zhuyi.NewEngine(opts)
		res, err = zhuyi.Campaign(ctx, eng, points)
		if res != nil && !*quiet {
			for _, o := range res.Outcomes {
				if o.Err != nil {
					fmt.Printf("%-28s fpr %4g seed %2d  error: %v\n", o.Point.Scenario, o.Point.FPR, o.Point.Seed, o.Err)
					continue
				}
				source := "fresh"
				if o.Cached {
					source = "cached"
				}
				r := o.Result
				printPointLine(o.Point.Scenario, o.Point.FPR, o.Point.Seed, source,
					r.Collision != nil, collisionTime(r), math.IsInf(r.MinBumperGap, 1), r.MinBumperGap)
			}
		}
	}
	if res != nil {
		s := res.Stats
		fmt.Printf("# campaign: %d points in %s: %d fresh, %d memory, %d disk, %d failed, %d skipped\n",
			s.Jobs, s.Wall.Round(1e6), s.Executed, s.CacheHits, s.DiskHits, s.Failures, s.Skipped)
	}
	return err
}

// printPointLine renders one campaign-point outcome; local and remote
// modes share it so their output cannot drift (the CI server smoke
// greps the stats line, humans diff the point lines).
func printPointLine(name string, fpr float64, seed int64, source string, collided bool, collidedAt float64, gapInf bool, gap float64) {
	collStr := "no"
	if collided {
		collStr = fmt.Sprintf("t=%.2f", collidedAt)
	}
	gapStr := "+Inf"
	if !gapInf {
		gapStr = fmt.Sprintf("%.2f", gap)
	}
	fmt.Printf("%-28s fpr %4g seed %2d  %-6s collided=%-7s min-gap %s\n",
		name, fpr, seed, source, collStr, gapStr)
}

// collisionTime is the collision instant, or 0 for a clean run.
func collisionTime(r *zhuyi.RunResult) float64 {
	if r.Collision == nil {
		return 0
	}
	return r.Collision.Time
}
