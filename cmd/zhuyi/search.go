package main

// The adversarial-search subcommand: evolve each spec family toward
// its hardest (highest-MRF) corpus through the cached run engine,
// streaming one NDJSON summary per (family, generation) on stdout and
// writing the hardest-N corpus as registry-loadable specs. The whole
// run is deterministic for a given (-families, -seed, budget) — the
// corpus file is bitwise-identical across runs and -workers values —
// and a rerun against a warm -store schedules zero fresh simulations.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/trace"
)

func cmdScenariosSearch(args []string) error {
	fs := flag.NewFlagSet("scenarios search", flag.ExitOnError)
	families := fs.String("families", "", "comma-separated families to evolve (default: all of "+familyList()+")")
	seed := fs.Int64("seed", 1, "search seed (same seed + budget reproduces the corpus bit for bit)")
	generations := fs.Int("generations", search.DefaultGenerations, "evaluate/breed rounds per family")
	population := fs.Int("population", search.DefaultPopulation, "population size per family")
	top := fs.Int("top", 0, "keep only the hardest N candidates in the corpus (0 = all evaluated)")
	mrfSeeds := fs.Int("mrf-seeds", search.DefaultSeeds, "seeded runs per rate when scoring a candidate")
	fprs := fs.String("fprs", "", "comma-separated candidate rate grid (default: the Table-1 grid)")
	storeDir := fs.String("store", "", "persistent run store: archived points answer from the manifest, fresh runs are archived")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	out := fs.String("out", "", "write the corpus JSON to this file (default: stdout, after the NDJSON progress)")
	fs.Parse(args)

	if *generations <= 0 {
		return fmt.Errorf("scenarios search: -generations must be positive, got %d", *generations)
	}
	if *population <= 0 {
		return fmt.Errorf("scenarios search: -population must be positive, got %d", *population)
	}
	if *mrfSeeds <= 0 {
		return fmt.Errorf("scenarios search: -mrf-seeds must be positive, got %d", *mrfSeeds)
	}
	if *top < 0 {
		return fmt.Errorf("scenarios search: -top must be non-negative, got %d", *top)
	}
	var fams []scenario.Family
	for _, f := range splitList(*families) {
		fams = append(fams, scenario.Family(f))
	}
	grid, err := parseFPRs(*fprs)
	if err != nil {
		return err
	}
	// Scoring reads nothing but collision outcomes: summary level
	// (store-archived points stay full, the engine upgrades them).
	opts, closeStore, err := engineOptions(*storeDir, *workers, trace.LevelSummary)
	if err != nil {
		return err
	}
	defer closeStore()
	eng := engine.New(opts)
	defer eng.Close()

	progress := json.NewEncoder(os.Stdout)
	res, err := search.Search(context.Background(), search.Options{
		Families:    fams,
		Seed:        *seed,
		Generations: *generations,
		Population:  *population,
		Seeds:       *mrfSeeds,
		TopN:        *top,
		FPRGrid:     grid,
		Engine:      eng,
		Progress:    func(g search.GenerationSummary) { progress.Encode(g) },
	})
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := search.WriteCorpus(w, res); err != nil {
		return err
	}
	s := eng.Stats()
	fmt.Fprintf(os.Stderr, "# search: %d candidates evaluated, %d points; engine: %d fresh simulations, %d disk hits, %d memory hits, %d archived\n",
		res.Evaluated, res.Runs, s.Executed, s.DiskHits, s.CacheHits, s.Archived)
	return nil
}
