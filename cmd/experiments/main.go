// Command experiments regenerates the paper's tables and figures:
//
//	experiments -exp table1              Table 1 (MRF + offline estimates per scenario)
//	experiments -exp fig1                Figure 1 (perception TOPS demand vs SoCs)
//	experiments -exp fig4,fig5,fig6      per-camera latency series figures
//	experiments -exp fig7                post-deployment online estimates
//	experiments -exp fig8                velocity sensitivity grids (sn = 30, 100)
//	experiments -exp headline            closed-loop Zhuyi controller vs 30-FPR baseline
//	experiments -exp corpus -corpus 50   MRF distribution over a generated scenario corpus
//	experiments -exp hardest             adversarial search corpus vs blind generation
//	experiments -exp all                 everything (except hardest; run it explicitly)
//
// Table 1 with the full protocol (-seeds 10) takes a few minutes; use
// -seeds 3 for a quick pass. The corpus sweep generates -corpus
// scenarios from seed -corpusseed and can additionally include
// registered scenarios via -tags (e.g. -tags table1 or -tags variant).
//
// With -store DIR the run engine gains a persistent tier backed by the
// content-addressed campaign store: points archived by an earlier
// invocation (or by `zhuyi record`) load from disk instead of
// simulating, fresh runs are archived back, and the invocation ends
// with a fresh/disk/memory stats line — a warm second `-exp table1`
// run performs zero fresh simulations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "comma-separated experiments: table1,fig1,fig4,fig5,fig6,fig7,fig8,headline,ablations,corpus,hardest,all")
		seeds       = flag.Int("seeds", 10, "seeded runs per configuration (Table 1, corpus)")
		workers     = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		csvDir      = flag.String("csv", "", "also write CSV artifacts into this directory")
		corpusN     = flag.Int("corpus", 20, "corpus sweep: number of generated scenarios")
		corpusSeed  = flag.Int64("corpusseed", 1, "corpus sweep: generator seed")
		tags        = flag.String("tags", "", "corpus sweep: also include registered scenarios with these comma-separated tags")
		record      = flag.String("record", "summary", "corpus sweep: trace recording level of generated members (full, summary, off)")
		storeDir    = flag.String("store", "", "persistent run store directory: archived points load from disk instead of simulating, fresh runs are archived back")
		hardestN    = flag.Int("hardest", 100, "hardest experiment: corpus size on both sides (search top-N and blind baseline)")
		hardestSeed = flag.Int64("hardestseed", 1, "hardest experiment: search and blind-generator seed")
		hardestJSON = flag.String("hardestjson", "", "hardest experiment: also write the comparison artifact (BENCH_hardest.json format) to this file")
	)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	// One engine for the whole invocation: campaigns run on a single
	// worker pool and later experiments reuse earlier experiments' runs
	// (the Table-1 sweep caches the points the baselines and figures
	// re-visit). Without -workers this is the process-wide default
	// engine — the same one the figure and ablation generators use — so
	// the cache is shared across every experiment; an explicit -workers
	// sizes a private pool for the campaign-style experiments instead.
	// With -store, the engine gains a persistent tier: a second
	// identical invocation replays entirely from disk and memory,
	// simulating nothing (the closing stats line shows the split).
	eng := engine.Default()
	if *workers > 0 || *storeDir != "" {
		opts := engine.Options{Workers: *workers}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer st.Close()
			opts.Store = st
		}
		eng = engine.New(opts)
		defer func() {
			s := eng.Stats()
			fmt.Printf("# engine: %d fresh simulations, %d disk hits, %d memory hits, %d archived, %d failures, %d store errors\n",
				s.Executed, s.DiskHits, s.CacheHits, s.Archived, s.Failures, s.StoreErrors)
		}()
	}

	writeCSV := func(name string, fn func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig1", func() error {
		experiments.WriteFigure1(os.Stdout, experiments.Figure1())
		return nil
	})
	run("table1", func() error {
		opt := experiments.Options{Seeds: *seeds, Engine: eng}
		rows, err := experiments.Table1(opt)
		if err != nil {
			return err
		}
		experiments.WriteTable1(os.Stdout, rows, nil)
		fmt.Printf("# max resource fraction: %.2f (paper: 0.36)\n", experiments.MaxFraction(rows))
		for _, v := range experiments.ValidateTable1(rows) {
			fmt.Printf("# conservatism note: %s\n", v)
		}
		writeCSV("table1.csv", func(w io.Writer) error {
			return experiments.Table1CSV(w, rows, nil)
		})
		return nil
	})
	figureScenarios := map[string]string{
		"fig4": scenario.CutOutFast,
		"fig5": scenario.ChallengingCutInCurved,
		"fig6": scenario.CutIn,
	}
	for fig, sc := range figureScenarios {
		fig, sc := fig, sc
		run(fig, func() error {
			fs, err := experiments.CameraLatencyFigure(sc, 30, 1)
			if err != nil {
				return err
			}
			experiments.WriteFigureSeries(os.Stdout, fs)
			writeCSV(fig+".csv", func(w io.Writer) error { return experiments.SeriesCSV(w, fs) })
			return nil
		})
	}
	run("fig7", func() error {
		s, err := experiments.Figure7(30, 1)
		if err != nil {
			return err
		}
		experiments.WriteOnlineSeries(os.Stdout, s)
		writeCSV("fig7.csv", func(w io.Writer) error { return experiments.OnlineCSV(w, s) })
		return nil
	})
	run("fig8", func() error {
		for _, sn := range []float64{30, 100} {
			res := experiments.Figure8(sn)
			experiments.WriteSweep(os.Stdout, res)
			writeCSV(fmt.Sprintf("fig8_sn%.0f.csv", sn), func(w io.Writer) error {
				return experiments.SweepCSV(w, res)
			})
		}
		return nil
	})
	run("headline", func() error {
		rows, err := experiments.HeadlineContext(context.Background(), eng, 1)
		if err != nil {
			return err
		}
		experiments.WriteHeadline(os.Stdout, rows)
		fmt.Printf("# all Zhuyi-controlled runs safe: %v; max frame fraction %.2f\n",
			experiments.AllSafe(rows), experiments.MaxFrameFraction(rows))
		writeCSV("headline.csv", func(w io.Writer) error { return experiments.HeadlineCSV(w, rows) })
		return nil
	})
	run("baselines", func() error {
		opt := experiments.Options{Seeds: *seeds, Engine: eng}
		rows, err := experiments.BaselineComparison(opt)
		if err != nil {
			return err
		}
		experiments.WriteBaselineComparison(os.Stdout, rows, 12, *seeds)
		fmt.Println()
		experiments.WriteRSSComparison(os.Stdout, experiments.RSSComparison())
		return nil
	})
	run("corpus", func() error {
		var fams []string
		if *tags != "" {
			for _, t := range strings.Split(*tags, ",") {
				fams = append(fams, strings.TrimSpace(t))
			}
		}
		level, err := trace.ParseLevel(*record)
		if err != nil {
			return err
		}
		res, err := experiments.CorpusSweep(context.Background(), experiments.CorpusOptions{
			N:       *corpusN,
			GenSeed: *corpusSeed,
			Tags:    fams,
			Seeds:   *seeds,
			Record:  level,
			Engine:  eng,
		})
		if err != nil {
			return err
		}
		experiments.WriteCorpus(os.Stdout, res)
		writeCSV("corpus.csv", func(w io.Writer) error { return experiments.CorpusCSV(w, res) })
		return nil
	})
	// Deliberately excluded from -exp all: the search side alone scores
	// hundreds of genomes, and the blind baseline doubles the corpus.
	if want["hardest"] {
		run("hardest", func() error {
			res, err := experiments.HardestCorpus(context.Background(), experiments.HardestOptions{
				TopN:   *hardestN,
				Seed:   *hardestSeed,
				Seeds:  *seeds,
				Engine: eng,
				Progress: func(g search.GenerationSummary) {
					fmt.Printf("# %s gen %d: best %s\n", g.Family, g.Generation, g.BestMRFString())
				},
			})
			if err != nil {
				return err
			}
			experiments.WriteHardest(os.Stdout, res)
			if *hardestJSON != "" {
				return writeHardestJSON(*hardestJSON, res)
			}
			return nil
		})
	}
	run("ablations", func() error {
		if rows, err := experiments.ConfirmationDepthAblation(nil); err != nil {
			return err
		} else {
			experiments.WriteAblation(os.Stdout, "confirmation depth K (cut-out-fast trace)", rows)
		}
		if rows, err := experiments.AlphaModelAblation(); err != nil {
			return err
		} else {
			experiments.WriteAblation(os.Stdout, "confirmation-delay alpha model", rows)
		}
		if rows, err := experiments.SearchModeAblation(); err != nil {
			return err
		} else {
			experiments.WriteAblation(os.Stdout, "Eq.-3 accelerated vs naive search", rows)
		}
		if rows, err := experiments.UncertaintyAblation(nil); err != nil {
			return err
		} else {
			experiments.WriteAblation(os.Stdout, "perception uncertainty (position sigma)", rows)
		}
		rows, err := experiments.AggregationAblation()
		if err != nil {
			return err
		}
		experiments.WriteAggregationAblation(os.Stdout, rows)
		return nil
	})
}

// writeHardestJSON commits the hardest-corpus comparison in the
// repo's BENCH_*.json artifact format.
func writeHardestJSON(path string, res *experiments.HardestResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		GeneratedBy string `json:"generated_by"`
		*experiments.HardestResult
	}{
		GeneratedBy:   "experiments -exp hardest -hardestjson (adversarial search corpus vs blind generation; deterministic per seed and budget)",
		HardestResult: res,
	})
}
