// Command simrun executes one closed-loop run of a named driving
// scenario at a fixed per-camera frame processing rate and writes the
// recorded trace as JSON Lines — the input format of the offline Zhuyi
// evaluator (cmd/zhuyi estimate).
//
// Usage:
//
//	simrun -scenario cut-out-fast -fpr 30 -seed 1 -o trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	var (
		name = flag.String("scenario", scenario.CutOut, "scenario name; any registered scenario, e.g.: "+strings.Join(scenario.Names(), ", "))
		fpr  = flag.Float64("fpr", 30, "uniform per-camera frame processing rate")
		seed = flag.Int64("seed", 1, "noise/jitter seed")
		out  = flag.String("o", "", "output trace path (default stdout)")
	)
	flag.Parse()

	sc, ok := scenario.Lookup(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "simrun: unknown scenario %q\navailable: %s\n", *name, strings.Join(scenario.Default().Names(), ", "))
		os.Exit(2)
	}
	res, err := metrics.RunScenario(sc, *fpr, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := res.Trace.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
	if res.Collided() {
		fmt.Fprintf(os.Stderr, "simrun: COLLISION at t=%.2fs with %s\n", res.Collision.Time, res.Collision.ActorID)
	} else {
		fmt.Fprintf(os.Stderr, "simrun: completed safely (%d rows, min gap %.2f m)\n", res.Trace.Len(), res.MinBumperGap)
	}
}
