package main

import (
	"strings"
	"testing"
)

// TestLintTreeFindsViolations: the linter must fire on the fixture's
// missing package comment and undocumented exported identifiers, and
// stay silent about unexported or documented ones.
func TestLintTreeFindsViolations(t *testing.T) {
	findings, err := lintTree("testdata/bad")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"has no package comment",
		"exported function Exported",
		"exported type Thing",
		"exported method Method",
		"exported const Answer",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings missing %q:\n%s", want, joined)
		}
	}
	for _, wantAbsent := range []string{"unexported", "Documented"} {
		if strings.Contains(joined, wantAbsent) {
			t.Errorf("findings wrongly include %q:\n%s", wantAbsent, joined)
		}
	}
	if len(findings) != 5 {
		t.Errorf("%d findings, want 5:\n%s", len(findings), joined)
	}
}

// TestLintTreeCleanOnRepo: the repository itself must stay clean —
// this is the doc-lint gate run as a plain test too.
func TestLintTreeCleanOnRepo(t *testing.T) {
	findings, err := lintTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}
