// Command doclint enforces this repository's documentation
// conventions, stdlib-only (the CI image deliberately carries no
// external linters, so the revive/golangci-lint "package-comments" and
// "exported" rules are reimplemented here):
//
//   - every package must have a package doc comment ("// Package x ..."
//     on one of its files, or "// Command x ..." for package main);
//   - every exported top-level identifier in a library package —
//     funcs, methods on exported receivers, types, consts, vars — must
//     have a doc comment (a grouped const/var/type block may document
//     the block instead of each name).
//
// Test files are exempt. Usage:
//
//	go run ./cmd/doclint ./...
//
// doclint walks the module from the current directory, prints one
// "path: finding" line per violation, and exits non-zero when any is
// found — CI runs it as the doc-lint job.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 && os.Args[1] != "./..." {
		root = strings.TrimSuffix(os.Args[1], "/...")
	}
	findings, err := lintTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// lintTree lints every Go package directory under root, skipping
// hidden directories and testdata.
func lintTree(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		matches, _ := filepath.Glob(filepath.Join(path, "*.go"))
		for _, m := range matches {
			if !strings.HasSuffix(m, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	return findings, nil
}

// lintDir lints one package directory.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var findings []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		findings = append(findings, lintPackage(fset, dir, name, pkg)...)
	}
	return findings, nil
}

func lintPackage(fset *token.FileSet, dir, name string, pkg *ast.Package) []string {
	var findings []string
	hasPkgDoc := false
	for _, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, name))
	}
	if name == "main" {
		// Binaries document themselves with the package comment; their
		// internals are not an API surface.
		return findings
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			findings = append(findings, lintDecl(fset, decl)...)
		}
	}
	return findings
}

// lintDecl reports exported top-level identifiers without doc comments.
func lintDecl(fset *token.FileSet, decl ast.Decl) []string {
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || hasDoc(d.Doc) {
			return nil
		}
		if d.Recv != nil && !receiverExported(d.Recv) {
			return nil // method on an unexported type: not API surface
		}
		kind := "function"
		if d.Recv != nil {
			kind = "method"
		}
		report(d.Pos(), kind, d.Name.Name)
	case *ast.GenDecl:
		blockDoc := hasDoc(d.Doc)
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !blockDoc && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
					report(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				if blockDoc || hasDoc(s.Doc) || hasDoc(s.Comment) {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						report(n.Pos(), kind, n.Name)
					}
				}
			}
		}
	}
	return findings
}

func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// receiverExported reports whether a method's receiver base type is
// exported.
func receiverExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
