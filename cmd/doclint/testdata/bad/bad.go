package bad

func Exported() {}

type Thing struct{}

func (t Thing) Method() {}

// WellCommented has a doc comment and must not be reported.
func (t Thing) WellCommented() {}

const Answer = 42

// Documented has a comment.
var Documented = 1

func unexported() {}
