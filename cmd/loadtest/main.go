// Command loadtest is the stdlib-only load driver for the POST
// /v1/rate serving path. It sustains -concurrency closed-loop workers
// against a running `zhuyi serve` for -duration, optionally keeping a
// background campaign streaming the whole time (-campaign) so the
// measurement captures the admission-gated contention the endpoint is
// built for, and prints one JSON report with client-observed latency
// quantiles. scripts/loadtest.sh runs it in both wire modes and gates
// the p99 in CI; BENCH_serve.json is the committed artifact.
//
// The driver exits non-zero if any rate request fails — under the
// admission gate, campaign pressure must never cost correctness, only
// bounded latency.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	zhuyi "repro"
	"repro/internal/hist"
	"repro/internal/server"
)

// report is the driver's stdout artifact, embedded verbatim into
// BENCH_serve.json by scripts/loadtest.sh.
type report struct {
	Mode           string      `json:"mode"`
	Concurrency    int         `json:"concurrency"`
	TargetQPS      float64     `json:"target_qps"`
	DurationS      float64     `json:"duration_s"`
	Requests       uint64      `json:"requests"`
	Errors         uint64      `json:"errors"`
	QPS            float64     `json:"qps"`
	CampaignPoints uint64      `json:"campaign_points"`
	LatencyUS      latencyRows `json:"latency_us"`
}

// latencyRows are client-observed (full HTTP round trip) quantiles in
// microseconds.
type latencyRows struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running zhuyi serve (e.g. http://127.0.0.1:8080); required")
	mode := flag.String("mode", "json", "wire mode: json or binary")
	duration := flag.Duration("duration", 5*time.Second, "measured load window (after warmup)")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "unmeasured warmup window")
	concurrency := flag.Int("concurrency", 32, "rate workers")
	qps := flag.Float64("qps", 0, "target offered load in requests/s across all workers; 0 = closed loop (as fast as the workers allow, latency then includes self-queueing)")
	campaign := flag.Int("campaign", 0, "background campaign batch size, resubmitted with fresh seeds for the whole window (0 = no campaign pressure)")
	flag.Parse()
	if err := run(*addr, *mode, *duration, *warmup, *concurrency, *qps, *campaign); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

func run(addr, mode string, duration, warmup time.Duration, concurrency int, qps float64, campaign int) error {
	if addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if mode != "json" && mode != "binary" {
		return fmt.Errorf("-mode must be json or binary, got %q", mode)
	}

	// One request body, built once: the wire payload is identical for
	// every request, so the drive loop allocates only what net/http
	// itself needs.
	body, contentType, err := buildBody(mode)
	if err != nil {
		return err
	}
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
	}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Background campaign: resubmit a fresh-seeded batch in a loop so
	// the engine's workers stay saturated for the entire window. Each
	// iteration bumps the seed base, so every point is a fresh
	// simulation — cache hits would not pressure the admission gate.
	var campaignPoints atomic.Uint64
	var campaignWG sync.WaitGroup
	if campaign > 0 {
		cl := zhuyi.NewClient(addr)
		cl.HTTPClient = httpc
		campaignWG.Add(1)
		go func() {
			defer campaignWG.Done()
			// Time-based so back-to-back driver runs against one server
			// process don't replay seeds into its memory cache — the
			// campaign must stay fresh compute, not cache hits.
			seedBase := time.Now().Unix() * 10_000
			for ctx.Err() == nil {
				pts := make([]zhuyi.CampaignPoint, campaign)
				for i := range pts {
					pts[i] = zhuyi.CampaignPoint{Scenario: "cut-out", FPR: 30, Seed: seedBase + int64(i)}
				}
				seedBase += int64(campaign)
				res, err := cl.Campaign(ctx, pts)
				if err != nil {
					return // ctx cancelled at window end, or server gone
				}
				campaignPoints.Add(uint64(len(res.Outcomes)))
			}
		}()
	}

	// Open-loop pacing: a ticker drops tokens into a bounded bucket and
	// workers consume one per request. When the server can't keep up the
	// bucket overflows and ticks are discarded — the loop degrades to
	// closed at -concurrency instead of building an unbounded backlog.
	var tokens chan struct{}
	if qps > 0 {
		tokens = make(chan struct{}, max(1, int(qps)))
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / qps))
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	var requests, errors atomic.Uint64
	var measuring atomic.Bool
	h := hist.New()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(shard uint32) {
			defer wg.Done()
			for ctx.Err() == nil {
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				}
				start := time.Now()
				ok := postOnce(ctx, httpc, addr, contentType, body)
				if !measuring.Load() {
					continue
				}
				elapsed := time.Since(start)
				requests.Add(1)
				if !ok {
					if ctx.Err() != nil {
						// A cancel mid-request is the window closing,
						// not a server failure.
						requests.Add(^uint64(0))
						return
					}
					errors.Add(1)
					continue
				}
				h.ObserveShard(elapsed, shard)
			}
		}(uint32(w))
	}

	time.Sleep(warmup)
	measuring.Store(true)
	windowStart := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	window := time.Since(windowStart)
	cancel()
	wg.Wait()
	campaignWG.Wait()

	s := h.Snapshot()
	const us = 1e3 // ns per µs
	rep := report{
		Mode:           mode,
		Concurrency:    concurrency,
		TargetQPS:      qps,
		DurationS:      window.Seconds(),
		Requests:       requests.Load(),
		Errors:         errors.Load(),
		QPS:            float64(s.Count) / window.Seconds(),
		CampaignPoints: campaignPoints.Load(),
		LatencyUS: latencyRows{
			Mean: s.Mean() / us,
			P50:  float64(s.Quantile(0.50)) / us,
			P90:  float64(s.Quantile(0.90)) / us,
			P99:  float64(s.Quantile(0.99)) / us,
			P999: float64(s.Quantile(0.999)) / us,
			Max:  float64(s.Max) / us,
		},
	}
	out, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d rate requests failed — campaign pressure must never drop rate traffic", rep.Errors, rep.Requests)
	}
	if rep.Requests == 0 {
		return fmt.Errorf("no rate requests completed in the measurement window")
	}
	return nil
}

// postOnce fires one rate request and fully drains the response so the
// connection is reused. Any transport error or non-200 is a failure.
func postOnce(ctx context.Context, httpc *http.Client, addr, contentType string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/rate", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := httpc.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// buildBody renders the benchmark snapshot — a six-actor merge scene
// with an operating point, so the response includes the safety check —
// in the requested wire mode.
func buildBody(mode string) (body []byte, contentType string, err error) {
	rr := benchRateRequest()
	if mode == "binary" {
		b, err := server.AppendRateRequestBinary(nil, rr)
		return b, zhuyi.RateBinaryContentType, err
	}
	b, err := json.Marshal(rr)
	return b, "application/json", err
}

// benchRateRequest is the fixed snapshot every worker posts: an ego at
// speed with six surrounding actors and an operating point for the
// three analyzed cameras.
func benchRateRequest() zhuyi.RateRequest {
	return zhuyi.RateRequest{
		Time: 4.2,
		Ego:  zhuyi.AgentState{ID: "ego", X: 0, Y: 0, Speed: 22},
		Actors: []zhuyi.AgentState{
			{ID: "lead", X: 32, Y: 0, Speed: 17},
			{ID: "lead2", X: 58, Y: 0, Speed: 19},
			{ID: "left", X: 8, Y: 3.5, Speed: 24, Lane: 1},
			{ID: "left-rear", X: -14, Y: 3.5, Speed: 26, Lane: 1},
			{ID: "right", X: 12, Y: -3.5, Speed: 15, Lane: -1},
			{ID: "merge", X: 40, Y: -3.5, Speed: 13, Heading: 0.12, LatVel: 0.8, Lane: -1},
		},
		Operating: map[string]float64{"front120": 10, "left": 5, "right": 5},
	}
}
