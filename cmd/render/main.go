// Command render replays a recorded trace as ego-relative ASCII top
// views — a quick visual check of scenario choreography.
//
// Usage:
//
//	simrun -scenario cut-out-fast -fpr 2 -o t.jsonl
//	render -trace t.jsonl -every 1.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/render"
	"repro/internal/trace"
)

func main() {
	var (
		path  = flag.String("trace", "", "JSONL trace recorded by simrun")
		every = flag.Float64("every", 1.0, "seconds between frames")
		ahead = flag.Float64("ahead", 100, "meters ahead of the ego in view")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "render: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "render:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "render:", err)
		os.Exit(1)
	}
	v := render.DefaultViewport()
	v.Ahead = *ahead
	fmt.Printf("# %s (run at %g FPR, seed %d)\n\n", tr.Meta.Scenario, tr.Meta.FPR, tr.Meta.Seed)
	fmt.Print(render.Strip(tr, *every, v))
}
