// Quickstart: estimate the tolerable perception latency and per-camera
// frame processing rates for a hand-built driving snapshot — a braking
// lead vehicle ahead of the ego and a harmless neighbor one lane over.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/predict"
	"repro/internal/sensor"
	"repro/internal/world"
)

func main() {
	// The ego: 27 m/s (~60 mph) in the middle lane, cruising.
	ego := world.Agent{
		ID:     world.EgoID,
		Pose:   geom.Pose{Pos: geom.V(0, 0), Heading: 0},
		Speed:  27,
		Length: 4.6,
		Width:  1.9,
	}

	// A lead vehicle 45 m ahead, braking at 4 m/s², and a neighbor in
	// the adjacent lane pacing the ego.
	lead := world.Agent{
		ID:     "lead",
		Pose:   geom.Pose{Pos: geom.V(45, 0), Heading: 0},
		Speed:  24,
		Accel:  -4,
		Length: 4.6,
		Width:  1.9,
	}
	neighbor := world.Agent{
		ID:     "neighbor",
		Pose:   geom.Pose{Pos: geom.V(5, 3.5), Heading: 0},
		Speed:  27,
		Length: 4.6,
		Width:  1.9,
	}

	est := core.NewEstimator()

	// Post-deployment style: futures come from a trajectory predictor.
	pred := predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1}
	e := est.EstimateOnline(0, ego, []world.Agent{lead, neighbor}, pred, 1.0/30)

	fmt.Println("Per-actor tolerable latency:")
	for _, a := range e.Actors {
		switch {
		case !a.Feasible:
			fmt.Printf("  %-10s collision unavoidable\n", a.ActorID)
		case a.NoThreat:
			fmt.Printf("  %-10s no conflict (%.0f ms, idle)\n", a.ActorID, a.Latency*1000)
		default:
			fmt.Printf("  %-10s %.0f ms (over %d predicted trajectories)\n",
				a.ActorID, a.Latency*1000, a.TrajCount)
		}
	}

	fmt.Println("\nPer-camera minimum safe FPR (Eq. 5):")
	for _, cam := range sensor.AnalyzedCameras() {
		fmt.Printf("  %-10s %5.1f FPR (latency budget %.0f ms)\n",
			cam, e.CameraFPR[cam], e.CameraLatency[cam]*1000)
	}

	d := core.NewDemand(2, 4, est.Params)
	fmt.Printf("\nZhuyi compute demand for this scene: %d ops (%.1f µs on 10 GOPS)\n",
		d.Ops(), d.ExecutionSeconds(10e9)*1e6)
}
