// Online (post-deployment) safety: run the challenging cut-in with the
// Zhuyi-based AV system of §3.2 — the model executes inside the loop on
// the perceived world model, drives per-camera rates through the work
// prioritizer, and logs safety-check alarms — then compare the frames
// processed against the fixed 30-FPR baseline.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/safety"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	// Resolve the scenario through the registry (covers the paper's
	// nine, ODD variants, and registered generated specs alike).
	sc, ok := scenario.Lookup(scenario.ChallengingCutIn)
	if !ok {
		fmt.Fprintln(os.Stderr, "scenario not registered:", scenario.ChallengingCutIn)
		os.Exit(1)
	}

	// Baseline: every camera at the provisioned 30 FPR.
	base, err := sim.Run(sc.Build(30, 1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Zhuyi-based system: online estimates drive the rates.
	cfg := sc.Build(30, 1)
	est := core.NewEstimator()
	est.Cameras = est.Rig.Names()
	ctrl := safety.NewController(
		est,
		predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
		safety.DefaultControllerConfig(),
	)
	cfg.RateController = ctrl
	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	report := func(name string, r *sim.Result) int {
		total := 0
		for _, n := range r.FramesProcessed {
			total += n
		}
		outcome := "safe"
		if r.Collided() {
			outcome = fmt.Sprintf("COLLISION at %.2f s", r.Collision.Time)
		}
		fmt.Printf("%-22s %6d frames  (%s)\n", name, total, outcome)
		return total
	}
	fmt.Println("Frames processed over the scenario:")
	baseFrames := report("fixed 30 FPR", base)
	zhuyiFrames := report("Zhuyi-controlled", res)
	fmt.Printf("frame fraction: %.0f%%\n\n", float64(zhuyiFrames)/float64(baseFrames)*100)

	fmt.Printf("safety checks: %d evaluations, %d with alarms, worst action: %s\n",
		len(ctrl.Checks()), ctrl.AlarmCount(), ctrl.WorstAction())
	for _, ck := range ctrl.Checks() {
		for _, a := range ck.Alarms {
			fmt.Printf("  t=%5.1f  %-10s required %5.1f FPR, operating %5.1f (%s)\n",
				a.Time, a.Camera, a.Required, a.Operating, ck.Action)
			break // one alarm per check keeps the output short
		}
	}

	// Work prioritization under a hard budget: the same scenario with
	// only 10 total FPR across five cameras, split uniformly vs by Zhuyi.
	fmt.Println("\nConstrained budget (10 FPR total across 5 cameras):")
	uniform := sc.Build(30, 1)
	uniform.RateController = safety.UniformRates{Cameras: est.Rig.Names(), Budget: 10}
	ures, err := sim.Run(uniform)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report("uniform 2 FPR each", ures)

	budgeted := sc.Build(30, 1)
	bcfg := safety.DefaultControllerConfig()
	bcfg.Budget = 10
	best := core.NewEstimator()
	best.Cameras = best.Rig.Names()
	budgeted.RateController = safety.NewController(
		best, predict.MultiHypothesis{Horizon: best.Params.Horizon, Dt: 0.1}, bcfg)
	bres, err := sim.Run(budgeted)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report("Zhuyi-prioritized", bres)
}
