// Sensitivity analysis (the paper's Figure 8): sweep the ego's initial
// speed against the actor's end velocity for fixed tolerable distances
// and print the minimum safe FPR heatmaps, plus a comparison of the two
// confirmation-delay (alpha) models.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/units"
)

func main() {
	for _, sn := range []float64{30, 100} {
		res := experiments.Figure8(sn)
		experiments.WriteSweep(os.Stdout, res)
		s := experiments.Summarize(res)
		fmt.Printf("# sn=%.0fm: %d feasible, %d need 30+, %d unavoidable; street max %d FPR\n\n",
			s.SN, s.Feasible, s.ThirtyPlus, s.Unavoidable, s.StreetMaxFPR)
	}

	// Ablation: the paper's confirmation-delay model α = K·(l − l0)
	// versus the steady-state α = 0 at a few operating points.
	fmt.Println("alpha-model ablation (sn = 100 m, l0 = 33 ms):")
	fmt.Printf("%10s %10s %14s %14s\n", "ve0(mph)", "van(mph)", "FPR (paper α)", "FPR (α = 0)")
	paper := core.DefaultParams()
	zero := core.DefaultParams()
	zero.Alpha = core.AlphaZero
	for _, pt := range [][2]float64{{30, 10}, {50, 20}, {65, 40}} {
		row := func(p core.Params) string {
			cells := core.Sweep(
				[]float64{units.MPHToMPS(pt[0])},
				[]float64{units.MPHToMPS(pt[1])},
				100, p.LMin, p,
			).Cells[0][0]
			switch {
			case cells.Unavoidable:
				return "unavoidable"
			case cells.ThirtyPlus:
				return "30+"
			default:
				return fmt.Sprintf("%.1f", cells.FPR)
			}
		}
		fmt.Printf("%10.0f %10.0f %14s %14s\n", pt[0], pt[1], row(paper), row(zero))
	}
}
