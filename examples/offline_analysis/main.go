// Offline (pre-deployment) analysis: run the paper's "Cut-out fast"
// scenario in the closed-loop simulator, then execute the Zhuyi model
// over the recorded trace — the §3.1 flow that produced Figures 4–6.
// The output shows when each camera's latency budget tightens and how
// it correlates with the ego's deceleration.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sensor"
)

func main() {
	// Scenarios resolve through the registry: the paper's nine, the ODD
	// variants, and any registered generated spec are all addressable
	// here by name.
	sc, ok := scenario.Lookup(scenario.CutOutFast)
	if !ok {
		fmt.Fprintln(os.Stderr, "scenario not registered:", scenario.CutOutFast)
		os.Exit(1)
	}
	res, err := metrics.RunScenario(sc, 30, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Scenario %s at 30 FPR: %d rows", sc.Name, res.Trace.Len())
	if res.Collided() {
		fmt.Printf(" — COLLISION at t=%.2f s\n", res.Collision.Time)
	} else {
		fmt.Printf(" — safe (closest approach %.2f m)\n", res.MinBumperGap)
	}

	est := core.NewEstimator()
	off, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{EvalEvery: 0.25})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\n%8s %10s %10s %10s %8s\n", "t(s)", "left(ms)", "front(ms)", "right(ms)", "accel")
	for _, pt := range off.Points {
		marker := ""
		if pt.Latency[sensor.Front120] < 0.3 {
			marker = "  <- tight"
		}
		fmt.Printf("%8.2f %10.0f %10.0f %10.0f %8.2f%s\n",
			pt.Time,
			pt.Latency[sensor.Left]*1000,
			pt.Latency[sensor.Front120]*1000,
			pt.Latency[sensor.Right]*1000,
			pt.EgoAccel,
			marker)
	}

	fmt.Printf("\nmax estimated FPR per camera:\n")
	for cam, f := range off.MaxCameraFPR() {
		fmt.Printf("  %-10s %5.1f\n", cam, f)
	}
	fmt.Printf("max total demand (F_c1+F_c2+F_c3): %.1f FPR = %.0f%% of a 3x30 provisioning\n",
		off.MaxSumFPR(), off.MaxSumFPR()/90*100)
}
