// Package zhuyi is the public facade of this repository: a Go
// reproduction of "Zhuyi: Perception Processing Rate Estimation for
// Safety in Autonomous Vehicles" (Hsiao et al., DAC 2022,
// arXiv:2205.03347).
//
// Zhuyi estimates, from the kinematic state of the ego vehicle and the
// (predicted) trajectories of surrounding actors, the maximum tolerable
// perception latency per actor and the minimum safe frame processing
// rate (FPR) per camera. This package re-exports the core model and the
// high-level entry points; the substrates (simulator, perception stack,
// planner, scenarios) live under internal/.
//
// Quick start:
//
//	est := zhuyi.NewEstimator()
//	res, _ := zhuyi.RunScenario(zhuyi.ScenarioCutOutFast, 30, 1)
//	off, _ := est.EvaluateTrace(res.Trace, zhuyi.OfflineOptions{})
//	fmt.Println(off.MaxFPR(), off.MaxSumFPR())
//
// # Running campaigns
//
// The paper's validation protocol is a batch of seeded closed-loop
// runs over (scenario, FPR, seed) points. Campaign submits such a
// batch to the shared run engine: points execute concurrently on a
// worker pool (GOMAXPROCS by default), results are cached by point, a
// repeated or overlapping campaign never re-simulates a point the
// process already ran, and the first failure cancels the still-queued
// remainder. Pass nil to use the process-wide engine, or NewEngine for
// a private pool:
//
//	var points []zhuyi.CampaignPoint
//	for _, name := range zhuyi.Scenarios() {
//		for seed := int64(1); seed <= 10; seed++ {
//			points = append(points, zhuyi.CampaignPoint{Scenario: name, FPR: 30, Seed: seed})
//		}
//	}
//	res, err := zhuyi.Campaign(ctx, nil, points)
//	if err != nil { ... }
//	fmt.Println(res.Stats.Executed, res.Stats.CacheHits, res.Stats.Wall)
//	for _, o := range res.Outcomes {
//		fmt.Println(o.Point.Scenario, o.Point.Seed, o.Result.Collided())
//	}
//
// FindMRF and the experiment generators run on the same engine, so a
// library campaign, an MRF search, and a Table-1 sweep in one process
// share their simulations.
//
// Campaigns that only read run summaries — collision outcomes, minimum
// bumper gaps — can skip trace materialization entirely by running on
// an engine with a summary recording level (the dominant allocation of
// a run; see BENCH_sim.json):
//
//	eng := zhuyi.NewEngine(zhuyi.EngineOptions{Record: zhuyi.RecordSummary})
//	res, err := zhuyi.Campaign(ctx, eng, points) // Result.Trace carries no rows
//
// Engines with a persistent store always record archivable points at
// RecordFull — the store refuses anything less.
//
// # Generating scenario corpora
//
// The nine Table-1 scenarios are registry entries compiled from
// declarative specs; the same machinery generates arbitrarily large
// scenario corpora. GenerateScenarios samples spec families (cut-in,
// cut-out, following, crossing, benign activity) deterministically from
// a seed; RegisterScenario makes a spec addressable by name, after
// which campaigns, MRF searches, and RunScenario accept it like a
// built-in — and the engine caches its runs under the registered name:
//
//	var points []zhuyi.CampaignPoint
//	specs, err := zhuyi.GenerateScenarios(zhuyi.GenOptions{Seed: 1}, 50)
//	for _, sp := range specs {
//		if err := zhuyi.RegisterScenario(sp); err != nil { ... }
//		for seed := int64(1); seed <= 3; seed++ {
//			points = append(points, zhuyi.CampaignPoint{Scenario: sp.Name, FPR: 10, Seed: seed})
//		}
//	}
//	res, err := zhuyi.Campaign(ctx, nil, points)
//
// The corpus-sweep experiment (internal/experiments.CorpusSweep, or
// `experiments -exp corpus`) builds on the same generator to measure
// the minimum-required-FPR distribution over generated corpora.
//
// # Remote campaigns
//
// `zhuyi serve` exposes the same stack as an HTTP campaign service
// (internal/server, endpoint reference in docs/api.md), and Client is
// its typed Go client: the same CampaignPoint values run against a
// remote server, with outcomes streamed back as each point completes.
// Remote outcomes carry run summaries, not traces (Result.Trace is
// nil):
//
//	cl := zhuyi.NewClient("http://127.0.0.1:8080")
//	res, err := cl.Campaign(ctx, points)
//	stats, _ := cl.Stats(ctx) // fresh vs memory vs disk evidence
//
// Where the layers sit — core model, simulator, scenarios, engine,
// store/replay, server, CLIs — and how one campaign point flows
// through them is documented in ARCHITECTURE.md.
package zhuyi

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/safety"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// Re-exported core types. See internal/core for full documentation.
type (
	// Params are the Zhuyi model parameters (paper §4.1 defaults via
	// DefaultParams).
	Params = core.Params
	// Estimator orchestrates the model over world snapshots.
	Estimator = core.Estimator
	// Estimate is the per-instant output: per-actor latencies and
	// per-camera FPR requirements.
	Estimate = core.Estimate
	// LatencyResult is the per-trajectory tolerable-latency search
	// output.
	LatencyResult = core.LatencyResult
	// OfflineOptions configures pre-deployment trace evaluation.
	OfflineOptions = core.OfflineOptions
	// OfflineResult is the evaluated per-camera series of a trace.
	OfflineResult = core.OfflineResult
	// SweepResult is the Figure-8 sensitivity grid.
	SweepResult = core.SweepResult
	// Trace is a recorded scenario execution.
	Trace = trace.Trace
	// RunResult is a closed-loop simulation outcome.
	RunResult = sim.Result
	// MRF is a minimum-required-FPR search result.
	MRF = metrics.MRF
	// RecordLevel selects how much of a run the simulator materializes
	// (see internal/trace.Level): RecordFull keeps every time-step row,
	// RecordSummary and RecordOff skip row recording for summary-only
	// campaigns while still computing collision/min-gap/frame summaries.
	RecordLevel = trace.Level
)

// Trace recording levels. Configure an engine's level via
// EngineOptions.Record — e.g. NewEngine(EngineOptions{Record:
// RecordSummary}) for campaigns that only read summaries; engines with
// a persistent store always record archivable points at RecordFull.
const (
	RecordFull    = trace.LevelFull
	RecordSummary = trace.LevelSummary
	RecordOff     = trace.LevelOff
)

// Aggregation modes for Equation 4.
const (
	AggPessimistic = core.AggPessimistic
	AggMean        = core.AggMean
	AggPercentile  = core.AggPercentile
)

// Scenario names from the paper's Table 1.
const (
	ScenarioCutOut                 = scenario.CutOut
	ScenarioCutOutFast             = scenario.CutOutFast
	ScenarioCutIn                  = scenario.CutIn
	ScenarioChallengingCutIn       = scenario.ChallengingCutIn
	ScenarioChallengingCutInCurved = scenario.ChallengingCutInCurved
	ScenarioVehicleFollowing       = scenario.VehicleFollowing
	ScenarioFrontRightActivity1    = scenario.FrontRightActivity1
	ScenarioFrontRightActivity2    = scenario.FrontRightActivity2
	ScenarioFrontRightActivity3    = scenario.FrontRightActivity3
)

// DefaultParams returns the paper's §4.1 model parameters.
func DefaultParams() Params { return core.DefaultParams() }

// NewEstimator builds an estimator with the paper's defaults: the
// five-camera rig, the analyzed camera subset, and 99th-percentile
// aggregation.
func NewEstimator() *Estimator { return core.NewEstimator() }

// Scenarios lists the nine validation scenario names in Table-1 order.
func Scenarios() []string { return scenario.Names() }

// RegisteredScenarios lists every scenario name the registry resolves,
// optionally filtered to names carrying all the given tags (e.g.
// "table1", "variant", "generated").
func RegisteredScenarios(tags ...string) []string { return scenario.Default().Names(tags...) }

// Scenario spec and generator re-exports. See internal/scenario for
// the full Spec language and family documentation.
type (
	// ScenarioSpec is a declarative, parameterized scenario that
	// compiles to a simulator configuration per (FPR, seed).
	ScenarioSpec = scenario.Spec
	// ScenarioFamily names a procedural generation family.
	ScenarioFamily = scenario.Family
	// GenOptions seeds and restricts a scenario generator.
	GenOptions = scenario.GenOptions
)

// ScenarioFamilies lists the procedural spec families.
func ScenarioFamilies() []ScenarioFamily { return scenario.Families() }

// GenerateScenarios deterministically samples n scenario specs from the
// generator options' seed and families, erroring on a family name
// outside ScenarioFamilies. The specs are valid and uniquely named;
// register them with RegisterScenario to run them by name.
func GenerateScenarios(opt GenOptions, n int) ([]ScenarioSpec, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return scenario.NewGenerator(opt).Generate(n), nil
}

// RegisterScenario adds a spec to the process-wide scenario registry,
// making it addressable by name in campaigns, MRF searches, and
// RunScenario. Names must be unique; the engine's result cache keys on
// them.
func RegisterScenario(sp ScenarioSpec) error { return scenario.RegisterSpec(sp) }

// RunScenario executes one seeded closed-loop run of a named scenario
// at a uniform per-camera frame processing rate and returns the
// recorded result. Any registered scenario resolves: the Table-1 nine,
// the ODD variants, and generated specs added via RegisterScenario.
func RunScenario(name string, fpr float64, seed int64) (*RunResult, error) {
	sc, ok := scenario.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("zhuyi: unknown scenario %q (see RegisteredScenarios())", name)
	}
	return metrics.RunScenario(sc, fpr, seed)
}

// FindMRF searches a scenario's minimum required FPR over the given
// rate grid and seed count (paper protocol: Table-1 grid, 10 seeds).
func FindMRF(name string, fprs []float64, seeds int) (MRF, error) {
	sc, ok := scenario.Lookup(name)
	if !ok {
		return MRF{}, fmt.Errorf("zhuyi: unknown scenario %q", name)
	}
	if len(fprs) == 0 {
		fprs = metrics.DefaultFPRGrid()
	}
	return metrics.FindMRF(sc, fprs, seeds)
}

// Sweep computes the Figure-8 sensitivity grid for a fixed tolerable
// distance in meters.
func Sweep(snMeters float64) *SweepResult { return experiments.Figure8(snMeters) }

// Adversarial scenario search re-exports. See internal/search for the
// evolutionary loop and its determinism contract.
type (
	// SearchOptions budgets an adversarial scenario search: families,
	// seed, generations, population, MRF seeds, rate grid, and the
	// engine to score on.
	SearchOptions = search.Options
	// SearchResult is a completed search: the budget that produced it
	// plus the hardest-N corpus sorted hardest first.
	SearchResult = search.Result
	// SearchCandidate is one evaluated corpus member with its MRF.
	SearchCandidate = search.Candidate
	// SearchGeneration summarizes one (family, generation) step of a
	// running search; SearchOptions.Progress receives one per step.
	SearchGeneration = search.GenerationSummary
)

// SearchScenarios evolves the configured spec families toward high
// minimum-required-FPR scenarios and returns the hardest-N corpus. The
// result is a deterministic function of the options — same families,
// seed, and budget give a bitwise-identical corpus regardless of the
// engine's worker count or cache state. Candidates are content-named,
// so an engine with a warm persistent store rescores a repeated search
// without a single fresh simulation. Register the corpus via
// RegisterScenario (or Result.Register) to run it like built-ins.
func SearchScenarios(ctx context.Context, opt SearchOptions) (*SearchResult, error) {
	return search.Search(ctx, opt)
}

// Batched run-campaign re-exports. See internal/engine for the full
// scheduler and cache documentation.
type (
	// Engine is the concurrent run engine: one scheduler and one result
	// cache shared by every campaign submitted to it.
	Engine = engine.Engine
	// EngineOptions sizes the worker pool and the result cache,
	// optionally attaches a persistent RunStore (the Store field) so
	// campaigns warm-start from runs archived by earlier processes, and
	// sets the engine's trace recording level (the Record field;
	// RecordFull by default).
	EngineOptions = engine.Options
	// CampaignStats summarizes a campaign: points executed, memory and
	// disk cache hits, failures, skipped points, wall time.
	CampaignStats = engine.CampaignStats
	// RunStore is the content-addressed on-disk campaign store: gzip
	// JSONL trace artifacts plus a manifest keyed by (scenario spec
	// fingerprint, FPR, seed, sim version). See internal/store.
	RunStore = store.Store
)

// NewEngine builds a private run engine. Most callers can pass nil to
// Campaign instead and share the process-wide engine.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// OpenStore opens (creating if needed) a persistent run store rooted
// at dir. Attach it to an engine via EngineOptions.Store: archived
// points then load from disk instead of simulating, and every fresh
// run is archived back. The `zhuyi record|replay|diff` subcommands
// build a differential regression workflow on the same store.
func OpenStore(dir string) (*RunStore, error) { return store.Open(dir) }

// CampaignPoint names one seeded closed-loop run.
type CampaignPoint struct {
	Scenario string
	FPR      float64
	Seed     int64
}

// CampaignOutcome pairs a point with its run result.
type CampaignOutcome struct {
	Point  CampaignPoint
	Result *RunResult
	Cached bool // served from the engine's cache
	Err    error
}

// CampaignResult is a completed campaign: outcomes in submission order
// plus stats.
type CampaignResult struct {
	Outcomes []CampaignOutcome
	Stats    CampaignStats
}

// Campaign executes a batch of seeded runs on eng (nil: the shared
// process-wide engine). Points run concurrently up to the engine's
// worker limit; points already simulated — by an earlier campaign, an
// MRF search, or an experiment generator on the same engine — are
// served from the cache. The first failing run cancels the still-queued
// remainder, and the returned error joins every real failure.
func Campaign(ctx context.Context, eng *Engine, points []CampaignPoint) (*CampaignResult, error) {
	if eng == nil {
		eng = engine.Default()
	}
	jobs := make([]engine.Job, len(points))
	for i, pt := range points {
		sc, ok := scenario.Lookup(pt.Scenario)
		if !ok {
			return nil, fmt.Errorf("zhuyi: unknown scenario %q (see RegisteredScenarios())", pt.Scenario)
		}
		jobs[i] = engine.Job{Scenario: sc, FPR: pt.FPR, Seed: pt.Seed}
	}
	batch, err := eng.RunBatch(ctx, jobs)
	res := &CampaignResult{Outcomes: make([]CampaignOutcome, len(points)), Stats: batch.Stats}
	for i, o := range batch.Outcomes {
		res.Outcomes[i] = CampaignOutcome{Point: points[i], Result: o.Result, Cached: o.Cached, Err: o.Err}
	}
	return res, err
}

// The Zhuyi-based AV system (§3.2) re-exports.
type (
	// Controller is the work-prioritizing per-camera rate controller.
	Controller = safety.Controller
	// ControllerConfig tunes margin, floors, caps, budget, hysteresis.
	ControllerConfig = safety.ControllerConfig
	// CheckResult is one safety-check evaluation with alarms and the
	// recommended escalation action.
	CheckResult = safety.CheckResult
	// Uncertainty is the perception-uncertainty extension (§5 future
	// work): fold measurement noise and confirmation inflation into the
	// model parameters via Apply.
	Uncertainty = core.Uncertainty
)

// NewController builds the §3.2 rate controller over the estimator's
// cameras with a multi-hypothesis trajectory predictor.
func NewController(est *Estimator, cfg ControllerConfig) *Controller {
	return safety.NewController(
		est,
		predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
		cfg,
	)
}

// DefaultControllerConfig returns the controller configuration used by
// the examples and the headline experiment.
func DefaultControllerConfig() ControllerConfig { return safety.DefaultControllerConfig() }

// CheckSafety compares operating per-camera rates against a Zhuyi
// estimate (the §3.2 safety check).
func CheckSafety(est Estimate, operating map[string]float64) CheckResult {
	return safety.Check(est, operating)
}
