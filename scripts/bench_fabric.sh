#!/usr/bin/env bash
# Renders BENCH_fabric.json from the fabric scaling benchmark (see
# internal/fabric/bench_test.go) and gates the distribution win: a cold
# 1080-point Table-1 campaign through a 3-replica fabric must sustain
# at least 2.0x the point throughput of the same campaign through a
# single replica.
#
# Per-point service time is modeled (each bench replica's injected
# runner sleeps 5 ms with Workers=1) so the measurement captures the
# coordinator's scheduling quality rather than the host's core count —
# three real replicas on a single-core CI runner would time-slice one
# CPU and show no scaling at all, while a DriveSim-class worker really
# does burn seconds per point. The replica identities are fixed labels,
# which pins the ring's scenario partition (1/4/4 across the nine
# Table-1 scenarios) and makes the ratio deterministic: ideal 3.0x,
# partition-capped at 1080/480 = 2.25x.
#
# Every benchmark runs BENCH_COUNT times (default 3) and the JSON
# carries both the maximum and the mean of each throughput series. The
# gate uses the maximum: timing noise on a shared machine only ever
# subtracts throughput, so the max is the reproducible estimate of
# intrinsic capacity, while the mean moves with whatever else the host
# was doing.
#
# Usage: scripts/bench_fabric.sh [output.json]
#   BENCH_TIME=2x BENCH_COUNT=5 scripts/bench_fabric.sh   # more samples
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_fabric.json}"
benchtime="${BENCH_TIME:-1x}"
benchcount="${BENCH_COUNT:-3}"

raw=$(go test -run '^$' -bench 'BenchmarkFabricCampaign' \
	-benchtime "$benchtime" -count "$benchcount" ./internal/fabric)
echo "$raw"

cpu=$(echo "$raw" | awk -F': ' '/^cpu:/ {print $2}')

samples() { # samples <name> <unit>
	echo "$raw" | awk -v want="$1" -v unit="$2" '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (name != want) next
			for (i = 2; i < NF; i++) if ($(i + 1) == unit) print $i
		}'
}

agg() { # agg <name> <unit> <max|mean>
	v=$(samples "$1" "$2" | awk -v how="$3" '
		NR == 1 || $1 > m { m = $1 }
		{ s += $1; n++ }
		END { if (n) printf "%.1f", (how == "mean") ? s / n : m }')
	if [ -z "$v" ]; then
		echo "bench_fabric: no $2 for $1" >&2
		exit 1
	fi
	echo "$v"
}

r1=$(agg 'BenchmarkFabricCampaign/replicas=1' points/s max)
r1_mean=$(agg 'BenchmarkFabricCampaign/replicas=1' points/s mean)
r3=$(agg 'BenchmarkFabricCampaign/replicas=3' points/s max)
r3_mean=$(agg 'BenchmarkFabricCampaign/replicas=3' points/s mean)

ratio=$(awk -v a="$r3" -v b="$r1" 'BEGIN { printf "%.2f", a / b }')
ratio_mean=$(awk -v a="$r3_mean" -v b="$r1_mean" 'BEGIN { printf "%.2f", a / b }')

cat > "$out" <<JSON
{
  "generated_by": "scripts/bench_fabric.sh (benchtime $benchtime, count $benchcount; points_per_s is the max over repetitions, _mean is the arithmetic mean)",
  "cpu": "$cpu",
  "workload": "cold 1080-point Table-1 campaign (9 scenarios x 12 rates x 10 seeds) through the fabric coordinator; per-point service time modeled at 5 ms, Workers=1 per replica (see internal/fabric/bench_test.go)",
  "replicas_1": { "points_per_s": $r1, "points_per_s_mean": $r1_mean },
  "replicas_3": { "points_per_s": $r3, "points_per_s_mean": $r3_mean },
  "ratios": {
    "replicas_3_vs_1": $ratio,
    "replicas_3_vs_1_mean": $ratio_mean
  },
  "notes": [
    "Service time is modeled (sleeping injected runner) so the benchmark measures the coordinator's partition/merge/stream scheduling, not host core count; on a single-core CI runner three real replicas would time-slice one CPU and no deployment-relevant scaling would be observable.",
    "Replica identities are fixed labels (http://worker-0..2), pinning the consistent-hash partition of the nine Table-1 scenarios at 1/4/4. The partition trades balance for per-scenario cache affinity, capping ideal 3.0x scaling at 1080/480 = 2.25x for this campaign; the gate is 2.0x.",
    "The gate uses the max over repetitions: scheduler noise only ever subtracts throughput, so the max is the reproducible estimate of intrinsic capacity; the _mean fields expose the spread."
  ]
}
JSON

echo "bench_fabric: wrote $out"
awk -v r="$ratio" 'BEGIN {
	printf "bench_fabric: 3-replica campaign throughput = %.2fx single-replica (gate: >= 2.0)\n", r
	exit (r >= 2.0) ? 0 : 1
}' || { echo "bench_fabric: scaling gate FAILED" >&2; exit 1; }
