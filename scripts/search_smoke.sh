#!/usr/bin/env bash
# CI search smoke: the adversarial search's determinism and warm-store
# contracts through the real binaries. Three checks:
#   1. Same (families, seed, budget) at different -workers counts →
#      bitwise-identical corpus files.
#   2. A repeated search over a warm -store performs zero fresh
#      simulations (the CLI stats line proves it).
#   3. `zhuyi serve` over the same warm store answers POST /v1/search
#      for the same budget without simulating either — GET /v1/stats
#      must still show zero executed points.
set -euo pipefail
cd "$(dirname "$0")/.."
bin=$(mktemp -d)/zhuyi
store=$(mktemp -d)
out=$(mktemp -d)
addr=127.0.0.1:8498
budget=(-families parked-corridor -seed 1 -generations 2 -population 3 -mrf-seeds 1 -fprs 5,30)
go build -o "$bin" ./cmd/zhuyi

# 1. Determinism across worker counts.
"$bin" scenarios search "${budget[@]}" -workers 1 -out "$out/corpus1.json" >/dev/null
"$bin" scenarios search "${budget[@]}" -workers 8 -out "$out/corpus8.json" >/dev/null
cmp "$out/corpus1.json" "$out/corpus8.json"
echo "search smoke: corpora identical across -workers 1 and 8"

# 2. Warm store rerun: zero fresh simulations, identical corpus.
"$bin" scenarios search "${budget[@]}" -store "$store" -out "$out/cold.json" >/dev/null 2>"$out/cold.err"
grep -q 'fresh simulations' "$out/cold.err"
"$bin" scenarios search "${budget[@]}" -store "$store" -out "$out/warm.json" >/dev/null 2>"$out/warm.err"
cat "$out/warm.err"
grep -q ' 0 fresh simulations' "$out/warm.err"
cmp "$out/cold.json" "$out/warm.json"
echo "search smoke: warm -store rerun simulated nothing"

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "server never became healthy" >&2
  return 1
}

# 3. The service over the warm store: same budget, zero executed.
"$bin" serve -addr "$addr" -store "$store" &
pid=$!
wait_healthy
curl -sf -X POST "http://$addr/v1/search" \
  -H 'Content-Type: application/json' \
  -d '{"families":["parked-corridor"],"seed":1,"generations":2,"population":3,"seeds":1,"fpr_grid":[5,30]}' \
  | tee "$out/server.ndjson"
grep -q '"corpus"' "$out/server.ndjson"
curl -s "http://$addr/v1/stats" | tee "$out/stats.json"
grep -q '"executed": 0' "$out/stats.json"
kill -TERM $pid
wait $pid
echo "search smoke: ok"
