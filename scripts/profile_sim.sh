#!/usr/bin/env bash
# Capture CPU and heap profiles of the closed-loop campaign hot path
# through the real CLI (worker pool, engine scheduling, lockstep
# batching — not just the Go benchmarks). Writes the binary next to
# the profiles so `go tool pprof` can symbolize without guessing.
#
# Usage: scripts/profile_sim.sh [outdir]           (default /tmp/zhuyi-prof)
#   PROFILE_ARGS="-tags table1 -fprs 10,30 -seeds 2" scripts/profile_sim.sh
#
# Analysis (see docs/benchmarks.md):
#   go tool pprof -top   OUTDIR/zhuyi OUTDIR/campaign.cpu.pprof
#   go tool pprof -peek  'Simulation..Step' OUTDIR/zhuyi OUTDIR/campaign.cpu.pprof
#   go tool pprof -inuse_space OUTDIR/zhuyi OUTDIR/campaign.mem.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-/tmp/zhuyi-prof}"
args="${PROFILE_ARGS:--tags table1 -fprs 10,30,60 -seeds 3}"
mkdir -p "$out"

go build -o "$out/zhuyi" ./cmd/zhuyi
# shellcheck disable=SC2086  # PROFILE_ARGS is intentionally word-split
"$out/zhuyi" campaign $args -quiet \
	-cpuprofile "$out/campaign.cpu.pprof" \
	-memprofile "$out/campaign.mem.pprof"

echo "profile_sim: wrote $out/campaign.cpu.pprof, $out/campaign.mem.pprof"
echo "profile_sim: next: go tool pprof -top $out/zhuyi $out/campaign.cpu.pprof"
