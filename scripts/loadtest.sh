#!/usr/bin/env bash
# Renders BENCH_serve.json from the /v1/rate serving-path load test and
# gates the PR's latency and allocation contracts:
#
#   - server-side rate p99 <= SERVE_P99_GATE_US (default 50 ms): the
#     handler-measured histogram from GET /v1/stats, accumulated over
#     both wire-mode windows at an offered LOAD_QPS (default 200 req/s)
#     while a background campaign streams the whole time. This is the
#     serving path's own latency — decode, compute, encode under the
#     admission gate — and sits near 1 ms even on a 1-core host with
#     the campaign saturating it;
#   - client-observed p99 <= LOAD_P99_GATE_US (default 1 s): the
#     starvation backstop. On a 1-core runner the client number is
#     dominated by OS/runtime scheduling between the saturated server
#     process and the driver (tens to hundreds of ms), so this gate is
#     deliberately loose — it exists to fail when rate requests sit
#     behind campaign compute for seconds, which is exactly what the
#     admission gate prevents;
#   - allocations per request on the serveRate hot path (measured by
#     benchmark, below net/http): <= 5 for JSON, exactly 0 for binary.
#
# The driver (cmd/loadtest) exits non-zero if ANY rate request fails,
# so "zero dropped under campaign pressure" is gated implicitly. The
# load is open-loop (paced tokens): latency reflects campaign-induced
# queueing, not the driver saturating itself; if the server can't
# sustain the offered rate the driver degrades to closed-loop and the
# p99 shows it.
#
# Usage: scripts/loadtest.sh [output.json]
#   LOAD_DURATION=10s LOAD_CONCURRENCY=64 scripts/loadtest.sh  # heavier
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_serve.json}"
duration="${LOAD_DURATION:-5s}"
concurrency="${LOAD_CONCURRENCY:-16}"
qps="${LOAD_QPS:-200}"
campaign="${LOAD_CAMPAIGN:-16}"
p99_gate_us="${LOAD_P99_GATE_US:-1000000}"
serve_p99_gate_us="${SERVE_P99_GATE_US:-50000}"
addr=127.0.0.1:8498

bindir=$(mktemp -d)
go build -o "$bindir/zhuyi" ./cmd/zhuyi
go build -o "$bindir/loadtest" ./cmd/loadtest

"$bindir/zhuyi" serve -addr "$addr" &
pid=$!
trap 'kill -TERM $pid 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$addr/healthz" >/dev/null

json_report=$("$bindir/loadtest" -addr "http://$addr" -mode json \
  -duration "$duration" -concurrency "$concurrency" -qps "$qps" -campaign "$campaign")
binary_report=$("$bindir/loadtest" -addr "http://$addr" -mode binary \
  -duration "$duration" -concurrency "$concurrency" -qps "$qps" -campaign "$campaign")

# The server's own per-endpoint histogram (this PR's /v1/stats latency
# block), accumulated across both windows: handler-measured time of
# the pooled rate path under the admission gate.
server_stats=$(curl -s "http://$addr/v1/stats")
srv_field() {
  echo "$server_stats" | awk -v key="\"$1\":" \
    '/"route": "POST \/v1\/rate"/{f=1} f && index($0, key){gsub(/,/,"",$2); print $2; exit}'
}
srv_count=$(srv_field count)
srv_mean=$(srv_field mean_us)
srv_p50=$(srv_field p50_us)
srv_p99=$(srv_field p99_us)
srv_max=$(srv_field max_us)
yields=$(echo "$server_stats" | awk '/"yields":/{gsub(/,/,"",$2); print $2; exit}')
waited_ms=$(echo "$server_stats" | awk '/"waited_ms":/{gsub(/,/,"",$2); print $2; exit}')
[ -n "$srv_p99" ] || { echo "loadtest: no POST /v1/rate latency row in /v1/stats" >&2; exit 1; }

kill -TERM $pid
wait $pid
trap - EXIT

# Allocations per request, measured below net/http at the serveRate
# boundary (the same numbers TestRateServeAllocBudget gates).
raw=$(go test -run '^$' -bench 'BenchmarkRateServe(JSON|Binary)$' \
  -benchtime 2000x -benchmem ./internal/server)
echo "$raw"
cpu=$(echo "$raw" | awk -F': ' '/^cpu:/ {print $2}')
allocs_json=$(echo "$raw" | awk '/^BenchmarkRateServeJSON/ {print $(NF-1)}')
allocs_binary=$(echo "$raw" | awk '/^BenchmarkRateServeBinary/ {print $(NF-1)}')
[ -n "$allocs_json" ] && [ -n "$allocs_binary" ] || {
  echo "loadtest: missing alloc counts in bench output" >&2; exit 1; }

cat > "$out" <<JSON
{
  "generated_by": "scripts/loadtest.sh (duration $duration, concurrency $concurrency, offered $qps req/s, background campaign batch $campaign)",
  "cpu": "$cpu",
  "workload": "open-loop POST /v1/rate at the offered rate against a live zhuyi serve while a fresh-seeded campaign streams continuously; latency is the client-observed HTTP round trip (see cmd/loadtest)",
  "json": $json_report,
  "binary": $binary_report,
  "rate_endpoint_server_side": {
    "count": $srv_count,
    "mean_us": $srv_mean,
    "p50_us": $srv_p50,
    "p99_us": $srv_p99,
    "max_us": $srv_max,
    "admission_yields": $yields,
    "admission_waited_ms": $waited_ms
  },
  "allocs_per_request": { "json": $allocs_json, "binary": $allocs_binary },
  "gates": { "server_p99_us_max": $serve_p99_gate_us, "client_p99_us_max": $p99_gate_us, "allocs_json_max": 5, "allocs_binary_max": 0 },
  "notes": [
    "rate_endpoint_server_side is the handler-measured histogram from GET /v1/stats (both wire-mode windows combined): the pooled decode-compute-encode path under the admission gate. This is the number the primary p99 gate holds.",
    "The client-observed json/binary latencies include OS and runtime scheduling between the saturated server process and the driver process; on a 1-core host that dominates (tens of ms) even though the handler itself answers in under a millisecond. The client gate is a loose starvation backstop.",
    "allocs_per_request is measured below net/http at the serveRate boundary (BenchmarkRateServeJSON/Binary with -benchmem): the pooled decoder, compute chain, and encoder together; net/http's own per-request allocations are not the PR's to fix.",
    "The driver fails hard if any rate request errors, so campaign pressure costing correctness (dropped or starved requests) cannot pass CI."
  ]
}
JSON
echo "loadtest: wrote $out"

p99() { echo "$1" | awk -F'[:,]' '/"p99"/ {gsub(/[ ]/,"",$2); print $2; exit}'; }
p99_json=$(p99 "$json_report")
p99_binary=$(p99 "$binary_report")

awk -v s="$srv_p99" -v gate="$serve_p99_gate_us" 'BEGIN {
  printf "loadtest: server-side rate p99 = %.0fus (gate: <= %dus)\n", s, gate
  exit (s <= gate) ? 0 : 1
}' || { echo "loadtest: server-side p99 gate FAILED" >&2; exit 1; }
awk -v j="$p99_json" -v b="$p99_binary" -v gate="$p99_gate_us" 'BEGIN {
  printf "loadtest: client p99 json = %.0fus, binary = %.0fus (backstop: <= %dus)\n", j, b, gate
  exit (j <= gate && b <= gate) ? 0 : 1
}' || { echo "loadtest: client p99 backstop FAILED" >&2; exit 1; }
awk -v a="$allocs_json" 'BEGIN {
  printf "loadtest: json allocs/request = %d (gate: <= 5)\n", a
  exit (a <= 5) ? 0 : 1
}' || { echo "loadtest: JSON alloc gate FAILED" >&2; exit 1; }
awk -v a="$allocs_binary" 'BEGIN {
  printf "loadtest: binary allocs/request = %d (gate: == 0)\n", a
  exit (a == 0) ? 0 : 1
}' || { echo "loadtest: binary alloc gate FAILED" >&2; exit 1; }
echo "loadtest: ok"
