#!/usr/bin/env bash
# CI fabric smoke: three worker replicas over one shared store behind a
# coordinator. Proves, end to end on real processes:
#
#   1. a cold campaign through the coordinator partitions across the
#      replicas and simulates each point exactly once (sum of the
#      workers' /v1/stats executed counters == points),
#   2. the identical rerun answers entirely from the coordinator's warm
#      manifest tier (0 fresh, all disk, no new replica work),
#   3. a cold MRF search proxies to the owning replica once and the
#      identical rerun answers warm from the manifest (proxied stays 1),
#   4. SIGKILLing a replica mid-campaign is absorbed: the campaign
#      completes with 0 failed points, the coordinator reports retries
#      and the victim unhealthy, and — the zero-duplicate invariant —
#      every fresh simulation a surviving replica ran created a new
#      store entry (executed delta == archived delta per survivor; a
#      duplicate of an already-archived point would simulate fresh but
#      archive nothing),
#   5. after the kill, a warm rerun of the whole campaign answers every
#      point from the store: nothing the dead replica streamed or
#      archived was lost.
#
# Ports are fixed: the ring hashes replica URLs, so fixed ports pin the
# scenario partition (8561 owns 4 of the 9 Table-1 scenarios, 8562
# owns 3, 8563 owns 2) and the victim (8561) is guaranteed a share.
set -euo pipefail
cd "$(dirname "$0")/.."
bin=$(mktemp -d)/zhuyi
store=$(mktemp -d)
w1=127.0.0.1:8561
w2=127.0.0.1:8562
w3=127.0.0.1:8563
coord=127.0.0.1:8564
grid=1,2,3,4,5,6,7,8,9,10,15,30
seeds=6
points=648   # 9 scenarios x 12 rates x 6 seeds
go build -o "$bin" ./cmd/zhuyi

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "fabric smoke: $1 never became healthy" >&2
  return 1
}

# stat <addr> <field>: first numeric value of a field in /v1/stats.
stat() {
  curl -s "http://$1/v1/stats" | awk -v k="\"$2\":" '$1 == k { gsub(/[^0-9]/, "", $2); print $2; exit }'
}

# -workers 1 keeps each replica's stream slow enough that the SIGKILL
# below reliably lands mid-campaign, even on a many-core runner.
"$bin" serve -addr "$w1" -store "$store" -workers 1 & pids+=($!); p1=$!
"$bin" serve -addr "$w2" -store "$store" -workers 1 & pids+=($!); p2=$!
"$bin" serve -addr "$w3" -store "$store" -workers 1 & pids+=($!); p3=$!
wait_healthy "$w1"; wait_healthy "$w2"; wait_healthy "$w3"

"$bin" serve -addr "$coord" -coordinator -replicas "http://$w1,http://$w2,http://$w3" \
  -store "$store" -backoff 100ms & pids+=($!); pc=$!
wait_healthy "$coord"

# 1. Cold 18-point campaign: partitioned, each point simulated once.
"$bin" campaign -server "http://$coord" -fprs 30 -seeds 2 -quiet | tee /tmp/fabric-cold.out
grep -q '18 fresh, 0 memory, 0 disk, 0 failed' /tmp/fabric-cold.out
executed=$(( $(stat "$w1" executed) + $(stat "$w2" executed) + $(stat "$w3" executed) ))
if [ "$executed" -ne 18 ]; then
  echo "fabric smoke: $executed fresh simulations across workers for 18 points" >&2
  exit 1
fi

# 2. Warm rerun: the coordinator's manifest tier answers everything.
"$bin" campaign -server "http://$coord" -fprs 30 -seeds 2 -quiet | tee /tmp/fabric-warm.out
grep -q '0 fresh, 0 memory, 18 disk, 0 failed' /tmp/fabric-warm.out

# 3. MRF: cold proxies to the owning replica, warm answers from the manifest.
curl -sf "http://$coord/v1/mrf/cut-out?seeds=2" | grep -q '"mrf"'
[ "$(stat "$coord" proxied)" -eq 1 ]
curl -sf "http://$coord/v1/mrf/cut-out?seeds=2" | grep -q '"mrf"'
[ "$(stat "$coord" proxied)" -eq 1 ]
[ "$(stat "$coord" manifest_hits)" -gt 0 ]

# 4. Replica death mid-campaign. Snapshot the survivors, start the full
# campaign in the background, and SIGKILL the biggest owner mid-flight.
e2=$(stat "$w2" executed); a2=$(stat "$w2" archived)
e3=$(stat "$w3" executed); a3=$(stat "$w3" archived)
"$bin" campaign -server "http://$coord" -fprs "$grid" -seeds "$seeds" -quiet \
  > /tmp/fabric-kill.out & cpid=$!
# Kill early rather than late: a victim killed before it answers
# anything still exercises retry; a campaign that finishes before the
# kill exercises nothing.
sleep 1
kill -9 "$p1"
if ! wait "$cpid"; then
  echo "fabric smoke: campaign failed after replica kill" >&2
  cat /tmp/fabric-kill.out >&2
  exit 1
fi
cat /tmp/fabric-kill.out
grep -q ', 0 failed, 0 skipped' /tmp/fabric-kill.out
[ "$(stat "$coord" retried)" -gt 0 ]
curl -s "http://$coord/v1/stats" | grep -A1 "\"url\": \"http://$w1\"" | grep -q '"healthy": false'
# Zero duplicates: every fresh run a survivor executed archived a NEW
# store entry; re-simulating a point the victim had archived would
# raise executed without raising archived.
d2e=$(( $(stat "$w2" executed) - e2 )); d2a=$(( $(stat "$w2" archived) - a2 ))
d3e=$(( $(stat "$w3" executed) - e3 )); d3a=$(( $(stat "$w3" archived) - a3 ))
if [ "$d2e" -ne "$d2a" ] || [ "$d3e" -ne "$d3a" ]; then
  echo "fabric smoke: duplicate simulations after kill (w2 +${d2e} fresh/+${d2a} archived, w3 +${d3e} fresh/+${d3a} archived)" >&2
  exit 1
fi

# 5. Nothing lost: the whole campaign is warm from the shared store.
"$bin" campaign -server "http://$coord" -fprs "$grid" -seeds "$seeds" -quiet | tee /tmp/fabric-warm2.out
grep -q "0 fresh, 0 memory, $points disk, 0 failed" /tmp/fabric-warm2.out
[ "$(wc -l < "$store/manifest.jsonl")" -eq "$points" ]

# Graceful shutdown of everything still alive (drain must exit 0).
kill -TERM "$pc"; wait "$pc"
kill -TERM "$p2"; wait "$p2"
kill -TERM "$p3"; wait "$p3"
pids=()
echo "fabric smoke: ok"
