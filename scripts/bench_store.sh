#!/usr/bin/env bash
# Renders BENCH_replay.json from the persistent-store + differential
# replay benchmarks (internal/replay/bench_test.go) and gates the two
# headline claims of the binary trace format:
#
#   1. the disk tier's Get through the ZYT1 decoder must run at least
#      5x the same Get through the legacy gzip-JSONL decoder over
#      identical archived content, and
#   2. serving an archived result from disk must be at least as fast
#      as re-simulating the point (replay-vs-simulate >= 1x), so the
#      store is never a slower path than the simulator it short-cuts.
#
# Every benchmark runs BENCH_COUNT times (default 3) and the gates use
# the minimum of each timing series: noise on a shared machine is
# strictly additive, so the minimum is the reproducible estimate of
# intrinsic cost. The mean is carried alongside for review.
#
# Usage: scripts/bench_store.sh [output.json]
#   BENCH_TIME=2s BENCH_COUNT=5 scripts/bench_store.sh   # more samples
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_replay.json}"
benchtime="${BENCH_TIME:-1s}"
benchcount="${BENCH_COUNT:-3}"

raw=$(go test -run '^$' \
	-bench 'BenchmarkReplayVsSimulate|BenchmarkMRFSearch|BenchmarkPersistentWarmStart' \
	-benchtime "$benchtime" -count "$benchcount" ./internal/replay)
echo "$raw"

cpu=$(echo "$raw" | awk -F': ' '/^cpu:/ {print $2}')

samples() { # samples <name>
	echo "$raw" | awk -v want="$1" '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (name != want) next
			for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") print $i
		}'
}

agg() { # agg <name> <min|mean>
	v=$(samples "$1" | awk -v how="$2" '
		NR == 1 || $1 < m { m = $1 }
		{ s += $1; n++ }
		END { if (n) printf "%.0f", (how == "mean") ? s / n : m }')
	if [ -z "$v" ]; then
		echo "bench_store: no ns/op for $1" >&2
		exit 1
	fi
	echo "$v"
}

sim_ns=$(agg BenchmarkReplayVsSimulate/Simulate min)
sim_ns_mean=$(agg BenchmarkReplayVsSimulate/Simulate mean)
replay_ns=$(agg BenchmarkReplayVsSimulate/Replay min)
replay_ns_mean=$(agg BenchmarkReplayVsSimulate/Replay mean)
zyt_ns=$(agg BenchmarkReplayVsSimulate/DiskGetZYT min)
zyt_ns_mean=$(agg BenchmarkReplayVsSimulate/DiskGetZYT mean)
jsonl_ns=$(agg BenchmarkReplayVsSimulate/DiskGetJSONL min)
jsonl_ns_mean=$(agg BenchmarkReplayVsSimulate/DiskGetJSONL mean)
mrf_cold_ns=$(agg BenchmarkMRFSearch/ColdSimulate min)
mrf_warm_ns=$(agg BenchmarkMRFSearch/WarmManifest min)
camp_cold_ns=$(agg BenchmarkPersistentWarmStart/ColdSimulate min)
camp_warm_ns=$(agg BenchmarkPersistentWarmStart/WarmDisk min)

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

r_zyt_vs_jsonl=$(ratio "$jsonl_ns" "$zyt_ns")
r_get_vs_sim=$(ratio "$sim_ns" "$zyt_ns")
r_warm_manifest=$(ratio "$mrf_cold_ns" "$mrf_warm_ns")

cat > "$out" <<JSON
{
  "generated_by": "scripts/bench_store.sh (benchtime $benchtime, count $benchcount; ns values are min over repetitions, _mean is the arithmetic mean)",
  "cpu": "$cpu",
  "workload": "cut-out @ 30 FPR (one archived ~2500-row trace); MRF search: cut-out over the Table-1 grid, 2 seeds; warm-start campaign: 4 seeds",
  "point": {
    "simulate":       { "ns_per_op": $sim_ns, "ns_per_op_mean": $sim_ns_mean },
    "replay":         { "ns_per_op": $replay_ns, "ns_per_op_mean": $replay_ns_mean },
    "disk_get_zyt":   { "ns_per_op": $zyt_ns, "ns_per_op_mean": $zyt_ns_mean },
    "disk_get_jsonl": { "ns_per_op": $jsonl_ns, "ns_per_op_mean": $jsonl_ns_mean }
  },
  "campaign": {
    "mrf_cold_simulate_ns": $mrf_cold_ns,
    "mrf_warm_manifest_ns": $mrf_warm_ns,
    "warmstart_cold_simulate_ns": $camp_cold_ns,
    "warmstart_warm_disk_ns": $camp_warm_ns
  },
  "ratios": {
    "disk_get_zyt_vs_jsonl": $r_zyt_vs_jsonl,
    "simulate_vs_disk_get_zyt": $r_get_vs_sim,
    "mrf_cold_vs_warm_manifest": $r_warm_manifest
  },
  "notes": [
    "disk_get_zyt vs disk_get_jsonl decode identical archived content (the store is migrated between formats in the bench fixture), so the ratio isolates the ZYT1 columnar decoder against the legacy gzip-JSONL decoder: gate >= 5x.",
    "simulate_vs_disk_get_zyt compares acquiring one archived result from the disk tier against re-simulating the point from scratch: gate >= 1x, so warm-starting is never slower than the simulator it replaces. Against a DriveSim-class stack, where one closed-loop run costs minutes of GPU inference, the same ratio grows by orders of magnitude.",
    "mrf_cold_vs_warm_manifest is the manifest-only warm tier: MRF-style collision waves answer from the store manifest alone (no artifact decode, no simulation).",
    "replay = artifact load + offline evaluator + alarm count + trace-re-derived min-gap/ego-stopped: the bit-stable regression summary zhuyi diff re-derives without touching the simulator.",
    "docs/benchmarks.md explains every series; regenerate with scripts/bench_store.sh."
  ]
}
JSON

echo "bench_store: wrote $out"
awk -v r="$r_zyt_vs_jsonl" 'BEGIN {
	printf "bench_store: disk Get via ZYT1 = %.2fx the gzip-JSONL decoder (gate: >= 5.0)\n", r
	exit (r >= 5.0) ? 0 : 1
}' || { echo "bench_store: ZYT decode speedup gate FAILED" >&2; exit 1; }
awk -v r="$r_get_vs_sim" 'BEGIN {
	printf "bench_store: disk Get = %.2fx a fresh simulation (gate: >= 1.0)\n", r
	exit (r >= 1.0) ? 0 : 1
}' || { echo "bench_store: replay-vs-simulate gate FAILED" >&2; exit 1; }
