#!/usr/bin/env bash
# CI server smoke: start `zhuyi serve` with a persistent store, run a
# campaign through the Go client (zhuyi campaign -server), assert the
# identical second request answers from the memory tier, then restart
# the server over the same store and assert the disk tier — the last
# check read from GET /v1/stats, the first two from the client's own
# stats line. Also exercises graceful SIGTERM drain (both serves must
# exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."
bin=$(mktemp -d)/zhuyi
store=$(mktemp -d)
addr=127.0.0.1:8497
go build -o "$bin" ./cmd/zhuyi

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "server never became healthy" >&2
  return 1
}

"$bin" serve -addr "$addr" -store "$store" &
pid=$!
wait_healthy

"$bin" campaign -server "http://$addr" -scenarios cut-out -fprs 30 -seeds 2 | tee /tmp/smoke-cold.out
grep -q '2 fresh, 0 memory, 0 disk' /tmp/smoke-cold.out

"$bin" campaign -server "http://$addr" -scenarios cut-out -fprs 30 -seeds 2 | tee /tmp/smoke-warm.out
grep -q '0 fresh, 2 memory, 0 disk' /tmp/smoke-warm.out

kill -TERM $pid
wait $pid   # graceful drain must exit 0

"$bin" serve -addr "$addr" -store "$store" &
pid=$!
wait_healthy

"$bin" campaign -server "http://$addr" -scenarios cut-out -fprs 30 -seeds 2 | tee /tmp/smoke-disk.out
grep -q '0 fresh, 0 memory, 2 disk' /tmp/smoke-disk.out

curl -s "http://$addr/v1/stats" | tee /tmp/smoke-stats.out
grep -q '"disk_hits": 2' /tmp/smoke-stats.out
grep -q '"executed": 0' /tmp/smoke-stats.out

kill -TERM $pid
wait $pid
echo "server smoke: ok"
