#!/usr/bin/env bash
# Renders BENCH_sim.json from the steppable-core benchmarks (see
# internal/sim/bench_test.go and campaign_bench_test.go) and gates the
# headline speedup: a summary-level campaign must run at least 1.5x
# the throughput of the pre-refactor full-level loop (the frozen
# legacyRun baseline this PR replaced).
#
# Usage: scripts/bench_sim.sh [output.json]
#   BENCH_TIME=3x scripts/bench_sim.sh   # more iterations per bench
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_sim.json}"
benchtime="${BENCH_TIME:-2x}"

raw=$(go test -run '^$' \
	-bench 'BenchmarkStep$|BenchmarkStepLegacyLoop$|BenchmarkCampaign(LegacyLoop|FullTrace|SummaryOnly)$' \
	-benchtime "$benchtime" ./internal/sim)
echo "$raw"

cpu=$(echo "$raw" | awk -F': ' '/^cpu:/ {print $2}')

# Benchmark lines look like:
#   BenchmarkStep/full-4  10  3898707 ns/op  2000 steps/op  705779 B/op  28 allocs/op
# metric() pulls one "<value> <unit>" field for a benchmark name
# (CPU-count suffix stripped).
metric() { # metric <name> <unit>
	echo "$raw" | awk -v want="$1" -v unit="$2" '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (name != want) next
			for (i = 2; i < NF; i++) if ($(i + 1) == unit) { print $i; exit }
		}'
}

need() {
	v=$(metric "$1" "$2")
	if [ -z "$v" ]; then
		echo "bench_sim: no $2 for $1" >&2
		exit 1
	fi
	echo "$v"
}

step_legacy_ns=$(need BenchmarkStepLegacyLoop ns/op)
step_legacy_allocs=$(need BenchmarkStepLegacyLoop allocs/op)
step_full_ns=$(need BenchmarkStep/full ns/op)
step_full_allocs=$(need BenchmarkStep/full allocs/op)
step_summary_ns=$(need BenchmarkStep/summary ns/op)
step_summary_allocs=$(need BenchmarkStep/summary allocs/op)
step_off_ns=$(need BenchmarkStep/off ns/op)
step_off_allocs=$(need BenchmarkStep/off allocs/op)
camp_legacy_ns=$(need BenchmarkCampaignLegacyLoop ns/op)
camp_legacy_bytes=$(need BenchmarkCampaignLegacyLoop B/op)
camp_legacy_allocs=$(need BenchmarkCampaignLegacyLoop allocs/op)
camp_full_ns=$(need BenchmarkCampaignFullTrace ns/op)
camp_full_bytes=$(need BenchmarkCampaignFullTrace B/op)
camp_full_allocs=$(need BenchmarkCampaignFullTrace allocs/op)
camp_summary_ns=$(need BenchmarkCampaignSummaryOnly ns/op)
camp_summary_bytes=$(need BenchmarkCampaignSummaryOnly B/op)
camp_summary_allocs=$(need BenchmarkCampaignSummaryOnly allocs/op)
points=$(need BenchmarkCampaignSummaryOnly points/op)

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

r_summary_vs_legacy=$(ratio "$camp_legacy_ns" "$camp_summary_ns")
r_full_vs_legacy=$(ratio "$camp_legacy_ns" "$camp_full_ns")
r_summary_vs_full=$(ratio "$camp_full_ns" "$camp_summary_ns")
r_step_alloc_drop=$(ratio "$step_legacy_allocs" "$step_summary_allocs")

cat > "$out" <<JSON
{
  "generated_by": "scripts/bench_sim.sh (benchtime $benchtime)",
  "cpu": "$cpu",
  "workload": {
    "step": "one 20 s / dt 10 ms closed-loop run (2 actors, default 5-camera rig, 30 FPR); see internal/sim/bench_test.go",
    "campaign": "$points engine-scheduled points: 9 Table-1 scenarios x 12-rate Table-1 grid x 10 seeds; see internal/sim/campaign_bench_test.go"
  },
  "step": {
    "legacy_loop": { "ns_per_run": $step_legacy_ns, "allocs_per_run": $step_legacy_allocs },
    "full":        { "ns_per_run": $step_full_ns, "allocs_per_run": $step_full_allocs },
    "summary":     { "ns_per_run": $step_summary_ns, "allocs_per_run": $step_summary_allocs },
    "off":         { "ns_per_run": $step_off_ns, "allocs_per_run": $step_off_allocs }
  },
  "campaign": {
    "legacy_loop": { "ns_per_campaign": $camp_legacy_ns, "bytes_per_campaign": $camp_legacy_bytes, "allocs_per_campaign": $camp_legacy_allocs },
    "full":        { "ns_per_campaign": $camp_full_ns, "bytes_per_campaign": $camp_full_bytes, "allocs_per_campaign": $camp_full_allocs },
    "summary":     { "ns_per_campaign": $camp_summary_ns, "bytes_per_campaign": $camp_summary_bytes, "allocs_per_campaign": $camp_summary_allocs }
  },
  "ratios": {
    "campaign_summary_vs_prerefactor": $r_summary_vs_legacy,
    "campaign_full_vs_prerefactor": $r_full_vs_legacy,
    "campaign_summary_vs_full": $r_summary_vs_full,
    "step_allocs_prerefactor_vs_summary": $r_step_alloc_drop
  },
  "notes": [
    "legacy_loop is the frozen pre-refactor sim.Run (golden_equiv_test.go), i.e. the throughput campaigns had before this refactor; it runs on today's subsystem code, so the comparison isolates the loop structure, recording level, and allocation diet.",
    "summary-vs-full is smaller than summary-vs-prerefactor because the simulator's closed-loop compute (sensor cones, perception filters, IDM planning) dominates a step once recording no longer allocates; the recording level removes the trace materialization, the stage refactor removed the per-step allocation churn.",
    "docs/benchmarks.md explains every series; regenerate with scripts/bench_sim.sh."
  ]
}
JSON

echo "bench_sim: wrote $out"
awk -v r="$r_summary_vs_legacy" 'BEGIN {
	printf "bench_sim: summary-level campaign throughput = %.2fx the pre-refactor full-level loop (gate: >= 1.5)\n", r
	exit (r >= 1.5) ? 0 : 1
}' || { echo "bench_sim: speedup gate FAILED" >&2; exit 1; }
