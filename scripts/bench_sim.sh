#!/usr/bin/env bash
# Renders BENCH_sim.json from the steppable-core benchmarks (see
# internal/sim/bench_test.go and campaign_bench_test.go) and gates the
# two headline speedups:
#
#   1. a summary-level campaign must run at least 1.5x the throughput
#      of the pre-refactor full-level loop (the frozen legacyRun
#      baseline the steppable-core refactor replaced), and
#   2. at least 2.0x the throughput of the PR-5 steppable core (the
#      frozen ns_per_campaign recorded below, measured on the same
#      reference CPU), the closed-loop compute-diet target.
#
# Every benchmark runs BENCH_COUNT times (default 3) and the JSON
# carries both the minimum and the mean of each timing series. The
# gates use the minimum: timing noise on a shared machine is strictly
# additive, so the minimum is the reproducible estimate of intrinsic
# cost, while the mean moves with whatever else the host was doing.
# The mean is reported alongside so regressions hiding behind a lucky
# minimum still show up in review.
#
# Usage: scripts/bench_sim.sh [output.json]
#   BENCH_TIME=3x BENCH_COUNT=5 scripts/bench_sim.sh   # more samples
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_sim.json}"
benchtime="${BENCH_TIME:-2x}"
benchcount="${BENCH_COUNT:-3}"

# PR-5 reference: BENCH_sim.json as committed by the steppable-core PR,
# summary-level campaign on Intel(R) Xeon(R) Processor @ 2.10GHz.
pr5_campaign_summary_ns=2681533492

raw=$(go test -run '^$' \
	-bench 'BenchmarkStep$|BenchmarkStepLegacyLoop$|BenchmarkCampaign(LegacyLoop|FullTrace|SummaryOnly)$' \
	-benchtime "$benchtime" -count "$benchcount" ./internal/sim)
echo "$raw"

cpu=$(echo "$raw" | awk -F': ' '/^cpu:/ {print $2}')

# Benchmark lines look like:
#   BenchmarkStep/full-4  10  3898707 ns/op  2000 steps/op  705779 B/op  28 allocs/op
# samples() pulls every "<value> <unit>" field for a benchmark name
# (CPU-count suffix stripped), one line per -count repetition.
samples() { # samples <name> <unit>
	echo "$raw" | awk -v want="$1" -v unit="$2" '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (name != want) next
			for (i = 2; i < NF; i++) if ($(i + 1) == unit) print $i
		}'
}

agg() { # agg <name> <unit> <min|mean>
	v=$(samples "$1" "$2" | awk -v how="$3" '
		NR == 1 || $1 < m { m = $1 }
		{ s += $1; n++ }
		END { if (n) printf "%.0f", (how == "mean") ? s / n : m }')
	if [ -z "$v" ]; then
		echo "bench_sim: no $2 for $1" >&2
		exit 1
	fi
	echo "$v"
}

step_legacy_ns=$(agg BenchmarkStepLegacyLoop ns/op min)
step_legacy_ns_mean=$(agg BenchmarkStepLegacyLoop ns/op mean)
step_legacy_allocs=$(agg BenchmarkStepLegacyLoop allocs/op min)
step_full_ns=$(agg BenchmarkStep/full ns/op min)
step_full_ns_mean=$(agg BenchmarkStep/full ns/op mean)
step_full_allocs=$(agg BenchmarkStep/full allocs/op min)
step_summary_ns=$(agg BenchmarkStep/summary ns/op min)
step_summary_ns_mean=$(agg BenchmarkStep/summary ns/op mean)
step_summary_allocs=$(agg BenchmarkStep/summary allocs/op min)
step_off_ns=$(agg BenchmarkStep/off ns/op min)
step_off_ns_mean=$(agg BenchmarkStep/off ns/op mean)
step_off_allocs=$(agg BenchmarkStep/off allocs/op min)
camp_legacy_ns=$(agg BenchmarkCampaignLegacyLoop ns/op min)
camp_legacy_ns_mean=$(agg BenchmarkCampaignLegacyLoop ns/op mean)
camp_legacy_bytes=$(agg BenchmarkCampaignLegacyLoop B/op min)
camp_legacy_allocs=$(agg BenchmarkCampaignLegacyLoop allocs/op min)
camp_full_ns=$(agg BenchmarkCampaignFullTrace ns/op min)
camp_full_ns_mean=$(agg BenchmarkCampaignFullTrace ns/op mean)
camp_full_bytes=$(agg BenchmarkCampaignFullTrace B/op min)
camp_full_allocs=$(agg BenchmarkCampaignFullTrace allocs/op min)
camp_summary_ns=$(agg BenchmarkCampaignSummaryOnly ns/op min)
camp_summary_ns_mean=$(agg BenchmarkCampaignSummaryOnly ns/op mean)
camp_summary_bytes=$(agg BenchmarkCampaignSummaryOnly B/op min)
camp_summary_allocs=$(agg BenchmarkCampaignSummaryOnly allocs/op min)
points=$(agg BenchmarkCampaignSummaryOnly points/op min)

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

r_summary_vs_legacy=$(ratio "$camp_legacy_ns" "$camp_summary_ns")
r_full_vs_legacy=$(ratio "$camp_legacy_ns" "$camp_full_ns")
r_summary_vs_full=$(ratio "$camp_full_ns" "$camp_summary_ns")
r_summary_vs_pr5=$(ratio "$pr5_campaign_summary_ns" "$camp_summary_ns")
r_summary_vs_pr5_mean=$(ratio "$pr5_campaign_summary_ns" "$camp_summary_ns_mean")
r_step_alloc_drop=$(ratio "$step_legacy_allocs" "$step_summary_allocs")

cat > "$out" <<JSON
{
  "generated_by": "scripts/bench_sim.sh (benchtime $benchtime, count $benchcount; ns values are min over repetitions, _mean is the arithmetic mean)",
  "cpu": "$cpu",
  "workload": {
    "step": "one 20 s / dt 10 ms closed-loop run (2 actors, default 5-camera rig, 30 FPR); see internal/sim/bench_test.go",
    "campaign": "$points engine-scheduled points: 9 Table-1 scenarios x 12-rate Table-1 grid x 10 seeds; see internal/sim/campaign_bench_test.go"
  },
  "step": {
    "legacy_loop": { "ns_per_run": $step_legacy_ns, "ns_per_run_mean": $step_legacy_ns_mean, "allocs_per_run": $step_legacy_allocs },
    "full":        { "ns_per_run": $step_full_ns, "ns_per_run_mean": $step_full_ns_mean, "allocs_per_run": $step_full_allocs },
    "summary":     { "ns_per_run": $step_summary_ns, "ns_per_run_mean": $step_summary_ns_mean, "allocs_per_run": $step_summary_allocs },
    "off":         { "ns_per_run": $step_off_ns, "ns_per_run_mean": $step_off_ns_mean, "allocs_per_run": $step_off_allocs }
  },
  "campaign": {
    "legacy_loop": { "ns_per_campaign": $camp_legacy_ns, "ns_per_campaign_mean": $camp_legacy_ns_mean, "bytes_per_campaign": $camp_legacy_bytes, "allocs_per_campaign": $camp_legacy_allocs },
    "full":        { "ns_per_campaign": $camp_full_ns, "ns_per_campaign_mean": $camp_full_ns_mean, "bytes_per_campaign": $camp_full_bytes, "allocs_per_campaign": $camp_full_allocs },
    "summary":     { "ns_per_campaign": $camp_summary_ns, "ns_per_campaign_mean": $camp_summary_ns_mean, "bytes_per_campaign": $camp_summary_bytes, "allocs_per_campaign": $camp_summary_allocs }
  },
  "baseline_pr5": {
    "ns_per_campaign_summary": $pr5_campaign_summary_ns,
    "cpu": "Intel(R) Xeon(R) Processor @ 2.10GHz",
    "note": "frozen summary-campaign cost from the steppable-core PR's committed BENCH_sim.json; the compute-diet gate measures against it"
  },
  "ratios": {
    "campaign_summary_vs_prerefactor": $r_summary_vs_legacy,
    "campaign_full_vs_prerefactor": $r_full_vs_legacy,
    "campaign_summary_vs_full": $r_summary_vs_full,
    "campaign_summary_vs_pr5": $r_summary_vs_pr5,
    "campaign_summary_vs_pr5_mean": $r_summary_vs_pr5_mean,
    "step_allocs_prerefactor_vs_summary": $r_step_alloc_drop
  },
  "notes": [
    "legacy_loop is the frozen pre-refactor sim.Run (golden_equiv_test.go), i.e. the throughput campaigns had before the steppable-core refactor; it runs on today's subsystem code, so the comparison isolates the loop structure, recording level, and allocation diet.",
    "campaign_summary_vs_pr5 compares against the frozen PR-5 number above, so it measures the closed-loop compute diet alone: SoA scatter memos, precompiled centerlines, copy-free call boundaries, lockstep batching.",
    "gates use the min over repetitions: scheduler noise only ever adds time, so the min is the reproducible estimate of intrinsic cost; the _mean fields expose the spread.",
    "docs/benchmarks.md explains every series; regenerate with scripts/bench_sim.sh."
  ]
}
JSON

echo "bench_sim: wrote $out"
awk -v r="$r_summary_vs_legacy" 'BEGIN {
	printf "bench_sim: summary-level campaign throughput = %.2fx the pre-refactor full-level loop (gate: >= 1.5)\n", r
	exit (r >= 1.5) ? 0 : 1
}' || { echo "bench_sim: pre-refactor speedup gate FAILED" >&2; exit 1; }
awk -v r="$r_summary_vs_pr5" 'BEGIN {
	printf "bench_sim: summary-level campaign throughput = %.2fx the PR-5 steppable core (gate: >= 2.0)\n", r
	exit (r >= 2.0) ? 0 : 1
}' || { echo "bench_sim: compute-diet speedup gate FAILED" >&2; exit 1; }
