#!/usr/bin/env bash
# CI readme-smoke: execute every ```sh block in README.md verbatim, in
# order, from the repo root. This is what keeps the README's command
# blocks copy-paste runnable — a drifted command fails the job.
set -euo pipefail
cd "$(dirname "$0")/.."
block=$(mktemp)
trap 'rm -f "$block"' EXIT
awk '/^```sh$/{f=1;next} /^```/{f=0} f' README.md > "$block"
echo "--- README sh blocks ---"
cat "$block"
echo "------------------------"
bash -euo pipefail "$block"
rm -rf runs
echo "readme smoke: ok"
