package zhuyi

// The typed Go client for the campaign service (`zhuyi serve`,
// internal/server). Client mirrors the local Campaign API: the same
// CampaignPoint values go in, a CampaignResult comes out — the only
// difference is that over the wire each outcome carries the run
// summary (collision, closest approach, frames processed), never the
// full trace; Outcome.Result.Trace is nil for remote campaigns. (The
// service runs store-less points at summary recording level, so there
// is no trace to ship in the first place; store-backed points are
// archived server-side and addressable via the store endpoints.)

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Wire types of the campaign service, re-exported for client callers.
// See internal/server's api.go for field documentation; docs/api.md is
// the endpoint reference.
type (
	// PointResult is one streamed campaign-point outcome, including the
	// tier that answered it ("fresh", "memory", or "disk").
	PointResult = server.PointResult
	// RateRequest is a kinematic snapshot for the online §3.2 estimate.
	RateRequest = server.RateRequest
	// RateResponse is the online estimate: per-camera FPR requirements,
	// controller-allocated rates, optional safety check.
	RateResponse = server.RateResponse
	// AgentState is the wire form of one vehicle's kinematic state.
	AgentState = server.AgentState
	// MRFResponse is a remote minimum-required-FPR search result.
	MRFResponse = server.MRFResponse
	// ServiceStats are the service's engine/server/store counters — the
	// evidence of which tier (fresh, memory, disk) answers requests.
	ServiceStats = server.StatsResponse
	// ScenarioInfo is one catalog entry of GET /v1/scenarios.
	ScenarioInfo = scenario.Info
	// SearchRequest is the budget of a remote adversarial scenario
	// search (POST /v1/search).
	SearchRequest = server.SearchRequest
)

// Client is a typed client for a running campaign service. The zero
// value is not usable; construct with NewClient. A Client is safe for
// concurrent use. All methods honor ctx cancellation and deadlines —
// including mid-stream during a campaign.
type Client struct {
	base string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	// Set a client with a Timeout to bound whole-campaign wall time.
	HTTPClient *http.Client
}

// NewClient builds a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the service's JSON error body.
func apiError(resp *http.Response) error {
	var e server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("zhuyi: server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("zhuyi: server: HTTP %d", resp.StatusCode)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Campaign runs a batch of seeded points on the remote service — the
// same CampaignPoint API as the local Campaign function. Outcomes
// align with points by index; each Result carries the run summary with
// a nil Trace. The returned error is non-nil when the request itself
// fails or any run failed server-side (per-point errors are also in
// the outcomes).
func (c *Client) Campaign(ctx context.Context, points []CampaignPoint) (*CampaignResult, error) {
	return c.CampaignStream(ctx, points, nil)
}

// CampaignStream is Campaign with a progress hook: fn (when non-nil)
// is invoked per point in completion order, while the rest of the
// campaign is still running server-side.
func (c *Client) CampaignStream(ctx context.Context, points []CampaignPoint, fn func(PointResult)) (*CampaignResult, error) {
	reqBody := server.CampaignRequest{Points: make([]server.Point, len(points))}
	for i, pt := range points {
		reqBody.Points[i] = server.Point{Scenario: pt.Scenario, FPR: pt.FPR, Seed: pt.Seed}
	}
	body, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/campaign", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}

	res := &CampaignResult{Outcomes: make([]CampaignOutcome, len(points))}
	for i, pt := range points {
		res.Outcomes[i] = CampaignOutcome{Point: pt, Err: fmt.Errorf("zhuyi: point %d: no outcome in stream", i)}
	}
	var trailerErr error
	sawStats := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var cl server.CampaignLine
		if err := json.Unmarshal(line, &cl); err != nil {
			return res, fmt.Errorf("zhuyi: bad stream line: %w", err)
		}
		switch {
		case cl.Point != nil:
			p := *cl.Point
			if p.Index < 0 || p.Index >= len(points) {
				return res, fmt.Errorf("zhuyi: stream point index %d out of range", p.Index)
			}
			res.Outcomes[p.Index] = outcomeFromWire(points[p.Index], p)
			if fn != nil {
				fn(p)
			}
		case cl.Stats != nil:
			sawStats = true
			res.Stats = statsFromWire(*cl.Stats)
			if cl.Error != "" {
				trailerErr = fmt.Errorf("zhuyi: campaign: %s", cl.Error)
			}
		case cl.Error != "":
			// An error-only line (no point, no stats) is the server
			// aborting the stream — the fabric coordinator emits one when
			// every replica is lost. Surface the server's words instead of
			// the misleading "ended without a stats trailer".
			return res, fmt.Errorf("zhuyi: campaign: %s", cl.Error)
		}
	}
	if err := sc.Err(); err != nil {
		// Mid-stream abort: ctx cancellation or a dropped connection.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return res, ctxErr
		}
		return res, fmt.Errorf("zhuyi: campaign stream: %w", err)
	}
	if !sawStats {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return res, ctxErr
		}
		return res, fmt.Errorf("zhuyi: campaign stream ended without a stats trailer")
	}
	return res, trailerErr
}

// outcomeFromWire reconstructs a summary-only result (nil Trace).
func outcomeFromWire(pt CampaignPoint, p PointResult) CampaignOutcome {
	o := CampaignOutcome{Point: pt, Cached: p.Source != "fresh"}
	if p.Error != "" {
		o.Err = fmt.Errorf("zhuyi: %s", p.Error)
		return o
	}
	res := &sim.Result{
		FramesProcessed: p.FramesProcessed,
		MinBumperGap:    p.MinBumperGap,
		EgoStopped:      p.EgoStopped,
	}
	if p.MinGapInfinite {
		res.MinBumperGap = math.Inf(1)
	}
	if p.Collided {
		res.Collision = &trace.Collision{Time: p.CollisionTime, ActorID: p.CollisionActor}
	}
	if res.FramesProcessed == nil {
		res.FramesProcessed = map[string]int{}
	}
	o.Result = res
	return o
}

func statsFromWire(s server.CampaignStats) CampaignStats {
	return CampaignStats{
		Jobs:      s.Jobs,
		Executed:  s.Executed,
		CacheHits: s.CacheHits,
		DiskHits:  s.DiskHits,
		Failures:  s.Failures,
		Skipped:   s.Skipped,
		Wall:      time.Duration(s.WallMS * float64(time.Millisecond)),
	}
}

// Search runs a remote adversarial scenario search (POST /v1/search):
// the service evolves the requested spec families toward their
// hardest corpora on its shared engine. fn (when non-nil) receives
// each generation summary as it streams; the returned result is the
// final hardest-N corpus. Deterministic per request: the same budget
// yields the same corpus, and a warm server-side store answers every
// rescore without simulating.
func (c *Client) Search(ctx context.Context, sr SearchRequest, fn func(SearchGeneration)) (*SearchResult, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}

	var corpus *SearchResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl server.SearchLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return nil, fmt.Errorf("zhuyi: bad search stream line: %w", err)
		}
		switch {
		case sl.Error != "":
			return nil, fmt.Errorf("zhuyi: search: %s", sl.Error)
		case sl.Generation != nil:
			if fn != nil {
				fn(*sl.Generation)
			}
		case sl.Corpus != nil:
			corpus = sl.Corpus
		}
	}
	if err := sc.Err(); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("zhuyi: search stream: %w", err)
	}
	if corpus == nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("zhuyi: search stream ended without a corpus trailer")
	}
	return corpus, nil
}

// MRF runs a remote minimum-required-FPR search (GET /v1/mrf/{name}).
// seeds <= 0 uses the server default (10).
func (c *Client) MRF(ctx context.Context, scenarioName string, seeds int) (MRFResponse, error) {
	path := "/v1/mrf/" + url.PathEscape(scenarioName)
	if seeds > 0 {
		path += fmt.Sprintf("?seeds=%d", seeds)
	}
	var out MRFResponse
	err := c.getJSON(ctx, path, &out)
	return out, err
}

// Rate posts one kinematic snapshot for the online §3.2 estimate
// (POST /v1/rate).
func (c *Client) Rate(ctx context.Context, req RateRequest) (RateResponse, error) {
	var out RateResponse
	err := c.postJSON(ctx, "/v1/rate", req, &out)
	return out, err
}

// RateBinaryContentType is the Content-Type negotiating the
// length-prefixed binary rate wire format (see docs/api.md).
const RateBinaryContentType = server.RateBinaryContentType

// RateBinary is Rate over the binary wire format: the request is a
// length-prefixed frame instead of JSON, and the server — seeing
// RateBinaryContentType — answers in kind. Semantically identical to
// Rate; the frame skips JSON encode/decode on both ends, which is what
// drops the server to zero allocations per request. An error is
// returned if the server does not negotiate the binary response.
func (c *Client) RateBinary(ctx context.Context, rr RateRequest) (RateResponse, error) {
	body, err := server.AppendRateRequestBinary(nil, rr)
	if err != nil {
		return RateResponse{}, fmt.Errorf("zhuyi: encode rate request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/rate", bytes.NewReader(body))
	if err != nil {
		return RateResponse{}, err
	}
	req.Header.Set("Content-Type", RateBinaryContentType)
	resp, err := c.http().Do(req)
	if err != nil {
		return RateResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RateResponse{}, apiError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != RateBinaryContentType {
		return RateResponse{}, fmt.Errorf("zhuyi: server answered Content-Type %q, not the negotiated binary format", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return RateResponse{}, err
	}
	out, err := server.DecodeRateResponseBinary(data)
	if err != nil {
		return RateResponse{}, fmt.Errorf("zhuyi: decode rate response: %w", err)
	}
	return out, nil
}

// Scenarios lists the service's registered catalog, optionally
// filtered by tags (GET /v1/scenarios).
func (c *Client) Scenarios(ctx context.Context, tags ...string) ([]ScenarioInfo, error) {
	path := "/v1/scenarios"
	if len(tags) > 0 {
		path += "?tags=" + url.QueryEscape(strings.Join(tags, ","))
	}
	var out server.ScenariosResponse
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}

// Stats reads the service's counters (GET /v1/stats): how many points
// ran fresh versus answering from the memory and disk tiers.
func (c *Client) Stats(ctx context.Context) (ServiceStats, error) {
	var out ServiceStats
	err := c.getJSON(ctx, "/v1/stats", &out)
	return out, err
}
