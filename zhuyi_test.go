package zhuyi

import (
	"context"
	"strings"
	"testing"
)

func TestScenariosList(t *testing.T) {
	names := Scenarios()
	if len(names) != 9 {
		t.Fatalf("scenario count = %d", len(names))
	}
	if names[0] != ScenarioCutOut || names[8] != ScenarioFrontRightActivity3 {
		t.Errorf("order = %v", names)
	}
}

func TestRunScenarioFacade(t *testing.T) {
	res, err := RunScenario(ScenarioFrontRightActivity1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 {
		t.Error("empty trace")
	}
	if _, err := RunScenario("bogus", 10, 1); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestEndToEndOfflineEvaluation(t *testing.T) {
	res, err := RunScenario(ScenarioCutIn, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator()
	off, err := est.EvaluateTrace(res.Trace, OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.MaxFPR() < 1 {
		t.Errorf("max FPR = %v", off.MaxFPR())
	}
	if off.MaxSumFPR() < 3 {
		t.Errorf("max sum FPR = %v", off.MaxSumFPR())
	}
}

func TestFindMRFFacade(t *testing.T) {
	m, err := FindMRF(ScenarioFrontRightActivity1, []float64{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.BelowGrid() {
		t.Errorf("MRF = %v", m.Value)
	}
	if _, err := FindMRF("bogus", nil, 1); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestSweepFacade(t *testing.T) {
	res := Sweep(30)
	if len(res.Cells) == 0 {
		t.Fatal("empty sweep")
	}
	if res.SN != 30 {
		t.Errorf("SN = %v", res.SN)
	}
}

func TestCampaignFacade(t *testing.T) {
	var points []CampaignPoint
	for seed := int64(1); seed <= 3; seed++ {
		points = append(points, CampaignPoint{Scenario: ScenarioFrontRightActivity1, FPR: 10, Seed: seed})
	}
	eng := NewEngine(EngineOptions{Workers: 2})
	res, err := Campaign(context.Background(), eng, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	if res.Stats.Executed != 3 || res.Stats.CacheHits != 0 {
		t.Errorf("first campaign stats = %+v", res.Stats)
	}
	for _, o := range res.Outcomes {
		if o.Err != nil || o.Result == nil || o.Result.Trace.Len() == 0 {
			t.Fatalf("bad outcome: %+v", o)
		}
		if o.Result.Collided() {
			t.Errorf("benign scenario collided at seed %d", o.Point.Seed)
		}
	}
	// The repeated campaign is pure cache hits with identical results.
	again, err := Campaign(context.Background(), eng, points)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CacheHits != 3 || again.Stats.Executed != 0 {
		t.Errorf("repeat campaign stats = %+v", again.Stats)
	}
	for i := range points {
		if again.Outcomes[i].Result != res.Outcomes[i].Result {
			t.Errorf("outcome %d not served from cache", i)
		}
	}
	// Unknown scenarios are rejected before submission.
	if _, err := Campaign(context.Background(), eng, []CampaignPoint{{Scenario: "bogus", FPR: 1, Seed: 1}}); err == nil {
		t.Error("bogus campaign accepted")
	}
}

func TestGeneratedScenarioCampaignFacade(t *testing.T) {
	specs, err := GenerateScenarios(GenOptions{Seed: 123, Prefix: "facade-test"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("generated %d specs", len(specs))
	}
	// The generator-family bugfix: a family outside ScenarioFamilies is
	// an error, not a silently mislabeled cut-in corpus.
	if _, err := GenerateScenarios(GenOptions{Seed: 1, Families: []ScenarioFamily{"bogus"}}, 1); err == nil {
		t.Error("GenerateScenarios accepted an unknown family")
	}
	var points []CampaignPoint
	for _, sp := range specs {
		// The default registry is process-wide: under -count>1 this
		// test's specs are already registered from the previous run.
		if err := RegisterScenario(sp); err != nil && !strings.Contains(err.Error(), "already registered") {
			t.Fatalf("register %s: %v", sp.Name, err)
		}
		points = append(points, CampaignPoint{Scenario: sp.Name, FPR: 4, Seed: 1})
	}
	// Duplicate registration is rejected: names key the engine cache.
	if err := RegisterScenario(specs[0]); err == nil {
		t.Error("duplicate spec registration accepted")
	}

	eng := NewEngine(EngineOptions{Workers: 2})
	res, err := Campaign(context.Background(), eng, points)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Err != nil || o.Result == nil || o.Result.Trace.Len() == 0 {
			t.Fatalf("bad outcome for %s: %+v", o.Point.Scenario, o)
		}
	}
	again, err := Campaign(context.Background(), eng, points)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.CacheHits != len(points) {
		t.Errorf("repeat campaign stats = %+v, want all cache hits", again.Stats)
	}
	// Generated scenarios resolve through the by-name APIs, and the
	// registered listing can filter them by tag.
	if _, err := RunScenario(specs[0].Name, 4, 2); err != nil {
		t.Errorf("RunScenario on a registered generated spec: %v", err)
	}
	found := 0
	for _, name := range RegisteredScenarios("generated") {
		for _, sp := range specs {
			if name == sp.Name {
				found++
			}
		}
	}
	if found != len(specs) {
		t.Errorf("registered listing found %d of %d generated specs", found, len(specs))
	}
	// The Table-1 listing stays untouched by registration.
	if len(Scenarios()) != 9 {
		t.Errorf("Scenarios() = %d names after registration, want 9", len(Scenarios()))
	}
}

func TestDefaultParamsFacade(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.C1 != 0.9 || p.C3 != 4.9 || p.K != 5 {
		t.Errorf("params = %+v", p)
	}
}

func TestCampaignWarmStoreFacade(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	points := []CampaignPoint{
		{Scenario: ScenarioCutOut, FPR: 30, Seed: 1},
		{Scenario: ScenarioCutOut, FPR: 30, Seed: 2},
	}
	cold, err := Campaign(context.Background(), NewEngine(EngineOptions{Store: st}), points)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Executed != len(points) {
		t.Fatalf("cold stats = %+v", cold.Stats)
	}
	// A fresh engine over the same store: the campaign must replay from
	// disk without simulating anything.
	warm, err := Campaign(context.Background(), NewEngine(EngineOptions{Store: st}), points)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != 0 || warm.Stats.DiskHits != len(points) {
		t.Fatalf("warm stats = %+v, want all disk hits", warm.Stats)
	}
	for i := range points {
		if warm.Outcomes[i].Result.Collided() != cold.Outcomes[i].Result.Collided() {
			t.Fatalf("point %d outcome changed across the store round trip", i)
		}
	}
}
