package zhuyi

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild compiles every example program. The examples are
// main packages, so the library's own build does not cover them; this
// keeps them from rotting as the facade and registry evolve.
func TestExamplesBuild(t *testing.T) {
	cmd := exec.Command("go", "build", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
}
