package zhuyi_test

import (
	"fmt"

	zhuyi "repro"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/world"
)

// ExampleTolerableLatency shows the core per-actor computation: the
// maximum perception latency tolerable against a static obstacle.
func ExampleNewEstimator() {
	est := zhuyi.NewEstimator()

	ego := world.Agent{
		ID:     world.EgoID,
		Pose:   geom.Pose{Pos: geom.V(0, 0)},
		Speed:  20, // m/s
		Length: 4.6, Width: 1.9,
	}
	obstacle := world.Agent{
		ID:     "obstacle",
		Pose:   geom.Pose{Pos: geom.V(120, 0)},
		Length: 4, Width: 1.9,
		Static: true,
	}
	// Ground-truth future: the obstacle stays put.
	traj := world.Trajectory{ActorID: "obstacle", Prob: 1, Points: []world.TrajectoryPoint{
		{T: 0, Pos: obstacle.Pose.Pos},
		{T: est.Params.Horizon, Pos: obstacle.Pose.Pos},
	}}

	e := est.EstimateSnapshot(0, ego, []world.Agent{obstacle},
		map[string][]world.Trajectory{"obstacle": {traj}}, 1.0/30)

	fmt.Printf("front latency budget: %.0f ms\n", e.CameraLatency[sensor.Front120]*1000)
	fmt.Printf("front minimum FPR: %.1f\n", e.CameraFPR[sensor.Front120])
	fmt.Printf("side cameras idle: %v\n", e.CameraFPR[sensor.Left] == 1 && e.CameraFPR[sensor.Right] == 1)
	// Output:
	// front latency budget: 538 ms
	// front minimum FPR: 1.9
	// side cameras idle: true
}

// ExampleCheckSafety demonstrates the §3.2 online safety check.
func ExampleCheckSafety() {
	est := zhuyi.Estimate{
		CameraFPR: map[string]float64{
			sensor.Front120: 8,
			sensor.Left:     1,
		},
	}
	operating := map[string]float64{
		sensor.Front120: 5, // below the requirement
		sensor.Left:     2,
	}
	res := zhuyi.CheckSafety(est, operating)
	fmt.Println("ok:", res.OK)
	fmt.Println("action:", res.Action)
	fmt.Println("alarmed camera:", res.Alarms[0].Camera)
	// Output:
	// ok: false
	// action: limited-functionality
	// alarmed camera: front120
}

// ExampleUncertainty shows the perception-uncertainty extension: a
// noisier perception model tightens the estimated requirement.
func ExampleUncertainty() {
	exact := zhuyi.DefaultParams()
	noisy := zhuyi.Uncertainty{PosSigma: 2, SpeedSigma: 1}.Apply(exact)

	ego := core.EgoState{Pose: geom.Pose{Pos: geom.V(0, 0)}, Speed: 25, Length: 4.6, Width: 1.9}
	traj := world.Trajectory{ActorID: "obs", Prob: 1, Points: []world.TrajectoryPoint{
		{T: 0, Pos: geom.V(95, 0)},
		{T: exact.Horizon, Pos: geom.V(95, 0)},
	}}

	a := core.TolerableLatency(ego, traj, [2]float64{4, 1.9}, 1.0/30, exact)
	b := core.TolerableLatency(ego, traj, [2]float64{4, 1.9}, 1.0/30, noisy)
	fmt.Println("noisy model demands a higher rate:", b.FPR() > a.FPR())
	// Output:
	// noisy model demands a higher rate: true
}
