package zhuyi

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// startService runs a campaign service over an optional store dir and
// returns a client for it.
func startService(t *testing.T, storeDir string) *Client {
	t.Helper()
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
	}
	ts := httptest.NewServer(server.New(server.Options{Store: st}).Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestClientCampaignRoundTrip is the acceptance round-trip at the
// facade level: `serve` + Client run a campaign end to end; the second
// identical request answers from the memory tier, and a fresh service
// over the same store answers from the disk tier — both asserted via
// /v1/stats.
func TestClientCampaignRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cl := startService(t, dir)
	ctx := context.Background()
	points := []CampaignPoint{
		{Scenario: ScenarioCutOut, FPR: 30, Seed: 1},
		{Scenario: ScenarioCutOut, FPR: 30, Seed: 2},
	}

	var streamed []PointResult
	res, err := cl.CampaignStream(ctx, points, func(p PointResult) { streamed = append(streamed, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 || len(streamed) != 2 {
		t.Fatalf("outcomes %d, streamed %d", len(res.Outcomes), len(streamed))
	}
	if res.Stats.Executed != 2 {
		t.Errorf("cold stats %+v, want 2 fresh", res.Stats)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
		if o.Point != points[i] {
			t.Errorf("outcome %d misaligned: %+v", i, o.Point)
		}
		if o.Result == nil || o.Result.Trace != nil {
			t.Errorf("outcome %d: want summary-only result (nil trace), got %+v", i, o.Result)
		}
		if o.Result.MinBumperGap <= 0 && !math.IsInf(o.Result.MinBumperGap, 1) {
			t.Errorf("outcome %d: min gap %g", i, o.Result.MinBumperGap)
		}
	}

	// Identical campaign: memory tier.
	res2, err := cl.Campaign(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CacheHits != 2 || res2.Stats.Executed != 0 {
		t.Errorf("warm stats %+v, want 2 memory hits", res2.Stats)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Executed != 2 || stats.Engine.CacheHits < 2 || stats.Engine.Archived != 2 {
		t.Errorf("service stats %+v", stats.Engine)
	}

	// Fresh service over the same store: disk tier.
	cl2 := startService(t, dir)
	res3, err := cl2.Campaign(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.DiskHits != 2 || res3.Stats.Executed != 0 {
		t.Errorf("disk stats %+v, want 2 disk hits", res3.Stats)
	}
	stats2, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Engine.DiskHits != 2 || stats2.Engine.Executed != 0 {
		t.Errorf("disk-tier service stats %+v", stats2.Engine)
	}
}

func TestClientQueryEndpoints(t *testing.T) {
	cl := startService(t, "")
	ctx := context.Background()

	infos, err := cl.Scenarios(ctx, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 9 {
		t.Errorf("table1 catalog size %d", len(infos))
	}

	m, err := cl.MRF(ctx, ScenarioCutOut, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scenario != ScenarioCutOut || m.Seeds != 1 {
		t.Errorf("mrf %+v", m)
	}

	rr, err := cl.Rate(ctx, RateRequest{
		Ego:    AgentState{Speed: 20},
		Actors: []AgentState{{ID: "lead", X: 25, Speed: 12, Accel: -4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Rates) == 0 {
		t.Errorf("rate response %+v", rr)
	}

	// Server-side errors surface as typed client errors.
	if _, err := cl.MRF(ctx, "no-such-scenario", 1); err == nil {
		t.Error("MRF of unknown scenario did not error")
	}
	if _, err := cl.Campaign(ctx, []CampaignPoint{{Scenario: "no-such", FPR: 30, Seed: 1}}); err == nil {
		t.Error("campaign with unknown scenario did not error")
	}
}

// hangingServer accepts connections and never responds, for timeout
// and cancellation tests.
func hangingServer(t *testing.T) (baseURL string, release func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				<-done
				conn.Close()
			}()
		}
	}()
	return "http://" + ln.Addr().String(), func() { close(done); ln.Close() }
}

// TestClientTimeoutAndCancellation: the failure contract against a
// hung server — a context deadline, an explicit cancel mid-request,
// and an http.Client timeout must all return promptly with the right
// error, never hang.
func TestClientTimeoutAndCancellation(t *testing.T) {
	base, release := hangingServer(t)
	defer release()

	cl := NewClient(base)
	points := []CampaignPoint{{Scenario: ScenarioCutOut, FPR: 30, Seed: 1}}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Campaign(ctx, points)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline: err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("deadline did not cut the request promptly")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel2() }()
	if _, err := cl.Stats(ctx2); !errors.Is(err, context.Canceled) {
		t.Errorf("cancel: err = %v", err)
	}

	clTimeout := NewClient(base)
	clTimeout.HTTPClient = &http.Client{Timeout: 50 * time.Millisecond}
	if _, err := clTimeout.MRF(context.Background(), ScenarioCutOut, 1); err == nil {
		t.Error("http.Client timeout did not error")
	}
}

// TestCampaignUnknownScenarioLocal: the local facade's error contract.
func TestCampaignUnknownScenarioLocal(t *testing.T) {
	_, err := Campaign(context.Background(), nil, []CampaignPoint{{Scenario: "definitely-not-registered", FPR: 30, Seed: 1}})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("err = %v, want unknown-scenario error", err)
	}
}

// TestOpenStoreUnwritable: OpenStore must fail loudly on an unwritable
// directory, not defer the failure to the first archive.
func TestOpenStoreUnwritable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(parent, 0o755)
	if _, err := OpenStore(filepath.Join(parent, "sub")); err == nil {
		t.Error("OpenStore on unwritable parent did not error")
	}
}

// TestOpenStoreOnFile: a path that exists but is not a directory.
func TestOpenStoreOnFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Error("OpenStore on a regular file did not error")
	}
}

// Regression: a stream line carrying only Error (no point, no stats) —
// the server aborting mid-stream — used to be silently dropped, so the
// caller saw a misleading "ended without a stats trailer". The real
// server error must surface.
func TestClientErrorOnlyStreamLine(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/campaign" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		// One real point outcome, then an abort line.
		io.WriteString(w, `{"point":{"index":0,"scenario":"cut-out-fast","fpr":30,"seed":1,"source":"fresh","min_gap_infinite":true}}`+"\n")
		io.WriteString(w, `{"error":"all replicas unreachable"}`+"\n")
	}))
	defer ts.Close()

	cl := NewClient(ts.URL)
	points := []CampaignPoint{
		{Scenario: ScenarioCutOut, FPR: 30, Seed: 1},
		{Scenario: ScenarioCutOut, FPR: 30, Seed: 2},
	}
	res, err := cl.CampaignStream(context.Background(), points, nil)
	if err == nil {
		t.Fatal("error-only stream line was dropped; want the server's abort error")
	}
	if !strings.Contains(err.Error(), "all replicas unreachable") {
		t.Errorf("error %q does not carry the server's message", err)
	}
	if res == nil || res.Outcomes[0].Err != nil {
		t.Errorf("outcome delivered before the abort must survive: %+v", res)
	}
}

// TestClientRateTimeoutCancelAndBinaryNegotiation covers the rate
// path's client contract: deadlines and cancellation cut both wire
// modes promptly, a server that does not negotiate the binary format
// is surfaced as an error (not a garbled decode), corrupt binary
// bodies fail loudly, and server-side 400s carry the server's message.
func TestClientRateTimeoutCancelAndBinaryNegotiation(t *testing.T) {
	base, release := hangingServer(t)
	defer release()
	cl := NewClient(base)
	req := RateRequest{Ego: AgentState{ID: "ego", Speed: 10}}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Rate(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Rate deadline: err = %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel2() }()
	if _, err := cl.RateBinary(ctx2, req); !errors.Is(err, context.Canceled) {
		t.Errorf("RateBinary cancel: err = %v", err)
	}

	// A server that ignores the negotiation and answers JSON: the
	// client must refuse to misparse it as a frame.
	jsonOnly := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}\n"))
	}))
	defer jsonOnly.Close()
	if _, err := NewClient(jsonOnly.URL).RateBinary(context.Background(), req); err == nil ||
		!strings.Contains(err.Error(), "binary") {
		t.Errorf("unnegotiated JSON response: err = %v", err)
	}

	// Binary Content-Type with a corrupt body must fail as a decode
	// error, never a panic or a zero-valued success.
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", RateBinaryContentType)
		_, _ = w.Write([]byte{9, 0, 0, 0, 'Z', 'Y', 'S', '1', 1})
	}))
	defer corrupt.Close()
	if _, err := NewClient(corrupt.URL).RateBinary(context.Background(), req); err == nil ||
		!strings.Contains(err.Error(), "decode rate response") {
		t.Errorf("corrupt binary body: err = %v", err)
	}

	// Against the real service: a 400 carries the server's words, and
	// the binary answer matches the JSON answer.
	svc := startService(t, "")
	if _, err := svc.Rate(context.Background(), RateRequest{Ego: AgentState{Speed: -5}}); err == nil ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("invalid kinematics: err = %v", err)
	}
	good := RateRequest{
		Time:      1,
		Ego:       AgentState{ID: "ego", Speed: 20},
		Actors:    []AgentState{{ID: "lead", X: 25, Speed: 12, Accel: -4}},
		Operating: map[string]float64{"front120": 5},
	}
	jr, err := svc.Rate(context.Background(), good)
	if err != nil {
		t.Fatalf("Rate: %v", err)
	}
	br, err := svc.RateBinary(context.Background(), good)
	if err != nil {
		t.Fatalf("RateBinary: %v", err)
	}
	if len(br.Rates) == 0 || br.MaxFPR != jr.MaxFPR || br.SumFPR != jr.SumFPR {
		t.Errorf("binary answer diverges from JSON:\nbinary: %+v\njson:   %+v", br, jr)
	}
}

// TestClientSearchRoundTrip is the acceptance round-trip for the
// search endpoint at the facade level: the client streams generation
// summaries and the final corpus matches what the library produces
// for the same budget on a private engine — the HTTP hop adds and
// loses nothing.
func TestClientSearchRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("real closed-loop simulations")
	}
	cl := startService(t, "")
	ctx := context.Background()
	req := SearchRequest{
		Families:    []string{"following"},
		Seed:        9,
		Generations: 2,
		Population:  3,
		Seeds:       1,
		TopN:        4,
		FPRGrid:     []float64{5, 30},
	}

	var gens []SearchGeneration
	res, err := cl.Search(ctx, req, func(g SearchGeneration) { gens = append(gens, g) })
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("got %d generation summaries, want 2", len(gens))
	}
	for i, g := range gens {
		if g.Family != "following" || g.Generation != i+1 || g.BestName == "" {
			t.Errorf("generation %d: %+v", i, g)
		}
	}
	if len(res.Corpus) == 0 || len(res.Corpus) > 4 {
		t.Fatalf("corpus size %d, want 1..4", len(res.Corpus))
	}

	eng := NewEngine(EngineOptions{Workers: 2})
	defer eng.Close()
	direct, err := SearchScenarios(ctx, SearchOptions{
		Families:    []ScenarioFamily{"following"},
		Seed:        9,
		Generations: 2,
		Population:  3,
		Seeds:       1,
		TopN:        4,
		FPRGrid:     []float64{5, 30},
		Engine:      eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, direct) {
		t.Fatal("remote search corpus differs from the library's for the same budget")
	}

	// Bad budgets fail before the stream starts, with the server's
	// message intact.
	if _, err := cl.Search(ctx, SearchRequest{Generations: -1}, nil); err == nil ||
		!strings.Contains(err.Error(), "generations") {
		t.Fatalf("negative generations: err %v", err)
	}
}
