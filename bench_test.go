// Benchmarks regenerating each of the paper's tables and figures (see
// DESIGN.md §4 for the experiment index), plus ablations of the design
// choices DESIGN.md §5 calls out. Absolute wall-clock is machine-
// dependent; the custom metrics (evals/op, ops/op) tie back to the
// paper's §4.2 compute-demand analysis.
package zhuyi

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/safety"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/world"
)

// --- Table 1 ---

// BenchmarkTable1Row measures one scenario row of Table 1 at reduced
// scale (2 seeds, 3 rates): the MRF search plus offline estimates.
func BenchmarkTable1Row(b *testing.B) {
	opt := experiments.Options{Seeds: 2, FPRGrid: []float64{1, 5, 30}, Workers: 4}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkMRFSearch measures the engine-backed adaptive MRF search on
// the full Table-1 grid: descending waves stop at the first colliding
// rate, so it schedules strictly fewer simulations than the exhaustive
// protocol (compare runs/op against BenchmarkMRFSearchExhaustive). A
// fresh engine per iteration keeps the cache out of the measurement.
func BenchmarkMRFSearch(b *testing.B) {
	sc, _ := scenario.ByName(scenario.CutOutFast)
	runs := 0
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{})
		m, err := metrics.FindMRFContext(context.Background(), eng, sc, metrics.DefaultFPRGrid(), 2)
		eng.Close()
		if err != nil {
			b.Fatal(err)
		}
		runs += m.Runs
	}
	b.ReportMetric(float64(runs)/float64(b.N), "runs/op")
}

// BenchmarkMRFSearchExhaustive reproduces the seed path's cost model —
// every rate × seed simulated, no early exit, no cache — as the
// reference the adaptive search must beat.
func BenchmarkMRFSearchExhaustive(b *testing.B) {
	sc, _ := scenario.ByName(scenario.CutOutFast)
	var jobs []engine.Job
	for _, fpr := range metrics.DefaultFPRGrid() {
		for seed := int64(1); seed <= 2; seed++ {
			jobs = append(jobs, engine.Job{Scenario: sc, FPR: fpr, Seed: seed, NoCache: true})
		}
	}
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{})
		_, err := eng.RunBatch(context.Background(), jobs)
		eng.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "runs/op")
}

// BenchmarkMRFSearchCached measures the repeated campaign: a warm
// shared engine serves the whole search from the result cache.
func BenchmarkMRFSearchCached(b *testing.B) {
	sc, _ := scenario.ByName(scenario.CutOutFast)
	eng := engine.New(engine.Options{})
	if _, err := metrics.FindMRFContext(context.Background(), eng, sc, metrics.DefaultFPRGrid(), 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.FindMRFContext(context.Background(), eng, sc, metrics.DefaultFPRGrid(), 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1 ---

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Figure1()
		if len(d.Curve) != 12 {
			b.Fatal("bad curve")
		}
	}
}

// --- Figures 4, 5, 6: per-camera latency series ---

func benchFigureSeries(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fs, err := experiments.CameraLatencyFigure(name, 30, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(fs.Times) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure4CutOutFast(b *testing.B) { benchFigureSeries(b, scenario.CutOutFast) }

func BenchmarkFigure5ChallengingCurved(b *testing.B) {
	benchFigureSeries(b, scenario.ChallengingCutInCurved)
}

func BenchmarkFigure6CutIn(b *testing.B) { benchFigureSeries(b, scenario.CutIn) }

// --- Figure 7: post-deployment online estimates ---

func BenchmarkFigure7PostDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Figure7(30, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Times) == 0 {
			b.Fatal("empty series")
		}
	}
}

// --- Figure 8: sensitivity sweep ---

func BenchmarkFigure8Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sn := range []float64{30, 100} {
			res := experiments.Figure8(sn)
			if len(res.Cells) == 0 {
				b.Fatal("empty sweep")
			}
		}
	}
}

// --- Headline: Zhuyi-based system vs fixed 30 FPR ---

func BenchmarkHeadlineScenario(b *testing.B) {
	sc, _ := scenario.ByName(scenario.ChallengingCutIn)
	for i := 0; i < b.N; i++ {
		cfg := sc.Build(30, 1)
		est := core.NewEstimator()
		est.Cameras = est.Rig.Names()
		cfg.RateController = safety.NewController(
			est,
			predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
			safety.DefaultControllerConfig(),
		)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Trace.Len() == 0 {
			b.Fatal("empty run")
		}
	}
}

// --- §4.2 compute demand: the online estimate itself ---

// BenchmarkEstimateSnapshot measures one online Zhuyi evaluation for a
// two-actor scene with a four-hypothesis predictor and reports the
// constraint evaluations and modeled ops per call (paper: |A|·|T|·M·L·C
// ≤ 60 kops for |A|=2, |T|=1).
func BenchmarkEstimateSnapshot(b *testing.B) {
	est := core.NewEstimator()
	pred := predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1}
	ego := world.Agent{ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(0, 0)}, Speed: 27, Length: 4.6, Width: 1.9}
	actors := []world.Agent{
		{ID: "lead", Pose: geom.Pose{Pos: geom.V(45, 0)}, Speed: 24, Accel: -4, Length: 4.6, Width: 1.9},
		{ID: "side", Pose: geom.Pose{Pos: geom.V(5, 3.5)}, Speed: 27, Length: 4.6, Width: 1.9},
	}
	evals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := est.EstimateOnline(0, ego, actors, pred, 1.0/30)
		evals += e.Evals
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
	b.ReportMetric(float64(core.MeasuredOps(evals))/float64(b.N), "model-ops/op")
}

// --- Ablations (DESIGN.md §5) ---

func latencyWorkload() (core.EgoState, []world.Trajectory) {
	ego := core.EgoState{Pose: geom.Pose{Pos: geom.V(0, 0)}, Speed: 27, Length: 4.6, Width: 1.9}
	agent := world.Agent{ID: "lead", Pose: geom.Pose{Pos: geom.V(50, 0)}, Speed: 20, Accel: -3, Length: 4.6, Width: 1.9}
	return ego, predict.MultiHypothesis{Horizon: 15, Dt: 0.1}.Predict(agent, 0)
}

// BenchmarkLatencySearchAccelerated uses the paper's Eq.-3 stepping.
func BenchmarkLatencySearchAccelerated(b *testing.B) {
	ego, trajs := latencyWorkload()
	p := core.DefaultParams()
	evals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trajs {
			r := core.TolerableLatency(ego, tr, [2]float64{4.6, 1.9}, 1.0/30, p)
			evals += r.Evals
		}
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}

// BenchmarkLatencySearchNaive steps t'_n by a fixed 10 ms instead — the
// unoptimized variant the paper's Eq. 3 improves on.
func BenchmarkLatencySearchNaive(b *testing.B) {
	ego, trajs := latencyWorkload()
	p := core.DefaultParams()
	p.NaiveSearch = true
	evals := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trajs {
			r := core.TolerableLatency(ego, tr, [2]float64{4.6, 1.9}, 1.0/30, p)
			evals += r.Evals
		}
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}

// Aggregation-mode ablation (Eq. 4).
func benchAggregation(b *testing.B, opt core.AggregateOptions) {
	b.Helper()
	ego, trajs := latencyWorkload()
	p := core.DefaultParams()
	results := make([]core.LatencyResult, len(trajs))
	probs := make([]float64, len(trajs))
	for i, tr := range trajs {
		results[i] = core.TolerableLatency(ego, tr, [2]float64{4.6, 1.9}, 1.0/30, p)
		probs[i] = tr.Prob
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Aggregate(results, probs, opt)
	}
}

func BenchmarkAggregatePessimistic(b *testing.B) {
	benchAggregation(b, core.AggregateOptions{Mode: core.AggPessimistic})
}

func BenchmarkAggregateMean(b *testing.B) {
	benchAggregation(b, core.AggregateOptions{Mode: core.AggMean})
}

func BenchmarkAggregateP99(b *testing.B) {
	benchAggregation(b, core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99})
}

// Confirmation-depth sensitivity (K).
func BenchmarkConfirmationDepth(b *testing.B) {
	for _, k := range []int{1, 3, 5, 8} {
		b.Run(string(rune('0'+k)), func(b *testing.B) {
			ego, trajs := latencyWorkload()
			p := core.DefaultParams()
			p.K = k
			for i := 0; i < b.N; i++ {
				for _, tr := range trajs {
					core.TolerableLatency(ego, tr, [2]float64{4.6, 1.9}, 1.0/30, p)
				}
			}
		})
	}
}

// --- Baseline comparison (related work §5) ---

// BenchmarkSurakshaGridSearch measures the uniform grid-search baseline
// for one scenario (3 rates, 1 seed): every probe is a full closed-loop
// simulation.
func BenchmarkSurakshaGridSearch(b *testing.B) {
	sc, _ := scenario.ByName(scenario.CutIn)
	for i := 0; i < b.N; i++ {
		res, err := baseline.UniformGridSearch(sc, []float64{1, 5, 30}, 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkZhuyiTraceEvaluation measures Zhuyi's alternative: one
// offline pass over an already-recorded trace.
func BenchmarkZhuyiTraceEvaluation(b *testing.B) {
	res, err := RunScenario(ScenarioCutIn, 30, 1)
	if err != nil {
		b.Fatal(err)
	}
	est := core.NewEstimator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate throughput ---

// BenchmarkSimulationSecond measures one simulated second of the
// cut-out scenario (100 steps, 5 cameras at 30 FPR, 4 actors).
func BenchmarkSimulationSecond(b *testing.B) {
	sc, _ := scenario.ByName(scenario.CutOut)
	cfg := sc.Build(30, 1)
	cfg.Duration = 1
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceRoundTrip measures trace serialization, the I/O path of
// the pre-deployment flow.
func BenchmarkTraceRoundTrip(b *testing.B) {
	res, err := RunScenario(ScenarioFrontRightActivity1, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := res.Trace.Write(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
