package road

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// The fast tables must be invisible: every Road query must return the
// exact bits the generic Centerline path produces. These tests sweep
// the supported shapes with a deterministic fuzz and compare against
// the interface path computed by hand (the Road methods themselves now
// dispatch through the tables, so the reference is rebuilt inline).

func refPoseAtOffset(r *Road, s, d float64) geom.Pose {
	ref := r.Ref.PoseAt(s)
	return geom.Pose{Pos: ref.Pos.Add(ref.Left().Scale(d)), Heading: ref.Heading}
}

func fastRoads() map[string]*Road {
	tilted := &Road{
		Ref:       Line{Start: geom.Pose{Pos: geom.Vec2{X: -12, Y: 7}, Heading: 0.83}, Len: 140},
		LaneWidth: DefaultLaneWidth,
		NumLanes:  2,
	}
	rightArc := &Road{
		Ref:       Arc{Start: geom.Pose{Pos: geom.Vec2{X: 3, Y: -4}, Heading: -0.4}, Curv: -1.0 / 65, Len: 90},
		LaneWidth: 3.2,
		NumLanes:  3,
	}
	return map[string]*Road{
		"straight":  NewStraight(3, 400),
		"tilted":    tilted,
		"curved":    NewCurved(3, 120, 150, 200),
		"right-arc": rightArc,
	}
}

func TestFastPathBitwiseEquivalence(t *testing.T) {
	for name, r := range fastRoads() {
		t.Run(name, func(t *testing.T) {
			if !r.fastOf().ok {
				t.Fatalf("fast tables not built for %s", name)
			}
			rng := rand.New(rand.NewSource(11))
			total := r.Ref.Length()
			for i := 0; i < 4000; i++ {
				// Cover in-range stations, the extrapolation tails, and
				// off-road lateral offsets.
				s := (rng.Float64()*1.3 - 0.15) * total
				d := (rng.Float64() - 0.35) * 4 * r.LaneWidth

				if got, want := r.PoseAtOffset(s, d), refPoseAtOffset(r, s, d); got != want {
					t.Fatalf("PoseAtOffset(%v, %v) = %+v, generic path %+v", s, d, got, want)
				}
				if got, want := r.TangentAt(s), r.Ref.PoseAt(s).Forward(); got != want {
					t.Fatalf("TangentAt(%v) = %+v, generic path %+v", s, got, want)
				}

				p := refPoseAtOffset(r, s, d).Pos
				gs, gd := r.Frenet(p)
				ws, wd := r.Ref.Project(p)
				if gs != ws || gd != wd {
					t.Fatalf("Frenet(%+v) = (%v, %v), generic path (%v, %v)", p, gs, gd, ws, wd)
				}

				// Arbitrary points, not on any lane.
				q := geom.Vec2{X: (rng.Float64() - 0.5) * 2 * total, Y: (rng.Float64() - 0.5) * 2 * total}
				gs, gd = r.Frenet(q)
				ws, wd = r.Ref.Project(q)
				if gs != ws || gd != wd {
					t.Fatalf("Frenet(%+v) = (%v, %v), generic path (%v, %v)", q, gs, gd, ws, wd)
				}
			}
		})
	}
}

// TestFastPathFallback keeps custom Centerline implementations on the
// generic path.
func TestFastPathFallback(t *testing.T) {
	r := &Road{Ref: sineRef{}, LaneWidth: DefaultLaneWidth, NumLanes: 1}
	if r.fastOf().ok {
		t.Fatal("unknown centerline type must not compile fast tables")
	}
	if got, want := r.PoseAtOffset(3, 1), refPoseAtOffset(r, 3, 1); got != want {
		t.Fatalf("fallback PoseAtOffset = %+v, want %+v", got, want)
	}
	if gs, gd := r.Frenet(geom.Vec2{X: 2, Y: 5}); gs != 2 || gd != 5 {
		t.Fatalf("fallback Frenet = (%v, %v), want (2, 5)", gs, gd)
	}
}

// sineRef is a toy non-analytic centerline exercising the fallback.
type sineRef struct{}

func (sineRef) PoseAt(s float64) geom.Pose {
	return geom.Pose{Pos: geom.Vec2{X: s, Y: math.Sin(s)}, Heading: math.Atan(math.Cos(s))}
}
func (sineRef) Project(p geom.Vec2) (s, d float64) { return p.X, p.Y }
func (sineRef) Length() float64                    { return 100 }
func (sineRef) Curvature(float64) float64          { return 0 }
