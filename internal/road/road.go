// Package road models multi-lane roads as a reference centerline plus
// parallel lanes, with conversions between world coordinates and
// station–offset (Frenet) coordinates. The paper's scenarios take place
// on 3-lane straight roads and one constant-curvature curved road; both
// are supported, as are piecewise-composite centerlines.
//
// Conventions: stations (s) are meters along the reference line from its
// start; offsets (d) are meters to the left of the reference line. The
// reference line is the centerline of lane 0, the rightmost lane; lane i
// is centered at offset i·LaneWidth.
package road

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
)

// Centerline is a parametric reference curve.
type Centerline interface {
	// PoseAt returns the pose (position and tangent heading) at station s.
	// Stations outside [0, Length] extrapolate along the end tangents.
	PoseAt(s float64) geom.Pose
	// Project returns the station and left-positive lateral offset of the
	// world point p relative to the curve.
	Project(p geom.Vec2) (s, d float64)
	// Length returns the total curve length in meters.
	Length() float64
	// Curvature returns the signed curvature (1/m, positive = turning
	// left) at station s.
	Curvature(s float64) float64
}

// Line is a straight centerline starting at Start and running Len meters
// along the start heading.
type Line struct {
	Start geom.Pose
	Len   float64
}

// PoseAt implements Centerline.
func (l Line) PoseAt(s float64) geom.Pose {
	return geom.Pose{Pos: l.Start.Pos.Add(l.Start.Forward().Scale(s)), Heading: l.Start.Heading}
}

// Project implements Centerline.
func (l Line) Project(p geom.Vec2) (s, d float64) {
	local := l.Start.ToLocal(p)
	return local.X, local.Y
}

// Length implements Centerline.
func (l Line) Length() float64 { return l.Len }

// Curvature implements Centerline. A line has zero curvature everywhere.
func (l Line) Curvature(float64) float64 { return 0 }

// Arc is a constant-curvature centerline. Curv is the signed curvature;
// positive turns left, negative turns right. Curv must be non-zero (use
// Line for straight sections).
type Arc struct {
	Start geom.Pose
	Curv  float64
	Len   float64
}

func (a Arc) center() geom.Vec2 {
	return a.Start.Pos.Add(a.Start.Left().Scale(1 / a.Curv))
}

// PoseAt implements Centerline.
func (a Arc) PoseAt(s float64) geom.Pose {
	c := a.center()
	r0 := a.Start.Pos.Sub(c)
	theta := s * a.Curv
	return geom.Pose{Pos: c.Add(r0.Rotate(theta)), Heading: a.Start.Heading + theta}
}

// Project implements Centerline.
func (a Arc) Project(p geom.Vec2) (s, d float64) {
	c := a.center()
	r0 := a.Start.Pos.Sub(c)
	u := p.Sub(c)
	theta := math.Atan2(r0.Cross(u), r0.Dot(u))
	s = theta / a.Curv
	radius := math.Abs(1 / a.Curv)
	sign := 1.0
	if a.Curv < 0 {
		sign = -1.0
	}
	d = sign * (radius - u.Len())
	return s, d
}

// Length implements Centerline.
func (a Arc) Length() float64 { return a.Len }

// Curvature implements Centerline.
func (a Arc) Curvature(float64) float64 { return a.Curv }

// Composite chains centerline pieces end to end. The caller is
// responsible for geometric continuity (each piece should start where
// the previous one ends); the builders in this package guarantee it.
type Composite struct {
	pieces []Centerline
	starts []float64 // cumulative start station of each piece
	total  float64
}

// NewComposite builds a composite centerline from the given pieces.
func NewComposite(pieces ...Centerline) *Composite {
	c := &Composite{pieces: pieces}
	for _, p := range pieces {
		c.starts = append(c.starts, c.total)
		c.total += p.Length()
	}
	return c
}

// PoseAt implements Centerline.
func (c *Composite) PoseAt(s float64) geom.Pose {
	i := c.pieceAt(s)
	return c.pieces[i].PoseAt(s - c.starts[i])
}

// Project implements Centerline. Each piece projects the point; the
// piece whose projection (clamped to the piece extent) is nearest wins.
func (c *Composite) Project(p geom.Vec2) (s, d float64) {
	best := math.Inf(1)
	for i, piece := range c.pieces {
		ps, pd := piece.Project(p)
		clamped := math.Max(0, math.Min(piece.Length(), ps))
		ref := piece.PoseAt(clamped)
		dist := ref.Pos.Dist(p)
		// Prefer in-range projections; out-of-range ones only stand in
		// when nothing covers the point.
		if ps < -1e-9 || ps > piece.Length()+1e-9 {
			dist += 1e3
		}
		if dist < best {
			best = dist
			s = c.starts[i] + ps
			d = pd
		}
	}
	return s, d
}

// Length implements Centerline.
func (c *Composite) Length() float64 { return c.total }

// Curvature implements Centerline.
func (c *Composite) Curvature(s float64) float64 {
	i := c.pieceAt(s)
	return c.pieces[i].Curvature(s - c.starts[i])
}

func (c *Composite) pieceAt(s float64) int {
	for i := len(c.pieces) - 1; i > 0; i-- {
		if s >= c.starts[i] {
			return i
		}
	}
	return 0
}

// Road is a multi-lane road: a reference centerline (the centerline of
// lane 0, the rightmost lane) and NumLanes parallel lanes of LaneWidth
// meters each, extending to the left.
type Road struct {
	Ref       Centerline
	LaneWidth float64
	NumLanes  int

	// Lazily-compiled fast evaluation tables for the Ref shapes this
	// package defines (see fast.go). Built on first query; produces
	// bit-identical results, so it is invisible to callers. Roads must
	// be shared by pointer once queried (vet's copylocks check enforces
	// this via the Once).
	fastOnce sync.Once
	fast     fastRef
}

// DefaultLaneWidth is a typical US highway lane width in meters.
const DefaultLaneWidth = 3.5

// NewStraight builds a straight road with the given number of lanes
// starting at the origin heading +X.
func NewStraight(numLanes int, length float64) *Road {
	return &Road{
		Ref:       Line{Start: geom.Pose{}, Len: length},
		LaneWidth: DefaultLaneWidth,
		NumLanes:  numLanes,
	}
}

// NewCurved builds a road that runs straight for leadIn meters and then
// follows a constant-radius curve (positive radius turns left) for
// arcLen meters. This matches the paper's "challenging cut-in on a
// curved road" setting.
func NewCurved(numLanes int, leadIn, radius, arcLen float64) *Road {
	line := Line{Start: geom.Pose{}, Len: leadIn}
	arc := Arc{Start: line.PoseAt(leadIn), Curv: 1 / radius, Len: arcLen}
	return &Road{
		Ref:       NewComposite(line, arc),
		LaneWidth: DefaultLaneWidth,
		NumLanes:  numLanes,
	}
}

// LaneCenterOffset returns the reference-line offset of the center of
// the given lane.
func (r *Road) LaneCenterOffset(lane int) float64 { return float64(lane) * r.LaneWidth }

// PoseAt returns the world pose at the given lane center and station.
func (r *Road) PoseAt(lane int, s float64) geom.Pose {
	return r.PoseAtOffset(s, r.LaneCenterOffset(lane))
}

// PoseAtOffset returns the world pose at station s and lateral offset d
// (left positive). The heading follows the reference tangent.
func (r *Road) PoseAtOffset(s, d float64) geom.Pose {
	if f := r.fastOf(); f.ok {
		return f.poseAtOffset(s, d)
	}
	ref := r.Ref.PoseAt(s)
	return geom.Pose{Pos: ref.Pos.Add(ref.Left().Scale(d)), Heading: ref.Heading}
}

// Frenet returns the station and offset of a world point.
func (r *Road) Frenet(p geom.Vec2) (s, d float64) {
	if f := r.fastOf(); f.ok {
		return f.project(p)
	}
	return r.Ref.Project(p)
}

// TangentAt returns the reference forward direction at station s —
// Ref.PoseAt(s).Forward() without materializing the pose.
func (r *Road) TangentAt(s float64) geom.Vec2 {
	if f := r.fastOf(); f.ok {
		return f.forwardAt(s)
	}
	return r.Ref.PoseAt(s).Forward()
}

// LaneAt returns the lane index containing offset d, clamped to the
// road's lanes. Int conversion truncates toward zero, which agrees
// with Floor for non-negative values; negative ones floor to -1 or
// below and truncate to 0 or below — both clamp to lane 0, so the
// Floor call is skipped without changing any result.
func (r *Road) LaneAt(d float64) int {
	q := d/r.LaneWidth + 0.5
	if q <= 0 {
		return 0
	}
	lane := int(q)
	if lane >= r.NumLanes {
		lane = r.NumLanes - 1
	}
	return lane
}

// InBounds reports whether offset d lies within the paved lanes, with
// the given extra margin on each side.
func (r *Road) InBounds(d, margin float64) bool {
	lo := -r.LaneWidth/2 - margin
	hi := (float64(r.NumLanes)-0.5)*r.LaneWidth + margin
	return d >= lo && d <= hi
}

// Validate reports configuration errors.
func (r *Road) Validate() error {
	if r.NumLanes < 1 {
		return fmt.Errorf("road: NumLanes = %d, need >= 1", r.NumLanes)
	}
	if r.LaneWidth <= 0 {
		return fmt.Errorf("road: LaneWidth = %v, need > 0", r.LaneWidth)
	}
	if r.Ref == nil {
		return fmt.Errorf("road: nil reference centerline")
	}
	return nil
}
