package road

import (
	"math"

	"repro/internal/geom"
)

// This file is the precomputed evaluation engine behind Road.Frenet,
// Road.PoseAtOffset, and Road.TangentAt — the closed-loop hot path's
// three geometry queries (the min-gap sweep and the planner project
// every relevant agent every step; the ground-truth scatter poses every
// actor every step).
//
// The generic Centerline path recomputes loop invariants on every call:
// a Line's forward/left vectors and local-frame rotation are a SinCos
// of its fixed heading, an Arc's center and start radius vector are
// rebuilt from another SinCos, and the Composite loop pays an interface
// dispatch per piece. fastRef hoists all of it into per-piece constants
// built once per road (lazily, behind a sync.Once) and mirrors the
// original arithmetic EXPRESSION FOR EXPRESSION: every precomputed
// value is produced by the same calls the generic path makes
// (geom.SinCos, center(), math.Abs(1/curv)), and the per-query
// operations keep the original order. Results are bit-identical —
// fast_equiv_test.go fuzzes that claim against the generic path — so
// traces, archived stores, and the golden suite are unaffected.
//
// Only the shapes this package defines (Line, Arc, and Composites of
// them) get the fast path; a custom Centerline implementation falls
// back to the interface.

// fastPiece is one precompiled centerline piece.
type fastPiece struct {
	line    bool
	heading float64 // start heading (constant along a line)
	length  float64

	// Line constants.
	startPos       geom.Vec2
	fwd            geom.Vec2 // Pose.Forward(): FromAngle(heading)
	left           geom.Vec2 // Pose.Left(): Forward().Perp()
	sinNeg, cosNeg float64   // SinCos(-heading): ToLocal's rotation

	// Arc constants.
	curv, radius, sign float64
	center, r0         geom.Vec2
}

// fastRef is a precompiled reference centerline.
type fastRef struct {
	ok     bool // recognized shape; false falls back to the interface
	single bool // bare Line/Arc Ref: raw projection, no composite loop
	pieces []fastPiece
	starts []float64 // cumulative start stations (composite only)
}

func compilePiece(c Centerline) (fastPiece, bool) {
	switch p := c.(type) {
	case Line:
		sn, cn := geom.SinCos(-p.Start.Heading)
		return fastPiece{
			line:     true,
			heading:  p.Start.Heading,
			length:   p.Len,
			startPos: p.Start.Pos,
			fwd:      p.Start.Forward(),
			left:     p.Start.Left(),
			sinNeg:   sn,
			cosNeg:   cn,
		}, true
	case Arc:
		center := p.center()
		sign := 1.0
		if p.Curv < 0 {
			sign = -1.0
		}
		return fastPiece{
			heading: p.Start.Heading,
			length:  p.Len,
			curv:    p.Curv,
			radius:  math.Abs(1 / p.Curv),
			sign:    sign,
			center:  center,
			r0:      p.Start.Pos.Sub(center),
		}, true
	default:
		return fastPiece{}, false
	}
}

func compileRef(c Centerline) fastRef {
	if comp, ok := c.(*Composite); ok {
		f := fastRef{pieces: make([]fastPiece, 0, len(comp.pieces)), starts: comp.starts}
		for _, piece := range comp.pieces {
			fp, ok := compilePiece(piece)
			if !ok {
				return fastRef{}
			}
			f.pieces = append(f.pieces, fp)
		}
		f.ok = len(f.pieces) > 0
		return f
	}
	if fp, ok := compilePiece(c); ok {
		return fastRef{ok: true, single: true, pieces: []fastPiece{fp}}
	}
	return fastRef{}
}

// project mirrors Line.Project / Arc.Project on the precompiled
// constants.
func (pc *fastPiece) project(p geom.Vec2) (s, d float64) {
	if pc.line {
		// Start.ToLocal(p) = p.Sub(Start.Pos).Rotate(-heading).
		dx, dy := p.X-pc.startPos.X, p.Y-pc.startPos.Y
		return dx*pc.cosNeg - dy*pc.sinNeg, dx*pc.sinNeg + dy*pc.cosNeg
	}
	u := p.Sub(pc.center)
	theta := math.Atan2(pc.r0.Cross(u), pc.r0.Dot(u))
	return theta / pc.curv, pc.sign * (pc.radius - u.Len())
}

// poseAt mirrors Line.PoseAt / Arc.PoseAt.
func (pc *fastPiece) poseAt(s float64) geom.Pose {
	if pc.line {
		// Start.Pos.Add(Forward().Scale(s)) with Forward precomputed.
		return geom.Pose{
			Pos:     geom.Vec2{X: pc.startPos.X + pc.fwd.X*s, Y: pc.startPos.Y + pc.fwd.Y*s},
			Heading: pc.heading,
		}
	}
	theta := s * pc.curv
	return geom.Pose{Pos: pc.center.Add(pc.r0.Rotate(theta)), Heading: pc.heading + theta}
}

// forwardAt mirrors PoseAt(s).Forward() without materializing the pose.
func (pc *fastPiece) forwardAt(s float64) geom.Vec2 {
	if pc.line {
		return pc.fwd
	}
	return geom.FromAngle(pc.heading + s*pc.curv)
}

// poseAtOffset mirrors Road.PoseAtOffset's body on one piece:
// ref := PoseAt(s); Pose{ref.Pos.Add(ref.Left().Scale(d)), ref.Heading}.
// For a line, ref.Left() is the precomputed Start.Left(); for an arc it
// is FromAngle(ref.Heading).Perp(), exactly as Pose.Left computes it.
func (pc *fastPiece) poseAtOffset(s, d float64) geom.Pose {
	ref := pc.poseAt(s)
	left := pc.left
	if !pc.line {
		left = geom.FromAngle(ref.Heading).Perp()
	}
	return geom.Pose{Pos: ref.Pos.Add(left.Scale(d)), Heading: ref.Heading}
}

// project mirrors Composite.Project (or the raw piece projection for a
// bare Line/Arc reference, which never clamps).
func (f *fastRef) project(p geom.Vec2) (s, d float64) {
	if f.single {
		return f.pieces[0].project(p)
	}
	best := math.Inf(1)
	for i := range f.pieces {
		pc := &f.pieces[i]
		var ps, pd float64
		if pc.line {
			ps, pd = pc.project(p)
		} else {
			// Arc projection, inlined so ‖p−c‖ (needed for the offset
			// anyway) also serves as a lower bound before the expensive
			// Atan2 and the clamp pose's Sincos: every point of the arc
			// lies on its circle, so the point-to-circle distance
			// |‖p−c‖ − R| cannot exceed the point-to-arc candidate
			// distance (and the out-of-range penalty only adds). If the
			// bound already beats best by a margin far above float
			// rounding, this piece cannot win; borderline candidates
			// (within the margin) still evaluate exactly, so the winning
			// piece and the returned (s, d) bits never change.
			u := p.Sub(pc.center)
			uLen := u.Len()
			if bound := math.Abs(uLen - pc.radius); bound >= best+1e-6 {
				continue
			}
			theta := math.Atan2(pc.r0.Cross(u), pc.r0.Dot(u))
			ps = theta / pc.curv
			pd = pc.sign * (pc.radius - uLen)
		}
		clamped := math.Max(0, math.Min(pc.length, ps))
		ref := pc.poseAt(clamped)
		dist := ref.Pos.Dist(p)
		if ps < -1e-9 || ps > pc.length+1e-9 {
			dist += 1e3
		}
		if dist < best {
			best = dist
			s = f.starts[i] + ps
			d = pd
		}
	}
	return s, d
}

// pieceAt mirrors Composite.pieceAt.
func (f *fastRef) pieceAt(s float64) int {
	for i := len(f.pieces) - 1; i > 0; i-- {
		if s >= f.starts[i] {
			return i
		}
	}
	return 0
}

func (f *fastRef) poseAt(s float64) geom.Pose {
	if f.single {
		return f.pieces[0].poseAt(s)
	}
	i := f.pieceAt(s)
	return f.pieces[i].poseAt(s - f.starts[i])
}

func (f *fastRef) forwardAt(s float64) geom.Vec2 {
	if f.single {
		return f.pieces[0].forwardAt(s)
	}
	i := f.pieceAt(s)
	return f.pieces[i].forwardAt(s - f.starts[i])
}

func (f *fastRef) poseAtOffset(s, d float64) geom.Pose {
	if f.single {
		return f.pieces[0].poseAtOffset(s, d)
	}
	i := f.pieceAt(s)
	return f.pieces[i].poseAtOffset(s-f.starts[i], d)
}

// fastOf returns the road's precompiled reference, building it on
// first use (safe under concurrent readers via the Once).
func (r *Road) fastOf() *fastRef {
	r.fastOnce.Do(func() { r.fast = compileRef(r.Ref) })
	return &r.fast
}
