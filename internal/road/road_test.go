package road

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

const tol = 1e-9

func TestLinePoseAndProject(t *testing.T) {
	l := Line{Start: geom.Pose{Pos: geom.V(0, 0), Heading: 0}, Len: 100}
	p := l.PoseAt(10)
	if p.Pos != geom.V(10, 0) || p.Heading != 0 {
		t.Errorf("PoseAt(10) = %+v", p)
	}
	s, d := l.Project(geom.V(25, 3))
	if s != 25 || d != 3 {
		t.Errorf("Project = %v, %v", s, d)
	}
	if l.Curvature(5) != 0 {
		t.Error("line curvature nonzero")
	}
}

func TestLineRotated(t *testing.T) {
	l := Line{Start: geom.Pose{Pos: geom.V(1, 1), Heading: math.Pi / 2}, Len: 50}
	p := l.PoseAt(5)
	if math.Abs(p.Pos.X-1) > tol || math.Abs(p.Pos.Y-6) > tol {
		t.Errorf("PoseAt = %+v", p)
	}
	s, d := l.Project(geom.V(0, 6))
	if math.Abs(s-5) > tol || math.Abs(d-1) > tol {
		t.Errorf("Project = %v, %v", s, d)
	}
}

func TestArcLeftTurn(t *testing.T) {
	// Radius 100 left turn from origin heading +X: quarter circle ends at
	// (100, 100) heading +Y.
	a := Arc{Start: geom.Pose{}, Curv: 1.0 / 100, Len: math.Pi * 50}
	end := a.PoseAt(math.Pi * 50)
	if math.Abs(end.Pos.X-100) > 1e-6 || math.Abs(end.Pos.Y-100) > 1e-6 {
		t.Errorf("end pos = %v", end.Pos)
	}
	if math.Abs(end.Heading-math.Pi/2) > 1e-9 {
		t.Errorf("end heading = %v", end.Heading)
	}
	if a.Curvature(10) != 0.01 {
		t.Errorf("curvature = %v", a.Curvature(10))
	}
}

func TestArcRightTurn(t *testing.T) {
	a := Arc{Start: geom.Pose{}, Curv: -1.0 / 100, Len: math.Pi * 50}
	end := a.PoseAt(math.Pi * 50)
	if math.Abs(end.Pos.X-100) > 1e-6 || math.Abs(end.Pos.Y+100) > 1e-6 {
		t.Errorf("end pos = %v", end.Pos)
	}
	if math.Abs(end.Heading+math.Pi/2) > 1e-9 {
		t.Errorf("end heading = %v", end.Heading)
	}
}

func TestArcProjectRoundTrip(t *testing.T) {
	for _, curv := range []float64{1.0 / 100, -1.0 / 100, 1.0 / 300, -1.0 / 300} {
		a := Arc{Start: geom.Pose{Pos: geom.V(5, -3), Heading: 0.3}, Curv: curv, Len: 200}
		for _, s := range []float64{0, 10, 50, 150, 199} {
			for _, d := range []float64{-3, 0, 2.5} {
				ref := a.PoseAt(s)
				p := ref.Pos.Add(ref.Left().Scale(d))
				gs, gd := a.Project(p)
				if math.Abs(gs-s) > 1e-6 || math.Abs(gd-d) > 1e-6 {
					t.Errorf("curv %v: Project(PoseAt(%v)+%v·left) = %v, %v", curv, s, d, gs, gd)
				}
			}
		}
	}
}

func TestArcProjectQuick(t *testing.T) {
	a := Arc{Start: geom.Pose{}, Curv: 1.0 / 250, Len: 400}
	f := func(rawS, rawD float64) bool {
		if math.IsNaN(rawS) || math.IsNaN(rawD) {
			return true
		}
		s := math.Mod(math.Abs(rawS), 400)
		d := math.Mod(rawD, 5)
		ref := a.PoseAt(s)
		p := ref.Pos.Add(ref.Left().Scale(d))
		gs, gd := a.Project(p)
		return math.Abs(gs-s) < 1e-6 && math.Abs(gd-d) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeContinuity(t *testing.T) {
	r := NewCurved(3, 100, 300, 400)
	// Walk the centerline; consecutive poses must be close (continuity).
	prev := r.Ref.PoseAt(0)
	for s := 1.0; s <= 480; s += 1 {
		cur := r.Ref.PoseAt(s)
		if cur.Pos.Dist(prev.Pos) > 1.5 {
			t.Fatalf("discontinuity at s=%v: %v -> %v", s, prev.Pos, cur.Pos)
		}
		prev = cur
	}
	if got := r.Ref.Length(); math.Abs(got-500) > tol {
		t.Errorf("Length = %v", got)
	}
	// Curvature switches from 0 to 1/300 at s=100.
	if got := r.Ref.Curvature(50); got != 0 {
		t.Errorf("curvature at 50 = %v", got)
	}
	if got := r.Ref.Curvature(150); math.Abs(got-1.0/300) > tol {
		t.Errorf("curvature at 150 = %v", got)
	}
}

func TestCompositeProjectRoundTrip(t *testing.T) {
	r := NewCurved(3, 100, 300, 400)
	for _, s := range []float64{5, 50, 99, 101, 200, 450} {
		for _, d := range []float64{0, 3.5, 7} {
			p := r.PoseAtOffset(s, d)
			gs, gd := r.Frenet(p.Pos)
			if math.Abs(gs-s) > 1e-6 || math.Abs(gd-d) > 1e-6 {
				t.Errorf("Frenet(PoseAtOffset(%v,%v)) = %v, %v", s, d, gs, gd)
			}
		}
	}
}

func TestRoadLanes(t *testing.T) {
	r := NewStraight(3, 1000)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.LaneCenterOffset(0); got != 0 {
		t.Errorf("lane 0 offset = %v", got)
	}
	if got := r.LaneCenterOffset(2); got != 7 {
		t.Errorf("lane 2 offset = %v", got)
	}
	if got := r.LaneAt(0); got != 0 {
		t.Errorf("LaneAt(0) = %v", got)
	}
	if got := r.LaneAt(3.5); got != 1 {
		t.Errorf("LaneAt(3.5) = %v", got)
	}
	if got := r.LaneAt(5.0); got != 1 {
		t.Errorf("LaneAt(5.0) = %v", got)
	}
	if got := r.LaneAt(-10); got != 0 {
		t.Errorf("LaneAt(-10) = %v", got)
	}
	if got := r.LaneAt(100); got != 2 {
		t.Errorf("LaneAt(100) = %v", got)
	}
}

func TestRoadPoseAt(t *testing.T) {
	r := NewStraight(3, 1000)
	p := r.PoseAt(1, 50)
	if math.Abs(p.Pos.X-50) > tol || math.Abs(p.Pos.Y-3.5) > tol {
		t.Errorf("PoseAt = %+v", p)
	}
}

func TestRoadInBounds(t *testing.T) {
	r := NewStraight(3, 1000)
	cases := []struct {
		d, margin float64
		want      bool
	}{
		{0, 0, true},
		{7, 0, true},
		{8.74, 0, true},
		{8.8, 0, false},
		{-1.74, 0, true},
		{-1.8, 0, false},
		{-2.2, 0.5, true},
	}
	for i, c := range cases {
		if got := r.InBounds(c.d, c.margin); got != c.want {
			t.Errorf("case %d: InBounds(%v,%v) = %v, want %v", i, c.d, c.margin, got, c.want)
		}
	}
}

func TestRoadValidate(t *testing.T) {
	if err := (&Road{NumLanes: 0, LaneWidth: 3.5, Ref: Line{Len: 1}}).Validate(); err == nil {
		t.Error("want error for zero lanes")
	}
	if err := (&Road{NumLanes: 3, LaneWidth: 0, Ref: Line{Len: 1}}).Validate(); err == nil {
		t.Error("want error for zero lane width")
	}
	if err := (&Road{NumLanes: 3, LaneWidth: 3.5}).Validate(); err == nil {
		t.Error("want error for nil ref")
	}
}

func TestCurvedRoadLaneGeometry(t *testing.T) {
	// On a left curve, the left lane (higher index) has a smaller turn
	// radius, so a fixed arc station spans it correctly via PoseAtOffset.
	r := NewCurved(3, 0, 200, 300)
	inner := r.PoseAt(2, 150) // leftmost lane on a left turn = inner lane
	outer := r.PoseAt(0, 150)
	ci := geom.V(0, 200) // curve center for radius-200 left turn from origin
	if math.Abs(inner.Pos.Dist(ci)-193) > 1e-6 {
		t.Errorf("inner radius = %v", inner.Pos.Dist(ci))
	}
	if math.Abs(outer.Pos.Dist(ci)-200) > 1e-6 {
		t.Errorf("outer radius = %v", outer.Pos.Dist(ci))
	}
}
