package baseline

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

func TestUniformGridSearchBenign(t *testing.T) {
	sc, _ := scenario.ByName(scenario.FrontRightActivity1)
	res, err := UniformGridSearch(sc, []float64{1, 2}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("benign scenario infeasible")
	}
	if res.MinUniformFPR != 1 {
		t.Errorf("min uniform FPR = %v, want 1", res.MinUniformFPR)
	}
	if res.TotalFPR != 5 {
		t.Errorf("total = %v, want 5 (1 FPR x 5 cameras)", res.TotalFPR)
	}
	if res.Runs != 4 {
		t.Errorf("runs = %d, want 2 rates x 2 seeds", res.Runs)
	}
	if res.RunsScheduled != 4 {
		t.Errorf("scheduled = %d, want 4 (benign: nothing pruned)", res.RunsScheduled)
	}
}

func TestUniformGridSearchCutOut(t *testing.T) {
	// The cut-out collides at 1 FPR: the uniform search must land above
	// the grid floor, and its per-vehicle budget is rate x every camera
	// — the uniform penalty Zhuyi's per-camera estimates avoid.
	sc, _ := scenario.ByName(scenario.CutOut)
	res, err := UniformGridSearch(sc, []float64{1, 6, 30}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("cut-out infeasible at 30 FPR")
	}
	if res.MinUniformFPR <= 1 {
		t.Errorf("min uniform FPR = %v, want > 1", res.MinUniformFPR)
	}
	if res.TotalFPR != res.MinUniformFPR*5 {
		t.Errorf("total = %v", res.TotalFPR)
	}
}

func TestPerCameraSearchCostExplodes(t *testing.T) {
	// The paper's point against grid search in a multi-camera setting:
	// exploring per-camera rates independently costs |grid|^cameras.
	uniform := float64(12 * 10) // 12 rates x 10 seeds
	perCamera := PerCameraSearchCost(12, 5, 10)
	if perCamera/uniform < 1e4 {
		t.Errorf("per-camera cost %v not drastically above uniform %v", perCamera, uniform)
	}
	if perCamera != math.Pow(12, 5)*10 {
		t.Errorf("cost = %v", perCamera)
	}
}

func TestRSSSafeDistanceProperties(t *testing.T) {
	p := DefaultRSSParams()
	// Longer response times demand more distance.
	prev := -1.0
	for _, rho := range []float64{0, 0.1, 0.5, 1, 2} {
		d := p.SafeDistance(25, 20, rho)
		if d < prev {
			t.Fatalf("safe distance decreased with rho: %v after %v", d, prev)
		}
		prev = d
	}
	// Faster leads shrink the required distance.
	if p.SafeDistance(25, 25, 0.5) >= p.SafeDistance(25, 10, 0.5) {
		t.Error("faster lead did not shrink the RSS distance")
	}
	// Never negative.
	if d := p.SafeDistance(0, 30, 0); d != 0 {
		t.Errorf("negative-regime distance = %v", d)
	}
}

func TestRSSTolerableResponseInversion(t *testing.T) {
	p := DefaultRSSParams()
	vr, vf := 25.0, 15.0
	for _, rho := range []float64{0.2, 0.5, 1.0} {
		gap := p.SafeDistance(vr, vf, rho)
		got, ok := p.TolerableResponse(vr, vf, gap)
		if !ok {
			t.Fatalf("rho %v: inversion infeasible", rho)
		}
		if math.Abs(got-rho) > 1e-6 {
			t.Errorf("rho %v inverted to %v", rho, got)
		}
	}
	// A gap below the zero-response envelope is infeasible.
	if _, ok := p.TolerableResponse(30, 0, 5); ok {
		t.Error("tiny gap reported feasible")
	}
	// A huge gap saturates at the bisection ceiling.
	rho, ok := p.TolerableResponse(10, 10, 1e6)
	if !ok || rho < 9.99 {
		t.Errorf("huge gap rho = %v, ok = %v", rho, ok)
	}
}

func TestRSSLatencyComparableToZhuyi(t *testing.T) {
	// For a matched following geometry, both models must agree on the
	// qualitative ordering: tighter gaps mean shorter tolerable
	// reaction/response times.
	p := DefaultRSSParams()
	tight := RSSLatency(p, 25, 15, 30)
	loose := RSSLatency(p, 25, 15, 90)
	if !loose.Feasible {
		t.Fatal("loose gap infeasible")
	}
	if tight.Feasible && tight.Rho >= loose.Rho {
		t.Errorf("tight gap rho %v not below loose %v", tight.Rho, loose.Rho)
	}
	if loose.String() == "infeasible" {
		t.Error("String for feasible result")
	}
	if (RSSLatencyResult{}).String() != "infeasible" {
		t.Error("String for infeasible result")
	}
}
