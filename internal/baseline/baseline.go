// Package baseline implements the comparison points from the paper's
// related work (§5):
//
//   - Suraksha-style uniform grid search: find the minimal uniform
//     per-camera FPS by exhaustively re-running the scenario at each
//     candidate rate. The paper's critique — "the grid search adopted
//     in Suraksha could easily become infeasible in [a] multi-camera
//     setting" — is quantified here by counting simulation runs against
//     Zhuyi's single trace evaluation.
//
//   - An RSS-derived tolerable latency: Responsibility-Sensitive Safety
//     defines the minimum longitudinal safe distance for a response
//     time ρ; inverting it for ρ yields a per-actor latency bound
//     comparable to Zhuyi's. RSS "focus[es] on how to make planning and
//     control decision[s] ... while lack[ing] insights on the
//     safety-aware AV system design"; the inversion makes the two
//     models directly comparable.
package baseline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// GridSearchResult is the outcome of a Suraksha-style uniform search.
type GridSearchResult struct {
	Scenario string
	// MinUniformFPR is the lowest tested uniform rate that was
	// collision-free across all seeds (and all higher tested rates).
	MinUniformFPR float64
	// Runs is the exhaustive |grid|·seeds simulation cost of the
	// Suraksha protocol being reproduced — the cost the paper argues
	// explodes for per-camera settings. The comparison keeps the
	// baseline's nominal cost even though this repo's adaptive search
	// may schedule fewer points (see RunsScheduled).
	Runs int
	// RunsScheduled is what the adaptive engine-backed search actually
	// scheduled (cache hits included); the early exit may prune it below
	// Runs.
	RunsScheduled int
	// TotalFPR is the implied per-vehicle frame budget: the uniform rate
	// on every camera of the rig.
	TotalFPR float64
	// Feasible is false when even the highest tested rate collided.
	Feasible bool
}

// UniformGridSearch runs the scenario at every rate in grid (ascending)
// with the given seeds, Suraksha-style, on the shared default engine.
// See UniformGridSearchContext.
func UniformGridSearch(sc scenario.Scenario, grid []float64, seeds, cameras int) (GridSearchResult, error) {
	return UniformGridSearchContext(context.Background(), engine.Default(), sc, grid, seeds, cameras)
}

// UniformGridSearchContext searches the minimal safe uniform rate on
// the given engine. cameras is the rig size used to report the total
// frame budget.
func UniformGridSearchContext(ctx context.Context, eng *engine.Engine, sc scenario.Scenario, grid []float64, seeds, cameras int) (GridSearchResult, error) {
	res := GridSearchResult{Scenario: sc.Name}
	if len(grid) == 0 {
		grid = metrics.DefaultFPRGrid()
	}
	mrf, err := metrics.FindMRFContext(ctx, eng, sc, grid, seeds)
	if err != nil {
		return res, err
	}
	res.Runs = len(grid) * seeds
	res.RunsScheduled = mrf.Runs
	switch {
	case math.IsInf(mrf.Value, 1):
		res.Feasible = false
	case mrf.BelowGrid():
		res.Feasible = true
		res.MinUniformFPR = grid[0]
	default:
		res.Feasible = true
		res.MinUniformFPR = mrf.Value
	}
	res.TotalFPR = res.MinUniformFPR * float64(cameras)
	return res, nil
}

// PerCameraSearchCost estimates the number of simulation runs a grid
// search would need to explore per-camera rates independently: |grid|^c
// combinations times the seeds — the combinatorial blow-up the paper
// contrasts Zhuyi against.
func PerCameraSearchCost(gridSize, cameras, seeds int) float64 {
	return math.Pow(float64(gridSize), float64(cameras)) * float64(seeds)
}

// RSSParams are the Responsibility-Sensitive Safety longitudinal
// parameters (Shalev-Shwartz et al., 2017).
type RSSParams struct {
	MaxAccel     float64 // a_max: worst-case ego acceleration during the response time, m/s²
	MinBrake     float64 // b_min: the ego's guaranteed braking, m/s²
	MaxBrakeLead float64 // b_max: the lead's worst-case (hardest) braking, m/s²
}

// DefaultRSSParams mirrors the Zhuyi conservatism choices where they
// overlap: the ego's guaranteed braking equals the paper's C3.
func DefaultRSSParams() RSSParams {
	return RSSParams{MaxAccel: 1.0, MinBrake: 4.9, MaxBrakeLead: 7.5}
}

// SafeDistance returns the RSS minimum longitudinal distance for ego
// speed vr, lead speed vf, and response time rho:
//
//	d_min = vr·ρ + ½·a_max·ρ² + (vr + ρ·a_max)²/(2·b_min) − vf²/(2·b_max)
//
// clamped at zero.
func (p RSSParams) SafeDistance(vr, vf, rho float64) float64 {
	vAfter := vr + rho*p.MaxAccel
	d := vr*rho + 0.5*p.MaxAccel*rho*rho + vAfter*vAfter/(2*p.MinBrake) - vf*vf/(2*p.MaxBrakeLead)
	if d < 0 {
		return 0
	}
	return d
}

// TolerableResponse inverts SafeDistance: the largest response time ρ
// for which the current gap satisfies the RSS condition. Returns 0 and
// false when even ρ = 0 is unsafe (the gap is already inside the RSS
// envelope). The inversion is a bisection on the monotone SafeDistance.
func (p RSSParams) TolerableResponse(vr, vf, gap float64) (float64, bool) {
	if p.SafeDistance(vr, vf, 0) > gap {
		return 0, false
	}
	lo, hi := 0.0, 10.0
	if p.SafeDistance(vr, vf, hi) <= gap {
		return hi, true
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if p.SafeDistance(vr, vf, mid) <= gap {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// RSSLatencyResult compares the RSS-derived response bound with a
// Zhuyi latency for the same geometry.
type RSSLatencyResult struct {
	Rho      float64 // RSS tolerable response time, s
	Feasible bool
}

// String renders the result.
func (r RSSLatencyResult) String() string {
	if !r.Feasible {
		return "infeasible"
	}
	return fmt.Sprintf("%.3fs", r.Rho)
}

// RSSLatency computes the RSS response bound for an ego at speed vr
// behind a lead at speed vf with the given bumper gap.
func RSSLatency(p RSSParams, vr, vf, gap float64) RSSLatencyResult {
	rho, ok := p.TolerableResponse(vr, vf, gap)
	return RSSLatencyResult{Rho: rho, Feasible: ok}
}
