package experiments

import (
	"errors"
	"sync"
)

// forEachIndex runs fn for every index 0..n-1 concurrently, one
// goroutine each, and joins the errors in index order. Rows here only
// assemble results and evaluate traces; the expensive part — the
// closed-loop simulations — is scheduled and bounded by the shared
// internal/engine pool, so no package-local semaphore is needed.
func forEachIndex(n int, fn func(int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
