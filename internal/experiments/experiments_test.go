package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// quickOptions keeps experiment tests fast: 2 seeds and a reduced rate
// grid that still brackets every scenario's true MRF (so the grid does
// not inflate MRF past the estimates). Tests share the default engine,
// so overlapping campaigns reuse each other's runs from the cache.
func quickOptions() Options {
	return Options{Seeds: 2, FPRGrid: []float64{1, 2, 3, 5, 30}}
}

func TestTable1QuickGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 is slow")
	}
	rows, err := Table1(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}

	// Shape assertions mirroring the paper's Table 1:
	// benign scenarios are safe at every rate and report ~1 FPR.
	fr1 := byName[scenario.FrontRightActivity1]
	if !fr1.MRF.BelowGrid() {
		t.Errorf("front-right-1 MRF = %v, want <1", fr1.MRF.Value)
	}
	if est := fr1.Estimates[30]; math.IsNaN(est) || est > 1.5 {
		t.Errorf("front-right-1 estimate at 30 FPR = %v, want ~1", est)
	}
	if fr1.Fraction > 0.06 {
		t.Errorf("front-right-1 fraction = %v, want ~0.03", fr1.Fraction)
	}

	// The cut-out family needs real rates; the fast variant needs more.
	cutOut := byName[scenario.CutOut]
	cutOutFast := byName[scenario.CutOutFast]
	if cutOut.MRF.BelowGrid() {
		t.Error("cut-out MRF <1; expected collisions at 1 FPR")
	}
	if cutOutFast.MRF.Value < cutOut.MRF.Value {
		t.Errorf("cut-out-fast MRF %v below cut-out %v", cutOutFast.MRF.Value, cutOut.MRF.Value)
	}

	// The headline fraction: no scenario demands more than ~36% of the
	// 3-camera 30-FPR provisioning.
	if f := MaxFraction(rows); f > 0.37 {
		t.Errorf("max fraction = %v, paper reports <= 0.36", f)
	}

	// Below-MRF cells are N/A.
	if !math.IsNaN(cutOut.Estimates[1]) {
		t.Error("cut-out estimate at 1 FPR should be N/A")
	}

	// Rendering sanity.
	var sb strings.Builder
	WriteTable1(&sb, rows, quickOptions().FPRGrid)
	out := sb.String()
	if !strings.Contains(out, "cut-out") || !strings.Contains(out, "N/A") {
		t.Errorf("rendered table missing content:\n%s", out)
	}

	// The conservatism validation: allow at most the documented single
	// grid-step deviation on the slowest scenario.
	violations := ValidateTable1(rows)
	for _, v := range violations {
		t.Logf("validation note: %s", v)
	}
	if len(violations) > 2 {
		t.Errorf("too many conservatism violations: %v", violations)
	}
}

func TestCameraLatencyFigureCutOutFast(t *testing.T) {
	fs, err := CameraLatencyFigure(scenario.CutOutFast, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Collided {
		t.Fatal("30-FPR run collided")
	}
	if len(fs.Times) < 50 {
		t.Fatalf("series too short: %d", len(fs.Times))
	}
	left, front, right := fs.MinLatency()
	// Figure 4: the front camera requires ~167 ms at some instants while
	// the side cameras stay at >= 500 ms.
	if front > 0.35 {
		t.Errorf("front min latency = %v s, want tight (< 0.35)", front)
	}
	if left < 0.4 || right < 0.4 {
		t.Errorf("side cameras too tight: left %v, right %v", left, right)
	}
	// §4.2's correlation between front-camera requirements and ego
	// deceleration: the tight moment occurs at the reveal, and the ego
	// brakes hard within the following second.
	peak := fs.PeakFrontFPRTime()
	minAccel := math.Inf(1)
	for i, tm := range fs.Times {
		if tm >= peak && tm <= peak+1.0 {
			minAccel = math.Min(minAccel, fs.Accel[i])
		}
	}
	if minAccel > -2 {
		t.Errorf("no hard deceleration (min %v) within 1 s of the peak-FPR moment %v", minAccel, peak)
	}
}

func TestCameraLatencyFigureCutIn(t *testing.T) {
	fs, err := CameraLatencyFigure(scenario.CutIn, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6: "the tolerable latency for side cameras is 1000 ms as
	// there are no actors on the sides".
	left, _, right := fs.MinLatency()
	if left < 0.999 || right < 0.999 {
		t.Errorf("cut-in side cameras = %v, %v; want 1.0 s", left, right)
	}
	var sb strings.Builder
	WriteFigureSeries(&sb, fs)
	if !strings.Contains(sb.String(), "front(ms)") {
		t.Error("rendered series missing header")
	}
}

func TestCameraLatencyFigureUnknownScenario(t *testing.T) {
	if _, err := CameraLatencyFigure("nope", 30, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFigure7OnlineEstimates(t *testing.T) {
	s, err := Figure7(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Collided {
		t.Fatal("post-deployment run collided")
	}
	if len(s.Times) < 20 {
		t.Fatalf("series too short: %d", len(s.Times))
	}
	// The online estimates differ from offline (prediction-driven
	// variance), but both flag the cut-in: some online tightening below
	// the 1 s idle latency must appear.
	if s.MinOnline() >= 0.999 {
		t.Error("online estimates never tightened during the cut-in")
	}
	if s.Variance() == 0 {
		t.Error("online estimates identical to offline ground truth; expected variance")
	}
	var sb strings.Builder
	WriteOnlineSeries(&sb, s)
	if !strings.Contains(sb.String(), "online(ms)") {
		t.Error("rendered online series missing header")
	}
}

func TestFigure8Grids(t *testing.T) {
	for _, sn := range []float64{30, 100} {
		res := Figure8(sn)
		sum := Summarize(res)
		if sum.Feasible == 0 {
			t.Fatalf("sn=%v: no feasible cells", sn)
		}
		// Paper: streets (<= 25 mph) need at most 2 FPR.
		if sum.StreetMaxFPR > 2 {
			t.Errorf("sn=%v: street max FPR = %d, want <= 2", sn, sum.StreetMaxFPR)
		}
	}
	// sn=30 is strictly harder than sn=100.
	s30 := Summarize(Figure8(30))
	s100 := Summarize(Figure8(100))
	if s30.Unavoidable <= s100.Unavoidable {
		t.Errorf("unavoidable cells: sn30 %d should exceed sn100 %d", s30.Unavoidable, s100.Unavoidable)
	}
	var sb strings.Builder
	WriteSweep(&sb, Figure8(30))
	out := sb.String()
	if !strings.Contains(out, ".") || !strings.Contains(out, "1") {
		t.Errorf("sweep rendering suspicious:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	d := Figure1()
	if len(d.Curve) != 12 {
		t.Fatalf("curve points = %d", len(d.Curve))
	}
	final := d.Curve[len(d.Curve)-1].TOPS
	if final <= d.Xavier.TOPS || final >= d.Orin.TOPS {
		t.Errorf("12-camera demand %v must sit between Xavier %v and Orin %v",
			final, d.Xavier.TOPS, d.Orin.TOPS)
	}
	var sb strings.Builder
	WriteFigure1(&sb, d)
	if !strings.Contains(sb.String(), ">xavier") {
		t.Error("rendering missing Xavier exceedance marks")
	}
}

func TestHeadlineClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("headline is slow")
	}
	rows, err := Headline(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !AllSafe(rows) {
		for _, r := range rows {
			if !r.ZhuyiSafe {
				t.Errorf("%s collided under the Zhuyi controller", r.Scenario)
			}
		}
	}
	// The controller must cut the frame volume versus the fixed 30-FPR
	// baseline. Threat-heavy scenarios (a lead present for the whole
	// run) keep the front cameras fast under the cautious 99th-
	// percentile aggregation, so the per-scenario worst case is modest,
	// but the average reduction across scenarios must be large.
	if f := MaxFrameFraction(rows); f > 0.85 {
		t.Errorf("max frame fraction = %v, expected < 0.85", f)
	}
	mean := 0.0
	for _, r := range rows {
		mean += r.FrameFraction
	}
	mean /= float64(len(rows))
	if mean > 0.5 {
		t.Errorf("mean frame fraction = %v, expected < 0.5", mean)
	}
	var sb strings.Builder
	WriteHeadline(&sb, rows)
	if !strings.Contains(sb.String(), "fraction") {
		t.Error("headline rendering missing header")
	}
}

func TestPrioritizationBeatsUniformUnderTightBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("prioritization is slow")
	}
	// Budget 10 FPR across five cameras: uniform gives 2 each — the
	// cut-out-fast scenario reliably collides at 2 FPR — while Zhuyi
	// concentrates the same budget on the front cameras watching the
	// lead and the revealed obstacle.
	row, err := Prioritization(scenario.CutOutFast, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.UniformSafe {
		t.Error("uniform split of the tight budget unexpectedly survived")
	}
	if !row.ZhuyiSafe {
		t.Error("Zhuyi-prioritized allocation collided")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seeds != 10 || len(o.FPRGrid) != 12 || o.EvalEvery != 0.1 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Engine == nil {
		t.Fatal("no default engine")
	}
	if o.Engine.Workers() < 1 {
		t.Errorf("default engine workers = %d", o.Engine.Workers())
	}
	// An explicit worker count sizes a private pool.
	o = Options{Workers: 3}.withDefaults()
	if o.Engine.Workers() != 3 {
		t.Errorf("private engine workers = %d, want 3", o.Engine.Workers())
	}
}
