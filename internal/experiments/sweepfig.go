package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/units"
)

// Figure8 computes the velocity sensitivity grid for a fixed tolerable
// distance (the paper shows sn = 30 m and sn = 100 m). Axes run in mph
// as in the paper; the sweep uses the steady-state alpha model (see
// core.Sweep).
func Figure8(snMeters float64) *core.SweepResult {
	p := core.DefaultParams()
	p.Alpha = core.AlphaZero
	var ve0s, vans []float64
	for mph := 0.0; mph <= 75; mph += 2.5 {
		ve0s = append(ve0s, units.MPHToMPS(mph))
		vans = append(vans, units.MPHToMPS(mph))
	}
	return core.Sweep(ve0s, vans, snMeters, p.LMin, p)
}

// WriteSweep renders the grid as an ASCII heatmap in the paper's
// encoding: '.' for unavoidable (white), '#' for 30+ FPR (gray), and a
// compact digit/letter for the minimum FPR otherwise (1-9, then a=10+,
// b=15+, c=20+).
func WriteSweep(w io.Writer, res *core.SweepResult) {
	fmt.Fprintf(w, "# minimum FPR for sn = %.0f m ('.'=unavoidable, '#'=30+)\n", res.SN)
	fmt.Fprintf(w, "# rows: ego speed v_e0 (mph, top=0); cols: actor end velocity v_an (mph, left=0)\n")
	for i, rowCells := range res.Cells {
		fmt.Fprintf(w, "%5.1f mph |", units.MPSToMPH(res.VE0s[i]))
		for _, cell := range rowCells {
			fmt.Fprintf(w, " %c", cellRune(cell))
		}
		fmt.Fprintln(w)
	}
}

func cellRune(c core.SweepCell) rune {
	switch {
	case c.Unavoidable:
		return '.'
	case c.ThirtyPlus:
		return '#'
	default:
		q := core.QuantizeFPR(c.FPR)
		switch {
		case q <= 9:
			return rune('0' + q)
		case q < 15:
			return 'a'
		case q < 20:
			return 'b'
		default:
			return 'c'
		}
	}
}

// SweepSummary aggregates a grid for tests and reports.
type SweepSummary struct {
	SN           float64
	Feasible     int
	Unavoidable  int
	ThirtyPlus   int
	MaxFPR       int // largest quantized FPR among feasible cells
	StreetMaxFPR int // largest quantized FPR for v_e0 <= 25 mph
}

// Summarize computes the SweepSummary.
func Summarize(res *core.SweepResult) SweepSummary {
	s := SweepSummary{SN: res.SN}
	for i, rowCells := range res.Cells {
		mph := units.MPSToMPH(res.VE0s[i])
		for _, cell := range rowCells {
			switch {
			case cell.Unavoidable:
				s.Unavoidable++
			case cell.ThirtyPlus:
				s.ThirtyPlus++
			default:
				s.Feasible++
				q := core.QuantizeFPR(cell.FPR)
				if q > s.MaxFPR {
					s.MaxFPR = q
				}
				if mph <= 25 && q > s.StreetMaxFPR {
					s.StreetMaxFPR = q
				}
			}
		}
	}
	return s
}
