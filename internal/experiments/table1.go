// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): Table 1 (scenario validation), Figure 1 (perception
// throughput demand), Figures 4–6 (per-camera latency series), Figure 7
// (post-deployment estimates), Figure 8 (velocity sensitivity sweep),
// and the headline resource-fraction claim. Each generator returns
// structured data and can render the paper's rows/series as text.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Options controls experiment scale. The zero value is upgraded to the
// paper's protocol (10 seeds, the Table-1 FPR grid) on the shared
// default run engine.
type Options struct {
	Seeds     int       // runs per configuration (paper: 10)
	FPRGrid   []float64 // tested rates (paper: 1..10, 15, 30)
	EvalEvery float64   // offline evaluation period, s
	// Workers sizes a private engine when Engine is nil; 0 keeps the
	// shared default engine (pool sized to GOMAXPROCS).
	Workers int
	// Engine schedules and caches every closed-loop run. nil selects
	// engine.Default() (or a private pool when Workers or Store is
	// set), so consecutive experiments in one process reuse each
	// other's runs.
	Engine *engine.Engine
	// Store attaches a persistent cache tier to the engine built here:
	// points archived by an earlier process (e.g. `zhuyi record`) load
	// from disk instead of simulating, and fresh runs are archived
	// back, so Table-1 and corpus sweeps warm-start across processes.
	// Ignored when Engine is provided — attach the store to that
	// engine's Options instead.
	Store *store.Store

	// ownEngine marks a private pool built by withDefaults; the entry
	// point that built it closes it, so repeated calls with Workers set
	// don't leak worker goroutines and caches.
	ownEngine bool
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 10
	}
	if len(o.FPRGrid) == 0 {
		o.FPRGrid = metrics.DefaultFPRGrid()
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 0.1
	}
	if o.Engine == nil {
		if o.Workers > 0 || o.Store != nil {
			o.Engine = engine.New(engine.Options{Workers: o.Workers, Store: o.Store})
			o.ownEngine = true
		} else {
			o.Engine = engine.Default()
		}
	}
	return o
}

// release winds down a private pool built by withDefaults. Caller-
// provided engines and the shared default are left running.
func (o Options) release() {
	if o.ownEngine {
		o.Engine.Close()
	}
}

// Table1Row is one scenario row of Table 1.
type Table1Row struct {
	Scenario    string
	EgoSpeedMPH float64
	Front       bool
	Right       bool
	Left        bool
	MRF         metrics.MRF
	// Estimates maps each tested FPR to the maximum estimated FPR across
	// cameras and time, averaged over seeds. Rates below the MRF hold
	// NaN (the paper's N/A: those runs collided).
	Estimates map[float64]float64
	// MaxSumFPR is max(F_c1+F_c2+F_c3) across all valid runs; Fraction
	// divides it by the 3-camera 30-FPR provisioning (90).
	MaxSumFPR float64
	Fraction  float64
}

// Table1 reproduces the paper's Table 1: per scenario, the minimum
// required FPR from closed-loop runs and the offline Zhuyi estimates
// from traces recorded at each tested rate.
func Table1(opt Options) ([]Table1Row, error) {
	return Table1Context(context.Background(), opt)
}

// Table1Context is Table1 with cancellation. Scenario rows assemble
// concurrently; every underlying run is scheduled on opt.Engine, so the
// estimate pass reuses the MRF search's simulations as cache hits.
func Table1Context(ctx context.Context, opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	defer opt.release()
	scenarios := scenario.All()
	rows := make([]Table1Row, len(scenarios))
	err := forEachIndex(len(scenarios), func(i int) error {
		row, err := table1Row(ctx, scenarios[i], opt)
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func table1Row(ctx context.Context, sc scenario.Scenario, opt Options) (Table1Row, error) {
	row := Table1Row{
		Scenario:    sc.Name,
		EgoSpeedMPH: sc.EgoSpeedMPH,
		Front:       sc.FrontActivity,
		Right:       sc.RightActivity,
		Left:        sc.LeftActivity,
		Estimates:   make(map[float64]float64, len(opt.FPRGrid)),
	}
	mrf, err := metrics.FindMRFContext(ctx, opt.Engine, sc, opt.FPRGrid, opt.Seeds)
	if err != nil {
		return row, err
	}
	row.MRF = mrf

	// Estimate pass: one batched campaign over every safe rate × seed.
	// The MRF search already simulated exactly these points (its
	// descending waves stop below the MRF), so this pass is ideally all
	// cache hits.
	var jobs []engine.Job
	for _, fpr := range opt.FPRGrid {
		if fpr < mrf.Value {
			row.Estimates[fpr] = math.NaN() // the paper's N/A
			continue
		}
		for seed := int64(1); seed <= int64(opt.Seeds); seed++ {
			jobs = append(jobs, engine.Job{Scenario: sc, FPR: fpr, Seed: seed})
		}
	}
	batch, err := opt.Engine.RunBatch(ctx, jobs)
	if err != nil {
		return row, err
	}

	est := core.NewEstimator()
	sums := make(map[float64]float64, len(opt.FPRGrid))
	counts := make(map[float64]int, len(opt.FPRGrid))
	maxSum := 0.0
	// Outcomes follow job submission order (ascending rate, then seed),
	// keeping the float accumulation deterministic.
	for _, o := range batch.Outcomes {
		if o.Result.Collided() {
			continue // rare boundary collision at a nominally safe rate
		}
		off, err := est.EvaluateTrace(o.Result.Trace, core.OfflineOptions{EvalEvery: opt.EvalEvery})
		if err != nil {
			return row, err
		}
		sums[o.Job.FPR] += off.MaxFPR()
		counts[o.Job.FPR]++
		if s := off.MaxSumFPR(); s > maxSum {
			maxSum = s
		}
	}
	for _, fpr := range opt.FPRGrid {
		if fpr < mrf.Value {
			continue
		}
		if n := counts[fpr]; n > 0 {
			row.Estimates[fpr] = sums[fpr] / float64(n)
		} else {
			row.Estimates[fpr] = math.NaN()
		}
	}
	row.MaxSumFPR = maxSum
	row.Fraction = maxSum / (3 * 30)
	return row, nil
}

// ValidateTable1 checks the paper's central claim on computed rows:
// every estimate at a safe rate is at or above the MRF (a small
// tolerance of one latency grid step absorbs the δl quantization).
func ValidateTable1(rows []Table1Row) []string {
	var violations []string
	for _, row := range rows {
		mrfVal := row.MRF.Value
		if row.MRF.BelowGrid() {
			mrfVal = 1 // "<1": any estimate >= its idle floor of 1 passes
		}
		for fpr, estFPR := range row.Estimates {
			if math.IsNaN(estFPR) {
				continue
			}
			// One δl grid step of tolerance: at latency l the adjacent
			// grid cell is l+δl.
			tol := mrfVal - 1/(1/mrfVal+0.033) + 1e-9
			if estFPR < mrfVal-tol {
				violations = append(violations,
					fmt.Sprintf("%s @%g FPR: estimate %.2f below MRF %s", row.Scenario, fpr, estFPR, row.MRF))
			}
		}
	}
	sort.Strings(violations)
	return violations
}

// WriteTable1 renders rows the way the paper prints Table 1.
func WriteTable1(w io.Writer, rows []Table1Row, grid []float64) {
	if len(grid) == 0 {
		grid = metrics.DefaultFPRGrid()
	}
	fmt.Fprintf(w, "%-28s %5s %5s %5s %5s %6s", "Scenario", "mph", "Front", "Right", "Left", "MRF")
	for _, f := range grid {
		fmt.Fprintf(w, " %5g", f)
	}
	fmt.Fprintf(w, " %9s %8s\n", "maxSum", "Fraction")
	for _, row := range rows {
		fmt.Fprintf(w, "%-28s %5g %5s %5s %5s %6s",
			row.Scenario, row.EgoSpeedMPH, yn(row.Front), yn(row.Right), yn(row.Left), row.MRF.String())
		for _, f := range grid {
			v := row.Estimates[f]
			if math.IsNaN(v) {
				fmt.Fprintf(w, " %5s", "N/A")
			} else {
				fmt.Fprintf(w, " %5.1f", v)
			}
		}
		fmt.Fprintf(w, " %9.0f %8.2f\n", row.MaxSumFPR, row.Fraction)
	}
}

func yn(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

// MaxFraction returns the largest resource fraction across rows — the
// abstract's "36% or fewer frames" headline number.
func MaxFraction(rows []Table1Row) float64 {
	maxFrac := 0.0
	for _, r := range rows {
		if r.Fraction > maxFrac {
			maxFrac = r.Fraction
		}
	}
	return maxFrac
}
