package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/scenario"
	"repro/internal/world"
)

// BaselineRow compares Zhuyi's per-camera allocation against the
// Suraksha-style minimal uniform rate for one scenario.
type BaselineRow struct {
	Scenario string
	// UniformFPR is the minimal safe uniform per-camera rate found by
	// grid search; UniformTotal multiplies it over the analyzed cameras.
	UniformFPR   float64
	UniformTotal float64
	// ZhuyiPeakSum is Zhuyi's max(F_c1+F_c2+F_c3) from the trace at the
	// uniform rate; ZhuyiMeanSum is the time-averaged demand — the frame
	// volume a Zhuyi-driven allocator actually processes, while the
	// uniform provisioning holds its total continuously.
	ZhuyiPeakSum float64
	ZhuyiMeanSum float64
	// Savings is 1 − mean(Zhuyi)/Uniform (positive = Zhuyi cheaper).
	Savings float64
	// SearchRuns is the grid search's simulation count; ZhuyiRuns is 1
	// (a single trace evaluation).
	SearchRuns int
}

// BaselineComparison runs the Suraksha-style search and the Zhuyi
// evaluation for each scenario, concurrently on opt.Engine. The Zhuyi
// trace at the uniform operating point is a cache hit: the grid
// search's MRF waves already simulated it.
func BaselineComparison(opt Options) ([]BaselineRow, error) {
	opt = opt.withDefaults()
	defer opt.release()
	ctx := context.Background()
	scenarios := scenario.All()
	rows := make([]BaselineRow, len(scenarios))
	err := forEachIndex(len(scenarios), func(i int) error {
		sc := scenarios[i]
		row := BaselineRow{Scenario: sc.Name}
		gs, err := baseline.UniformGridSearchContext(ctx, opt.Engine, sc, opt.FPRGrid, opt.Seeds, 3)
		if err != nil {
			return err
		}
		row.SearchRuns = gs.Runs
		if !gs.Feasible {
			rows[i] = row
			return nil
		}
		row.UniformFPR = gs.MinUniformFPR
		row.UniformTotal = gs.TotalFPR

		// Zhuyi's demand at the uniform operating point.
		res, err := opt.Engine.Run(ctx, engine.Job{Scenario: sc, FPR: gs.MinUniformFPR, Seed: 1})
		if err != nil {
			return err
		}
		est := core.NewEstimator()
		off, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{EvalEvery: opt.EvalEvery})
		if err != nil {
			return err
		}
		row.ZhuyiPeakSum = off.MaxSumFPR()
		row.ZhuyiMeanSum = off.MeanSumFPR()
		if row.UniformTotal > 0 {
			row.Savings = 1 - row.ZhuyiMeanSum/row.UniformTotal
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteBaselineComparison renders the table plus the combinatorial-cost
// note the paper makes against per-camera grid search.
func WriteBaselineComparison(w io.Writer, rows []BaselineRow, gridSize, seeds int) {
	fmt.Fprintf(w, "%-28s %11s %13s %11s %11s %9s %11s\n",
		"Scenario", "uniformFPR", "uniform-total", "zhuyi-peak", "zhuyi-mean", "savings", "search-runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %11.1f %13.1f %11.1f %11.1f %8.0f%% %11d\n",
			r.Scenario, r.UniformFPR, r.UniformTotal, r.ZhuyiPeakSum, r.ZhuyiMeanSum, r.Savings*100, r.SearchRuns)
	}
	fmt.Fprintf(w, "# per-camera grid search over 3 cameras would need %.0f runs; Zhuyi needs one trace pass\n",
		baseline.PerCameraSearchCost(gridSize, 3, seeds))
}

// RSSComparisonRow pairs the RSS response-time bound with Zhuyi's
// tolerable latency for one following geometry.
type RSSComparisonRow struct {
	EgoSpeed  float64 // m/s
	LeadSpeed float64 // m/s
	Gap       float64 // m
	RSSRho    float64 // s (0 when infeasible)
	ZhuyiL    float64 // s (0 when infeasible)
}

// RSSComparison evaluates both models over a grid of following
// geometries. Zhuyi's reaction time includes the K-frame confirmation
// (tr = l + α), so its raw latency l is systematically below the RSS ρ
// for the same gap; the comparison uses AlphaZero so both quantities
// mean "pure response time".
func RSSComparison() []RSSComparisonRow {
	p := core.DefaultParams()
	p.Alpha = core.AlphaZero
	rss := baseline.DefaultRSSParams()

	var rows []RSSComparisonRow
	for _, vr := range []float64{15, 25, 32} {
		for _, gapFactor := range []float64{1.5, 3, 6} {
			vf := vr * 0.7
			gap := vr * gapFactor
			row := RSSComparisonRow{EgoSpeed: vr, LeadSpeed: vf, Gap: gap}

			if r := baseline.RSSLatency(rss, vr, vf, gap); r.Feasible {
				row.RSSRho = r.Rho
			}

			ego := core.EgoState{Pose: geom.Pose{Pos: geom.V(0, 0)}, Speed: vr, Length: 4.6, Width: 1.9}
			traj := constSpeedTraj(gap+4.6, vf, p.Horizon)
			if zr := core.TolerableLatency(ego, traj, [2]float64{4.6, 1.9}, p.LMin, p); zr.Feasible {
				row.ZhuyiL = zr.Latency
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func constSpeedTraj(startX, speed, horizon float64) world.Trajectory {
	var pts []world.TrajectoryPoint
	for t := 0.0; t <= horizon; t += 0.2 {
		pts = append(pts, world.TrajectoryPoint{T: t, Pos: geom.V(startX+speed*t, 0), Speed: speed})
	}
	return world.Trajectory{ActorID: "lead", Prob: 1, Points: pts}
}

// WriteRSSComparison renders the RSS-vs-Zhuyi table.
func WriteRSSComparison(w io.Writer, rows []RSSComparisonRow) {
	fmt.Fprintf(w, "# RSS response bound vs Zhuyi tolerable latency (alpha = 0)\n")
	fmt.Fprintf(w, "%8s %9s %7s %10s %10s\n", "ego m/s", "lead m/s", "gap m", "RSS rho s", "Zhuyi l s")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.1f %9.1f %7.1f %10.3f %10.3f\n", r.EgoSpeed, r.LeadSpeed, r.Gap, r.RSSRho, r.ZhuyiL)
	}
}
