package experiments

import (
	"fmt"
	"io"

	"repro/internal/compute"
)

// Figure1Data is the throughput-demand comparison of the paper's
// Figure 1.
type Figure1Data struct {
	Curve  []compute.CurvePoint
	Xavier compute.SoC
	Orin   compute.SoC
	Config compute.DemandConfig
}

// Figure1 computes the camera-perception demand curve against the two
// SoCs' offered throughput.
func Figure1() Figure1Data {
	cfg := compute.DefaultDemand()
	return Figure1Data{
		Curve:  cfg.DemandCurve(cfg.Cameras),
		Xavier: compute.Xavier(),
		Orin:   compute.Orin(),
		Config: cfg,
	}
}

// WriteFigure1 renders the demand curve and SoC capacities.
func WriteFigure1(w io.Writer, d Figure1Data) {
	fmt.Fprintf(w, "# camera perception throughput demand (%s @ %g FPR, +%.0f%% extra models)\n",
		d.Config.Model.Name, d.Config.FPR, d.Config.ExtraModelFrac*100)
	fmt.Fprintf(w, "%8s %12s %24s\n", "cameras", "demand TOPS", "")
	for _, pt := range d.Curve {
		marks := ""
		if pt.TOPS > d.Xavier.TOPS {
			marks += " >xavier"
		}
		if pt.TOPS > d.Orin.TOPS {
			marks += " >orin"
		}
		fmt.Fprintf(w, "%8d %12.1f %24s\n", pt.Cameras, pt.TOPS, marks)
	}
	fmt.Fprintf(w, "# %s offers %.0f TOPS (max %d cameras at %g FPR)\n",
		d.Xavier.Name, d.Xavier.TOPS, d.Config.MaxCameras(d.Xavier), d.Config.FPR)
	fmt.Fprintf(w, "# %s offers %.0f TOPS (max %d cameras at %g FPR)\n",
		d.Orin.Name, d.Orin.TOPS, d.Config.MaxCameras(d.Orin), d.Config.FPR)
}
