package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfirmationDepthAblationMonotone(t *testing.T) {
	rows, err := ConfirmationDepthAblation([]int{1, 3, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Deeper confirmation inflates the reaction time, so the required
	// rate must not decrease with K.
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxFPR < rows[i-1].MaxFPR-1e-9 {
			t.Errorf("MaxFPR decreased from %s (%v) to %s (%v)",
				rows[i-1].Label, rows[i-1].MaxFPR, rows[i].Label, rows[i].MaxFPR)
		}
	}
	if rows[0].MaxFPR >= rows[len(rows)-1].MaxFPR {
		t.Errorf("K had no effect: %v vs %v", rows[0].MaxFPR, rows[len(rows)-1].MaxFPR)
	}
	var sb strings.Builder
	WriteAblation(&sb, "confirmation depth", rows)
	if !strings.Contains(sb.String(), "K=5") {
		t.Error("rendering missing rows")
	}
}

func TestAlphaModelAblation(t *testing.T) {
	rows, err := AlphaModelAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	paper, zero := rows[0], rows[1]
	// The paper's alpha inflates reaction time relative to steady state
	// (for l > l0), so its estimates are at least as demanding.
	if paper.MaxFPR < zero.MaxFPR-1e-9 {
		t.Errorf("paper alpha (%v) less demanding than steady state (%v)", paper.MaxFPR, zero.MaxFPR)
	}
}

func TestSearchModeAblation(t *testing.T) {
	rows, err := SearchModeAblation()
	if err != nil {
		t.Fatal(err)
	}
	accel, naive := rows[0], rows[1]
	// The Eq.-3 stepping must do far less work...
	if accel.Evals >= naive.Evals {
		t.Errorf("accelerated evals %d not below naive %d", accel.Evals, naive.Evals)
	}
	// ...without being more optimistic.
	if accel.MaxFPR < naive.MaxFPR-1e-9 {
		t.Errorf("accelerated estimates (%v) more optimistic than naive (%v)", accel.MaxFPR, naive.MaxFPR)
	}
}

func TestUncertaintyAblationMonotone(t *testing.T) {
	rows, err := UncertaintyAblation([]float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxFPR < rows[i-1].MaxFPR-1e-9 {
			t.Errorf("MaxFPR decreased with sigma: %v after %v", rows[i].MaxFPR, rows[i-1].MaxFPR)
		}
	}
}

func TestAggregationAblationOrdering(t *testing.T) {
	rows, err := AggregationAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Pessimistic <= p99 <= p90 <= mean in minimum latency (pessimistic
	// is the tightest).
	for i := 1; i < len(rows); i++ {
		if rows[i].MinLatency < rows[i-1].MinLatency-1e-9 {
			t.Errorf("mode %s (%v) tighter than %s (%v)",
				rows[i].Label, rows[i].MinLatency, rows[i-1].Label, rows[i-1].MinLatency)
		}
	}
	var sb strings.Builder
	WriteAggregationAblation(&sb, rows)
	if !strings.Contains(sb.String(), "p99") {
		t.Error("rendering missing modes")
	}
}

func TestCSVExports(t *testing.T) {
	// Table 1 CSV (tiny grid).
	rows := []Table1Row{{
		Scenario:    "cut-out",
		EgoSpeedMPH: 20,
		Front:       true,
		Estimates:   map[float64]float64{1: 2.5},
		MaxSumFPR:   5,
		Fraction:    0.06,
	}}
	var buf bytes.Buffer
	if err := Table1CSV(&buf, rows, []float64{1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "scenario,ego_mph") || !strings.Contains(out, "cut-out") {
		t.Errorf("table1 csv:\n%s", out)
	}

	// Series CSV.
	fs := &FigureSeries{
		Times: []float64{0, 0.1},
		Left:  []float64{1, 1}, Front: []float64{0.2, 0.3}, Right: []float64{1, 1},
		Accel: []float64{0, -3},
	}
	buf.Reset()
	if err := SeriesCSV(&buf, fs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("series csv lines = %d", lines)
	}

	// Online CSV.
	os := &OnlineSeries{Times: []float64{0}, Front: []float64{0.5}, Offline: []float64{0.6}}
	buf.Reset()
	if err := OnlineCSV(&buf, os); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "online_ms") {
		t.Error("online csv missing header")
	}

	// Sweep CSV.
	buf.Reset()
	if err := SweepCSV(&buf, Figure8(30)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unavoidable") {
		t.Error("sweep csv missing unavoidable cells")
	}

	// Headline CSV.
	buf.Reset()
	hr := []HeadlineRow{{Scenario: "x", BaselineFrames: 100, ZhuyiFrames: 40, FrameFraction: 0.4, BaselineSafe: true, ZhuyiSafe: true}}
	if err := HeadlineCSV(&buf, hr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.4000") {
		t.Errorf("headline csv:\n%s", buf.String())
	}
}
