package experiments

import (
	"strings"
	"testing"
)

func TestBaselineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison is slow")
	}
	rows, err := BaselineComparison(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Zhuyi's peak per-camera demand should beat the uniform total on
	// asymmetric scenarios (activity concentrated in one camera). The
	// far cut-in is the clearest case: uniform provisioning pays the
	// minimum rate on all three analyzed cameras while Zhuyi leaves the
	// sides at 1 FPR.
	for _, r := range rows {
		if r.Scenario != "cut-in" {
			continue
		}
		if r.UniformFPR <= 0 {
			t.Fatal("cut-in grid search infeasible")
		}
		if r.ZhuyiPeakSum >= r.UniformTotal+5 {
			t.Errorf("Zhuyi demand %v far above the uniform total %v", r.ZhuyiPeakSum, r.UniformTotal)
		}
	}
	// Search cost bookkeeping: the reported Suraksha cost stays the
	// protocol's exhaustive rates x seeds, independent of how few points
	// the adaptive engine-backed search actually scheduled.
	opt := quickOptions()
	wantRuns := len(opt.FPRGrid) * opt.Seeds
	for _, r := range rows {
		if r.SearchRuns != wantRuns {
			t.Errorf("%s: runs = %d, want %d", r.Scenario, r.SearchRuns, wantRuns)
		}
	}
	var sb strings.Builder
	WriteBaselineComparison(&sb, rows, len(opt.FPRGrid), opt.Seeds)
	if !strings.Contains(sb.String(), "per-camera grid search") {
		t.Error("rendering missing cost note")
	}
}

func TestRSSComparisonShape(t *testing.T) {
	rows := RSSComparison()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Both models agree on feasibility direction: a 6x-speed gap is
		// always feasible for both.
		if r.Gap >= r.EgoSpeed*6-1e-9 {
			if r.RSSRho == 0 {
				t.Errorf("RSS infeasible at the loose gap (%+v)", r)
			}
			if r.ZhuyiL == 0 {
				t.Errorf("Zhuyi infeasible at the loose gap (%+v)", r)
			}
		}
	}
	// Both models relax with the gap at fixed speeds.
	byGeometry := map[float64][]RSSComparisonRow{}
	for _, r := range rows {
		byGeometry[r.EgoSpeed] = append(byGeometry[r.EgoSpeed], r)
	}
	for v, rs := range byGeometry {
		for i := 1; i < len(rs); i++ {
			if rs[i].RSSRho < rs[i-1].RSSRho-1e-9 {
				t.Errorf("v=%v: RSS rho decreased with gap", v)
			}
			if rs[i].ZhuyiL < rs[i-1].ZhuyiL-1e-9 {
				t.Errorf("v=%v: Zhuyi latency decreased with gap", v)
			}
		}
	}
	var sb strings.Builder
	WriteRSSComparison(&sb, rows)
	if !strings.Contains(sb.String(), "RSS rho") {
		t.Error("rendering missing header")
	}
}
