package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/safety"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
)

// HeadlineRow compares a closed-loop Zhuyi-controlled run against the
// fixed 30-FPR baseline for one scenario: the abstract's claim that
// "the system can maintain safety by processing only 36% or fewer
// frames compared to a default 30-FPR system".
type HeadlineRow struct {
	Scenario       string
	BaselineFrames int     // frames processed by the fixed 30-FPR system
	ZhuyiFrames    int     // frames processed under the Zhuyi controller
	FrameFraction  float64 // Zhuyi / baseline
	BaselineSafe   bool
	ZhuyiSafe      bool
	Alarms         int
	WorstAction    safety.Action
}

// Headline runs every scenario twice — fixed 30 FPR and Zhuyi-
// controlled — and reports frames processed and safety outcomes.
func Headline(seed int64) ([]HeadlineRow, error) {
	var rows []HeadlineRow
	for _, sc := range scenario.All() {
		row, err := headlineRow(sc, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func headlineRow(sc scenario.Scenario, seed int64) (HeadlineRow, error) {
	row := HeadlineRow{Scenario: sc.Name}

	base, err := sim.Run(sc.Build(30, seed))
	if err != nil {
		return row, err
	}
	row.BaselineSafe = !base.Collided()
	row.BaselineFrames = totalFrames(base)

	cfg := sc.Build(30, seed)
	est := core.NewEstimator()
	est.Cameras = est.Rig.Names() // the controller manages every camera
	ctrl := safety.NewController(
		est,
		predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
		safety.DefaultControllerConfig(),
	)
	cfg.RateController = ctrl
	cfg.FPR = 30 // start at the provisioned rate; the controller lowers it
	res, err := sim.Run(cfg)
	if err != nil {
		return row, err
	}
	row.ZhuyiSafe = !res.Collided()
	row.ZhuyiFrames = totalFrames(res)
	if row.BaselineFrames > 0 {
		row.FrameFraction = float64(row.ZhuyiFrames) / float64(row.BaselineFrames)
	}
	row.Alarms = ctrl.AlarmCount()
	row.WorstAction = ctrl.WorstAction()
	return row, nil
}

func totalFrames(res *sim.Result) int {
	total := 0
	for _, n := range res.FramesProcessed {
		total += n
	}
	return total
}

// WriteHeadline renders the comparison table.
func WriteHeadline(w io.Writer, rows []HeadlineRow) {
	fmt.Fprintf(w, "%-28s %10s %10s %9s %9s %9s %8s %s\n",
		"Scenario", "base-frm", "zhuyi-frm", "fraction", "base-safe", "zhuyi-safe", "alarms", "action")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10d %10d %9.2f %9v %9v %8d %s\n",
			r.Scenario, r.BaselineFrames, r.ZhuyiFrames, r.FrameFraction,
			r.BaselineSafe, r.ZhuyiSafe, r.Alarms, r.WorstAction)
	}
}

// MaxFrameFraction returns the largest Zhuyi/baseline frame ratio
// across rows.
func MaxFrameFraction(rows []HeadlineRow) float64 {
	max := 0.0
	for _, r := range rows {
		if r.FrameFraction > max {
			max = r.FrameFraction
		}
	}
	return max
}

// AllSafe reports whether every Zhuyi-controlled run avoided collision.
func AllSafe(rows []HeadlineRow) bool {
	for _, r := range rows {
		if !r.ZhuyiSafe {
			return false
		}
	}
	return true
}

// PrioritizationRow compares Zhuyi-prioritized allocation against a
// uniform split of the same total frame budget — §3.2's work
// prioritization under constrained resources.
type PrioritizationRow struct {
	Scenario    string
	Budget      float64
	UniformSafe bool
	ZhuyiSafe   bool
}

// Prioritization runs a scenario under a constrained total budget with
// both allocators.
func Prioritization(name string, budget float64, seed int64) (PrioritizationRow, error) {
	row := PrioritizationRow{Scenario: name, Budget: budget}
	sc, ok := scenario.ByName(name)
	if !ok {
		return row, fmt.Errorf("experiments: unknown scenario %q", name)
	}

	uniform := sc.Build(30, seed)
	if uniform.Rig == nil {
		uniform.Rig = sensor.DefaultRig()
	}
	uniform.RateController = safety.UniformRates{Cameras: uniform.Rig.Names(), Budget: budget}
	ures, err := sim.Run(uniform)
	if err != nil {
		return row, err
	}
	row.UniformSafe = !ures.Collided()

	prioritized := sc.Build(30, seed)
	est := core.NewEstimator()
	est.Cameras = est.Rig.Names()
	cfg := safety.DefaultControllerConfig()
	cfg.Budget = budget
	prioritized.RateController = safety.NewController(
		est,
		predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
		cfg,
	)
	pres, err := sim.Run(prioritized)
	if err != nil {
		return row, err
	}
	row.ZhuyiSafe = !pres.Collided()
	return row, nil
}
