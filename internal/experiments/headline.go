package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/predict"
	"repro/internal/safety"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
)

// HeadlineRow compares a closed-loop Zhuyi-controlled run against the
// fixed 30-FPR baseline for one scenario: the abstract's claim that
// "the system can maintain safety by processing only 36% or fewer
// frames compared to a default 30-FPR system".
type HeadlineRow struct {
	Scenario       string
	BaselineFrames int     // frames processed by the fixed 30-FPR system
	ZhuyiFrames    int     // frames processed under the Zhuyi controller
	FrameFraction  float64 // Zhuyi / baseline
	BaselineSafe   bool
	ZhuyiSafe      bool
	Alarms         int
	WorstAction    safety.Action
}

// Headline runs every scenario twice — fixed 30 FPR and Zhuyi-
// controlled — on the shared default engine. See HeadlineContext.
func Headline(seed int64) ([]HeadlineRow, error) {
	return HeadlineContext(context.Background(), engine.Default(), seed)
}

// HeadlineContext computes every scenario row concurrently; the
// baseline runs are plain cacheable points, while the controller runs
// are NoCache variants (the controller accumulates alarm state the row
// reads back, so serving them from cache would be wrong).
func HeadlineContext(ctx context.Context, eng *engine.Engine, seed int64) ([]HeadlineRow, error) {
	scenarios := scenario.All()
	rows := make([]HeadlineRow, len(scenarios))
	err := forEachIndex(len(scenarios), func(i int) error {
		row, err := headlineRow(ctx, eng, scenarios[i], seed)
		rows[i] = row
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func headlineRow(ctx context.Context, eng *engine.Engine, sc scenario.Scenario, seed int64) (HeadlineRow, error) {
	row := HeadlineRow{Scenario: sc.Name}

	est := core.NewEstimator()
	est.Cameras = est.Rig.Names() // the controller manages every camera
	ctrl := safety.NewController(
		est,
		predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
		safety.DefaultControllerConfig(),
	)
	batch, err := eng.RunBatch(ctx, []engine.Job{
		{Scenario: sc, FPR: 30, Seed: seed},
		{
			Scenario: sc, FPR: 30, Seed: seed,
			Variant: "zhuyi-controller", NoCache: true,
			// Start at the provisioned rate; the controller lowers it.
			Configure: func(cfg *sim.Config) { cfg.RateController = ctrl },
		},
	})
	if err != nil {
		return row, err
	}
	base, res := batch.Outcomes[0].Result, batch.Outcomes[1].Result
	row.BaselineSafe = !base.Collided()
	row.BaselineFrames = totalFrames(base)
	row.ZhuyiSafe = !res.Collided()
	row.ZhuyiFrames = totalFrames(res)
	if row.BaselineFrames > 0 {
		row.FrameFraction = float64(row.ZhuyiFrames) / float64(row.BaselineFrames)
	}
	row.Alarms = ctrl.AlarmCount()
	row.WorstAction = ctrl.WorstAction()
	return row, nil
}

func totalFrames(res *sim.Result) int {
	total := 0
	for _, n := range res.FramesProcessed {
		total += n
	}
	return total
}

// WriteHeadline renders the comparison table.
func WriteHeadline(w io.Writer, rows []HeadlineRow) {
	fmt.Fprintf(w, "%-28s %10s %10s %9s %9s %9s %8s %s\n",
		"Scenario", "base-frm", "zhuyi-frm", "fraction", "base-safe", "zhuyi-safe", "alarms", "action")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10d %10d %9.2f %9v %9v %8d %s\n",
			r.Scenario, r.BaselineFrames, r.ZhuyiFrames, r.FrameFraction,
			r.BaselineSafe, r.ZhuyiSafe, r.Alarms, r.WorstAction)
	}
}

// MaxFrameFraction returns the largest Zhuyi/baseline frame ratio
// across rows.
func MaxFrameFraction(rows []HeadlineRow) float64 {
	maxFrac := 0.0
	for _, r := range rows {
		if r.FrameFraction > maxFrac {
			maxFrac = r.FrameFraction
		}
	}
	return maxFrac
}

// AllSafe reports whether every Zhuyi-controlled run avoided collision.
func AllSafe(rows []HeadlineRow) bool {
	for _, r := range rows {
		if !r.ZhuyiSafe {
			return false
		}
	}
	return true
}

// PrioritizationRow compares Zhuyi-prioritized allocation against a
// uniform split of the same total frame budget — §3.2's work
// prioritization under constrained resources.
type PrioritizationRow struct {
	Scenario    string
	Budget      float64
	UniformSafe bool
	ZhuyiSafe   bool
}

// Prioritization runs a scenario under a constrained total budget with
// both allocators, concurrently on the shared default engine.
func Prioritization(name string, budget float64, seed int64) (PrioritizationRow, error) {
	row := PrioritizationRow{Scenario: name, Budget: budget}
	sc, ok := scenario.ByName(name)
	if !ok {
		return row, fmt.Errorf("experiments: unknown scenario %q", name)
	}

	est := core.NewEstimator()
	est.Cameras = est.Rig.Names()
	ccfg := safety.DefaultControllerConfig()
	ccfg.Budget = budget
	batch, err := engine.Default().RunBatch(context.Background(), []engine.Job{
		{
			Scenario: sc, FPR: 30, Seed: seed,
			Variant: fmt.Sprintf("uniform-budget-%g", budget), NoCache: true,
			Configure: func(cfg *sim.Config) {
				if cfg.Rig == nil {
					cfg.Rig = sensor.DefaultRig()
				}
				cfg.RateController = safety.UniformRates{Cameras: cfg.Rig.Names(), Budget: budget}
			},
		},
		{
			Scenario: sc, FPR: 30, Seed: seed,
			Variant: fmt.Sprintf("zhuyi-budget-%g", budget), NoCache: true,
			Configure: func(cfg *sim.Config) {
				cfg.RateController = safety.NewController(
					est,
					predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
					ccfg,
				)
			},
		},
	})
	if err != nil {
		return row, err
	}
	row.UniformSafe = !batch.Outcomes[0].Result.Collided()
	row.ZhuyiSafe = !batch.Outcomes[1].Result.Collided()
	return row, nil
}
