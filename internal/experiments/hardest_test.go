package experiments

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"math"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// hardestFakeRunner scores scenarios without simulating: the name hash
// picks a collision threshold (or one of the off-grid ends), exactly
// like the search package's deterministic fake.
func hardestFakeRunner(grid []float64) engine.Runner {
	return func(j engine.Job) (*sim.Result, error) {
		h := fnv.New64a()
		h.Write([]byte(j.Scenario.Name))
		idx := int(h.Sum64() % uint64(len(grid)+2))
		res := &sim.Result{Level: trace.LevelSummary, MinBumperGap: 3}
		if idx == len(grid)+1 || (idx < len(grid) && j.FPR < grid[idx]) {
			res.Collision = &trace.Collision{Time: 1, ActorID: "fake"}
		}
		return res, nil
	}
}

func hardestTestOptions(eng *engine.Engine) HardestOptions {
	return HardestOptions{
		TopN:        8,
		Seed:        3,
		Families:    []scenario.Family{scenario.FamilyCutIn, scenario.FamilyCrossing},
		Generations: 2,
		Population:  4,
		Seeds:       2,
		FPRGrid:     []float64{5, 10, 30},
		Engine:      eng,
	}
}

// TestHardestCorpusDeterministicAndConsistent checks the experiment's
// internal accounting — rows sorted hardest first, distributions that
// cover their corpora, medians that are corpus members, a verdict that
// matches the medians — and that two runs on fresh engines agree
// exactly.
func TestHardestCorpusDeterministicAndConsistent(t *testing.T) {
	grid := []float64{5, 10, 30}
	run := func() *HardestResult {
		eng := engine.New(engine.Options{Workers: 4, Runner: hardestFakeRunner(grid)})
		defer eng.Close()
		res, err := HardestCorpus(context.Background(), hardestTestOptions(eng))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()

	if len(res.SearchRows) == 0 || len(res.SearchRows) > res.TopN {
		t.Fatalf("search rows %d, want 1..%d", len(res.SearchRows), res.TopN)
	}
	for i := 1; i < len(res.SearchRows); i++ {
		if res.SearchRows[i].MRF.Harder(res.SearchRows[i-1].MRF) {
			t.Errorf("row %d (%s) harder than row %d — corpus not sorted hardest first",
				i, res.SearchRows[i].MRF.Label, i-1)
		}
	}
	sum := 0
	for _, n := range res.SearchDist {
		sum += n
	}
	if sum != len(res.SearchRows) {
		t.Errorf("search dist covers %d, want %d", sum, len(res.SearchRows))
	}
	sum = 0
	for _, n := range res.BlindDist {
		sum += n
	}
	if sum != res.TopN {
		t.Errorf("blind dist covers %d, want %d", sum, res.TopN)
	}
	if res.SearchDist[res.SearchMedian.Label] == 0 {
		t.Errorf("search median %q is not a corpus member", res.SearchMedian.Label)
	}
	if res.BlindDist[res.BlindMedian.Label] == 0 {
		t.Errorf("blind median %q is not a baseline member", res.BlindMedian.Label)
	}
	if res.SearchHarder != res.SearchMedian.Harder(res.BlindMedian) {
		t.Errorf("verdict %v contradicts medians %s vs %s",
			res.SearchHarder, res.SearchMedian.Label, res.BlindMedian.Label)
	}
	if res.Evaluated <= 0 || res.Runs <= 0 {
		t.Errorf("accounting: evaluated %d, runs %d", res.Evaluated, res.Runs)
	}

	if again := run(); !reflect.DeepEqual(res, again) {
		t.Error("two runs on fresh engines disagree — experiment is not deterministic")
	}

	// The artifact must survive JSON (no infinities on the wire).
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("artifact not JSON-encodable: %v", err)
	}
	var back HardestResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, res) {
		t.Error("artifact does not round-trip through JSON")
	}
}

// TestMRFPointOrdering pins the hardness order: "<1" < finite < "+Inf".
func TestMRFPointOrdering(t *testing.T) {
	below := MRFPoint{BelowGrid: true, Label: "<1"}
	low := MRFPoint{Value: 2, Label: "2"}
	high := MRFPoint{Value: 30, Label: "30"}
	above := MRFPoint{AboveGrid: true, Label: "+Inf"}
	order := []MRFPoint{below, low, high, above}
	for i, p := range order {
		for k, q := range order {
			if got, want := p.Harder(q), i > k; got != want {
				t.Errorf("Harder(%s, %s) = %v, want %v", p.Label, q.Label, got, want)
			}
		}
	}
	if medianPoint(nil) != (MRFPoint{}) {
		t.Error("empty median not zero")
	}
	if m := medianPoint([]MRFPoint{above, below, low, high}); m != low {
		t.Errorf("lower median = %s, want 2", m.Label)
	}
	inf := mrfPointFromMetrics(metrics.MRF{Value: math.Inf(1)})
	if math.IsInf(inf.Value, 1) {
		t.Error("above-grid metrics value leaked +Inf into the JSON-bound field")
	}
	if !inf.AboveGrid || inf.Label != "+Inf" {
		t.Errorf("above-grid conversion: %+v", inf)
	}
}
