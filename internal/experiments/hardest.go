package experiments

// The hardest-corpus experiment: does the adversarial search
// (internal/search) actually find harder scenarios than blind
// generation? It runs both on one engine and compares the MRF
// distributions of the search's hardest-N corpus against N
// blind-generated scenarios from the same families — the committed
// BENCH_hardest.json artifact pins the answer.

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/store"
	"repro/internal/trace"
)

// HardestOptions budgets the hardest-corpus experiment: an adversarial
// search over the spec families plus a blind generator baseline of the
// same size, scored on the same engine with the same MRF protocol.
type HardestOptions struct {
	// TopN sizes both corpora: the search's hardest-N and the blind
	// baseline's N generated scenarios (default 100).
	TopN int
	// Seed drives the search and the blind generator; the experiment
	// is deterministic per (seed, budget).
	Seed int64
	// Families restricts both sides; empty means every family.
	Families []scenario.Family
	// Generations and Population budget the evolutionary search
	// (defaults: 4 generations of 16 per family — wide enough that
	// the default family set over-fills a hardest-100 corpus).
	Generations int
	Population  int
	// Seeds is the number of runs per (scenario, rate) MRF point
	// (default: the search default, 3).
	Seeds int
	// FPRGrid is the tested rate grid (default: the Table-1 grid).
	FPRGrid []float64
	// Engine schedules and caches every run; nil builds a private
	// summary-level pool (attaching Store when set).
	Engine *engine.Engine
	// Store attaches a persistent cache tier when Engine is nil: a
	// repeated identically-budgeted experiment rescores from disk
	// without simulating.
	Store *store.Store
	// Progress, when non-nil, receives the search's per-generation
	// summaries as they happen.
	Progress func(search.GenerationSummary)

	// ownEngine marks a private pool built by withDefaults;
	// HardestCorpus closes it.
	ownEngine bool
}

func (o HardestOptions) withDefaults() HardestOptions {
	if o.TopN <= 0 {
		o.TopN = 100
	}
	if o.Generations <= 0 {
		o.Generations = 4
	}
	if o.Population <= 0 {
		o.Population = 16
	}
	if o.Seeds <= 0 {
		o.Seeds = search.DefaultSeeds
	}
	if len(o.FPRGrid) == 0 {
		o.FPRGrid = metrics.DefaultFPRGrid()
	}
	if o.Engine == nil {
		o.Engine = engine.New(engine.Options{Store: o.Store, Record: trace.LevelSummary})
		o.ownEngine = true
	}
	return o
}

// MRFPoint is a JSON-safe MRF measurement: Value carries the finite
// rate, the flags encode the off-grid ends ("<1" and "+Inf" — JSON has
// no infinities), and Label is the human rendering of all three.
type MRFPoint struct {
	Value     float64 `json:"value"`
	BelowGrid bool    `json:"below_grid,omitempty"`
	AboveGrid bool    `json:"above_grid,omitempty"`
	Label     string  `json:"label"`
}

// rank orders MRFPoints by hardness: below-grid before every finite
// rate, above-grid after.
func (p MRFPoint) rank() float64 {
	switch {
	case p.BelowGrid:
		return -1
	case p.AboveGrid:
		return math.Inf(1)
	default:
		return p.Value
	}
}

// Harder reports whether p demands strictly more perception rate than q.
func (p MRFPoint) Harder(q MRFPoint) bool { return p.rank() > q.rank() }

func mrfPointFromMetrics(m metrics.MRF) MRFPoint {
	return MRFPoint{
		Value:     boundedValue(m.Value),
		BelowGrid: m.BelowGrid(),
		AboveGrid: math.IsInf(m.Value, 1),
		Label:     m.String(),
	}
}

func mrfPointFromCandidate(c search.Candidate) MRFPoint {
	return MRFPoint{Value: c.MRF, BelowGrid: c.BelowGrid, AboveGrid: c.AboveGrid, Label: c.MRFString()}
}

// boundedValue keeps +Inf (the above-grid encoding of metrics.MRF) out
// of JSON-bound values; the AboveGrid flag carries it instead.
func boundedValue(v float64) float64 {
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// HardestRow is one corpus member of the committed artifact.
type HardestRow struct {
	Name       string   `json:"name"`
	Family     string   `json:"family"`
	Generation int      `json:"generation,omitempty"`
	MRF        MRFPoint `json:"mrf"`
}

// HardestResult compares the search's hardest-N corpus against the
// blind generator baseline. Medians use the lower-median convention
// (element (n-1)/2 of the hardness-sorted list), so they are exact
// corpus members, not interpolations.
type HardestResult struct {
	TopN int `json:"top_n"`
	// Evaluated counts distinct genomes the search scored; Runs the
	// engine points both sides scheduled (cache hits included).
	Evaluated int `json:"evaluated"`
	Runs      int `json:"runs"`
	// SearchMedian and BlindMedian are the corpora's median MRFs;
	// SearchHarder is the experiment's verdict: the search median
	// demands strictly more perception rate than blind generation's.
	SearchMedian MRFPoint `json:"search_median"`
	BlindMedian  MRFPoint `json:"blind_median"`
	SearchHarder bool     `json:"search_median_strictly_harder"`
	// SearchDist and BlindDist are the MRF distributions (label →
	// scenario count) of the two corpora.
	SearchDist map[string]int `json:"search_dist"`
	BlindDist  map[string]int `json:"blind_dist"`
	// SearchRows lists the hardest-N corpus, hardest first. The full
	// registrable specs live in the search corpus format
	// (`zhuyi scenarios search -out`), not here.
	SearchRows []HardestRow `json:"search_rows"`
}

// HardestCorpus runs the adversarial search and the blind generator
// baseline on one engine and compares their MRF distributions. Both
// sides are deterministic per options; on an engine with a warm
// persistent store the whole experiment rescores without a fresh
// simulation.
func HardestCorpus(ctx context.Context, opt HardestOptions) (*HardestResult, error) {
	opt = opt.withDefaults()
	if opt.ownEngine {
		defer opt.Engine.Close()
	}

	sres, err := search.Search(ctx, search.Options{
		Families:    opt.Families,
		Seed:        opt.Seed,
		Generations: opt.Generations,
		Population:  opt.Population,
		Seeds:       opt.Seeds,
		TopN:        opt.TopN,
		FPRGrid:     opt.FPRGrid,
		Engine:      opt.Engine,
		Progress:    opt.Progress,
	})
	if err != nil {
		return nil, err
	}

	blind, err := CorpusSweep(ctx, CorpusOptions{
		N:        opt.TopN,
		GenSeed:  opt.Seed,
		Families: opt.Families,
		Seeds:    opt.Seeds,
		FPRGrid:  opt.FPRGrid,
		Record:   trace.LevelSummary,
		Engine:   opt.Engine,
	})
	if err != nil {
		return nil, err
	}

	res := &HardestResult{
		TopN:       opt.TopN,
		Evaluated:  sres.Evaluated,
		Runs:       sres.Runs + blind.Runs,
		SearchDist: make(map[string]int),
		BlindDist:  make(map[string]int),
	}
	var searched, blinds []MRFPoint
	for _, c := range sres.Corpus {
		p := mrfPointFromCandidate(c)
		searched = append(searched, p)
		res.SearchDist[p.Label]++
		res.SearchRows = append(res.SearchRows, HardestRow{
			Name: c.Name, Family: c.Family, Generation: c.Generation, MRF: p,
		})
	}
	for _, row := range blind.Rows {
		p := mrfPointFromMetrics(row.MRF)
		blinds = append(blinds, p)
		res.BlindDist[p.Label]++
	}
	res.SearchMedian = medianPoint(searched)
	res.BlindMedian = medianPoint(blinds)
	res.SearchHarder = res.SearchMedian.Harder(res.BlindMedian)
	return res, nil
}

// medianPoint returns the lower median by hardness (zero value for an
// empty corpus).
func medianPoint(pts []MRFPoint) MRFPoint {
	if len(pts) == 0 {
		return MRFPoint{}
	}
	sorted := append([]MRFPoint(nil), pts...)
	sort.SliceStable(sorted, func(i, k int) bool { return sorted[i].rank() < sorted[k].rank() })
	return sorted[(len(sorted)-1)/2]
}

// WriteHardest renders the comparison: the two distributions side by
// side, then the median verdict.
func WriteHardest(w io.Writer, res *HardestResult) {
	union := make(map[string]int)
	for l := range res.SearchDist {
		union[l]++
	}
	for l := range res.BlindDist {
		union[l]++
	}
	fmt.Fprintf(w, "%-8s %8s %8s\n", "MRF", "search", "blind")
	for _, l := range distLabels(union) {
		fmt.Fprintf(w, "%-8s %8d %8d\n", l, res.SearchDist[l], res.BlindDist[l])
	}
	verdict := "NOT harder — search failed to beat blind generation"
	if res.SearchHarder {
		verdict = "strictly harder than blind generation"
	}
	fmt.Fprintf(w, "# hardest-%d median MRF %s vs blind median %s: %s\n",
		res.TopN, res.SearchMedian.Label, res.BlindMedian.Label, verdict)
	fmt.Fprintf(w, "# search evaluated %d genomes; %d engine points total (both sides, cache hits included)\n",
		res.Evaluated, res.Runs)
}
