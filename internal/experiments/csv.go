package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/units"
)

// CSV export for every experiment artifact, so results can be plotted
// with external tools (the paper's figures are line charts and
// heatmaps; the text renderers in this package are terminal-friendly
// approximations).

// Table1CSV writes Table-1 rows as CSV.
func Table1CSV(w io.Writer, rows []Table1Row, grid []float64) error {
	cw := csv.NewWriter(w)
	header := []string{"scenario", "ego_mph", "front", "right", "left", "mrf"}
	for _, f := range grid {
		header = append(header, "est_at_"+strconv.FormatFloat(f, 'g', -1, 64))
	}
	header = append(header, "max_sum_fpr", "fraction")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		rec := []string{
			row.Scenario,
			fmtF(row.EgoSpeedMPH),
			fmt.Sprintf("%v", row.Front),
			fmt.Sprintf("%v", row.Right),
			fmt.Sprintf("%v", row.Left),
			row.MRF.String(),
		}
		for _, f := range grid {
			v := row.Estimates[f]
			if math.IsNaN(v) {
				rec = append(rec, "NA")
			} else {
				rec = append(rec, fmtF(v))
			}
		}
		rec = append(rec, fmtF(row.MaxSumFPR), fmtF(row.Fraction))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesCSV writes a Figure-4/5/6 per-camera latency series as CSV.
func SeriesCSV(w io.Writer, fs *FigureSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "left_ms", "front_ms", "right_ms", "ego_accel"}); err != nil {
		return err
	}
	for i := range fs.Times {
		rec := []string{
			fmtF(fs.Times[i]),
			fmtF(fs.Left[i] * 1000),
			fmtF(fs.Front[i] * 1000),
			fmtF(fs.Right[i] * 1000),
			fmtF(fs.Accel[i]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// OnlineCSV writes the Figure-7 online-vs-offline series as CSV.
func OnlineCSV(w io.Writer, s *OnlineSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_s", "online_ms", "offline_ms"}); err != nil {
		return err
	}
	for i := range s.Times {
		rec := []string{
			fmtF(s.Times[i]),
			fmtF(s.Front[i] * 1000),
			fmtF(s.Offline[i] * 1000),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SweepCSV writes the Figure-8 grid as CSV: one row per (ve0, van) cell
// with the FPR or a sentinel status.
func SweepCSV(w io.Writer, res *core.SweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sn_m", "ve0_mph", "van_mph", "status", "min_fpr"}); err != nil {
		return err
	}
	for i, rowCells := range res.Cells {
		for j, cell := range rowCells {
			status := "ok"
			fpr := fmtF(cell.FPR)
			switch {
			case cell.Unavoidable:
				status, fpr = "unavoidable", ""
			case cell.ThirtyPlus:
				status = "thirty_plus"
			}
			rec := []string{
				fmtF(res.SN),
				fmtF(units.MPSToMPH(res.VE0s[i])),
				fmtF(units.MPSToMPH(res.VANs[j])),
				status,
				fpr,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// HeadlineCSV writes the closed-loop comparison as CSV.
func HeadlineCSV(w io.Writer, rows []HeadlineRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "baseline_frames", "zhuyi_frames", "fraction", "baseline_safe", "zhuyi_safe", "alarms", "worst_action"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Scenario,
			strconv.Itoa(r.BaselineFrames),
			strconv.Itoa(r.ZhuyiFrames),
			fmtF(r.FrameFraction),
			fmt.Sprintf("%v", r.BaselineSafe),
			fmt.Sprintf("%v", r.ZhuyiSafe),
			strconv.Itoa(r.Alarms),
			r.WorstAction.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
