package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/trace"
)

// CorpusOptions scales a corpus sweep: the MRF distribution over N
// procedurally generated scenarios (plus, optionally, registered
// scenarios selected by tags), the scenario-diversity axis the paper's
// nine hand-built scenarios cannot cover.
type CorpusOptions struct {
	// N is the number of scenarios to generate (default 20).
	N int
	// GenSeed drives the generator; the same seed reproduces the corpus.
	GenSeed int64
	// Families restricts generation; empty means every family.
	Families []scenario.Family
	// Tags additionally sweeps the default-registry scenarios carrying
	// all of these tags (e.g. "table1", "variant"). Empty adds none.
	Tags []string
	// Seeds is the number of runs per (scenario, rate) point (default 3;
	// paper protocol: 10).
	Seeds int
	// FPRGrid is the tested rate grid (default: the Table-1 grid).
	FPRGrid []float64
	// Engine schedules and caches every run; nil uses the shared
	// default engine.
	Engine *engine.Engine
	// Store attaches a persistent cache tier when Engine is nil: an
	// identically parameterized sweep recorded by an earlier process
	// replays from disk instead of re-simulating. All sweep members —
	// generated (unregistered) and registered alike — are spec-backed,
	// so their store keys carry the spec content fingerprint
	// (Scenario.Fingerprint): a generator change that alters a
	// member's parameters misses cleanly instead of serving a stale
	// trace recorded under the same name.
	Store *store.Store
	// Record is the trace recording level of the sweep's generated
	// members. An MRF sweep reads nothing but collision outcomes, so
	// trace.LevelSummary (the `-exp corpus` CLI default) skips every
	// generated run's row materialization. The level is stamped onto
	// the generated specs themselves (and folded into the corpus name
	// prefix, so differently-leveled sweeps never alias each other's
	// cached runs), which means it survives any engine — including the
	// shared default one; a store-attached engine still upgrades
	// archivable points to full. Tag-selected registered members keep
	// their own declared level. When the sweep builds its own engine
	// (Engine nil), the engine also adopts this level as its policy.
	Record trace.Level

	// ownEngine marks a private pool built by withDefaults; CorpusSweep
	// closes it so repeated sweeps don't leak worker goroutines.
	ownEngine bool
}

func (o CorpusOptions) withDefaults() CorpusOptions {
	if o.N <= 0 {
		o.N = 20
	}
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if len(o.FPRGrid) == 0 {
		o.FPRGrid = metrics.DefaultFPRGrid()
	}
	if o.Engine == nil {
		if o.Store != nil || o.Record != trace.LevelFull {
			o.Engine = engine.New(engine.Options{Store: o.Store, Record: o.Record})
			o.ownEngine = true
		} else {
			o.Engine = engine.Default()
		}
	}
	return o
}

// CorpusRow is one scenario's minimum-required-FPR measurement.
type CorpusRow struct {
	Name        string
	Family      string // generator family, or "registered"
	EgoSpeedMPH float64
	MRF         metrics.MRF
}

// CorpusResult is a completed corpus sweep: per-scenario rows plus the
// MRF distribution (Table-1 label → scenario count).
type CorpusResult struct {
	Rows []CorpusRow
	Dist map[string]int
	// Runs counts the engine points the sweep scheduled, cache hits
	// included.
	Runs int
}

// CorpusSweep generates a scenario corpus and measures every member's
// minimum required FPR concurrently on the engine. Generated specs are
// compiled on the fly (they do not touch the default registry), so
// sweeps of arbitrary size stay side-effect free; register specs
// explicitly to make a corpus addressable by name afterwards.
func CorpusSweep(ctx context.Context, opt CorpusOptions) (*CorpusResult, error) {
	opt = opt.withDefaults()
	if opt.ownEngine {
		defer opt.Engine.Close()
	}

	type member struct {
		sc     scenario.Scenario
		family string
	}
	var members []member
	if len(opt.Tags) > 0 {
		for _, sc := range scenario.Default().List(opt.Tags...) {
			members = append(members, member{sc: sc, family: "registered"})
		}
	}
	// The engine cache keys on scenario names alone, and sweep members
	// are deliberately not registered (sweeps stay side-effect free), so
	// nothing else guards against two sweeps reusing a name. Fold the
	// generator identity into the name prefix: corpora from different
	// seeds or family sets can never alias each other's cached runs on a
	// shared engine.
	genOpt := scenario.GenOptions{
		Seed:     opt.GenSeed,
		Families: opt.Families,
		Prefix:   corpusPrefix(opt.GenSeed, opt.Families, opt.Record),
	}
	if err := genOpt.Validate(); err != nil {
		return nil, err
	}
	gen := scenario.NewGenerator(genOpt)
	for _, sp := range gen.Generate(opt.N) {
		fam := string(scenario.FamilyCutIn)
		for _, f := range scenario.Families() {
			if sp.HasTag(string(f)) {
				fam = string(f)
				break
			}
		}
		// The sweep only reads collision outcomes, so generated members
		// carry the sweep's recording level in their spec — it survives
		// whatever engine runs them.
		sp.Record = opt.Record
		members = append(members, member{sc: sp.Scenario(), family: fam})
	}

	res := &CorpusResult{Rows: make([]CorpusRow, len(members)), Dist: make(map[string]int)}
	err := forEachIndex(len(members), func(i int) error {
		m := members[i]
		mrf, err := metrics.FindMRFContext(ctx, opt.Engine, m.sc, opt.FPRGrid, opt.Seeds)
		res.Rows[i] = CorpusRow{
			Name:        m.sc.Name,
			Family:      m.family,
			EgoSpeedMPH: m.sc.EgoSpeedMPH,
			MRF:         mrf,
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		res.Dist[row.MRF.String()]++
		res.Runs += row.MRF.Runs
	}
	return res, nil
}

// corpusPrefix names a sweep's corpus by its literal generator
// identity, so distinct (seed, family-set) pairs can never collide.
// The recording level is part of the identity: sweeps at different
// levels produce differently-leveled results and must not share cache
// slots on one engine.
func corpusPrefix(seed int64, families []scenario.Family, record trace.Level) string {
	prefix := fmt.Sprintf("gen-s%d", seed)
	if record != trace.LevelFull {
		prefix += "-" + record.String()
	}
	for _, f := range families {
		prefix += "-" + string(f)
	}
	return prefix
}

// distLabels orders distribution labels by the rate they encode ("<1"
// first, "+Inf" last).
func distLabels(dist map[string]int) []string {
	labels := make([]string, 0, len(dist))
	for l := range dist {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, k int) bool {
		rank := func(l string) float64 {
			switch l {
			case "<1":
				return -1
			case "+Inf":
				return 1e18
			default:
				var v float64
				fmt.Sscanf(l, "%g", &v)
				return v
			}
		}
		return rank(labels[i]) < rank(labels[k])
	})
	return labels
}

// WriteCorpus renders the sweep: per-scenario rows then the MRF
// distribution.
func WriteCorpus(w io.Writer, res *CorpusResult) {
	fmt.Fprintf(w, "%-28s %-12s %6s %6s\n", "Scenario", "Family", "mph", "MRF")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-28s %-12s %6.0f %6s\n", row.Name, row.Family, row.EgoSpeedMPH, row.MRF.String())
	}
	fmt.Fprintf(w, "# MRF distribution over %d scenarios (%d engine points):", len(res.Rows), res.Runs)
	for _, l := range distLabels(res.Dist) {
		fmt.Fprintf(w, " %s×%d", l, res.Dist[l])
	}
	fmt.Fprintln(w)
}

// CorpusCSV writes the rows as CSV.
func CorpusCSV(w io.Writer, res *CorpusResult) error {
	if _, err := fmt.Fprintln(w, "scenario,family,ego_mph,mrf"); err != nil {
		return err
	}
	for _, row := range res.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%s\n", row.Name, row.Family, row.EgoSpeedMPH, row.MRF.String()); err != nil {
			return err
		}
	}
	return nil
}
