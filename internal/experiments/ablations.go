package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenario"
)

// AblationRow is one parameter setting's effect on the offline
// estimates of a reference scenario trace.
type AblationRow struct {
	Label     string
	MaxFPR    float64 // max estimated FPR over the trace
	MaxSumFPR float64
	Evals     int // total constraint evaluations over the trace
}

// ablationTrace fetches the reference trace all ablations evaluate (the
// cut-out-fast scenario at 30 FPR, seed 1) through the shared engine —
// a cache hit whenever Table 1 or the figures already ran that point —
// and returns an evaluator that re-runs the offline Zhuyi model over it
// with custom parameters. The evaluator is safe for concurrent use: it
// builds a fresh estimator per call and only reads the shared trace.
func ablationTrace() func(core.Params, core.AggregateOptions) (AblationRow, error) {
	sc, _ := scenario.ByName(scenario.CutOutFast)
	res, err := engine.Default().Run(context.Background(), engine.Job{Scenario: sc, FPR: 30, Seed: 1})
	eval := func(p core.Params, agg core.AggregateOptions) (AblationRow, error) {
		if err != nil {
			return AblationRow{}, err
		}
		e := core.NewEstimator()
		e.Params = p
		e.Agg = agg
		off, err2 := e.EvaluateTrace(res.Trace, core.OfflineOptions{})
		if err2 != nil {
			return AblationRow{}, err2
		}
		evals := 0
		for _, pt := range off.Points {
			evals += pt.Evals
		}
		return AblationRow{MaxFPR: off.MaxFPR(), MaxSumFPR: off.MaxSumFPR(), Evals: evals}, nil
	}
	return eval
}

// ConfirmationDepthAblation sweeps the confirmation depth K
// (DESIGN.md §5): deeper confirmation inflates the reaction time and
// the estimated rates.
func ConfirmationDepthAblation(ks []int) ([]AblationRow, error) {
	if len(ks) == 0 {
		ks = []int{1, 3, 5, 8}
	}
	eval := ablationTrace()
	rows := make([]AblationRow, len(ks))
	err := forEachIndex(len(ks), func(i int) error {
		p := core.DefaultParams()
		p.K = ks[i]
		row, err := eval(p, core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99})
		if err != nil {
			return err
		}
		row.Label = fmt.Sprintf("K=%d", ks[i])
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AlphaModelAblation compares the paper's confirmation-delay model with
// the steady-state assumption on the same trace.
func AlphaModelAblation() ([]AblationRow, error) {
	eval := ablationTrace()
	modes := []struct {
		label string
		alpha core.AlphaModel
	}{
		{"alpha=K(l-l0) (paper)", core.AlphaPaper},
		{"alpha=0 (steady state)", core.AlphaZero},
	}
	rows := make([]AblationRow, len(modes))
	err := forEachIndex(len(modes), func(i int) error {
		p := core.DefaultParams()
		p.Alpha = modes[i].alpha
		row, err := eval(p, core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99})
		if err != nil {
			return err
		}
		row.Label = modes[i].label
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SearchModeAblation compares the Eq.-3 accelerated stepping against
// naive fixed stepping — the paper's performance optimization.
func SearchModeAblation() ([]AblationRow, error) {
	eval := ablationTrace()
	modes := []struct {
		label string
		naive bool
	}{
		{"eq3 accelerated", false},
		{"naive 10ms steps", true},
	}
	rows := make([]AblationRow, len(modes))
	err := forEachIndex(len(modes), func(i int) error {
		p := core.DefaultParams()
		p.NaiveSearch = modes[i].naive
		row, err := eval(p, core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99})
		if err != nil {
			return err
		}
		row.Label = modes[i].label
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// UncertaintyAblation sweeps the perception-uncertainty extension's
// position sigma (§5 future work implemented in core.Uncertainty).
func UncertaintyAblation(sigmas []float64) ([]AblationRow, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0, 0.5, 1, 2}
	}
	eval := ablationTrace()
	rows := make([]AblationRow, len(sigmas))
	err := forEachIndex(len(sigmas), func(i int) error {
		sigma := sigmas[i]
		p := core.Uncertainty{PosSigma: sigma, SpeedSigma: sigma / 2}.Apply(core.DefaultParams())
		row, err := eval(p, core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99})
		if err != nil {
			return err
		}
		row.Label = fmt.Sprintf("sigma=%.1fm", sigma)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteAblation renders ablation rows.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-26s %10s %10s %12s\n", "setting", "maxFPR", "maxSum", "evals")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %10.1f %10.1f %12d\n", r.Label, r.MaxFPR, r.MaxSumFPR, r.Evals)
	}
}

// AggregationAblation compares Eq. 4 modes on the online estimator
// (multi-hypothesis predictions make the modes diverge): the Figure-7
// flow with each aggregation.
type AggregationRow struct {
	Label      string
	MinLatency float64 // tightest online front-camera latency, s
	Variance   float64 // vs the offline ground truth
}

// AggregationAblation runs the cut-in online estimation under each
// aggregation mode.
func AggregationAblation() ([]AggregationRow, error) {
	modes := []struct {
		label string
		agg   core.AggregateOptions
	}{
		{"pessimistic (max FPR)", core.AggregateOptions{Mode: core.AggPessimistic}},
		{"p99", core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99}},
		{"p90", core.AggregateOptions{Mode: core.AggPercentile, Percentile: 90}},
		{"weighted mean", core.AggregateOptions{Mode: core.AggMean}},
	}
	rows := make([]AggregationRow, len(modes))
	err := forEachIndex(len(modes), func(i int) error {
		s, err := figure7WithAgg(30, 1, modes[i].agg)
		if err != nil {
			return err
		}
		rows[i] = AggregationRow{
			Label:      modes[i].label,
			MinLatency: s.MinOnline(),
			Variance:   s.Variance(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteAggregationAblation renders the comparison.
func WriteAggregationAblation(w io.Writer, rows []AggregationRow) {
	fmt.Fprintf(w, "# Eq.-4 aggregation modes on the online Cut-in estimates\n")
	fmt.Fprintf(w, "%-24s %16s %14s\n", "mode", "min latency(ms)", "variance(s²)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %16.0f %14.4f\n", r.Label, r.MinLatency*1000, r.Variance)
	}
}
