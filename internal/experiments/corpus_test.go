package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestPropertyCorpusSweepSmall runs a small generated corpus end to end
// on a private engine: every scenario gets an MRF, the distribution
// accounts for every row, and a repeated sweep is served from cache.
func TestPropertyCorpusSweepSmall(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	opt := CorpusOptions{
		N:       4,
		GenSeed: 9,
		Seeds:   2,
		FPRGrid: []float64{1, 4, 30},
		Engine:  eng,
	}
	res, err := CorpusSweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != opt.N {
		t.Fatalf("rows = %d, want %d", len(res.Rows), opt.N)
	}
	total := 0
	for _, n := range res.Dist {
		total += n
	}
	if total != opt.N {
		t.Errorf("distribution covers %d scenarios, want %d", total, opt.N)
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		if names[row.Name] {
			t.Errorf("duplicate corpus member %s", row.Name)
		}
		names[row.Name] = true
		if row.Family == "" || row.Family == "registered" {
			t.Errorf("%s: family %q for a generated member", row.Name, row.Family)
		}
	}

	before := eng.Stats().Executed
	again, err := CorpusSweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Executed != before {
		t.Errorf("repeated sweep re-simulated points (%d -> %d executions)",
			before, eng.Stats().Executed)
	}
	for i := range res.Rows {
		if res.Rows[i].MRF.Value != again.Rows[i].MRF.Value {
			t.Errorf("%s: MRF changed across cached sweeps", res.Rows[i].Name)
		}
	}

	var buf bytes.Buffer
	WriteCorpus(&buf, res)
	if !strings.Contains(buf.String(), "MRF distribution over 4 scenarios") {
		t.Errorf("summary missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := CorpusCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != opt.N+1 {
		t.Errorf("csv lines = %d, want %d", got, opt.N+1)
	}
}

// TestPropertyCorpusSweepsDontAliasAcrossSeeds: sweeps from different
// generator seeds share an engine without sharing cache slots — their
// scenario names embed the generator identity, so the second sweep
// simulates its own corpus instead of replaying the first one's.
func TestPropertyCorpusSweepsDontAliasAcrossSeeds(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	opt := CorpusOptions{N: 2, GenSeed: 1, Seeds: 1, FPRGrid: []float64{2, 30}, Engine: eng}
	first, err := CorpusSweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	executed := eng.Stats().Executed
	opt.GenSeed = 2
	second, err := CorpusSweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Executed == executed {
		t.Error("second sweep ran zero simulations: corpora aliased across generator seeds")
	}
	for i := range first.Rows {
		if first.Rows[i].Name == second.Rows[i].Name {
			t.Errorf("row %d: name %s reused across generator seeds", i, first.Rows[i].Name)
		}
	}
}

// TestCorpusSweepIncludesTaggedRegistered: tags pull registered
// scenarios into the sweep alongside the generated members.
func TestCorpusSweepIncludesTaggedRegistered(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	res, err := CorpusSweep(context.Background(), CorpusOptions{
		N:       1,
		GenSeed: 2,
		Tags:    []string{scenario.TagVariant},
		Seeds:   1,
		FPRGrid: []float64{30},
		Engine:  eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(scenario.Variants()) + 1
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d (variants + 1 generated)", len(res.Rows), wantRows)
	}
	registered := 0
	for _, row := range res.Rows {
		if row.Family == "registered" {
			registered++
		}
	}
	if registered != len(scenario.Variants()) {
		t.Errorf("registered rows = %d, want %d", registered, len(scenario.Variants()))
	}
}

// TestCorpusSweepRecordLevelStampsGeneratedSpecs proves the sweep's
// recording level reaches generated members through any engine: a
// summary-level sweep on a plain (full-policy) engine never
// materializes rows, and its corpus prefix is level-distinct so it
// cannot alias a full-level sweep's cached runs.
func TestCorpusSweepRecordLevelStampsGeneratedSpecs(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2, Runner: func(j engine.Job) (*sim.Result, error) {
		cfg := j.Scenario.Build(j.FPR, j.Seed)
		if j.Record > cfg.Record {
			cfg.Record = j.Record
		}
		if cfg.Record != trace.LevelSummary {
			t.Errorf("%s compiled at level %v, want summary", j.Scenario.Name, cfg.Record)
		}
		if !strings.Contains(j.Scenario.Name, "-summary/") {
			t.Errorf("corpus member %q lacks the level-distinct prefix", j.Scenario.Name)
		}
		return &sim.Result{FramesProcessed: map[string]int{}, Level: cfg.Record}, nil
	}})
	defer eng.Close()
	res, err := CorpusSweep(context.Background(), CorpusOptions{
		N: 2, GenSeed: 7, Seeds: 1, FPRGrid: []float64{5, 30},
		Record: trace.LevelSummary, Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
