package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plot"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/world"
)

// FigureSeries holds the per-camera latency estimates over time plus
// the ego acceleration — the content of the paper's Figures 4, 5, and 6
// (panels b–e).
type FigureSeries struct {
	Scenario string
	RunFPR   float64
	Times    []float64
	Left     []float64 // tolerable latency, s
	Front    []float64
	Right    []float64
	Accel    []float64 // ego longitudinal acceleration, m/s²
	Collided bool
}

// CameraLatencyFigure runs the named scenario once at the given rate
// and evaluates the trace offline — the pre-deployment flow behind
// Figures 4–6. The run goes through the shared engine, so regenerating
// a figure after a Table-1 campaign reuses the recorded trace.
func CameraLatencyFigure(name string, fpr float64, seed int64) (*FigureSeries, error) {
	sc, ok := scenario.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	res, err := engine.Default().Run(context.Background(), engine.Job{Scenario: sc, FPR: fpr, Seed: seed})
	if err != nil {
		return nil, err
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{})
	if err != nil {
		return nil, err
	}
	fs := &FigureSeries{Scenario: name, RunFPR: fpr, Collided: res.Collided()}
	for _, pt := range off.Points {
		fs.Times = append(fs.Times, pt.Time)
		fs.Left = append(fs.Left, pt.Latency[sensor.Left])
		fs.Front = append(fs.Front, pt.Latency[sensor.Front120])
		fs.Right = append(fs.Right, pt.Latency[sensor.Right])
		fs.Accel = append(fs.Accel, pt.EgoAccel)
	}
	return fs, nil
}

// MinLatency returns the per-camera minima (the figures' headline: how
// low each camera's tolerable latency dips).
func (fs *FigureSeries) MinLatency() (left, front, right float64) {
	left, front, right = math.Inf(1), math.Inf(1), math.Inf(1)
	for i := range fs.Times {
		left = math.Min(left, fs.Left[i])
		front = math.Min(front, fs.Front[i])
		right = math.Min(right, fs.Right[i])
	}
	return left, front, right
}

// PeakFrontFPRTime returns the time of the tightest front-camera
// requirement, used to correlate with the deceleration dips (§4.2).
func (fs *FigureSeries) PeakFrontFPRTime() float64 {
	best := math.Inf(1)
	at := 0.0
	for i, l := range fs.Front {
		if l < best {
			best = l
			at = fs.Times[i]
		}
	}
	return at
}

// WriteFigureSeries renders the series as aligned columns (one row per
// evaluation instant) followed by sparkline overviews of the four
// panels.
func WriteFigureSeries(w io.Writer, fs *FigureSeries) {
	fmt.Fprintf(w, "# %s (run at %g FPR)%s\n", fs.Scenario, fs.RunFPR, collideTag(fs.Collided))
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s\n", "t(s)", "left(ms)", "front(ms)", "right(ms)", "accel")
	for i := range fs.Times {
		fmt.Fprintf(w, "%8.2f %10.0f %10.0f %10.0f %10.2f\n",
			fs.Times[i], fs.Left[i]*1000, fs.Front[i]*1000, fs.Right[i]*1000, fs.Accel[i])
	}
	fmt.Fprintln(w, "# overview (latency s / accel m/s²):")
	plot.Line(w, "# left", fs.Left, 60)
	plot.Line(w, "# front", fs.Front, 60)
	plot.Line(w, "# right", fs.Right, 60)
	plot.Line(w, "# accel", fs.Accel, 60)
}

func collideTag(c bool) string {
	if c {
		return " [COLLIDED]"
	}
	return ""
}

// OnlineSeries is the post-deployment latency estimate series of
// Figure 7: the Zhuyi model runs inside the closed loop on the
// perceived world model with predicted trajectories.
type OnlineSeries struct {
	Scenario string
	Times    []float64
	Front    []float64 // online front-camera latency estimate, s
	Offline  []float64 // offline (ground-truth) estimate at the same instants, s
	Collided bool
}

// onlineProbe records online Zhuyi estimates from inside the simulation
// loop without altering the camera rates.
type onlineProbe struct {
	est   *core.Estimator
	pred  predict.Predictor
	l0    float64
	times []float64
	front []float64
}

// Rates implements sim.RateController as a pure observer.
func (p *onlineProbe) Rates(now float64, ego world.Agent, wm []world.Agent) map[string]float64 {
	e := p.est.EstimateOnline(now, ego, wm, p.pred, p.l0)
	p.times = append(p.times, now)
	p.front = append(p.front, e.CameraLatency[sensor.Front120])
	return nil
}

// Figure7 reproduces the post-deployment validation: the Cut-in
// scenario with the Zhuyi model running online. The returned series
// pairs the online estimates with the offline ground-truth estimates at
// the same instants, whose difference is the prediction-driven variance
// the paper discusses.
func Figure7(fpr float64, seed int64) (*OnlineSeries, error) {
	return figure7WithAgg(fpr, seed, core.AggregateOptions{Mode: core.AggPercentile, Percentile: 99})
}

// figure7WithAgg is Figure7 with a configurable Eq.-4 aggregation (used
// by the aggregation-mode ablation).
func figure7WithAgg(fpr float64, seed int64, agg core.AggregateOptions) (*OnlineSeries, error) {
	sc, ok := scenario.ByName(scenario.CutIn)
	if !ok {
		return nil, fmt.Errorf("experiments: cut-in scenario missing")
	}
	est := core.NewEstimator()
	est.Agg = agg
	probe := &onlineProbe{
		est:  est,
		pred: predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1},
		l0:   1 / fpr,
	}
	// The probe records estimates from inside the loop, so this run is a
	// NoCache variant: replaying it from cache would leave the probe
	// empty.
	res, err := engine.Default().Run(context.Background(), engine.Job{
		Scenario: sc, FPR: fpr, Seed: seed,
		Variant: "online-probe", NoCache: true,
		Configure: func(cfg *sim.Config) {
			cfg.RateController = probe
			cfg.RateEpoch = 0.1
		},
	})
	if err != nil {
		return nil, err
	}

	// Offline reference on the same trace.
	offEst := core.NewEstimator()
	off, err := offEst.EvaluateTrace(res.Trace, core.OfflineOptions{})
	if err != nil {
		return nil, err
	}
	offline := make(map[float64]float64, len(off.Points))
	for _, pt := range off.Points {
		offline[roundTo(pt.Time, 0.1)] = pt.Latency[sensor.Front120]
	}

	series := &OnlineSeries{Scenario: sc.Name, Collided: res.Collided()}
	for i, t := range probe.times {
		ref, ok := offline[roundTo(t, 0.1)]
		if !ok {
			continue
		}
		series.Times = append(series.Times, t)
		series.Front = append(series.Front, probe.front[i])
		series.Offline = append(series.Offline, ref)
	}
	return series, nil
}

func roundTo(v, step float64) float64 { return math.Round(v/step) * step }

// Variance returns the mean squared difference between the online and
// offline estimates — the Figure-7 "variance in the estimates" due to
// predicted (rather than ground-truth) futures.
func (s *OnlineSeries) Variance() float64 {
	if len(s.Times) == 0 {
		return 0
	}
	sum := 0.0
	for i := range s.Times {
		d := s.Front[i] - s.Offline[i]
		sum += d * d
	}
	return sum / float64(len(s.Times))
}

// MinOnline returns the tightest online front-camera estimate.
func (s *OnlineSeries) MinOnline() float64 {
	tightest := math.Inf(1)
	for _, l := range s.Front {
		if l < tightest {
			tightest = l
		}
	}
	return tightest
}

// WriteOnlineSeries renders Figure 7 as text with sparkline overviews.
func WriteOnlineSeries(w io.Writer, s *OnlineSeries) {
	fmt.Fprintf(w, "# %s post-deployment front-camera estimates%s\n", s.Scenario, collideTag(s.Collided))
	fmt.Fprintf(w, "%8s %12s %12s\n", "t(s)", "online(ms)", "offline(ms)")
	for i := range s.Times {
		fmt.Fprintf(w, "%8.2f %12.0f %12.0f\n", s.Times[i], s.Front[i]*1000, s.Offline[i]*1000)
	}
	plot.Line(w, "# online", s.Front, 60)
	plot.Line(w, "# offline", s.Offline, 60)
	fmt.Fprintf(w, "# variance (online vs offline) = %.4f s²\n", s.Variance())
}
