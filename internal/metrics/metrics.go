// Package metrics implements the paper's validation measurements: the
// minimum required FPR (MRF) search — "the FPR above which no collision
// was detected in the scenario" (§4.2) — run over multiple seeds to
// absorb simulation nondeterminism, and per-run summary statistics.
// All run fan-out goes through the shared internal/engine scheduler, so
// campaigns are parallel, cancellable, and cached.
package metrics

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// DefaultFPRGrid is the set of tested rates from Table 1.
func DefaultFPRGrid() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30}
}

// MRF is the result of a minimum-required-FPR search.
type MRF struct {
	Scenario string
	Value    float64 // minimum safe FPR; 0 encodes "<1" (safe at every tested rate)
	// Collisions maps tested FPR -> collision count across seeds. Rates
	// the adaptive search skipped (strictly below the highest colliding
	// rate: they cannot change the MRF) have no entry.
	Collisions map[float64]int
	Seeds      int
	// Runs counts the points scheduled through the engine, including
	// cache hits — the campaign cost before caching.
	Runs int
}

// BelowGrid reports whether the scenario was safe even at the lowest
// tested rate (the paper prints these as "<1").
func (m MRF) BelowGrid() bool { return m.Value == 0 }

// String renders the MRF the way Table 1 does.
func (m MRF) String() string {
	if m.BelowGrid() {
		return "<1"
	}
	return fmt.Sprintf("%g", m.Value)
}

// RunScenario executes one seeded run of a scenario at a fixed FPR,
// directly and uncached — the raw primitive under the engine's default
// runner. Campaign code should prefer engine jobs.
func RunScenario(sc scenario.Scenario, fpr float64, seed int64) (*sim.Result, error) {
	return sim.Run(sc.Build(fpr, seed))
}

// FindMRF searches the scenario's minimum required FPR on the shared
// default engine. See FindMRFContext.
func FindMRF(sc scenario.Scenario, fprs []float64, seeds int) (MRF, error) {
	return FindMRFContext(context.Background(), engine.Default(), sc, fprs, seeds)
}

// FindMRFContext runs the scenario over the ascending rate grid with
// the given number of seeds and returns the minimum rate from which no
// collision occurs at that rate or any higher tested rate.
//
// The search is adaptive: rates are evaluated from the highest down, one
// seeds-wide wave at a time, and stops at the first rate that shows a
// collision — every lower rate is irrelevant to the MRF by definition
// ("that rate AND all higher rates collision-free"), so the exhaustive
// rates×seeds sweep of the naive protocol is avoided. Each wave runs
// concurrently on the engine's pool, and points already simulated by an
// earlier campaign are cache hits. Waves always run all seeds to
// completion, keeping Collisions counts deterministic.
//
// All run failures are collected and returned joined (errors.Join),
// each annotated with its (scenario, fpr, seed) point.
func FindMRFContext(ctx context.Context, eng *engine.Engine, sc scenario.Scenario, fprs []float64, seeds int) (MRF, error) {
	res := MRF{Scenario: sc.Name, Collisions: make(map[float64]int, len(fprs)), Seeds: seeds}
	if seeds <= 0 {
		// An empty wave would declare every rate collision-free.
		return res, fmt.Errorf("metrics: FindMRF needs at least one seed, got %d", seeds)
	}

	mrf := 0.0
	for i := len(fprs) - 1; i >= 0; i-- {
		collided, err := collisionWave(ctx, eng, sc, fprs[i], seeds)
		res.Runs += seeds
		if err != nil {
			return res, err
		}
		res.Collisions[fprs[i]] = collided
		if collided > 0 {
			if i == len(fprs)-1 {
				mrf = math.Inf(1) // unsafe even at the highest tested rate
			} else {
				mrf = fprs[i+1]
			}
			break
		}
	}
	res.Value = mrf
	return res, nil
}

// collisionWave runs all seeds of one rate as a single engine campaign
// and counts collisions. A wave needs nothing but each run's collision
// outcome, so points archived in the engine's persistent store are
// answered from the manifest summary alone — no simulation and no
// trace decode; only the points the store has never seen are
// scheduled.
func collisionWave(ctx context.Context, eng *engine.Engine, sc scenario.Scenario, fpr float64, seeds int) (int, error) {
	collided := 0
	jobs := make([]engine.Job, 0, seeds)
	for s := 1; s <= seeds; s++ {
		j := engine.Job{Scenario: sc, FPR: fpr, Seed: int64(s)}
		if e, ok := eng.Peek(j); ok {
			if e.Collision != nil {
				collided++
			}
			continue
		}
		jobs = append(jobs, j)
	}
	batch, batchErr := eng.RunBatch(ctx, jobs)
	var errs []error
	for _, o := range batch.Outcomes {
		switch {
		case o.Err == nil:
			if o.Result.Collided() {
				collided++
			}
		case errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded):
			// Skipped by cancellation, not a measurement failure.
		default:
			errs = append(errs, fmt.Errorf("metrics: scenario %s fpr %g seed %d: %w", sc.Name, o.Job.FPR, o.Job.Seed, o.Err))
		}
	}
	if len(errs) == 0 {
		// No real failure: surface plain cancellation, if any.
		return collided, batchErr
	}
	return collided, errors.Join(errs...)
}

// CollisionRate runs the scenario n times at the given FPR on the
// shared default engine. See CollisionRateContext.
func CollisionRate(sc scenario.Scenario, fpr float64, n int) (float64, error) {
	return CollisionRateContext(context.Background(), engine.Default(), sc, fpr, n)
}

// CollisionRateContext runs the scenario n times at the given FPR with
// seeds 1..n concurrently on the engine and returns the fraction that
// collided. Failures are joined per point, like FindMRFContext.
func CollisionRateContext(ctx context.Context, eng *engine.Engine, sc scenario.Scenario, fpr float64, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("metrics: CollisionRate needs at least one run, got %d", n)
	}
	collided, err := collisionWave(ctx, eng, sc, fpr, n)
	if err != nil {
		return 0, err
	}
	return float64(collided) / float64(n), nil
}
