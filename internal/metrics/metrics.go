// Package metrics implements the paper's validation measurements: the
// minimum required FPR (MRF) search — "the FPR above which no collision
// was detected in the scenario" (§4.2) — run over multiple seeds to
// absorb simulation nondeterminism, and per-run summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// DefaultFPRGrid is the set of tested rates from Table 1.
func DefaultFPRGrid() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30}
}

// MRF is the result of a minimum-required-FPR search.
type MRF struct {
	Scenario   string
	Value      float64         // minimum safe FPR; 0 encodes "<1" (safe at every tested rate)
	Collisions map[float64]int // tested FPR -> collision count across seeds
	Seeds      int
}

// BelowGrid reports whether the scenario was safe even at the lowest
// tested rate (the paper prints these as "<1").
func (m MRF) BelowGrid() bool { return m.Value == 0 }

// String renders the MRF the way Table 1 does.
func (m MRF) String() string {
	if m.BelowGrid() {
		return "<1"
	}
	return fmt.Sprintf("%g", m.Value)
}

// RunScenario executes one seeded run of a scenario at a fixed FPR.
func RunScenario(sc scenario.Scenario, fpr float64, seed int64) (*sim.Result, error) {
	return sim.Run(sc.Build(fpr, seed))
}

// FindMRF runs the scenario at every rate in fprs (ascending) with the
// given number of seeds and returns the minimum rate from which no
// collision occurs at that rate or any higher tested rate. Runs execute
// concurrently across (fpr, seed) pairs.
func FindMRF(sc scenario.Scenario, fprs []float64, seeds int) (MRF, error) {
	res := MRF{Scenario: sc.Name, Collisions: make(map[float64]int, len(fprs)), Seeds: seeds}

	type key struct {
		fpr  float64
		seed int64
	}
	type outcome struct {
		k        key
		collided bool
		err      error
	}
	jobs := make([]key, 0, len(fprs)*seeds)
	for _, f := range fprs {
		for s := 0; s < seeds; s++ {
			jobs = append(jobs, key{fpr: f, seed: int64(s + 1)})
		}
	}

	out := make(chan outcome, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for _, j := range jobs {
		wg.Add(1)
		go func(j key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := RunScenario(sc, j.fpr, j.seed)
			if err != nil {
				out <- outcome{k: j, err: err}
				return
			}
			out <- outcome{k: j, collided: r.Collided()}
		}(j)
	}
	wg.Wait()
	close(out)

	for o := range out {
		if o.err != nil {
			return res, fmt.Errorf("metrics: scenario %s fpr %g seed %d: %w", sc.Name, o.k.fpr, o.k.seed, o.err)
		}
		if o.collided {
			res.Collisions[o.k.fpr]++
		}
	}

	// MRF: the lowest tested rate such that it and every higher tested
	// rate are collision-free.
	mrf := 0.0
	for i := len(fprs) - 1; i >= 0; i-- {
		if res.Collisions[fprs[i]] > 0 {
			if i == len(fprs)-1 {
				mrf = math.Inf(1) // unsafe even at the highest tested rate
			} else {
				mrf = fprs[i+1]
			}
			break
		}
	}
	res.Value = mrf
	return res, nil
}

// CollisionRate runs the scenario n times at the given FPR with seeds
// 1..n and returns the fraction that collided.
func CollisionRate(sc scenario.Scenario, fpr float64, n int) (float64, error) {
	collisions := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		r, err := RunScenario(sc, fpr, seed)
		if err != nil {
			return 0, err
		}
		if r.Collided() {
			collisions++
		}
	}
	return float64(collisions) / float64(n), nil
}
