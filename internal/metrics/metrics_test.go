package metrics

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestDefaultFPRGridMatchesTable1(t *testing.T) {
	grid := DefaultFPRGrid()
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30}
	if len(grid) != len(want) {
		t.Fatalf("grid size = %d", len(grid))
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Errorf("grid[%d] = %v, want %v", i, grid[i], want[i])
		}
	}
}

func TestMRFString(t *testing.T) {
	if got := (MRF{Value: 0}).String(); got != "<1" {
		t.Errorf("below-grid MRF = %q", got)
	}
	if got := (MRF{Value: 5}).String(); got != "5" {
		t.Errorf("MRF = %q", got)
	}
	if !(MRF{Value: 0}).BelowGrid() {
		t.Error("BelowGrid false for 0")
	}
}

func TestRunScenario(t *testing.T) {
	sc, ok := scenario.ByName(scenario.FrontRightActivity1)
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := RunScenario(sc, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Errorf("benign scenario collided: %+v", res.Collision)
	}
	if res.Trace.Len() == 0 {
		t.Error("empty trace")
	}
	if res.Trace.Meta.FPR != 10 || res.Trace.Meta.Seed != 1 {
		t.Errorf("trace meta = %+v", res.Trace.Meta)
	}
}

func TestFindMRFBenignScenario(t *testing.T) {
	// The benign activity scenario is safe at every tested rate: MRF <1.
	sc, _ := scenario.ByName(scenario.FrontRightActivity1)
	m, err := FindMRF(sc, []float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.BelowGrid() {
		t.Errorf("MRF = %v, want <1", m.Value)
	}
	if m.Seeds != 2 || m.Scenario != scenario.FrontRightActivity1 {
		t.Errorf("result = %+v", m)
	}
}

func TestFindMRFCutOut(t *testing.T) {
	// The cut-out collides at 1 FPR and is safe at higher rates, so MRF
	// lands strictly above 1 on a {1, 6, 30} grid.
	sc, _ := scenario.ByName(scenario.CutOut)
	m, err := FindMRF(sc, []float64{1, 6, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.BelowGrid() {
		t.Error("cut-out MRF <1; expected collisions at 1 FPR")
	}
	if math.IsInf(m.Value, 1) {
		t.Error("cut-out unsafe even at 30 FPR")
	}
	if m.Collisions[1] == 0 {
		t.Error("no collisions recorded at 1 FPR")
	}
}

func TestCollisionRate(t *testing.T) {
	sc, _ := scenario.ByName(scenario.FrontRightActivity1)
	rate, err := CollisionRate(sc, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("benign collision rate = %v", rate)
	}
}

// fakeEngine builds an engine whose runner fabricates outcomes from a
// rule instead of simulating.
func fakeEngine(workers int, run func(engine.Job) (*sim.Result, error)) *engine.Engine {
	return engine.New(engine.Options{Workers: workers, Runner: run})
}

func TestFindMRFEarlyExitSkipsLowerRates(t *testing.T) {
	// Collide at every rate below 10: the descending search must stop at
	// the first colliding rate (5) and never schedule 1 or 2.
	eng := fakeEngine(2, func(j engine.Job) (*sim.Result, error) {
		res := &sim.Result{}
		if j.FPR < 10 {
			res.Collision = &trace.Collision{Time: 1, ActorID: "lead"}
		}
		return res, nil
	})
	sc := scenario.Scenario{Name: "fake"}
	grid := []float64{1, 2, 5, 10, 30}
	m, err := FindMRFContext(context.Background(), eng, sc, grid, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Value != 10 {
		t.Errorf("MRF = %v, want 10", m.Value)
	}
	if m.Runs != 9 {
		t.Errorf("runs = %d, want 9 (3 waves x 3 seeds)", m.Runs)
	}
	for _, fpr := range []float64{30, 10} {
		if n, ok := m.Collisions[fpr]; !ok || n != 0 {
			t.Errorf("Collisions[%g] = %d,%v; want 0,true", fpr, n, ok)
		}
	}
	if n := m.Collisions[5]; n != 3 {
		t.Errorf("Collisions[5] = %d, want 3", n)
	}
	for _, fpr := range []float64{1, 2} {
		if _, ok := m.Collisions[fpr]; ok {
			t.Errorf("rate %g was run despite early exit", fpr)
		}
	}
}

func TestFindMRFJoinsAllErrors(t *testing.T) {
	// Every seed fails; with a pool as wide as the wave, a barrier
	// guarantees all three start before the first error cancels
	// anything, so all three failures must appear in the joined error.
	var entered sync.WaitGroup
	entered.Add(3)
	eng := fakeEngine(3, func(j engine.Job) (*sim.Result, error) {
		entered.Done()
		entered.Wait()
		return nil, fmt.Errorf("sim exploded at seed %d", j.Seed)
	})
	sc := scenario.Scenario{Name: "fake"}
	_, err := FindMRFContext(context.Background(), eng, sc, []float64{30}, 3)
	if err == nil {
		t.Fatal("no error")
	}
	for seed := 1; seed <= 3; seed++ {
		want := fmt.Sprintf("fpr 30 seed %d: sim exploded at seed %d", seed, seed)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
}

func TestFindMRFCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := fakeEngine(1, func(j engine.Job) (*sim.Result, error) {
		return &sim.Result{}, nil
	})
	sc := scenario.Scenario{Name: "fake"}
	_, err := FindMRFContext(ctx, eng, sc, []float64{1, 2}, 2)
	if err == nil {
		t.Fatal("cancelled search returned nil error")
	}
}

func TestCollisionRateParallelFake(t *testing.T) {
	// Seeds 1..4: odd seeds collide -> rate 0.5, computed concurrently.
	eng := fakeEngine(4, func(j engine.Job) (*sim.Result, error) {
		res := &sim.Result{}
		if j.Seed%2 == 1 {
			res.Collision = &trace.Collision{Time: 1, ActorID: "x"}
		}
		return res, nil
	})
	sc := scenario.Scenario{Name: "fake"}
	rate, err := CollisionRateContext(context.Background(), eng, sc, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0.5 {
		t.Errorf("rate = %v, want 0.5", rate)
	}
}
