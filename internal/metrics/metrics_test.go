package metrics

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

func TestDefaultFPRGridMatchesTable1(t *testing.T) {
	grid := DefaultFPRGrid()
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30}
	if len(grid) != len(want) {
		t.Fatalf("grid size = %d", len(grid))
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Errorf("grid[%d] = %v, want %v", i, grid[i], want[i])
		}
	}
}

func TestMRFString(t *testing.T) {
	if got := (MRF{Value: 0}).String(); got != "<1" {
		t.Errorf("below-grid MRF = %q", got)
	}
	if got := (MRF{Value: 5}).String(); got != "5" {
		t.Errorf("MRF = %q", got)
	}
	if !(MRF{Value: 0}).BelowGrid() {
		t.Error("BelowGrid false for 0")
	}
}

func TestRunScenario(t *testing.T) {
	sc, ok := scenario.ByName(scenario.FrontRightActivity1)
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := RunScenario(sc, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Errorf("benign scenario collided: %+v", res.Collision)
	}
	if res.Trace.Len() == 0 {
		t.Error("empty trace")
	}
	if res.Trace.Meta.FPR != 10 || res.Trace.Meta.Seed != 1 {
		t.Errorf("trace meta = %+v", res.Trace.Meta)
	}
}

func TestFindMRFBenignScenario(t *testing.T) {
	// The benign activity scenario is safe at every tested rate: MRF <1.
	sc, _ := scenario.ByName(scenario.FrontRightActivity1)
	m, err := FindMRF(sc, []float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.BelowGrid() {
		t.Errorf("MRF = %v, want <1", m.Value)
	}
	if m.Seeds != 2 || m.Scenario != scenario.FrontRightActivity1 {
		t.Errorf("result = %+v", m)
	}
}

func TestFindMRFCutOut(t *testing.T) {
	// The cut-out collides at 1 FPR and is safe at higher rates, so MRF
	// lands strictly above 1 on a {1, 6, 30} grid.
	sc, _ := scenario.ByName(scenario.CutOut)
	m, err := FindMRF(sc, []float64{1, 6, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.BelowGrid() {
		t.Error("cut-out MRF <1; expected collisions at 1 FPR")
	}
	if math.IsInf(m.Value, 1) {
		t.Error("cut-out unsafe even at 30 FPR")
	}
	if m.Collisions[1] == 0 {
		t.Error("no collisions recorded at 1 FPR")
	}
}

func TestCollisionRate(t *testing.T) {
	sc, _ := scenario.ByName(scenario.FrontRightActivity1)
	rate, err := CollisionRate(sc, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("benign collision rate = %v", rate)
	}
}
