package core

import (
	"math"
	"testing"
)

func feasible(l float64) LatencyResult { return LatencyResult{Latency: l, Feasible: true, Evals: 1} }

func TestAggregateEmptyAndSingle(t *testing.T) {
	if got := Aggregate(nil, nil, AggregateOptions{}); got.Feasible {
		t.Errorf("empty aggregate = %+v", got)
	}
	single := feasible(0.4)
	got := Aggregate([]LatencyResult{single}, []float64{1}, AggregateOptions{Mode: AggMean})
	if got != single {
		t.Errorf("single aggregate = %+v", got)
	}
}

func TestAggregatePessimisticTakesMinLatency(t *testing.T) {
	results := []LatencyResult{feasible(0.8), feasible(0.2), feasible(0.5)}
	probs := []float64{0.5, 0.1, 0.4}
	got := Aggregate(results, probs, AggregateOptions{Mode: AggPessimistic})
	if got.Latency != 0.2 || !got.Feasible {
		t.Errorf("pessimistic = %+v", got)
	}
}

func TestAggregateMeanWeighted(t *testing.T) {
	results := []LatencyResult{feasible(1.0), feasible(0.0)}
	probs := []float64{0.75, 0.25}
	got := Aggregate(results, probs, AggregateOptions{Mode: AggMean})
	if math.Abs(got.Latency-0.75) > 1e-9 {
		t.Errorf("mean = %v", got.Latency)
	}
}

func TestAggregatePercentile(t *testing.T) {
	// Four equally likely trajectories; p99 should pick the smallest
	// latency (most demanding), p50 the median region.
	results := []LatencyResult{feasible(0.1), feasible(0.4), feasible(0.7), feasible(1.0)}
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	p99 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 99})
	if p99.Latency != 0.1 {
		t.Errorf("p99 latency = %v, want 0.1", p99.Latency)
	}
	p50 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 50})
	if p50.Latency != 0.4 && p50.Latency != 0.7 {
		t.Errorf("p50 latency = %v", p50.Latency)
	}
	p0 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 0})
	if p0.Latency != 1.0 {
		t.Errorf("p0 latency = %v, want 1.0", p0.Latency)
	}
}

func TestAggregatePercentileSkipsRareOutlier(t *testing.T) {
	// A 0.5%-probability catastrophic hypothesis should not dominate the
	// 99th percentile ("cautious while not too pessimistic").
	results := []LatencyResult{feasible(0.033), feasible(0.6), feasible(0.9)}
	probs := []float64{0.005, 0.5, 0.495}
	p99 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 99})
	if p99.Latency != 0.6 {
		t.Errorf("p99 latency = %v, want 0.6 (outlier skipped)", p99.Latency)
	}
	pess := Aggregate(results, probs, AggregateOptions{Mode: AggPessimistic})
	if pess.Latency != 0.033 {
		t.Errorf("pessimistic latency = %v, want 0.033", pess.Latency)
	}
}

func TestAggregateOrdering(t *testing.T) {
	// For any trajectory set: pessimistic <= p99 <= p50 <= p0 in latency.
	results := []LatencyResult{feasible(0.2), feasible(0.5), feasible(0.8), feasible(1.0)}
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	pess := Aggregate(results, probs, AggregateOptions{Mode: AggPessimistic}).Latency
	p99 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 99}).Latency
	p50 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 50}).Latency
	p0 := Aggregate(results, probs, AggregateOptions{Mode: AggPercentile, Percentile: 0}).Latency
	if !(pess <= p99 && p99 <= p50 && p50 <= p0) {
		t.Errorf("ordering violated: %v, %v, %v, %v", pess, p99, p50, p0)
	}
}

func TestAggregateInfeasibleMembers(t *testing.T) {
	// One infeasible hypothesis: pessimistic mode collapses to
	// infeasible; mean treats it as zero latency.
	results := []LatencyResult{{Feasible: false, Evals: 3}, feasible(0.5)}
	probs := []float64{0.5, 0.5}
	pess := Aggregate(results, probs, AggregateOptions{Mode: AggPessimistic})
	if pess.Feasible {
		t.Errorf("pessimistic with infeasible member = %+v", pess)
	}
	mean := Aggregate(results, probs, AggregateOptions{Mode: AggMean})
	if !mean.Feasible || math.Abs(mean.Latency-0.25) > 1e-9 {
		t.Errorf("mean = %+v", mean)
	}
	// All infeasible: result infeasible, evals accumulated.
	all := Aggregate([]LatencyResult{{Feasible: false, Evals: 2}, {Feasible: false, Evals: 3}}, nil, AggregateOptions{})
	if all.Feasible || all.Evals != 5 {
		t.Errorf("all infeasible = %+v", all)
	}
}

func TestAggregateMissingProbsDefaultUniform(t *testing.T) {
	results := []LatencyResult{feasible(0.2), feasible(0.8)}
	got := Aggregate(results, nil, AggregateOptions{Mode: AggMean})
	if math.Abs(got.Latency-0.5) > 1e-9 {
		t.Errorf("uniform mean = %v", got.Latency)
	}
}

func TestAggregateAccumulatesEvals(t *testing.T) {
	results := []LatencyResult{feasible(0.2), feasible(0.8)}
	got := Aggregate(results, nil, AggregateOptions{Mode: AggPessimistic})
	if got.Evals != 2 {
		t.Errorf("evals = %d", got.Evals)
	}
}

func TestAggregateNoThreatPropagation(t *testing.T) {
	nt := LatencyResult{Latency: 1, Feasible: true, NoThreat: true}
	th := feasible(0.5)
	got := Aggregate([]LatencyResult{nt, nt}, nil, AggregateOptions{Mode: AggPessimistic})
	if !got.NoThreat {
		t.Error("all-NoThreat set lost the flag")
	}
	got = Aggregate([]LatencyResult{nt, th}, nil, AggregateOptions{Mode: AggPessimistic})
	if got.NoThreat {
		t.Error("mixed set kept NoThreat")
	}
}
