package core

import (
	"math"
	"sync"
)

// SweepCell is one cell of the Figure-8 sensitivity analysis: the
// minimum FPR for an ego at initial speed v_e0 facing an actor whose end
// velocity is v_an, with a fixed tolerable travel distance s_n.
type SweepCell struct {
	VE0         float64 // ego initial speed, m/s
	VAN         float64 // actor end velocity, m/s
	FPR         float64 // minimum safe FPR (valid when neither flag set)
	Latency     float64 // tolerable latency, s
	ThirtyPlus  bool    // requires more than 1/LMin FPR (rendered gray)
	Unavoidable bool    // no latency avoids a collision (rendered white)
}

// SweepResult is the full grid.
type SweepResult struct {
	SN    float64 // fixed tolerable distance, m
	VE0s  []float64
	VANs  []float64
	Cells [][]SweepCell // [i][j] = VE0s[i] x VANs[j]
}

// Sweep computes the Figure-8 grid analytically. The model follows
// §4.3: the ego travels d_e1 during the reaction time at constant speed
// (a0 = 0), then brakes at a_b = C3 until it reaches the target velocity
// C2·v_an; safety requires d_e1 + d_e2 ≤ C1·s_n. The paper's figure
// marks cells needing more than 30 FPR gray and cells where no
// processing rate avoids the collision white.
//
// l0 is the current system latency used by the AlphaPaper confirmation
// model; the sweep defaults to AlphaZero (steady state) when p.Alpha is
// so configured.
// Rows compute concurrently — every cell is an independent closed-form
// evaluation — so the grid scales with the available cores.
func Sweep(ve0s, vans []float64, sn, l0 float64, p Params) *SweepResult {
	res := &SweepResult{SN: sn, VE0s: ve0s, VANs: vans}
	res.Cells = make([][]SweepCell, len(ve0s))
	var wg sync.WaitGroup
	for i, ve0 := range ve0s {
		res.Cells[i] = make([]SweepCell, len(vans))
		wg.Add(1)
		go func(row []SweepCell, ve0 float64) {
			defer wg.Done()
			for j, van := range vans {
				row[j] = sweepCell(ve0, van, sn, l0, p)
			}
		}(res.Cells[i], ve0)
	}
	wg.Wait()
	return res
}

func sweepCell(ve0, van, sn, l0 float64, p Params) SweepCell {
	cell := SweepCell{VE0: ve0, VAN: van}
	ab := p.C3 // a0 = 0 in the sweep
	vTarget := p.C2 * van
	budget := p.C1 * sn

	var de2 float64
	if ve0 > vTarget {
		de2 = (ve0*ve0 - vTarget*vTarget) / (2 * ab)
	}
	if de2 > budget {
		cell.Unavoidable = true
		return cell
	}
	if ve0 <= 0 {
		cell.Latency = p.LMax
		cell.FPR = 1 / p.LMax
		return cell
	}

	trMax := (budget - de2) / ve0
	l := latencyFromReaction(trMax, l0, p)
	if l > p.LMax {
		l = p.LMax
	}
	if l < p.LMin {
		cell.ThirtyPlus = true
		cell.Latency = l
		if l > 0 {
			cell.FPR = 1 / l
		} else {
			cell.FPR = math.Inf(1)
		}
		return cell
	}
	cell.Latency = l
	cell.FPR = 1 / l
	return cell
}

// latencyFromReaction inverts t_r = l + α(l, l0) for the configured
// alpha model.
func latencyFromReaction(tr, l0 float64, p Params) float64 {
	if tr < 0 {
		return 0
	}
	switch p.Alpha {
	case AlphaZero:
		return tr
	default:
		// α = K·(l − l0) for l ≥ l0, else 0. Invert piecewise.
		if tr <= l0 {
			return tr // α = 0 region
		}
		l := (tr + float64(p.K)*l0) / (1 + float64(p.K))
		if l < l0 {
			l = l0
		}
		return l
	}
}

// QuantizeFPR rounds an FPR requirement up to the next whole frame rate,
// the way Figure 8 bins its cells.
func QuantizeFPR(fpr float64) int {
	if math.IsInf(fpr, 1) {
		return math.MaxInt32
	}
	return int(math.Ceil(fpr - 1e-9))
}
