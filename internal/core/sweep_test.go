package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

func sweepParams() Params {
	p := DefaultParams()
	p.Alpha = AlphaZero // Figure-8 steady-state assumption
	return p
}

func TestSweepStreetSpeedsLowFPR(t *testing.T) {
	// Paper §4.3: "For an ego operating on streets (0-25 mph), both
	// figures show that FPR <= 2 is enough for safety."
	p := sweepParams()
	for _, sn := range []float64{30, 100} {
		for mph := 0.0; mph <= 25; mph += 2.5 {
			for vanMPH := 0.0; vanMPH <= 70; vanMPH += 5 {
				cell := sweepCell(units.MPHToMPS(mph), units.MPHToMPS(vanMPH), sn, 0.033, p)
				if cell.Unavoidable {
					continue // impossible combination, rendered white
				}
				if cell.ThirtyPlus || QuantizeFPR(cell.FPR) > 2 {
					t.Errorf("sn=%v ve0=%v mph van=%v mph: FPR %v > 2", sn, mph, vanMPH, cell.FPR)
				}
			}
		}
	}
}

func TestSweepHighwayLargeGap(t *testing.T) {
	// Paper §4.3: for sn = 100 m, "a maximum of only 5 FPR is sufficient
	// for safe operation" at 25+ mph. Analytically there is a thin
	// transition band between 5 FPR and the 30+/unavoidable region, so
	// the structural claim is: the overwhelming majority of feasible
	// cells need <= 5 FPR, and every higher-FPR cell sits next to the
	// infeasible boundary (one grid step from a 30+/unavoidable cell).
	p := sweepParams()
	lowDemand, feasible := 0, 0
	for mph := 25.0; mph <= 75; mph += 2.5 {
		for vanMPH := 0.0; vanMPH <= 75; vanMPH += 2.5 {
			cell := sweepCell(units.MPHToMPS(mph), units.MPHToMPS(vanMPH), 100, 0.033, p)
			if cell.Unavoidable || cell.ThirtyPlus {
				continue
			}
			feasible++
			if QuantizeFPR(cell.FPR) <= 5 {
				lowDemand++
				continue
			}
			// High-demand cell: its neighbor with a 2.5 mph slower actor
			// must already be infeasible or 30+.
			below := sweepCell(units.MPHToMPS(mph), units.MPHToMPS(vanMPH-2.5), 100, 0.033, p)
			if !below.Unavoidable && !below.ThirtyPlus && QuantizeFPR(below.FPR) <= 5 {
				t.Errorf("isolated high-FPR cell at ve0=%v van=%v (FPR %v)", mph, vanMPH, cell.FPR)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible cells at sn=100")
	}
	if frac := float64(lowDemand) / float64(feasible); frac < 0.85 {
		t.Errorf("only %.0f%% of feasible cells need <= 5 FPR; paper reports (nearly) all", frac*100)
	}
}

func TestSweepShortGapHighSpeedHard(t *testing.T) {
	// sn = 30 m at high ego speed and low actor end velocity: high FPR
	// or unavoidable (paper: "the FPR requirement can be high ... many
	// such combinations are impossible").
	p := sweepParams()
	cell := sweepCell(units.MPHToMPS(70), units.MPHToMPS(0), 30, 0.033, p)
	if !cell.Unavoidable {
		t.Errorf("70 mph vs stopped actor at 30 m should be unavoidable: %+v", cell)
	}
	// Moderately high speed with a slow actor: demanding but possible.
	found := false
	for mph := 30.0; mph <= 60; mph += 2.5 {
		for vanMPH := 10.0; vanMPH <= 40; vanMPH += 2.5 {
			c := sweepCell(units.MPHToMPS(mph), units.MPHToMPS(vanMPH), 30, 0.033, p)
			if !c.Unavoidable && (c.ThirtyPlus || QuantizeFPR(c.FPR) >= 10) {
				found = true
			}
		}
	}
	if !found {
		t.Error("no high-FPR cells found in the sn=30 grid; expected a demanding region")
	}
}

func TestSweepMonotoneInActorVelocity(t *testing.T) {
	// Faster actor end velocity can only relax the requirement.
	p := sweepParams()
	ve0 := units.MPHToMPS(50)
	prev := math.Inf(1)
	for vanMPH := 0.0; vanMPH <= 70; vanMPH += 5 {
		cell := sweepCell(ve0, units.MPHToMPS(vanMPH), 100, 0.033, p)
		var f float64
		switch {
		case cell.Unavoidable:
			f = math.Inf(1)
		case cell.ThirtyPlus:
			f = 1000
		default:
			f = cell.FPR
		}
		if f > prev+1e-9 {
			t.Fatalf("requirement increased with van: %v after %v (van=%v mph)", f, prev, vanMPH)
		}
		prev = f
	}
}

func TestSweepGapMonotone(t *testing.T) {
	// A larger tolerable distance can only relax the requirement.
	p := sweepParams()
	a := sweepCell(units.MPHToMPS(50), units.MPHToMPS(20), 30, 0.033, p)
	b := sweepCell(units.MPHToMPS(50), units.MPHToMPS(20), 100, 0.033, p)
	severity := func(c SweepCell) float64 {
		switch {
		case c.Unavoidable:
			return math.Inf(1)
		case c.ThirtyPlus:
			return 1000
		default:
			return c.FPR
		}
	}
	if severity(b) > severity(a) {
		t.Errorf("sn=100 (%v) harder than sn=30 (%v)", severity(b), severity(a))
	}
}

func TestSweepStoppedEgo(t *testing.T) {
	p := sweepParams()
	cell := sweepCell(0, 0, 30, 0.033, p)
	if cell.Unavoidable || cell.ThirtyPlus {
		t.Errorf("stopped ego: %+v", cell)
	}
	if cell.FPR != 1 {
		t.Errorf("stopped ego FPR = %v, want 1", cell.FPR)
	}
}

func TestSweepGridShape(t *testing.T) {
	p := sweepParams()
	ve0s := []float64{0, 10, 20}
	vans := []float64{0, 15}
	res := Sweep(ve0s, vans, 30, 0.033, p)
	if len(res.Cells) != 3 || len(res.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(res.Cells), len(res.Cells[0]))
	}
	if res.SN != 30 {
		t.Errorf("SN = %v", res.SN)
	}
	for i, ve0 := range ve0s {
		for j, van := range vans {
			if res.Cells[i][j].VE0 != ve0 || res.Cells[i][j].VAN != van {
				t.Errorf("cell [%d][%d] mislabeled: %+v", i, j, res.Cells[i][j])
			}
		}
	}
}

func TestSweepAlphaPaperTighterThanZero(t *testing.T) {
	// With the paper's confirmation-delay model, the same reaction
	// budget maps to a smaller tolerable latency (α > 0 for l > l0), so
	// requirements are at least as strict.
	pZero := sweepParams()
	pPaper := DefaultParams() // AlphaPaper
	for _, mph := range []float64{20, 40, 60} {
		zero := sweepCell(units.MPHToMPS(mph), units.MPHToMPS(10), 100, 0.033, pZero)
		paper := sweepCell(units.MPHToMPS(mph), units.MPHToMPS(10), 100, 0.033, pPaper)
		if zero.Unavoidable != paper.Unavoidable {
			t.Errorf("mph=%v: unavoidable flags differ", mph)
			continue
		}
		if zero.Unavoidable {
			continue
		}
		if paper.Latency > zero.Latency+1e-9 {
			t.Errorf("mph=%v: paper alpha latency %v exceeds zero-alpha %v", mph, paper.Latency, zero.Latency)
		}
	}
}

func TestLatencyFromReactionInversion(t *testing.T) {
	p := DefaultParams() // AlphaPaper, K=5
	l0 := 0.1
	for _, l := range []float64{0.05, 0.1, 0.3, 0.7} {
		tr := l + p.alpha(l, l0)
		got := latencyFromReaction(tr, l0, p)
		if math.Abs(got-l) > 1e-9 {
			t.Errorf("l=%v: inverted to %v (tr=%v)", l, got, tr)
		}
	}
	if got := latencyFromReaction(-1, l0, p); got != 0 {
		t.Errorf("negative reaction: %v", got)
	}
}

func TestQuantizeFPR(t *testing.T) {
	if got := QuantizeFPR(2.0); got != 2 {
		t.Errorf("QuantizeFPR(2.0) = %d", got)
	}
	if got := QuantizeFPR(2.1); got != 3 {
		t.Errorf("QuantizeFPR(2.1) = %d", got)
	}
	if got := QuantizeFPR(math.Inf(1)); got != math.MaxInt32 {
		t.Errorf("QuantizeFPR(inf) = %d", got)
	}
}
