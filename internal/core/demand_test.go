package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

func TestDemandPaperExample(t *testing.T) {
	// §4.2: "For a scenario with 2 actors and a single future prediction,
	// the compute demand is capped at 60 kilo-ops."
	p := DefaultParams()
	d := NewDemand(2, 1, p)
	if got := d.Ops(); got != 60000 {
		t.Errorf("Ops = %d, want 60000 (2*1*10*30*100)", got)
	}
	// "For processors offering 10+ GOPS, the Zhuyi model should execute
	// within 2 ms." — 60 kops / 10 GOPS = 6 µs, far inside the bound.
	if sec := d.ExecutionSeconds(10e9); sec > 0.002 {
		t.Errorf("execution time %v s exceeds the paper's 2 ms bound", sec)
	}
	if d.ExecutionSeconds(0) != 0 {
		t.Error("zero throughput should yield 0")
	}
}

func TestDemandScalesLinearly(t *testing.T) {
	p := DefaultParams()
	base := NewDemand(1, 1, p).Ops()
	if NewDemand(4, 1, p).Ops() != 4*base {
		t.Error("not linear in actors")
	}
	if NewDemand(1, 5, p).Ops() != 5*base {
		t.Error("not linear in trajectories")
	}
}

func TestMeasuredOpsBoundedByAnalyticDemand(t *testing.T) {
	// The estimator's actual constraint evaluations must stay within the
	// paper's worst-case |A|*|T|*M*L bound.
	e := NewEstimator()
	ego := world.Agent{ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(0, 0)}, Speed: 30, Length: 4.6, Width: 1.9}
	obstacle := world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(70, 0)}, Length: 4, Width: 1.9, Static: true}
	trajs := map[string][]world.Trajectory{"obs": {staticTraj(70, 0, e.Params.Horizon)}}
	est := e.EstimateSnapshot(0, ego, []world.Agent{obstacle}, trajs, 1.0/30)

	bound := NewDemand(1, 1, e.Params).Ops()
	if got := MeasuredOps(est.Evals); got > bound {
		t.Errorf("measured ops %d exceed analytic bound %d", got, bound)
	}
	if est.Evals == 0 {
		t.Error("no evaluations recorded")
	}
}
