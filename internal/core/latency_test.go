package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/world"
)

var carDims = [2]float64{4.6, 1.9}

// egoAt builds an ego state heading +X at the origin.
func egoAt(speed, accel float64) EgoState {
	return EgoState{
		Pose:   geom.Pose{Pos: geom.V(0, 0), Heading: 0},
		Speed:  speed,
		Accel:  accel,
		Length: 4.6,
		Width:  1.9,
	}
}

// straightTraj builds a trajectory for an actor moving along +X at a
// constant acceleration, starting at (x, y) with the given speed.
func straightTraj(x, y, speed, accel, horizon float64) world.Trajectory {
	var pts []world.TrajectoryPoint
	pos := x
	v := speed
	const dt = 0.05
	for t := 0.0; t <= horizon; t += dt {
		pts = append(pts, world.TrajectoryPoint{T: t, Pos: geom.V(pos, y), Heading: 0, Speed: v, Accel: accel})
		nv := v + accel*dt
		if nv < 0 {
			nv = 0
		}
		pos += (v + nv) / 2 * dt
		v = nv
	}
	return world.Trajectory{ActorID: "a", Prob: 1, Points: pts}
}

func staticTraj(x, y, horizon float64) world.Trajectory {
	return straightTraj(x, y, 0, 0, horizon)
}

func TestNoThreatAdjacentLaneParallel(t *testing.T) {
	// A parallel actor one lane over never conflicts: tolerable latency
	// is the maximum (FPR 1) regardless of relative speed. This is what
	// keeps side cameras at 1000 ms in the paper's Figure 6.
	p := DefaultParams()
	ego := egoAt(30, 0)
	traj := straightTraj(5, 3.5, 10, 0, p.Horizon)
	res := TolerableLatency(ego, traj, carDims, 0.033, p)
	if !res.NoThreat {
		t.Fatal("adjacent-lane actor flagged as threat")
	}
	if res.Latency != p.LMax || !res.Feasible {
		t.Errorf("latency = %v, feasible = %v", res.Latency, res.Feasible)
	}
}

func TestNoThreatBehindEgo(t *testing.T) {
	p := DefaultParams()
	ego := egoAt(20, 0)
	traj := straightTraj(-40, 0, 15, 0, p.Horizon) // same lane, behind, slower
	res := TolerableLatency(ego, traj, carDims, 0.033, p)
	if !res.NoThreat {
		t.Error("receding rear actor flagged as threat")
	}
}

func TestFarStaticObstacleTolerant(t *testing.T) {
	// A stopped obstacle 150 m ahead at moderate speed: plenty of time,
	// max latency is tolerable.
	p := DefaultParams()
	ego := egoAt(15, 0)
	res := TolerableLatency(ego, staticTraj(150, 0, p.Horizon), carDims, 0.033, p)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if res.Latency != p.LMax {
		t.Errorf("latency = %v, want LMax", res.Latency)
	}
}

func TestCloseStaticObstacleDemandsLowLatency(t *testing.T) {
	// 30 m/s toward a stopped obstacle 75 m ahead: braking distance at
	// C3 = 4.9 is ~92 m, leaving little reaction margin even with the
	// paper's conservatism factors.
	p := DefaultParams()
	ego := egoAt(30, 0)
	res := TolerableLatency(ego, staticTraj(75, 0, p.Horizon), carDims, 0.033, p)
	if res.Feasible && res.Latency >= 0.5 {
		t.Errorf("latency = %v, want < 0.5 s or infeasible", res.Latency)
	}
}

func TestLatencyMonotoneInDistance(t *testing.T) {
	// Tolerable latency must not decrease as the obstacle moves farther.
	p := DefaultParams()
	ego := egoAt(25, 0)
	prev := -1.0
	for _, dist := range []float64{60, 80, 100, 130, 170, 220} {
		res := TolerableLatency(ego, staticTraj(dist, 0, p.Horizon), carDims, 0.033, p)
		l := res.Latency
		if !res.Feasible {
			l = -0.5
		}
		if l < prev-1e-9 {
			t.Fatalf("latency decreased with distance: %v after %v (dist %v)", l, prev, dist)
		}
		prev = l
	}
}

func TestLatencyMonotoneInSpeed(t *testing.T) {
	// Faster ego, same obstacle: tolerable latency must not increase.
	p := DefaultParams()
	prev := math.Inf(1)
	for _, v := range []float64{5, 10, 15, 20, 25, 30, 35} {
		res := TolerableLatency(egoAt(v, 0), staticTraj(120, 0, p.Horizon), carDims, 0.033, p)
		l := res.Latency
		if !res.Feasible {
			l = -0.5
		}
		if l > prev+1e-9 {
			t.Fatalf("latency increased with speed: %v after %v (v=%v)", l, prev, v)
		}
		prev = l
	}
}

func TestUnavoidableCollision(t *testing.T) {
	// 35 m/s with a stopped obstacle 20 m ahead: no reaction time helps.
	p := DefaultParams()
	res := TolerableLatency(egoAt(35, 0), staticTraj(20, 0, p.Horizon), carDims, 0.033, p)
	if res.Feasible {
		t.Errorf("feasible with latency %v, want unavoidable", res.Latency)
	}
}

func TestMatchedSpeedFollowing(t *testing.T) {
	// Following a lead at identical speed 50 m ahead: the velocity
	// constraint requires braking below C2·v_a, which hard braking
	// achieves quickly; distance is ample, so latency should be high.
	p := DefaultParams()
	res := TolerableLatency(egoAt(25, 0), straightTraj(50+4.6, 0, 25, 0, p.Horizon), carDims, 0.033, p)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if res.Latency < 0.3 {
		t.Errorf("latency = %v, want >= 0.3", res.Latency)
	}
}

func TestBrakingLeadTightensLatency(t *testing.T) {
	p := DefaultParams()
	cruising := TolerableLatency(egoAt(30, 0), straightTraj(45, 0, 30, 0, p.Horizon), carDims, 0.033, p)
	braking := TolerableLatency(egoAt(30, 0), straightTraj(45, 0, 30, -6, p.Horizon), carDims, 0.033, p)
	lc := cruising.Latency
	if !cruising.Feasible {
		lc = 0
	}
	lb := braking.Latency
	if !braking.Feasible {
		lb = 0
	}
	if lb >= lc {
		t.Errorf("braking lead latency %v not tighter than cruising %v", lb, lc)
	}
}

func TestEgoDecelerationRaisesBrakeBudget(t *testing.T) {
	// With the ego already decelerating hard, a_b = C4·|a0| > C3 shortens
	// d_e2, so the tolerable latency should not get worse than when
	// cruising at the same speed.
	p := DefaultParams()
	cruise := TolerableLatency(egoAt(28, 0), staticTraj(95, 0, p.Horizon), carDims, 0.033, p)
	braking := TolerableLatency(egoAt(28, -6), staticTraj(95, 0, p.Horizon), carDims, 0.033, p)
	if !braking.Feasible {
		t.Fatal("braking case infeasible")
	}
	lc := cruise.Latency
	if !cruise.Feasible {
		lc = 0
	}
	if braking.Latency < lc {
		t.Errorf("braking ego latency %v worse than cruising %v", braking.Latency, lc)
	}
}

func TestAlphaModelTrend(t *testing.T) {
	// The paper's Table 1 shows estimated FPR growing as the tested
	// (run) FPR grows, driven by α = K·(l − l0): a larger l0 (slower
	// system) shrinks the reaction time for the same candidate latency.
	p := DefaultParams()
	ego := egoAt(22, 0)
	traj := staticTraj(100, 0, p.Horizon)
	atL0 := func(l0 float64) float64 {
		res := TolerableLatency(ego, traj, carDims, l0, p)
		if !res.Feasible {
			return 0
		}
		return res.Latency
	}
	fast := atL0(1.0 / 30) // run at 30 FPR
	slow := atL0(1.0 / 2)  // run at 2 FPR
	if !(slow >= fast) {
		t.Errorf("latency at l0=500ms (%v) should be >= latency at l0=33ms (%v)", slow, fast)
	}
	// And with AlphaZero the l0 dependence disappears.
	p.Alpha = AlphaZero
	if a, b := atL0(1.0/30), atL0(1.0/2); a != b {
		t.Errorf("AlphaZero results differ: %v vs %v", a, b)
	}
}

func TestCutInTrajectoryThreat(t *testing.T) {
	// An actor that starts one lane over and merges in front of the ego
	// must be recognized as a threat (not filtered by the lateral
	// screen).
	p := DefaultParams()
	ego := egoAt(27, 0)
	var pts []world.TrajectoryPoint
	for t := 0.0; t <= p.Horizon; t += 0.1 {
		y := 3.5
		if t > 1 {
			y = math.Max(0, 3.5-(t-1)*2)
		}
		pts = append(pts, world.TrajectoryPoint{T: t, Pos: geom.V(20+22*t, y), Heading: 0, Speed: 22})
	}
	traj := world.Trajectory{ActorID: "cut", Prob: 1, Points: pts}
	res := TolerableLatency(ego, traj, carDims, 0.033, p)
	if res.NoThreat {
		t.Fatal("cut-in not recognized as threat")
	}
	if res.Feasible && res.Latency > 0.9 {
		t.Errorf("latency = %v, want tighter than 0.9 for a close cut-in", res.Latency)
	}
}

func TestNaiveSearchAgreesWithAccelerated(t *testing.T) {
	// The Eq.-3 stepping is a performance optimization. Because it takes
	// large jumps and gives up after M attempts per candidate latency it
	// may be slightly MORE conservative than exhaustive stepping, but it
	// must never report a higher (more optimistic) tolerable latency,
	// and it must use far fewer constraint evaluations.
	pFast := DefaultParams()
	pNaive := DefaultParams()
	pNaive.NaiveSearch = true
	for _, v := range []float64{10, 20, 30} {
		for _, dist := range []float64{40, 80, 140} {
			for _, va := range []float64{0, 10, 25} {
				traj := straightTraj(dist, 0, va, 0, pFast.Horizon)
				a := TolerableLatency(egoAt(v, 0), traj, carDims, 0.033, pFast)
				b := TolerableLatency(egoAt(v, 0), traj, carDims, 0.033, pNaive)
				la, lb := latencyOrZero(a), latencyOrZero(b)
				if la > lb+1e-9 {
					t.Errorf("v=%v dist=%v va=%v: accelerated (%v) more optimistic than naive (%v)", v, dist, va, la, lb)
				}
				if lb-la > 0.15+1e-9 {
					t.Errorf("v=%v dist=%v va=%v: accelerated (%v) over-conservative vs naive (%v)", v, dist, va, la, lb)
				}
				if a.Evals > b.Evals {
					t.Errorf("v=%v dist=%v va=%v: accelerated used more evals (%d) than naive (%d)", v, dist, va, a.Evals, b.Evals)
				}
			}
		}
	}
}

func TestLatencyGridQuantized(t *testing.T) {
	// Results land on the δl grid.
	p := DefaultParams()
	res := TolerableLatency(egoAt(25, 0), staticTraj(120, 0, p.Horizon), carDims, 0.033, p)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	steps := (p.LMax - res.Latency) / p.DeltaL
	if math.Abs(steps-math.Round(steps)) > 1e-6 {
		t.Errorf("latency %v not on the grid", res.Latency)
	}
}

func TestEmptyTrajectory(t *testing.T) {
	p := DefaultParams()
	res := TolerableLatency(egoAt(25, 0), world.Trajectory{}, carDims, 0.033, p)
	if !res.NoThreat || res.Latency != p.LMax {
		t.Errorf("empty trajectory: %+v", res)
	}
}

func TestStoppedEgoAlwaysSafe(t *testing.T) {
	p := DefaultParams()
	f := func(rawDist, rawVa float64) bool {
		if math.IsNaN(rawDist) || math.IsNaN(rawVa) {
			return true
		}
		dist := 6 + math.Mod(math.Abs(rawDist), 200)
		va := math.Mod(math.Abs(rawVa), 30)
		res := TolerableLatency(egoAt(0, 0), straightTraj(dist, 0, va, 0, p.Horizon), carDims, 0.033, p)
		return res.Feasible && res.Latency == p.LMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFPRReciprocal(t *testing.T) {
	r := LatencyResult{Latency: 0.2, Feasible: true}
	if got := r.FPR(); math.Abs(got-5) > 1e-9 {
		t.Errorf("FPR = %v", got)
	}
	bad := LatencyResult{Feasible: false}
	if !math.IsInf(bad.FPR(), 1) {
		t.Errorf("infeasible FPR = %v", bad.FPR())
	}
}

func TestTravelAtConstantAccel(t *testing.T) {
	d, v := travelAtConstantAccel(10, 0, 2)
	if d != 20 || v != 10 {
		t.Errorf("constant: %v, %v", d, v)
	}
	d, v = travelAtConstantAccel(10, -5, 4) // stops at t=2 after 10 m
	if math.Abs(d-10) > 1e-9 || v != 0 {
		t.Errorf("stopping: %v, %v", d, v)
	}
	d, v = travelAtConstantAccel(10, 2, 1)
	if math.Abs(d-11) > 1e-9 || math.Abs(v-12) > 1e-9 {
		t.Errorf("accelerating: %v, %v", d, v)
	}
	d, v = travelAtConstantAccel(10, 1, 0)
	if d != 0 || v != 10 {
		t.Errorf("zero time: %v, %v", d, v)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.C1 = 0 },
		func(p *Params) { p.C2 = 2 },
		func(p *Params) { p.C3 = -1 },
		func(p *Params) { p.C4 = 0.5 },
		func(p *Params) { p.K = -1 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.LMin = 0 },
		func(p *Params) { p.LMax = 0.01 },
		func(p *Params) { p.DeltaL = 0 },
		func(p *Params) { p.Horizon = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestParamsSteps(t *testing.T) {
	p := DefaultParams()
	if got := p.Steps(); got != 30 {
		t.Errorf("Steps = %d, want 30 (1s / 33ms)", got)
	}
	p.DeltaL = 0
	if got := p.Steps(); got != 1 {
		t.Errorf("Steps with zero DeltaL = %d", got)
	}
}

func TestBrakeDecel(t *testing.T) {
	p := DefaultParams()
	if got := p.brakeDecel(0); got != p.C3 {
		t.Errorf("cruising: %v", got)
	}
	if got := p.brakeDecel(2); got != p.C3 {
		t.Errorf("accelerating: %v", got)
	}
	if got := p.brakeDecel(-6); math.Abs(got-6.6) > 1e-9 {
		t.Errorf("braking at 6: %v, want 6.6", got)
	}
	if got := p.brakeDecel(-1); got != p.C3 {
		t.Errorf("light braking: %v, want C3", got)
	}
}
