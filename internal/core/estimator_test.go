package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/predict"
	"repro/internal/sensor"
	"repro/internal/world"
)

func agent(id string, x, y, speed float64) world.Agent {
	return world.Agent{
		ID:     id,
		Pose:   geom.Pose{Pos: geom.V(x, y), Heading: 0},
		Speed:  speed,
		Length: 4.6,
		Width:  1.9,
	}
}

func TestEstimateSnapshotCameraAssignment(t *testing.T) {
	e := NewEstimator()
	ego := agent(world.EgoID, 0, 0, 25)
	// A threatening static obstacle ahead and a harmless parallel actor
	// to the left.
	obstacle := agent("obs", 90, 0, 0)
	obstacle.Static = true
	side := agent("side", 2, 3.5, 25)
	actors := []world.Agent{obstacle, side}

	trajs := map[string][]world.Trajectory{
		"obs":  {staticTraj(90, 0, e.Params.Horizon)},
		"side": {straightTraj(2, 3.5, 25, 0, e.Params.Horizon)},
	}
	est := e.EstimateSnapshot(0, ego, actors, trajs, 1.0/30)

	// The front camera carries the obstacle's requirement; the side
	// cameras see only the harmless actor (left) or nothing (right) and
	// sit at the idle floor of 1 FPR.
	if est.CameraFPR[sensor.Front120] <= 1 {
		t.Errorf("front FPR = %v, want > 1", est.CameraFPR[sensor.Front120])
	}
	if est.CameraFPR[sensor.Left] != 1 {
		t.Errorf("left FPR = %v, want 1", est.CameraFPR[sensor.Left])
	}
	if est.CameraFPR[sensor.Right] != 1 {
		t.Errorf("right FPR = %v, want 1", est.CameraFPR[sensor.Right])
	}
	if est.CameraLatency[sensor.Left] != e.Params.LMax {
		t.Errorf("left latency = %v, want LMax", est.CameraLatency[sensor.Left])
	}
	if est.Evals == 0 {
		t.Error("no evals recorded")
	}
}

func TestEstimateSnapshotEmptyScene(t *testing.T) {
	e := NewEstimator()
	ego := agent(world.EgoID, 0, 0, 25)
	est := e.EstimateSnapshot(0, ego, nil, nil, 1.0/30)
	for _, cam := range sensor.AnalyzedCameras() {
		if est.CameraFPR[cam] != 1 {
			t.Errorf("camera %s FPR = %v, want 1 (idle)", cam, est.CameraFPR[cam])
		}
	}
	if est.SumFPR(sensor.AnalyzedCameras()) != 3 {
		t.Errorf("sum = %v, want 3", est.SumFPR(sensor.AnalyzedCameras()))
	}
}

func TestEstimateInfeasibleActorSaturatesCamera(t *testing.T) {
	e := NewEstimator()
	ego := agent(world.EgoID, 0, 0, 35)
	wall := agent("wall", 18, 0, 0)
	wall.Static = true
	trajs := map[string][]world.Trajectory{"wall": {staticTraj(18, 0, e.Params.Horizon)}}
	est := e.EstimateSnapshot(0, ego, []world.Agent{wall}, trajs, 1.0/30)
	// Unavoidable collision: the camera demand saturates at 1/LMin.
	want := 1 / e.Params.LMin
	if math.Abs(est.CameraFPR[sensor.Front120]-want) > 1e-6 {
		t.Errorf("front FPR = %v, want %v", est.CameraFPR[sensor.Front120], want)
	}
	if len(est.Actors) != 1 || est.Actors[0].Feasible {
		t.Errorf("actors = %+v", est.Actors)
	}
}

func TestEstimateMaxAndSum(t *testing.T) {
	e := NewEstimator()
	ego := agent(world.EgoID, 0, 0, 25)
	obstacle := agent("obs", 100, 0, 0)
	obstacle.Static = true
	trajs := map[string][]world.Trajectory{"obs": {staticTraj(100, 0, e.Params.Horizon)}}
	est := e.EstimateSnapshot(0, ego, []world.Agent{obstacle}, trajs, 1.0/30)
	cams := sensor.AnalyzedCameras()
	front := est.CameraFPR[sensor.Front120]
	if got := est.MaxFPR(cams); got != front {
		t.Errorf("MaxFPR = %v, want %v", got, front)
	}
	if got := est.SumFPR(cams); math.Abs(got-(front+2)) > 1e-9 {
		t.Errorf("SumFPR = %v, want %v", got, front+2)
	}
}

func TestEstimateOnlineUsesPredictor(t *testing.T) {
	e := NewEstimator()
	ego := agent(world.EgoID, 0, 0, 30)
	lead := agent("lead", 45, 0, 30)
	lead.Accel = -5 // perceived as braking
	pred := predict.MultiHypothesis{Horizon: e.Params.Horizon, Dt: 0.1}
	est := e.EstimateOnline(0, ego, []world.Agent{lead}, pred, 1.0/30)
	if len(est.Actors) != 1 {
		t.Fatalf("actors = %d", len(est.Actors))
	}
	if est.Actors[0].TrajCount < 2 {
		t.Errorf("trajectory count = %d, want multi-hypothesis", est.Actors[0].TrajCount)
	}
	// A braking lead 45 m ahead at 30 m/s demands a real rate.
	if est.CameraFPR[sensor.Front120] <= 1 {
		t.Errorf("front FPR = %v, want > 1", est.CameraFPR[sensor.Front120])
	}
}

func TestActorImportanceOrdering(t *testing.T) {
	est := Estimate{
		Actors: []ActorEstimate{
			{ActorID: "far", Latency: 1.0, Feasible: true},
			{ActorID: "near", Latency: 0.2, Feasible: true},
			{ActorID: "doomed", Feasible: false},
		},
	}
	imp := ActorImportance(est)
	if !(imp["near"] > imp["far"]) {
		t.Errorf("importance near (%v) should exceed far (%v)", imp["near"], imp["far"])
	}
	if !math.IsInf(imp["doomed"], 1) {
		t.Errorf("infeasible importance = %v", imp["doomed"])
	}
}

func TestGroundTruthTrajs(t *testing.T) {
	futures := map[string]world.Trajectory{
		"a": {ActorID: "a", Prob: 0.5, Points: []world.TrajectoryPoint{{T: 0}, {T: 1}}},
	}
	trajs := GroundTruthTrajs(futures)
	if len(trajs["a"]) != 1 {
		t.Fatalf("set size = %d", len(trajs["a"]))
	}
	if trajs["a"][0].Prob != 1 {
		t.Errorf("prob = %v, want 1 (ground truth)", trajs["a"][0].Prob)
	}
}

func TestEstimatorCustomCameraSubset(t *testing.T) {
	e := NewEstimator()
	e.Cameras = []string{sensor.Front120}
	ego := agent(world.EgoID, 0, 0, 25)
	est := e.EstimateSnapshot(0, ego, nil, nil, 1.0/30)
	if len(est.CameraFPR) != 1 {
		t.Errorf("cameras reported = %d", len(est.CameraFPR))
	}
	e.Cameras = nil
	est = e.EstimateSnapshot(0, ego, nil, nil, 1.0/30)
	if len(est.CameraFPR) != len(e.Rig) {
		t.Errorf("nil subset: cameras reported = %d, want %d", len(est.CameraFPR), len(e.Rig))
	}
}
