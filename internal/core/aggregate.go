package core

import (
	"cmp"
	"math"
	"slices"
)

// Aggregation selects how per-trajectory latencies collapse into one
// per-actor latency (Eq. 4). The paper discusses three choices:
// "maximum provides the most pessimistic estimate" (the largest FPR,
// i.e. the smallest latency), "average gives more weight to the most
// likely future trajectory", and an nth percentile that "allows the ego
// to be cautious while being not too pessimistic".
type Aggregation int

const (
	// AggPessimistic takes the smallest tolerable latency (the largest
	// FPR requirement) across trajectories.
	AggPessimistic Aggregation = iota
	// AggMean takes the probability-weighted mean latency.
	AggMean
	// AggPercentile takes the latency whose implied FPR requirement is
	// at the configured percentile of the probability-weighted FPR
	// distribution (Eq. 4 with n = Percentile).
	AggPercentile
)

// AggregateOptions configures Aggregate.
type AggregateOptions struct {
	Mode       Aggregation
	Percentile float64 // used by AggPercentile, e.g. 99
}

// Aggregate collapses per-trajectory results into a single per-actor
// latency. Infeasible trajectories act as zero-latency (infinite-rate)
// members, so any infeasible trajectory forces a pessimistic result
// under AggPessimistic. If every trajectory is infeasible the result is
// infeasible. Probabilities are taken from the trajectories' weights and
// renormalized.
func Aggregate(results []LatencyResult, probs []float64, opt AggregateOptions) LatencyResult {
	return aggregateScratch(results, probs, opt, nil)
}

// aggregateScratch is Aggregate with optional reusable sort storage
// for the percentile mode; a nil scratch allocates as before.
func aggregateScratch(results []LatencyResult, probs []float64, opt AggregateOptions, scratch *[]aggEntry) LatencyResult {
	if len(results) == 0 {
		return LatencyResult{}
	}
	if len(results) == 1 {
		return results[0]
	}

	total := 0.0
	for i := range results {
		p := weightOf(probs, i)
		total += p
	}
	if total <= 0 {
		total = float64(len(results))
	}

	evals := 0
	feasibleAny := false
	noThreatAll := true
	for _, r := range results {
		evals += r.Evals
		if r.Feasible {
			feasibleAny = true
		}
		if !r.NoThreat {
			noThreatAll = false
		}
	}
	if !feasibleAny {
		return LatencyResult{Feasible: false, Evals: evals}
	}

	out := LatencyResult{Feasible: true, NoThreat: noThreatAll, Evals: evals}
	switch opt.Mode {
	case AggMean:
		sum := 0.0
		for i, r := range results {
			sum += weightOf(probs, i) / total * latencyOrZero(r)
		}
		out.Latency = sum
	case AggPercentile:
		out.Latency = percentileLatency(results, probs, total, opt.Percentile, scratch)
	default: // AggPessimistic
		min := math.Inf(1)
		for _, r := range results {
			l := latencyOrZero(r)
			if l < min {
				min = l
			}
		}
		out.Latency = min
		if min == 0 {
			// An infeasible member dominates the pessimistic view.
			out.Feasible = false
		}
	}
	return out
}

func weightOf(probs []float64, i int) float64 {
	if i < len(probs) && probs[i] > 0 {
		return probs[i]
	}
	return 1
}

func latencyOrZero(r LatencyResult) float64 {
	if !r.Feasible {
		return 0
	}
	return r.Latency
}

// aggEntry is one (latency, weight) member of the percentile sort.
type aggEntry struct {
	l float64
	w float64
}

// percentileLatency returns the latency at the pct-th percentile of the
// FPR-requirement distribution: sort by ascending latency (descending
// requirement) and walk the cumulative probability until 100−pct has
// been discarded. pct = 100 reproduces the pessimistic minimum latency;
// pct = 0 the maximum. scratch, when non-nil, supplies reusable sort
// storage so the hot serving path aggregates without allocating.
func percentileLatency(results []LatencyResult, probs []float64, total, pct float64, scratch *[]aggEntry) float64 {
	var entries []aggEntry
	if scratch != nil {
		entries = (*scratch)[:0]
	} else {
		entries = make([]aggEntry, 0, len(results))
	}
	for i, r := range results {
		entries = append(entries, aggEntry{l: latencyOrZero(r), w: weightOf(probs, i) / total})
	}
	if scratch != nil {
		*scratch = entries
	}
	slices.SortFunc(entries, func(a, b aggEntry) int { return cmp.Compare(a.l, b.l) })
	discard := (100 - pct) / 100
	acc := 0.0
	for _, e := range entries {
		acc += e.w
		if acc >= discard-1e-12 {
			return e.l
		}
	}
	return entries[len(entries)-1].l
}
