package core

import "fmt"

// Uncertainty extends the Zhuyi model with perception uncertainty — the
// first of the paper's §5 future-work directions: "extending the Zhuyi
// model to consider perception uncertainty to facilitate trading-off
// perception model accuracy for performance."
//
// A cheaper (quantized/pruned) perception model detects objects with a
// larger positional error and a longer effective confirmation, but
// sustains a higher frame rate on the same silicon. Uncertainty folds
// the accuracy side of that trade into the latency search:
//
//   - PosSigma shrinks the usable gap: the search subtracts
//     SigmaMargin·PosSigma from s_n (a k-sigma localization margin);
//   - SpeedSigma tightens the velocity constraint the same way;
//   - ConfirmFactor scales the confirmation depth K (a less accurate
//     detector needs more frames to confirm reliably).
type Uncertainty struct {
	PosSigma      float64 // 1-sigma longitudinal position error, m
	SpeedSigma    float64 // 1-sigma actor speed error, m/s
	SigmaMargin   float64 // how many sigmas of margin to hold (default 2)
	ConfirmFactor float64 // multiplier on K (default 1)
}

// Validate reports configuration errors.
func (u Uncertainty) Validate() error {
	if u.PosSigma < 0 || u.SpeedSigma < 0 {
		return fmt.Errorf("core: negative uncertainty sigma")
	}
	if u.SigmaMargin < 0 {
		return fmt.Errorf("core: negative sigma margin")
	}
	if u.ConfirmFactor < 0 {
		return fmt.Errorf("core: negative confirm factor")
	}
	return nil
}

// Apply returns parameters adjusted for the uncertainty: the lateral
// threat margin and the distance/velocity constraints absorb the
// localization error, and K grows with the confirmation factor. The
// returned Params remain usable with every estimator entry point.
func (u Uncertainty) Apply(p Params) Params {
	margin := u.SigmaMargin
	if margin == 0 {
		margin = 2
	}
	// The distance constraint d_e1+d_e2 <= C1·s_n tightens by shrinking
	// the effective C1: with s_n reduced by margin·PosSigma at a typical
	// engagement range, folding the reduction into the conservatism
	// factor keeps the search structure unchanged. We instead expose it
	// exactly through the dedicated fields below.
	out := p
	out.DistanceMargin = margin * u.PosSigma
	out.SpeedMargin = margin * u.SpeedSigma
	if u.ConfirmFactor > 0 {
		k := float64(p.K) * u.ConfirmFactor
		out.K = int(k + 0.5)
	}
	out.LateralMargin = p.LateralMargin + margin*u.PosSigma/2
	return out
}

// AccuracyOperatingPoint describes one perception model variant in an
// accuracy-for-throughput trade study: its measurement quality and the
// highest frame rate the compute budget sustains.
type AccuracyOperatingPoint struct {
	Name        string
	Uncertainty Uncertainty
	MaxFPR      float64 // sustainable per-camera rate under the budget
}

// FeasibleAt reports whether the operating point can satisfy a required
// FPR computed under its own uncertainty-adjusted parameters.
func (op AccuracyOperatingPoint) FeasibleAt(required float64) bool {
	return required <= op.MaxFPR
}
