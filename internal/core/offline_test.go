package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/world"
)

// syntheticTrace builds a trace of an ego approaching a static obstacle
// with a harmless parallel actor alongside: dt = 10 ms, 12 s long.
func syntheticTrace() *trace.Trace {
	tr := &trace.Trace{Meta: trace.Meta{Scenario: "synthetic", FPR: 10, Dt: 0.01, Cameras: sensor.AnalyzedCameras()}}
	egoV := 15.0
	for i := 0; i <= 1200; i++ {
		t := float64(i) * 0.01
		egoX := egoV * t
		tr.Rows = append(tr.Rows, trace.Row{
			Time: t,
			Ego: world.Agent{
				ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(egoX, 0)},
				Speed: egoV, Length: 4.6, Width: 1.9,
			},
			Actors: []world.Agent{
				{ID: "obstacle", Pose: geom.Pose{Pos: geom.V(260, 0)}, Length: 4, Width: 1.9, Static: true},
				{ID: "parallel", Pose: geom.Pose{Pos: geom.V(egoX+5, 3.5)}, Speed: egoV, Length: 4.6, Width: 1.9},
			},
			CmdAccel: 0,
		})
	}
	return tr
}

func TestEvaluateTraceSeries(t *testing.T) {
	e := NewEstimator()
	off, err := e.EvaluateTrace(syntheticTrace(), OfflineOptions{EvalEvery: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Points) < 50 {
		t.Fatalf("points = %d", len(off.Points))
	}
	if off.Scenario != "synthetic" || off.RunFPR != 10 {
		t.Errorf("meta = %q %v", off.Scenario, off.RunFPR)
	}

	// The front requirement tightens as the ego nears the obstacle: the
	// front FPR series is (weakly) increasing over time.
	times, lats := off.CameraSeries(sensor.Front120)
	if len(times) != len(off.Points) {
		t.Fatalf("series length mismatch")
	}
	first, last := lats[0], lats[len(lats)-1]
	if !(last < first) {
		t.Errorf("front latency did not tighten: %v -> %v", first, last)
	}

	// The parallel actor keeps the left camera idle.
	_, left := off.CameraSeries(sensor.Left)
	for i, l := range left {
		if l < e.Params.LMax {
			t.Fatalf("left camera tightened at point %d: %v", i, l)
		}
	}

	// Aggregates.
	if off.MaxFPR() <= 1 {
		t.Errorf("max FPR = %v", off.MaxFPR())
	}
	per := off.MaxCameraFPR()
	if per[sensor.Front120] != off.MaxFPR() {
		t.Errorf("front camera max %v != overall max %v", per[sensor.Front120], off.MaxFPR())
	}
	if off.MaxSumFPR() != off.MaxFPR()+2 {
		t.Errorf("max sum %v != front max + 2 idle cameras", off.MaxSumFPR())
	}

	// Accel series mirrors the recorded ego acceleration.
	at, accels := off.AccelSeries()
	if len(at) != len(off.Points) {
		t.Fatal("accel series length mismatch")
	}
	for _, a := range accels {
		if a != 0 {
			t.Fatalf("accel = %v, trace recorded 0", a)
		}
	}
}

func TestEvaluateTraceEmpty(t *testing.T) {
	e := NewEstimator()
	if _, err := e.EvaluateTrace(&trace.Trace{}, OfflineOptions{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestEvaluateTraceDefaultsApplied(t *testing.T) {
	e := NewEstimator()
	off, err := e.EvaluateTrace(syntheticTrace(), OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Default EvalEvery = 0.1 s over 12 s: ~121 points.
	if len(off.Points) < 100 || len(off.Points) > 130 {
		t.Errorf("default sampling points = %d", len(off.Points))
	}
}

func TestEvaluateTraceL0FromMeta(t *testing.T) {
	// The run FPR feeds l0 = 1/FPR: a slower recorded system tolerates
	// higher latency (α = K(l − l0) shrinks), so estimates are lower.
	tr := syntheticTrace()
	e := NewEstimator()

	tr.Meta.FPR = 30
	fast, err := e.EvaluateTrace(tr, OfflineOptions{EvalEvery: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tr.Meta.FPR = 2
	slow, err := e.EvaluateTrace(tr, OfflineOptions{EvalEvery: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if slow.MaxFPR() > fast.MaxFPR()+1e-9 {
		t.Errorf("slow-run estimates (%v) exceed fast-run (%v)", slow.MaxFPR(), fast.MaxFPR())
	}
}

func TestOfflineResultEmptyAggregates(t *testing.T) {
	r := &OfflineResult{}
	if r.MaxFPR() != 0 || r.MaxSumFPR() != 0 {
		t.Error("empty result aggregates nonzero")
	}
	if got := r.MaxCameraFPR(); len(got) != 0 {
		t.Errorf("empty per-camera map: %v", got)
	}
	times, lats := r.CameraSeries("front120")
	if len(times) != 0 || len(lats) != 0 {
		t.Error("empty series nonempty")
	}
}

func TestEvaluateTraceMidSceneActorAppearance(t *testing.T) {
	// An actor that only exists in later rows must still get a future
	// trajectory from its first row onward.
	tr := syntheticTrace()
	for i := 600; i < len(tr.Rows); i++ {
		t := tr.Rows[i].Time
		tr.Rows[i].Actors = append(tr.Rows[i].Actors, world.Agent{
			ID:   "late",
			Pose: geom.Pose{Pos: geom.V(15*t+40, 0)}, Speed: 15, Length: 4.6, Width: 1.9,
		})
	}
	e := NewEstimator()
	off, err := e.EvaluateTrace(tr, OfflineOptions{EvalEvery: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(off.MaxFPR()) {
		t.Error("NaN estimate with mid-scene appearance")
	}
}
