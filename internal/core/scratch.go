package core

import (
	"slices"
	"strings"

	"repro/internal/predict"
	"repro/internal/world"
)

// EstimateScratch holds every piece of transient storage one Zhuyi
// evaluation needs: predicted trajectories and their sample points,
// per-trajectory latency results, per-actor latencies/threat flags,
// the actor index, and the camera-sweep and percentile-sort scratch.
// Reusing one scratch across calls makes EstimateOnlineInto free of
// heap allocation once steady-state capacity is reached — the
// serving tier keeps one per pooled request context. The zero value is
// ready to use. A scratch must not be used concurrently.
type EstimateScratch struct {
	trajs     []world.Trajectory
	points    []world.TrajectoryPoint
	actorTraj [][2]int // per-actor [start, end) range into trajs
	results   []LatencyResult
	probs     []float64
	latencies []float64 // per actor, indexed like the wm slice
	threats   []bool
	index     map[string]int // actor ID -> wm index (last occurrence wins)
	seen      []string
	agg       []aggEntry
}

// EstimateOnlineInto is EstimateOnline writing into dst using sc for
// every intermediate: predictions come from predict.AppendForAgent and
// dst's maps and slices are cleared and refilled in place. dst must
// not alias live data the caller still needs; its previous contents
// are overwritten. The result is numerically identical to
// EstimateOnline on the same inputs.
func (e *Estimator) EstimateOnlineInto(dst *Estimate, sc *EstimateScratch, now float64, ego world.Agent, wm []world.Agent, pred predict.Predictor, l0 float64) {
	sc.trajs = sc.trajs[:0]
	sc.points = sc.points[:0]
	sc.actorTraj = sc.actorTraj[:0]
	for _, a := range wm {
		start := len(sc.trajs)
		sc.trajs, sc.points = predict.AppendForAgent(pred, sc.trajs, sc.points, a, now, e.Params.Horizon, 0.1)
		sc.actorTraj = append(sc.actorTraj, [2]int{start, len(sc.trajs)})
	}
	e.estimateInto(dst, sc, now, ego, wm, l0)
}

// estimateInto is the single implementation behind EstimateSnapshot
// and EstimateOnlineInto: the per-actor latency aggregation and the
// Eq. 5 camera sweep, with sc.trajs/sc.actorTraj already populated.
func (e *Estimator) estimateInto(dst *Estimate, sc *EstimateScratch, now float64, ego world.Agent, actors []world.Agent, l0 float64) {
	cams := e.cameras()
	dst.Time = now
	dst.Evals = 0
	dst.Actors = dst.Actors[:0]
	if dst.CameraLatency == nil {
		dst.CameraLatency = make(map[string]float64, len(cams))
		dst.CameraFPR = make(map[string]float64, len(cams))
		dst.CameraThreat = make(map[string]bool, len(cams))
	} else {
		clear(dst.CameraLatency)
		clear(dst.CameraFPR)
		clear(dst.CameraThreat)
	}
	egoState := EgoFromAgent(ego)

	if sc.index == nil {
		sc.index = make(map[string]int, len(actors))
	} else {
		clear(sc.index)
	}
	sc.latencies = sc.latencies[:0]
	sc.threats = sc.threats[:0]
	for ai, a := range actors {
		set := sc.trajs[sc.actorTraj[ai][0]:sc.actorTraj[ai][1]]
		sc.results = sc.results[:0]
		sc.probs = sc.probs[:0]
		for _, tr := range set {
			sc.results = append(sc.results, TolerableLatency(egoState, tr, [2]float64{a.Length, a.Width}, l0, e.Params))
			sc.probs = append(sc.probs, tr.Prob)
		}
		agg := aggregateScratch(sc.results, sc.probs, e.Agg, &sc.agg)
		ae := ActorEstimate{
			ActorID:   a.ID,
			Latency:   agg.Latency,
			Feasible:  agg.Feasible,
			NoThreat:  agg.NoThreat,
			Evals:     agg.Evals,
			TrajCount: len(set),
		}
		if !agg.Feasible {
			ae.Latency = 0
		}
		dst.Actors = append(dst.Actors, ae)
		dst.Evals += agg.Evals
		lat := ae.Latency
		if !agg.Feasible {
			lat = e.Params.LMin // demand the maximum representable rate
		}
		sc.latencies = append(sc.latencies, lat)
		sc.threats = append(sc.threats, !agg.NoThreat)
		sc.index[a.ID] = ai
	}
	slices.SortFunc(dst.Actors, func(a, b ActorEstimate) int { return strings.Compare(a.ActorID, b.ActorID) })

	// Eq. 5: per camera, the binding actor is the one with the smallest
	// tolerable latency among those in the camera's FOV. One scratch
	// sweep per camera over the pre-filtered cone replaces the old
	// all-cameras VisibleSet map.
	for _, cam := range cams {
		l := e.Params.LMax // empty FOV: idle floor (FPR 1)
		threat := false
		sc.seen = sc.seen[:0]
		if c, ok := e.Rig.Camera(cam); ok {
			sc.seen = c.AppendSeenIDs(sc.seen, ego.Pose, actors)
		}
		for _, id := range sc.seen {
			if ai, ok := sc.index[id]; ok {
				if al := sc.latencies[ai]; al < l {
					l = al
				}
				if sc.threats[ai] {
					threat = true
				}
			}
		}
		if l < e.Params.LMin {
			l = e.Params.LMin
		}
		dst.CameraLatency[cam] = l
		dst.CameraFPR[cam] = 1 / l
		dst.CameraThreat[cam] = threat
	}
}
