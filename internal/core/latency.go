package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/world"
)

// EgoState is the ego information the Zhuyi model consumes at t0: the
// current pose, longitudinal speed and acceleration, and the footprint
// dimensions used for bumper-to-bumper gap computation.
type EgoState struct {
	Pose   geom.Pose
	Speed  float64 // m/s
	Accel  float64 // m/s², negative = braking
	Length float64 // m
	Width  float64 // m
}

// EgoFromAgent converts a world agent.
func EgoFromAgent(a world.Agent) EgoState {
	return EgoState{Pose: a.Pose, Speed: a.Speed, Accel: a.Accel, Length: a.Length, Width: a.Width}
}

// LatencyResult is the outcome of the per-trajectory tolerable-latency
// search (§2.1).
type LatencyResult struct {
	Latency  float64 // maximum tolerable latency, s (LMax if no threat)
	Feasible bool    // false: even LMin admits a collision (unavoidable)
	NoThreat bool    // trajectory never conflicts with the ego corridor
	TN       float64 // resolution time t_n at which both constraints held, s from t0
	Evals    int     // constraint evaluations performed (compute accounting)
}

// FPR returns the frame processing rate implied by the latency (Eq. 5's
// per-actor reciprocal). Infeasible results return +Inf.
func (r LatencyResult) FPR() float64 {
	if !r.Feasible || r.Latency <= 0 {
		return math.Inf(1)
	}
	return 1 / r.Latency
}

// actorSample is the actor state at a candidate t_n, expressed in the
// ego frame at t0.
type actorSample struct {
	long  float64 // longitudinal position of the actor center, m ahead of ego center
	lat   float64 // lateral offset, m
	speed float64 // actor velocity projected on the ego heading, clamped >= 0
	width float64
	lng   float64 // actor length
}

// trajSampler evaluates a trajectory at candidate resolution times. A
// plain struct (not a closure) so the latency search keeps it on the
// stack — the serving tier's pooled /v1/rate path requires the whole
// search to run without heap allocation.
type trajSampler struct {
	traj  *world.Trajectory
	ego   *EgoState
	t0    float64
	width float64
	lng   float64
}

func (s *trajSampler) sample(tn float64) actorSample {
	pt := s.traj.At(s.t0 + tn)
	local := s.ego.Pose.ToLocal(pt.Pos)
	vAlong := geom.FromAngle(pt.Heading).Scale(pt.Speed).Dot(s.ego.Pose.Forward())
	if vAlong < 0 {
		vAlong = 0
	}
	return actorSample{long: local.X, lat: local.Y, speed: vAlong, width: s.width, lng: s.lng}
}

// TolerableLatency runs the paper's §2.1 search: the largest candidate
// latency l (descending from LMax by DeltaL) for which some resolution
// time t_n ≥ t_r = l + α exists where both Eq. 1 (distance) and Eq. 2
// (velocity) hold. l0 is the system's current processing latency.
//
// A trajectory that never enters the ego's forward corridor within the
// horizon cannot collide, so it returns LMax with NoThreat set — this is
// the "determine if a collision is possible" step of §2.1 and is what
// keeps harmless adjacent-lane actors from demanding high rates.
func TolerableLatency(ego EgoState, traj world.Trajectory, actorDims [2]float64, l0 float64, p Params) LatencyResult {
	res := LatencyResult{}
	if len(traj.Points) == 0 {
		return LatencyResult{Latency: p.LMax, Feasible: true, NoThreat: true}
	}
	t0 := traj.Start()
	length, width := actorDims[0], actorDims[1]

	smp := trajSampler{traj: &traj, ego: &ego, t0: t0, width: width, lng: length}

	// Threat screening: does the trajectory ever occupy the ego's
	// forward corridor within the horizon?
	conflictStart, threat := findConflict(&smp, ego, p)
	if !threat {
		return LatencyResult{Latency: p.LMax, Feasible: true, NoThreat: true}
	}

	ab := p.brakeDecel(ego.Accel)
	for l := p.LMax; l >= p.LMin-1e-9; l -= p.DeltaL {
		tr := l + p.alpha(l, l0)
		if tn, evals, ok := resolveTN(ego, &smp, tr, conflictStart, ab, p); ok {
			res.Evals += evals
			res.Latency = l
			res.Feasible = true
			res.TN = tn
			return res
		} else {
			res.Evals += evals
		}
	}
	res.Feasible = false
	res.Latency = 0
	return res
}

// findConflict scans the trajectory for the earliest time the actor
// occupies the ego's forward corridor. Actors currently behind the ego
// are never frontal threats: the hard-braking safety procedure (§2.1)
// cannot prevent rear-end collisions, and responsibility for them rests
// with the rear actor (the RSS convention); the paper's scenarios with
// rear actors accordingly report the idle estimate of 1 FPR.
func findConflict(smp *trajSampler, ego EgoState, p Params) (float64, bool) {
	s0 := smp.sample(0)
	if s0.long < -(ego.Length+s0.lng)/2 {
		return 0, false
	}
	const scanDT = 0.1
	for tn := 0.0; tn <= p.Horizon; tn += scanDT {
		s := smp.sample(tn)
		if math.Abs(s.lat) > (ego.Width+s.width)/2+p.LateralMargin {
			continue
		}
		if s.long < -(ego.Length+s.lng)/2 {
			continue // fully behind the ego
		}
		return tn, true
	}
	return 0, false
}

// resolveTN searches for a resolution time t_n ≥ max(t_r, conflictStart)
// satisfying both constraints, using the Eq.-3 accelerated stepping (or
// naive stepping when configured). It returns the t_n found, the number
// of constraint evaluations, and whether the search succeeded.
//
// The search advances t_n only while the velocity constraint is unmet
// (the ego is still shedding speed toward C2·v_an). The first t_n where
// the velocity constraint holds is the closest approach: if the distance
// constraint fails there, the candidate latency admits an overlap and is
// rejected rather than re-checked at later, looser times — a receding
// actor would otherwise reopen the distance budget after a transient
// collision and produce a false pass.
func resolveTN(ego EgoState, smp *trajSampler, tr, conflictStart, ab float64, p Params) (float64, int, bool) {
	tn := math.Max(tr, conflictStart)
	iters := p.M
	if p.NaiveSearch {
		// Naive mode steps by NaiveDT; allow enough iterations to sweep
		// the whole horizon, as the paper's unoptimized variant would.
		iters = int(p.Horizon/p.NaiveDT) + 1
	}
	evals := 0
	for m := 0; m < iters; m++ {
		if tn > p.Horizon {
			return 0, evals, false
		}
		evals++
		ok, gapD, gapV, vEN := checkConstraints(ego, smp.sample(tn), tr, tn, ab, p)
		if ok {
			return tn, evals, true
		}
		if gapV <= 1e-9 {
			// Velocity satisfied but distance violated at the closest
			// approach: this latency admits a collision.
			return 0, evals, false
		}
		var step float64
		if p.NaiveSearch {
			step = p.NaiveDT
		} else {
			step = eq3Step(gapD, gapV, vEN, ab, p)
			// Don't jump past the horizon while a feasible edge check
			// remains.
			if tn+step > p.Horizon && tn < p.Horizon {
				step = p.Horizon - tn
			}
		}
		tn += step
	}
	return 0, evals, false
}

// checkConstraints evaluates Eq. 1 and Eq. 2 at t_n for reaction time
// t_r, returning the distance margin gapD = C1·s_n − d_e1 − d_e2 (≥ 0 is
// satisfied), the velocity excess gapV = v_en − C2·v_an (≤ 0 is
// satisfied), and v_en.
func checkConstraints(ego EgoState, a actorSample, tr, tn, ab float64, p Params) (ok bool, gapD, gapV, vEN float64) {
	de1, vETR := travelAtConstantAccel(ego.Speed, ego.Accel, tr)

	tb := tn - tr
	if tb < 0 {
		tb = 0
	}
	vEN = vETR - ab*tb
	if vEN < 0 {
		vEN = 0
	}
	de2 := (vETR*vETR - vEN*vEN) / (2 * ab)

	sn := a.long - (ego.Length+a.lng)/2 - p.DistanceMargin
	vAN := a.speed - p.SpeedMargin
	if vAN < 0 {
		vAN = 0
	}
	gapD = p.C1*sn - de1 - de2
	gapV = vEN - p.C2*vAN
	ok = gapD >= 0 && gapV <= 1e-9
	return ok, gapD, gapV, vEN
}

// travelAtConstantAccel integrates distance and final speed over t
// seconds with the ego's current acceleration held (per §2.1: "During
// t_r, we assume the ego's acceleration is unchanged"), clamping at a
// full stop.
func travelAtConstantAccel(v0, a, t float64) (dist, vEnd float64) {
	if t <= 0 {
		return 0, v0
	}
	if a < 0 {
		tStop := v0 / -a
		if t >= tStop {
			return v0 * tStop / 2, 0
		}
	}
	vEnd = v0 + a*t
	if vEnd < 0 {
		vEnd = 0
	}
	dist = (v0 + vEnd) / 2 * t
	return dist, vEnd
}

// eq3Step is the paper's Equation 3: the t'_n adjustment derived from
// the unmet constraint(s). The caller only invokes it while the velocity
// constraint is unmet (gapV > 0): the step is the remaining braking time
// gapV/a_b, or — when the distance constraint is also violated — the
// smaller of that and the distance-recovery time (Eq. 3's min case). It
// never steps by less than NaiveDT so the search always progresses.
func eq3Step(gapD, gapV, vEN, ab float64, p Params) float64 {
	step := gapV / ab
	if gapD < 0 {
		dtD := (vEN + math.Sqrt(vEN*vEN+2*ab*math.Abs(gapD))) / ab
		step = math.Min(step, dtD)
	}
	if step < p.NaiveDT {
		step = p.NaiveDT
	}
	return step
}
