package core

import (
	"testing"
)

func TestUncertaintyValidate(t *testing.T) {
	good := Uncertainty{PosSigma: 0.5, SpeedSigma: 0.3, SigmaMargin: 2, ConfirmFactor: 1.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Uncertainty{
		{PosSigma: -1},
		{SpeedSigma: -1},
		{SigmaMargin: -1},
		{ConfirmFactor: -1},
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUncertaintyApply(t *testing.T) {
	p := DefaultParams()
	u := Uncertainty{PosSigma: 1.0, SpeedSigma: 0.5, SigmaMargin: 2, ConfirmFactor: 1.6}
	q := u.Apply(p)
	if q.DistanceMargin != 2.0 {
		t.Errorf("distance margin = %v", q.DistanceMargin)
	}
	if q.SpeedMargin != 1.0 {
		t.Errorf("speed margin = %v", q.SpeedMargin)
	}
	if q.K != 8 {
		t.Errorf("K = %d, want 8 (5 x 1.6)", q.K)
	}
	if q.LateralMargin <= p.LateralMargin {
		t.Errorf("lateral margin %v not widened from %v", q.LateralMargin, p.LateralMargin)
	}
	// Default sigma margin is 2.
	d := Uncertainty{PosSigma: 1}.Apply(p)
	if d.DistanceMargin != 2 {
		t.Errorf("default sigma margin: %v", d.DistanceMargin)
	}
	// Zero confirm factor keeps K.
	if d.K != p.K {
		t.Errorf("K changed without confirm factor: %d", d.K)
	}
}

func TestUncertaintyTightensLatency(t *testing.T) {
	// The same scene under a less accurate perception model must demand
	// an equal or lower tolerable latency (higher FPR).
	exact := DefaultParams()
	fuzzy := Uncertainty{PosSigma: 2.0, SpeedSigma: 1.0, SigmaMargin: 2, ConfirmFactor: 1.5}.Apply(exact)

	ego := egoAt(25, 0)
	traj := staticTraj(110, 0, exact.Horizon)
	le := TolerableLatency(ego, traj, carDims, 0.033, exact)
	lf := TolerableLatency(ego, traj, carDims, 0.033, fuzzy)
	if !le.Feasible {
		t.Fatal("exact model infeasible")
	}
	exactL := le.Latency
	fuzzyL := lf.Latency
	if !lf.Feasible {
		fuzzyL = 0
	}
	if fuzzyL > exactL {
		t.Errorf("uncertain model more tolerant: %v > %v", fuzzyL, exactL)
	}
	if fuzzyL == exactL {
		t.Errorf("uncertainty had no effect (%v); margins too weak for the test geometry", fuzzyL)
	}
}

func TestUncertaintyMonotoneInSigma(t *testing.T) {
	// Larger position uncertainty can only tighten the estimate.
	ego := egoAt(22, 0)
	traj := straightTraj(70, 0, 15, 0, DefaultParams().Horizon)
	prev := 2.0
	for _, sigma := range []float64{0, 0.5, 1, 2, 4} {
		p := Uncertainty{PosSigma: sigma}.Apply(DefaultParams())
		r := TolerableLatency(ego, traj, carDims, 0.033, p)
		l := r.Latency
		if !r.Feasible {
			l = 0
		}
		if l > prev+1e-9 {
			t.Fatalf("latency grew with sigma %v: %v after %v", sigma, l, prev)
		}
		prev = l
	}
}

func TestAccuracyOperatingPointTrade(t *testing.T) {
	// The §5 trade: a full-precision model at low FPR vs a quantized
	// model (2x throughput, more noise). For a mild scene the quantized
	// point wins because its requirement stays below its higher budget;
	// for a severe scene the inflated requirement exceeds even the
	// doubled budget.
	full := AccuracyOperatingPoint{
		Name:        "fp16",
		Uncertainty: Uncertainty{PosSigma: 0.3, SpeedSigma: 0.2},
		MaxFPR:      10,
	}
	quant := AccuracyOperatingPoint{
		Name:        "int8",
		Uncertainty: Uncertainty{PosSigma: 1.5, SpeedSigma: 0.8, ConfirmFactor: 1.4},
		MaxFPR:      20,
	}

	requiredFor := func(op AccuracyOperatingPoint, dist float64) float64 {
		p := op.Uncertainty.Apply(DefaultParams())
		r := TolerableLatency(egoAt(25, 0), staticTraj(dist, 0, p.Horizon), carDims, 1/op.MaxFPR, p)
		if !r.Feasible {
			return 1e9
		}
		return r.FPR()
	}

	// Mild scene: both feasible; quantized has more headroom.
	mild := 160.0
	fullReq, quantReq := requiredFor(full, mild), requiredFor(quant, mild)
	if !full.FeasibleAt(fullReq) || !quant.FeasibleAt(quantReq) {
		t.Fatalf("mild scene infeasible: full %v, quant %v", fullReq, quantReq)
	}
	if quant.MaxFPR-quantReq <= full.MaxFPR-fullReq {
		t.Errorf("quantized headroom (%v) should beat full precision (%v) on a mild scene",
			quant.MaxFPR-quantReq, full.MaxFPR-fullReq)
	}

	// Severe scene: the quantized model's inflated requirement grows
	// faster than the exact model's.
	severe := 78.0
	fullReqS, quantReqS := requiredFor(full, severe), requiredFor(quant, severe)
	if quantReqS <= fullReqS {
		t.Errorf("severe scene: quantized requirement %v should exceed full-precision %v", quantReqS, fullReqS)
	}
}
