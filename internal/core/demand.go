package core

// Demand models the Zhuyi model's own compute footprint (§4.2): the
// work is |A|·|T|·M·L·C operations, where |A| is the number of actors,
// |T| the number of predicted trajectories per actor, M the t'_n
// refinement iterations, L the latency grid steps, and C ≈ 100 the
// operations per constraint iteration.
type Demand struct {
	Actors       int
	Trajectories int
	M            int
	L            int
	OpsPerIter   int
}

// OpsPerIteration is the paper's per-iteration op estimate.
const OpsPerIteration = 100

// NewDemand builds the worst-case demand for a scene under the given
// parameters.
func NewDemand(actors, trajectories int, p Params) Demand {
	return Demand{
		Actors:       actors,
		Trajectories: trajectories,
		M:            p.M,
		L:            p.Steps(),
		OpsPerIter:   OpsPerIteration,
	}
}

// Ops returns the worst-case operation count.
func (d Demand) Ops() int {
	return d.Actors * d.Trajectories * d.M * d.L * d.OpsPerIter
}

// ExecutionSeconds estimates wall time on a processor offering the
// given throughput in operations per second (the paper: 60 kops on a
// 10+ GOPS processor executes well within 2 ms).
func (d Demand) ExecutionSeconds(opsPerSecond float64) float64 {
	if opsPerSecond <= 0 {
		return 0
	}
	return float64(d.Ops()) / opsPerSecond
}

// MeasuredOps converts the estimator's recorded constraint-evaluation
// count into ops, for comparing the analytic bound against actual work.
func MeasuredOps(evals int) int { return evals * OpsPerIteration }
