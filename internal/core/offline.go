package core

import (
	"fmt"
	"math"

	"repro/internal/trace"
	"repro/internal/world"
)

// OfflineOptions configures the pre-deployment trace evaluation (§3.1).
type OfflineOptions struct {
	// EvalEvery is the evaluation period in seconds (the Zhuyi model is
	// executed "at each time-step in the scenario trace"; evaluating
	// every 100 ms keeps series readable while preserving peaks).
	EvalEvery float64
	// FutureStride subsamples the recorded future trajectory (rows per
	// sample); 0 defaults to ~50 ms resolution.
	FutureStride int
}

// SeriesPoint is one evaluated instant of an offline run.
type SeriesPoint struct {
	Time     float64
	Latency  map[string]float64 // per camera, s
	FPR      map[string]float64 // per camera
	EgoAccel float64
	Evals    int
}

// OfflineResult is the full pre-deployment evaluation of one trace.
type OfflineResult struct {
	Scenario string
	RunFPR   float64 // FPR the trace was recorded at (l0 = 1/RunFPR)
	Points   []SeriesPoint
	Cameras  []string
}

// MaxFPR returns the highest per-camera FPR estimate across all
// evaluated instants and cameras — Table 1's "maximum estimated FPR".
func (r *OfflineResult) MaxFPR() float64 {
	max := 0.0
	for _, pt := range r.Points {
		for _, f := range pt.FPR {
			if f > max {
				max = f
			}
		}
	}
	return max
}

// MaxCameraFPR returns the per-camera maxima.
func (r *OfflineResult) MaxCameraFPR() map[string]float64 {
	out := make(map[string]float64, len(r.Cameras))
	for _, pt := range r.Points {
		for cam, f := range pt.FPR {
			if f > out[cam] {
				out[cam] = f
			}
		}
	}
	return out
}

// MaxSumFPR returns the maximum over time of the summed per-camera FPR
// estimates — Table 1's max(F_c1+F_c2+F_c3), the peak total computation
// demand.
func (r *OfflineResult) MaxSumFPR() float64 {
	max := 0.0
	for _, pt := range r.Points {
		sum := 0.0
		for _, f := range pt.FPR {
			sum += f
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// MeanSumFPR returns the time-averaged summed per-camera demand — the
// frame volume a Zhuyi-driven allocator would actually process, versus
// a fixed provisioning that must hold its rate continuously.
func (r *OfflineResult) MeanSumFPR() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	total := 0.0
	for _, pt := range r.Points {
		for _, f := range pt.FPR {
			total += f
		}
	}
	return total / float64(len(r.Points))
}

// CameraSeries extracts the (time, latency) series for one camera, the
// quantity plotted in Figures 4–6.
func (r *OfflineResult) CameraSeries(camera string) (times, latencies []float64) {
	for _, pt := range r.Points {
		if l, ok := pt.Latency[camera]; ok {
			times = append(times, pt.Time)
			latencies = append(latencies, l)
		}
	}
	return times, latencies
}

// AccelSeries extracts the ego acceleration series (Figures 4e–6e).
func (r *OfflineResult) AccelSeries() (times, accels []float64) {
	for _, pt := range r.Points {
		times = append(times, pt.Time)
		accels = append(accels, pt.EgoAccel)
	}
	return times, accels
}

// EvaluateTrace runs the Zhuyi model over a recorded scenario trace
// using ground-truth futures (|T| = 1): the paper's pre-deployment
// safety evaluator. The current processing latency l0 is taken from the
// trace metadata (1/FPR).
func (e *Estimator) EvaluateTrace(tr *trace.Trace, opt OfflineOptions) (*OfflineResult, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if opt.EvalEvery <= 0 {
		opt.EvalEvery = 0.1
	}
	stride := opt.FutureStride
	if stride <= 0 {
		stride = int(math.Max(1, 0.05/math.Max(tr.Meta.Dt, 1e-6)))
	}
	l0 := 0.0
	if tr.Meta.FPR > 0 {
		l0 = 1 / tr.Meta.FPR
	}

	res := &OfflineResult{
		Scenario: tr.Meta.Scenario,
		RunFPR:   tr.Meta.FPR,
		Cameras:  e.cameras(),
	}

	rowEvery := int(math.Max(1, math.Round(opt.EvalEvery/math.Max(tr.Meta.Dt, 1e-6))))
	for i := 0; i < tr.Len(); i += rowEvery {
		row := tr.Rows[i]
		futures := make(map[string]world.Trajectory, len(row.Actors))
		for _, a := range row.Actors {
			if f, ok := tr.ActorFuture(a.ID, i, e.Params.Horizon, stride); ok {
				futures[a.ID] = f
			}
		}
		est := e.EstimateSnapshot(row.Time, row.Ego, row.Actors, GroundTruthTrajs(futures), l0)
		res.Points = append(res.Points, SeriesPoint{
			Time:     row.Time,
			Latency:  est.CameraLatency,
			FPR:      est.CameraFPR,
			EgoAccel: row.Ego.Accel,
			Evals:    est.Evals,
		})
	}
	return res, nil
}
