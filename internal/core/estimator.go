package core

import (
	"math"

	"repro/internal/predict"
	"repro/internal/sensor"
	"repro/internal/world"
)

// ActorEstimate is the per-actor output of one Zhuyi evaluation.
type ActorEstimate struct {
	ActorID   string
	Latency   float64 // aggregated tolerable latency, s
	Feasible  bool
	NoThreat  bool
	Evals     int
	TrajCount int
}

// Estimate is the full Zhuyi output for one instant: per-actor
// latencies and the per-camera requirement (Eq. 5).
type Estimate struct {
	Time          float64
	Actors        []ActorEstimate
	CameraLatency map[string]float64 // l_sensor = min over actors in FOV
	CameraFPR     map[string]float64 // 1 / l_sensor
	CameraThreat  map[string]bool    // any in-FOV actor with a conflicting trajectory
	Evals         int                // total constraint evaluations
}

// SumFPR returns the summed FPR requirement over the given cameras (the
// Table-1 F_c1+F_c2+F_c3 quantity).
func (e Estimate) SumFPR(cameras []string) float64 {
	sum := 0.0
	for _, c := range cameras {
		sum += e.CameraFPR[c]
	}
	return sum
}

// MaxFPR returns the largest per-camera requirement over the given
// cameras.
func (e Estimate) MaxFPR(cameras []string) float64 {
	maxFPR := 0.0
	for _, c := range cameras {
		if e.CameraFPR[c] > maxFPR {
			maxFPR = e.CameraFPR[c]
		}
	}
	return maxFPR
}

// Estimator orchestrates the Zhuyi model over world snapshots.
type Estimator struct {
	Params  Params
	Rig     sensor.Rig
	Agg     AggregateOptions
	Cameras []string // cameras to report; nil = all rig cameras
}

// NewEstimator builds an estimator with the paper's defaults (ground
// truth aggregation is trivial with |T| = 1; the percentile mode only
// matters online).
func NewEstimator() *Estimator {
	return &Estimator{
		Params:  DefaultParams(),
		Rig:     sensor.DefaultRig(),
		Agg:     AggregateOptions{Mode: AggPercentile, Percentile: 99},
		Cameras: sensor.AnalyzedCameras(),
	}
}

func (e *Estimator) cameras() []string {
	if e.Cameras != nil {
		return e.Cameras
	}
	return e.Rig.Names()
}

// EstimateSnapshot runs the Zhuyi model at one instant. ego and actors
// describe the scene (ground truth offline, the perceived world model
// online); trajs supplies the trajectory set T per actor ID; l0 is the
// current per-camera processing latency.
func (e *Estimator) EstimateSnapshot(now float64, ego world.Agent, actors []world.Agent, trajs map[string][]world.Trajectory, l0 float64) Estimate {
	var sc EstimateScratch
	for _, a := range actors {
		start := len(sc.trajs)
		sc.trajs = append(sc.trajs, trajs[a.ID]...)
		sc.actorTraj = append(sc.actorTraj, [2]int{start, len(sc.trajs)})
	}
	var est Estimate
	e.estimateInto(&est, &sc, now, ego, actors, l0)
	return est
}

// GroundTruthTrajs wraps a single recorded future per actor as the
// trajectory set (|T| = 1, pre-deployment).
func GroundTruthTrajs(futures map[string]world.Trajectory) map[string][]world.Trajectory {
	out := make(map[string][]world.Trajectory, len(futures))
	for id, tr := range futures {
		tr.Prob = 1
		out[id] = []world.Trajectory{tr}
	}
	return out
}

// EstimateOnline runs the Zhuyi model post-deployment: the scene is the
// perceived world model and futures come from the trajectory predictor
// (§3.2, Figure 3).
func (e *Estimator) EstimateOnline(now float64, ego world.Agent, wm []world.Agent, pred predict.Predictor, l0 float64) Estimate {
	var sc EstimateScratch
	var est Estimate
	e.EstimateOnlineInto(&est, &sc, now, ego, wm, pred, l0)
	return est
}

// ActorImportance ranks actors by the inverse of their tolerable
// latency (§3.2 work prioritization: "the inverse of the per-actor
// tolerable latency estimate is proportional to the actor's
// importance"). Higher values are more important. Infeasible actors get
// +Inf.
func ActorImportance(est Estimate) map[string]float64 {
	out := make(map[string]float64, len(est.Actors))
	for _, a := range est.Actors {
		switch {
		case !a.Feasible:
			out[a.ActorID] = math.Inf(1)
		case a.Latency <= 0:
			out[a.ActorID] = math.Inf(1)
		default:
			out[a.ActorID] = 1 / a.Latency
		}
	}
	return out
}
