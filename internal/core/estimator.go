package core

import (
	"math"
	"sort"

	"repro/internal/predict"
	"repro/internal/sensor"
	"repro/internal/world"
)

// ActorEstimate is the per-actor output of one Zhuyi evaluation.
type ActorEstimate struct {
	ActorID   string
	Latency   float64 // aggregated tolerable latency, s
	Feasible  bool
	NoThreat  bool
	Evals     int
	TrajCount int
}

// Estimate is the full Zhuyi output for one instant: per-actor
// latencies and the per-camera requirement (Eq. 5).
type Estimate struct {
	Time          float64
	Actors        []ActorEstimate
	CameraLatency map[string]float64 // l_sensor = min over actors in FOV
	CameraFPR     map[string]float64 // 1 / l_sensor
	CameraThreat  map[string]bool    // any in-FOV actor with a conflicting trajectory
	Evals         int                // total constraint evaluations
}

// SumFPR returns the summed FPR requirement over the given cameras (the
// Table-1 F_c1+F_c2+F_c3 quantity).
func (e Estimate) SumFPR(cameras []string) float64 {
	sum := 0.0
	for _, c := range cameras {
		sum += e.CameraFPR[c]
	}
	return sum
}

// MaxFPR returns the largest per-camera requirement over the given
// cameras.
func (e Estimate) MaxFPR(cameras []string) float64 {
	maxFPR := 0.0
	for _, c := range cameras {
		if e.CameraFPR[c] > maxFPR {
			maxFPR = e.CameraFPR[c]
		}
	}
	return maxFPR
}

// Estimator orchestrates the Zhuyi model over world snapshots.
type Estimator struct {
	Params  Params
	Rig     sensor.Rig
	Agg     AggregateOptions
	Cameras []string // cameras to report; nil = all rig cameras
}

// NewEstimator builds an estimator with the paper's defaults (ground
// truth aggregation is trivial with |T| = 1; the percentile mode only
// matters online).
func NewEstimator() *Estimator {
	return &Estimator{
		Params:  DefaultParams(),
		Rig:     sensor.DefaultRig(),
		Agg:     AggregateOptions{Mode: AggPercentile, Percentile: 99},
		Cameras: sensor.AnalyzedCameras(),
	}
}

func (e *Estimator) cameras() []string {
	if e.Cameras != nil {
		return e.Cameras
	}
	return e.Rig.Names()
}

// EstimateSnapshot runs the Zhuyi model at one instant. ego and actors
// describe the scene (ground truth offline, the perceived world model
// online); trajs supplies the trajectory set T per actor ID; l0 is the
// current per-camera processing latency.
func (e *Estimator) EstimateSnapshot(now float64, ego world.Agent, actors []world.Agent, trajs map[string][]world.Trajectory, l0 float64) Estimate {
	est := Estimate{
		Time:          now,
		CameraLatency: make(map[string]float64, len(e.cameras())),
		CameraFPR:     make(map[string]float64, len(e.cameras())),
		CameraThreat:  make(map[string]bool, len(e.cameras())),
	}
	egoState := EgoFromAgent(ego)

	threats := make(map[string]bool, len(actors))
	latencies := make(map[string]float64, len(actors))
	for _, a := range actors {
		set := trajs[a.ID]
		results := make([]LatencyResult, 0, len(set))
		probs := make([]float64, 0, len(set))
		for _, tr := range set {
			results = append(results, TolerableLatency(egoState, tr, [2]float64{a.Length, a.Width}, l0, e.Params))
			probs = append(probs, tr.Prob)
		}
		agg := Aggregate(results, probs, e.Agg)
		ae := ActorEstimate{
			ActorID:   a.ID,
			Latency:   agg.Latency,
			Feasible:  agg.Feasible,
			NoThreat:  agg.NoThreat,
			Evals:     agg.Evals,
			TrajCount: len(set),
		}
		if !agg.Feasible {
			ae.Latency = 0
		}
		est.Actors = append(est.Actors, ae)
		est.Evals += agg.Evals
		threats[a.ID] = !agg.NoThreat
		latencies[a.ID] = ae.Latency
		if !agg.Feasible {
			latencies[a.ID] = e.Params.LMin // demand the maximum representable rate
		}
	}
	sort.Slice(est.Actors, func(i, j int) bool { return est.Actors[i].ActorID < est.Actors[j].ActorID })

	// Eq. 5: per camera, the binding actor is the one with the smallest
	// tolerable latency among those in the camera's FOV. One scratch
	// sweep per camera over the pre-filtered cone replaces the old
	// all-cameras VisibleSet map.
	var seen []string
	for _, cam := range e.cameras() {
		l := e.Params.LMax // empty FOV: idle floor (FPR 1)
		threat := false
		seen = seen[:0]
		if c, ok := e.Rig.Camera(cam); ok {
			seen = c.AppendSeenIDs(seen, ego.Pose, actors)
		}
		for _, id := range seen {
			if al, ok := latencies[id]; ok && al < l {
				l = al
			}
			if threats[id] {
				threat = true
			}
		}
		if l < e.Params.LMin {
			l = e.Params.LMin
		}
		est.CameraLatency[cam] = l
		est.CameraFPR[cam] = 1 / l
		est.CameraThreat[cam] = threat
	}
	return est
}

// GroundTruthTrajs wraps a single recorded future per actor as the
// trajectory set (|T| = 1, pre-deployment).
func GroundTruthTrajs(futures map[string]world.Trajectory) map[string][]world.Trajectory {
	out := make(map[string][]world.Trajectory, len(futures))
	for id, tr := range futures {
		tr.Prob = 1
		out[id] = []world.Trajectory{tr}
	}
	return out
}

// EstimateOnline runs the Zhuyi model post-deployment: the scene is the
// perceived world model and futures come from the trajectory predictor
// (§3.2, Figure 3).
func (e *Estimator) EstimateOnline(now float64, ego world.Agent, wm []world.Agent, pred predict.Predictor, l0 float64) Estimate {
	trajs := make(map[string][]world.Trajectory, len(wm))
	for _, a := range wm {
		trajs[a.ID] = predict.ForAgent(pred, a, now, e.Params.Horizon, 0.1)
	}
	return e.EstimateSnapshot(now, ego, wm, trajs, l0)
}

// ActorImportance ranks actors by the inverse of their tolerable
// latency (§3.2 work prioritization: "the inverse of the per-actor
// tolerable latency estimate is proportional to the actor's
// importance"). Higher values are more important. Infeasible actors get
// +Inf.
func ActorImportance(est Estimate) map[string]float64 {
	out := make(map[string]float64, len(est.Actors))
	for _, a := range est.Actors {
		switch {
		case !a.Feasible:
			out[a.ActorID] = math.Inf(1)
		case a.Latency <= 0:
			out[a.ActorID] = math.Inf(1)
		default:
			out[a.ActorID] = 1 / a.Latency
		}
	}
	return out
}
