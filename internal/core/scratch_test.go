package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/predict"
	"repro/internal/world"
)

func randomScene(rng *rand.Rand, actors int) (world.Agent, []world.Agent) {
	ego := world.Agent{
		ID:     world.EgoID,
		Pose:   geom.Pose{Pos: geom.Vec2{X: 0, Y: 0}, Heading: 0},
		Speed:  5 + rng.Float64()*25,
		Accel:  rng.Float64()*4 - 2,
		Length: 4.7, Width: 1.9,
	}
	wm := make([]world.Agent, actors)
	for i := range wm {
		wm[i] = world.Agent{
			ID:     fmt.Sprintf("a%d", i),
			Pose:   geom.Pose{Pos: geom.Vec2{X: rng.Float64()*120 - 20, Y: rng.Float64()*14 - 7}, Heading: rng.Float64() - 0.5},
			Speed:  rng.Float64() * 30,
			Accel:  rng.Float64()*8 - 5,
			LatVel: rng.Float64()*2 - 1,
			Length: 4.2, Width: 1.8,
			Static: rng.Intn(5) == 0,
		}
	}
	return ego, wm
}

// TestEstimateOnlineIntoMatchesEstimateOnline pins the pooled serving
// path's estimator to the allocating one across random scenes and a
// reused scratch: identical Estimates, including map contents and
// actor ordering.
func TestEstimateOnlineIntoMatchesEstimateOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	est := NewEstimator()
	var pred predict.Predictor = predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1}
	var sc EstimateScratch
	var dst Estimate
	for i := 0; i < 50; i++ {
		ego, wm := randomScene(rng, rng.Intn(6))
		l0 := 1 / 30.0
		want := est.EstimateOnline(0, ego, wm, pred, l0)
		est.EstimateOnlineInto(&dst, &sc, 0, ego, wm, pred, l0)
		// Normalize nil-vs-empty actor slices before comparing.
		if len(want.Actors) == 0 && len(dst.Actors) == 0 {
			want.Actors, dst.Actors = nil, nil
		}
		got := dst
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scene %d: EstimateOnlineInto diverged\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestEstimateOnlineIntoAllocFree pins the scratch path's allocation
// behavior: after warmup, repeated evaluations on a reused scratch and
// destination must not allocate at all.
func TestEstimateOnlineIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	est := NewEstimator()
	var pred predict.Predictor = predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1}
	ego, wm := randomScene(rng, 4)
	var sc EstimateScratch
	var dst Estimate
	est.EstimateOnlineInto(&dst, &sc, 0, ego, wm, pred, 1/30.0) // warmup
	allocs := testing.AllocsPerRun(100, func() {
		est.EstimateOnlineInto(&dst, &sc, 0, ego, wm, pred, 1/30.0)
	})
	if allocs != 0 {
		t.Fatalf("EstimateOnlineInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestAppendPredictionMatchesPredict pins every AppendPredictor to its
// allocating Predict across regimes (braking, cruising, accelerating,
// static).
func TestAppendPredictionMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	preds := []predict.AppendPredictor{
		predict.MultiHypothesis{Horizon: 15, Dt: 0.1},
		predict.ConstantAccel{Horizon: 15, Dt: 0.1},
		predict.Static{Horizon: 15, Dt: 0.1},
	}
	for i := 0; i < 20; i++ {
		_, wm := randomScene(rng, 1)
		a := wm[0]
		for pi, p := range preds {
			want := p.(predict.Predictor).Predict(a, 1.5)
			got, _ := p.AppendPrediction(nil, nil, a, 1.5)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("predictor %d scene %d: AppendPrediction diverged", pi, i)
			}
		}
	}
}
