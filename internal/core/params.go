// Package core implements the Zhuyi model (paper §2): the per-actor
// maximum tolerable perception latency search (Equations 1–3), the
// multi-trajectory aggregation (Equation 4), the per-camera frame
// processing rate requirement (Equation 5), the offline pre-deployment
// trace evaluator (§3.1), the online post-deployment estimator (§3.2),
// the velocity sensitivity sweep (Figure 8), and the compute-demand
// accounting (§4.2).
package core

import (
	"fmt"
	"math"
)

// AlphaModel selects how the actor confirmation delay α is computed.
type AlphaModel int

const (
	// AlphaPaper is the paper's model: α = K·(l − l0), where K is the
	// number of frames the perception system takes to confirm an actor
	// and l0 is the processing latency the system is currently running
	// at. Negative values (l < l0) clamp to zero.
	AlphaPaper AlphaModel = iota
	// AlphaZero assumes the system is already operating at the estimated
	// latency (steady state), so no extra confirmation delay accrues.
	// The Figure-8 sensitivity sweep uses this model.
	AlphaZero
)

// Params are the Zhuyi model parameters. Defaults follow §4.1: C1 = C2 =
// 0.9, C3 = 4.9 m/s², C4 = 1.1, K = 5, M = 10, and an l-grid of δl =
// 33 ms spanning 33 ms..1 s (L = 30 steps).
type Params struct {
	C1 float64 // distance-constraint conservatism factor (Eq. 1)
	C2 float64 // velocity-constraint conservatism factor (Eq. 2)
	C3 float64 // minimum braking deceleration, m/s²
	C4 float64 // braking-headroom multiplier over current deceleration
	K  int     // frames to confirm an actor
	M  int     // max t'_n refinement iterations per latency candidate

	LMax   float64 // largest candidate latency, s
	LMin   float64 // smallest candidate latency, s
	DeltaL float64 // latency grid step δl, s

	Horizon float64 // how far into the future t_n may resolve, s
	NaiveDT float64 // naive t'_n increment, s (also the minimum Eq.-3 step)

	Alpha AlphaModel

	// LateralMargin widens the collision corridor beyond the vehicles'
	// half-width sum when deciding whether an actor trajectory can
	// conflict with the ego at all.
	LateralMargin float64

	// DistanceMargin shrinks the usable gap s_n (meters) and SpeedMargin
	// shrinks the actor velocity v_an (m/s) before the constraints are
	// evaluated — the perception-uncertainty extension (§5 future work);
	// see Uncertainty.Apply. Zero for the exact paper model.
	DistanceMargin float64
	SpeedMargin    float64

	// NaiveSearch disables the Eq.-3 accelerated stepping and advances
	// t'_n by NaiveDT every iteration (with M large enough to cover the
	// horizon). Used for the ablation benchmark.
	NaiveSearch bool
}

// DefaultParams returns the paper's §4.1 configuration.
func DefaultParams() Params {
	return Params{
		C1:            0.9,
		C2:            0.9,
		C3:            4.9,
		C4:            1.1,
		K:             5,
		M:             10,
		LMax:          1.0,
		LMin:          0.033,
		DeltaL:        0.033,
		Horizon:       15.0,
		NaiveDT:       0.01,
		Alpha:         AlphaPaper,
		LateralMargin: 0.3,
	}
}

// Steps returns L, the number of latency grid steps (paper: max(l)/δl).
func (p Params) Steps() int {
	if p.DeltaL <= 0 {
		return 1
	}
	return int(math.Round(p.LMax / p.DeltaL))
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.C1 <= 0 || p.C1 > 1:
		return fmt.Errorf("core: C1 = %v out of (0,1]", p.C1)
	case p.C2 <= 0 || p.C2 > 1.5:
		return fmt.Errorf("core: C2 = %v out of (0,1.5]", p.C2)
	case p.C3 <= 0:
		return fmt.Errorf("core: C3 = %v must be positive", p.C3)
	case p.C4 < 1:
		return fmt.Errorf("core: C4 = %v must be >= 1", p.C4)
	case p.K < 0:
		return fmt.Errorf("core: K = %d must be >= 0", p.K)
	case p.M < 1:
		return fmt.Errorf("core: M = %d must be >= 1", p.M)
	case p.LMin <= 0 || p.LMax < p.LMin:
		return fmt.Errorf("core: latency bounds [%v, %v] invalid", p.LMin, p.LMax)
	case p.DeltaL <= 0:
		return fmt.Errorf("core: DeltaL = %v must be positive", p.DeltaL)
	case p.Horizon <= 0:
		return fmt.Errorf("core: Horizon = %v must be positive", p.Horizon)
	}
	return nil
}

// alpha returns the confirmation delay for candidate latency l at
// current system latency l0.
func (p Params) alpha(l, l0 float64) float64 {
	switch p.Alpha {
	case AlphaZero:
		return 0
	default:
		a := float64(p.K) * (l - l0)
		if a < 0 {
			a = 0
		}
		return a
	}
}

// brakeDecel returns a_b = max(C3, C4·a0decel) where a0decel is the
// ego's current deceleration magnitude (zero if it is accelerating).
func (p Params) brakeDecel(egoAccel float64) float64 {
	cur := 0.0
	if egoAccel < 0 {
		cur = -egoAccel
	}
	return math.Max(p.C3, p.C4*cur)
}
