package geom

import (
	"math"
	"math/rand"
	"testing"
)

// The Quad cache and the SinCos zero shortcut are only admissible in
// the simulator's hot path because they are bit-for-bit equivalent to
// the OBB methods and math.Sincos they replace — byte-identical traces
// depend on it. These tests hammer that equivalence on randomized and
// adversarial inputs.

func TestSinCosMatchesMathSincos(t *testing.T) {
	angles := []float64{0, math.Copysign(0, -1), 1e-300, -1e-300, 0.5, -0.5, math.Pi, -math.Pi, 3 * math.Pi, 1e9}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		angles = append(angles, (rng.Float64()-0.5)*20)
	}
	for _, a := range angles {
		gs, gc := SinCos(a)
		ms, mc := math.Sincos(a)
		if math.Float64bits(gs) != math.Float64bits(ms) || math.Float64bits(gc) != math.Float64bits(mc) {
			t.Fatalf("SinCos(%v) = (%v,%v), math.Sincos = (%v,%v)", a, gs, gc, ms, mc)
		}
	}
}

func randBox(rng *rand.Rand) OBB {
	heading := (rng.Float64() - 0.5) * 8
	if rng.Intn(4) == 0 {
		heading = 0 // exercise the zero-heading fast path
	}
	return OBB{
		Center:  V((rng.Float64()-0.5)*60, (rng.Float64()-0.5)*60),
		Heading: heading,
		Length:  0.5 + rng.Float64()*8,
		Width:   0.5 + rng.Float64()*3,
	}
}

func TestQuadMatchesOBBBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		b := randBox(rng)
		q := MakeQuad(b)

		// Corners and axes are exactly the OBB's.
		bc := b.Corners()
		for k := 0; k < 4; k++ {
			if q.C[k] != bc[k] {
				t.Fatalf("corner %d: quad %v obb %v (box %+v)", k, q.C[k], bc[k], b)
			}
		}
		if q.AxF != FromAngle(b.Heading) || q.AxL != FromAngle(b.Heading).Perp() {
			t.Fatalf("axes differ for %+v", b)
		}

		// Contains agrees everywhere, including points on and just off the
		// boundary.
		for j := 0; j < 20; j++ {
			p := V(b.Center.X+(rng.Float64()-0.5)*2.2*b.Length, b.Center.Y+(rng.Float64()-0.5)*2.2*b.Length)
			if q.Contains(p) != b.Contains(p) {
				t.Fatalf("Contains(%v) disagrees for %+v", p, b)
			}
		}
		for k := 0; k < 4; k++ {
			if q.Contains(bc[k]) != b.Contains(bc[k]) {
				t.Fatalf("corner Contains disagrees for %+v", b)
			}
		}

		// Intersects agrees, with overlapping, touching, and distant pairs.
		o := randBox(rng)
		if rng.Intn(2) == 0 {
			o.Center = b.Center.Add(V((rng.Float64()-0.5)*2*b.Length, (rng.Float64()-0.5)*2*b.Length))
		}
		oq := MakeQuad(o)
		if q.Intersects(&oq) != b.Intersects(o) {
			t.Fatalf("Intersects disagrees: %+v vs %+v", b, o)
		}

		// HitBy agrees with the exact segment-versus-OBB test.
		s := Segment{
			A: V((rng.Float64()-0.5)*80, (rng.Float64()-0.5)*80),
			B: b.Center.Add(V((rng.Float64()-0.5)*3*b.Length, (rng.Float64()-0.5)*3*b.Length)),
		}
		if q.HitBy(s) != segHitsOBBRef(s, b) {
			t.Fatalf("HitBy disagrees for %+v seg %+v", b, s)
		}
	}
}

// segHitsOBBRef is the reference segment-vs-OBB predicate (the shape
// internal/sensor historically used), spelled with the uncached
// primitives.
func segHitsOBBRef(s Segment, b OBB) bool {
	if b.Contains(s.A) || b.Contains(s.B) {
		return true
	}
	c := b.Corners()
	for i := 0; i < 4; i++ {
		edge := Segment{A: c[i], B: c[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}
