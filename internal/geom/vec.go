// Package geom provides the 2-D geometry primitives used by the road
// model, the simulator, the sensor FOV tests, and collision detection:
// vectors, poses, oriented bounding boxes with separating-axis
// intersection, and segment utilities.
//
// The world reference frame follows the paper's Figure 2: a 2-D top view
// with X in the longitudinal direction of the ego's initial heading and Y
// in the lateral direction. Headings are radians counter-clockwise from
// the +X axis.
package geom

import "math"

// Vec2 is a point or direction in the 2-D world frame.
type Vec2 struct {
	X, Y float64
}

// V constructs a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by k.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{v.X * k, v.Y * k} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Cross returns the z component of the 3-D cross product of v and o.
func (v Vec2) Cross(o Vec2) float64 { return v.X*o.Y - v.Y*o.X }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared length of v, avoiding a sqrt.
func (v Vec2) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Len() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged so callers need not special-case degenerate directions.
func (v Vec2) Unit() Vec2 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Perp returns v rotated +90 degrees (counter-clockwise).
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Rotate returns v rotated by rad radians counter-clockwise.
func (v Vec2) Rotate(rad float64) Vec2 {
	s, c := SinCos(rad)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the heading of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp linearly interpolates from v to o by t (t=0 ⇒ v, t=1 ⇒ o).
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

// FromAngle returns the unit vector with the given heading.
func FromAngle(rad float64) Vec2 {
	s, c := SinCos(rad)
	return Vec2{c, s}
}

// SinCos is math.Sincos with a fast path for the exact zero angle,
// the overwhelmingly common heading on straight-road scenarios. The
// shortcut is bit-exact: sin(±0) = ±0 (returning rad preserves the
// sign of zero) and cos(±0) = 1, so callers cannot observe which
// branch ran.
func SinCos(rad float64) (sin, cos float64) {
	if rad == 0 {
		return rad, 1
	}
	return math.Sincos(rad)
}

// Pose is a position plus heading in the world frame.
type Pose struct {
	Pos     Vec2
	Heading float64 // radians CCW from +X
}

// Forward returns the unit vector along the pose heading.
func (p Pose) Forward() Vec2 { return FromAngle(p.Heading) }

// Left returns the unit vector 90° left of the pose heading.
func (p Pose) Left() Vec2 { return FromAngle(p.Heading).Perp() }

// ToLocal transforms a world-frame point into the pose's local frame
// (x forward, y left).
func (p Pose) ToLocal(world Vec2) Vec2 {
	d := world.Sub(p.Pos)
	return d.Rotate(-p.Heading)
}

// ToWorld transforms a pose-local point (x forward, y left) into the
// world frame.
func (p Pose) ToWorld(local Vec2) Vec2 {
	return p.Pos.Add(local.Rotate(p.Heading))
}
