package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func vecNear(a, b Vec2, eps float64) bool {
	return math.Abs(a.X-b.X) <= eps && math.Abs(a.Y-b.Y) <= eps
}

func finiteVec(v Vec2) bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) && !math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		math.Abs(v.X) < 1e6 && math.Abs(v.Y) < 1e6
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2)
	b := V(3, -1)
	if got := a.Add(b); got != V(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := V(3, 4).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := V(3, 4).LenSq(); got != 25 {
		t.Errorf("LenSq = %v", got)
	}
	if got := V(0, 0).Dist(V(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnit(t *testing.T) {
	u := V(10, 0).Unit()
	if !vecNear(u, V(1, 0), tol) {
		t.Errorf("Unit = %v", u)
	}
	if got := V(0, 0).Unit(); got != V(0, 0) {
		t.Errorf("Unit of zero = %v", got)
	}
	f := func(v Vec2) bool {
		if !finiteVec(v) || v.Len() < 1e-9 {
			return true
		}
		return math.Abs(v.Unit().Len()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerpOrthogonal(t *testing.T) {
	f := func(v Vec2) bool {
		if !finiteVec(v) {
			return true
		}
		return math.Abs(v.Dot(v.Perp())) < 1e-6*math.Max(1, v.LenSq())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotatePreservesLength(t *testing.T) {
	f := func(v Vec2, rad float64) bool {
		if !finiteVec(v) || math.IsNaN(rad) || math.Abs(rad) > 1e3 {
			return true
		}
		return math.Abs(v.Rotate(rad).Len()-v.Len()) < 1e-6*math.Max(1, v.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateKnown(t *testing.T) {
	got := V(1, 0).Rotate(math.Pi / 2)
	if !vecNear(got, V(0, 1), tol) {
		t.Errorf("Rotate(pi/2) = %v", got)
	}
}

func TestAngleFromAngleRoundTrip(t *testing.T) {
	for _, a := range []float64{0, 0.5, -0.5, math.Pi / 2, -math.Pi / 2, 3, -3} {
		got := FromAngle(a).Angle()
		if math.Abs(got-a) > tol {
			t.Errorf("FromAngle(%v).Angle() = %v", a, got)
		}
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); !vecNear(got, V(5, 10), tol) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestPoseTransformRoundTrip(t *testing.T) {
	p := Pose{Pos: V(3, -2), Heading: 0.7}
	f := func(v Vec2) bool {
		if !finiteVec(v) {
			return true
		}
		back := p.ToLocal(p.ToWorld(v))
		return vecNear(back, v, 1e-6*math.Max(1, v.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoseForwardLeft(t *testing.T) {
	p := Pose{Pos: V(0, 0), Heading: 0}
	if !vecNear(p.Forward(), V(1, 0), tol) {
		t.Errorf("Forward = %v", p.Forward())
	}
	if !vecNear(p.Left(), V(0, 1), tol) {
		t.Errorf("Left = %v", p.Left())
	}
	// A point 5 m ahead of a pose heading +Y is at world (0, 5).
	p2 := Pose{Pos: V(0, 0), Heading: math.Pi / 2}
	if got := p2.ToWorld(V(5, 0)); !vecNear(got, V(0, 5), tol) {
		t.Errorf("ToWorld = %v", got)
	}
}
