package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOBBCorners(t *testing.T) {
	b := OBB{Center: V(0, 0), Heading: 0, Length: 4, Width: 2}
	c := b.Corners()
	want := [4]Vec2{V(2, 1), V(-2, 1), V(-2, -1), V(2, -1)}
	for i := range c {
		if !vecNear(c[i], want[i], tol) {
			t.Errorf("corner %d = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestOBBContains(t *testing.T) {
	b := OBB{Center: V(10, 5), Heading: 0, Length: 4, Width: 2}
	if !b.Contains(V(10, 5)) {
		t.Error("center not contained")
	}
	if !b.Contains(V(12, 6)) {
		t.Error("corner not contained")
	}
	if b.Contains(V(12.1, 5)) {
		t.Error("outside point contained")
	}
	// Rotated box.
	r := OBB{Center: V(0, 0), Heading: math.Pi / 2, Length: 4, Width: 2}
	if !r.Contains(V(0, 2)) {
		t.Error("rotated: front point not contained")
	}
	if r.Contains(V(2, 0)) {
		t.Error("rotated: side point contained")
	}
}

func TestOBBIntersectsAxisAligned(t *testing.T) {
	a := OBB{Center: V(0, 0), Heading: 0, Length: 4, Width: 2}
	cases := []struct {
		b    OBB
		want bool
	}{
		{OBB{Center: V(3, 0), Heading: 0, Length: 4, Width: 2}, true},     // overlapping
		{OBB{Center: V(5, 0), Heading: 0, Length: 4, Width: 2}, false},    // clear gap
		{OBB{Center: V(0, 1.9), Heading: 0, Length: 4, Width: 2}, true},   // lateral overlap
		{OBB{Center: V(0, 2.1), Heading: 0, Length: 4, Width: 2}, false},  // lateral gap
		{OBB{Center: V(4.01, 0), Heading: 0, Length: 4, Width: 2}, false}, // just beyond touch
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestOBBIntersectsRotated(t *testing.T) {
	a := OBB{Center: V(0, 0), Heading: 0, Length: 4, Width: 2}
	// A thin rotated box diagonal through a's corner region.
	b := OBB{Center: V(3, 2), Heading: math.Pi / 4, Length: 6, Width: 0.5}
	if !a.Intersects(b) {
		t.Error("diagonal box should intersect")
	}
	c := OBB{Center: V(5, 4), Heading: math.Pi / 4, Length: 2, Width: 0.5}
	if a.Intersects(c) {
		t.Error("distant diagonal box should not intersect")
	}
	// SAT must catch the case where corners of neither box are inside the
	// other (cross shape).
	d := OBB{Center: V(0, 0), Heading: 0, Length: 10, Width: 0.5}
	e := OBB{Center: V(0, 0), Heading: math.Pi / 2, Length: 10, Width: 0.5}
	if !d.Intersects(e) {
		t.Error("cross shape should intersect")
	}
}

func TestOBBIntersectsSymmetric(t *testing.T) {
	f := func(ax, ay, ah, bx, by, bh float64) bool {
		clamp := func(v, lim float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, lim)
		}
		a := OBB{Center: V(clamp(ax, 20), clamp(ay, 20)), Heading: clamp(ah, math.Pi), Length: 4, Width: 2}
		b := OBB{Center: V(clamp(bx, 20), clamp(by, 20)), Heading: clamp(bh, math.Pi), Length: 5, Width: 2.5}
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOBBSelfIntersects(t *testing.T) {
	f := func(x, y, h float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(h) ||
			math.Abs(x) > 1e5 || math.Abs(y) > 1e5 || math.Abs(h) > 1e3 {
			return true
		}
		b := OBB{Center: V(x, y), Heading: h, Length: 4.6, Width: 1.9}
		return b.Intersects(b) && b.Contains(b.Center)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOBBInflate(t *testing.T) {
	b := OBB{Center: V(0, 0), Heading: 0, Length: 4, Width: 2}
	g := b.Inflate(0.5)
	if g.Length != 5 || g.Width != 3 {
		t.Errorf("Inflate = %+v", g)
	}
	if b.Area() != 8 || g.Area() != 15 {
		t.Errorf("Area = %v, %v", b.Area(), g.Area())
	}
}

func TestSegmentClosest(t *testing.T) {
	s := Segment{A: V(0, 0), B: V(10, 0)}
	if got := s.ClosestParam(V(5, 3)); got != 0.5 {
		t.Errorf("ClosestParam = %v", got)
	}
	if got := s.ClosestParam(V(-5, 0)); got != 0 {
		t.Errorf("ClosestParam before A = %v", got)
	}
	if got := s.ClosestParam(V(20, 0)); got != 1 {
		t.Errorf("ClosestParam after B = %v", got)
	}
	if got := s.DistToPoint(V(5, 3)); got != 3 {
		t.Errorf("DistToPoint = %v", got)
	}
	if got := s.Len(); got != 10 {
		t.Errorf("Len = %v", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Segment{V(0, 0), V(10, 0)}, Segment{V(5, -5), V(5, 5)}, true},
		{Segment{V(0, 0), V(10, 0)}, Segment{V(5, 1), V(5, 5)}, false},
		{Segment{V(0, 0), V(10, 0)}, Segment{V(11, -1), V(11, 1)}, false},
		// Collinear overlapping.
		{Segment{V(0, 0), V(10, 0)}, Segment{V(5, 0), V(15, 0)}, true},
		// Collinear disjoint.
		{Segment{V(0, 0), V(4, 0)}, Segment{V(5, 0), V(15, 0)}, false},
		// Parallel non-collinear.
		{Segment{V(0, 0), V(10, 0)}, Segment{V(0, 1), V(10, 1)}, false},
		// Touching at endpoint.
		{Segment{V(0, 0), V(5, 0)}, Segment{V(5, 0), V(5, 5)}, true},
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentPointAt(t *testing.T) {
	s := Segment{A: V(2, 2), B: V(6, 6)}
	if got := s.PointAt(0.5); !vecNear(got, V(4, 4), tol) {
		t.Errorf("PointAt = %v", got)
	}
}
