package geom

import "math"

// OBB is an oriented bounding box: a rectangle of the given full length
// (along the heading) and full width (perpendicular), centered at Center.
// It is the collision footprint used for vehicles.
type OBB struct {
	Center  Vec2
	Heading float64
	Length  float64 // full extent along Heading
	Width   float64 // full extent perpendicular to Heading
}

// NewOBB builds an OBB from a pose and full dimensions.
func NewOBB(p Pose, length, width float64) OBB {
	return OBB{Center: p.Pos, Heading: p.Heading, Length: length, Width: width}
}

// Corners returns the four corners in counter-clockwise order starting
// from the front-left corner.
func (b OBB) Corners() [4]Vec2 {
	f := FromAngle(b.Heading).Scale(b.Length / 2)
	l := FromAngle(b.Heading).Perp().Scale(b.Width / 2)
	return [4]Vec2{
		b.Center.Add(f).Add(l), // front-left
		b.Center.Sub(f).Add(l), // rear-left
		b.Center.Sub(f).Sub(l), // rear-right
		b.Center.Add(f).Sub(l), // front-right
	}
}

// Contains reports whether the point lies inside or on the box.
func (b OBB) Contains(p Vec2) bool {
	local := p.Sub(b.Center).Rotate(-b.Heading)
	return math.Abs(local.X) <= b.Length/2+1e-12 && math.Abs(local.Y) <= b.Width/2+1e-12
}

// Intersects reports whether two OBBs overlap, using the separating axis
// theorem over the four face normals of the two boxes.
func (b OBB) Intersects(o OBB) bool {
	axes := [4]Vec2{
		FromAngle(b.Heading),
		FromAngle(b.Heading).Perp(),
		FromAngle(o.Heading),
		FromAngle(o.Heading).Perp(),
	}
	bc := b.Corners()
	oc := o.Corners()
	for _, axis := range axes {
		bmin, bmax := projectCorners(bc, axis)
		omin, omax := projectCorners(oc, axis)
		if bmax < omin || omax < bmin {
			return false // separating axis found
		}
	}
	return true
}

// Inflate returns a copy of the box grown by margin on every side.
func (b OBB) Inflate(margin float64) OBB {
	b.Length += 2 * margin
	b.Width += 2 * margin
	return b
}

// Area returns the box area.
func (b OBB) Area() float64 { return b.Length * b.Width }

func projectCorners(c [4]Vec2, axis Vec2) (min, max float64) {
	min = c[0].Dot(axis)
	max = min
	for i := 1; i < 4; i++ {
		d := c[i].Dot(axis)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Vec2
}

// Len returns the segment length.
func (s Segment) Len() float64 { return s.B.Sub(s.A).Len() }

// PointAt returns the point at parameter t ∈ [0,1] along the segment.
func (s Segment) PointAt(t float64) Vec2 { return s.A.Lerp(s.B, t) }

// ClosestParam returns the parameter t ∈ [0,1] of the point on the
// segment closest to p.
func (s Segment) ClosestParam(p Vec2) float64 {
	d := s.B.Sub(s.A)
	den := d.LenSq()
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return math.Max(0, math.Min(1, t))
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Vec2) float64 {
	return s.PointAt(s.ClosestParam(p)).Dist(p)
}

// Intersects reports whether two segments intersect (including touching).
func (s Segment) Intersects(o Segment) bool {
	d1 := s.B.Sub(s.A)
	d2 := o.B.Sub(o.A)
	den := d1.Cross(d2)
	diff := o.A.Sub(s.A)
	if math.Abs(den) < 1e-15 {
		// Parallel: intersect only if collinear and overlapping.
		if math.Abs(diff.Cross(d1)) > 1e-12 {
			return false
		}
		l2 := d1.LenSq()
		if l2 == 0 {
			return s.A.Dist(o.A) < 1e-12 || s.A.Dist(o.B) < 1e-12
		}
		t0 := diff.Dot(d1) / l2
		t1 := o.B.Sub(s.A).Dot(d1) / l2
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		return t1 >= 0 && t0 <= 1
	}
	t := diff.Cross(d2) / den
	u := diff.Cross(d1) / den
	return t >= 0 && t <= 1 && u >= 0 && u <= 1
}
