package geom

import "math"

// Quad is an OBB with its face axes and corners materialized once, for
// the hot sweeps (collision checks, occlusion rays, FOV sampling) that
// interrogate the same box several times per simulation step. Every
// predicate reproduces the corresponding OBB method bit for bit: the
// cached axes are exactly FromAngle(Heading) / its perpendicular, the
// corners exactly OBB.Corners(), and the arithmetic below keeps the
// same operation order, so a cached decision never differs from the
// uncached one (geom_equiv_test.go asserts this exhaustively).
type Quad struct {
	Box      OBB
	AxF, AxL Vec2    // unit face axes: forward (along Heading) and left
	C        [4]Vec2 // corners, CCW from front-left — OBB.Corners()
}

// MakeQuad materializes the box's axes and corners. One SinCos here
// replaces one per subsequent Contains/Intersects/HitBy call.
func MakeQuad(b OBB) Quad {
	sin, cos := SinCos(b.Heading)
	return MakeQuadTrig(b, sin, cos)
}

// MakeQuadTrig is MakeQuad for callers that already hold the heading's
// sine and cosine (the SoA world frame caches them per agent per
// step). The values must be exactly SinCos(b.Heading) for the
// bit-equivalence guarantee to hold.
func MakeQuadTrig(b OBB, sin, cos float64) Quad {
	axF := Vec2{cos, sin}
	axL := axF.Perp()
	f := axF.Scale(b.Length / 2)
	l := axL.Scale(b.Width / 2)
	return Quad{
		Box: b,
		AxF: axF,
		AxL: axL,
		C: [4]Vec2{
			b.Center.Add(f).Add(l), // front-left
			b.Center.Sub(f).Add(l), // rear-left
			b.Center.Sub(f).Sub(l), // rear-right
			b.Center.Add(f).Sub(l), // front-right
		},
	}
}

// Contains reports whether the point lies inside or on the box,
// exactly as OBB.Contains: projecting onto the cached axes computes
// the same products the Rotate(-Heading) transform does (sin is odd
// and cos even bitwise, and subtracting an exact negation equals
// adding), so the comparison sees identical local coordinates.
func (q *Quad) Contains(p Vec2) bool {
	d := p.Sub(q.Box.Center)
	u := d.X*q.AxF.X + d.Y*q.AxF.Y
	v := d.X*q.AxL.X + d.Y*q.AxL.Y
	return math.Abs(u) <= q.Box.Length/2+1e-12 && math.Abs(v) <= q.Box.Width/2+1e-12
}

// Intersects reports whether two quads overlap — the separating-axis
// test of OBB.Intersects over the cached corners and face normals.
func (q *Quad) Intersects(o *Quad) bool {
	axes := [4]Vec2{q.AxF, q.AxL, o.AxF, o.AxL}
	for _, axis := range axes {
		bmin, bmax := projectCorners(q.C, axis)
		omin, omax := projectCorners(o.C, axis)
		if bmax < omin || omax < bmin {
			return false // separating axis found
		}
	}
	return true
}

// HitBy reports whether the segment touches the quad: either endpoint
// inside, or the segment crossing any edge.
func (q *Quad) HitBy(s Segment) bool {
	if q.Contains(s.A) || q.Contains(s.B) {
		return true
	}
	for i := 0; i < 4; i++ {
		edge := Segment{A: q.C[i], B: q.C[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}

// DistSqToPoint returns the squared minimum distance from p to the
// segment, for prefilters that compare against a squared radius
// without paying the sqrt of DistToPoint.
func (s Segment) DistSqToPoint(p Vec2) float64 {
	return s.PointAt(s.ClosestParam(p)).Sub(p).LenSq()
}
