package scenario

import (
	"strings"
	"testing"
)

// Regression for the silent family fallthrough: an unknown family used
// to sample cut-in specs named and tagged with the bogus family.
// GenOptions.Validate must reject it, and NewGenerator must refuse to
// construct rather than mislabel.
func TestGenOptionsValidateRejectsUnknownFamily(t *testing.T) {
	if err := (GenOptions{Families: []Family{"bogus"}}).Validate(); err == nil {
		t.Error("Validate accepted an unknown family")
	} else if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), string(FamilyCutIn)) {
		t.Errorf("error %q should name the bad family and list the valid ones", err)
	}
	if err := (GenOptions{}).Validate(); err != nil {
		t.Errorf("empty families (= all) must validate: %v", err)
	}
	if err := (GenOptions{Families: Families()}).Validate(); err != nil {
		t.Errorf("full family list must validate: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("NewGenerator built a generator over an unknown family")
		}
	}()
	NewGenerator(GenOptions{Families: []Family{FamilyCutIn, "bogus"}})
}

// Every declared family must have a sampler: Next over the full family
// list may never hit the no-sampler panic, and each spec must carry its
// own family tag (not another family's).
func TestEveryFamilyHasASampler(t *testing.T) {
	fams := Families()
	specs := NewGenerator(GenOptions{Seed: 11}).Generate(len(fams))
	for i, sp := range specs {
		if want := string(fams[i]); !sp.HasTag(want) {
			t.Errorf("spec %d (%s) lacks its family tag %q (tags %v)", i, sp.Name, want, sp.Tags)
		}
	}
}
