package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestSpecFingerprintIgnoresDefaultRecordLevel pins the compatibility
// contract of the Record field: a spec recording at the default (full)
// level marshals without the field at all, so every fingerprint minted
// before the field existed — and every store key derived from one —
// is unchanged. Declaring a non-default level is a real content change
// and must re-fingerprint.
func TestSpecFingerprintIgnoresDefaultRecordLevel(t *testing.T) {
	sp := Table1Specs()[0]
	if sp.Record != trace.LevelFull {
		t.Fatalf("registered spec %s declares record level %v", sp.Name, sp.Record)
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Record") {
		t.Fatalf("full-level spec encodes a Record field — this breaks every pre-existing fingerprint: %s", b)
	}

	base := SpecFingerprint(sp)
	summary := sp
	summary.Record = trace.LevelSummary
	if got := SpecFingerprint(summary); got == base {
		t.Error("declaring a summary record level did not change the fingerprint")
	}
}

// TestSpecRecordLevelCompiles proves the spec-declared level reaches
// the simulator configuration.
func TestSpecRecordLevelCompiles(t *testing.T) {
	sp := Table1Specs()[0]
	if got := sp.Compile(30, 1).Record; got != trace.LevelFull {
		t.Errorf("default compile record = %v", got)
	}
	sp.Record = trace.LevelSummary
	if got := sp.Compile(30, 1).Record; got != trace.LevelSummary {
		t.Errorf("summary compile record = %v", got)
	}
}

// TestSpecRecordLevelJSONRoundTrip covers spec (de)serialization with
// the named-level encoding.
func TestSpecRecordLevelJSONRoundTrip(t *testing.T) {
	sp := Spec{Name: "rt", EgoSpeedMPH: 30, Duration: 5,
		Road: RoadDef{Lanes: 2, Length: 500}, Record: trace.LevelOff}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"Record":"off"`) {
		t.Fatalf("level not name-encoded: %s", b)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Record != trace.LevelOff {
		t.Errorf("round-tripped record = %v", back.Record)
	}
}
