package scenario

import "repro/internal/vehicle"

// Extra operational-design-domain variants beyond the paper's nine
// validation scenarios. The paper motivates Zhuyi partly as an ODD
// exploration tool ("help architects to discover new optimization
// opportunities for different ODDs", §1); these variants exercise the
// model on geometries the nine do not cover: platoons, heavy vehicles,
// crossing agents, and dense traffic.
const (
	HighwayPlatoon = "highway-platoon"
	TruckCutOut    = "truck-cut-out"
	UrbanCrosser   = "urban-crosser"
	DenseTraffic   = "dense-traffic"
)

// Variants returns the extra scenarios from the default registry.
func Variants() []Scenario { return Default().List(TagVariant) }

// AllWithVariants returns the nine paper scenarios followed by the
// variants.
func AllWithVariants() []Scenario { return append(All(), Variants()...) }

// VariantByName looks a variant up by name (ByName only covers the nine
// paper scenarios; Lookup covers everything registered).
func VariantByName(name string) (Scenario, bool) { return taggedLookup(name, TagVariant) }

// VariantSpecs returns the ODD variant scenarios as declarative specs.
func VariantSpecs() []Spec {
	truckLen := vehicle.Truck().Length
	return []Spec{
		// Three platoon vehicles ahead at ~30 m spacing; the leader
		// brakes hard at t≈6 and the followers react with small delays,
		// producing the braking wave the ego must absorb last.
		{
			Name:        HighwayPlatoon,
			Description: "Ego trails a three-vehicle platoon at 65 mph; the platoon leader hard-brakes and the braking wave propagates",
			Tags:        []string{TagVariant},
			EgoSpeedMPH: 65,
			Front:       true,
			Road:        RoadDef{Lanes: 3, Length: 8000},
			EgoLane:     1,
			Duration:    25,
			Actors: []ActorDef{
				{
					ID: "p1", Lane: 1, S: C(35), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(7.5, 0.15)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: C(0.26), Rate: J(7.0, 0.08)},
					}},
				},
				{
					ID: "p2", Lane: 1, S: C(68), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(6.8, 0.15)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: C(0.28), Rate: J(6.5, 0.08)},
					}},
				},
				{
					ID: "p3", Lane: 1, S: C(101), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(6, 0.15)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: C(0.3), Rate: J(6.0, 0.08)},
					}},
				},
			},
		},
		// Cut-out with a box truck as the occluder: a longer occlusion
		// shadow and a later reveal.
		{
			Name:        TruckCutOut,
			Description: "Cut-out with a box truck as the occluder: a longer occlusion shadow and a later reveal",
			Tags:        []string{TagVariant},
			EgoSpeedMPH: 35,
			Front:       true, Right: true, Left: true,
			Road:     RoadDef{Lanes: 3, Length: 5000},
			EgoLane:  1,
			Duration: 25,
			Actors: []ActorDef{
				{
					ID: "truck", Kind: KindTruck, Lane: 1, S: C(24 + truckLen/2), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtStation, Arg: JPlus(90, -20, 0.08)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 2, Duration: J(2.4, 0.1)},
					}},
				},
				{ID: "obstacle", Kind: KindObstacle, Lane: 1, S: C(90)},
				{
					ID: "right-blocker", Lane: 0, S: J(3, 0.5), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActMatchBeside, Offset: J(3, 0.5), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
			},
		},
		// The crosser starts on the right shoulder ahead of the ego and
		// traverses the road laterally at walking-fast pace while
		// drifting slowly forward.
		{
			Name:        UrbanCrosser,
			Description: "A crossing agent traverses the road laterally ahead of the ego at urban speed",
			Tags:        []string{TagVariant},
			EgoSpeedMPH: 25,
			Front:       true, Right: true,
			Road:     RoadDef{Lanes: 3, Length: 3000},
			EgoLane:  1,
			Duration: 20,
			Actors: []ActorDef{
				{
					ID:     "crosser",
					Kind:   KindCustom,
					Custom: vehicle.Params{Length: 0.8, Width: 0.8, MaxAccel: 1, MaxBrake: 2, MaxSpeed: 3},
					Lane:   0, DOffset: -3.0,
					S: J(55, 0.1), Speed: C(0.5), SpeedAbsolute: true,
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigEgoWithin, Arg: J(50, 0.1)},
						Do:   ActionDef{Kind: ActDrift, LatVel: J(1.8, 0.1), Duration: C(7)},
					}},
				},
				{ID: "parked", Lane: 0, DOffset: -2.6, S: C(40)},
			},
		},
		// Six surrounding actors; the lead brakes moderately.
		{
			Name:        DenseTraffic,
			Description: "Six surrounding actors at 45 mph; the lead brakes moderately",
			Tags:        []string{TagVariant},
			EgoSpeedMPH: 45,
			Front:       true, Right: true, Left: true,
			Road:     RoadDef{Lanes: 3, Length: 6000},
			EgoLane:  1,
			Duration: 25,
			Actors: []ActorDef{
				{
					ID: "lead", Lane: 1, S: C(32), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(5, 0.2)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: C(0.6), Rate: J(3.5, 0.1)},
					}},
				},
				{ID: "left-front", Lane: 2, S: J(18, 0.2), Speed: C(1)},
				{ID: "left-rear", Lane: 2, S: J(-15, 0.2), Speed: C(1.02)},
				{ID: "right-front", Lane: 0, S: J(22, 0.2), Speed: C(0.97)},
				{
					ID: "right-rear", Lane: 0, S: J(-20, 0.2), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActFollowEgo, Offset: J(22, 0.1), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
				{ID: "far-lead", Kind: KindTruck, Lane: 1, S: C(95), Speed: C(0.95)},
			},
		},
	}
}
