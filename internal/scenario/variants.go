package scenario

import (
	"repro/internal/behavior"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// Extra operational-design-domain variants beyond the paper's nine
// validation scenarios. The paper motivates Zhuyi partly as an ODD
// exploration tool ("help architects to discover new optimization
// opportunities for different ODDs", §1); these variants exercise the
// model on geometries the nine do not cover: platoons, heavy vehicles,
// crossing agents, and dense traffic.
const (
	HighwayPlatoon = "highway-platoon"
	TruckCutOut    = "truck-cut-out"
	UrbanCrosser   = "urban-crosser"
	DenseTraffic   = "dense-traffic"
)

// Variants returns the extra scenarios.
func Variants() []Scenario {
	return []Scenario{
		{
			Name:          HighwayPlatoon,
			Description:   "Ego trails a three-vehicle platoon at 65 mph; the platoon leader hard-brakes and the braking wave propagates",
			EgoSpeedMPH:   65,
			FrontActivity: true,
			Build:         buildHighwayPlatoon,
		},
		{
			Name:          TruckCutOut,
			Description:   "Cut-out with a box truck as the occluder: a longer occlusion shadow and a later reveal",
			EgoSpeedMPH:   35,
			FrontActivity: true, RightActivity: true, LeftActivity: true,
			Build: buildTruckCutOut,
		},
		{
			Name:          UrbanCrosser,
			Description:   "A crossing agent traverses the road laterally ahead of the ego at urban speed",
			EgoSpeedMPH:   25,
			FrontActivity: true, RightActivity: true,
			Build: buildUrbanCrosser,
		},
		{
			Name:          DenseTraffic,
			Description:   "Six surrounding actors at 45 mph; the lead brakes moderately",
			EgoSpeedMPH:   45,
			FrontActivity: true, RightActivity: true, LeftActivity: true,
			Build: buildDenseTraffic,
		},
	}
}

// AllWithVariants returns the nine paper scenarios followed by the
// variants.
func AllWithVariants() []Scenario { return append(All(), Variants()...) }

// VariantByName looks a variant up by name (ByName only covers the nine
// paper scenarios).
func VariantByName(name string) (Scenario, bool) {
	for _, s := range Variants() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

func buildHighwayPlatoon(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(65)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(HighwayPlatoon, fpr, seed, r, 1, v)
	// Three platoon vehicles ahead at ~30 m spacing; the leader brakes
	// hard at t≈6 and the followers react with small delays, producing
	// the braking wave the ego must absorb last.
	gaps := []float64{35, 68, 101}
	for i, g := range gaps {
		spec := sim.ActorSpec{
			ID:     []string{"p1", "p2", "p3"}[i],
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: g, D: r.LaneCenterOffset(1), Speed: v},
		}
		switch i {
		case 2: // platoon leader
			spec.Script = behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(6, 0.15)),
				Do:   &behavior.BrakeTo{Target: 0.3 * v, Decel: j.val(6.0, 0.08)},
			})
		case 1:
			spec.Script = behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(6.8, 0.15)),
				Do:   &behavior.BrakeTo{Target: 0.28 * v, Decel: j.val(6.5, 0.08)},
			})
		default:
			spec.Script = behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(7.5, 0.15)),
				Do:   &behavior.BrakeTo{Target: 0.26 * v, Decel: j.val(7.0, 0.08)},
			})
		}
		cfg.Actors = append(cfg.Actors, spec)
	}
	cfg.Duration = 25
	return cfg
}

func buildTruckCutOut(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(35)
	r := road.NewStraight(3, 5000)
	cfg := baseConfig(TruckCutOut, fpr, seed, r, 1, v)
	truck := vehicle.Truck()
	obstacleS := 90.0
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "truck",
			Params: truck,
			Init:   vehicle.FrenetState{S: 24 + truck.Length/2, D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtStation(obstacleS - j.val(20, 0.08)),
				Do:   &behavior.LaneChange{TargetLane: 2, Duration: j.val(2.4, 0.1)},
			}),
		},
		{
			ID:     "obstacle",
			Params: vehicle.StaticObstacle(),
			Init:   vehicle.FrenetState{S: obstacleS, D: r.LaneCenterOffset(1)},
		},
		{
			ID:     "right-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(3, 0.5), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(3, 0.5), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

func buildUrbanCrosser(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(25)
	r := road.NewStraight(3, 3000)
	cfg := baseConfig(UrbanCrosser, fpr, seed, r, 1, v)
	// The crosser starts on the right shoulder ahead of the ego and
	// traverses the road laterally at walking-fast pace while drifting
	// slowly forward.
	crosser := vehicle.Params{Length: 0.8, Width: 0.8, MaxAccel: 1, MaxBrake: 2, MaxSpeed: 3}
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "crosser",
			Params: crosser,
			Init:   vehicle.FrenetState{S: j.val(55, 0.1), D: r.LaneCenterOffset(0) - 3.0, Speed: 0.5},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.WhenEgoWithin(j.val(50, 0.1)),
				Do:   &behavior.Drift{LatVel: j.val(1.8, 0.1), Duration: 7},
			}),
		},
		{
			ID:     "parked",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: 40, D: r.LaneCenterOffset(0) - 2.6},
		},
	}
	cfg.Duration = 20
	return cfg
}

func buildDenseTraffic(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(45)
	r := road.NewStraight(3, 6000)
	cfg := baseConfig(DenseTraffic, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "lead",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: 32, D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(5, 0.2)),
				Do:   &behavior.BrakeTo{Target: 0.6 * v, Decel: j.val(3.5, 0.1)},
			}),
		},
		{
			ID:     "left-front",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(18, 0.2), D: r.LaneCenterOffset(2), Speed: v},
		},
		{
			ID:     "left-rear",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-15, 0.2), D: r.LaneCenterOffset(2), Speed: 1.02 * v},
		},
		{
			ID:     "right-front",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(22, 0.2), D: r.LaneCenterOffset(0), Speed: 0.97 * v},
		},
		{
			ID:     "right-rear",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-20, 0.2), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.FollowEgo{Gap: j.val(22, 0.1), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
		{
			ID:     "far-lead",
			Params: vehicle.Truck(),
			Init:   vehicle.FrenetState{S: 95, D: r.LaneCenterOffset(1), Speed: 0.95 * v},
		},
	}
	cfg.Duration = 25
	return cfg
}
