package scenario

import "repro/internal/vehicle"

// Table1Specs returns the paper's nine validation scenarios (Table 1)
// as declarative specs, in the paper's order. Their compiled
// configurations are byte-for-byte equivalent to the original
// hand-written builders — the golden tests in this package prove it —
// so every Table-1 number survives the registry refactor unchanged.
//
// The geometries (initial gaps, cut triggers, braking levels) are tuned
// so the qualitative Table-1 shape holds on this simulator: the cut-out
// scenarios require the highest frame processing rates (the fast
// variant more than the slow one), the challenging cut-ins require
// moderate rates, and the benign activity scenarios are safe at 1 FPR.
func Table1Specs() []Spec {
	carLen := vehicle.Car().Length
	return []Spec{
		// The ego follows a lead in the center lane; adjacent lanes
		// carry blockers pacing the ego; the lead swerves left,
		// revealing a static obstacle.
		{
			Name:        CutOut,
			Description: "Lead cuts out of the ego's lane revealing a static obstacle; adjacent lanes blocked",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 20,
			Front:       true, Right: true, Left: true,
			Road:     RoadDef{Lanes: 3, Length: 5000},
			EgoLane:  1,
			Duration: 25,
			Actors: []ActorDef{
				{
					ID: "lead", Lane: 1, S: C(14 + carLen), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtStation, Arg: JPlus(52, -19, 0.08)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 2, Duration: J(1.9, 0.1)},
					}},
				},
				{ID: "obstacle", Kind: KindObstacle, Lane: 1, S: C(52)},
				{
					ID: "left-blocker", Lane: 2, S: J(-6, 0.3), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActMatchBeside, Offset: J(-6, 0.3), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
				{
					ID: "right-blocker", Lane: 0, S: J(4, 0.5), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActMatchBeside, Offset: J(4, 0.5), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
			},
		},
		// Cut-out at higher ego speed: larger gaps, a later and quicker
		// reveal.
		{
			Name:        CutOutFast,
			Description: "Cut-out at higher ego speed",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 40,
			Front:       true, Right: true, Left: true,
			Road:     RoadDef{Lanes: 3, Length: 5000},
			EgoLane:  1,
			Duration: 25,
			Actors: []ActorDef{
				{
					ID: "lead", Lane: 1, S: C(27 + carLen), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtStation, Arg: JPlus(92, -13, 0.08)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 2, Duration: J(1.5, 0.1)},
					}},
				},
				{ID: "obstacle", Kind: KindObstacle, Lane: 1, S: C(92)},
				{
					ID: "left-blocker", Lane: 2, S: J(-6, 0.3), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActMatchBeside, Offset: J(-6, 0.3), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
				{
					ID: "right-blocker", Lane: 0, S: J(4, 0.5), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActMatchBeside, Offset: J(4, 0.5), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
			},
		},
		// An actor one lane over and far ahead merges into the ego's
		// lane at a lower speed, then brakes moderately.
		{
			Name:        CutIn,
			Description: "Actor cuts in far ahead of the ego",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 70,
			Front:       true,
			Road:        RoadDef{Lanes: 3, Length: 8000},
			EgoLane:     1,
			Duration:    30,
			Actors: []ActorDef{{
				ID: "cutter", Lane: 2, S: J(58, 0.08), Speed: J(0.82, 0.05),
				Stages: []StageDef{
					{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(2.5, 0.2)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(3.0, 0.1)},
					},
					{
						When: TriggerDef{Kind: TrigAtTime, Arg: C(10)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: C(0.62), Rate: J(2.8, 0.1)},
					},
				},
			}},
		},
		// An actor pacing the ego in the right lane accelerates, merges
		// barely ahead, and brakes; a blocker in the left lane rules out
		// evasion.
		{
			Name:        ChallengingCutIn,
			Description: "Actor cuts in close ahead; left lane blocked, braking is the only option",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 60,
			Front:       true, Right: true,
			Road:     RoadDef{Lanes: 3, Length: 8000},
			EgoLane:  1,
			Duration: 30,
			Actors:   challengingCutInActors(0.28),
		},
		// The same choreography on a constant-radius left curve. The
		// lower curved-road speed is more forgiving; the cutter brakes
		// deeper to stress the same perception-latency boundary.
		{
			Name:        ChallengingCutInCurved,
			Description: "Challenging cut-in on a curved road",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 40,
			Front:       true, Right: true, Left: true,
			Road:     RoadDef{Lanes: 3, Curved: true, LeadIn: 60, Radius: 280, ArcLen: 2500},
			EgoLane:  1,
			Duration: 30,
			Actors:   challengingCutInActors(0.18),
		},
		// Highway following with a sudden full stop by the lead.
		{
			Name:        VehicleFollowing,
			Description: "Ego follows the lead at 50 m on a highway; the lead hard-brakes to zero",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 70,
			Front:       true,
			Road:        RoadDef{Lanes: 3, Length: 8000},
			EgoLane:     1,
			Duration:    30,
			Actors: []ActorDef{{
				ID: "lead", Lane: 1, S: C(50 + carLen), Speed: C(1),
				Stages: []StageDef{{
					When: TriggerDef{Kind: TrigAtTime, Arg: J(5, 0.2)},
					Do:   ActionDef{Kind: ActBrakeTo, Target: C(0), Rate: J(5.0, 0.06)},
				}},
			}},
		},
		// Ego in the left lane; an actor from the rightmost lane merges
		// to the middle; a rear actor merges right. Nothing enters the
		// ego's corridor.
		{
			Name:        FrontRightActivity1,
			Description: "Benign lane changes in adjacent lanes; no corridor conflicts",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 40,
			Front:       true, Right: true,
			Road:     RoadDef{Lanes: 3, Length: 6000},
			EgoLane:  2,
			Duration: 25,
			Actors: []ActorDef{
				{
					ID: "merger", Lane: 0, S: J(30, 0.1), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(2, 0.2)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(2.5, 0.1)},
					}},
				},
				{
					ID: "rear", Lane: 2, S: J(-28, 0.1), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(4, 0.2)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(2.5, 0.1)},
					}},
				},
			},
		},
		// Ego in the middle lane; the front actor cuts out to the
		// rightmost lane and paces the ego; a rear actor follows the ego.
		{
			Name:        FrontRightActivity2,
			Description: "Front actor cuts out to the right and paces the ego; rear actor follows",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 40,
			Front:       true, Right: true,
			Road:     RoadDef{Lanes: 3, Length: 6000},
			EgoLane:  1,
			Duration: 25,
			Actors: []ActorDef{
				{
					ID: "pacer", Lane: 1, S: J(32, 0.1), Speed: C(1),
					Stages: []StageDef{
						{
							When: TriggerDef{Kind: TrigAtTime, Arg: J(3, 0.2)},
							Do:   ActionDef{Kind: ActLaneChange, TargetLane: 0, Duration: J(2.5, 0.1)},
						},
						{
							When: TriggerDef{Kind: TrigImmediately},
							Do:   ActionDef{Kind: ActMatchBeside, Offset: J(2, 0.5), MaxAccel: 2.5, MaxBrake: 6},
						},
					},
				},
				{
					ID: "follower", Lane: 1, S: J(-30, 0.1), Speed: C(1),
					Stages: []StageDef{{
						When: TriggerDef{Kind: TrigImmediately},
						Do:   ActionDef{Kind: ActFollowEgo, Offset: J(26, 0.1), MaxAccel: 2.5, MaxBrake: 6},
					}},
				},
			},
		},
		// The paper's Table-1 activity columns for this row are
		// ambiguous in the source text; the flags here follow the §4.1
		// description ("an actor is launched on the right most lane,
		// which cuts into the ego's lane ahead of the ego").
		{
			Name:        FrontRightActivity3,
			Description: "Actor from the rightmost lane cuts in ahead of the ego",
			Tags:        []string{TagTable1},
			EgoSpeedMPH: 60,
			Front:       true, Right: true,
			Road:     RoadDef{Lanes: 3, Length: 8000},
			EgoLane:  1,
			Duration: 25,
			Actors: []ActorDef{{
				ID: "cutter", Lane: 0, S: J(42, 0.08), Speed: C(0.9),
				Stages: []StageDef{{
					When: TriggerDef{Kind: TrigGapToEgoBelow, Arg: J(38, 0.08)},
					Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(2.6, 0.1)},
				}},
			}},
		},
	}
}

// challengingCutInActors is the shared choreography of the straight and
// curved challenging cut-ins; brakeTarget is the cutter's end-speed
// factor after merging.
func challengingCutInActors(brakeTarget float64) []ActorDef {
	return []ActorDef{
		{
			ID: "cutter", Lane: 0, S: J(3, 0.5), Speed: C(1),
			Stages: []StageDef{
				{
					When: TriggerDef{Kind: TrigAtTime, Arg: J(2.0, 0.2)},
					Do:   ActionDef{Kind: ActAccelTo, Target: C(1.12), Rate: C(2.5)},
				},
				{
					When: TriggerDef{Kind: TrigGapToEgoAbove, Arg: J(6, 0.1)},
					Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(1.0, 0.1)},
				},
				{
					When: TriggerDef{Kind: TrigImmediately},
					Do:   ActionDef{Kind: ActBrakeTo, Target: C(brakeTarget), Rate: J(8.2, 0.05)},
				},
			},
		},
		{
			ID: "left-blocker", Lane: 2, S: C(-10), Speed: C(1),
			Stages: []StageDef{{
				When: TriggerDef{Kind: TrigImmediately},
				Do:   ActionDef{Kind: ActMatchBeside, Offset: J(-9, 0.2), MaxAccel: 2.5, MaxBrake: 6},
			}},
		},
	}
}
