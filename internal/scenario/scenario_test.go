package scenario

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/world"
)

func TestAllNineScenariosPresent(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("scenario count = %d, want 9", len(all))
	}
	wantOrder := []string{
		CutOut, CutOutFast, CutIn, ChallengingCutIn, ChallengingCutInCurved,
		VehicleFollowing, FrontRightActivity1, FrontRightActivity2, FrontRightActivity3,
	}
	for i, s := range all {
		if s.Name != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, s.Name, wantOrder[i])
		}
	}
}

func TestTable1SpeedsMatchPaper(t *testing.T) {
	want := map[string]float64{
		CutOut:                 20,
		CutOutFast:             40,
		CutIn:                  70,
		ChallengingCutIn:       60,
		ChallengingCutInCurved: 40,
		VehicleFollowing:       70,
		FrontRightActivity1:    40,
		FrontRightActivity2:    40,
		FrontRightActivity3:    60,
	}
	for _, s := range All() {
		if s.EgoSpeedMPH != want[s.Name] {
			t.Errorf("%s speed = %v mph, want %v", s.Name, s.EgoSpeedMPH, want[s.Name])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName(CutOutFast); !ok {
		t.Error("cut-out-fast not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("phantom scenario found")
	}
	if len(Names()) != 9 || len(SortedNames()) != 9 {
		t.Error("name lists wrong size")
	}
}

func TestValidateAll(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildConfigsConsistent(t *testing.T) {
	for _, s := range All() {
		cfg := s.Build(10, 3)
		if cfg.FPR != 10 || cfg.Seed != 3 {
			t.Errorf("%s: fpr/seed not propagated: %+v", s.Name, cfg)
		}
		wantSpeed := units.MPHToMPS(s.EgoSpeedMPH)
		if math.Abs(cfg.EgoInit.Speed-wantSpeed) > 1e-9 {
			t.Errorf("%s: ego speed %v, want %v", s.Name, cfg.EgoInit.Speed, wantSpeed)
		}
		if cfg.DesiredSpeed != cfg.EgoInit.Speed {
			t.Errorf("%s: desired speed mismatch", s.Name)
		}
		if cfg.Road.NumLanes != 3 {
			t.Errorf("%s: lanes = %d, want 3 (paper: 3-lane road)", s.Name, cfg.Road.NumLanes)
		}
		if len(cfg.Actors) == 0 {
			t.Errorf("%s: no actors", s.Name)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	a := buildCutOut(10, 7, true)
	b := buildCutOut(10, 7, true)
	if a.Actors[0].Init != b.Actors[0].Init {
		t.Error("same seed produced different geometry")
	}
	c := buildCutOut(10, 8, true)
	if a.Actors[2].Init == c.Actors[2].Init {
		t.Error("different seeds produced identical jittered geometry")
	}
}

func TestCurvedScenarioUsesCurvedRoad(t *testing.T) {
	cfg := buildChallengingCutIn(30, 1, true)
	if cfg.Name != ChallengingCutInCurved {
		t.Errorf("name = %s", cfg.Name)
	}
	// Somewhere past the lead-in the road must curve.
	if cfg.Road.Ref.Curvature(500) == 0 {
		t.Error("curved scenario road has zero curvature at s=500")
	}
	straight := buildChallengingCutIn(30, 1, false)
	if straight.Road.Ref.Curvature(500) != 0 {
		t.Error("straight scenario road has curvature")
	}
}

// TestScenariosSafeAtFullRate runs every scenario once at 30 FPR: the
// paper's Table 1 shows no scenario requires more than 30 FPR.
func TestScenariosSafeAtFullRate(t *testing.T) {
	for _, s := range All() {
		res, err := sim.Run(s.Build(30, 1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Collided() {
			t.Errorf("%s collided at 30 FPR: %+v (min gap %v)", s.Name, res.Collision, res.MinBumperGap)
		}
	}
}

// TestCutOutCollidesAtOneFPR checks the scenario family's central
// mechanism: the cut-out reveal defeats a 1-FPR perception system.
func TestCutOutCollidesAtOneFPR(t *testing.T) {
	collided := 0
	for seed := int64(1); seed <= 3; seed++ {
		res, err := sim.Run(buildCutOut(1, seed, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Collided() {
			collided++
		}
	}
	if collided == 0 {
		t.Error("cut-out at 1 FPR never collided across 3 seeds")
	}
}

func TestActivityFlagsRoughlyMatchFOV(t *testing.T) {
	// Scenarios flagged with right/left activity must place an actor
	// laterally on that side of the ego at some point during a run
	// (flags describe activity over the scenario, not just at spawn).
	for _, s := range All() {
		cfg := s.Build(30, 1)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		hasRight, hasLeft := false, false
		for _, row := range res.Trace.Rows {
			_, egoD := cfg.Road.Frenet(row.Ego.Pose.Pos)
			for _, a := range row.Actors {
				_, d := cfg.Road.Frenet(a.Pose.Pos)
				if d < egoD-1.5 {
					hasRight = true
				}
				if d > egoD+1.5 {
					hasLeft = true
				}
			}
		}
		if s.RightActivity && !hasRight {
			t.Errorf("%s flagged right activity but no actor was ever on the right", s.Name)
		}
		if s.LeftActivity && !hasLeft {
			t.Errorf("%s flagged left activity but no actor was ever on the left", s.Name)
		}
	}
}

func TestScenarioActorsStartApart(t *testing.T) {
	// No scenario may spawn overlapping vehicles.
	for _, s := range All() {
		cfg := s.Build(30, 1)
		agents := make([]world.Agent, 0, len(cfg.Actors)+1)
		agents = append(agents, cfg.EgoInit.ToAgent(cfg.Road, world.EgoID, cfg.EgoParams))
		for _, a := range cfg.Actors {
			agents = append(agents, a.Init.ToAgent(cfg.Road, a.ID, a.Params))
		}
		for i := range agents {
			for k := i + 1; k < len(agents); k++ {
				if agents[i].BBox().Intersects(agents[k].BBox()) {
					t.Errorf("%s: %s overlaps %s at spawn", s.Name, agents[i].ID, agents[k].ID)
				}
			}
		}
	}
}
