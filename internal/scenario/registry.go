package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// Well-known registry tags.
const (
	// TagTable1 marks the paper's nine validation scenarios.
	TagTable1 = "table1"
	// TagVariant marks the extra operational-design-domain variants.
	TagVariant = "variant"
	// TagGenerated marks procedurally generated scenarios.
	TagGenerated = "generated"
)

// Registry is a named scenario catalog: scenarios register once under a
// unique name with free-form tags and are looked up by name or listed
// by tag, in registration order. It is safe for concurrent use; the
// engine's result cache keys on these names, so uniqueness here is what
// keeps generated corpora from aliasing cache slots.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string
}

// Entry is one registered scenario. Spec is non-nil when the scenario
// was registered from a declarative spec.
type Entry struct {
	Scenario Scenario
	Tags     []string
	Spec     *Spec
}

func (e *Entry) hasTags(tags []string) bool {
	for _, want := range tags {
		found := false
		for _, t := range e.Tags {
			if t == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Register adds a scenario under its name. Duplicate names are
// rejected: the engine cache and every by-name API depend on a name
// identifying exactly one scenario.
func (r *Registry) Register(sc Scenario, tags ...string) error {
	return r.register(sc, tags, nil)
}

// RegisterSpec validates and registers a declarative spec; the spec's
// tags become the entry's tags.
func (r *Registry) RegisterSpec(sp Spec) error {
	if err := sp.Validate(); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	return r.register(sp.Scenario(), sp.Tags, &sp)
}

// register inserts the complete entry under one critical section, so
// concurrent readers never observe a spec-registered scenario without
// its spec.
func (r *Registry) register(sc Scenario, tags []string, sp *Spec) error {
	if sc.Name == "" {
		return fmt.Errorf("registry: scenario with empty name")
	}
	if sc.Build == nil {
		return fmt.Errorf("registry: scenario %s has no Build", sc.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[sc.Name]; ok {
		return fmt.Errorf("registry: scenario %q already registered", sc.Name)
	}
	r.entries[sc.Name] = &Entry{Scenario: sc, Tags: append([]string(nil), tags...), Spec: sp}
	r.order = append(r.order, sc.Name)
	return nil
}

// mustRegisterSpec is for the built-in catalogs, whose specs are
// statically known to be valid and unique.
func (r *Registry) mustRegisterSpec(sp Spec) {
	if err := r.RegisterSpec(sp); err != nil {
		panic(err)
	}
}

// Lookup returns the named scenario.
func (r *Registry) Lookup(name string) (Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return Scenario{}, false
	}
	return e.Scenario, true
}

// Get returns the full entry (scenario, tags, optional spec).
func (r *Registry) Get(name string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// SpecOf returns the declarative spec a scenario was registered from.
func (r *Registry) SpecOf(name string) (Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok || e.Spec == nil {
		return Spec{}, false
	}
	return *e.Spec, true
}

// List returns the scenarios carrying every given tag (all scenarios
// when no tags are given), in registration order.
func (r *Registry) List(tags ...string) []Scenario {
	entries := r.Entries(tags...)
	out := make([]Scenario, len(entries))
	for i, e := range entries {
		out[i] = e.Scenario
	}
	return out
}

// Entries returns the full entries (scenario, tags, optional spec)
// carrying every given tag, in registration order.
func (r *Registry) Entries(tags ...string) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Entry
	for _, name := range r.order {
		if e := r.entries[name]; e.hasTags(tags) {
			out = append(out, *e)
		}
	}
	return out
}

// Names returns the names of List(tags...).
func (r *Registry) Names(tags ...string) []string {
	scs := r.List(tags...)
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name
	}
	return out
}

// SortedNames returns all matching names sorted alphabetically.
func (r *Registry) SortedNames(tags ...string) []string {
	n := r.Names(tags...)
	sort.Strings(n)
	return n
}

// Len reports how many scenarios are registered.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

var defaultRegistry = struct {
	once sync.Once
	r    *Registry
}{}

// Default returns the process-wide registry, seeded on first use with
// the paper's nine Table-1 scenarios (TagTable1) and the extra ODD
// variants (TagVariant). Generated scenarios register here to become
// addressable by name through the facade, the CLIs, and the engine
// cache.
func Default() *Registry {
	defaultRegistry.once.Do(func() {
		r := NewRegistry()
		for _, sp := range Table1Specs() {
			r.mustRegisterSpec(sp)
		}
		for _, sp := range VariantSpecs() {
			r.mustRegisterSpec(sp)
		}
		defaultRegistry.r = r
	})
	return defaultRegistry.r
}

// Lookup finds a scenario by name in the default registry — paper
// scenarios, variants, and anything registered since (e.g. generated
// corpora).
func Lookup(name string) (Scenario, bool) { return Default().Lookup(name) }

// Register adds a scenario to the default registry.
func Register(sc Scenario, tags ...string) error { return Default().Register(sc, tags...) }

// RegisterSpec validates and adds a spec to the default registry.
func RegisterSpec(sp Spec) error { return Default().RegisterSpec(sp) }
