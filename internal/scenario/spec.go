package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// jitterer perturbs scenario geometry deterministically per seed.
type jitterer struct{ rng *rand.Rand }

func newJitterer(seed int64) jitterer {
	return jitterer{rng: rand.New(rand.NewSource(seed ^ 0x5eed))}
}

// val returns base perturbed by up to ±frac (relative).
func (j jitterer) val(base, frac float64) float64 {
	return base * (1 + frac*(2*j.rng.Float64()-1))
}

// Val is a possibly-jittered scalar in a Spec: it evaluates to
// Base + Jit·(1 + Frac·U) with U uniform in [-1, 1], drawn from the
// compile seed's jitter stream. A Val with Frac == 0 is fully
// deterministic and consumes no random draw, so adding deterministic
// parameters to a spec never shifts the jitter of later ones.
type Val struct {
	Base float64 // deterministic addend
	Jit  float64 // jittered term's magnitude
	Frac float64 // relative jitter amplitude; 0 = deterministic
}

// C is a constant (never-jittered) Val.
func C(x float64) Val { return Val{Base: x} }

// J is a purely jittered Val: base·(1 + frac·U).
func J(base, frac float64) Val { return Val{Jit: base, Frac: frac} }

// JPlus offsets a jittered term by a deterministic base:
// base + jit·(1 + frac·U). Used for e.g. "the obstacle station minus a
// jittered reveal gap".
func JPlus(base, jit, frac float64) Val { return Val{Base: base, Jit: jit, Frac: frac} }

// Bounds returns the interval the Val can evaluate to.
func (v Val) Bounds() (lo, hi float64) {
	a := v.Base + v.Jit*(1-v.Frac)
	b := v.Base + v.Jit*(1+v.Frac)
	if a > b {
		a, b = b, a
	}
	return a, b
}

// evaluator draws jitter and records every evaluated value for the
// property tests (nil info skips recording).
type evaluator struct {
	j    jitterer
	info *CompileInfo
}

func (e *evaluator) val(where string, v Val) float64 {
	out := v.Base
	if v.Frac != 0 {
		out += e.j.val(v.Jit, v.Frac)
	} else {
		out += v.Jit
	}
	if e.info != nil {
		e.info.Values = append(e.info.Values, EvaluatedVal{Where: where, Decl: v, Value: out})
	}
	return out
}

// CompileInfo records every jitter-evaluated scalar of one compilation,
// so tests can assert determinism and declared-range containment
// without reaching into behavior closures.
type CompileInfo struct {
	Name     string
	EgoSpeed float64 // m/s
	Values   []EvaluatedVal
}

// EvaluatedVal is one evaluated Spec scalar.
type EvaluatedVal struct {
	Where string // e.g. "actor lead stage 0 trigger"
	Decl  Val
	Value float64
}

// RoadDef declares the scenario road: a straight segment, or a lead-in
// followed by a constant-radius left curve (the paper's curved ODD).
type RoadDef struct {
	Lanes  int
	Length float64 // straight road length, m

	Curved bool
	LeadIn float64 // straight lead-in before the curve, m
	Radius float64 // curve radius, m (positive: left turn)
	ArcLen float64 // curve length, m
}

func (rd RoadDef) build() *road.Road {
	if rd.Curved {
		return road.NewCurved(rd.Lanes, rd.LeadIn, rd.Radius, rd.ArcLen)
	}
	return road.NewStraight(rd.Lanes, rd.Length)
}

// ActorKind selects the vehicle parameter preset of an actor.
type ActorKind int

// Actor parameter presets.
const (
	KindCar ActorKind = iota
	KindTruck
	KindObstacle
	KindCustom // params taken from ActorDef.Custom
)

func (k ActorKind) params(custom vehicle.Params) vehicle.Params {
	switch k {
	case KindTruck:
		return vehicle.Truck()
	case KindObstacle:
		return vehicle.StaticObstacle()
	case KindCustom:
		return custom
	default:
		return vehicle.Car()
	}
}

// TriggerKind selects when a scripted stage starts.
type TriggerKind int

// Trigger kinds, mirroring package behavior's trigger constructors.
const (
	TrigImmediately   TriggerKind = iota
	TrigAtTime                    // Arg: simulation time, s
	TrigAtStation                 // Arg: actor station, m
	TrigGapToEgoAbove             // Arg: actor lead over ego, m
	TrigGapToEgoBelow             // Arg: actor lead over ego, m
	TrigEgoWithin                 // Arg: |actor − ego| station distance, m
)

// TriggerDef declares a stage trigger.
type TriggerDef struct {
	Kind TriggerKind
	Arg  Val
}

// ActionKind selects the stage maneuver.
type ActionKind int

// Action kinds, mirroring package behavior's actions.
const (
	ActLaneChange ActionKind = iota
	ActBrakeTo
	ActAccelTo
	ActMatchBeside
	ActFollowEgo
	ActDrift
)

// ActionDef declares one maneuver. Only the fields of the selected Kind
// are read; speed targets are ego-speed factors unless TargetAbsolute.
type ActionDef struct {
	Kind ActionKind

	TargetLane int // LaneChange
	Duration   Val // LaneChange / Drift: seconds

	Target         Val  // BrakeTo / AccelTo speed target
	TargetAbsolute bool // Target in m/s instead of ×(ego speed)
	Rate           Val  // BrakeTo decel / AccelTo accel magnitude, m/s²

	Offset             Val     // MatchBeside OffsetS / FollowEgo Gap, m
	MaxAccel, MaxBrake float64 // MatchBeside / FollowEgo envelopes

	LatVel Val // Drift lateral velocity, m/s
}

// StageDef pairs a trigger with an action.
type StageDef struct {
	When TriggerDef
	Do   ActionDef
}

// ActorDef declares one scripted actor: parameter preset, spawn pose
// (lane center plus optional lateral offset at a station), initial
// speed, and trigger-gated stages.
type ActorDef struct {
	ID            string
	Kind          ActorKind
	Custom        vehicle.Params // KindCustom only
	Lane          int
	DOffset       float64 // extra lateral offset from the lane center, m
	S             Val     // initial station, m
	Speed         Val     // ego-speed factor unless SpeedAbsolute
	SpeedAbsolute bool
	Stages        []StageDef
}

// Spec is a declarative, parameterized driving scenario. It compiles to
// a sim.Config for a given (FPR, seed): every jittered Val draws from
// the seed's jitter stream in declaration order, so compilation is
// deterministic per (name, fpr, seed) and arbitrarily many distinct
// scenarios can be generated, registered, and cached by name.
type Spec struct {
	Name        string
	Description string
	Tags        []string
	EgoSpeedMPH float64
	// Activity flags as reported in the paper's Table 1.
	Front, Right, Left bool

	Road     RoadDef
	EgoLane  int
	Duration float64 // s
	Actors   []ActorDef

	// Record is the trace recording level compiled into the simulator
	// configuration; sweep-only corpus specs can declare themselves
	// summary-level. The zero value (full) is omitted from the spec's
	// canonical JSON, so adding or defaulting this field changes no
	// existing fingerprint — archived runs recorded before the field
	// existed still hit.
	Record trace.Level `json:",omitempty"`
}

// HasTag reports whether the spec carries the tag.
func (sp Spec) HasTag(tag string) bool {
	for _, t := range sp.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Compile builds the simulator configuration for one seeded run at the
// given uniform per-camera frame processing rate.
func (sp Spec) Compile(fpr float64, seed int64) sim.Config {
	cfg, _ := sp.compile(fpr, seed, nil)
	return cfg
}

// CompileTraced is Compile plus a record of every evaluated jitter
// value; tests use it to prove determinism and range containment.
func (sp Spec) CompileTraced(fpr float64, seed int64) (sim.Config, *CompileInfo) {
	info := &CompileInfo{Name: sp.Name}
	cfg, info := sp.compile(fpr, seed, info)
	return cfg, info
}

func (sp Spec) compile(fpr float64, seed int64, info *CompileInfo) (sim.Config, *CompileInfo) {
	ev := &evaluator{j: newJitterer(seed), info: info}
	v := units.MPHToMPS(sp.EgoSpeedMPH)
	if info != nil {
		info.EgoSpeed = v
	}
	r := sp.Road.build()
	cfg := baseConfig(sp.Name, fpr, seed, r, sp.EgoLane, v)
	cfg.Duration = sp.Duration
	cfg.Record = sp.Record

	for _, a := range sp.Actors {
		where := "actor " + a.ID
		s := ev.val(where+" init.s", a.S)
		d := r.LaneCenterOffset(a.Lane) + a.DOffset
		speed := ev.val(where+" init.speed", a.Speed)
		if !a.SpeedAbsolute {
			speed *= v
		}
		spec := sim.ActorSpec{
			ID:     a.ID,
			Params: a.Kind.params(a.Custom),
			Init:   vehicle.FrenetState{S: s, D: d, Speed: speed},
		}
		if len(a.Stages) > 0 {
			stages := make([]behavior.Stage, len(a.Stages))
			for i, st := range a.Stages {
				sw := fmt.Sprintf("%s stage %d", where, i)
				stages[i] = behavior.Stage{
					When: st.When.build(ev, sw+" trigger"),
					Do:   st.Do.build(ev, sw, v),
				}
			}
			spec.Script = behavior.NewScript(stages...)
		}
		cfg.Actors = append(cfg.Actors, spec)
	}
	return cfg, info
}

func (td TriggerDef) build(ev *evaluator, where string) behavior.Trigger {
	switch td.Kind {
	case TrigAtTime:
		return behavior.AtTime(ev.val(where, td.Arg))
	case TrigAtStation:
		return behavior.AtStation(ev.val(where, td.Arg))
	case TrigGapToEgoAbove:
		return behavior.WhenGapToEgoAbove(ev.val(where, td.Arg))
	case TrigGapToEgoBelow:
		return behavior.WhenGapToEgoBelow(ev.val(where, td.Arg))
	case TrigEgoWithin:
		return behavior.WhenEgoWithin(ev.val(where, td.Arg))
	default:
		return behavior.Immediately()
	}
}

// build evaluates the action's parameters in declaration order (target
// before rate, lateral velocity before duration) so the jitter stream
// matches the hand-written builders this compiler replaced.
func (ad ActionDef) build(ev *evaluator, where string, egoSpeed float64) behavior.Action {
	switch ad.Kind {
	case ActBrakeTo:
		target := ev.val(where+" target", ad.Target)
		if !ad.TargetAbsolute {
			target *= egoSpeed
		}
		return &behavior.BrakeTo{Target: target, Decel: ev.val(where+" rate", ad.Rate)}
	case ActAccelTo:
		target := ev.val(where+" target", ad.Target)
		if !ad.TargetAbsolute {
			target *= egoSpeed
		}
		return &behavior.AccelTo{Target: target, Accel: ev.val(where+" rate", ad.Rate)}
	case ActMatchBeside:
		return &behavior.MatchBeside{
			OffsetS:  ev.val(where+" offset", ad.Offset),
			MaxAccel: ad.MaxAccel,
			MaxBrake: ad.MaxBrake,
		}
	case ActFollowEgo:
		return &behavior.FollowEgo{
			Gap:      ev.val(where+" offset", ad.Offset),
			MaxAccel: ad.MaxAccel,
			MaxBrake: ad.MaxBrake,
		}
	case ActDrift:
		return &behavior.Drift{
			LatVel:   ev.val(where+" latvel", ad.LatVel),
			Duration: ev.val(where+" duration", ad.Duration),
		}
	default: // ActLaneChange
		return &behavior.LaneChange{
			TargetLane: ad.TargetLane,
			Duration:   ev.val(where+" duration", ad.Duration),
		}
	}
}

// Scenario wraps the spec as a registrable Scenario whose Build
// compiles the spec; the scenario carries the spec's content
// fingerprint so persistent-store keys survive without a registry.
func (sp Spec) Scenario() Scenario {
	return Scenario{
		Name:          sp.Name,
		Description:   sp.Description,
		EgoSpeedMPH:   sp.EgoSpeedMPH,
		FrontActivity: sp.Front,
		RightActivity: sp.Right,
		LeftActivity:  sp.Left,
		Build:         func(fpr float64, seed int64) sim.Config { return sp.Compile(fpr, seed) },
		Fingerprint:   SpecFingerprint(sp),
	}
}

// Validate reports static spec errors: malformed road, out-of-road
// lanes, duplicate actors, negative-speed or out-of-range jitter
// declarations. Seed-dependent validity (spawn overlaps, simulator
// checks) is covered by compiling and sim.ValidateConfig.
func (sp Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("spec: empty name")
	}
	if sp.EgoSpeedMPH <= 0 {
		return fmt.Errorf("spec %s: ego speed %v mph, need > 0", sp.Name, sp.EgoSpeedMPH)
	}
	if sp.Duration <= 0 {
		return fmt.Errorf("spec %s: duration %v, need > 0", sp.Name, sp.Duration)
	}
	if sp.Record > trace.LevelOff {
		return fmt.Errorf("spec %s: invalid recording level %d", sp.Name, sp.Record)
	}
	if sp.Road.Lanes < 1 {
		return fmt.Errorf("spec %s: %d lanes, need >= 1", sp.Name, sp.Road.Lanes)
	}
	if sp.Road.Curved {
		if sp.Road.Radius <= 0 || sp.Road.ArcLen <= 0 || sp.Road.LeadIn < 0 {
			return fmt.Errorf("spec %s: invalid curved road %+v", sp.Name, sp.Road)
		}
	} else if sp.Road.Length <= 0 {
		return fmt.Errorf("spec %s: road length %v, need > 0", sp.Name, sp.Road.Length)
	}
	if sp.EgoLane < 0 || sp.EgoLane >= sp.Road.Lanes {
		return fmt.Errorf("spec %s: ego lane %d outside [0,%d)", sp.Name, sp.EgoLane, sp.Road.Lanes)
	}
	ids := map[string]bool{world.EgoID: true}
	for _, a := range sp.Actors {
		if a.ID == "" {
			return fmt.Errorf("spec %s: actor with empty ID", sp.Name)
		}
		if ids[a.ID] {
			return fmt.Errorf("spec %s: duplicate actor %q", sp.Name, a.ID)
		}
		ids[a.ID] = true
		if a.Lane < 0 || a.Lane >= sp.Road.Lanes {
			return fmt.Errorf("spec %s: actor %s lane %d outside [0,%d)", sp.Name, a.ID, a.Lane, sp.Road.Lanes)
		}
		if a.Kind == KindCustom && (a.Custom.Length <= 0 || a.Custom.Width <= 0) {
			return fmt.Errorf("spec %s: actor %s custom params %+v", sp.Name, a.ID, a.Custom)
		}
		if lo, _ := a.Speed.Bounds(); lo < 0 {
			return fmt.Errorf("spec %s: actor %s speed can go negative (%+v)", sp.Name, a.ID, a.Speed)
		}
		for _, v := range append([]Val{a.S, a.Speed}, stageVals(a.Stages)...) {
			if v.Frac < 0 || v.Frac >= 1 {
				return fmt.Errorf("spec %s: actor %s jitter fraction %v outside [0,1)", sp.Name, a.ID, v.Frac)
			}
		}
		for i, st := range a.Stages {
			if st.Do.Kind == ActLaneChange && (st.Do.TargetLane < 0 || st.Do.TargetLane >= sp.Road.Lanes) {
				return fmt.Errorf("spec %s: actor %s stage %d lane change to %d outside [0,%d)",
					sp.Name, a.ID, i, st.Do.TargetLane, sp.Road.Lanes)
			}
		}
	}
	return nil
}

func stageVals(stages []StageDef) []Val {
	var out []Val
	for _, st := range stages {
		out = append(out, st.When.Arg, st.Do.Duration, st.Do.Target, st.Do.Rate, st.Do.Offset, st.Do.LatVel)
	}
	return out
}

func baseConfig(name string, fpr float64, seed int64, r *road.Road, egoLane int, egoSpeed float64) sim.Config {
	return sim.Config{
		Name:            name,
		Road:            r,
		EgoInit:         vehicle.FrenetState{S: 0, D: r.LaneCenterOffset(egoLane), Speed: egoSpeed},
		EgoParams:       vehicle.Car(),
		DesiredSpeed:    egoSpeed,
		Duration:        30,
		FPR:             fpr,
		Perception:      perception.DefaultConfig(),
		Seed:            seed,
		StopOnCollision: true,
	}
}
