package scenario

// Property-based tests over the whole scenario space — every registered
// spec plus freshly generated corpora, across seeds: compiled
// configurations are valid, deterministic per (name, fpr, seed), and
// every jittered value stays inside its declared range. CI runs these
// with -count=5 so generator nondeterminism regressions surface.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/world"
)

// propertySpecs is the corpus under test: the built-in catalogs plus a
// generated batch covering every family.
func propertySpecs(t *testing.T) []Spec {
	t.Helper()
	specs := append(Table1Specs(), VariantSpecs()...)
	gen := NewGenerator(GenOptions{Seed: 42})
	specs = append(specs, gen.Generate(15)...)
	return specs
}

func TestPropertySpecsValidate(t *testing.T) {
	for _, sp := range propertySpecs(t) {
		if err := sp.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestPropertyCompiledConfigsValid: for every spec and seed, the
// compiled config passes the simulator's own validation, keeps speeds
// non-negative and gaps/durations positive, and spawns every actor on
// (or within a shoulder of) the 3-lane road without overlaps.
func TestPropertyCompiledConfigsValid(t *testing.T) {
	for _, sp := range propertySpecs(t) {
		for seed := int64(1); seed <= 4; seed++ {
			cfg := sp.Compile(12, seed)
			if err := sim.ValidateConfig(cfg); err != nil {
				t.Fatalf("%s seed %d: %v", sp.Name, seed, err)
			}
			if cfg.Name != sp.Name || cfg.Seed != seed || cfg.FPR != 12 {
				t.Fatalf("%s seed %d: identity not propagated: %+v", sp.Name, seed, cfg)
			}
			if cfg.EgoInit.Speed <= 0 || cfg.DesiredSpeed <= 0 || cfg.Duration <= 0 {
				t.Fatalf("%s seed %d: non-positive ego speed/duration", sp.Name, seed)
			}
			if cfg.Road.NumLanes != 3 {
				t.Fatalf("%s seed %d: %d lanes, want 3", sp.Name, seed, cfg.Road.NumLanes)
			}
			agents := []world.Agent{cfg.EgoInit.ToAgent(cfg.Road, world.EgoID, cfg.EgoParams)}
			for _, a := range cfg.Actors {
				if a.Init.Speed < 0 {
					t.Fatalf("%s seed %d: actor %s negative speed %v", sp.Name, seed, a.ID, a.Init.Speed)
				}
				// On the paved lanes, or at most a shoulder (one lane
				// width) off — where crossers and parked cars start.
				if !cfg.Road.InBounds(a.Init.D, cfg.Road.LaneWidth) {
					t.Fatalf("%s seed %d: actor %s off-road at d=%v", sp.Name, seed, a.ID, a.Init.D)
				}
				agents = append(agents, a.Init.ToAgent(cfg.Road, a.ID, a.Params))
			}
			for i := range agents {
				for k := i + 1; k < len(agents); k++ {
					if agents[i].BBox().Intersects(agents[k].BBox()) {
						t.Fatalf("%s seed %d: %s overlaps %s at spawn",
							sp.Name, seed, agents[i].ID, agents[k].ID)
					}
				}
			}
		}
	}
}

// TestPropertyCompileDeterministic: compiling the same (name, fpr,
// seed) twice yields identical configurations and identical jitter
// streams; a different seed moves at least one jittered value.
func TestPropertyCompileDeterministic(t *testing.T) {
	for _, sp := range propertySpecs(t) {
		for seed := int64(1); seed <= 3; seed++ {
			cfgA, infoA := sp.CompileTraced(9, seed)
			cfgB, infoB := sp.CompileTraced(9, seed)
			if !reflect.DeepEqual(infoA, infoB) {
				t.Fatalf("%s seed %d: jitter stream not deterministic", sp.Name, seed)
			}
			sa, stagesA := scrubScripts(cfgA)
			sb, stagesB := scrubScripts(cfgB)
			if !reflect.DeepEqual(sa, sb) || !reflect.DeepEqual(stagesA, stagesB) {
				t.Fatalf("%s seed %d: compile not deterministic", sp.Name, seed)
			}
		}
		_, info1 := sp.CompileTraced(9, 1)
		_, info2 := sp.CompileTraced(9, 2)
		jittered := false
		for i, v := range info1.Values {
			if v.Decl.Frac != 0 && v.Value != info2.Values[i].Value {
				jittered = true
				break
			}
		}
		hasJitter := false
		for _, v := range info1.Values {
			if v.Decl.Frac != 0 {
				hasJitter = true
			}
		}
		if hasJitter && !jittered {
			t.Errorf("%s: different seeds produced identical jitter", sp.Name)
		}
	}
}

// TestPropertyJitterWithinDeclaredRange: every evaluated value lies in
// its Val's declared interval across many seeds.
func TestPropertyJitterWithinDeclaredRange(t *testing.T) {
	for _, sp := range propertySpecs(t) {
		for seed := int64(1); seed <= 10; seed++ {
			_, info := sp.CompileTraced(5, seed)
			for _, v := range info.Values {
				lo, hi := v.Decl.Bounds()
				if v.Value < lo-1e-9 || v.Value > hi+1e-9 {
					t.Fatalf("%s seed %d: %s = %v outside declared [%v, %v]",
						sp.Name, seed, v.Where, v.Value, lo, hi)
				}
			}
		}
	}
}

// TestPropertyGeneratedCorpusDistinctAndDeterministic: a generated
// corpus has unique names, registers cleanly into a fresh registry, and
// regenerating with the same seed reproduces it exactly; a different
// generator seed yields different parameters.
func TestPropertyGeneratedCorpusDistinctAndDeterministic(t *testing.T) {
	const n = 25
	gen := NewGenerator(GenOptions{Seed: 7})
	specs := gen.Generate(n)
	if len(specs) != n {
		t.Fatalf("generated %d specs, want %d", len(specs), n)
	}
	reg := NewRegistry()
	for _, sp := range specs {
		if err := reg.RegisterSpec(sp); err != nil {
			t.Fatalf("register %s: %v", sp.Name, err)
		}
		if !sp.HasTag(TagGenerated) {
			t.Errorf("%s missing %q tag", sp.Name, TagGenerated)
		}
	}
	if reg.Len() != n {
		t.Fatalf("registry holds %d, want %d (duplicate names?)", reg.Len(), n)
	}
	if got := len(reg.List(TagGenerated)); got != n {
		t.Errorf("tagged listing has %d, want %d", got, n)
	}

	again := NewGenerator(GenOptions{Seed: 7}).Generate(n)
	if !reflect.DeepEqual(specs, again) {
		t.Error("same generator seed did not reproduce the corpus")
	}
	other := NewGenerator(GenOptions{Seed: 8}).Generate(n)
	same := 0
	for i := range specs {
		if specs[i].EgoSpeedMPH == other[i].EgoSpeedMPH {
			same++
		}
	}
	if same == n {
		t.Error("different generator seeds produced identical corpora")
	}
}

// TestPropertyGeneratedFamiliesCovered: round-robin sampling covers
// every requested family, and family restriction holds.
func TestPropertyGeneratedFamiliesCovered(t *testing.T) {
	specs := NewGenerator(GenOptions{Seed: 3}).Generate(len(Families()) * 2)
	seen := map[Family]int{}
	for _, sp := range specs {
		for _, f := range Families() {
			if sp.HasTag(string(f)) {
				seen[f]++
			}
		}
	}
	for _, f := range Families() {
		if seen[f] != 2 {
			t.Errorf("family %s sampled %d times, want 2", f, seen[f])
		}
	}
	only := NewGenerator(GenOptions{Seed: 3, Families: []Family{FamilyCutOut}}).Generate(5)
	for _, sp := range only {
		if !sp.HasTag(string(FamilyCutOut)) {
			t.Errorf("%s escaped the family restriction", sp.Name)
		}
	}
}

// TestPropertyValBounds: the declared interval really brackets the
// evaluation formula.
func TestPropertyValBounds(t *testing.T) {
	for _, v := range []Val{C(5), J(10, 0.2), J(-10, 0.2), JPlus(52, -19, 0.08), {}} {
		lo, hi := v.Bounds()
		if lo > hi {
			t.Errorf("%+v: bounds inverted [%v, %v]", v, lo, hi)
		}
		mid := v.Base + v.Jit
		if mid < lo-1e-12 || mid > hi+1e-12 {
			t.Errorf("%+v: center %v outside [%v, %v]", v, mid, lo, hi)
		}
		if v.Frac == 0 && math.Abs(hi-lo) > 1e-12 {
			t.Errorf("%+v: deterministic Val with nonzero range [%v, %v]", v, lo, hi)
		}
	}
}
