package scenario

// Info is a wire-friendly scenario description: the fields a catalog
// consumer (the `zhuyi scenarios list` CLI, the campaign server's
// GET /v1/scenarios endpoint) needs to pick a scenario, without the
// full Spec or the compiled geometry.
type Info struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	EgoSpeedMPH float64  `json:"ego_speed_mph"`
	Tags        []string `json:"tags,omitempty"`
	// HasSpec reports whether the scenario is backed by a declarative
	// Spec (true for every registry entry today; hand-built Scenario
	// values registered directly would report false).
	HasSpec bool `json:"has_spec"`
}

// InfoOf summarizes one spec, registered or not — the generator's
// corpus members are described with it before registration.
func InfoOf(sp Spec) Info {
	return Info{
		Name:        sp.Name,
		Description: sp.Description,
		EgoSpeedMPH: sp.EgoSpeedMPH,
		Tags:        append([]string(nil), sp.Tags...),
		HasSpec:     true,
	}
}

// Catalog lists the registry's entries as Infos, in registration
// order, optionally filtered to entries carrying all the given tags.
func (r *Registry) Catalog(tags ...string) []Info {
	entries := r.Entries(tags...)
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = Info{
			Name:        e.Scenario.Name,
			Description: e.Scenario.Description,
			EgoSpeedMPH: e.Scenario.EgoSpeedMPH,
			Tags:        append([]string(nil), e.Tags...),
			HasSpec:     e.Spec != nil,
		}
	}
	return out
}

// Catalog lists the default registry as Infos. See Registry.Catalog.
func Catalog(tags ...string) []Info { return Default().Catalog(tags...) }
