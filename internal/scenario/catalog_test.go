package scenario

import "testing"

// TestCatalogMirrorsRegistry: every registry entry appears as an Info
// with its tags, and tag filtering matches Entries.
func TestCatalogMirrorsRegistry(t *testing.T) {
	all := Catalog()
	if len(all) != Default().Len() {
		t.Fatalf("catalog size %d, registry %d", len(all), Default().Len())
	}
	for _, info := range all {
		e, ok := Default().Get(info.Name)
		if !ok {
			t.Errorf("catalog entry %q not in registry", info.Name)
			continue
		}
		if info.Description != e.Scenario.Description || info.EgoSpeedMPH != e.Scenario.EgoSpeedMPH {
			t.Errorf("%s: info drifted from registry entry", info.Name)
		}
		if info.HasSpec != (e.Spec != nil) {
			t.Errorf("%s: HasSpec = %v", info.Name, info.HasSpec)
		}
	}
	if got := len(Catalog(TagTable1)); got != 9 {
		t.Errorf("table1 catalog size %d", got)
	}
}

// TestInfoOf: generated (unregistered) specs describe themselves.
func TestInfoOf(t *testing.T) {
	specs := NewGenerator(GenOptions{Seed: 7}).Generate(3)
	for _, sp := range specs {
		info := InfoOf(sp)
		if info.Name != sp.Name || !info.HasSpec {
			t.Errorf("InfoOf(%s) = %+v", sp.Name, info)
		}
	}
}
