package scenario

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRegistryRegisterLookupList(t *testing.T) {
	r := NewRegistry()
	mk := func(name string) Scenario {
		return Scenario{Name: name, Build: func(fpr float64, seed int64) sim.Config { return sim.Config{} }}
	}
	if err := r.Register(mk("a"), "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(mk("b"), "x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(mk("c")); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("b"); !ok {
		t.Error("b not found")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("phantom scenario found")
	}
	if got := r.Names(); !equalStrings(got, []string{"a", "b", "c"}) {
		t.Errorf("names = %v (registration order lost?)", got)
	}
	if got := r.Names("x"); !equalStrings(got, []string{"a", "b"}) {
		t.Errorf("tag x names = %v", got)
	}
	if got := r.Names("x", "y"); !equalStrings(got, []string{"b"}) {
		t.Errorf("tag x+y names = %v", got)
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestRegistryRejectsDuplicatesAndInvalid(t *testing.T) {
	r := NewRegistry()
	sc := Scenario{Name: "dup", Build: func(fpr float64, seed int64) sim.Config { return sim.Config{} }}
	if err := r.Register(sc); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(sc); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate accepted: %v", err)
	}
	if err := r.Register(Scenario{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register(Scenario{Name: "nobuild"}); err == nil {
		t.Error("nil Build accepted")
	}
	if err := r.RegisterSpec(Spec{Name: "bad"}); err == nil {
		t.Error("invalid spec accepted")
	}
	offRoad := Table1Specs()[0]
	offRoad.Name = "off-road-lane-change"
	offRoad.Actors[0].Stages[0].Do.TargetLane = 7
	if err := r.RegisterSpec(offRoad); err == nil || !strings.Contains(err.Error(), "lane change to 7") {
		t.Errorf("off-road lane change accepted: %v", err)
	}
}

func TestRegistrySpecRoundTrip(t *testing.T) {
	r := NewRegistry()
	sp := Table1Specs()[0]
	if err := r.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	got, ok := r.SpecOf(sp.Name)
	if !ok {
		t.Fatal("spec not retrievable")
	}
	if got.Name != sp.Name || len(got.Actors) != len(sp.Actors) {
		t.Errorf("spec round trip: %+v", got)
	}
	e, ok := r.Get(sp.Name)
	if !ok || e.Spec == nil || !e.hasTags([]string{TagTable1}) {
		t.Errorf("entry = %+v", e)
	}
	if _, ok := r.SpecOf("missing"); ok {
		t.Error("phantom spec")
	}
}

func TestDefaultRegistrySeeded(t *testing.T) {
	r := Default()
	if got := len(r.List(TagTable1)); got != 9 {
		t.Errorf("table1 scenarios = %d, want 9", got)
	}
	if got := len(r.List(TagVariant)); got != 4 {
		t.Errorf("variants = %d, want 4", got)
	}
	// Lookup covers both catalogs; ByName stays table1-only.
	if _, ok := Lookup(HighwayPlatoon); !ok {
		t.Error("variant not resolvable through Lookup")
	}
	if _, ok := Lookup(CutOutFast); !ok {
		t.Error("paper scenario not resolvable through Lookup")
	}
	if _, ok := ByName(HighwayPlatoon); ok {
		t.Error("variant leaked into the paper scenario listing")
	}
	for _, sc := range r.List() {
		if _, ok := r.SpecOf(sc.Name); !ok {
			t.Errorf("%s: built-in scenario without a spec", sc.Name)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
