package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// FuzzSpecCompile drives spec validation and compilation with
// arbitrary JSON-decoded specs: malformed specs must be rejected by
// Validate with an error — never a panic — and any spec Validate
// accepts must compile deterministically without panicking.
func FuzzSpecCompile(f *testing.F) {
	for _, sp := range Table1Specs() {
		b, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b, int64(1))
	}
	for _, sp := range NewGenerator(GenOptions{Seed: 7}).Generate(3) {
		b, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b, int64(3))
	}
	f.Add([]byte(`{}`), int64(1))
	f.Add([]byte(`{"Name":"x","EgoSpeedMPH":45,"Duration":10,"Road":{"Lanes":0}}`), int64(2))
	f.Add([]byte(`{"Name":"x","EgoSpeedMPH":45,"Duration":10,"Road":{"Lanes":2,"Length":200},"EgoLane":5}`), int64(2))
	f.Add([]byte(`{"Name":"x","EgoSpeedMPH":45,"Duration":10,"Road":{"Lanes":2,"Curved":true,"Radius":-1}}`), int64(4))
	f.Add([]byte(`{"Name":"x","EgoSpeedMPH":45,"Duration":10,"Road":{"Lanes":2,"Length":200},"Actors":[{"ID":"a","Lane":1,"Speed":{"Jit":1,"Frac":2}}]}`), int64(5))

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		var sp Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return // not a spec at all
		}
		if err := sp.Validate(); err != nil {
			return // rejected cleanly: exactly what malformed input must do
		}
		// Validate accepted it: compilation must not panic and must be
		// deterministic per (fpr, seed).
		cfg, info := sp.CompileTraced(30, seed)
		_, info2 := sp.CompileTraced(30, seed)
		if !reflect.DeepEqual(info, info2) {
			t.Fatalf("compilation nondeterministic for seed %d", seed)
		}
		// The compiled config must at least survive the simulator's own
		// static validation path without panicking (it may legitimately
		// reject seed-dependent geometry).
		_ = sim.ValidateConfig(cfg)
	})
}
