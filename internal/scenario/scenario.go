// Package scenario defines the paper's nine validation driving
// scenarios (Table 1) plus extra operational-design-domain variants. All
// scenarios take place on a 3-lane road; each returns a complete
// simulator configuration whose geometry is jittered by a seed,
// reproducing the run-to-run variance the paper averages over ten runs.
//
// The scenario geometries (initial gaps, cut triggers, braking levels)
// are tuned so the qualitative Table-1 shape holds on this simulator:
// the cut-out scenarios require the highest frame processing rates (the
// fast variant more than the slow one), the challenging cut-ins require
// moderate rates, and the benign activity scenarios are safe at 1 FPR.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/behavior"
	"repro/internal/perception"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// Canonical scenario names, in the paper's Table-1 order.
const (
	CutOut                 = "cut-out"
	CutOutFast             = "cut-out-fast"
	CutIn                  = "cut-in"
	ChallengingCutIn       = "challenging-cut-in"
	ChallengingCutInCurved = "challenging-cut-in-curved"
	VehicleFollowing       = "vehicle-following"
	FrontRightActivity1    = "front-right-activity-1"
	FrontRightActivity2    = "front-right-activity-2"
	FrontRightActivity3    = "front-right-activity-3"
)

// Scenario is a named, parameterized driving scenario.
type Scenario struct {
	Name        string
	Description string
	EgoSpeedMPH float64
	// Activity flags as reported in Table 1.
	FrontActivity bool
	RightActivity bool
	LeftActivity  bool
	// Build returns a simulator configuration for one seeded run at the
	// given uniform per-camera frame processing rate.
	Build func(fpr float64, seed int64) sim.Config
}

// All returns the nine Table-1 scenarios in the paper's order.
func All() []Scenario {
	return []Scenario{
		{
			Name:          CutOut,
			Description:   "Lead cuts out of the ego's lane revealing a static obstacle; adjacent lanes blocked",
			EgoSpeedMPH:   20,
			FrontActivity: true, RightActivity: true, LeftActivity: true,
			Build: func(fpr float64, seed int64) sim.Config { return buildCutOut(fpr, seed, false) },
		},
		{
			Name:          CutOutFast,
			Description:   "Cut-out at higher ego speed",
			EgoSpeedMPH:   40,
			FrontActivity: true, RightActivity: true, LeftActivity: true,
			Build: func(fpr float64, seed int64) sim.Config { return buildCutOut(fpr, seed, true) },
		},
		{
			Name:          CutIn,
			Description:   "Actor cuts in far ahead of the ego",
			EgoSpeedMPH:   70,
			FrontActivity: true,
			Build:         buildCutIn,
		},
		{
			Name:          ChallengingCutIn,
			Description:   "Actor cuts in close ahead; left lane blocked, braking is the only option",
			EgoSpeedMPH:   60,
			FrontActivity: true, RightActivity: true,
			Build: func(fpr float64, seed int64) sim.Config { return buildChallengingCutIn(fpr, seed, false) },
		},
		{
			Name:          ChallengingCutInCurved,
			Description:   "Challenging cut-in on a curved road",
			EgoSpeedMPH:   40,
			FrontActivity: true, RightActivity: true, LeftActivity: true,
			Build: func(fpr float64, seed int64) sim.Config { return buildChallengingCutIn(fpr, seed, true) },
		},
		{
			Name:          VehicleFollowing,
			Description:   "Ego follows the lead at 50 m on a highway; the lead hard-brakes to zero",
			EgoSpeedMPH:   70,
			FrontActivity: true,
			Build:         buildVehicleFollowing,
		},
		{
			Name:          FrontRightActivity1,
			Description:   "Benign lane changes in adjacent lanes; no corridor conflicts",
			EgoSpeedMPH:   40,
			FrontActivity: true, RightActivity: true,
			Build: buildFrontRight1,
		},
		{
			Name:          FrontRightActivity2,
			Description:   "Front actor cuts out to the right and paces the ego; rear actor follows",
			EgoSpeedMPH:   40,
			FrontActivity: true, RightActivity: true,
			Build: buildFrontRight2,
		},
		{
			// The paper's Table-1 activity columns for this row are
			// ambiguous in the source text; the flags here follow the
			// §4.1 description ("an actor is launched on the right most
			// lane, which cuts into the ego's lane ahead of the ego").
			Name:          FrontRightActivity3,
			Description:   "Actor from the rightmost lane cuts in ahead of the ego",
			EgoSpeedMPH:   60,
			FrontActivity: true, RightActivity: true,
			Build: buildFrontRight3,
		},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists all scenario names in order.
func Names() []string {
	var out []string
	for _, s := range All() {
		out = append(out, s.Name)
	}
	return out
}

// jitterer perturbs scenario geometry deterministically per seed.
type jitterer struct{ rng *rand.Rand }

func newJitterer(seed int64) jitterer {
	return jitterer{rng: rand.New(rand.NewSource(seed ^ 0x5eed))}
}

// val returns base perturbed by up to ±frac (relative).
func (j jitterer) val(base, frac float64) float64 {
	return base * (1 + frac*(2*j.rng.Float64()-1))
}

func baseConfig(name string, fpr float64, seed int64, r *road.Road, egoLane int, egoSpeed float64) sim.Config {
	return sim.Config{
		Name:            name,
		Road:            r,
		EgoInit:         vehicle.FrenetState{S: 0, D: r.LaneCenterOffset(egoLane), Speed: egoSpeed},
		EgoParams:       vehicle.Car(),
		DesiredSpeed:    egoSpeed,
		Duration:        30,
		FPR:             fpr,
		Perception:      perception.DefaultConfig(),
		Seed:            seed,
		StopOnCollision: true,
	}
}

// buildCutOut implements the Cut-out and Cut-out fast scenarios: the ego
// follows a lead in the center lane; adjacent lanes carry blockers
// pacing the ego; the lead swerves left, revealing a static obstacle.
func buildCutOut(fpr float64, seed int64, fast bool) sim.Config {
	j := newJitterer(seed)
	mph := 20.0
	leadGap := 14.0    // initial bumper-ish gap to the lead, m
	revealLead := 19.0 // lead's gap to the obstacle when it swerves, m
	obstacleAhead := 52.0
	swerve := 1.9 // lead lane-change duration, s
	if fast {
		mph = 40
		leadGap = 27
		revealLead = 13
		obstacleAhead = 92
		swerve = 1.5
	}
	v := units.MPHToMPS(mph)
	r := road.NewStraight(3, 5000)
	cfg := baseConfig(CutOut, fpr, seed, r, 1, v)
	if fast {
		cfg.Name = CutOutFast
	}

	leadS := leadGap + cfg.EgoParams.Length
	obstacleS := obstacleAhead

	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "lead",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: leadS, D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(
				behavior.Stage{
					When: behavior.AtStation(obstacleS - j.val(revealLead, 0.08)),
					Do:   &behavior.LaneChange{TargetLane: 2, Duration: j.val(swerve, 0.1)},
				},
			),
		},
		{
			ID:     "obstacle",
			Params: vehicle.StaticObstacle(),
			Init:   vehicle.FrenetState{S: obstacleS, D: r.LaneCenterOffset(1)},
		},
		{
			ID:     "left-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-6, 0.3), D: r.LaneCenterOffset(2), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(-6, 0.3), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
		{
			ID:     "right-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(4, 0.5), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(4, 0.5), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

// buildCutIn implements the (mild) Cut-in: an actor one lane over and
// far ahead merges into the ego's lane at a lower speed.
func buildCutIn(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(70)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(CutIn, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{{
		ID:     "cutter",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: j.val(58, 0.08), D: r.LaneCenterOffset(2), Speed: j.val(0.82, 0.05) * v},
		Script: behavior.NewScript(
			behavior.Stage{
				When: behavior.AtTime(j.val(2.5, 0.2)),
				Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(3.0, 0.1)},
			},
			behavior.Stage{
				When: behavior.AtTime(10),
				Do:   &behavior.BrakeTo{Target: 0.62 * v, Decel: j.val(2.8, 0.1)},
			},
		),
	}}
	cfg.Duration = 30
	return cfg
}

// buildChallengingCutIn implements the close cut-in: an actor pacing the
// ego in the right lane accelerates, merges barely ahead, and brakes; a
// blocker in the left lane rules out evasion. The curved variant places
// the same choreography on a constant-radius left curve.
func buildChallengingCutIn(fpr float64, seed int64, curved bool) sim.Config {
	j := newJitterer(seed)
	mph := 60.0
	if curved {
		mph = 40
	}
	v := units.MPHToMPS(mph)
	var r *road.Road
	if curved {
		r = road.NewCurved(3, 60, 280, 2500)
	} else {
		r = road.NewStraight(3, 8000)
	}
	cfg := baseConfig(ChallengingCutIn, fpr, seed, r, 1, v)
	brakeTarget := 0.28
	if curved {
		cfg.Name = ChallengingCutInCurved
		// The lower curved-road speed is more forgiving; the cutter must
		// brake deeper to stress the same perception-latency boundary.
		brakeTarget = 0.18
	}
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "cutter",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(3, 0.5), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(
				behavior.Stage{
					When: behavior.AtTime(j.val(2.0, 0.2)),
					Do:   &behavior.AccelTo{Target: 1.12 * v, Accel: 2.5},
				},
				behavior.Stage{
					When: behavior.WhenGapToEgoAbove(j.val(6, 0.1)),
					Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(1.0, 0.1)},
				},
				behavior.Stage{
					When: behavior.Immediately(),
					Do:   &behavior.BrakeTo{Target: brakeTarget * v, Decel: j.val(8.2, 0.05)},
				},
			),
		},
		{
			ID:     "left-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: -10, D: r.LaneCenterOffset(2), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(-9, 0.2), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 30
	return cfg
}

// buildVehicleFollowing implements highway following with a sudden full
// stop by the lead.
func buildVehicleFollowing(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(70)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(VehicleFollowing, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{{
		ID:     "lead",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: 50 + cfg.EgoParams.Length, D: r.LaneCenterOffset(1), Speed: v},
		Script: behavior.NewScript(behavior.Stage{
			When: behavior.AtTime(j.val(5, 0.2)),
			Do:   &behavior.BrakeTo{Target: 0, Decel: j.val(5.0, 0.06)},
		}),
	}}
	cfg.Duration = 30
	return cfg
}

// buildFrontRight1: ego in the left lane; an actor from the rightmost
// lane merges to the middle; a rear actor merges right. Nothing enters
// the ego's corridor.
func buildFrontRight1(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(40)
	r := road.NewStraight(3, 6000)
	cfg := baseConfig(FrontRightActivity1, fpr, seed, r, 2, v)
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "merger",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(30, 0.1), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(2, 0.2)),
				Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(2.5, 0.1)},
			}),
		},
		{
			ID:     "rear",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-28, 0.1), D: r.LaneCenterOffset(2), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(4, 0.2)),
				Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(2.5, 0.1)},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

// buildFrontRight2: ego in the middle lane; the front actor cuts out to
// the rightmost lane and paces the ego; a rear actor follows the ego.
func buildFrontRight2(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(40)
	r := road.NewStraight(3, 6000)
	cfg := baseConfig(FrontRightActivity2, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "pacer",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(32, 0.1), D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(
				behavior.Stage{
					When: behavior.AtTime(j.val(3, 0.2)),
					Do:   &behavior.LaneChange{TargetLane: 0, Duration: j.val(2.5, 0.1)},
				},
				behavior.Stage{
					When: behavior.Immediately(),
					Do:   &behavior.MatchBeside{OffsetS: j.val(2, 0.5), MaxAccel: 2.5, MaxBrake: 6},
				},
			),
		},
		{
			ID:     "follower",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-30, 0.1), D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.FollowEgo{Gap: j.val(26, 0.1), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

// buildFrontRight3: ego in the middle lane; an actor from the rightmost
// lane cuts into the ego's lane well ahead.
func buildFrontRight3(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(60)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(FrontRightActivity3, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{{
		ID:     "cutter",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: j.val(42, 0.08), D: r.LaneCenterOffset(0), Speed: 0.9 * v},
		Script: behavior.NewScript(behavior.Stage{
			When: behavior.WhenGapToEgoBelow(j.val(38, 0.08)),
			Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(2.6, 0.1)},
		}),
	}}
	cfg.Duration = 25
	return cfg
}

// Validate builds every scenario once and checks the configuration is
// runnable; used by tests and the CLI.
func Validate() error {
	for _, s := range All() {
		cfg := s.Build(30, 1)
		if cfg.Road == nil || cfg.Duration <= 0 {
			return fmt.Errorf("scenario %s: invalid config", s.Name)
		}
		names := map[string]bool{}
		for _, a := range cfg.Actors {
			if names[a.ID] {
				return fmt.Errorf("scenario %s: duplicate actor %s", s.Name, a.ID)
			}
			names[a.ID] = true
		}
	}
	return nil
}

// SortedNames returns scenario names sorted alphabetically (for CLIs).
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
