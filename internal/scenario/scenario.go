// Package scenario is the procedural scenario subsystem: a declarative
// Spec language for parameterized driving scenarios, a named Registry
// with tag-based listing, and a seeded Generator that samples spec
// families into arbitrarily large scenario corpora.
//
// # Spec
//
// A Spec declares a scenario — road geometry, ego speed and lane,
// scripted actors with trigger-gated maneuver stages — with every
// scalar as a possibly-jittered Val. Compile(fpr, seed) lowers the spec
// to a sim.Config: jittered values draw from the seed's jitter stream
// in declaration order, reproducing the run-to-run variance the paper
// averages over ten runs while staying fully deterministic per
// (name, fpr, seed). CompileTraced additionally records every evaluated
// value, which is how the property tests pin determinism and
// declared-range containment.
//
// # Registry
//
// The Registry maps unique names to scenarios, with tags (TagTable1,
// TagVariant, TagGenerated, family names) for listing and filtering.
// Default() is the process-wide catalog, seeded with the paper's nine
// Table-1 scenarios and the extra ODD variants; generated scenarios
// register there to become addressable by every layer above — the run
// engine keys its result cache on these names.
//
// # Generator
//
// NewGenerator samples spec families (cut-in, cut-out, following,
// crossing, benign activity) at varied speeds, gaps, braking levels,
// and curvatures, yielding deterministic, uniquely named, valid specs
// for corpus-scale sweeps (see internal/experiments.CorpusSweep).
//
// The nine Table-1 scenarios (Table1Specs) compile byte-for-byte
// equivalent to the original hand-written builders; the golden tests in
// this package prove it against a frozen copy of those builders.
package scenario

import (
	"fmt"

	"repro/internal/sim"
)

// Canonical scenario names, in the paper's Table-1 order.
const (
	CutOut                 = "cut-out"
	CutOutFast             = "cut-out-fast"
	CutIn                  = "cut-in"
	ChallengingCutIn       = "challenging-cut-in"
	ChallengingCutInCurved = "challenging-cut-in-curved"
	VehicleFollowing       = "vehicle-following"
	FrontRightActivity1    = "front-right-activity-1"
	FrontRightActivity2    = "front-right-activity-2"
	FrontRightActivity3    = "front-right-activity-3"
)

// Scenario is a named, parameterized driving scenario.
type Scenario struct {
	Name        string
	Description string
	EgoSpeedMPH float64
	// Activity flags as reported in Table 1.
	FrontActivity bool
	RightActivity bool
	LeftActivity  bool
	// Build returns a simulator configuration for one seeded run at the
	// given uniform per-camera frame processing rate.
	Build func(fpr float64, seed int64) sim.Config
	// Fingerprint is the content hash of the declarative spec this
	// scenario was built from (SpecFingerprint), empty for opaque
	// Build closures. The persistent store keys on it, so spec-backed
	// scenarios — registered or not, generated corpora included — are
	// content-addressed: any parameter change invalidates their
	// archived runs instead of serving stale traces.
	Fingerprint string
}

// All returns the nine Table-1 scenarios in the paper's order, from the
// default registry.
func All() []Scenario { return Default().List(TagTable1) }

// ByName returns the named Table-1 scenario. Use Lookup to resolve any
// registered scenario (variants, generated corpora).
func ByName(name string) (Scenario, bool) { return taggedLookup(name, TagTable1) }

// taggedLookup resolves a name in the default registry only when the
// entry carries the tag.
func taggedLookup(name, tag string) (Scenario, bool) {
	e, ok := Default().Get(name)
	if !ok || !e.hasTags([]string{tag}) {
		return Scenario{}, false
	}
	return e.Scenario, true
}

// Names lists the nine Table-1 scenario names in order.
func Names() []string { return Default().Names(TagTable1) }

// SortedNames returns the Table-1 scenario names sorted alphabetically
// (for CLIs).
func SortedNames() []string { return Default().SortedNames(TagTable1) }

// Validate compiles every registered scenario once and checks the
// configuration is runnable; used by tests and the CLI.
func Validate() error {
	for _, s := range Default().List() {
		cfg := s.Build(30, 1)
		if err := sim.ValidateConfig(cfg); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}
