package scenario

// Golden pins for the two search-exploitable families added with the
// adversarial search layer (cut-in-chain, parked-corridor), plus a
// fingerprint-stability wall over every registered scenario. The
// byte-for-byte spec JSON goldens prove the new samplers are frozen;
// the fingerprint golden proves no existing registered scenario's
// content address moved — which is what keeps every archived store
// entry warm across this PR.
//
// Regenerate with: go test ./internal/scenario -run Golden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/world"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenFamilySpecs samples the pinned corpus: two specs per new
// family from a fixed generator seed.
func goldenFamilySpecs(f Family) []Spec {
	return NewGenerator(GenOptions{Seed: 11, Families: []Family{f}, Prefix: "golden"}).Generate(2)
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update only if the change is intentional)", path)
	}
}

// TestGoldenNewFamilySpecs pins the sampled spec JSON of the two new
// families byte-for-byte.
func TestGoldenNewFamilySpecs(t *testing.T) {
	for _, f := range []Family{FamilyCutInChain, FamilyParkedCorridor} {
		specs := goldenFamilySpecs(f)
		for _, sp := range specs {
			if err := sp.Validate(); err != nil {
				t.Fatalf("%s: %v", sp.Name, err)
			}
		}
		b, err := json.MarshalIndent(specs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		b = append(b, '\n')
		checkGolden(t, filepath.Join("testdata", fmt.Sprintf("golden_family_%s.json", f)), b)
	}
}

// TestNewFamiliesValidAcrossGeneratorSeeds sweeps the new samplers
// over many generator seeds — far beyond the fixed seeds the shared
// property suite uses — and holds them to the same spawn-safety bar:
// valid specs, simulator-valid configs, actors on (or a shoulder off)
// the road, and no spawn-bbox overlaps including the ego.
func TestNewFamiliesValidAcrossGeneratorSeeds(t *testing.T) {
	for _, f := range []Family{FamilyCutInChain, FamilyParkedCorridor} {
		for gseed := int64(1); gseed <= 20; gseed++ {
			for _, sp := range NewGenerator(GenOptions{Seed: gseed, Families: []Family{f}}).Generate(2) {
				if err := sp.Validate(); err != nil {
					t.Fatalf("%s gseed %d: %v", sp.Name, gseed, err)
				}
				for seed := int64(1); seed <= 4; seed++ {
					cfg := sp.Compile(12, seed)
					if err := sim.ValidateConfig(cfg); err != nil {
						t.Fatalf("%s gseed %d seed %d: %v", sp.Name, gseed, seed, err)
					}
					agents := []world.Agent{cfg.EgoInit.ToAgent(cfg.Road, world.EgoID, cfg.EgoParams)}
					for _, a := range cfg.Actors {
						if a.Init.Speed < 0 {
							t.Fatalf("%s gseed %d seed %d: actor %s negative speed", sp.Name, gseed, seed, a.ID)
						}
						if !cfg.Road.InBounds(a.Init.D, cfg.Road.LaneWidth) {
							t.Fatalf("%s gseed %d seed %d: actor %s off-road at d=%v", sp.Name, gseed, seed, a.ID, a.Init.D)
						}
						agents = append(agents, a.Init.ToAgent(cfg.Road, a.ID, a.Params))
					}
					for i := range agents {
						for k := i + 1; k < len(agents); k++ {
							if agents[i].BBox().Intersects(agents[k].BBox()) {
								t.Fatalf("%s gseed %d seed %d: %s overlaps %s at spawn",
									sp.Name, gseed, seed, agents[i].ID, agents[k].ID)
							}
						}
					}
				}
			}
		}
	}
}

// TestGoldenFingerprintStability pins SpecFingerprint for every
// registered scenario (Table 1 + ODD variants) and for the new-family
// golden corpus. A diff here means archived store entries under the
// old fingerprints would go cold — bump sim.Version or revert.
func TestGoldenFingerprintStability(t *testing.T) {
	fps := map[string]string{}
	for _, sp := range append(Table1Specs(), VariantSpecs()...) {
		fps[sp.Name] = SpecFingerprint(sp)
	}
	for _, f := range []Family{FamilyCutInChain, FamilyParkedCorridor} {
		for _, sp := range goldenFamilySpecs(f) {
			fps[sp.Name] = SpecFingerprint(sp)
		}
	}
	b, err := json.MarshalIndent(fps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, '\n')
	checkGolden(t, filepath.Join("testdata", "golden_fingerprints.json"), b)
}
