package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/road"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// Family names a procedural spec family the generator can sample.
type Family string

// The spec families: the maneuver archetypes of the paper's Table 1
// (cut-in, cut-out, following, benign activity) plus crossing agents,
// each sampled at varied gaps, speeds, braking levels, and curvatures —
// and two adversarial-leaning families the MRF search exploits: chained
// multi-lane cut-ins and occlusion-heavy parked-vehicle corridors.
const (
	FamilyCutIn     Family = "cut-in"
	FamilyCutOut    Family = "cut-out"
	FamilyFollowing Family = "following"
	FamilyCrossing  Family = "crossing"
	FamilyActivity  Family = "activity"
	// FamilyCutInChain stacks merges from both adjacent lanes into the
	// ego lane, each braking after its merge — headway compression in
	// waves, the regime where a low frame rate is most expensive.
	FamilyCutInChain Family = "cut-in-chain"
	// FamilyParkedCorridor lines the right shoulder with parked
	// vehicles and darts a small agent out from between them when the
	// ego is close: the occluded-appearance corner case.
	FamilyParkedCorridor Family = "parked-corridor"
)

// Families lists every spec family in sampling order.
func Families() []Family {
	return []Family{
		FamilyCutIn, FamilyCutOut, FamilyFollowing, FamilyCrossing, FamilyActivity,
		FamilyCutInChain, FamilyParkedCorridor,
	}
}

// GenOptions configures a Generator.
type GenOptions struct {
	// Seed drives all sampling; the same seed yields the same specs.
	Seed int64
	// Families restricts sampling; empty means all families.
	Families []Family
	// Prefix namespaces generated names ("gen" by default). Names have
	// the form <prefix>/<family>-<index> and are unique per generator.
	Prefix string
}

// Generator deterministically samples scenario specs family by family
// (round-robin). Every produced spec is valid (Spec.Validate passes and
// the compiled configuration clears sim.ValidateConfig for any seed)
// and uniquely named, so whole corpora can be registered and swept
// through the cached run engine.
type Generator struct {
	rng      *rand.Rand
	families []Family
	prefix   string
	n        int
}

// Validate checks the options against the known spec families. Every
// caller that accepts family names from outside the process (HTTP
// query, CLI flag, facade) must validate before constructing a
// generator: an unknown family has no sampler, and silently mapping it
// to some default would hand back specs named and tagged with a family
// they don't belong to.
func (o GenOptions) Validate() error {
	known := Families()
	for _, f := range o.Families {
		ok := false
		for _, k := range known {
			if f == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("scenario: unknown family %q (families: %s)", f, familyNames(known))
		}
	}
	return nil
}

// familyNames renders a family list for error messages.
func familyNames(fams []Family) string {
	s := ""
	for i, f := range fams {
		if i > 0 {
			s += ", "
		}
		s += string(f)
	}
	return s
}

// NewGenerator builds a generator. The options must be valid: unknown
// families panic here rather than mislabeling specs later (callers
// holding untrusted family names gate on GenOptions.Validate first).
func NewGenerator(opt GenOptions) *Generator {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	fams := opt.Families
	if len(fams) == 0 {
		fams = Families()
	}
	prefix := opt.Prefix
	if prefix == "" {
		prefix = "gen"
	}
	return &Generator{
		rng:      rand.New(rand.NewSource(opt.Seed ^ 0x5eedc0de)),
		families: fams,
		prefix:   prefix,
	}
}

// Generate samples the next n specs.
func (g *Generator) Generate(n int) []Spec {
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Next samples one spec from the next family in round-robin order.
func (g *Generator) Next() Spec {
	family := g.families[g.n%len(g.families)]
	g.n++
	name := fmt.Sprintf("%s/%s-%04d", g.prefix, family, g.n)
	var sp Spec
	switch family {
	case FamilyCutIn:
		sp = g.cutIn()
	case FamilyCutOut:
		sp = g.cutOut()
	case FamilyFollowing:
		sp = g.following()
	case FamilyCrossing:
		sp = g.crossing()
	case FamilyActivity:
		sp = g.activity()
	case FamilyCutInChain:
		sp = g.cutInChain()
	case FamilyParkedCorridor:
		sp = g.parkedCorridor()
	default:
		// Unreachable: NewGenerator validated the family list. A silent
		// fallback here once mislabeled unknown families as cut-in specs.
		panic(fmt.Sprintf("scenario: no sampler for family %q", family))
	}
	sp.Name = name
	sp.Tags = []string{TagGenerated, string(family)}
	return sp
}

// uni samples uniformly from [lo, hi].
func (g *Generator) uni(lo, hi float64) float64 { return lo + (hi-lo)*g.rng.Float64() }

// chance flips a biased coin.
func (g *Generator) chance(p float64) bool { return g.rng.Float64() < p }

// road samples the scenario road: mostly straight, sometimes the
// curved ODD. Length always generously covers the distance the ego can
// travel in the scenario.
func (g *Generator) road(mph, duration float64, allowCurve bool) RoadDef {
	if allowCurve && g.chance(0.2) {
		return RoadDef{
			Lanes:  3,
			Curved: true,
			LeadIn: g.uni(40, 90),
			Radius: g.uni(220, 520),
			ArcLen: 2500,
		}
	}
	length := math.Max(1500, units.MPHToMPS(mph)*duration*1.6+300)
	return RoadDef{Lanes: 3, Length: length}
}

// cutIn: an actor from an adjacent lane merges ahead of the ego at a
// lower speed, then brakes; optionally a blocker rules out evasion.
func (g *Generator) cutIn() Spec {
	mph := g.uni(40, 75)
	rd := g.road(mph, 30, true)
	if rd.Curved {
		mph = g.uni(35, 50) // curved ODD runs slower, like the paper's
	}
	fromLane, blockerLane := 0, 2
	if g.chance(0.5) {
		fromLane, blockerLane = 2, 0
	}
	ahead := g.uni(35, 70)
	factor := g.uni(0.75, 0.92)
	mergeAt := g.uni(1.5, 4)
	mergeDur := g.uni(1.8, 3.2)
	brakeTo := g.uni(0.35, 0.7)
	decel := g.uni(2, 5)

	sp := Spec{
		Description: fmt.Sprintf("Generated cut-in from lane %d at %.0f mph: merge ahead at %.0f m, brake to %.0f%% at %.1f m/s²",
			fromLane, mph, ahead, brakeTo*100, decel),
		EgoSpeedMPH: mph,
		Front:       true, Right: fromLane == 0, Left: fromLane == 2,
		Road:     rd,
		EgoLane:  1,
		Duration: 30,
		Actors: []ActorDef{{
			ID: "cutter", Lane: fromLane, S: J(ahead, 0.08), Speed: J(factor, 0.04),
			Stages: []StageDef{
				{
					When: TriggerDef{Kind: TrigAtTime, Arg: J(mergeAt, 0.2)},
					Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(mergeDur, 0.1)},
				},
				{
					When: TriggerDef{Kind: TrigAtTime, Arg: C(mergeAt + mergeDur + 4)},
					Do:   ActionDef{Kind: ActBrakeTo, Target: C(brakeTo), Rate: J(decel, 0.1)},
				},
			},
		}},
	}
	if g.chance(0.5) {
		sp.Right = sp.Right || blockerLane == 0
		sp.Left = sp.Left || blockerLane == 2
		sp.Actors = append(sp.Actors, ActorDef{
			ID: "blocker", Lane: blockerLane, S: J(-8, 0.2), Speed: C(1),
			Stages: []StageDef{{
				When: TriggerDef{Kind: TrigImmediately},
				Do:   ActionDef{Kind: ActMatchBeside, Offset: J(-8, 0.2), MaxAccel: 2.5, MaxBrake: 6},
			}},
		})
	}
	return sp
}

// cutOut: the lead swerves out of the ego's lane, revealing a static
// obstacle at a sampled headway; blockers optionally pace the ego in
// the adjacent lanes.
func (g *Generator) cutOut() Spec {
	mph := g.uni(18, 42)
	v := units.MPHToMPS(mph)
	carLen := vehicle.Car().Length
	leadGap := g.uni(12, 28)
	reveal := g.uni(11, 20)
	swerve := g.uni(1.4, 2.2)
	// The obstacle sits a sampled time-headway ahead, but always far
	// enough past the lead's spawn that the reveal trigger can fire.
	obstacle := math.Max(g.uni(3.2, 5.2)*v, leadGap+carLen+reveal*(1+0.08)+8)
	outLane := 2
	if g.chance(0.5) {
		outLane = 0
	}

	sp := Spec{
		Description: fmt.Sprintf("Generated cut-out at %.0f mph: lead at %.0f m swerves to lane %d revealing an obstacle at %.0f m",
			mph, leadGap, outLane, obstacle),
		EgoSpeedMPH: mph,
		Front:       true,
		Road:        g.road(mph, 25, false),
		EgoLane:     1,
		Duration:    25,
		Actors: []ActorDef{
			{
				ID: "lead", Lane: 1, S: C(leadGap + carLen), Speed: C(1),
				Stages: []StageDef{{
					When: TriggerDef{Kind: TrigAtStation, Arg: JPlus(obstacle, -reveal, 0.08)},
					Do:   ActionDef{Kind: ActLaneChange, TargetLane: outLane, Duration: J(swerve, 0.1)},
				}},
			},
			{ID: "obstacle", Kind: KindObstacle, Lane: 1, S: C(obstacle)},
		},
	}
	for _, side := range []struct {
		lane int
		id   string
	}{{2, "left-blocker"}, {0, "right-blocker"}} {
		if side.lane != outLane && g.chance(0.7) {
			sp.Right = sp.Right || side.lane == 0
			sp.Left = sp.Left || side.lane == 2
			off := g.uni(-9, -3)
			sp.Actors = append(sp.Actors, ActorDef{
				ID: side.id, Lane: side.lane, S: J(off, 0.3), Speed: C(1),
				Stages: []StageDef{{
					When: TriggerDef{Kind: TrigImmediately},
					Do:   ActionDef{Kind: ActMatchBeside, Offset: J(off, 0.3), MaxAccel: 2.5, MaxBrake: 6},
				}},
			})
		}
	}
	return sp
}

// following: highway following; the lead brakes hard to a sampled
// end speed after a sampled delay.
func (g *Generator) following() Spec {
	mph := g.uni(45, 75)
	gap := g.uni(30, 70)
	brakeAt := g.uni(3, 8)
	target := g.uni(0, 0.25)
	decel := g.uni(3.5, 6.5)
	lead := vehicle.Car().Length
	kind := KindCar
	if g.chance(0.25) {
		kind = KindTruck
		lead = vehicle.Truck().Length
		decel = math.Min(decel, vehicle.Truck().MaxBrake)
	}
	return Spec{
		Description: fmt.Sprintf("Generated following at %.0f mph: lead at %.0f m brakes to %.0f%% at %.1f m/s² after %.1f s",
			mph, gap, target*100, decel, brakeAt),
		EgoSpeedMPH: mph,
		Front:       true,
		Road:        g.road(mph, 30, false),
		EgoLane:     1,
		Duration:    30,
		Actors: []ActorDef{{
			ID: "lead", Kind: kind, Lane: 1, S: C(gap + lead), Speed: C(1),
			Stages: []StageDef{{
				When: TriggerDef{Kind: TrigAtTime, Arg: J(brakeAt, 0.15)},
				Do:   ActionDef{Kind: ActBrakeTo, Target: C(target), Rate: J(decel, 0.06)},
			}},
		}},
	}
}

// crossing: a pedestrian-like agent traverses the road laterally ahead
// of the ego at urban speed, optionally shadowed by a parked car.
func (g *Generator) crossing() Spec {
	mph := g.uni(18, 32)
	crosserS := g.uni(40, 75)
	trigger := g.uni(35, 60)
	latVel := g.uni(1.2, 2.4)
	lanes := 3
	// Long enough to cross all lanes plus the shoulder it starts on.
	driftDur := (float64(lanes)*road.DefaultLaneWidth + 4) / latVel

	sp := Spec{
		Description: fmt.Sprintf("Generated crossing at %.0f mph: agent at %.0f m crosses at %.1f m/s when the ego is within %.0f m",
			mph, crosserS, latVel, trigger),
		EgoSpeedMPH: mph,
		Front:       true, Right: true,
		Road:     g.road(mph, 20, false),
		EgoLane:  1,
		Duration: 20,
		Actors: []ActorDef{{
			ID:     "crosser",
			Kind:   KindCustom,
			Custom: vehicle.Params{Length: 0.8, Width: 0.8, MaxAccel: 1, MaxBrake: 2, MaxSpeed: 3},
			Lane:   0, DOffset: -3.0,
			S: J(crosserS, 0.1), Speed: C(0.5), SpeedAbsolute: true,
			Stages: []StageDef{{
				When: TriggerDef{Kind: TrigEgoWithin, Arg: J(trigger, 0.1)},
				Do:   ActionDef{Kind: ActDrift, LatVel: J(latVel, 0.1), Duration: C(driftDur)},
			}},
		}},
	}
	if g.chance(0.5) {
		sp.Actors = append(sp.Actors, ActorDef{
			ID: "parked", Lane: 0, DOffset: -2.6, S: C(g.uni(25, crosserS-12)),
		})
	}
	return sp
}

// cutInChain: vehicles from both adjacent lanes merge into the ego
// lane one after another, each braking after its merge. The second
// merge lands in the gap the first one just compressed, so the ego's
// effective headway collapses in waves — the regime where the cost of
// a stale perception frame compounds fastest.
func (g *Generator) cutInChain() Spec {
	mph := g.uni(45, 70)
	first := g.uni(28, 45)
	second := first + g.uni(26, 40)
	factor1 := g.uni(0.78, 0.92)
	factor2 := g.uni(0.72, 0.88)
	merge1 := g.uni(1.2, 2.6)
	dur1 := g.uni(1.6, 2.6)
	gap2 := g.uni(2.0, 4.0)
	dur2 := g.uni(1.8, 3.0)
	brakeTo := g.uni(0.30, 0.60)
	decel1 := g.uni(2.5, 5)
	decel2 := g.uni(3, 6)

	sp := Spec{
		Description: fmt.Sprintf("Generated cut-in chain at %.0f mph: merges ahead at %.0f and %.0f m, braking to %.0f%%",
			mph, first, second, brakeTo*100),
		EgoSpeedMPH: mph,
		Front:       true, Right: true, Left: true,
		Road:     g.road(mph, 30, false),
		EgoLane:  1,
		Duration: 30,
		Actors: []ActorDef{
			{
				ID: "chain-1", Lane: 0, S: J(first, 0.08), Speed: J(factor1, 0.04),
				Stages: []StageDef{
					{
						When: TriggerDef{Kind: TrigAtTime, Arg: J(merge1, 0.15)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(dur1, 0.1)},
					},
					{
						When: TriggerDef{Kind: TrigAtTime, Arg: C(merge1 + dur1 + 2)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: C(brakeTo), Rate: J(decel1, 0.1)},
					},
				},
			},
			{
				ID: "chain-2", Lane: 2, S: J(second, 0.06), Speed: J(factor2, 0.04),
				Stages: []StageDef{
					{
						When: TriggerDef{Kind: TrigAtTime, Arg: JPlus(merge1+gap2, 0.8, 0.2)},
						Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(dur2, 0.1)},
					},
					{
						When: TriggerDef{Kind: TrigAtTime, Arg: C(merge1 + gap2 + dur2 + 2.5)},
						Do:   ActionDef{Kind: ActBrakeTo, Target: J(brakeTo*0.8, 0.1), Rate: J(decel2, 0.08)},
					},
				},
			},
		},
	}
	if g.chance(0.5) {
		third := second + g.uni(26, 40)
		sp.Actors = append(sp.Actors, ActorDef{
			ID: "chain-3", Lane: 0, S: J(third, 0.05), Speed: J(g.uni(0.70, 0.85), 0.04),
			Stages: []StageDef{
				{
					When: TriggerDef{Kind: TrigAtTime, Arg: JPlus(merge1+gap2+dur2+1.5, 1.0, 0.2)},
					Do:   ActionDef{Kind: ActLaneChange, TargetLane: 1, Duration: J(g.uni(1.8, 2.8), 0.1)},
				},
				{
					When: TriggerDef{Kind: TrigAtTime, Arg: C(merge1 + gap2 + dur2 + 8)},
					Do:   ActionDef{Kind: ActBrakeTo, Target: C(brakeTo * 0.7), Rate: J(decel2, 0.08)},
				},
			},
		})
	}
	return sp
}

// parkedCorridor: an urban corridor lined with parked vehicles on the
// right shoulder; a small agent hidden just past one of them darts
// laterally into the ego lane when the ego closes in. Until the dart,
// the agent sits inside the parked row's sensor shadow, so the ego's
// reaction budget is set almost entirely by its perception rate.
func (g *Generator) parkedCorridor() Spec {
	mph := g.uni(18, 30)
	n := 3 + g.rng.Intn(3)
	start := g.uni(16, 24)
	pitch := g.uni(11, 15)
	hide := 1 + g.rng.Intn(n-1)
	trigger := g.uni(16, 30)
	latVel := g.uni(1.4, 2.6)
	carLen := vehicle.Car().Length
	// Long enough to clear the shoulder and both right lanes.
	driftDur := (2*road.DefaultLaneWidth + 4) / latVel

	sp := Spec{
		Description: fmt.Sprintf("Generated parked corridor at %.0f mph: %d parked cars from %.0f m, agent darts at %.1f m/s within %.0f m",
			mph, n, start, latVel, trigger),
		EgoSpeedMPH: mph,
		Front:       true, Right: true,
		Road:     g.road(mph, 22, false),
		EgoLane:  1,
		Duration: 22,
	}
	for i := 0; i < n; i++ {
		sp.Actors = append(sp.Actors, ActorDef{
			ID: fmt.Sprintf("parked-%d", i+1), Lane: 0, DOffset: -2.6,
			S: C(start + float64(i)*pitch),
		})
	}
	// The darter spawns just past parked car #hide's front bumper, in
	// the gap before the next one: occluded from the ego's forward
	// cameras until the drift begins. The jitter is absolute (JPlus)
	// and bounded so the agent can never overlap the deterministic
	// parked row for any seed.
	dartBase := start + float64(hide)*pitch + carLen/2 + 1.3
	sp.Actors = append(sp.Actors, ActorDef{
		ID:     "darter",
		Kind:   KindCustom,
		Custom: vehicle.Params{Length: 0.8, Width: 0.8, MaxAccel: 1.5, MaxBrake: 2, MaxSpeed: 3.5},
		Lane:   0, DOffset: -3.2,
		S: JPlus(dartBase, 0.7, 0.4), Speed: C(0), SpeedAbsolute: true,
		Stages: []StageDef{{
			When: TriggerDef{Kind: TrigEgoWithin, Arg: J(trigger, 0.12)},
			Do:   ActionDef{Kind: ActDrift, LatVel: J(latVel, 0.1), Duration: C(driftDur)},
		}},
	})
	if g.chance(0.4) {
		sp.Actors = append(sp.Actors, ActorDef{
			ID: "lead", Lane: 1, S: C(g.uni(10, 16) + carLen), Speed: C(1),
		})
	}
	return sp
}

// activity: benign lane changes and pacing confined to the two lanes
// the ego does not occupy — visible activity, no corridor conflicts.
func (g *Generator) activity() Spec {
	mph := g.uni(35, 60)
	egoLane := 0
	nearLane, farLane := 1, 2
	if g.chance(0.5) {
		egoLane, nearLane, farLane = 2, 1, 0
	}
	sp := Spec{
		Description: fmt.Sprintf("Generated benign activity at %.0f mph: lane changes and pacing beside the ego (ego lane %d)",
			mph, egoLane),
		EgoSpeedMPH: mph,
		Front:       true, Right: egoLane == 2, Left: egoLane == 0,
		Road:     g.road(mph, 25, false),
		EgoLane:  egoLane,
		Duration: 25,
	}
	n := 1 + g.rng.Intn(3)
	// Well-separated stations: ahead, behind, further ahead.
	stations := []float64{g.uni(25, 45), g.uni(-45, -25), g.uni(60, 85)}
	for i := 0; i < n; i++ {
		a := ActorDef{
			ID:    fmt.Sprintf("actor-%d", i+1),
			Lane:  []int{farLane, nearLane, nearLane}[i],
			S:     J(stations[i], 0.1),
			Speed: C(g.uni(0.92, 1.05)),
		}
		switch g.rng.Intn(3) {
		case 0: // merge between the two non-ego lanes
			target := nearLane
			if a.Lane == nearLane {
				target = farLane
			}
			a.Stages = []StageDef{{
				When: TriggerDef{Kind: TrigAtTime, Arg: J(g.uni(2, 5), 0.2)},
				Do:   ActionDef{Kind: ActLaneChange, TargetLane: target, Duration: J(2.5, 0.1)},
			}}
		case 1: // pace the ego
			a.Speed = C(1)
			a.Stages = []StageDef{{
				When: TriggerDef{Kind: TrigImmediately},
				Do:   ActionDef{Kind: ActMatchBeside, Offset: J(stations[i], 0.1), MaxAccel: 2.5, MaxBrake: 6},
			}}
		default: // cruise at the sampled speed
		}
		sp.Actors = append(sp.Actors, a)
	}
	return sp
}
