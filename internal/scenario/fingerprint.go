package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SpecFingerprint returns a stable content hash of a declarative spec:
// the SHA-256 of its canonical JSON encoding. Two specs fingerprint
// equally iff every declared field — name, road geometry, ego speed,
// actors, triggers, jitter declarations — is identical, which is
// exactly the condition under which a (FPR, seed) compilation produces
// the same simulator configuration (the name included: it becomes the
// trace's scenario metadata). The persistent run store keys archived
// traces on this value, so any spec edit cleanly invalidates its
// artifacts instead of serving stale runs.
func SpecFingerprint(sp Spec) string {
	// Spec is pure data (no closures), and encoding/json emits struct
	// fields in declaration order, so the encoding is canonical.
	b, err := json.Marshal(sp)
	if err != nil {
		// Spec contains only plain scalars, strings, and slices; this is
		// unreachable short of memory corruption.
		panic(fmt.Sprintf("scenario: fingerprint %s: %v", sp.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Fingerprint returns the identity hash of a registered scenario name.
// Scenarios registered from a declarative spec fingerprint by content
// (SpecFingerprint); scenarios registered from an opaque Build closure
// fall back to a hash of the name, which is still unique within one
// registry but cannot detect parameter drift.
func (r *Registry) Fingerprint(name string) string {
	if sp, ok := r.SpecOf(name); ok {
		return SpecFingerprint(sp)
	}
	sum := sha256.Sum256([]byte("scenario-name\x00" + name))
	return hex.EncodeToString(sum[:])
}

// FingerprintOf is Registry.Fingerprint on the default registry.
func FingerprintOf(name string) string { return Default().Fingerprint(name) }
