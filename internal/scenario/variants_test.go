package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestVariantsRegistry(t *testing.T) {
	vs := Variants()
	if len(vs) != 4 {
		t.Fatalf("variant count = %d", len(vs))
	}
	if len(AllWithVariants()) != 13 {
		t.Errorf("combined count = %d", len(AllWithVariants()))
	}
	if _, ok := VariantByName(TruckCutOut); !ok {
		t.Error("truck cut-out missing")
	}
	if _, ok := VariantByName("nope"); ok {
		t.Error("phantom variant found")
	}
	// Variants do not shadow the paper scenarios.
	if _, ok := ByName(HighwayPlatoon); ok {
		t.Error("variant leaked into the paper scenario registry")
	}
}

func TestVariantsRunSafelyAtFullRate(t *testing.T) {
	for _, s := range Variants() {
		res, err := sim.Run(s.Build(30, 1))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Collided() {
			t.Errorf("%s collided at 30 FPR: %+v (min gap %.2f)", s.Name, res.Collision, res.MinBumperGap)
		}
	}
}

func TestTruckOcclusionShadowLargerThanCar(t *testing.T) {
	// The truck variant exists to stress occlusion: its box must
	// actually be longer/wider than a car's.
	truckCfg := buildTruckCutOut(30, 1)
	carCfg := buildCutOut(30, 1, false)
	var truckLen, carLen float64
	for _, a := range truckCfg.Actors {
		if a.ID == "truck" {
			truckLen = a.Params.Length
		}
	}
	for _, a := range carCfg.Actors {
		if a.ID == "lead" {
			carLen = a.Params.Length
		}
	}
	if truckLen <= carLen {
		t.Errorf("truck length %v not larger than car %v", truckLen, carLen)
	}
}

func TestCrosserIsThreatWhenOnCollisionCourse(t *testing.T) {
	// The crossing agent's trajectory traverses the ego corridor; the
	// Zhuyi model must flag it (it exercises the velocity projection:
	// the crosser's longitudinal speed component is near zero).
	cfg := buildUrbanCrosser(30, 1)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// At some instant the front camera demand must exceed the idle
	// floor: a crossing agent with ~zero longitudinal velocity forces
	// the ego to plan a stop.
	if off.MaxFPR() <= 1.01 {
		t.Errorf("crosser never tightened the estimate: max FPR %v", off.MaxFPR())
	}
}

func TestDenseTrafficEstimatesBounded(t *testing.T) {
	// Six actors: the estimator must handle the load and keep side
	// cameras bounded by the actual threats.
	cfg := buildDenseTraffic(30, 1)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided() {
		t.Fatalf("dense traffic collided: %+v", res.Collision)
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.MaxFPR() >= 30.4 {
		t.Errorf("dense traffic saturated the estimate: %v", off.MaxFPR())
	}
}

func TestPlatoonBrakingWaveTightensFront(t *testing.T) {
	cfg := buildHighwayPlatoon(30, 1)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := core.NewEstimator()
	off, err := est.EvaluateTrace(res.Trace, core.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	maxPer := off.MaxCameraFPR()
	if maxPer["front120"] <= 1.5 {
		t.Errorf("platoon braking wave left front camera at %v FPR", maxPer["front120"])
	}
}
