package scenario

// Golden regression tests pinning the Spec/Registry refactor to the
// original hand-written builders (frozen in legacy_test.go): for every
// spec-registered scenario, the compiled sim.Config must be
// byte-for-byte equivalent — identical static fields, identical actor
// geometry, and, because behavior scripts hide closures, identical
// closed-loop traces at every time-step across seeds and rates.

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// scrubScripts strips the behavior scripts (whose closures defeat
// reflect.DeepEqual) from a copy of the config, recording per-actor
// stage counts instead.
func scrubScripts(cfg sim.Config) (sim.Config, []int) {
	stages := make([]int, len(cfg.Actors))
	actors := make([]sim.ActorSpec, len(cfg.Actors))
	copy(actors, cfg.Actors)
	for i := range actors {
		if actors[i].Script != nil {
			stages[i] = len(actors[i].Script.Stages)
			actors[i].Script = nil
		} else {
			stages[i] = -1
		}
	}
	cfg.Actors = actors
	return cfg, stages
}

// TestGoldenConfigsMatchLegacyBuilders compares every statically
// comparable part of the compiled configs against the frozen builders.
func TestGoldenConfigsMatchLegacyBuilders(t *testing.T) {
	for name, build := range legacyBuilders() {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s: not registered", name)
		}
		for seed := int64(1); seed <= 5; seed++ {
			for _, fpr := range []float64{1, 7.5, 30} {
				want, wantStages := scrubScripts(build(fpr, seed))
				got, gotStages := scrubScripts(sc.Build(fpr, seed))
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s fpr %g seed %d: compiled config differs\n got %+v\nwant %+v", name, fpr, seed, got, want)
				}
				if !reflect.DeepEqual(wantStages, gotStages) {
					t.Errorf("%s fpr %g seed %d: stage counts %v, want %v", name, fpr, seed, gotStages, wantStages)
				}
			}
		}
	}
}

// TestGoldenTracesMatchLegacyBuilders runs both configs through the
// closed-loop simulator and demands identical traces row for row —
// this pins the script closures (triggers, maneuver parameters) that
// the structural comparison cannot see.
func TestGoldenTracesMatchLegacyBuilders(t *testing.T) {
	for name, build := range legacyBuilders() {
		sc, _ := Lookup(name)
		for _, pt := range []struct {
			fpr  float64
			seed int64
		}{{30, 1}, {30, 7}, {3, 2}} {
			want, err := sim.Run(build(pt.fpr, pt.seed))
			if err != nil {
				t.Fatalf("%s legacy run: %v", name, err)
			}
			got, err := sim.Run(sc.Build(pt.fpr, pt.seed))
			if err != nil {
				t.Fatalf("%s spec run: %v", name, err)
			}
			if want.Trace.Len() != got.Trace.Len() {
				t.Errorf("%s fpr %g seed %d: trace length %d, want %d",
					name, pt.fpr, pt.seed, got.Trace.Len(), want.Trace.Len())
				continue
			}
			if !reflect.DeepEqual(want.Collision, got.Collision) {
				t.Errorf("%s fpr %g seed %d: collision %+v, want %+v",
					name, pt.fpr, pt.seed, got.Collision, want.Collision)
			}
			for i := range want.Trace.Rows {
				if !reflect.DeepEqual(want.Trace.Rows[i], got.Trace.Rows[i]) {
					t.Errorf("%s fpr %g seed %d: trace diverges at row %d (t=%.2f)",
						name, pt.fpr, pt.seed, i, want.Trace.Rows[i].Time)
					break
				}
			}
		}
	}
}
