package scenario_test

// External-package golden test (it needs internal/metrics, which
// imports scenario): the Table-1 MRF ordering the paper reports must
// survive the registry refactor — the cut-out scenarios demand the
// highest rates (fast ≥ slow), the challenging cut-ins moderate rates,
// and the benign activity scenarios are safe at 1 FPR.

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func TestGoldenTable1MRFOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full MRF searches in -short mode")
	}
	eng := engine.New(engine.Options{})
	defer eng.Close()
	grid := metrics.DefaultFPRGrid()
	const seeds = 2

	mrf := func(name string) float64 {
		sc, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		m, err := metrics.FindMRFContext(t.Context(), eng, sc, grid, seeds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return m.Value // 0 encodes "<1"
	}

	cutOutFast := mrf(scenario.CutOutFast)
	cutOut := mrf(scenario.CutOut)
	challenging := mrf(scenario.ChallengingCutIn)
	challengingCurved := mrf(scenario.ChallengingCutInCurved)
	for name, v := range map[string]float64{
		scenario.FrontRightActivity1: mrf(scenario.FrontRightActivity1),
		scenario.FrontRightActivity2: mrf(scenario.FrontRightActivity2),
		scenario.FrontRightActivity3: mrf(scenario.FrontRightActivity3),
	} {
		if v > 1 {
			t.Errorf("benign %s: MRF %g, want safe at 1 FPR", name, v)
		}
		if challenging < v {
			t.Errorf("MRF ordering: challenging-cut-in %g < %s %g", challenging, name, v)
		}
	}
	if cutOutFast < cutOut {
		t.Errorf("MRF ordering: cut-out-fast %g < cut-out %g", cutOutFast, cutOut)
	}
	if cutOut < challenging || cutOut < challengingCurved {
		t.Errorf("MRF ordering: cut-out %g below challenging cut-ins (%g, %g)",
			cutOut, challenging, challengingCurved)
	}
	if cutOut <= 1 {
		t.Errorf("cut-out MRF %g: the reveal must defeat a 1-FPR system", cutOut)
	}
}
