package scenario

// This file freezes the original hand-written scenario builders exactly
// as they shipped before the Spec/Registry refactor. They are the
// golden reference: golden_test.go proves that the declarative specs in
// table1.go and variants.go compile to byte-for-byte identical
// simulator configurations (same jitter stream, same actor scripts,
// hence identical traces). Do not "improve" these builders — any change
// here would silently weaken the regression guarantee.

import (
	"repro/internal/behavior"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/vehicle"
)

// buildCutOut implements the Cut-out and Cut-out fast scenarios: the ego
// follows a lead in the center lane; adjacent lanes carry blockers
// pacing the ego; the lead swerves left, revealing a static obstacle.
func buildCutOut(fpr float64, seed int64, fast bool) sim.Config {
	j := newJitterer(seed)
	mph := 20.0
	leadGap := 14.0    // initial bumper-ish gap to the lead, m
	revealLead := 19.0 // lead's gap to the obstacle when it swerves, m
	obstacleAhead := 52.0
	swerve := 1.9 // lead lane-change duration, s
	if fast {
		mph = 40
		leadGap = 27
		revealLead = 13
		obstacleAhead = 92
		swerve = 1.5
	}
	v := units.MPHToMPS(mph)
	r := road.NewStraight(3, 5000)
	cfg := baseConfig(CutOut, fpr, seed, r, 1, v)
	if fast {
		cfg.Name = CutOutFast
	}

	leadS := leadGap + cfg.EgoParams.Length
	obstacleS := obstacleAhead

	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "lead",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: leadS, D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(
				behavior.Stage{
					When: behavior.AtStation(obstacleS - j.val(revealLead, 0.08)),
					Do:   &behavior.LaneChange{TargetLane: 2, Duration: j.val(swerve, 0.1)},
				},
			),
		},
		{
			ID:     "obstacle",
			Params: vehicle.StaticObstacle(),
			Init:   vehicle.FrenetState{S: obstacleS, D: r.LaneCenterOffset(1)},
		},
		{
			ID:     "left-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-6, 0.3), D: r.LaneCenterOffset(2), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(-6, 0.3), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
		{
			ID:     "right-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(4, 0.5), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(4, 0.5), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

// buildCutIn implements the (mild) Cut-in: an actor one lane over and
// far ahead merges into the ego's lane at a lower speed.
func buildCutIn(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(70)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(CutIn, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{{
		ID:     "cutter",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: j.val(58, 0.08), D: r.LaneCenterOffset(2), Speed: j.val(0.82, 0.05) * v},
		Script: behavior.NewScript(
			behavior.Stage{
				When: behavior.AtTime(j.val(2.5, 0.2)),
				Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(3.0, 0.1)},
			},
			behavior.Stage{
				When: behavior.AtTime(10),
				Do:   &behavior.BrakeTo{Target: 0.62 * v, Decel: j.val(2.8, 0.1)},
			},
		),
	}}
	cfg.Duration = 30
	return cfg
}

// buildChallengingCutIn implements the close cut-in: an actor pacing the
// ego in the right lane accelerates, merges barely ahead, and brakes; a
// blocker in the left lane rules out evasion. The curved variant places
// the same choreography on a constant-radius left curve.
func buildChallengingCutIn(fpr float64, seed int64, curved bool) sim.Config {
	j := newJitterer(seed)
	mph := 60.0
	if curved {
		mph = 40
	}
	v := units.MPHToMPS(mph)
	var r *road.Road
	if curved {
		r = road.NewCurved(3, 60, 280, 2500)
	} else {
		r = road.NewStraight(3, 8000)
	}
	cfg := baseConfig(ChallengingCutIn, fpr, seed, r, 1, v)
	brakeTarget := 0.28
	if curved {
		cfg.Name = ChallengingCutInCurved
		// The lower curved-road speed is more forgiving; the cutter must
		// brake deeper to stress the same perception-latency boundary.
		brakeTarget = 0.18
	}
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "cutter",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(3, 0.5), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(
				behavior.Stage{
					When: behavior.AtTime(j.val(2.0, 0.2)),
					Do:   &behavior.AccelTo{Target: 1.12 * v, Accel: 2.5},
				},
				behavior.Stage{
					When: behavior.WhenGapToEgoAbove(j.val(6, 0.1)),
					Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(1.0, 0.1)},
				},
				behavior.Stage{
					When: behavior.Immediately(),
					Do:   &behavior.BrakeTo{Target: brakeTarget * v, Decel: j.val(8.2, 0.05)},
				},
			),
		},
		{
			ID:     "left-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: -10, D: r.LaneCenterOffset(2), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(-9, 0.2), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 30
	return cfg
}

// buildVehicleFollowing implements highway following with a sudden full
// stop by the lead.
func buildVehicleFollowing(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(70)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(VehicleFollowing, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{{
		ID:     "lead",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: 50 + cfg.EgoParams.Length, D: r.LaneCenterOffset(1), Speed: v},
		Script: behavior.NewScript(behavior.Stage{
			When: behavior.AtTime(j.val(5, 0.2)),
			Do:   &behavior.BrakeTo{Target: 0, Decel: j.val(5.0, 0.06)},
		}),
	}}
	cfg.Duration = 30
	return cfg
}

// buildFrontRight1: ego in the left lane; an actor from the rightmost
// lane merges to the middle; a rear actor merges right. Nothing enters
// the ego's corridor.
func buildFrontRight1(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(40)
	r := road.NewStraight(3, 6000)
	cfg := baseConfig(FrontRightActivity1, fpr, seed, r, 2, v)
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "merger",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(30, 0.1), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(2, 0.2)),
				Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(2.5, 0.1)},
			}),
		},
		{
			ID:     "rear",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-28, 0.1), D: r.LaneCenterOffset(2), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(4, 0.2)),
				Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(2.5, 0.1)},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

// buildFrontRight2: ego in the middle lane; the front actor cuts out to
// the rightmost lane and paces the ego; a rear actor follows the ego.
func buildFrontRight2(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(40)
	r := road.NewStraight(3, 6000)
	cfg := baseConfig(FrontRightActivity2, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "pacer",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(32, 0.1), D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(
				behavior.Stage{
					When: behavior.AtTime(j.val(3, 0.2)),
					Do:   &behavior.LaneChange{TargetLane: 0, Duration: j.val(2.5, 0.1)},
				},
				behavior.Stage{
					When: behavior.Immediately(),
					Do:   &behavior.MatchBeside{OffsetS: j.val(2, 0.5), MaxAccel: 2.5, MaxBrake: 6},
				},
			),
		},
		{
			ID:     "follower",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-30, 0.1), D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.FollowEgo{Gap: j.val(26, 0.1), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

// buildFrontRight3: ego in the middle lane; an actor from the rightmost
// lane cuts into the ego's lane well ahead.
func buildFrontRight3(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(60)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(FrontRightActivity3, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{{
		ID:     "cutter",
		Params: vehicle.Car(),
		Init:   vehicle.FrenetState{S: j.val(42, 0.08), D: r.LaneCenterOffset(0), Speed: 0.9 * v},
		Script: behavior.NewScript(behavior.Stage{
			When: behavior.WhenGapToEgoBelow(j.val(38, 0.08)),
			Do:   &behavior.LaneChange{TargetLane: 1, Duration: j.val(2.6, 0.1)},
		}),
	}}
	cfg.Duration = 25
	return cfg
}

// legacyBuilders maps every spec-registered scenario name to its frozen
// original builder.
func legacyBuilders() map[string]func(fpr float64, seed int64) sim.Config {
	return map[string]func(fpr float64, seed int64) sim.Config{
		CutOut:     func(fpr float64, seed int64) sim.Config { return buildCutOut(fpr, seed, false) },
		CutOutFast: func(fpr float64, seed int64) sim.Config { return buildCutOut(fpr, seed, true) },
		CutIn:      buildCutIn,
		ChallengingCutIn: func(fpr float64, seed int64) sim.Config {
			return buildChallengingCutIn(fpr, seed, false)
		},
		ChallengingCutInCurved: func(fpr float64, seed int64) sim.Config {
			return buildChallengingCutIn(fpr, seed, true)
		},
		VehicleFollowing:    buildVehicleFollowing,
		FrontRightActivity1: buildFrontRight1,
		FrontRightActivity2: buildFrontRight2,
		FrontRightActivity3: buildFrontRight3,
		HighwayPlatoon:      buildHighwayPlatoon,
		TruckCutOut:         buildTruckCutOut,
		UrbanCrosser:        buildUrbanCrosser,
		DenseTraffic:        buildDenseTraffic,
	}
}

func buildHighwayPlatoon(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(65)
	r := road.NewStraight(3, 8000)
	cfg := baseConfig(HighwayPlatoon, fpr, seed, r, 1, v)
	// Three platoon vehicles ahead at ~30 m spacing; the leader brakes
	// hard at t≈6 and the followers react with small delays, producing
	// the braking wave the ego must absorb last.
	gaps := []float64{35, 68, 101}
	for i, g := range gaps {
		spec := sim.ActorSpec{
			ID:     []string{"p1", "p2", "p3"}[i],
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: g, D: r.LaneCenterOffset(1), Speed: v},
		}
		switch i {
		case 2: // platoon leader
			spec.Script = behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(6, 0.15)),
				Do:   &behavior.BrakeTo{Target: 0.3 * v, Decel: j.val(6.0, 0.08)},
			})
		case 1:
			spec.Script = behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(6.8, 0.15)),
				Do:   &behavior.BrakeTo{Target: 0.28 * v, Decel: j.val(6.5, 0.08)},
			})
		default:
			spec.Script = behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(7.5, 0.15)),
				Do:   &behavior.BrakeTo{Target: 0.26 * v, Decel: j.val(7.0, 0.08)},
			})
		}
		cfg.Actors = append(cfg.Actors, spec)
	}
	cfg.Duration = 25
	return cfg
}

func buildTruckCutOut(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(35)
	r := road.NewStraight(3, 5000)
	cfg := baseConfig(TruckCutOut, fpr, seed, r, 1, v)
	truck := vehicle.Truck()
	obstacleS := 90.0
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "truck",
			Params: truck,
			Init:   vehicle.FrenetState{S: 24 + truck.Length/2, D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtStation(obstacleS - j.val(20, 0.08)),
				Do:   &behavior.LaneChange{TargetLane: 2, Duration: j.val(2.4, 0.1)},
			}),
		},
		{
			ID:     "obstacle",
			Params: vehicle.StaticObstacle(),
			Init:   vehicle.FrenetState{S: obstacleS, D: r.LaneCenterOffset(1)},
		},
		{
			ID:     "right-blocker",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(3, 0.5), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.MatchBeside{OffsetS: j.val(3, 0.5), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
	}
	cfg.Duration = 25
	return cfg
}

func buildUrbanCrosser(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(25)
	r := road.NewStraight(3, 3000)
	cfg := baseConfig(UrbanCrosser, fpr, seed, r, 1, v)
	// The crosser starts on the right shoulder ahead of the ego and
	// traverses the road laterally at walking-fast pace while drifting
	// slowly forward.
	crosser := vehicle.Params{Length: 0.8, Width: 0.8, MaxAccel: 1, MaxBrake: 2, MaxSpeed: 3}
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "crosser",
			Params: crosser,
			Init:   vehicle.FrenetState{S: j.val(55, 0.1), D: r.LaneCenterOffset(0) - 3.0, Speed: 0.5},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.WhenEgoWithin(j.val(50, 0.1)),
				Do:   &behavior.Drift{LatVel: j.val(1.8, 0.1), Duration: 7},
			}),
		},
		{
			ID:     "parked",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: 40, D: r.LaneCenterOffset(0) - 2.6},
		},
	}
	cfg.Duration = 20
	return cfg
}

func buildDenseTraffic(fpr float64, seed int64) sim.Config {
	j := newJitterer(seed)
	v := units.MPHToMPS(45)
	r := road.NewStraight(3, 6000)
	cfg := baseConfig(DenseTraffic, fpr, seed, r, 1, v)
	cfg.Actors = []sim.ActorSpec{
		{
			ID:     "lead",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: 32, D: r.LaneCenterOffset(1), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.AtTime(j.val(5, 0.2)),
				Do:   &behavior.BrakeTo{Target: 0.6 * v, Decel: j.val(3.5, 0.1)},
			}),
		},
		{
			ID:     "left-front",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(18, 0.2), D: r.LaneCenterOffset(2), Speed: v},
		},
		{
			ID:     "left-rear",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-15, 0.2), D: r.LaneCenterOffset(2), Speed: 1.02 * v},
		},
		{
			ID:     "right-front",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(22, 0.2), D: r.LaneCenterOffset(0), Speed: 0.97 * v},
		},
		{
			ID:     "right-rear",
			Params: vehicle.Car(),
			Init:   vehicle.FrenetState{S: j.val(-20, 0.2), D: r.LaneCenterOffset(0), Speed: v},
			Script: behavior.NewScript(behavior.Stage{
				When: behavior.Immediately(),
				Do:   &behavior.FollowEgo{Gap: j.val(22, 0.1), MaxAccel: 2.5, MaxBrake: 6},
			}),
		},
		{
			ID:     "far-lead",
			Params: vehicle.Truck(),
			Init:   vehicle.FrenetState{S: 95, D: r.LaneCenterOffset(1), Speed: 0.95 * v},
		},
	}
	cfg.Duration = 25
	return cfg
}
