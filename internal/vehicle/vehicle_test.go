package vehicle

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/road"
)

func TestPresetsSane(t *testing.T) {
	for _, p := range []Params{Car(), Truck()} {
		if p.Length <= 0 || p.Width <= 0 || p.MaxAccel <= 0 || p.MaxBrake <= 0 || p.MaxSpeed <= 0 {
			t.Errorf("non-positive preset field: %+v", p)
		}
		if p.ComfortBrake >= p.MaxBrake {
			t.Errorf("comfort brake >= max brake: %+v", p)
		}
	}
	s := StaticObstacle()
	if s.Length <= 0 || s.Width <= 0 {
		t.Errorf("static obstacle dims: %+v", s)
	}
}

func TestStepConstantSpeed(t *testing.T) {
	f := FrenetState{S: 0, Speed: 10}
	f = f.Step(2)
	if math.Abs(f.S-20) > 1e-9 || f.Speed != 10 {
		t.Errorf("Step = %+v", f)
	}
}

func TestStepAcceleration(t *testing.T) {
	f := FrenetState{Speed: 10, Accel: 2}
	f = f.Step(1)
	if math.Abs(f.S-11) > 1e-9 || math.Abs(f.Speed-12) > 1e-9 {
		t.Errorf("Step = %+v", f)
	}
}

func TestStepStopsAtZero(t *testing.T) {
	f := FrenetState{Speed: 5, Accel: -10}
	f = f.Step(1) // would reach -5 m/s without clamping
	if f.Speed != 0 {
		t.Errorf("Speed = %v, want 0", f.Speed)
	}
	// Distance to stop from 5 m/s at 10 m/s² is 1.25 m.
	if math.Abs(f.S-1.25) > 1e-9 {
		t.Errorf("S = %v, want 1.25", f.S)
	}
	// Further steps do not move the vehicle.
	f2 := f.Step(1)
	if f2.S != f.S || f2.Speed != 0 {
		t.Errorf("stopped vehicle moved: %+v", f2)
	}
}

func TestStepLateral(t *testing.T) {
	f := FrenetState{Speed: 10, LatVel: 0.5}
	f = f.Step(2)
	if math.Abs(f.D-1) > 1e-9 {
		t.Errorf("D = %v", f.D)
	}
}

func TestStepNonNegativeSpeedQuick(t *testing.T) {
	fn := func(v0, a, dt float64) bool {
		if math.IsNaN(v0) || math.IsNaN(a) || math.IsNaN(dt) {
			return true
		}
		v0 = math.Mod(math.Abs(v0), 60)
		a = math.Mod(a, 10)
		dt = math.Mod(math.Abs(dt), 1)
		f := FrenetState{Speed: v0, Accel: a}.Step(dt)
		return f.Speed >= 0 && f.S >= -1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestStepZeroOrNegativeDT(t *testing.T) {
	f := FrenetState{S: 5, Speed: 10}
	if got := f.Step(0); got != f {
		t.Errorf("Step(0) = %+v", got)
	}
	if got := f.Step(-1); got != f {
		t.Errorf("Step(-1) = %+v", got)
	}
}

func TestStopDistance(t *testing.T) {
	if got := StopDistance(10, 5); math.Abs(got-10) > 1e-9 {
		t.Errorf("StopDistance = %v", got)
	}
	if got := StopDistance(10, 0); !math.IsInf(got, 1) {
		t.Errorf("StopDistance with zero decel = %v", got)
	}
}

func TestBrakeDistanceTo(t *testing.T) {
	if got := BrakeDistanceTo(20, 10, 5); math.Abs(got-30) > 1e-9 {
		t.Errorf("BrakeDistanceTo = %v", got)
	}
	if got := BrakeDistanceTo(10, 20, 5); got != 0 {
		t.Errorf("already slower: %v", got)
	}
	if got := BrakeDistanceTo(10, -5, 5); math.Abs(got-10) > 1e-9 {
		t.Errorf("negative target clamps to 0: %v", got)
	}
}

func TestToAgent(t *testing.T) {
	r := road.NewStraight(3, 1000)
	f := FrenetState{S: 50, D: 3.5, Speed: 20, Accel: -1}
	a := f.ToAgent(r, "ego", Car())
	if a.ID != "ego" || a.Lane != 1 {
		t.Errorf("agent = %+v", a)
	}
	if math.Abs(a.Pose.Pos.X-50) > 1e-9 || math.Abs(a.Pose.Pos.Y-3.5) > 1e-9 {
		t.Errorf("pos = %v", a.Pose.Pos)
	}
	if a.Speed != 20 || a.Accel != -1 {
		t.Errorf("kinematics = %+v", a)
	}
	if a.Static {
		t.Error("moving car marked static")
	}
}

func TestToAgentLaneChangeHeading(t *testing.T) {
	r := road.NewStraight(3, 1000)
	f := FrenetState{S: 50, D: 0, Speed: 20, LatVel: 2}
	a := f.ToAgent(r, "a1", Car())
	want := math.Atan2(2, 20)
	if math.Abs(a.Pose.Heading-want) > 1e-9 {
		t.Errorf("heading = %v, want %v", a.Pose.Heading, want)
	}
}

func TestToAgentStatic(t *testing.T) {
	r := road.NewStraight(3, 1000)
	f := FrenetState{S: 120, D: 0}
	a := f.ToAgent(r, "obstacle", StaticObstacle())
	if !a.Static {
		t.Error("static obstacle not marked static")
	}
}

func TestClampAccel(t *testing.T) {
	p := Car()
	if got := p.ClampAccel(10, 20); got != p.MaxAccel {
		t.Errorf("clamp up = %v", got)
	}
	if got := p.ClampAccel(-100, 20); got != -p.MaxBrake {
		t.Errorf("clamp down = %v", got)
	}
	if got := p.ClampAccel(1, p.MaxSpeed+1); got != 0 {
		t.Errorf("accel at max speed = %v", got)
	}
	if got := p.ClampAccel(-1, p.MaxSpeed+1); got != -1 {
		t.Errorf("braking at max speed = %v", got)
	}
}
