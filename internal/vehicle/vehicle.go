// Package vehicle provides vehicle parameter presets and lane-relative
// (Frenet) kinematic integration. Agents move longitudinally along a
// road station with a scalar speed/acceleration and laterally with an
// offset velocity; the package converts that state to world-frame
// agents for sensing, collision detection, and the Zhuyi model.
package vehicle

import (
	"math"

	"repro/internal/road"
	"repro/internal/world"
)

// Params are the physical properties and actuation limits of a vehicle.
type Params struct {
	Length       float64 // m
	Width        float64 // m
	MaxAccel     float64 // m/s², forward
	MaxBrake     float64 // m/s², positive magnitude of the hardest braking
	ComfortBrake float64 // m/s², positive magnitude of comfortable braking
	MaxSpeed     float64 // m/s
}

// Car returns parameters for a typical passenger car. MaxBrake matches
// the emergency deceleration commonly assumed for AEB (~0.75 g), well
// above the paper's minimum braking deceleration C3 = 4.9 m/s² (0.5 g).
func Car() Params {
	return Params{
		Length:       4.6,
		Width:        1.9,
		MaxAccel:     3.0,
		MaxBrake:     7.5,
		ComfortBrake: 2.5,
		MaxSpeed:     55,
	}
}

// Truck returns parameters for a box truck: longer, wider, weaker brakes.
func Truck() Params {
	return Params{
		Length:       8.5,
		Width:        2.5,
		MaxAccel:     1.8,
		MaxBrake:     5.0,
		ComfortBrake: 1.8,
		MaxSpeed:     38,
	}
}

// StaticObstacle returns parameters for a static road obstacle (e.g. the
// revealed obstacle in the paper's Cut-out scenario).
func StaticObstacle() Params {
	return Params{Length: 4.0, Width: 1.9}
}

// FrenetState is a lane-relative kinematic state: station S along the
// road reference line, left-positive lateral offset D, longitudinal
// Speed and Accel, and lateral velocity LatVel.
type FrenetState struct {
	S      float64
	D      float64
	Speed  float64
	Accel  float64
	LatVel float64
}

// Step integrates the state forward by dt seconds with the current
// acceleration, stopping cleanly at zero speed (vehicles do not reverse
// in the paper's scenarios).
func (f FrenetState) Step(dt float64) FrenetState {
	f.StepInPlace(dt)
	return f
}

// StepInPlace is Step mutating the receiver — the per-step integration
// loop's form, which skips the 40-byte copy through the return value.
func (f *FrenetState) StepInPlace(dt float64) {
	if dt <= 0 {
		return
	}
	v0 := f.Speed
	a := f.Accel
	if a < 0 && v0+a*dt < 0 {
		// Decelerating to a stop mid-step: advance only until the stop.
		tStop := v0 / -a
		f.S += v0*tStop + 0.5*a*tStop*tStop
		f.Speed = 0
	} else {
		f.S += v0*dt + 0.5*a*dt*dt
		f.Speed = v0 + a*dt
	}
	f.D += f.LatVel * dt
}

// StopDistance returns the distance needed to brake from the current
// speed to zero at the given deceleration magnitude.
func StopDistance(speed, decel float64) float64 {
	if decel <= 0 {
		return math.Inf(1)
	}
	return speed * speed / (2 * decel)
}

// BrakeDistanceTo returns the distance needed to brake from speed v0
// down to vTarget (clamped at 0) at the given deceleration magnitude.
func BrakeDistanceTo(v0, vTarget, decel float64) float64 {
	if vTarget < 0 {
		vTarget = 0
	}
	if v0 <= vTarget {
		return 0
	}
	if decel <= 0 {
		return math.Inf(1)
	}
	return (v0*v0 - vTarget*vTarget) / (2 * decel)
}

// ToAgent converts the Frenet state to a world-frame agent on the given
// road. The heading blends the road tangent with the lateral motion so
// lane-changing vehicles yaw realistically.
func (f FrenetState) ToAgent(r *road.Road, id string, p Params) world.Agent {
	var a world.Agent
	f.FillAgent(&a, r, id, p)
	return a
}

// FillAgent is ToAgent writing into dst in place — per-step callers
// (the shared ground-truth ego slot) skip the copy through the return
// value.
func (f FrenetState) FillAgent(dst *world.Agent, r *road.Road, id string, p Params) {
	pose := r.PoseAtOffset(f.S, f.D)
	// Field writes, not a composite literal: the literal would build a
	// 112-byte temporary and block-copy it into dst on every call.
	dst.ID = id
	dst.Pose.Pos = pose.Pos
	dst.Pose.Heading = f.worldHeading(pose.Heading)
	dst.Speed = f.Speed
	dst.Accel = f.Accel
	dst.LatVel = f.LatVel
	dst.Length = p.Length
	dst.Width = p.Width
	dst.Lane = r.LaneAt(f.D)
	dst.Static = p.MaxAccel == 0 && f.Speed == 0
}

// worldHeading returns the agent heading for the state: the road
// tangent blended with the lateral motion (the ToAgent rule).
func (f FrenetState) worldHeading(refHeading float64) float64 {
	if f.Speed > 0.1 {
		if f.LatVel == 0 {
			// Atan2(±0, x>0) returns ±0 bitwise, so adding LatVel itself
			// is exactly the blend below — minus the call, which this hot
			// path (every agent, every step) would otherwise pay even for
			// the overwhelmingly common straight-driving case.
			return refHeading + f.LatVel
		}
		return refHeading + math.Atan2(f.LatVel, f.Speed)
	}
	return refHeading
}

// ScatterTo writes the state's world-frame view straight into frame
// column i: ToAgent minus the intermediate Agent value (and its two
// 112-byte copies), for the per-step ground-truth scatter. The stored
// columns are exactly ToAgent's fields.
func (f FrenetState) ScatterTo(fr *world.Frame, i int, r *road.Road, id string, p Params) {
	pose := r.PoseAtOffset(f.S, f.D)
	pose.Heading = f.worldHeading(pose.Heading)
	fr.SetDirect(i, id, pose, f.Speed, f.Accel, f.LatVel, p.Length, p.Width,
		r.LaneAt(f.D), p.MaxAccel == 0 && f.Speed == 0)
}

// ClampAccel limits a requested acceleration to the vehicle's actuation
// envelope (MaxAccel forward, MaxBrake reverse) and prevents commanding
// forward acceleration beyond MaxSpeed.
func (p Params) ClampAccel(req, speed float64) float64 {
	a := max(-p.MaxBrake, min(p.MaxAccel, req))
	if speed >= p.MaxSpeed && a > 0 {
		a = 0
	}
	return a
}
