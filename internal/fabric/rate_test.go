package fabric

// The serving-tier guarantee of the fabric: POST /v1/rate never
// touches a replica. The coordinator answers it from its own pooled
// path, so rate traffic keeps flowing — and keeps being histogram-
// accounted in the coordinator's own stats — even while a replica is
// dead mid-campaign and the retry machinery is busy rehoming points.

import (
	"context"
	"testing"
	"time"

	zhuyi "repro"
	"repro/internal/server"
)

func fabricRateRequest() zhuyi.RateRequest {
	return zhuyi.RateRequest{
		Time: 2.0,
		Ego:  zhuyi.AgentState{ID: "ego", Speed: 20},
		Actors: []zhuyi.AgentState{
			{ID: "lead", X: 28, Speed: 14, Accel: -2},
		},
		Operating: map[string]float64{"front120": 10},
	}
}

func TestRateServedLocallyDuringReplicaDeath(t *testing.T) {
	dir := t.TempDir()
	points := table1Points(2, 5)
	s1, _ := replica(t, dir)
	s2, _ := replica(t, dir)
	victim, _ := dyingReplica(t, dir)
	_, cts := coordinator(t, dir, []string{s1.URL, s2.URL, victim.URL}, Options{Backoff: 300 * time.Millisecond})

	campDone := make(chan error, 1)
	go func() {
		cl := zhuyi.NewClient(cts.URL)
		_, err := cl.Campaign(context.Background(), points)
		campDone <- err
	}()

	// Rate traffic concurrent with the campaign (and the replica death
	// it will hit): every request must answer, no matter what the
	// fabric is recovering from.
	cl := zhuyi.NewClient(cts.URL)
	req := fabricRateRequest()
	const during, after = 40, 20
	for i := 0; i < during; i++ {
		rr, err := cl.Rate(context.Background(), req)
		if err != nil {
			t.Fatalf("rate request %d during campaign: %v", i, err)
		}
		if len(rr.Rates) == 0 || rr.Check == nil {
			t.Fatalf("rate request %d: empty answer %+v", i, rr)
		}
	}
	if err := <-campDone; err != nil {
		t.Fatalf("campaign did not survive the replica death: %v", err)
	}

	// The victim is now known-dead. Rate requests — JSON and binary —
	// must keep answering locally.
	for i := 0; i < after; i++ {
		var rr zhuyi.RateResponse
		var err error
		if i%2 == 0 {
			rr, err = cl.Rate(context.Background(), req)
		} else {
			rr, err = cl.RateBinary(context.Background(), req)
		}
		if err != nil {
			t.Fatalf("rate request %d with dead replica: %v", i, err)
		}
		if len(rr.Rates) == 0 {
			t.Fatalf("rate request %d with dead replica: empty answer", i)
		}
	}

	stats := coordStats(t, cts.URL)
	var victimHealthy *bool
	for i := range stats.Fabric.Replicas {
		if stats.Fabric.Replicas[i].URL == victim.URL {
			victimHealthy = &stats.Fabric.Replicas[i].Healthy
		}
	}
	if victimHealthy == nil {
		t.Fatal("victim missing from fabric stats")
	}
	if *victimHealthy {
		t.Error("victim still marked healthy after dropping its stream")
	}

	// Histogram accounting: every rate request this test sent landed in
	// the coordinator's own rate histogram, surfaced both as a latency
	// row and as the fabric block's rate_local proof-of-locality.
	const total = during + after
	var rateRow *server.EndpointLatency
	for i := range stats.Latency {
		if stats.Latency[i].Route == "POST /v1/rate" {
			rateRow = &stats.Latency[i]
		}
	}
	if rateRow == nil {
		t.Fatal("no POST /v1/rate latency row in coordinator stats")
	}
	if rateRow.Count != total {
		t.Errorf("rate latency row count %d, want %d", rateRow.Count, total)
	}
	if stats.Fabric.RateLocal == nil {
		t.Fatal("fabric stats carry no rate_local block")
	}
	if stats.Fabric.RateLocal.Count != total {
		t.Errorf("rate_local count %d, want %d", stats.Fabric.RateLocal.Count, total)
	}
	if stats.Fabric.RateLocal.P99US <= 0 {
		t.Errorf("rate_local p99 %.1fµs, want positive", stats.Fabric.RateLocal.P99US)
	}
	// The campaign stream shows up under its own route, not the rate
	// histogram — accounting is per-endpoint.
	for i := range stats.Latency {
		if stats.Latency[i].Route == "POST /v1/campaign" && stats.Latency[i].Count != 1 {
			t.Errorf("campaign latency count %d, want 1", stats.Latency[i].Count)
		}
	}
}
