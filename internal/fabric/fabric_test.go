package fabric

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	zhuyi "repro"
	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/store"
)

// table1Points builds one campaign point per (table-1 scenario, seed)
// at a fixed rate — every point distinct, spanning enough scenarios
// that a 3-replica ring partitions them non-trivially.
func table1Points(seeds int64, fpr float64) []zhuyi.CampaignPoint {
	var pts []zhuyi.CampaignPoint
	for _, sc := range scenario.Default().List(scenario.TagTable1) {
		for seed := int64(1); seed <= seeds; seed++ {
			pts = append(pts, zhuyi.CampaignPoint{Scenario: sc.Name, FPR: fpr, Seed: seed})
		}
	}
	return pts
}

// replica starts one worker: its own engine over its own store handle
// on the shared directory, modeling a separate process.
func replica(t *testing.T, dir string) (*httptest.Server, *engine.Engine) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng := engine.New(engine.Options{Store: st, Workers: 2})
	ts := httptest.NewServer(server.New(server.Options{Engine: eng}).Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

// coordinator builds a Coordinator over the replica URLs with its own
// store handle on the shared directory.
func coordinator(t *testing.T, dir string, urls []string, opt Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	if dir != "" {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		opt.Store = st
	}
	opt.Replicas = urls
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func coordStats(t *testing.T, baseURL string) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRingStability(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[string]int)
	for _, sc := range scenario.Default().List(scenario.TagTable1) {
		fp := scenario.Default().Fingerprint(sc.Name)
		// Same point, same replica — across ring rebuilds (i.e. across
		// campaigns and coordinator restarts).
		if r1.Owner(fp) != r2.Owner(fp) {
			t.Errorf("%s: owner differs across identical rings", sc.Name)
		}
		seq := r1.Sequence(fp)
		if len(seq) != len(urls) {
			t.Fatalf("%s: sequence %v is not a full replica permutation", sc.Name, seq)
		}
		if seq[0] != r1.Owner(fp) {
			t.Errorf("%s: Sequence[0] %q != Owner %q", sc.Name, seq[0], r1.Owner(fp))
		}
		seen := map[string]bool{}
		for _, rep := range seq {
			if seen[rep] {
				t.Errorf("%s: replica %q repeats in sequence", sc.Name, rep)
			}
			seen[rep] = true
		}
		owners[r1.Owner(fp)]++
	}
	if len(owners) < 2 {
		t.Errorf("all table-1 scenarios landed on one replica: %v (vnode spread broken?)", owners)
	}

	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 0); err == nil {
		t.Error("duplicate replicas accepted")
	}
}

// TestFabricRoundTripAndWarmRerun is the 3-replica happy path: a cold
// campaign partitions across replicas and every point simulates exactly
// once; an identical rerun answers entirely from the coordinator's
// warm manifest tier without touching a replica's engine again.
func TestFabricRoundTripAndWarmRerun(t *testing.T) {
	dir := t.TempDir()
	var urls []string
	var engines []*engine.Engine
	for i := 0; i < 3; i++ {
		ts, eng := replica(t, dir)
		urls = append(urls, ts.URL)
		engines = append(engines, eng)
	}
	_, cts := coordinator(t, dir, urls, Options{})
	cl := zhuyi.NewClient(cts.URL)

	points := table1Points(2, 5)
	res, err := cl.Campaign(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("outcome %d (%s): %v", i, o.Point.Scenario, o.Err)
		}
	}
	var executed int64
	assignedReplicas := 0
	for _, eng := range engines {
		s := eng.Stats()
		executed += s.Executed
		if s.Executed > 0 {
			assignedReplicas++
		}
	}
	if executed != int64(len(points)) {
		t.Errorf("cold campaign: %d simulations across replicas for %d points (duplicates or losses)", executed, len(points))
	}
	if assignedReplicas < 2 {
		t.Errorf("cold campaign used %d replicas; partitioning broken", assignedReplicas)
	}
	if res.Stats.Executed != len(points) {
		t.Errorf("cold trailer: %d fresh, want %d", res.Stats.Executed, len(points))
	}

	// Identical rerun: the coordinator's warm tier answers every point
	// from the shared manifest — zero replica simulations, zero fresh.
	res2, err := cl.Campaign(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Executed != 0 || res2.Stats.DiskHits != len(points) {
		t.Errorf("warm rerun stats %+v, want 0 fresh / %d disk", res2.Stats, len(points))
	}
	var executedAfter int64
	for _, eng := range engines {
		executedAfter += eng.Stats().Executed
	}
	if executedAfter != executed {
		t.Errorf("warm rerun re-simulated: replica executed %d -> %d", executed, executedAfter)
	}
	stats := coordStats(t, cts.URL)
	if stats.Engine.ManifestHits < int64(len(points)) {
		t.Errorf("coordinator manifest hits %d, want >= %d", stats.Engine.ManifestHits, len(points))
	}
	if stats.Fabric == nil || len(stats.Fabric.Replicas) != 3 {
		t.Fatalf("fabric stats %+v, want 3 replicas", stats.Fabric)
	}
	var assigned int64
	for _, rs := range stats.Fabric.Replicas {
		if !rs.Healthy {
			t.Errorf("replica %s unhealthy after clean campaigns", rs.URL)
		}
		assigned += rs.Assigned
	}
	if assigned != int64(len(points)) {
		t.Errorf("assigned %d points across replicas, want %d (warm rerun must not delegate)", assigned, len(points))
	}
}

// dyingReplica simulates-and-archives the first few of its assigned
// points, streams only the first outcome, then drops the stream with
// no trailer — a deterministic stand-in for a worker killed
// mid-campaign after archiving part of its work.
func dyingReplica(t *testing.T, dir string) (*httptest.Server, *engine.Engine) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng := engine.New(engine.Options{Store: st, Workers: 1})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/campaign" {
			http.NotFound(w, r)
			return
		}
		var req server.CampaignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := min(3, len(req.Points))
		jobs := make([]engine.Job, 0, n)
		for _, pt := range req.Points[:n] {
			sc, ok := scenario.Default().Lookup(pt.Scenario)
			if !ok {
				http.Error(w, "unknown "+pt.Scenario, http.StatusBadRequest)
				return
			}
			jobs = append(jobs, engine.Job{Scenario: sc, FPR: pt.FPR, Seed: pt.Seed})
		}
		// RunBatch archives every fresh run before returning, so the
		// "crash" below happens after the store already holds all n runs.
		batch, err := eng.RunBatch(r.Context(), jobs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		pr := server.PointResult{Index: 0, Scenario: req.Points[0].Scenario, FPR: req.Points[0].FPR, Seed: req.Points[0].Seed, Source: "fresh"}
		if res := batch.Outcomes[0].Result; res != nil {
			pr.MinBumperGap = res.MinBumperGap
			pr.EgoStopped = res.EgoStopped
		}
		json.NewEncoder(w).Encode(server.CampaignLine{Point: &pr})
		// Return with neither the remaining outcomes nor a stats trailer:
		// the coordinator's client sees the stream die mid-campaign.
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, eng
}

// TestReplicaDeathMidCampaignZeroDuplicates is the fabric's failure
// path: one replica dies mid-campaign after archiving part of its
// share. The campaign must still complete, the dead replica's
// unanswered points must be retried on the surviving replicas, and —
// because retries land in the shared store first — the total number of
// fresh simulations across all replicas must equal the number of
// distinct points: zero duplicates.
func TestReplicaDeathMidCampaignZeroDuplicates(t *testing.T) {
	dir := t.TempDir()
	points := table1Points(2, 5)

	// Build two healthy replicas first; the victim is inserted at a URL
	// chosen after ring construction, so pick the victim as the owner of
	// the first point's scenario to guarantee it gets assignments.
	s1, e1 := replica(t, dir)
	s2, e2 := replica(t, dir)
	victim, victimEng := dyingReplica(t, dir)
	urls := []string{s1.URL, s2.URL, victim.URL}

	c, cts := coordinator(t, dir, urls, Options{Backoff: 300 * time.Millisecond})
	fp := scenario.Default().Fingerprint(points[0].Scenario)
	if c.Ring().Owner(fp) != victim.URL {
		// Re-order so the victim owns at least the first scenario's
		// points: ring placement depends only on URL strings, so find a
		// point the victim owns instead.
		owned := false
		for _, pt := range points {
			if c.Ring().Owner(scenario.Default().Fingerprint(pt.Scenario)) == victim.URL {
				owned = true
				break
			}
		}
		if !owned {
			t.Skip("hash ring assigned the victim no scenarios (possible but vanishingly rare); nothing to kill")
		}
	}

	cl := zhuyi.NewClient(cts.URL)
	res, err := cl.Campaign(context.Background(), points)
	if err != nil {
		t.Fatalf("campaign did not survive the replica death: %v", err)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("outcome %d (%s seed %d): %v", i, o.Point.Scenario, o.Point.Seed, o.Err)
		}
	}

	executed := e1.Stats().Executed + e2.Stats().Executed + victimEng.Stats().Executed
	if executed != int64(len(points)) {
		t.Errorf("%d fresh simulations across all replicas for %d distinct points — want exactly one each (zero duplicates)",
			executed, len(points))
	}
	// The victim archived runs it never streamed; the survivors must
	// have answered those re-landed points from the shared store.
	diskHits := e1.Stats().DiskHits + e2.Stats().DiskHits
	if victimEng.Stats().Executed > 1 && diskHits == 0 {
		t.Error("no disk hits on survivors: re-landed points re-simulated instead of deduping through the store")
	}

	stats := coordStats(t, cts.URL)
	if stats.Fabric.Retried == 0 {
		t.Error("fabric stats report zero retried points after a replica death")
	}
	var victimStats *server.ReplicaStats
	for i := range stats.Fabric.Replicas {
		if stats.Fabric.Replicas[i].URL == victim.URL {
			victimStats = &stats.Fabric.Replicas[i]
		}
	}
	if victimStats == nil {
		t.Fatal("victim missing from fabric stats")
	}
	if victimStats.Healthy {
		t.Error("victim still marked healthy after dropping its stream")
	}
	if victimStats.Failures == 0 {
		t.Error("victim shows no failures after dropping its stream")
	}
}

// TestStalledReplicaTripsWatchdog: a replica that accepts the stream
// and then never produces a point must be cancelled by the stall
// watchdog and its points answered elsewhere.
func TestStalledReplicaTripsWatchdog(t *testing.T) {
	dir := t.TempDir()
	s1, _ := replica(t, dir)

	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Stall until the watchdog-cancelled client disconnects (or the
		// test tears down) — never send a point.
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(stalled.Close)
	t.Cleanup(func() { close(release) }) // LIFO: release before Close waits on the handler

	// The stall timeout must beat the stalled replica (which never sends
	// a byte) without tripping on the healthy one, whose first point can
	// take a while under -race — so generous, not tight.
	_, cts := coordinator(t, dir, []string{s1.URL, stalled.URL}, Options{
		StallTimeout: 2 * time.Second,
		Backoff:      50 * time.Millisecond,
	})
	cl := zhuyi.NewClient(cts.URL)
	points := table1Points(1, 5)
	res, err := cl.Campaign(context.Background(), points)
	if err != nil {
		t.Fatalf("campaign did not survive the stalled replica: %v", err)
	}
	for i, o := range res.Outcomes {
		if o.Err != nil {
			t.Errorf("outcome %d: %v", i, o.Err)
		}
	}
}

// TestMRFWarmAndProxied: a cold MRF search proxies to the owning
// replica; once that replica's probes are archived in the shared
// store, the identical search answers from the coordinator's manifest
// tier — same response, no proxy.
func TestMRFWarmAndProxied(t *testing.T) {
	dir := t.TempDir()
	ts, _ := replica(t, dir)
	c, cts := coordinator(t, dir, []string{ts.URL}, Options{})

	get := func() server.MRFResponse {
		t.Helper()
		resp, err := http.Get(cts.URL + "/v1/mrf/cut-out-fast?seeds=2&fprs=2,30")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mrf status %d", resp.StatusCode)
		}
		var out server.MRFResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := get()
	if got := c.proxied.Load(); got != 1 {
		t.Fatalf("cold MRF proxied %d times, want 1", got)
	}
	warm := get()
	if got := c.proxied.Load(); got != 1 {
		t.Errorf("warm MRF proxied again (%d total): manifest tier did not answer", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm MRF diverges from proxied MRF:\ncold %+v\nwarm %+v", cold, warm)
	}
	if coordStats(t, cts.URL).Engine.ManifestHits == 0 {
		t.Error("warm MRF reported no manifest hits")
	}
}

// TestCoordinatorValidation: bad campaigns fail fast with the same
// 400s a worker returns, and an all-dead replica set still yields a
// well-formed response (per-point errors + trailer), not a hang.
func TestCoordinatorValidation(t *testing.T) {
	dir := t.TempDir()
	dead := "http://127.0.0.1:1" // nothing listens there
	_, cts := coordinator(t, dir, []string{dead}, Options{Backoff: 20 * time.Millisecond, Retries: 1})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(cts.URL+"/v1/campaign", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{"points":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty campaign: status %d, want 400", code)
	}
	if code := post(`{"points":[{"scenario":"bogus","fpr":5,"seed":1}]}`); code != http.StatusBadRequest {
		t.Errorf("unknown scenario: status %d, want 400", code)
	}
	if code := post(`{"points":[{"scenario":"cut-out-fast","fpr":-1,"seed":1}]}`); code != http.StatusBadRequest {
		t.Errorf("negative fpr: status %d, want 400", code)
	}

	// Every replica dead: the client must get per-point errors and the
	// trailer's replica-failure summary, not a silent hang.
	cl := zhuyi.NewClient(cts.URL)
	res, err := cl.Campaign(context.Background(), table1Points(1, 5)[:2])
	if err == nil {
		t.Fatal("campaign against a dead replica set reported success")
	}
	if !strings.Contains(err.Error(), "replica failures") {
		t.Errorf("error %q does not carry the replica failure summary", err)
	}
	for i, o := range res.Outcomes {
		if o.Err == nil {
			t.Errorf("outcome %d has no error with every replica dead", i)
		}
	}
}
