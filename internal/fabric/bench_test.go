package fabric

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	zhuyi "repro"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
)

// benchServiceTime models one point's cost on a simulation-dominated
// worker (a DriveSim-class stack spends seconds of GPU inference per
// closed-loop run; this repo's kinematic simulator runs in
// milliseconds, far too fast to expose scheduling). Each bench replica
// runs an injected runner that sleeps this long per point with
// Workers=1, so campaign wall time is the fabric's scheduling quality,
// not the host's core count — essential on single-core CI runners,
// where three real replicas would time-slice one CPU and measure
// nothing.
const benchServiceTime = 5 * time.Millisecond

// benchLabels are the stable replica identities the scaling benchmark
// registers on the ring. The ring hashes replica URLs, so fixed labels
// pin the scenario partition and make the measured scaling ratio
// deterministic run to run: with these three labels the nine Table-1
// scenarios split 1/4/4, capping ideal 3.0x scaling at 1080/480 =
// 2.25x (the partition trades balance for per-scenario cache affinity;
// BENCH_fabric.json documents the tradeoff).
var benchLabels = []string{"http://worker-0", "http://worker-1", "http://worker-2"}

// rewriteTransport routes requests addressed to a stable replica label
// to the live httptest server standing in for it.
type rewriteTransport struct{ hosts map[string]string }

func (t rewriteTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if real, ok := t.hosts[r.URL.Host]; ok {
		r = r.Clone(r.Context())
		r.URL.Host = real
	}
	return http.DefaultTransport.RoundTrip(r)
}

// benchPoints is the cold 1080-point Table-1 campaign: every Table-1
// scenario at every Table-1 rate, ten seeds each.
func benchPoints() []zhuyi.CampaignPoint {
	var pts []zhuyi.CampaignPoint
	for _, sc := range scenario.Default().List(scenario.TagTable1) {
		for _, fpr := range metrics.DefaultFPRGrid() {
			for seed := int64(1); seed <= 10; seed++ {
				pts = append(pts, zhuyi.CampaignPoint{Scenario: sc.Name, FPR: fpr, Seed: seed})
			}
		}
	}
	return pts
}

func benchmarkFabricCampaign(b *testing.B, replicas int) {
	points := benchPoints()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh fleet per iteration: engines carry memory caches, and a
		// warm second pass would measure the cache, not the fabric.
		labels := benchLabels[:replicas]
		hosts := make(map[string]string, replicas)
		var servers []*httptest.Server
		var engines []*engine.Engine
		for j := 0; j < replicas; j++ {
			eng := engine.New(engine.Options{
				Workers: 1,
				Runner: func(engine.Job) (*sim.Result, error) {
					time.Sleep(benchServiceTime)
					return &sim.Result{}, nil
				},
			})
			ts := httptest.NewServer(server.New(server.Options{Engine: eng}).Handler())
			hosts[labels[j][len("http://"):]] = ts.Listener.Addr().String()
			servers = append(servers, ts)
			engines = append(engines, eng)
		}
		coord, err := New(Options{
			Replicas:   labels,
			HTTPClient: &http.Client{Transport: rewriteTransport{hosts: hosts}},
		})
		if err != nil {
			b.Fatal(err)
		}
		cts := httptest.NewServer(coord.Handler())
		cl := zhuyi.NewClient(cts.URL)

		b.StartTimer()
		res, err := cl.Campaign(context.Background(), points)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Executed != len(points) {
			b.Fatalf("campaign executed %d of %d points fresh", res.Stats.Executed, len(points))
		}

		cts.Close()
		for j := range servers {
			servers[j].Close()
			engines[j].Close()
		}
	}
	b.ReportMetric(float64(len(points)*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkFabricCampaign measures cold-campaign point throughput
// through the coordinator as the replica count grows, with per-point
// service time modeled (see benchServiceTime). scripts/bench_fabric.sh
// renders the series into BENCH_fabric.json and gates replicas=3 at
// >= 2.0x the replicas=1 throughput.
func BenchmarkFabricCampaign(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			benchmarkFabricCampaign(b, n)
		})
	}
}
