// Package fabric is the distributed campaign tier: a coordinator that
// shards campaign work across N `zhuyi serve` worker replicas while
// serving warm queries itself from the shared persistent store's
// manifest.
//
// The deployment shape follows the paper's service argument (§3.2) one
// step further than internal/server: rate estimation for a fleet is
// read-heavy — BENCH_replay.json puts a manifest read four orders of
// magnitude under a simulation — so the fabric splits the two regimes.
// The coordinator owns the cheap path: every (scenario, FPR, seed)
// point already archived in the shared store is answered from the
// manifest summary alone, no replica contacted, no artifact decoded.
// Only cold points fan out, partitioned by consistent hashing on the
// scenario spec fingerprint (Ring) so all rate/seed variants of one
// scenario land on the same replica's warm memory cache and lockstep
// batches.
//
// Replica death is absorbed, not propagated: a failed or stalled
// delegation marks the replica unhealthy and re-partitions its
// unanswered points onto the next replica in each point's ring
// sequence (bounded attempts, backed off). Because every replica
// archives fresh runs into the shared store — and store lookups
// refresh from the manifest tail across processes — a re-landed point
// that the dead replica managed to simulate answers from the disk
// tier instead of re-simulating: retries cost zero duplicate
// simulations, which GET /v1/stats on the replicas proves.
//
// The coordinator speaks the exact same HTTP API as a worker
// (server.Routes; docs/api.md), so zhuyi.Client — and everything built
// on it — points at either interchangeably. `zhuyi serve -coordinator
// -replicas URL,URL` wires it to a listener; scripts/fabric_smoke.sh
// is the end-to-end proof and scripts/bench_fabric.sh the scaling
// benchmark (BENCH_fabric.json).
package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	zhuyi "repro"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
)

// errCold marks a point the shared manifest cannot answer: the
// coordinator's inner engine runs no simulations, so its injected
// runner returns this sentinel and the caller (the MRF handler)
// delegates to the owning replica instead.
var errCold = errors.New("fabric: point not archived in the shared store")

// Options configures a Coordinator.
type Options struct {
	// Replicas are the worker base URLs (e.g. "http://10.0.0.1:8080").
	// At least one is required; order is cosmetic (placement comes from
	// the hash ring, not the list order).
	Replicas []string
	// Store is the shared persistent store every replica archives into;
	// it backs the coordinator's warm tier and /v1/store endpoints. nil
	// disables the warm tier (every point delegates).
	Store *store.Store
	// Registry resolves scenario names; nil uses scenario.Default().
	Registry *scenario.Registry
	// VirtualNodes is the per-replica vnode count on the ring (0 = 64).
	VirtualNodes int
	// StallTimeout bounds the wait for each point completion during a
	// delegated campaign: a replica that streams nothing for this long
	// is treated as dead and its unanswered points are retried on the
	// next replica in their ring sequence. 0 means 60s.
	StallTimeout time.Duration
	// Retries is how many extra replicas a point is offered after its
	// owner fails (0 = one retry per surviving replica, capped at 2).
	Retries int
	// Backoff is the base delay before each retry wave, scaled by the
	// attempt number. 0 means 200ms.
	Backoff time.Duration
	// MaxCampaignPoints caps points per campaign request (0 = 100000).
	MaxCampaignPoints int
	// HTTPClient overrides the transport used for replica traffic; nil
	// uses http.DefaultClient. The stall watchdog, not a client
	// timeout, bounds campaign streams.
	HTTPClient *http.Client
}

// replicaState is one replica's coordinator-side health/assignment
// counters, surfaced on GET /v1/stats.
type replicaState struct {
	url       string
	healthy   atomic.Bool
	assigned  atomic.Int64
	completed atomic.Int64
	failures  atomic.Int64
}

// Coordinator fans campaign work out to replicas and answers warm
// queries from the shared store manifest. Construct with New; serve
// its Handler with net/http. Safe for concurrent use.
type Coordinator struct {
	ring    *Ring
	eng     *engine.Engine // manifest-only: Peek answers, runs return errCold
	st      *store.Store
	reg     *scenario.Registry
	inner   http.Handler       // a server.Server over eng, for non-fabric routes
	lat     *server.LatencySet // shared with the inner server; /v1/rate lands here
	maxPts  int
	stall   time.Duration
	retries int
	backoff time.Duration

	clients  map[string]*zhuyi.Client
	replicas map[string]*replicaState

	requests  atomic.Int64
	campaigns atomic.Int64
	points    atomic.Int64
	retried   atomic.Int64
	proxied   atomic.Int64
}

// New builds a Coordinator over its replica set.
func New(opts Options) (*Coordinator, error) {
	ring, err := NewRing(opts.Replicas, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = scenario.Default()
	}
	c := &Coordinator{
		ring: ring,
		// The inner engine never simulates: Peek serves the warm tier
		// from the shared manifest, and any job that reaches the runner
		// reports errCold. (Cold MRF probes therefore count as engine
		// Failures here — the price of reusing the engine's batch path
		// as a manifest query planner.)
		eng: engine.New(engine.Options{
			Store:  opts.Store,
			Runner: func(engine.Job) (*sim.Result, error) { return nil, errCold },
		}),
		st:       opts.Store,
		reg:      reg,
		maxPts:   opts.MaxCampaignPoints,
		stall:    opts.StallTimeout,
		retries:  opts.Retries,
		backoff:  opts.Backoff,
		clients:  make(map[string]*zhuyi.Client, len(opts.Replicas)),
		replicas: make(map[string]*replicaState, len(opts.Replicas)),
	}
	if c.maxPts <= 0 {
		c.maxPts = 100_000
	}
	if c.stall <= 0 {
		c.stall = 60 * time.Second
	}
	if c.retries <= 0 {
		c.retries = min(len(opts.Replicas)-1, 2)
	}
	if c.backoff <= 0 {
		c.backoff = 200 * time.Millisecond
	}
	for _, rep := range opts.Replicas {
		cl := zhuyi.NewClient(rep)
		cl.HTTPClient = opts.HTTPClient
		c.clients[rep] = cl
		st := &replicaState{url: rep}
		st.healthy.Store(true) // optimistic until an attempt says otherwise
		c.replicas[rep] = st
	}
	// The latency set is shared with the inner server: requests the
	// coordinator answers locally — /v1/rate above all — record into
	// the same histograms its own /v1/stats reports, proving the rate
	// path never depends on replica health.
	c.lat = server.NewLatencySet()
	c.inner = server.New(server.Options{Engine: c.eng, Registry: reg, MaxCampaignPoints: c.maxPts, Latency: c.lat}).Handler()
	return c, nil
}

// Ring exposes the coordinator's hash ring (tests assert placement
// stability through it).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Handler returns the coordinator's HTTP handler. It serves the exact
// route table of a worker (server.Routes): campaign, MRF, and stats
// are fabric-aware; every other route — scenarios, rate, store reads,
// health — is answered locally by the inner manifest-only server.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range server.Routes() {
		var h http.HandlerFunc
		fabricRoute := true
		switch rt.Pattern {
		case "/v1/campaign":
			h = c.handleCampaign
		case "/v1/mrf/{scenario}":
			h = c.handleMRF
		case "/v1/stats":
			h = c.handleStats
		default:
			h = c.inner.ServeHTTP
			fabricRoute = false
		}
		if fabricRoute {
			// Locally-served routes already record through the inner
			// server's wrappers (the shared latency set); only the
			// fabric-aware handlers need their own timing here.
			h = c.lat.Timed(rt.Method+" "+rt.Pattern, h)
		}
		mux.HandleFunc(rt.Method+" "+rt.Pattern, h)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		code, data = http.StatusInternalServerError,
			[]byte(fmt.Sprintf("{\"error\": %q}", "response encoding failed: "+err.Error()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// campaignPlan is one validated campaign: the request points plus each
// point's scenario fingerprint (the ring key).
type campaignPlan struct {
	points []server.Point
	scs    []scenario.Scenario
	fps    []string
}

// mergeSink serializes the merged NDJSON output stream and the shared
// answered/stats state that concurrent replica streams mutate.
type mergeSink struct {
	mu       sync.Mutex
	enc      *json.Encoder
	flush    func()
	answered []bool
	agg      server.CampaignStats
	errs     []string
}

func (m *mergeSink) emitLocked(line server.CampaignLine) {
	_ = m.enc.Encode(line)
	m.flush()
}

// point emits one remapped per-point line if its global index has not
// been answered yet (a watchdog-cancelled replica may race its own
// retry; first answer wins, duplicates are dropped).
func (m *mergeSink) point(global int, p server.PointResult) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.answered[global] {
		return false
	}
	m.answered[global] = true
	p.Index = global
	m.emitLocked(server.CampaignLine{Point: &p})
	return true
}

func (m *mergeSink) addStats(s zhuyi.CampaignStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.agg.Executed += s.Executed
	m.agg.CacheHits += s.CacheHits
	m.agg.DiskHits += s.DiskHits
	m.agg.Failures += s.Failures
}

func (m *mergeSink) fail(replica string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errs = append(m.errs, fmt.Sprintf("%s: %v", replica, err))
}

// handleCampaign validates, partitions, fans out, merges, and retries
// one campaign over the replica set.
func (c *Coordinator) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req server.CampaignRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad campaign request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "campaign has no points")
		return
	}
	if len(req.Points) > c.maxPts {
		writeError(w, http.StatusBadRequest, "campaign has %d points (limit %d)", len(req.Points), c.maxPts)
		return
	}
	plan := campaignPlan{points: req.Points, scs: make([]scenario.Scenario, len(req.Points)), fps: make([]string, len(req.Points))}
	for i, pt := range req.Points {
		sc, ok := c.reg.Lookup(pt.Scenario)
		if !ok {
			writeError(w, http.StatusBadRequest, "point %d: unknown scenario %q (GET /v1/scenarios)", i, pt.Scenario)
			return
		}
		if pt.FPR <= 0 {
			writeError(w, http.StatusBadRequest, "point %d: non-positive fpr %g", i, pt.FPR)
			return
		}
		plan.scs[i] = sc
		plan.fps[i] = c.reg.Fingerprint(pt.Scenario)
	}
	c.campaigns.Add(1)
	c.points.Add(int64(len(req.Points)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sink := &mergeSink{
		enc:      json.NewEncoder(w),
		answered: make([]bool, len(req.Points)),
		agg:      server.CampaignStats{Jobs: len(req.Points)},
	}
	sink.flush = func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	start := time.Now()

	// Warm tier: answer archived points from the shared manifest alone.
	for i, pt := range req.Points {
		if ent, ok := c.eng.Peek(engine.Job{Scenario: plan.scs[i], FPR: pt.FPR, Seed: pt.Seed}); ok {
			pr := pointResultFromEntry(i, pt, ent)
			sink.point(i, pr)
			sink.mu.Lock()
			sink.agg.DiskHits++
			sink.mu.Unlock()
		}
	}

	c.runWaves(r.Context(), plan, sink)

	// Whatever is still unanswered exhausted its retries: emit a
	// per-point error so client outcomes align, then the trailer.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	detail := strings.Join(sink.errs, "; ")
	unanswered := 0
	for i, done := range sink.answered {
		if done {
			continue
		}
		unanswered++
		pt := req.Points[i]
		sink.agg.Failures++
		pr := server.PointResult{
			Index: i, Scenario: pt.Scenario, FPR: pt.FPR, Seed: pt.Seed,
			Error: "no replica answered: " + detail,
		}
		sink.emitLocked(server.CampaignLine{Point: &pr})
	}
	trailer := server.CampaignLine{}
	sink.agg.WallMS = float64(time.Since(start)) / 1e6
	trailer.Stats = &sink.agg
	// Replica failures that retries fully absorbed are stats, not
	// errors: the trailer only carries an error when points went
	// unanswered after the last wave.
	if unanswered > 0 && len(sink.errs) > 0 {
		trailer.Error = "replica failures: " + detail
	}
	sink.emitLocked(trailer)
}

// runWaves delegates every unanswered point, wave by wave: wave k
// offers each point to Sequence(fingerprint)[k], so wave 0 is the
// owner partition and later waves walk each point's ring sequence
// after failures, with backoff between waves.
func (c *Coordinator) runWaves(ctx context.Context, plan campaignPlan, sink *mergeSink) {
	for attempt := 0; attempt <= c.retries; attempt++ {
		groups := make(map[string][]int)
		sink.mu.Lock()
		for i, done := range sink.answered {
			if !done {
				seq := c.ring.Sequence(plan.fps[i])
				groups[seq[attempt%len(seq)]] = append(groups[seq[attempt%len(seq)]], i)
			}
		}
		sink.mu.Unlock()
		if len(groups) == 0 {
			return
		}
		if attempt > 0 {
			var n int64
			for _, idxs := range groups {
				n += int64(len(idxs))
			}
			c.retried.Add(n)
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(attempt) * c.backoff):
			}
		}
		var wg sync.WaitGroup
		for rep, idxs := range groups {
			wg.Add(1)
			go func(rep string, idxs []int) {
				defer wg.Done()
				c.delegate(ctx, rep, plan, idxs, sink)
			}(rep, idxs)
		}
		wg.Wait()
	}
}

// delegate streams one replica's share of the campaign, remapping each
// completed point back to its global index. A stall — no point
// completing within StallTimeout — cancels the stream so the wave can
// move the remainder to the next replica.
func (c *Coordinator) delegate(ctx context.Context, rep string, plan campaignPlan, idxs []int, sink *mergeSink) {
	st := c.replicas[rep]
	st.assigned.Add(int64(len(idxs)))
	sub := make([]zhuyi.CampaignPoint, len(idxs))
	for j, i := range idxs {
		pt := plan.points[i]
		sub[j] = zhuyi.CampaignPoint{Scenario: pt.Scenario, FPR: pt.FPR, Seed: pt.Seed}
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(c.stall, cancel)
	defer watchdog.Stop()

	res, err := c.clients[rep].CampaignStream(cctx, sub, func(p zhuyi.PointResult) {
		watchdog.Reset(c.stall)
		if p.Index < 0 || p.Index >= len(idxs) {
			return
		}
		// Per-point Errors are deterministic run outcomes, not replica
		// health; they are answered, never retried elsewhere.
		if sink.point(idxs[p.Index], p) {
			st.completed.Add(1)
		}
	})
	if err != nil {
		st.failures.Add(1)
		st.healthy.Store(false)
		sink.fail(rep, err)
		return
	}
	st.healthy.Store(true)
	if res != nil {
		sink.addStats(res.Stats)
	}
}

// pointResultFromEntry shapes a manifest entry into the wire form of a
// disk-tier campaign point (what a replica would have answered, minus
// the replica).
func pointResultFromEntry(i int, pt server.Point, ent store.Entry) server.PointResult {
	pr := server.PointResult{
		Index: i, Scenario: pt.Scenario, FPR: pt.FPR, Seed: pt.Seed,
		Source:          engine.SourceDisk.String(),
		MinBumperGap:    ent.MinBumperGap,
		MinGapInfinite:  ent.MinGapInfinite,
		EgoStopped:      ent.EgoStopped,
		Rows:            ent.Rows,
		FramesProcessed: ent.FramesProcessed,
	}
	if ent.Collision != nil {
		pr.Collided = true
		pr.CollisionTime = ent.Collision.Time
		pr.CollisionActor = ent.Collision.ActorID
	}
	return pr
}

// handleMRF answers an MRF search from the shared manifest when every
// probed point is archived; otherwise it proxies the query to the
// scenario's owning replica (whose caches make it the cheapest place
// to simulate the cold points).
func (c *Coordinator) handleMRF(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("scenario")
	sc, ok := c.reg.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q (GET /v1/scenarios)", name)
		return
	}
	seeds, fprs, err := server.ParseMRFQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if seeds*len(fprs) > c.maxPts {
		writeError(w, http.StatusBadRequest, "mrf search of %d seeds x %d rates exceeds the %d-point limit", seeds, len(fprs), c.maxPts)
		return
	}
	m, err := metrics.FindMRFContext(r.Context(), c.eng, sc, fprs, seeds)
	if err == nil {
		writeJSON(w, http.StatusOK, server.MRFResponseFor(m, fprs))
		return
	}
	if !errors.Is(err, errCold) {
		writeError(w, http.StatusInternalServerError, "mrf %s: %v", name, err)
		return
	}
	c.proxied.Add(1)
	c.proxyMRF(w, r, c.ring.Owner(c.reg.Fingerprint(name)))
}

// proxyMRF forwards the MRF request verbatim to a replica and copies
// the response back — status, body, and content type unchanged, so the
// client cannot tell warm and delegated answers apart.
func (c *Coordinator) proxyMRF(w http.ResponseWriter, r *http.Request, rep string) {
	st := c.replicas[rep]
	url := rep + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "proxy %s: %v", rep, err)
		return
	}
	httpc := c.clients[rep].HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		st.failures.Add(1)
		st.healthy.Store(false)
		writeError(w, http.StatusBadGateway, "replica %s: %v", rep, err)
		return
	}
	defer resp.Body.Close()
	st.healthy.Store(true)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleStats reports the coordinator's own engine/store view plus the
// fabric block: per-replica health/assignment counters and the
// retry/proxy totals.
func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := server.StatsResponse{
		Workers: c.eng.Workers(),
		Engine:  server.EngineStatsToWire(c.eng.Stats()),
		Server: server.ServerStats{
			Requests:       c.requests.Load(),
			Campaigns:      c.campaigns.Load(),
			CampaignPoints: c.points.Load(),
		},
		Latency: c.lat.Snapshot(),
		Fabric: &server.FabricStats{
			Retried:   c.retried.Load(),
			Proxied:   c.proxied.Load(),
			RateLocal: c.lat.RateLatency(),
		},
	}
	for _, rep := range c.ring.Replicas() {
		st := c.replicas[rep]
		resp.Fabric.Replicas = append(resp.Fabric.Replicas, server.ReplicaStats{
			URL:       st.url,
			Healthy:   st.healthy.Load(),
			Assigned:  st.assigned.Load(),
			Completed: st.completed.Load(),
			Failures:  st.failures.Load(),
		})
	}
	if c.st != nil {
		sum := c.st.Summarize()
		resp.Store = &sum
	}
	writeJSON(w, http.StatusOK, resp)
}
