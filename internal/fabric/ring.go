package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring.go: the consistent-hash ring that partitions campaign points
// across replicas. Points hash by scenario spec fingerprint — not by
// (fingerprint, FPR, seed) — so every rate/seed variant of one
// scenario lands on the same replica, whose memory cache and lockstep
// batching thrive on exactly that locality. Virtual nodes smooth the
// partition; the ring is immutable once built (replica death is
// handled by walking the point's replica sequence, not by resizing).

// defaultVirtualNodes is the per-replica virtual-node count. At 64
// vnodes the expected partition imbalance across a handful of replicas
// stays within a few percent, and building the ring is still microseconds.
const defaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over replica base URLs.
// Construct with NewRing. The zero value is not usable.
type Ring struct {
	replicas []string
	hashes   []uint64 // sorted vnode positions
	owner    []int    // hashes[i] belongs to replicas[owner[i]]
}

// NewRing builds a ring of vnodes virtual nodes per replica (0 uses
// the default). Replica URLs must be non-empty and distinct.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("fabric: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	seen := make(map[string]bool, len(replicas))
	r := &Ring{replicas: replicas}
	for i, rep := range replicas {
		if rep == "" {
			return nil, fmt.Errorf("fabric: replica %d has an empty URL", i)
		}
		if seen[rep] {
			return nil, fmt.Errorf("fabric: duplicate replica %q", rep)
		}
		seen[rep] = true
		for v := 0; v < vnodes; v++ {
			r.hashes = append(r.hashes, hash64(fmt.Sprintf("%s#%d", rep, v)))
			r.owner = append(r.owner, i)
		}
	}
	sort.Sort(byHash{r})
	return r, nil
}

// byHash sorts the parallel hash/owner slices together.
type byHash struct{ r *Ring }

func (s byHash) Len() int           { return len(s.r.hashes) }
func (s byHash) Less(i, j int) bool { return s.r.hashes[i] < s.r.hashes[j] }
func (s byHash) Swap(i, j int) {
	s.r.hashes[i], s.r.hashes[j] = s.r.hashes[j], s.r.hashes[i]
	s.r.owner[i], s.r.owner[j] = s.r.owner[j], s.r.owner[i]
}

// hash64 is the ring's position function: the first 8 bytes of a
// SHA-256, matching the store's content-hash family so fingerprints
// spread uniformly without a hash-quality dependency on their shape.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Replicas returns the ring's replicas in construction order.
func (r *Ring) Replicas() []string { return r.replicas }

// at locates the first vnode clockwise of the key's position.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// Owner returns the replica owning a scenario fingerprint: the one
// whose vnode is first clockwise of the fingerprint's ring position.
func (r *Ring) Owner(fingerprint string) string {
	return r.replicas[r.owner[r.at(fingerprint)]]
}

// Sequence returns every replica in the order a fingerprint encounters
// them walking clockwise from its position — Sequence(fp)[0] is
// Owner(fp), and each later element is the retry target after the one
// before it failed. The slice always contains all replicas exactly
// once.
func (r *Ring) Sequence(fingerprint string) []string {
	out := make([]string, 0, len(r.replicas))
	seen := make(map[int]bool, len(r.replicas))
	start := r.at(fingerprint)
	for i := 0; i < len(r.hashes) && len(out) < len(r.replicas); i++ {
		rep := r.owner[(start+i)%len(r.hashes)]
		if !seen[rep] {
			seen[rep] = true
			out = append(out, r.replicas[rep])
		}
	}
	return out
}
