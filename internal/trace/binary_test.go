package trace

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

// zytRoundTrip encodes and decodes through the binary format.
func zytRoundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteZYT(&buf); err != nil {
		t.Fatalf("WriteZYT: %v", err)
	}
	got, err := ReadZYT(&buf)
	if err != nil {
		t.Fatalf("ReadZYT: %v", err)
	}
	return got
}

// jsonlRoundTrip encodes and decodes through the JSONL format.
func jsonlRoundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

// TestPropertyZYTRoundTrip: across generated trace shapes, the binary
// round trip must agree with the JSONL round trip exactly — the two
// decoders are interchangeable reconstructions of the same artifact.
func TestPropertyZYTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		tr := randomTrace(rng, rng.Intn(120))
		viaJSON := jsonlRoundTrip(t, tr)
		viaZYT := zytRoundTrip(t, tr)
		if !reflect.DeepEqual(viaZYT, viaJSON) {
			t.Fatalf("trial %d: ZYT and JSONL round trips disagree\n zyt meta %+v (%d rows)\njson meta %+v (%d rows)",
				trial, viaZYT.Meta, viaZYT.Len(), viaJSON.Meta, viaJSON.Len())
		}
		if !reflect.DeepEqual(viaZYT, tr) {
			t.Fatalf("trial %d: ZYT round trip not identical to source", trial)
		}
	}
}

// TestZYTMultiBlock pins block chunking: a trace longer than one
// writer block must round-trip across the block boundary, including
// delta chains and string tables resetting per block.
func TestZYTMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng, zytBlockRows+257)
	if got := zytRoundTrip(t, tr); !reflect.DeepEqual(got, tr) {
		t.Fatal("multi-block round trip not identical")
	}
}

// TestZYTEdgeShapes covers the nil/empty distinctions the JSONL
// encoding makes (or deliberately collapses): the binary decoder must
// match encoding/json's behavior case by case.
func TestZYTEdgeShapes(t *testing.T) {
	t.Run("EmptyTrace", func(t *testing.T) {
		tr := &Trace{Meta: Meta{Scenario: "empty", FPR: 5, Dt: 0.01}}
		if got := zytRoundTrip(t, tr); !reflect.DeepEqual(got, jsonlRoundTrip(t, tr)) {
			t.Fatal("empty trace round trips disagree")
		}
	})
	t.Run("HeaderOnlyWithCollision", func(t *testing.T) {
		tr := &Trace{
			Meta:      Meta{Scenario: "summary", FPR: 30, Seed: 3, Dt: 0.01, Cameras: []string{"front120"}},
			Collision: &Collision{Time: 12.5, ActorID: "a0"},
		}
		if got := zytRoundTrip(t, tr); !reflect.DeepEqual(got, jsonlRoundTrip(t, tr)) {
			t.Fatal("header-only round trips disagree")
		}
	})
	t.Run("NilVsEmptyActors", func(t *testing.T) {
		tr := &Trace{Meta: Meta{Scenario: "shapes", FPR: 5, Dt: 0.01}}
		tr.Rows = []Row{
			{Time: 0, Ego: world.Agent{ID: world.EgoID, Length: 4, Width: 2}, Actors: nil},
			{Time: 0.01, Ego: world.Agent{ID: world.EgoID, Length: 4, Width: 2}, Actors: []world.Agent{}},
		}
		viaJSON := jsonlRoundTrip(t, tr)
		viaZYT := zytRoundTrip(t, tr)
		if !reflect.DeepEqual(viaZYT, viaJSON) {
			t.Fatal("ZYT and JSONL disagree on nil vs empty actors")
		}
		if viaZYT.Rows[0].Actors != nil {
			t.Error("nil actors decoded non-nil")
		}
		if viaZYT.Rows[1].Actors == nil {
			t.Error("empty actors decoded nil")
		}
	})
	t.Run("EmptyRatesNormalizeLikeJSON", func(t *testing.T) {
		// omitempty drops an empty rates map on the JSONL path, so both
		// decoders must return nil for it.
		tr := &Trace{Meta: Meta{Scenario: "rates", FPR: 5, Dt: 0.01}}
		tr.Rows = []Row{{Time: 0, Ego: world.Agent{ID: world.EgoID, Length: 4, Width: 2}, Rates: map[string]float64{}}}
		viaJSON := jsonlRoundTrip(t, tr)
		viaZYT := zytRoundTrip(t, tr)
		if !reflect.DeepEqual(viaZYT, viaJSON) {
			t.Fatal("ZYT and JSONL disagree on empty rates")
		}
		if viaZYT.Rows[0].Rates != nil {
			t.Error("empty rates map decoded non-nil")
		}
	})
	t.Run("LongIDsAndManyCameras", func(t *testing.T) {
		tr := &Trace{Meta: Meta{Scenario: "long", FPR: 5, Dt: 0.01}}
		id := strings.Repeat("actor-", 200)
		tr.Rows = []Row{{
			Time:   0,
			Ego:    world.Agent{ID: world.EgoID, Length: 4, Width: 2},
			Actors: []world.Agent{{ID: id, Length: 4, Width: 2, Lane: -3, Static: true}},
			Rates:  map[string]float64{"front120": 30, "left": 7.5, "rear": 1},
		}}
		if got := zytRoundTrip(t, tr); !reflect.DeepEqual(got, tr) {
			t.Fatal("long-ID round trip not identical")
		}
	})
}

// goldenZYTTrace is a small fixed trace whose binary encoding is
// pinned byte-for-byte below: any frame-layout change must be a
// deliberate format revision, not an accident.
func goldenZYTTrace() *Trace {
	tr := &Trace{
		Meta:      Meta{Scenario: "golden", FPR: 7.5, Seed: 42, Dt: 0.01, Cameras: []string{"front120", "left"}},
		Collision: &Collision{Time: 0.02, ActorID: "a1"},
	}
	for i := 0; i < 3; i++ {
		t := float64(i) * 0.01
		row := Row{
			Time: t,
			Ego: world.Agent{
				ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(10*t, 1.75), Heading: 0},
				Speed: 10, Accel: 0.5, Length: 4.6, Width: 1.9, Lane: 1,
			},
			CmdAccel: -0.25,
			AEB:      i == 2,
			Rates:    map[string]float64{"front120": 7.5, "left": 7.5},
		}
		if i > 0 {
			row.Actors = []world.Agent{{
				ID: "a1", Pose: geom.Pose{Pos: geom.V(20+t, 1.75)},
				Speed: 5, Length: 4.6, Width: 1.9, Lane: 1,
			}}
		}
		tr.Rows = append(tr.Rows, row)
	}
	return tr
}

// goldenZYTHex is the pinned ZYT1 encoding of goldenZYTTrace. To
// regenerate after a deliberate format revision, set it to "" and run
// TestZYTGolden: the failure message prints the current encoding.
const goldenZYTHex = "5a5954310184017b226d657461223a7b227363656e6172696f223a22676f6c64656e222c22667072223a372e352c2273656564223a34322c226474223a302e30312c2263616d65726173223a5b2266726f6e74313230222c226c656674225d7d2c22636f6c6c6973696f6e223a7b2274696d65223a302e30322c226163746f725f6964223a226131227d7d02f90103020365676f02613100f6d1f0faa8b8bd847f808080808080801000000000b4e6cc99b3e6ccb97f808080808080801080808080808080fc7f000000000080808080808080a48001000080808080808080e07f0000000000cc99b3e6cc99b39280010000cc99b3e6cc99b3fe7f000002000000ffffffffffffffaf8001000004000202010186d7c7c2eba381b4800184d7c7c2eba30180808080808080fc7f000000808080808080809480010000000000cc99b3e6cc99b392800100cc99b3e6cc99b3fe7f00020000020866726f6e74313230046c6566740200808080808080809e800101808080808080809e800102000001000200000100ff0103"

func TestZYTGolden(t *testing.T) {
	tr := goldenZYTTrace()
	var buf bytes.Buffer
	if err := tr.WriteZYT(&buf); err != nil {
		t.Fatal(err)
	}
	if goldenZYTHex == "" {
		t.Fatalf("golden fixture missing; current encoding:\n%s", hex.EncodeToString(buf.Bytes()))
	}
	if got := hex.EncodeToString(buf.Bytes()); got != goldenZYTHex {
		t.Fatalf("ZYT1 frame layout drifted from the golden fixture\n got %s\nwant %s", got, goldenZYTHex)
	}
	fixture, err := hex.DecodeString(goldenZYTHex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadZYT(bytes.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("golden fixture decodes to a different trace")
	}
}

// TestZYTRejectsTruncation: every proper prefix of a valid encoding
// must error — never panic, never return a silently shortened trace.
func TestZYTRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteZYT(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := ReadZYT(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
	}
}

func TestZYTRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteZYT(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"BadMagic":       append([]byte("ZYTX"), valid[4:]...),
		"TrailingByte":   append(append([]byte{}, valid...), 0x00),
		"TrailingFrame":  append(append([]byte{}, valid...), 0x02, 0x00),
		"EmptyInput":     {},
		"MagicOnly":      []byte(ZYTMagic),
		"UnknownFrame":   append([]byte(ZYTMagic), 0x7A, 0x00),
		"RowsFirst":      append([]byte(ZYTMagic), 0x02, 0x01, 0x00),
		"HugeFrameClaim": append([]byte(ZYTMagic), 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
		"BadHeaderJSON":  append([]byte(ZYTMagic), 0x01, 0x02, '{', 'x'),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadZYT(bytes.NewReader(data)); err == nil {
				t.Fatal("malformed input decoded without error")
			}
		})
	}

	t.Run("EndCountMismatch", func(t *testing.T) {
		// Rewrite the end frame's row count: the last frame is
		// [0xFF][len][uvarint count]; corrupt the count bytes.
		data := append([]byte{}, valid...)
		// sampleTrace has 100 rows → end payload is uvarint(100) = 1 byte
		// 0x64; the trailing 3 bytes are FF 01 64.
		if data[len(data)-3] != zytFrameEnd || data[len(data)-1] != 100 {
			t.Fatalf("unexpected tail % x", data[len(data)-3:])
		}
		data[len(data)-1] = 99
		if _, err := ReadZYT(bytes.NewReader(data)); err == nil {
			t.Fatal("row-count mismatch decoded without error")
		}
	})
}

// TestZYTAgentFieldsPinned fails when world.Agent gains or loses a
// field: the columnar encoding enumerates fields explicitly, so struct
// drift would silently drop data without this tripwire.
func TestZYTAgentFieldsPinned(t *testing.T) {
	want := []string{"ID", "Pose", "Speed", "Accel", "LatVel", "Length", "Width", "Lane", "Static"}
	typ := reflect.TypeOf(world.Agent{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("world.Agent fields changed: %v (ZYT1 encodes exactly %v — extend binary.go and revise the format)", got, want)
	}
	rowType := reflect.TypeOf(Row{})
	wantRow := []string{"Time", "Ego", "Actors", "CmdAccel", "AEB", "Rates"}
	got = nil
	for i := 0; i < rowType.NumField(); i++ {
		got = append(got, rowType.Field(i).Name)
	}
	if !reflect.DeepEqual(got, wantRow) {
		t.Fatalf("trace.Row fields changed: %v (ZYT1 encodes exactly %v)", got, wantRow)
	}
}
