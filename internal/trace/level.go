package trace

import (
	"encoding/json"
	"fmt"
)

// Level selects how much of a run the simulator records. The zero
// value is LevelFull, so existing configurations keep their behavior;
// summary consumers (MRF collision waves, the campaign server's
// NDJSON stream, corpus sweeps) drop to LevelSummary and skip the
// per-step row materialization entirely — the dominant allocation of
// a run.
type Level uint8

// Recording levels, from most to least recorded.
const (
	// LevelFull records every time-step row: the trace is archivable,
	// replayable, and evaluable offline. The only level the persistent
	// store accepts.
	LevelFull Level = iota
	// LevelSummary keeps the trace header (Meta, Collision) but records
	// no rows; the run's summary fields (collision, min bumper gap,
	// frames processed, ego stopped) are still computed.
	LevelSummary
	// LevelOff records no trace at all (Result.Trace is nil); only the
	// summary fields survive.
	LevelOff
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelSummary:
		return "summary"
	case LevelOff:
		return "off"
	default:
		return "full"
	}
}

// ParseLevel parses a recording level name as accepted by CLI flags
// and spec files: "full", "summary", or "off".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "full", "":
		return LevelFull, nil
	case "summary":
		return LevelSummary, nil
	case "off":
		return LevelOff, nil
	default:
		return LevelFull, fmt.Errorf("trace: unknown recording level %q (full, summary, off)", s)
	}
}

// MarshalJSON encodes the level by name, keeping spec files and wire
// payloads readable ("summary", not 1).
func (l Level) MarshalJSON() ([]byte, error) {
	if l > LevelOff {
		return nil, fmt.Errorf("trace: invalid recording level %d", l)
	}
	return json.Marshal(l.String())
}

// UnmarshalJSON accepts a level name or its integer encoding.
func (l *Level) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		lv, err := ParseLevel(s)
		if err != nil {
			return err
		}
		*l = lv
		return nil
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("trace: recording level must be a name or 0..2: %s", data)
	}
	if n > uint8(LevelOff) {
		return fmt.Errorf("trace: recording level %d outside 0..2", n)
	}
	*l = Level(n)
	return nil
}
