// Package trace records driving-scenario executions: the ground-truth
// states of the ego and all actors at every time-step, the planner
// commands, and the per-camera operating rates. Traces are what the
// paper's pre-deployment flow consumes ("For each AV tested scenario,
// the scenario trace is collected which includes the states of the ego
// and all the actors at all the time-steps", §3.1); the offline Zhuyi
// evaluator walks them start to end.
//
// Traces serialize as JSON Lines: a header line with metadata followed
// by one line per row, so multi-minute scenarios stream without holding
// an extra copy in memory.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/world"
)

// Meta describes how a trace was produced.
type Meta struct {
	Scenario string   `json:"scenario"`
	FPR      float64  `json:"fpr"`  // configured uniform per-camera FPR
	Seed     int64    `json:"seed"` // noise seed
	Dt       float64  `json:"dt"`   // step, s
	Cameras  []string `json:"cameras"`
}

// Collision records the first ego collision, if any.
type Collision struct {
	Time    float64 `json:"time"`
	ActorID string  `json:"actor_id"`
}

// Row is one recorded time-step.
type Row struct {
	Time     float64       `json:"t"`
	Ego      world.Agent   `json:"ego"`
	Actors   []world.Agent `json:"actors"`
	CmdAccel float64       `json:"cmd_accel"`
	AEB      bool          `json:"aeb,omitempty"`
	// Rates is the operating FPR per camera. It is recorded only under
	// dynamic rate control; fixed-rate runs omit it and Meta.FPR
	// applies to every camera (see OperatingRate).
	Rates map[string]float64 `json:"rates,omitempty"`
}

// Trace is a recorded scenario execution.
type Trace struct {
	Meta      Meta
	Rows      []Row
	Collision *Collision
}

// Len returns the number of rows.
func (tr *Trace) Len() int { return len(tr.Rows) }

// Duration returns the recorded time span.
func (tr *Trace) Duration() float64 {
	if len(tr.Rows) == 0 {
		return 0
	}
	return tr.Rows[len(tr.Rows)-1].Time - tr.Rows[0].Time
}

// Snapshot converts row i into a world snapshot.
func (tr *Trace) Snapshot(i int) world.Snapshot {
	r := tr.Rows[i]
	return world.Snapshot{Time: r.Time, Ego: r.Ego, Actors: r.Actors}
}

// ActorFuture builds the recorded ground-truth future trajectory of one
// actor starting at row i, up to horizon seconds ahead, sampled every
// stride rows. This is the |T| = 1 trajectory set of the paper's
// pre-deployment evaluation. It returns false if the actor is absent at
// row i.
func (tr *Trace) ActorFuture(id string, i int, horizon float64, stride int) (world.Trajectory, bool) {
	if stride < 1 {
		stride = 1
	}
	if i < 0 || i >= len(tr.Rows) {
		return world.Trajectory{}, false
	}
	start := tr.Rows[i].Time
	var pts []world.TrajectoryPoint
	for j := i; j < len(tr.Rows); j += stride {
		row := tr.Rows[j]
		if row.Time-start > horizon {
			break
		}
		a, ok := actorIn(row, id)
		if !ok {
			break
		}
		pts = append(pts, world.TrajectoryPoint{
			T:       row.Time,
			Pos:     a.Pose.Pos,
			Heading: a.Pose.Heading,
			Speed:   a.Speed,
			Accel:   a.Accel,
		})
	}
	if len(pts) == 0 {
		return world.Trajectory{}, false
	}
	return world.Trajectory{ActorID: id, Prob: 1, Points: pts}, true
}

func actorIn(r Row, id string) (world.Agent, bool) {
	for _, a := range r.Actors {
		if a.ID == id {
			return a, true
		}
	}
	return world.Agent{}, false
}

// header is the first JSONL line.
type header struct {
	Meta      Meta       `json:"meta"`
	Collision *Collision `json:"collision,omitempty"`
}

// Write serializes the trace as JSON Lines.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Meta: tr.Meta, Collision: tr.Collision}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range tr.Rows {
		if err := enc.Encode(&tr.Rows[i]); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON Lines trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty input")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: parse header: %w", err)
	}
	tr := &Trace{Meta: h.Meta, Collision: h.Collision}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("trace: parse line %d: %w", line, err)
		}
		tr.Rows = append(tr.Rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return tr, nil
}

// OperatingRate returns the FPR a camera was running at during row i:
// the row's recorded rate under dynamic rate control, or the uniform
// configured rate (Meta.FPR) for fixed-rate runs.
func (tr *Trace) OperatingRate(i int, camera string) float64 {
	if i >= 0 && i < len(tr.Rows) {
		if r, ok := tr.Rows[i].Rates[camera]; ok {
			return r
		}
	}
	return tr.Meta.FPR
}

// IndexAt returns the row index of the last row with Time <= t (or 0).
func (tr *Trace) IndexAt(t float64) int {
	lo, hi := 0, len(tr.Rows)-1
	if hi < 0 {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if tr.Rows[mid].Time <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
