package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

// randomTrace generates a structurally varied trace: optional
// collision, per-row actor sets that appear and vanish, optional rate
// maps, and sub-sampled rows — the shapes the store round-trips.
func randomTrace(rng *rand.Rand, rows int) *Trace {
	tr := &Trace{Meta: Meta{
		Scenario: fmt.Sprintf("gen-%d", rng.Intn(1000)),
		FPR:      []float64{1, 7.5, 30}[rng.Intn(3)],
		Seed:     rng.Int63n(1 << 40),
		Dt:       0.01,
		Cameras:  []string{"front120", "front60", "left", "right", "rear"}[:1+rng.Intn(5)],
	}}
	if rng.Intn(3) == 0 {
		tr.Collision = &Collision{Time: rng.Float64() * 30, ActorID: "a0"}
	}
	for i := 0; i < rows; i++ {
		row := Row{
			Time: float64(i) * 0.01,
			Ego: world.Agent{
				ID:    world.EgoID,
				Pose:  geom.Pose{Pos: geom.V(rng.NormFloat64()*100, rng.NormFloat64()*4), Heading: rng.Float64()},
				Speed: rng.Float64() * 40, Accel: rng.NormFloat64() * 3,
				LatVel: rng.NormFloat64(), Length: 4.6, Width: 1.9, Lane: rng.Intn(3),
			},
			CmdAccel: rng.NormFloat64() * 5,
			AEB:      rng.Intn(10) == 0,
		}
		for a := 0; a < rng.Intn(4); a++ {
			row.Actors = append(row.Actors, world.Agent{
				ID:    fmt.Sprintf("a%d", a),
				Pose:  geom.Pose{Pos: geom.V(rng.NormFloat64()*200, rng.NormFloat64()*8)},
				Speed: rng.Float64() * 30, Length: 4.6, Width: 1.9,
				Static: rng.Intn(5) == 0,
			})
		}
		if rng.Intn(2) == 0 {
			row.Rates = map[string]float64{}
			for _, cam := range tr.Meta.Cameras {
				row.Rates[cam] = 1 + rng.Float64()*29
			}
		}
		tr.Rows = append(tr.Rows, row)
	}
	return tr
}

// TestPropertyWriteReadRoundTrip: Write → Read must reproduce the
// trace exactly (deep equality) across generated shapes.
func TestPropertyWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		tr := randomTrace(rng, rng.Intn(120))
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("trial %d: round trip not identical\n got meta %+v (%d rows)\nwant meta %+v (%d rows)",
				trial, got.Meta, got.Len(), tr.Meta, tr.Len())
		}
	}
}

// bigRowTrace builds a trace whose single row serializes past the
// given size, by padding actor IDs.
func bigRowTrace(targetBytes int) *Trace {
	tr := &Trace{Meta: Meta{Scenario: "big", FPR: 30, Dt: 0.01, Cameras: []string{"front120"}}}
	row := Row{Time: 0, Ego: world.Agent{ID: world.EgoID, Length: 4.6, Width: 1.9}}
	id := strings.Repeat("x", 1024)
	// Each actor serializes to a bit over 1 KiB thanks to the padded ID.
	for i := 0; i*1024 < targetBytes; i++ {
		row.Actors = append(row.Actors, world.Agent{
			ID: fmt.Sprintf("%s-%d", id, i), Length: 4.6, Width: 1.9,
		})
	}
	tr.Rows = append(tr.Rows, row)
	return tr
}

// TestRoundTripExceedsInitialScannerBuffer pins that rows larger than
// the scanner's 1 MiB initial buffer (but under its 16 MiB cap) still
// round-trip exactly.
func TestRoundTripExceedsInitialScannerBuffer(t *testing.T) {
	tr := bigRowTrace(3 << 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 3<<20 {
		t.Fatalf("big row only %d bytes; test no longer exercises buffer growth", buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read of %d-byte trace: %v", buf.Len(), err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("big-row round trip not identical")
	}
}

// TestReadRejectsOversizedRow pins the scanner's upper bound: a row
// past the 16 MiB cap must error (bufio.ErrTooLong), not hang or
// panic.
func TestReadRejectsOversizedRow(t *testing.T) {
	tr := bigRowTrace(17 << 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if err == nil {
		t.Fatal("oversized row accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("err = %v, want bufio.ErrTooLong", err)
	}
}
