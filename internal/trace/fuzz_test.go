package trace

import (
	"bytes"
	"testing"
)

// FuzzRead drives the JSONL parser with arbitrary bytes: malformed
// input must produce an error, never a panic, and anything Read
// accepts must survive a write→read round trip (the parsed form is
// canonical).
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleTrace().Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"meta":{"scenario":"x","fpr":10}}`))
	f.Add([]byte(`{"meta":{}}` + "\n" + `{"t":0.5,"ego":{"ID":"ego"}}`))
	f.Add([]byte(`{"meta":{}}` + "\n" + `{bad json`))
	f.Add([]byte(`null` + "\n" + `null`))
	f.Add([]byte(`{"meta":{"cameras":["a"]},"collision":{"time":1,"actor_id":"x"}}`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed row count: %d -> %d", tr.Len(), tr2.Len())
		}
		if (tr.Collision == nil) != (tr2.Collision == nil) {
			t.Fatal("round trip changed collision presence")
		}
	})
}
