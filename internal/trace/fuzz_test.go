package trace

import (
	"bytes"
	"testing"
)

// FuzzRead drives the JSONL parser with arbitrary bytes: malformed
// input must produce an error, never a panic, and anything Read
// accepts must survive a write→read round trip (the parsed form is
// canonical).
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleTrace().Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"meta":{"scenario":"x","fpr":10}}`))
	f.Add([]byte(`{"meta":{}}` + "\n" + `{"t":0.5,"ego":{"ID":"ego"}}`))
	f.Add([]byte(`{"meta":{}}` + "\n" + `{bad json`))
	f.Add([]byte(`null` + "\n" + `null`))
	f.Add([]byte(`{"meta":{"cameras":["a"]},"collision":{"time":1,"actor_id":"x"}}`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed row count: %d -> %d", tr.Len(), tr2.Len())
		}
		if (tr.Collision == nil) != (tr2.Collision == nil) {
			t.Fatal("round trip changed collision presence")
		}
	})
}

// FuzzTraceDecode drives the ZYT1 binary decoder with arbitrary bytes:
// truncation, bit flips, and hostile length claims must all reject
// with an error — no panics, no unbounded allocations — and anything
// the decoder accepts must survive a binary write→read round trip.
func FuzzTraceDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleTrace().WriteZYT(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	if err := (&Trace{Meta: Meta{Scenario: "e", FPR: 5}}).WriteZYT(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte(""))
	f.Add([]byte(ZYTMagic))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(append([]byte(ZYTMagic), 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)) // huge frame claim
	f.Add(append([]byte(ZYTMagic), 0x02, 0x03, 0xFF, 0xFF, 0x7F))       // huge row count
	flipped := append([]byte{}, valid.Bytes()...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadZYT(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		var out bytes.Buffer
		if err := tr.WriteZYT(&out); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := ReadZYT(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed row count: %d -> %d", tr.Len(), tr2.Len())
		}
		if (tr.Collision == nil) != (tr2.Collision == nil) {
			t.Fatal("round trip changed collision presence")
		}
	})
}
