package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/world"
)

func sampleTrace() *Trace {
	tr := &Trace{
		Meta: Meta{Scenario: "cut-in", FPR: 10, Seed: 7, Dt: 0.01, Cameras: []string{"front120", "left", "right"}},
	}
	for i := 0; i < 100; i++ {
		t := float64(i) * 0.01
		tr.Rows = append(tr.Rows, Row{
			Time: t,
			Ego: world.Agent{
				ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(20*t, 3.5)},
				Speed: 20, Length: 4.6, Width: 1.9, Lane: 1,
			},
			Actors: []world.Agent{
				{ID: "a1", Pose: geom.Pose{Pos: geom.V(50+15*t, 3.5)}, Speed: 15, Length: 4.6, Width: 1.9, Lane: 1},
			},
			CmdAccel: -0.5,
			Rates:    map[string]float64{"front120": 10},
		})
	}
	return tr
}

func TestLenAndDuration(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	if math.Abs(tr.Duration()-0.99) > 1e-9 {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if (&Trace{}).Duration() != 0 {
		t.Error("empty trace duration")
	}
}

func TestSnapshot(t *testing.T) {
	tr := sampleTrace()
	s := tr.Snapshot(50)
	if math.Abs(s.Time-0.5) > 1e-9 {
		t.Errorf("time = %v", s.Time)
	}
	if s.Ego.ID != world.EgoID || len(s.Actors) != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestActorFuture(t *testing.T) {
	tr := sampleTrace()
	traj, ok := tr.ActorFuture("a1", 0, 0.5, 5)
	if !ok {
		t.Fatal("actor future missing")
	}
	if traj.Prob != 1 {
		t.Errorf("prob = %v", traj.Prob)
	}
	if traj.Start() != 0 {
		t.Errorf("start = %v", traj.Start())
	}
	if traj.End() < 0.45 || traj.End() > 0.55 {
		t.Errorf("end = %v", traj.End())
	}
	// Position interpolates the recorded motion.
	at := traj.At(0.2)
	if math.Abs(at.Pos.X-53) > 0.01 {
		t.Errorf("pos at 0.2 = %v", at.Pos.X)
	}
	if err := traj.Validate(); err != nil {
		t.Error(err)
	}
}

func TestActorFutureMissingActor(t *testing.T) {
	tr := sampleTrace()
	if _, ok := tr.ActorFuture("ghost", 0, 1, 1); ok {
		t.Error("future found for ghost actor")
	}
	if _, ok := tr.ActorFuture("a1", -1, 1, 1); ok {
		t.Error("future found for negative index")
	}
	if _, ok := tr.ActorFuture("a1", 1000, 1, 1); ok {
		t.Error("future found past the end")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	tr.Collision = &Collision{Time: 0.7, ActorID: "a1"}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Scenario != "cut-in" || got.Meta.FPR != 10 || got.Meta.Seed != 7 {
		t.Errorf("meta = %+v", got.Meta)
	}
	if len(got.Meta.Cameras) != 3 || got.Meta.Cameras[0] != "front120" {
		t.Errorf("cameras = %v", got.Meta.Cameras)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), tr.Len())
	}
	if got.Collision == nil || got.Collision.ActorID != "a1" {
		t.Errorf("collision = %+v", got.Collision)
	}
	r0 := got.Rows[10]
	if r0.Ego.Speed != 20 || len(r0.Actors) != 1 || r0.Actors[0].ID != "a1" {
		t.Errorf("row = %+v", r0)
	}
	if r0.Rates["front120"] != 10 {
		t.Errorf("rates = %v", r0.Rates)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := Read(strings.NewReader(`{"meta":{"scenario":"x"}}` + "\n" + "garbage\n")); err == nil {
		t.Error("garbage row accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	padded := strings.Replace(buf.String(), "\n", "\n\n", 1)
	got, err := Read(strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("rows = %d", got.Len())
	}
}

func TestIndexAt(t *testing.T) {
	tr := sampleTrace()
	if got := tr.IndexAt(0.505); got != 50 {
		t.Errorf("IndexAt(0.505) = %d", got)
	}
	if got := tr.IndexAt(-1); got != 0 {
		t.Errorf("IndexAt(-1) = %d", got)
	}
	if got := tr.IndexAt(100); got != 99 {
		t.Errorf("IndexAt(100) = %d", got)
	}
	if got := (&Trace{}).IndexAt(1); got != 0 {
		t.Errorf("empty IndexAt = %d", got)
	}
}
