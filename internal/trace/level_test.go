package trace

import (
	"encoding/json"
	"testing"
)

func TestLevelStringParseRoundTrip(t *testing.T) {
	for _, lvl := range []Level{LevelFull, LevelSummary, LevelOff} {
		got, err := ParseLevel(lvl.String())
		if err != nil || got != lvl {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", lvl.String(), got, err, lvl)
		}
	}
	if lvl, err := ParseLevel(""); err != nil || lvl != LevelFull {
		t.Errorf("empty level = %v, %v; want full", lvl, err)
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("unknown level name parsed")
	}
}

func TestLevelJSONRoundTrip(t *testing.T) {
	for _, lvl := range []Level{LevelFull, LevelSummary, LevelOff} {
		b, err := json.Marshal(lvl)
		if err != nil {
			t.Fatalf("marshal %v: %v", lvl, err)
		}
		var got Level
		if err := json.Unmarshal(b, &got); err != nil || got != lvl {
			t.Errorf("round trip %v via %s = %v, %v", lvl, b, got, err)
		}
	}
	// Integer encodings (hand-written spec files) are accepted too.
	var got Level
	if err := json.Unmarshal([]byte("1"), &got); err != nil || got != LevelSummary {
		t.Errorf("unmarshal 1 = %v, %v; want summary", got, err)
	}
	for _, bad := range []string{`"loud"`, "7", "-1", "1.5", "{}"} {
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Errorf("unmarshal %s succeeded", bad)
		}
	}
	if _, err := json.Marshal(Level(9)); err == nil {
		t.Error("marshal of invalid level succeeded")
	}
}
