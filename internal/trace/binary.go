package trace

// ZYT1 is the store's binary columnar trace format. The gzip-JSONL
// encoding archived well but decoded badly: reconstructing one ~1.4 MB
// trace costs more CPU than re-running this repo's kinematic simulator,
// which made the disk tier slower than simulating (see
// docs/benchmarks.md). ZYT1 turns the decode into a linear varint scan:
//
//	"ZYT1"                                  4-byte magic
//	frame*                                  type byte, uvarint length, payload
//
// Frames, in required order: one header frame (0x01, payload = the same
// JSON header object as the JSONL first line, so Meta/Collision keep
// encoding/json's exact semantics), zero or more row-block frames
// (0x02), one end frame (0xFF, payload = uvarint total row count, a
// truncation check). Trailing bytes after the end frame are rejected.
//
// A row block holds up to zytBlockRows rows column-by-column — all
// times, then every ego field, then the planner commands, then the
// flattened actor columns, then the rate maps. Blocks are
// self-contained (string tables and delta chains reset per block), so a
// reader needs one frame in memory at a time and a corrupted block
// cannot poison its neighbors. Within a block:
//
//   - float64 columns encode as zigzag varints of the IEEE-754 bit
//     pattern's delta against the previous value in the column. Monotone
//     columns (time) and near-constant columns (dimensions, headings on
//     straight roads) collapse to 1–2 bytes per row.
//   - integer columns (lane) delta the same way; booleans bit-pack.
//   - agent IDs and camera names reference a block-local string table;
//     the decoder interns them file-wide so a 100k-row trace holds one
//     copy of "ego".
//   - per-row variable shapes (actor count, rate-map size) distinguish
//     nil from empty, preserving encoding/json's round-trip behavior
//     exactly: the decoder's output is deep-equal to what the JSONL
//     path produces for the same trace.
//
// The decoder allocates per block (rows, one actor backing array) and
// per unique string — amortized, effectively nothing per row — and
// bounds every count it reads against the bytes that remain, so
// truncated, bit-flipped, or adversarial inputs fail cleanly without
// large allocations (FuzzTraceDecode pins this).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/world"
)

// ZYTMagic is the 4-byte prefix of every binary trace artifact.
const ZYTMagic = "ZYT1"

const (
	zytFrameHeader byte = 0x01
	zytFrameRows   byte = 0x02
	zytFrameEnd    byte = 0xFF

	// zytMaxFrame bounds one frame's payload: a decoder never buffers
	// more than this, whatever a corrupted length claims.
	zytMaxFrame = 64 << 20
	// zytBlockRows is the writer's rows-per-block; the reader accepts
	// any block within the frame bound.
	zytBlockRows = 4096
)

// IsZYT reports whether the byte prefix looks like a binary trace.
func IsZYT(prefix []byte) bool {
	return len(prefix) >= len(ZYTMagic) && string(prefix[:len(ZYTMagic)]) == ZYTMagic
}

// WriteZYT serializes the trace in the ZYT1 binary columnar format.
// The encoding covers exactly the fields the JSONL encoding covers;
// ReadZYT(WriteZYT(tr)) is deep-equal to Read(Write(tr)).
func (tr *Trace) WriteZYT(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(ZYTMagic); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	hdr, err := json.Marshal(header{Meta: tr.Meta, Collision: tr.Collision})
	if err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	writeZYTFrame(bw, zytFrameHeader, hdr)
	var enc zytEncoder
	for start := 0; start < len(tr.Rows); start += zytBlockRows {
		end := min(start+zytBlockRows, len(tr.Rows))
		writeZYTFrame(bw, zytFrameRows, enc.encodeBlock(tr.Rows[start:end]))
	}
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(len(tr.Rows)))
	writeZYTFrame(bw, zytFrameEnd, cnt[:n])
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return nil
}

func writeZYTFrame(bw *bufio.Writer, typ byte, payload []byte) {
	var lenBuf [binary.MaxVarintLen64]byte
	bw.WriteByte(typ)
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	bw.Write(lenBuf[:n])
	bw.Write(payload)
}

// zytEncoder holds the reusable scratch of a block encoder.
type zytEncoder struct {
	buf      []byte
	strings  map[string]uint64
	order    []string
	flat     []*world.Agent
	camIdx   map[string]uint64
	camOrder []string
	camLast  []uint64
	keyBuf   []string
}

func (e *zytEncoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *zytEncoder) svarint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *zytEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// stringID interns s in the block-local table.
func (e *zytEncoder) stringID(s string) uint64 {
	if id, ok := e.strings[s]; ok {
		return id
	}
	id := uint64(len(e.order))
	e.strings[s] = id
	e.order = append(e.order, s)
	return id
}

// encodeBlock renders rows into the encoder's reused buffer. The
// returned slice is valid until the next call.
func (e *zytEncoder) encodeBlock(rows []Row) []byte {
	e.buf = e.buf[:0]
	if e.strings == nil {
		e.strings = make(map[string]uint64)
		e.camIdx = make(map[string]uint64)
	}
	clear(e.strings)
	e.order = e.order[:0]
	clear(e.camIdx)
	e.camOrder = e.camOrder[:0]

	// Pre-walk: build the string table (ego + actor IDs, in column
	// order) and the camera table (sorted per row, first-appearance
	// order across rows) so both precede the columns that reference
	// them.
	e.flat = e.flat[:0]
	for i := range rows {
		e.stringID(rows[i].Ego.ID)
	}
	for i := range rows {
		for a := range rows[i].Actors {
			e.stringID(rows[i].Actors[a].ID)
			e.flat = append(e.flat, &rows[i].Actors[a])
		}
	}
	for i := range rows {
		for _, cam := range e.sortedRateKeys(rows[i].Rates) {
			if _, ok := e.camIdx[cam]; !ok {
				e.camIdx[cam] = uint64(len(e.camOrder))
				e.camOrder = append(e.camOrder, cam)
			}
		}
	}

	e.uvarint(uint64(len(rows)))
	e.uvarint(uint64(len(e.order)))
	for _, s := range e.order {
		e.str(s)
	}

	// Time column: monotone, so the bit-pattern deltas are small.
	var prev uint64
	for i := range rows {
		bits := math.Float64bits(rows[i].Time)
		e.svarint(int64(bits - prev))
		prev = bits
	}

	e.encodeAgents(len(rows), func(i int) *world.Agent { return &rows[i].Ego })

	prev = 0
	for i := range rows {
		bits := math.Float64bits(rows[i].CmdAccel)
		e.svarint(int64(bits - prev))
		prev = bits
	}
	e.bitpack(len(rows), func(i int) bool { return rows[i].AEB })

	// Actor shape column: 0 = nil slice, n+1 = n actors. The nil/empty
	// distinction mirrors encoding/json's (Actors has no omitempty).
	for i := range rows {
		if rows[i].Actors == nil {
			e.uvarint(0)
		} else {
			e.uvarint(uint64(len(rows[i].Actors)) + 1)
		}
	}
	e.encodeAgents(len(e.flat), func(i int) *world.Agent { return e.flat[i] })

	// Rate maps: a block-local camera table, then per row the sorted
	// (camera, rate) pairs, each rate delta-chained against that
	// camera's previous value in the block. Empty and nil maps both
	// encode as 0: the JSONL path cannot distinguish them either
	// (omitempty drops both), so decoders produce nil for each.
	e.uvarint(uint64(len(e.camOrder)))
	for _, cam := range e.camOrder {
		e.str(cam)
	}
	if cap(e.camLast) < len(e.camOrder) {
		e.camLast = make([]uint64, len(e.camOrder))
	}
	e.camLast = e.camLast[:len(e.camOrder)]
	clear(e.camLast)
	for i := range rows {
		keys := e.sortedRateKeys(rows[i].Rates)
		e.uvarint(uint64(len(keys)))
		for _, cam := range keys {
			idx := e.camIdx[cam]
			bits := math.Float64bits(rows[i].Rates[cam])
			e.uvarint(idx)
			e.svarint(int64(bits - e.camLast[idx]))
			e.camLast[idx] = bits
		}
	}
	return e.buf
}

// sortedRateKeys returns the map's keys sorted, reusing scratch; the
// result is valid until the next call.
func (e *zytEncoder) sortedRateKeys(m map[string]float64) []string {
	e.keyBuf = e.keyBuf[:0]
	for k := range m {
		e.keyBuf = append(e.keyBuf, k)
	}
	sort.Strings(e.keyBuf)
	return e.keyBuf
}

// encodeAgents writes the agent columns for n agents: IDs (string
// table references), eight float64 delta columns, the lane delta
// column, and the static bit column. Every exported world.Agent field
// is covered; TestZYTAgentFieldsPinned fails compilation of drift.
func (e *zytEncoder) encodeAgents(n int, at func(int) *world.Agent) {
	for i := 0; i < n; i++ {
		e.uvarint(e.strings[at(i).ID])
	}
	cols := [...]func(*world.Agent) float64{
		func(a *world.Agent) float64 { return a.Pose.Pos.X },
		func(a *world.Agent) float64 { return a.Pose.Pos.Y },
		func(a *world.Agent) float64 { return a.Pose.Heading },
		func(a *world.Agent) float64 { return a.Speed },
		func(a *world.Agent) float64 { return a.Accel },
		func(a *world.Agent) float64 { return a.LatVel },
		func(a *world.Agent) float64 { return a.Length },
		func(a *world.Agent) float64 { return a.Width },
	}
	for _, col := range cols {
		var prev uint64
		for i := 0; i < n; i++ {
			bits := math.Float64bits(col(at(i)))
			e.svarint(int64(bits - prev))
			prev = bits
		}
	}
	var prevLane int64
	for i := 0; i < n; i++ {
		lane := int64(at(i).Lane)
		e.svarint(lane - prevLane)
		prevLane = lane
	}
	e.bitpack(n, func(i int) bool { return at(i).Static })
}

// bitpack appends n booleans, 8 per byte, LSB first.
func (e *zytEncoder) bitpack(n int, at func(int) bool) {
	for i := 0; i < n; i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < n; j++ {
			if at(i + j) {
				b |= 1 << j
			}
		}
		e.buf = append(e.buf, b)
	}
}

// zytCursor is a bounds-checked reader over one frame payload. Every
// accessor short-circuits once an error is recorded, so decode loops
// need only check err at section boundaries.
type zytCursor struct {
	p   []byte
	off int
	err error
}

func (c *zytCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("trace: zyt offset %d: %s", c.off, fmt.Sprintf(format, args...))
	}
}

func (c *zytCursor) remaining() int { return len(c.p) - c.off }

func (c *zytCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.fail("bad uvarint")
		return 0
	}
	c.off += n
	return v
}

func (c *zytCursor) svarint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.p[c.off:])
	if n <= 0 {
		c.fail("bad varint")
		return 0
	}
	c.off += n
	return v
}

// count reads a uvarint bounded by max and by the remaining payload
// (no element costs less than one byte, so a count beyond the
// remaining bytes is corrupt — this is what keeps adversarial counts
// from driving huge allocations).
func (c *zytCursor) count(max int) int {
	v := c.uvarint()
	if c.err != nil {
		return 0
	}
	if v > uint64(max) || v > uint64(c.remaining())+1 {
		c.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

func (c *zytCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > c.remaining() {
		c.fail("take %d beyond remaining %d", n, c.remaining())
		return nil
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

// zytDecoder carries file-scoped decode state: the string intern table
// and reusable per-block scratch.
type zytDecoder struct {
	intern   map[string]string
	frameBuf []byte
	table    []string
	counts   []int
	camTable []string
	camLast  []uint64
}

func (d *zytDecoder) internBytes(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}

// ReadZYT parses a ZYT1 binary trace. It streams frame by frame —
// memory is bounded by the largest single frame plus the decoded rows
// — and rejects truncation, trailing garbage, frame-order violations,
// and any count that exceeds the bytes backing it.
func ReadZYT(r io.Reader) (*Trace, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: zyt magic: %w", err)
	}
	if string(magic[:]) != ZYTMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	d := zytDecoder{intern: make(map[string]string)}
	var tr *Trace
	sawEnd := false
	for !sawEnd {
		typ, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: zyt frame: %w", err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: zyt frame length: %w", err)
		}
		if n > zytMaxFrame {
			return nil, fmt.Errorf("trace: zyt frame of %d bytes exceeds the %d limit", n, zytMaxFrame)
		}
		if cap(d.frameBuf) < int(n) {
			d.frameBuf = make([]byte, n)
		}
		payload := d.frameBuf[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("trace: zyt frame payload: %w", err)
		}
		switch typ {
		case zytFrameHeader:
			if tr != nil {
				return nil, fmt.Errorf("trace: zyt: duplicate header frame")
			}
			var h header
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("trace: zyt header: %w", err)
			}
			tr = &Trace{Meta: h.Meta, Collision: h.Collision}
		case zytFrameRows:
			if tr == nil {
				return nil, fmt.Errorf("trace: zyt: row block before header")
			}
			if err := d.decodeBlock(payload, tr); err != nil {
				return nil, err
			}
		case zytFrameEnd:
			if tr == nil {
				return nil, fmt.Errorf("trace: zyt: end frame before header")
			}
			c := zytCursor{p: payload}
			total := c.uvarint()
			if c.err != nil || c.remaining() != 0 {
				return nil, fmt.Errorf("trace: zyt: malformed end frame")
			}
			if total != uint64(len(tr.Rows)) {
				return nil, fmt.Errorf("trace: zyt: end frame claims %d rows, decoded %d", total, len(tr.Rows))
			}
			sawEnd = true
		default:
			return nil, fmt.Errorf("trace: zyt: unknown frame type 0x%02x", typ)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: zyt: trailing data after end frame")
	}
	return tr, nil
}

func (d *zytDecoder) decodeBlock(p []byte, tr *Trace) error {
	c := zytCursor{p: p}
	n := c.count(zytBlockRows)
	if c.err == nil && n == 0 {
		c.fail("empty row block")
	}

	nStr := c.count(c.remaining())
	d.table = d.table[:0]
	for i := 0; i < nStr && c.err == nil; i++ {
		l := c.count(c.remaining())
		d.table = append(d.table, d.internBytes(c.take(l)))
	}
	if c.err != nil {
		return c.err
	}

	base := len(tr.Rows)
	tr.Rows = append(tr.Rows, make([]Row, n)...)
	rows := tr.Rows[base:]

	var prev uint64
	for i := range rows {
		prev += uint64(c.svarint())
		rows[i].Time = math.Float64frombits(prev)
	}
	if err := d.decodeAgents(&c, n, func(i int) *world.Agent { return &rows[i].Ego }); err != nil {
		return err
	}
	prev = 0
	for i := range rows {
		prev += uint64(c.svarint())
		rows[i].CmdAccel = math.Float64frombits(prev)
	}
	d.unbitpack(&c, n, func(i int, v bool) { rows[i].AEB = v })
	if c.err != nil {
		return c.err
	}

	// Actor shapes, then one backing array for the block's actors so
	// per-row slices carve from a single allocation.
	d.counts = d.counts[:0]
	total := 0
	for i := 0; i < n; i++ {
		shape := c.count(c.remaining() + 1)
		d.counts = append(d.counts, shape)
		if shape > 0 {
			total += shape - 1
		}
	}
	if c.err != nil {
		return c.err
	}
	// Every agent costs at least 10 payload bytes (one varint per
	// column plus the static bit), so a shape column claiming more is
	// corrupt — checked before the backing allocation, which is ~10x
	// the wire size per agent.
	if total > c.remaining()/10+1 {
		c.fail("actor total %d exceeds remaining payload", total)
		return c.err
	}
	actors := make([]world.Agent, total)
	if err := d.decodeAgents(&c, total, func(i int) *world.Agent { return &actors[i] }); err != nil {
		return err
	}
	off := 0
	for i, shape := range d.counts {
		if shape == 0 {
			continue // nil slice
		}
		k := shape - 1
		rows[i].Actors = actors[off : off+k : off+k]
		off += k
	}

	nCams := c.count(c.remaining())
	d.camTable = d.camTable[:0]
	for i := 0; i < nCams && c.err == nil; i++ {
		l := c.count(c.remaining())
		d.camTable = append(d.camTable, d.internBytes(c.take(l)))
	}
	if cap(d.camLast) < len(d.camTable) {
		d.camLast = make([]uint64, len(d.camTable))
	}
	d.camLast = d.camLast[:len(d.camTable)]
	clear(d.camLast)
	for i := 0; i < n && c.err == nil; i++ {
		cnt := c.count(len(d.camTable))
		if cnt == 0 {
			continue
		}
		m := make(map[string]float64, cnt)
		for j := 0; j < cnt && c.err == nil; j++ {
			idx := c.uvarint()
			if c.err == nil && idx >= uint64(len(d.camTable)) {
				c.fail("camera index %d out of table", idx)
				break
			}
			delta := c.svarint()
			if c.err != nil {
				break
			}
			d.camLast[idx] += uint64(delta)
			m[d.camTable[idx]] = math.Float64frombits(d.camLast[idx])
		}
		rows[i].Rates = m
	}
	if c.err != nil {
		return c.err
	}
	if c.remaining() != 0 {
		c.fail("trailing bytes in row block")
	}
	return c.err
}

func (d *zytDecoder) decodeAgents(c *zytCursor, n int, at func(int) *world.Agent) error {
	for i := 0; i < n; i++ {
		idx := c.uvarint()
		if c.err != nil {
			return c.err
		}
		if idx >= uint64(len(d.table)) {
			c.fail("string index %d out of table", idx)
			return c.err
		}
		at(i).ID = d.table[idx]
	}
	cols := [...]func(*world.Agent, float64){
		func(a *world.Agent, v float64) { a.Pose.Pos.X = v },
		func(a *world.Agent, v float64) { a.Pose.Pos.Y = v },
		func(a *world.Agent, v float64) { a.Pose.Heading = v },
		func(a *world.Agent, v float64) { a.Speed = v },
		func(a *world.Agent, v float64) { a.Accel = v },
		func(a *world.Agent, v float64) { a.LatVel = v },
		func(a *world.Agent, v float64) { a.Length = v },
		func(a *world.Agent, v float64) { a.Width = v },
	}
	for _, col := range cols {
		var prev uint64
		for i := 0; i < n; i++ {
			prev += uint64(c.svarint())
			col(at(i), math.Float64frombits(prev))
		}
		if c.err != nil {
			return c.err
		}
	}
	var prevLane int64
	for i := 0; i < n; i++ {
		prevLane += c.svarint()
		at(i).Lane = int(prevLane)
	}
	d.unbitpack(c, n, func(i int, v bool) { at(i).Static = v })
	return c.err
}

func (d *zytDecoder) unbitpack(c *zytCursor, n int, set func(int, bool)) {
	bytes := c.take((n + 7) / 8)
	if c.err != nil {
		return
	}
	for i := 0; i < n; i++ {
		set(i, bytes[i/8]&(1<<(i%8)) != 0)
	}
}
