// Package units provides unit conversions and physical constants used
// throughout the repository. All internal computation is in SI units
// (meters, seconds, radians); conversions to mph/kph/ft appear only at
// API edges, mirroring the paper's presentation (scenario speeds are
// quoted in mph, distances in meters and feet).
package units

import "math"

// Conversion factors between customary traffic units and SI.
const (
	// MetersPerMile is the exact international-mile definition.
	MetersPerMile = 1609.344
	// SecondsPerHour converts per-hour rates to per-second rates.
	SecondsPerHour = 3600.0
	// MetersPerFoot is the exact international-foot definition.
	MetersPerFoot = 0.3048
	// Gravity is standard gravity in m/s².
	Gravity = 9.80665
)

// MPHToMPS converts miles per hour to meters per second.
func MPHToMPS(mph float64) float64 { return mph * MetersPerMile / SecondsPerHour }

// MPSToMPH converts meters per second to miles per hour.
func MPSToMPH(mps float64) float64 { return mps * SecondsPerHour / MetersPerMile }

// KPHToMPS converts kilometers per hour to meters per second.
func KPHToMPS(kph float64) float64 { return kph * 1000.0 / SecondsPerHour }

// MPSToKPH converts meters per second to kilometers per hour.
func MPSToKPH(mps float64) float64 { return mps * SecondsPerHour / 1000.0 }

// FeetToMeters converts feet to meters.
func FeetToMeters(ft float64) float64 { return ft * MetersPerFoot }

// MetersToFeet converts meters to feet.
func MetersToFeet(m float64) float64 { return m / MetersPerFoot }

// DegToRad converts degrees to radians.
func DegToRad(deg float64) float64 { return deg * math.Pi / 180.0 }

// RadToDeg converts radians to degrees.
func RadToDeg(rad float64) float64 { return rad * 180.0 / math.Pi }

// NormalizeAngle wraps an angle into (-π, π].
func NormalizeAngle(rad float64) float64 {
	for rad > math.Pi {
		rad -= 2 * math.Pi
	}
	for rad <= -math.Pi {
		rad += 2 * math.Pi
	}
	return rad
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
