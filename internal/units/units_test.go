package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMPHToMPSKnownValues(t *testing.T) {
	cases := []struct {
		mph, mps float64
	}{
		{0, 0},
		{20, 8.9408},
		{40, 17.8816},
		{60, 26.8224},
		{70, 31.2928},
	}
	for _, c := range cases {
		if got := MPHToMPS(c.mph); !almostEqual(got, c.mps, 1e-9) {
			t.Errorf("MPHToMPS(%v) = %v, want %v", c.mph, got, c.mps)
		}
	}
}

func TestMPHRoundTrip(t *testing.T) {
	f := func(mph float64) bool {
		if math.IsNaN(mph) || math.IsInf(mph, 0) || math.Abs(mph) > 1e12 {
			return true
		}
		got := MPSToMPH(MPHToMPS(mph))
		return almostEqual(got, mph, 1e-6*math.Max(1, math.Abs(mph)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKPHRoundTrip(t *testing.T) {
	f := func(kph float64) bool {
		if math.IsNaN(kph) || math.IsInf(kph, 0) || math.Abs(kph) > 1e12 {
			return true
		}
		got := MPSToKPH(KPHToMPS(kph))
		return almostEqual(got, kph, 1e-6*math.Max(1, math.Abs(kph)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFeetMeters(t *testing.T) {
	if got := FeetToMeters(98); !almostEqual(got, 29.8704, 1e-9) {
		t.Errorf("FeetToMeters(98) = %v", got)
	}
	if got := MetersToFeet(30); !almostEqual(got, 98.4252, 1e-4) {
		t.Errorf("MetersToFeet(30) = %v", got)
	}
}

func TestDegRad(t *testing.T) {
	if got := DegToRad(180); !almostEqual(got, math.Pi, 1e-12) {
		t.Errorf("DegToRad(180) = %v", got)
	}
	if got := RadToDeg(math.Pi / 2); !almostEqual(got, 90, 1e-12) {
		t.Errorf("RadToDeg(pi/2) = %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e6 {
			return true
		}
		got := NormalizeAngle(x)
		return got > -math.Pi-1e-9 && got <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp(2,0,3) = %v", got)
	}
}
