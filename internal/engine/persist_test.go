package engine

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/world"
)

// tracedRunner fabricates deterministic results with real traces, so
// they survive the store round-trip.
type tracedRunner struct {
	calls atomic.Int64
}

func (f *tracedRunner) run(j Job) (*sim.Result, error) {
	f.calls.Add(1)
	tr := &trace.Trace{Meta: trace.Meta{
		Scenario: j.Scenario.Name, FPR: j.FPR, Seed: j.Seed, Dt: 0.01,
		Cameras: []string{"front120"},
	}}
	for i := 0; i < 5; i++ {
		tr.Rows = append(tr.Rows, trace.Row{
			Time: float64(i) * 0.01,
			Ego: world.Agent{
				ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(float64(i), 0)},
				Speed: j.FPR, Length: 4.6, Width: 1.9,
			},
			Rates: map[string]float64{"front120": j.FPR},
		})
	}
	return &sim.Result{
		Trace:           tr,
		FramesProcessed: map[string]int{"front120": int(j.Seed)},
		MinBumperGap:    j.FPR + float64(j.Seed),
	}, nil
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestPersistentTierWarmStart replays a recorded campaign on a fresh
// engine: every point must load from disk (then memory), simulating
// nothing, with results deep-equal to the fresh pass.
func TestPersistentTierWarmStart(t *testing.T) {
	st := openStore(t)
	jobs := gridJobs(fakeScenario("persist"), []float64{1, 5, 30}, 3)

	frA := &tracedRunner{}
	a := New(Options{Workers: 4, Runner: frA.run, Store: st})
	cold, err := a.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Executed != len(jobs) || cold.Stats.DiskHits != 0 {
		t.Fatalf("cold stats = %+v", cold.Stats)
	}
	if s := a.Stats(); s.Archived != int64(len(jobs)) || s.StoreErrors != 0 {
		t.Fatalf("cold engine stats = %+v", s)
	}
	if st.Len() != len(jobs) {
		t.Fatalf("store holds %d entries, want %d", st.Len(), len(jobs))
	}

	frB := &tracedRunner{}
	b := New(Options{Workers: 4, Runner: frB.run, Store: st})
	warm, err := b.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != 0 || warm.Stats.DiskHits != len(jobs) || warm.Stats.Failures != 0 {
		t.Fatalf("warm stats = %+v (want all disk hits)", warm.Stats)
	}
	if frB.calls.Load() != 0 {
		t.Fatalf("warm engine simulated %d times", frB.calls.Load())
	}
	for i := range jobs {
		if !reflect.DeepEqual(warm.Outcomes[i].Result, cold.Outcomes[i].Result) {
			t.Fatalf("outcome %d differs between fresh and disk-loaded", i)
		}
		if warm.Outcomes[i].Source != SourceDisk || !warm.Outcomes[i].Cached {
			t.Fatalf("outcome %d source = %v", i, warm.Outcomes[i].Source)
		}
	}

	// Third pass on the warm engine: the disk-filled slots now serve
	// from memory.
	hot, err := b.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Stats.CacheHits != len(jobs) || hot.Stats.DiskHits != 0 || hot.Stats.Executed != 0 {
		t.Fatalf("hot stats = %+v (want all memory hits)", hot.Stats)
	}
}

// TestPersistentTierEquivalenceRealSim pins the store round-trip
// against the real simulator: a disk-loaded result must deep-equal the
// fresh simulation of the same point.
func TestPersistentTierEquivalenceRealSim(t *testing.T) {
	if testing.Short() {
		t.Skip("real closed-loop simulation")
	}
	st := openStore(t)
	sc, ok := scenario.Lookup(scenario.CutOut)
	if !ok {
		t.Fatal("cut-out not registered")
	}
	job := Job{Scenario: sc, FPR: 30, Seed: 1}

	a := New(Options{Workers: 2, Store: st})
	fresh, err := a.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	a.Drain() // single Run archives asynchronously; flush before reading stats
	if s := a.Stats(); s.Executed != 1 || s.Archived != 1 || s.StoreErrors != 0 {
		t.Fatalf("fresh engine stats = %+v", s)
	}

	b := New(Options{Workers: 2, Store: st})
	loaded, err := b.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.Executed != 0 || s.DiskHits != 1 {
		t.Fatalf("warm engine stats = %+v", s)
	}
	if !reflect.DeepEqual(fresh, loaded) {
		t.Error("disk-loaded result differs from fresh simulation")
	}
}

// TestPersistentTierSkipsNonPersistableJobs: variants, configured
// runs, and NoCache jobs must never be served from or archived to the
// store — their store key cannot see what distinguishes them.
func TestPersistentTierSkipsNonPersistableJobs(t *testing.T) {
	st := openStore(t)
	fr := &tracedRunner{}
	e := New(Options{Workers: 2, Runner: fr.run, Store: st})

	plain := Job{Scenario: fakeScenario("np"), FPR: 5, Seed: 1}
	variant := Job{Scenario: fakeScenario("np"), FPR: 5, Seed: 1, Variant: "ctrl"}
	nocache := Job{Scenario: fakeScenario("np"), FPR: 5, Seed: 1, NoCache: true}

	for _, j := range []Job{plain, variant, nocache} {
		if _, err := e.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if st.Len() != 1 {
		t.Fatalf("store holds %d entries, want only the plain run", st.Len())
	}

	// A fresh engine must execute the variant and NoCache jobs again
	// even though the plain point is on disk.
	fr2 := &tracedRunner{}
	e2 := New(Options{Workers: 2, Runner: fr2.run, Store: st})
	for _, j := range []Job{plain, variant, nocache} {
		if _, err := e2.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	if got := fr2.calls.Load(); got != 2 {
		t.Fatalf("fresh engine ran %d jobs, want 2 (variant + nocache)", got)
	}
	if s := e2.Stats(); s.DiskHits != 1 {
		t.Fatalf("fresh engine stats = %+v, want 1 disk hit", s)
	}
}

// TestPersistentTierConcurrentEngines races two engines over one store
// (run with -race): concurrent recorders and disk readers must agree
// on every result.
func TestPersistentTierConcurrentEngines(t *testing.T) {
	st := openStore(t)
	jobs := gridJobs(fakeScenario("race"), []float64{1, 2, 5, 15, 30}, 4)

	var wg sync.WaitGroup
	results := make([]*BatchResult, 3)
	for i := range results {
		fr := &tracedRunner{}
		e := New(Options{Workers: 4, Runner: fr.run, Store: st})
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			br, err := e.RunBatch(context.Background(), jobs)
			if err != nil {
				t.Errorf("engine %d: %v", i, err)
				return
			}
			results[i] = br
		}(i, e)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if st.Len() != len(jobs) {
		t.Errorf("store holds %d entries, want %d", st.Len(), len(jobs))
	}
	for i := 1; i < len(results); i++ {
		for k := range jobs {
			if !reflect.DeepEqual(results[i].Outcomes[k].Result, results[0].Outcomes[k].Result) {
				t.Fatalf("engine %d outcome %d differs", i, k)
			}
		}
	}
}
