package engine

import (
	"sync"

	"repro/internal/sim"
)

// archiver moves the persistent store's Put off the waiter path: a
// fresh run's result is enqueued (ordered, bounded) and the engine
// finishes the task immediately, so singleflight waiters unblock at
// memory-tier latency while one background goroutine does the
// serialize/write/fsync work. Ordering is preserved (FIFO), memory is
// bounded (a full queue applies backpressure to the producing worker),
// and nothing is lost on shutdown: Engine.Close flushes the queue, and
// items enqueued after close are archived synchronously by the caller.
//
// RunBatch drains the archiver before returning, preserving the PR 3
// contract that a campaign which has returned finds every one of its
// fresh runs on disk. Single-run callers that need the same guarantee
// (serving processes about to exit, tests) call Engine.Drain.
type archiver struct {
	e *Engine

	mu    sync.Mutex
	cond  *sync.Cond
	queue []archiveItem
	bound int
	busy  bool // the drain goroutine is mid-Put
	once  sync.Once
	done  bool // closed: no new queueing, callers archive synchronously
}

type archiveItem struct {
	job Job
	res *sim.Result
}

func newArchiver(e *Engine, bound int) *archiver {
	a := &archiver{e: e, bound: bound}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// enqueue hands a fresh result to the background writer, blocking only
// when the queue is at its bound (memory backpressure). After close it
// degrades to a synchronous archive on the calling goroutine, so a
// worker finishing a job mid-shutdown still persists it.
func (a *archiver) enqueue(j Job, res *sim.Result) {
	a.mu.Lock()
	for !a.done && len(a.queue) >= a.bound {
		a.cond.Wait()
	}
	if a.done {
		a.mu.Unlock()
		a.e.archive(j, res)
		return
	}
	a.queue = append(a.queue, archiveItem{job: j, res: res})
	a.once.Do(func() { go a.loop() })
	a.mu.Unlock()
	a.cond.Broadcast()
}

// loop is the single background writer: strictly FIFO, one Put at a
// time, terminating once the archiver is closed and empty.
func (a *archiver) loop() {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.done {
			a.cond.Wait()
		}
		if len(a.queue) == 0 {
			a.mu.Unlock()
			a.cond.Broadcast()
			return
		}
		item := a.queue[0]
		a.queue = a.queue[1:]
		a.busy = true
		a.mu.Unlock()
		a.cond.Broadcast() // a producer may be waiting on the bound

		a.e.archive(item.job, item.res)

		a.mu.Lock()
		a.busy = false
		a.mu.Unlock()
		a.cond.Broadcast() // drainers wait for busy to clear
	}
}

// drain blocks until every enqueued item has been written.
func (a *archiver) drain() {
	a.mu.Lock()
	for len(a.queue) > 0 || a.busy {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// close flushes the queue and stops the background writer; later
// enqueues archive synchronously.
func (a *archiver) close() {
	a.mu.Lock()
	a.done = true
	a.mu.Unlock()
	a.cond.Broadcast()
	a.drain()
}

// pending reports the queue depth including the item being written.
func (a *archiver) pending() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := int64(len(a.queue))
	if a.busy {
		n++
	}
	return n
}
