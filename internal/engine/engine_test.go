package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeScenario builds a named scenario whose Build is never invoked
// (tests inject a fake runner).
func fakeScenario(name string) scenario.Scenario {
	return scenario.Scenario{Name: name}
}

// fakeRunner fabricates deterministic results and counts executions.
type fakeRunner struct {
	calls atomic.Int64
	delay time.Duration
	// collide decides the outcome per job; nil means never.
	collide func(Job) bool
	// fail returns an error per job; nil means never.
	fail func(Job) error
}

func (f *fakeRunner) run(j Job) (*sim.Result, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail != nil {
		if err := f.fail(j); err != nil {
			return nil, err
		}
	}
	res := &sim.Result{MinBumperGap: j.FPR + float64(j.Seed)}
	if f.collide != nil && f.collide(j) {
		res.Collision = &trace.Collision{Time: 1, ActorID: "lead"}
	}
	return res, nil
}

func gridJobs(sc scenario.Scenario, fprs []float64, seeds int) []Job {
	var jobs []Job
	for _, f := range fprs {
		for s := 1; s <= seeds; s++ {
			jobs = append(jobs, Job{Scenario: sc, FPR: f, Seed: int64(s)})
		}
	}
	return jobs
}

// TestCampaignCacheDeterminism runs the same campaign twice: the second
// pass must be 100% cache hits with results identical to the first.
func TestCampaignCacheDeterminism(t *testing.T) {
	fr := &fakeRunner{}
	e := New(Options{Workers: 4, Runner: fr.run})
	jobs := gridJobs(fakeScenario("s"), []float64{1, 5, 30}, 4)

	first, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Executed != len(jobs) || first.Stats.CacheHits != 0 {
		t.Fatalf("first pass stats = %+v", first.Stats)
	}
	if got := fr.calls.Load(); got != int64(len(jobs)) {
		t.Fatalf("runner calls = %d, want %d", got, len(jobs))
	}

	second, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheHits != len(jobs) || second.Stats.Executed != 0 {
		t.Fatalf("second pass stats = %+v, want all cache hits", second.Stats)
	}
	if got := fr.calls.Load(); got != int64(len(jobs)) {
		t.Fatalf("runner re-invoked: calls = %d", got)
	}
	for i := range jobs {
		if first.Outcomes[i].Result != second.Outcomes[i].Result {
			t.Fatalf("outcome %d differs between passes", i)
		}
		if !second.Outcomes[i].Cached {
			t.Errorf("outcome %d not served from cache", i)
		}
	}
	if s := e.Stats(); s.Executed != int64(len(jobs)) || s.CacheHits != int64(len(jobs)) {
		t.Errorf("engine stats = %+v", s)
	}
}

// TestCancellationMidCampaign cancels while jobs are still queued: the
// batch must return promptly with skipped outcomes and ctx's error.
func TestCancellationMidCampaign(t *testing.T) {
	fr := &fakeRunner{delay: 20 * time.Millisecond}
	e := New(Options{Workers: 1, Runner: fr.run})
	jobs := gridJobs(fakeScenario("s"), []float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	br, err := e.RunBatch(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	if br.Stats.Skipped == 0 {
		t.Error("no jobs skipped despite cancellation")
	}
	if br.Stats.Executed >= len(jobs) {
		t.Errorf("all %d jobs executed despite cancellation", len(jobs))
	}
	// Cancelled points must not be cached: a fresh campaign re-runs them.
	br2, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if br2.Stats.Skipped != 0 || br2.Stats.Executed+br2.Stats.CacheHits != len(jobs) {
		t.Errorf("post-cancel campaign stats = %+v", br2.Stats)
	}
	for i, o := range br2.Outcomes {
		if o.Err != nil || o.Result == nil {
			t.Fatalf("outcome %d after re-run: %+v", i, o)
		}
	}
}

// TestFirstErrorPropagation: one failing job cancels the unstarted rest
// while the joined error names every real failure.
func TestFirstErrorPropagation(t *testing.T) {
	fr := &fakeRunner{
		delay: 5 * time.Millisecond,
		fail: func(j Job) error {
			if j.FPR == 1 && j.Seed == 1 {
				return fmt.Errorf("boom at seed %d", j.Seed)
			}
			return nil
		},
	}
	e := New(Options{Workers: 1, Runner: fr.run})
	jobs := gridJobs(fakeScenario("s"), []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 3)

	br, err := e.RunBatch(context.Background(), jobs)
	if err == nil || !strings.Contains(err.Error(), "boom at seed 1") {
		t.Fatalf("batch error = %v", err)
	}
	if br.Stats.Failures != 1 {
		t.Errorf("failures = %d, want 1", br.Stats.Failures)
	}
	if br.Stats.Skipped == 0 {
		t.Error("error did not cancel any queued jobs")
	}
	if br.Stats.Executed == len(jobs) {
		t.Error("every job ran despite first-error propagation")
	}
}

// TestErrorsJoined: multiple failures already in flight are all joined.
func TestErrorsJoined(t *testing.T) {
	var entered sync.WaitGroup
	entered.Add(2)
	fr := &fakeRunner{
		fail: func(j Job) error {
			// Barrier: both jobs start before either error can cancel
			// the batch, so both failures must be joined.
			entered.Done()
			entered.Wait()
			if j.Seed <= 2 {
				return fmt.Errorf("fail seed %d", j.Seed)
			}
			return nil
		},
	}
	e := New(Options{Workers: 4, Runner: fr.run})
	jobs := gridJobs(fakeScenario("s"), []float64{5}, 2)
	_, err := e.RunBatch(context.Background(), jobs)
	if err == nil {
		t.Fatal("no error")
	}
	for _, want := range []string{"fail seed 1", "fail seed 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

// TestFailuresNotCached: errors may be transient, so a failed point
// must be schedulable again — only successes are retained.
func TestFailuresNotCached(t *testing.T) {
	var calls atomic.Int64
	fr := &fakeRunner{fail: func(j Job) error {
		if calls.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	}}
	e := New(Options{Workers: 2, Runner: fr.run})
	job := Job{Scenario: fakeScenario("s"), FPR: 5, Seed: 1}
	if _, err := e.Run(context.Background(), job); err == nil {
		t.Fatal("no error")
	}
	// The retry re-executes and succeeds instead of replaying the error.
	if _, err := e.Run(context.Background(), job); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("runner calls = %d, want 2 (failure not cached)", got)
	}
	// The success IS cached.
	if _, err := e.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("runner calls = %d after success, want 2", got)
	}
}

// TestNoCacheAndVariant: NoCache jobs always execute; Variant keys
// separate cache slots from the plain run at the same point.
func TestNoCacheAndVariant(t *testing.T) {
	fr := &fakeRunner{}
	e := New(Options{Workers: 2, Runner: fr.run})
	sc := fakeScenario("s")
	ctx := context.Background()

	plain := Job{Scenario: sc, FPR: 30, Seed: 1}
	if _, err := e.Run(ctx, plain); err != nil {
		t.Fatal(err)
	}
	variant := Job{Scenario: sc, FPR: 30, Seed: 1, Variant: "controller"}
	if _, err := e.Run(ctx, variant); err != nil {
		t.Fatal(err)
	}
	if got := fr.calls.Load(); got != 2 {
		t.Fatalf("variant aliased the plain run: calls = %d", got)
	}
	nocache := Job{Scenario: sc, FPR: 30, Seed: 1, NoCache: true}
	for i := 0; i < 2; i++ {
		if _, err := e.Run(ctx, nocache); err != nil {
			t.Fatal(err)
		}
	}
	if got := fr.calls.Load(); got != 4 {
		t.Errorf("NoCache served from cache: calls = %d, want 4", got)
	}
}

// TestEviction: a bounded cache re-executes evicted points.
func TestEviction(t *testing.T) {
	fr := &fakeRunner{}
	e := New(Options{Workers: 1, CacheSize: 2, Runner: fr.run})
	sc := fakeScenario("s")
	ctx := context.Background()
	for _, fpr := range []float64{1, 2, 3} {
		if _, err := e.Run(ctx, Job{Scenario: sc, FPR: fpr, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// FPR 1 was evicted (FIFO); re-running it executes again.
	if _, err := e.Run(ctx, Job{Scenario: sc, FPR: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := fr.calls.Load(); got != 4 {
		t.Errorf("calls = %d, want 4 (eviction + re-run)", got)
	}
	// FPR 3 must still be cached.
	if _, err := e.Run(ctx, Job{Scenario: sc, FPR: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := fr.calls.Load(); got != 4 {
		t.Errorf("calls = %d after cached re-run, want 4", got)
	}
}

// TestConcurrentCampaignsSingleflight: overlapping campaigns on the
// same grid share executions instead of duplicating them. Run with
// -race this also exercises the scheduler's synchronization.
func TestConcurrentCampaignsSingleflight(t *testing.T) {
	fr := &fakeRunner{delay: time.Millisecond}
	e := New(Options{Workers: 4, Runner: fr.run})
	jobs := gridJobs(fakeScenario("s"), []float64{1, 2, 3, 4, 5}, 4)

	const campaigns = 8
	var wg sync.WaitGroup
	errs := make([]error, campaigns)
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = e.RunBatch(context.Background(), jobs)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", c, err)
		}
	}
	if got := fr.calls.Load(); got != int64(len(jobs)) {
		t.Errorf("runner calls = %d, want %d (singleflight)", got, len(jobs))
	}
}

// TestClose: queued work completes, the pool winds down, and later
// submissions fail with ErrClosed instead of hanging.
func TestClose(t *testing.T) {
	fr := &fakeRunner{}
	e := New(Options{Workers: 2, Runner: fr.run})
	jobs := gridJobs(fakeScenario("s"), []float64{1, 2}, 2)
	if _, err := e.RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Run(context.Background(), Job{Scenario: fakeScenario("s"), FPR: 9, Seed: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Run error = %v, want ErrClosed", err)
	}
	// The rejection must not be cached as that point's result.
	if got := fr.calls.Load(); got != int64(len(jobs)) {
		t.Errorf("runner calls = %d, want %d", got, len(jobs))
	}
	e.Close() // idempotent
}

// TestConfigureRequiresDiscriminator: a Configure hook without a
// Variant is forced to NoCache so it cannot poison the plain run's
// cache slot.
func TestConfigureRequiresDiscriminator(t *testing.T) {
	fr := &fakeRunner{}
	e := New(Options{Workers: 1, Runner: fr.run})
	ctx := context.Background()
	sc := fakeScenario("s")
	configured := Job{Scenario: sc, FPR: 5, Seed: 1, Configure: func(*sim.Config) {}}
	if _, err := e.Run(ctx, configured); err != nil {
		t.Fatal(err)
	}
	// The plain run at the same point must execute fresh, and the
	// configured job must not be served from cache either.
	if _, err := e.Run(ctx, Job{Scenario: sc, FPR: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ctx, configured); err != nil {
		t.Fatal(err)
	}
	if got := fr.calls.Load(); got != 3 {
		t.Errorf("runner calls = %d, want 3 (no aliasing)", got)
	}
}

// TestDefaultOptions: pool size and cache defaults.
func TestDefaultOptions(t *testing.T) {
	e := New(Options{})
	if e.Workers() < 1 {
		t.Errorf("workers = %d", e.Workers())
	}
	if e.opts.CacheSize != 2048 {
		t.Errorf("cache size = %d", e.opts.CacheSize)
	}
	if e.opts.Runner == nil {
		t.Error("nil default runner")
	}
}

// TestRunBatchFuncStreams: the completion hook fires exactly once per
// job, calls are serialized, and the batch result still carries every
// outcome in submission order.
func TestRunBatchFuncStreams(t *testing.T) {
	fr := &fakeRunner{delay: time.Millisecond}
	e := New(Options{Workers: 4, Runner: fr.run})
	defer e.Close()
	sc := fakeScenario("stream")
	jobs := gridJobs(sc, []float64{1, 2, 3}, 4)

	var mu sync.Mutex
	inHook := false
	seen := make(map[int]int)
	br, err := e.RunBatchFunc(context.Background(), jobs, func(i int, o Outcome) {
		mu.Lock()
		if inHook {
			t.Error("hook re-entered: calls are not serialized")
		}
		inHook = true
		mu.Unlock()
		seen[i]++
		if o.Err != nil {
			t.Errorf("job %d: %v", i, o.Err)
		}
		mu.Lock()
		inHook = false
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("hook fired for %d jobs, want %d", len(seen), len(jobs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("job %d: hook fired %d times", i, n)
		}
	}
	for i, o := range br.Outcomes {
		if o.Job.FPR != jobs[i].FPR || o.Job.Seed != jobs[i].Seed {
			t.Errorf("outcome %d misaligned with submission order", i)
		}
	}
}

// TestRunJobReportsSource: RunJob surfaces the tier that answered.
func TestRunJobReportsSource(t *testing.T) {
	fr := &fakeRunner{}
	e := New(Options{Workers: 2, Runner: fr.run})
	defer e.Close()
	j := Job{Scenario: fakeScenario("src"), FPR: 5, Seed: 1}
	if o := e.RunJob(context.Background(), j); o.Source != SourceFresh || o.Cached {
		t.Errorf("first run: source %v cached %v, want fresh", o.Source, o.Cached)
	}
	if o := e.RunJob(context.Background(), j); o.Source != SourceMemory || !o.Cached {
		t.Errorf("second run: source %v cached %v, want memory", o.Source, o.Cached)
	}
}
