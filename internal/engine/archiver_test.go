package engine

import (
	"context"
	"testing"

	"repro/internal/sim"
)

// TestArchiverOrderAndDrain: the background writer is strictly FIFO,
// so with sequential submissions the manifest (which preserves
// first-recorded order) must list entries in submission order, and
// after Drain the pending gauge settles at zero.
func TestArchiverOrderAndDrain(t *testing.T) {
	st := openStore(t)
	fr := &tracedRunner{}
	e := New(Options{Workers: 1, Runner: fr.run, Store: st})
	const n = 32
	for i := int64(0); i < n; i++ {
		j := Job{Scenario: fakeScenario("fifo"), FPR: 5, Seed: i + 1}
		if _, err := e.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	entries := st.Entries()
	if len(entries) != n {
		t.Fatalf("store holds %d entries, want %d", len(entries), n)
	}
	for i, en := range entries {
		if en.Key.Seed != int64(i+1) {
			t.Fatalf("write order broken at %d: got seed %d", i, en.Key.Seed)
		}
	}
	if s := e.Stats(); s.ArchivePending != 0 || s.Archived != n {
		t.Fatalf("post-drain stats = %+v", s)
	}
}

// TestArchiverAsyncIntegration exercises the concurrent path: fresh
// runs return before their Put necessarily lands, Drain flushes
// everything to the store, and ArchivePending settles at zero.
func TestArchiverAsyncIntegration(t *testing.T) {
	st := openStore(t)
	fr := &tracedRunner{}
	e := New(Options{Workers: 4, Runner: fr.run, Store: st})
	jobs := gridJobs(fakeScenario("async"), []float64{1, 5, 30}, 4)
	for _, j := range jobs {
		if _, err := e.Run(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if s := e.Stats(); s.Archived != int64(len(jobs)) || s.ArchivePending != 0 || s.StoreErrors != 0 {
		t.Fatalf("post-drain stats = %+v", s)
	}
	if st.Len() != len(jobs) {
		t.Fatalf("store holds %d entries, want %d", st.Len(), len(jobs))
	}
}

// TestArchiverCloseFlushesAndFallsBackSync: Close drains the queue,
// and an enqueue after Close must still archive (synchronously) rather
// than drop the result.
func TestArchiverCloseFlushesAndFallsBackSync(t *testing.T) {
	st := openStore(t)
	fr := &tracedRunner{}
	e := New(Options{Workers: 2, Runner: fr.run, Store: st})
	j := Job{Scenario: fakeScenario("close"), FPR: 5, Seed: 1}
	if _, err := e.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	e.arch.close()
	if st.Len() != 1 {
		t.Fatalf("close did not flush: store holds %d entries", st.Len())
	}

	// Post-close enqueue degrades to a synchronous archive.
	j2 := Job{Scenario: fakeScenario("close"), FPR: 5, Seed: 2}
	res, err := fr.run(j2)
	if err != nil {
		t.Fatal(err)
	}
	e.enqueueArchive(j2, res)
	if st.Len() != 2 {
		t.Fatalf("post-close enqueue lost the result: store holds %d entries", st.Len())
	}
	if s := e.Stats(); s.Archived != 2 {
		t.Fatalf("stats = %+v, want 2 archived", s)
	}
}

// TestArchiverDropsNonResults: nil results and store-less engines must
// not panic or queue anything.
func TestArchiverDropsNonResults(t *testing.T) {
	e := New(Options{Workers: 1})
	e.enqueueArchive(Job{Scenario: fakeScenario("x"), FPR: 1, Seed: 1}, &sim.Result{})
	e.Drain() // no archiver attached: must be a no-op
	if p := e.archivePending(); p != 0 {
		t.Fatalf("pending = %d on store-less engine", p)
	}

	st := openStore(t)
	e2 := New(Options{Workers: 1, Store: st})
	e2.enqueueArchive(Job{Scenario: fakeScenario("x"), FPR: 1, Seed: 1}, nil)
	e2.Drain()
	if st.Len() != 0 {
		t.Fatal("nil result was archived")
	}
}
