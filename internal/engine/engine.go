// Package engine is the shared concurrent run-execution subsystem: one
// scheduler and one result cache behind every layer that fans out
// closed-loop simulations (the MRF searches in metrics, the Table-1 /
// headline / baseline campaigns in experiments, and the CLIs).
//
// The paper's validation protocol (§4.2, Table 1) is embarrassingly
// parallel — every measurement is a seeded run at a (scenario, FPR,
// seed) point — so the engine models exactly that: a Job names a point,
// a worker pool sized to runtime.GOMAXPROCS executes points, and an
// in-memory cache keyed by the point guarantees repeated campaigns
// (an MRF search followed by a Table-1 estimate pass, collision-rate
// curves, ablations) never re-simulate a point the process has already
// run. Runs are deterministic in (scenario, FPR, seed), which is what
// makes the cache sound.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// Runner executes one job. The default runner builds the scenario's
// simulator configuration, applies the job's Configure hook, and runs
// the closed-loop simulation; tests inject fakes.
type Runner func(Job) (*sim.Result, error)

// DefaultRunner is the production runner: one seeded closed-loop
// simulation of the scenario at the job's rate. The recording level is
// the lesser of what the built configuration declares (a spec-declared
// level survives the engine path) and the job's engine-stamped level —
// unless the point will be archived, in which case the engine requires
// a full trace and the job says so (fullForStore). Configure may still
// override cfg.Record.
func DefaultRunner(j Job) (*sim.Result, error) {
	cfg := buildConfig(j)
	if j.Configure != nil {
		j.Configure(&cfg)
	}
	return sim.Run(cfg)
}

// buildConfig materializes the job's simulator configuration with the
// engine's record-level policy applied (the Configure hook, if any, is
// the caller's to run).
func buildConfig(j Job) sim.Config {
	cfg := j.Scenario.Build(j.FPR, j.Seed)
	switch {
	case j.fullForStore:
		cfg.Record = trace.LevelFull
	case j.Record > cfg.Record:
		cfg.Record = j.Record // the engine's policy records less than the spec declares
	}
	return cfg
}

// Options configures an Engine.
type Options struct {
	// Workers is the scheduler's pool size. 0 defaults to
	// runtime.GOMAXPROCS(0): simulations are CPU-bound.
	Workers int
	// CacheSize bounds the number of retained results (FIFO eviction of
	// completed entries). 0 defaults to 2048; negative disables caching
	// entirely.
	CacheSize int
	// Runner executes jobs; nil defaults to DefaultRunner.
	Runner Runner
	// Store attaches a persistent cache tier: plain jobs (no Variant,
	// no Configure, not NoCache) missing the in-memory cache are looked
	// up on disk before simulating — a hit loads the archived trace
	// instead of running — and every fresh successful plain run is
	// archived back (the record hook). Store errors never fail a run:
	// the point falls through to a fresh simulation and the error is
	// counted in Stats.StoreErrors. nil disables the tier.
	Store *store.Store
	// Lockstep bounds how many same-point variants execute as a single
	// sim.Batch. Under the default runner, RunBatch plans groups of up
	// to Lockstep plain jobs (no Configure hook) at the same (scenario,
	// seed) — typically the rates of a campaign's sweep — and a worker
	// advances each group in lockstep, sharing ground truth, collision
	// sweeps, and visibility until each variant's closed loop diverges.
	// Workers additionally coalesce same-point jobs that happen to be
	// queued together (cross-campaign traffic through Run). Results are
	// bit-identical to independent runs (see sim.Batch). Seeds always
	// differ across an MRF wave's jobs, so waves never group — grouping
	// them would serialize independent points onto one worker. 0
	// defaults to 8; negative disables lockstep batching.
	Lockstep int
	// Record is the trace recording level the engine runs its jobs at.
	// The zero value is trace.LevelFull. Engines whose consumers only
	// read summaries — the campaign server's NDJSON stream, MRF/rate
	// CLIs, corpus sweeps — set LevelSummary and skip per-step row
	// materialization, the dominant allocation of a run. A scenario
	// whose spec declares a lesser level keeps it (the default runner
	// records the lesser of policy and spec). Store-recorded runs
	// always stay LevelFull regardless: a persistable job on a
	// store-attached engine must produce an archivable trace (the
	// persistent tier refuses anything less). The level is an engine
	// policy, not a per-job knob, so cache entries are level-consistent
	// per key and a hit can never return less than the caller expects.
	Record trace.Level
	// Admission, when set, is the serving tier's priority gate: workers
	// call Yield on it between jobs, briefly parking while a
	// latency-sensitive request (POST /v1/rate) is in flight so batch
	// campaigns cannot starve the serving path of cores. The park is
	// bounded (admission.Gate.MaxWait), so campaigns always retain
	// liveness. nil disables yielding.
	Admission *admission.Gate
}

func (o Options) withDefaults() (Options, bool) {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize == 0 {
		o.CacheSize = 2048
	}
	switch {
	case o.Lockstep == 0:
		o.Lockstep = 8
	case o.Lockstep < 0:
		o.Lockstep = 1
	}
	defaultRunner := o.Runner == nil
	if defaultRunner {
		o.Runner = DefaultRunner
	}
	return o, defaultRunner
}

// Job is one schedulable run: a (scenario, FPR, seed) point, optionally
// specialized by a configuration hook.
type Job struct {
	Scenario scenario.Scenario
	FPR      float64
	Seed     int64
	// Variant discriminates non-default run configurations (e.g. a rate
	// controller attached via Configure) in the cache key, so they never
	// alias the plain run at the same point. Empty for plain runs.
	Variant string
	// NoCache schedules the job through the pool but bypasses the cache
	// on both lookup and store. Required when Configure captures state
	// the caller reads back after the run (controller alarm counts):
	// serving such a job from cache would skip the side effects.
	NoCache bool
	// Configure mutates the built simulator configuration before the
	// run. Only the default runner applies it. A job with a Configure
	// hook must carry a Variant or NoCache so it cannot alias the plain
	// run's cache slot; the engine forces NoCache otherwise.
	Configure func(*sim.Config)
	// Record is the job's engine-stamped trace recording level, assigned
	// from Options.Record before the job reaches the Runner; caller-set
	// values are overwritten. The default runner records at the lesser
	// of this and any level the scenario's own spec declares, except
	// when fullForStore demands an archivable trace.
	Record trace.Level
	// fullForStore marks a persistable job on a store-attached engine:
	// the run must produce a full trace for the archive hook, whatever
	// the engine policy or the spec declare.
	fullForStore bool
}

// Key is the cache identity of a job.
type Key struct {
	Scenario string
	FPR      float64
	Seed     int64
	Variant  string
}

func (j Job) key() Key {
	return Key{Scenario: j.Scenario.Name, FPR: j.FPR, Seed: j.Seed, Variant: j.Variant}
}

// persistable reports whether the job's result may be served from or
// archived to the persistent store: only plain (scenario, FPR, seed)
// points qualify — the store key carries no variant, and Configure
// hooks change the run in ways the key cannot see.
func (j Job) persistable() bool {
	return j.Variant == "" && j.Configure == nil && !j.NoCache
}

// Source says where a job's result came from.
type Source int

// Result sources, in increasing cheapness.
const (
	// SourceFresh — the simulation actually ran.
	SourceFresh Source = iota
	// SourceMemory — served from the in-memory cache, or joined an
	// execution another caller already had in flight.
	SourceMemory
	// SourceDisk — loaded from the persistent store; no simulation.
	SourceDisk
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	default:
		return "fresh"
	}
}

// Outcome pairs a job with its result.
type Outcome struct {
	Job    Job
	Result *sim.Result
	Source Source // fresh simulation, memory cache, or persistent store
	Cached bool   // Source != SourceFresh (kept for call-site brevity)
	Err    error
}

// CampaignStats summarizes one batch submission.
type CampaignStats struct {
	Jobs      int // points submitted
	Executed  int // simulations actually run by this campaign
	CacheHits int // points served from the memory cache or a shared in-flight run
	DiskHits  int // points loaded from the persistent store
	Failures  int // runs that returned a real error
	Skipped   int // points cancelled before execution (first-error propagation)
	Wall      time.Duration
}

// BatchResult is the outcome of RunBatch: per-job outcomes in
// submission order plus campaign stats.
type BatchResult struct {
	Outcomes []Outcome
	Stats    CampaignStats
}

// Stats are engine-lifetime counters.
type Stats struct {
	Executed    int64 // simulations run
	CacheHits   int64 // memory-cache hits (including joined in-flight runs)
	DiskHits    int64 // persistent-store hits
	Archived    int64 // fresh runs written to the persistent store
	Failures    int64
	StoreErrors int64 // store lookups/archives that failed (runs unaffected)
	// ManifestHits counts Peek answers: queries satisfied from the
	// manifest summary alone, no artifact decode and no simulation (each
	// also counts as a DiskHit). The fabric coordinator's warm tier runs
	// entirely on these.
	ManifestHits int64
	// ArchivePending gauges the async archiver's backlog: fresh results
	// handed to the background store writer but not yet on disk. Zero
	// after any Drain/RunBatch return.
	ArchivePending int64
	// LockstepGroups counts multi-variant sim.Batch executions;
	// LockstepRuns counts the simulations they covered (each also in
	// Executed).
	LockstepGroups int64
	LockstepRuns   int64
}

// entry is a cache slot doubling as the singleflight rendezvous:
// whoever creates it owns the execution, everyone else waits on done.
type entry struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

type task struct {
	ctx        context.Context
	job        Job
	ent        *entry
	registered bool // ent lives in the cache map
	// group marks a pre-planned lockstep batch: the task is a carrier
	// for its member tasks (job/ent unused) and the worker executes the
	// members as one sim.Batch.
	group []*task
}

// Engine schedules runs onto a fixed worker pool and caches results.
// The zero value is not usable; construct with New. An Engine is safe
// for concurrent use and is intended to be long-lived (its workers are
// daemon goroutines started on first use).
type Engine struct {
	opts Options
	// defaultRunner records that no Runner was injected: only then may
	// workers replicate the default runner's semantics across a
	// lockstep batch.
	defaultRunner bool

	start sync.Once

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*task
	closed bool
	cache  map[Key]*entry
	order  []Key // insertion order for FIFO eviction

	// diskSem bounds concurrent persistent-tier artifact loads to the
	// pool size: disk hits run on the submitting goroutine (RunBatch
	// spawns one per job), and an unbounded warm campaign would
	// otherwise decompress and decode hundreds of traces at once.
	diskSem chan struct{}

	// arch is the bounded async archiver (nil without a store): fresh
	// results are enqueued before waiters unblock and written to the
	// store off the waiter path. RunBatch and Drain flush it.
	arch *archiver

	executed     atomic.Int64
	cacheHits    atomic.Int64
	diskHits     atomic.Int64
	manifestHits atomic.Int64
	archived     atomic.Int64
	failures     atomic.Int64
	storeErrs    atomic.Int64
	lockGroups   atomic.Int64
	lockRuns     atomic.Int64
}

// New builds an engine. Workers are started lazily on first submission.
func New(opts Options) *Engine {
	resolved, defaultRunner := opts.withDefaults()
	e := &Engine{opts: resolved, defaultRunner: defaultRunner, cache: make(map[Key]*entry)}
	e.cond = sync.NewCond(&e.mu)
	e.diskSem = make(chan struct{}, e.opts.Workers)
	if e.opts.Store != nil {
		// Bound the backlog at a few results per worker: deep enough that
		// bursts of fast summary runs never stall on fsync, small enough
		// that full traces queued for archiving stay a bounded memory cost.
		bound := 4 * e.opts.Workers
		if bound < 16 {
			bound = 16
		}
		e.arch = newArchiver(e, bound)
	}
	return e
}

var defaultEngine = struct {
	once sync.Once
	e    *Engine
}{}

// Default returns the process-wide shared engine, creating it with
// default options on first use. Sharing one engine across layers is
// what lets a Table-1 estimate pass reuse the MRF search's runs.
func Default() *Engine {
	defaultEngine.once.Do(func() { defaultEngine.e = New(Options{}) })
	return defaultEngine.e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Store returns the persistent store attached at construction, or nil.
// Layers above the engine (the campaign server's /v1/store endpoints,
// the CLIs' stats lines) use it to answer manifest queries against the
// same tier the engine warm-starts from.
func (e *Engine) Store() *store.Store { return e.opts.Store }

// Stats snapshots the engine-lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Executed:     e.executed.Load(),
		CacheHits:    e.cacheHits.Load(),
		DiskHits:     e.diskHits.Load(),
		Archived:     e.archived.Load(),
		Failures:     e.failures.Load(),
		StoreErrors:  e.storeErrs.Load(),
		ManifestHits: e.manifestHits.Load(),

		ArchivePending: e.archivePending(),

		LockstepGroups: e.lockGroups.Load(),
		LockstepRuns:   e.lockRuns.Load(),
	}
}

func (e *Engine) startWorkers() {
	e.start.Do(func() {
		for i := 0; i < e.opts.Workers; i++ {
			go e.worker()
		}
	})
}

func (e *Engine) worker() {
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			// Closed and drained: the pool winds down.
			e.mu.Unlock()
			return
		}
		t := e.queue[0]
		e.queue = e.queue[1:]
		if t.group != nil {
			e.mu.Unlock()
			e.opts.Admission.Yield()
			e.executeLockstep(t.group)
			continue
		}
		group := e.claimLockstepLocked(t)
		e.mu.Unlock()
		e.opts.Admission.Yield()
		if len(group) > 0 {
			e.executeLockstep(append([]*task{t}, group...))
		} else {
			e.execute(t)
		}
	}
}

// claimLockstepLocked pulls up to Lockstep-1 queued companions of t —
// same scenario and seed, no Configure hook — off the queue for
// lockstep execution. Only plain-shaped jobs under the default runner
// qualify: a Configure hook can change the run arbitrarily, and an
// injected runner's semantics cannot be replicated by sim.Batch.
// Called with e.mu held.
func (e *Engine) claimLockstepLocked(t *task) []*task {
	if !e.defaultRunner || e.opts.Lockstep <= 1 || t.job.Configure != nil {
		return nil
	}
	var group []*task
	kept := e.queue[:0]
	for _, c := range e.queue {
		if len(group) < e.opts.Lockstep-1 && c.group == nil && c.job.Configure == nil &&
			c.job.Scenario.Name == t.job.Scenario.Name && c.job.Seed == t.job.Seed {
			group = append(group, c)
		} else {
			kept = append(kept, c)
		}
	}
	e.queue = kept
	return group
}

// executeLockstep runs a claimed group as one sim.Batch, replicating
// the default runner per member (configuration build, archive hook,
// counters). Cancelled members are finished with their context error;
// a batch-construction failure falls back to independent execution.
func (e *Engine) executeLockstep(group []*task) {
	live := group[:0]
	for _, t := range group {
		if err := t.ctx.Err(); err != nil {
			e.finish(t, nil, err)
		} else {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		e.execute(live[0])
		return
	}
	cfgs := make([]sim.Config, len(live))
	for i, t := range live {
		cfgs[i] = buildConfig(t.job)
	}
	b, err := sim.NewBatch(cfgs)
	if err != nil {
		for _, t := range live {
			e.execute(t)
		}
		return
	}
	results := b.Run()
	e.lockGroups.Add(1)
	e.lockRuns.Add(int64(len(live)))
	for i, t := range live {
		e.executed.Add(1)
		e.enqueueArchive(t.job, results[i])
		e.finish(t, results[i], nil)
	}
}

// ErrClosed is returned for jobs submitted after Close.
var ErrClosed = errors.New("engine: closed")

func (e *Engine) enqueue(t *task) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		if t.group != nil {
			for _, m := range t.group {
				e.finish(m, nil, ErrClosed)
			}
			return
		}
		e.finish(t, nil, ErrClosed)
		return
	}
	e.queue = append(e.queue, t)
	e.mu.Unlock()
	e.cond.Signal()
}

// Close winds the pool down: queued and in-flight jobs complete, then
// the workers exit. Jobs submitted afterwards fail with ErrClosed.
// The async archiver is flushed before Close returns — every result it
// held is on disk — and results archived by still-running workers
// afterwards are written synchronously. Cached results remain readable
// only through jobs already joined; use Close for short-lived engines
// (benchmarks, one-shot campaigns) so their workers don't outlive
// them. The shared Default engine is never closed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
	if e.arch != nil {
		e.arch.close()
	}
}

// Drain blocks until the async archiver's backlog is on disk. Callers
// that use single Run submissions and then read the store directly —
// or a serving process shutting down on SIGTERM — drain first; RunBatch
// campaigns drain implicitly before returning.
func (e *Engine) Drain() {
	if e.arch != nil {
		e.arch.drain()
	}
}

// archivePending reports the async archiver's backlog gauge.
func (e *Engine) archivePending() int64 {
	if e.arch == nil {
		return 0
	}
	return e.arch.pending()
}

// enqueueArchive routes a fresh result to the async archiver — before
// the task finishes, so a later Drain is guaranteed to cover it — or
// archives synchronously when no archiver exists (no store) or it has
// been closed. Non-persistable results are dropped here without
// touching the queue.
func (e *Engine) enqueueArchive(j Job, res *sim.Result) {
	if e.opts.Store == nil || !j.persistable() || res == nil {
		return
	}
	if e.arch == nil {
		e.archive(j, res)
		return
	}
	e.arch.enqueue(j, res)
}

func (e *Engine) execute(t *task) {
	if err := t.ctx.Err(); err != nil {
		e.finish(t, nil, err)
		return
	}
	res, err := e.opts.Runner(t.job)
	if err != nil {
		e.failures.Add(1)
	}
	e.executed.Add(1)
	if err == nil {
		// Record hook: hand the fresh run to the async archiver before
		// waiters unblock. Enqueueing (not writing) happens first, so a
		// campaign that has returned — RunBatch drains the archiver —
		// still finds every one of its runs on disk, while the waiters
		// themselves no longer pay for serialization and fsync.
		e.enqueueArchive(t.job, res)
	}
	e.finish(t, res, err)
}

// archive writes a fresh successful plain run to the persistent store.
// Store failures are counted, never propagated: the simulation itself
// succeeded. Non-full results never reach the store: the engine runs
// persistable jobs at trace.LevelFull, and if an injected runner
// ignores that, store.Put's own level guard rejects the result and the
// rejection is counted here.
func (e *Engine) archive(j Job, res *sim.Result) {
	if e.opts.Store == nil || !j.persistable() || res == nil {
		return
	}
	_, created, err := e.opts.Store.Put(j.Scenario.Name, store.KeyForScenario(j.Scenario, j.FPR, j.Seed), res)
	if err != nil {
		e.storeErrs.Add(1)
		return
	}
	if created {
		e.archived.Add(1)
	}
}

// Peek returns the persistent store's manifest entry for a plain job
// without loading or decoding its trace artifact. Campaigns that only
// need a run's summary — an MRF collision wave reads nothing but the
// collision outcome — use it to skip both the simulation and the
// artifact decode; the entry's summary fields are exactly what the
// full result would report. Peek hits count as disk hits.
func (e *Engine) Peek(j Job) (store.Entry, bool) {
	if e.opts.Store == nil || !j.persistable() {
		return store.Entry{}, false
	}
	ent, ok := e.opts.Store.Lookup(store.KeyForScenario(j.Scenario, j.FPR, j.Seed))
	if ok {
		e.diskHits.Add(1)
		e.manifestHits.Add(1)
	}
	return ent, ok
}

// storeLookup tries the persistent tier for a plain job. Lookup errors
// degrade to a miss (the point re-simulates) and are counted.
func (e *Engine) storeLookup(j Job) (*sim.Result, bool) {
	if e.opts.Store == nil || !j.persistable() {
		return nil, false
	}
	e.diskSem <- struct{}{}
	defer func() { <-e.diskSem }()
	res, ok, err := e.opts.Store.Get(store.KeyForScenario(j.Scenario, j.FPR, j.Seed))
	if err != nil {
		e.storeErrs.Add(1)
		return nil, false
	}
	if ok {
		e.diskHits.Add(1)
	}
	return res, ok
}

// finish publishes the task's outcome. Failures are never cached:
// cancellations and shutdown rejections mean the point was not actually
// measured, and run errors may be transient (the runner is injectable),
// so a later campaign must be able to schedule the point again. Only
// successful results are retained.
func (e *Engine) finish(t *task, res *sim.Result, err error) {
	t.ent.res, t.ent.err = res, err
	if t.registered && err != nil {
		e.mu.Lock()
		if e.cache[t.job.key()] == t.ent {
			delete(e.cache, t.job.key())
		}
		e.mu.Unlock()
	}
	close(t.ent.done)
}

// effectiveLevel resolves the recording level a job runs at: the
// engine's configured level, upgraded to full for persistable jobs on
// a store-attached engine (the archive hook needs a complete trace —
// the fullForStore flag tells the runner the upgrade is mandatory and
// overrides even a spec-declared level).
func (e *Engine) effectiveLevel(j Job) (trace.Level, bool) {
	if e.opts.Store != nil && j.persistable() {
		return trace.LevelFull, true
	}
	return e.opts.Record, false
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes one job, serving it from the memory cache or the
// persistent store when possible. It blocks until the result is
// available or ctx is cancelled.
func (e *Engine) Run(ctx context.Context, job Job) (*sim.Result, error) {
	res, _, err := e.run(ctx, job)
	return res, err
}

// run reports where the result came from: a fresh simulation, the
// memory cache (including joining a run another caller already had in
// flight), or the persistent store.
func (e *Engine) run(ctx context.Context, job Job) (*sim.Result, Source, error) {
	e.startWorkers()
	if job.Configure != nil && job.Variant == "" {
		// Un-discriminated configured runs would poison the plain run's
		// cache slot at the same point.
		job.NoCache = true
	}
	job.Record, job.fullForStore = e.effectiveLevel(job)
	cacheable := !job.NoCache && e.opts.CacheSize > 0
	if cacheable {
		key := job.key()
		for {
			e.mu.Lock()
			ent, ok := e.cache[key]
			if !ok {
				// Claim the point: we own the execution, later callers
				// join it through the entry. Wait unconditionally: the
				// worker finishes every task — with ctx's error when
				// cancelled before starting — so jobs that did start
				// always report their real outcome, never a spurious
				// cancellation.
				ent = &entry{done: make(chan struct{})}
				e.cache[key] = ent
				e.order = append(e.order, key)
				e.evictLocked()
				e.mu.Unlock()
				// Persistent tier: a disk hit fills the claimed slot
				// without simulating; joiners see a plain memory hit.
				if res, hit := e.storeLookup(job); hit {
					ent.res = res
					close(ent.done)
					return res, SourceDisk, nil
				}
				e.enqueue(&task{ctx: ctx, job: job, ent: ent, registered: true})
				<-ent.done
				return ent.res, SourceFresh, ent.err
			}
			e.mu.Unlock()
			select {
			case <-ent.done:
				if !isCancellation(ent.err) {
					e.cacheHits.Add(1)
					return ent.res, SourceMemory, ent.err
				}
				// The owner was cancelled before the point ran; loop
				// and try to claim it ourselves.
			case <-ctx.Done():
				return nil, SourceFresh, ctx.Err()
			}
		}
	}

	// Memory caching disabled: the persistent tier still serves plain
	// points (NoCache jobs are not persistable and always execute).
	if res, hit := e.storeLookup(job); hit {
		return res, SourceDisk, nil
	}
	ent := &entry{done: make(chan struct{})}
	t := &task{ctx: ctx, job: job, ent: ent}
	e.enqueue(t)
	<-ent.done
	return ent.res, SourceFresh, ent.err
}

// evictLocked drops the oldest completed entries until the cache fits.
// In-flight entries are skipped: evicting one would detach waiters.
func (e *Engine) evictLocked() {
	for len(e.cache) > e.opts.CacheSize {
		evicted := false
		for i, key := range e.order {
			ent, ok := e.cache[key]
			if !ok {
				e.order = append(e.order[:i], e.order[i+1:]...)
				evicted = true
				break
			}
			select {
			case <-ent.done:
				delete(e.cache, key)
				e.order = append(e.order[:i], e.order[i+1:]...)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything in flight; let the cache overshoot
		}
	}
}

// RunJob executes one job and reports its full outcome, including the
// tier that answered it (fresh simulation, memory cache, or persistent
// store). Run is the error-pair convenience; RunJob is for callers —
// the campaign server, stats-printing CLIs — that surface the source.
func (e *Engine) RunJob(ctx context.Context, job Job) Outcome {
	res, src, err := e.run(ctx, job)
	return Outcome{Job: job, Result: res, Source: src, Cached: src != SourceFresh, Err: err}
}

// RunBatch submits a campaign: all jobs are scheduled onto the shared
// pool and execute concurrently up to the worker limit. The first real
// run error cancels the jobs that have not started yet (first-error
// propagation); jobs already running complete. The returned error joins
// every real run error (errors.Join); cancellations of skipped jobs are
// reported per-outcome but not joined. Outcomes align with jobs by
// index.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job) (*BatchResult, error) {
	return e.RunBatchFunc(ctx, jobs, nil)
}

// RunBatchFunc is RunBatch with a completion hook: fn (when non-nil) is
// invoked once per job, in completion order, as soon as that job's
// outcome is known — while the rest of the campaign is still running.
// Calls to fn are serialized by the engine, so fn may write to a shared
// sink (the campaign server streams one NDJSON line per call) without
// its own locking; i is the job's submission index. The returned
// BatchResult still carries every outcome in submission order.
func (e *Engine) RunBatchFunc(ctx context.Context, jobs []Job, fn func(i int, o Outcome)) (*BatchResult, error) {
	startAt := time.Now()
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make([]Outcome, len(jobs))
	var emit sync.Mutex
	deliver := func(i int, o Outcome) {
		outcomes[i] = o
		if o.Err != nil && !isCancellation(o.Err) {
			cancel()
		}
		if fn != nil {
			emit.Lock()
			fn(i, o)
			emit.Unlock()
		}
	}

	// A campaign sees all of its jobs at once, so same-point rate sweeps
	// are grouped for lockstep execution here, at submission — the
	// worker-side claim can only coalesce jobs that happen to be queued
	// together, which scheduling never guarantees.
	groups := e.planLockstep(jobs)
	inGroup := make([]bool, len(jobs))
	for _, g := range groups {
		for _, i := range g {
			inGroup[i] = true
		}
	}

	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g []int) {
			defer wg.Done()
			e.runGroup(bctx, g, jobs, deliver)
		}(g)
	}
	for i, j := range jobs {
		if inGroup[i] {
			continue
		}
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			deliver(i, e.RunJob(bctx, j))
		}(i, j)
	}
	wg.Wait()
	// Flush the async archiver: every fresh run was enqueued before its
	// task finished, so after this a returned campaign's runs are all on
	// disk — same contract as when archiving was synchronous.
	e.Drain()

	br := &BatchResult{Outcomes: outcomes}
	br.Stats.Jobs = len(jobs)
	var errs []error
	for _, o := range outcomes {
		switch {
		case o.Err == nil && o.Source == SourceMemory:
			br.Stats.CacheHits++
		case o.Err == nil && o.Source == SourceDisk:
			br.Stats.DiskHits++
		case o.Err == nil:
			br.Stats.Executed++
		case isCancellation(o.Err):
			br.Stats.Skipped++
		default:
			br.Stats.Failures++
			br.Stats.Executed++
			errs = append(errs, fmt.Errorf("engine: scenario %s fpr %g seed %d: %w", o.Job.Scenario.Name, o.Job.FPR, o.Job.Seed, o.Err))
		}
	}
	br.Stats.Wall = time.Since(startAt)
	if err := errors.Join(errs...); err != nil {
		return br, err
	}
	// No run failed but points were skipped: the caller's own context
	// was cancelled mid-campaign.
	if err := ctx.Err(); err != nil {
		return br, err
	}
	return br, nil
}

// planLockstep partitions a campaign's plain jobs (no Configure hook)
// into lockstep groups of 2..Lockstep at the same (scenario, seed)
// point — the rate sweeps of Table-1-shaped campaigns. Singletons and
// hooked jobs are left to the ordinary per-job path. Only meaningful
// under the default runner: an injected runner's semantics cannot be
// replicated by sim.Batch.
func (e *Engine) planLockstep(jobs []Job) [][]int {
	if !e.defaultRunner || e.opts.Lockstep <= 1 {
		return nil
	}
	type point struct {
		name string
		seed int64
	}
	var order []point
	byPoint := make(map[point][]int)
	for i, j := range jobs {
		if j.Configure != nil {
			continue
		}
		p := point{j.Scenario.Name, j.Seed}
		if byPoint[p] == nil {
			order = append(order, p)
		}
		byPoint[p] = append(byPoint[p], i)
	}
	var groups [][]int
	for _, p := range order {
		g := byPoint[p]
		for len(g) >= 2 {
			n := len(g)
			if n > e.opts.Lockstep {
				n = e.opts.Lockstep
			}
			groups = append(groups, g[:n])
			g = g[n:]
		}
	}
	return groups
}

// runGroup schedules one planned lockstep group: each member claims its
// cache slot (jobs answered by the memory or disk tier, or already in
// flight elsewhere, drop out of the group), and the remaining members
// are enqueued as a single carrier task the worker executes as one
// sim.Batch. Outcomes flow through deliver exactly as on the per-job
// path.
func (e *Engine) runGroup(ctx context.Context, idxs []int, jobs []Job, deliver func(i int, o Outcome)) {
	e.startWorkers()
	type member struct {
		i int
		t *task
	}
	var members []member
	var joins sync.WaitGroup
	for _, i := range idxs {
		job := jobs[i]
		job.Record, job.fullForStore = e.effectiveLevel(job)
		if !job.NoCache && e.opts.CacheSize > 0 {
			key := job.key()
			e.mu.Lock()
			if _, inFlight := e.cache[key]; inFlight {
				e.mu.Unlock()
				// Someone else owns the point (a duplicate in this very
				// campaign, or a concurrent caller): join it through the
				// ordinary path, off the group.
				joins.Add(1)
				go func(i int, job Job) {
					defer joins.Done()
					deliver(i, e.RunJob(ctx, job))
				}(i, jobs[i])
				continue
			}
			ent := &entry{done: make(chan struct{})}
			e.cache[key] = ent
			e.order = append(e.order, key)
			e.evictLocked()
			e.mu.Unlock()
			if res, hit := e.storeLookup(job); hit {
				ent.res = res
				close(ent.done)
				deliver(i, Outcome{Job: job, Result: res, Source: SourceDisk, Cached: true})
				continue
			}
			members = append(members, member{i, &task{ctx: ctx, job: job, ent: ent, registered: true}})
			continue
		}
		if res, hit := e.storeLookup(job); hit {
			deliver(i, Outcome{Job: job, Result: res, Source: SourceDisk, Cached: true})
			continue
		}
		members = append(members, member{i, &task{ctx: ctx, job: job, ent: &entry{done: make(chan struct{})}}})
	}
	switch len(members) {
	case 0:
	case 1:
		e.enqueue(members[0].t)
	default:
		carrier := make([]*task, len(members))
		for k, m := range members {
			carrier[k] = m.t
		}
		e.enqueue(&task{ctx: ctx, group: carrier})
	}
	for _, m := range members {
		<-m.t.ent.done
		deliver(m.i, Outcome{Job: m.t.job, Result: m.t.ent.res, Source: SourceFresh, Err: m.t.ent.err})
	}
	joins.Wait()
}
