package engine

// Engine-cache correctness for procedurally generated scenarios: the
// cache keys on registry names, so distinct generated specs — even with
// a shared name prefix — must occupy distinct slots, and a concurrent
// corpus sweep (run with -race in CI) must be cached and data-race
// free through the real simulator.

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// TestPropertyGeneratedSpecsDistinctCacheSlots: two generated specs
// whose names share a prefix ("corpus/cut-in-1" vs "corpus/cut-in-10")
// must both execute and be cached independently.
func TestPropertyGeneratedSpecsDistinctCacheSlots(t *testing.T) {
	specs := scenario.NewGenerator(scenario.GenOptions{
		Seed:     11,
		Families: []scenario.Family{scenario.FamilyCutIn},
		Prefix:   "corpus",
	}).Generate(2)
	a, b := specs[0].Scenario(), specs[1].Scenario()
	a.Name, b.Name = "corpus/cut-in-1", "corpus/cut-in-10"

	fr := &fakeRunner{}
	e := New(Options{Workers: 2, Runner: fr.run})
	defer e.Close()
	ctx := context.Background()
	for _, sc := range []scenario.Scenario{a, b, a, b} {
		if _, err := e.Run(ctx, Job{Scenario: sc, FPR: 5, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fr.calls.Load(); got != 2 {
		t.Errorf("runner calls = %d, want 2 (prefix-sharing names aliased a slot?)", got)
	}
	if s := e.Stats(); s.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", s.CacheHits)
	}
}

// TestPropertyCorpusSweepCachedRace sweeps a small generated corpus
// through the default runner (real simulations) twice concurrently:
// the second pass must be pure cache hits with identical results, and
// -race must stay quiet across the worker pool.
func TestPropertyCorpusSweepCachedRace(t *testing.T) {
	specs := scenario.NewGenerator(scenario.GenOptions{Seed: 5}).Generate(5)
	var jobs []Job
	for _, sp := range specs {
		for seed := int64(1); seed <= 2; seed++ {
			jobs = append(jobs, Job{Scenario: sp.Scenario(), FPR: 2, Seed: seed})
		}
	}
	e := New(Options{})
	defer e.Close()

	first, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Executed != len(jobs) {
		t.Fatalf("first sweep stats = %+v", first.Stats)
	}
	second, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheHits != len(jobs) || second.Stats.Executed != 0 {
		t.Fatalf("second sweep stats = %+v, want all cache hits", second.Stats)
	}
	for i := range jobs {
		if first.Outcomes[i].Result != second.Outcomes[i].Result {
			t.Errorf("outcome %d not served from cache", i)
		}
		if first.Outcomes[i].Result.Trace.Len() == 0 {
			t.Errorf("outcome %d: empty trace", i)
		}
	}
}
