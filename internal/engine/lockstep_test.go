package engine

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rateSweepJobs is a campaign shard shaped like the Table-1 sweep: many
// rates at one (scenario, seed) point — the lockstep grouping target.
func rateSweepJobs(t *testing.T) []Job {
	t.Helper()
	sc, ok := scenario.ByName(scenario.CutOut)
	if !ok {
		t.Fatal("cut-out not registered")
	}
	var jobs []Job
	for _, fpr := range []float64{30, 20, 15, 10, 7, 5, 3, 2, 1} {
		jobs = append(jobs, Job{Scenario: sc, FPR: fpr, Seed: 4})
	}
	return jobs
}

// TestLockstepCampaignMatchesIndependent runs the same rate sweep on a
// lockstep-batching engine and a batching-disabled one: identical
// summaries, and the batching engine must actually have grouped.
func TestLockstepCampaignMatchesIndependent(t *testing.T) {
	run := func(lockstep, workers int) (*BatchResult, Stats) {
		e := New(Options{Workers: workers, Lockstep: lockstep, Record: trace.LevelSummary})
		defer e.Close()
		br, err := e.RunBatch(context.Background(), rateSweepJobs(t))
		if err != nil {
			t.Fatalf("RunBatch(lockstep=%d): %v", lockstep, err)
		}
		return br, e.Stats()
	}
	// RunBatch plans the groups at submission, so one worker suffices.
	grouped, gstats := run(0, 1)
	independent, istats := run(-1, 4)

	if gstats.LockstepRuns == 0 || gstats.LockstepGroups == 0 {
		t.Errorf("lockstep stats %+v: sweep never grouped", gstats)
	}
	if istats.LockstepRuns != 0 {
		t.Errorf("disabled engine reported lockstep runs: %+v", istats)
	}
	for i := range grouped.Outcomes {
		g, w := grouped.Outcomes[i], independent.Outcomes[i]
		if g.Err != nil || w.Err != nil {
			t.Fatalf("job %d: errs %v / %v", i, g.Err, w.Err)
		}
		if !reflect.DeepEqual(g.Result.Collision, w.Result.Collision) ||
			g.Result.MinBumperGap != w.Result.MinBumperGap ||
			g.Result.EgoStopped != w.Result.EgoStopped ||
			!reflect.DeepEqual(g.Result.FramesProcessed, w.Result.FramesProcessed) {
			t.Errorf("job %d (fpr %g): lockstep result %+v, independent %+v",
				i, g.Job.FPR, g.Result, w.Result)
		}
	}
}

// TestLockstepSkipsConfiguredJobs keeps Configure-hook jobs out of
// lockstep groups: the hook can change the run arbitrarily, so such
// jobs must execute through the runner with the hook applied, even
// when plain jobs at the same (scenario, seed) are being grouped.
func TestLockstepSkipsConfiguredJobs(t *testing.T) {
	e := New(Options{Workers: 1, Lockstep: 8, Record: trace.LevelSummary})
	defer e.Close()
	jobs := rateSweepJobs(t)
	var hooks atomic.Int64
	for i := range jobs[:3] {
		jobs[i].Variant = "hooked"
		jobs[i].Configure = func(cfg *sim.Config) { hooks.Add(1) }
	}
	br, err := e.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range br.Outcomes {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
	if got := hooks.Load(); got != 3 {
		t.Errorf("Configure hooks ran %d times, want 3", got)
	}
	if st := e.Stats(); st.LockstepRuns == 0 {
		t.Errorf("plain jobs never grouped: %+v", st)
	}
}
