package engine

import (
	"context"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// specScenario compiles a tiny but real closed-loop scenario, so these
// tests exercise DefaultRunner (the production level-threading path)
// instead of a fake.
func specScenario(name string) scenario.Scenario {
	sp := scenario.Spec{
		Name:        name,
		EgoSpeedMPH: 30,
		Road:        scenario.RoadDef{Lanes: 2, Length: 2000},
		Duration:    1.5,
	}
	return sp.Scenario()
}

// TestEngineRecordLevelThreadsToRuns proves Options.Record reaches the
// simulator: a summary engine yields row-less results, an off engine
// trace-less ones, and the default stays full.
func TestEngineRecordLevelThreadsToRuns(t *testing.T) {
	sc := specScenario("record-level")
	for _, tc := range []struct {
		level trace.Level
	}{{trace.LevelFull}, {trace.LevelSummary}, {trace.LevelOff}} {
		e := New(Options{Workers: 2, Record: tc.level})
		res, err := e.Run(context.Background(), Job{Scenario: sc, FPR: 10, Seed: 1})
		e.Close()
		if err != nil {
			t.Fatalf("%v: %v", tc.level, err)
		}
		if res.Level != tc.level {
			t.Errorf("level %v: result level %v", tc.level, res.Level)
		}
		switch tc.level {
		case trace.LevelFull:
			if res.Trace == nil || res.Trace.Len() == 0 {
				t.Errorf("full engine returned empty trace: %+v", res.Trace)
			}
		case trace.LevelSummary:
			if res.Trace == nil || res.Trace.Len() != 0 {
				t.Errorf("summary engine trace = %+v, want header-only", res.Trace)
			}
		case trace.LevelOff:
			if res.Trace != nil {
				t.Errorf("off engine trace = %+v, want nil", res.Trace)
			}
		}
	}
}

// TestStoreUpgradesRecordLevel proves the "store-recorded runs stay
// full" policy: on a summary-level engine with a persistent store,
// persistable jobs run (and archive) full traces, while
// non-persistable variant jobs keep the summary level.
func TestStoreUpgradesRecordLevel(t *testing.T) {
	sc := specScenario("record-upgrade")
	st := openStore(t)
	e := New(Options{Workers: 2, Store: st, Record: trace.LevelSummary})
	defer e.Close()

	plain, err := e.Run(context.Background(), Job{Scenario: sc, FPR: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Level != trace.LevelFull || plain.Trace == nil || plain.Trace.Len() == 0 {
		t.Fatalf("persistable job on store engine: level %v, trace %v — want an archivable full trace", plain.Level, plain.Trace)
	}
	e.Drain()
	if st.Len() != 1 {
		t.Fatalf("store has %d entries, want the archived run", st.Len())
	}
	if got := e.Stats().Archived; got != 1 {
		t.Fatalf("archived = %d, want 1", got)
	}

	variant, err := e.Run(context.Background(), Job{Scenario: sc, FPR: 10, Seed: 1, Variant: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if variant.Level != trace.LevelSummary {
		t.Errorf("variant job level = %v, want summary (not persistable, no upgrade)", variant.Level)
	}
	if st.Len() != 1 {
		t.Errorf("variant run reached the store (%d entries)", st.Len())
	}
}

// TestArchiveRefusesNonFullResults injects a runner that ignores the
// job's record level: the store guard must reject the trace-less
// result — counted, not propagated — so the persistent tier can never
// serve a summary run as a disk hit.
func TestArchiveRefusesNonFullResults(t *testing.T) {
	st := openStore(t)
	rogue := func(j Job) (*sim.Result, error) {
		return &sim.Result{
			Trace:           &trace.Trace{Meta: trace.Meta{Scenario: j.Scenario.Name, FPR: j.FPR, Seed: j.Seed}},
			FramesProcessed: map[string]int{},
			Level:           trace.LevelSummary,
		}, nil
	}
	e := New(Options{Workers: 1, Store: st, Runner: rogue})
	defer e.Close()

	res, err := e.Run(context.Background(), Job{Scenario: fakeScenario("rogue"), FPR: 5, Seed: 1})
	if err != nil || res == nil {
		t.Fatalf("run failed: %v", err)
	}
	e.Drain() // the rejection happens on the async archive path
	if st.Len() != 0 {
		t.Fatalf("summary-level result was archived (%d entries)", st.Len())
	}
	if got := e.Stats().StoreErrors; got != 1 {
		t.Errorf("store errors = %d, want 1 (the rejected archive)", got)
	}
	if got := e.Stats().Archived; got != 0 {
		t.Errorf("archived = %d, want 0", got)
	}
}

// TestSummaryEngineCacheIsLevelConsistent re-runs a point on a summary
// engine: the cache hit returns the same summary-level result, and a
// full-level engine at the same point is a distinct engine with its
// own (full) results — levels never mix within one cache.
func TestSummaryEngineCacheIsLevelConsistent(t *testing.T) {
	sc := specScenario("record-cache")
	e := New(Options{Workers: 2, Record: trace.LevelSummary})
	defer e.Close()
	job := Job{Scenario: sc, FPR: 10, Seed: 1}

	first := e.RunJob(context.Background(), job)
	second := e.RunJob(context.Background(), job)
	if first.Err != nil || second.Err != nil {
		t.Fatalf("errs: %v, %v", first.Err, second.Err)
	}
	if second.Source != SourceMemory {
		t.Fatalf("second run source = %v, want memory", second.Source)
	}
	if second.Result != first.Result {
		t.Error("cache hit returned a different result value")
	}
	if second.Result.Level != trace.LevelSummary {
		t.Errorf("cached level = %v", second.Result.Level)
	}
}

// TestSpecDeclaredLevelSurvivesEngine pins the top-down flow: a
// scenario whose spec declares a summary level keeps it through a
// default (full-policy) engine, and a store-attached engine still
// forces the archivable full trace over the spec's declaration.
func TestSpecDeclaredLevelSurvivesEngine(t *testing.T) {
	sp := scenario.Spec{
		Name:        "spec-level",
		EgoSpeedMPH: 30,
		Road:        scenario.RoadDef{Lanes: 2, Length: 2000},
		Duration:    1.5,
		Record:      trace.LevelSummary,
	}
	sc := sp.Scenario()

	e := New(Options{Workers: 1})
	res, err := e.Run(context.Background(), Job{Scenario: sc, FPR: 10, Seed: 1})
	e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != trace.LevelSummary || res.Trace == nil || res.Trace.Len() != 0 {
		t.Fatalf("spec-declared summary lost through the engine: level %v, trace %v", res.Level, res.Trace)
	}

	st := openStore(t)
	se := New(Options{Workers: 1, Store: st})
	sres, err := se.Run(context.Background(), Job{Scenario: sc, FPR: 10, Seed: 1})
	se.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sres.Level != trace.LevelFull || sres.Trace.Len() == 0 {
		t.Fatalf("store engine did not force full over the spec declaration: level %v", sres.Level)
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d entries, want the archived run", st.Len())
	}
}
