// Package behavior provides scripted actor maneuvers for driving
// scenarios: cruising, braking, lane changes (cut-in/cut-out), following
// the ego, and holding a position beside the ego. Behaviors are composed
// into trigger-gated scripts, which is how the paper's nine validation
// scenarios (Table 1) choreograph their actors.
//
// A behavior consumes the actor's lane-relative state each simulation
// step and produces longitudinal acceleration and lateral velocity
// commands. Between scripted stages an actor cruises at constant speed.
package behavior

import (
	"math"

	"repro/internal/road"
	"repro/internal/vehicle"
)

// Context is the per-step information available to triggers and actions.
type Context struct {
	Time float64
	Road *road.Road
	Ego  vehicle.FrenetState
}

// Trigger decides when a script stage starts.
type Trigger func(ctx *Context, st vehicle.FrenetState) bool

// Immediately fires on the first step.
func Immediately() Trigger {
	return func(*Context, vehicle.FrenetState) bool { return true }
}

// AtTime fires once the simulation clock reaches t seconds.
func AtTime(t float64) Trigger {
	return func(ctx *Context, _ vehicle.FrenetState) bool { return ctx.Time >= t }
}

// WhenGapToEgoBelow fires when the actor's station lead over the ego
// (st.S − ego.S, positive when the actor is ahead) drops to gap meters
// or less. This is the natural trigger for cut-out maneuvers: the lead
// actor swerves when the ego closes in.
func WhenGapToEgoBelow(gap float64) Trigger {
	return func(ctx *Context, st vehicle.FrenetState) bool { return st.S-ctx.Ego.S <= gap }
}

// WhenGapToEgoAbove fires when the actor's station lead over the ego
// (st.S − ego.S) reaches gap meters or more; used by cut-in actors that
// pull ahead before merging.
func WhenGapToEgoAbove(gap float64) Trigger {
	return func(ctx *Context, st vehicle.FrenetState) bool { return st.S-ctx.Ego.S >= gap }
}

// WhenEgoGapBelow fires when the ego's station lead over the actor
// (ego.S − st.S) drops to gap meters or less; useful for actors that act
// as the ego approaches from behind.
func WhenEgoGapBelow(gap float64) Trigger {
	return func(ctx *Context, st vehicle.FrenetState) bool { return ctx.Ego.S-st.S <= gap }
}

// WhenEgoWithin fires when the absolute station distance between actor
// and ego is at most dist meters.
func WhenEgoWithin(dist float64) Trigger {
	return func(ctx *Context, st vehicle.FrenetState) bool {
		return math.Abs(st.S-ctx.Ego.S) <= dist
	}
}

// AtStation fires when the actor reaches station s.
func AtStation(s float64) Trigger {
	return func(_ *Context, st vehicle.FrenetState) bool { return st.S >= s }
}

// Action produces control commands for one scripted maneuver.
type Action interface {
	// Init is called once, when the stage's trigger fires.
	Init(ctx *Context, st vehicle.FrenetState)
	// Apply returns the longitudinal acceleration and lateral velocity to
	// use for this step, and whether the action has completed.
	Apply(ctx *Context, st vehicle.FrenetState, dt float64) (accel, latVel float64, done bool)
}

// Stage pairs a trigger with an action.
type Stage struct {
	When Trigger
	Do   Action
}

// Script runs stages in order: it waits (cruising) until the current
// stage's trigger fires, runs the stage's action to completion, then
// moves on. After the last stage the actor cruises at constant speed.
type Script struct {
	Stages []Stage

	idx    int
	active bool
}

// NewScript builds a script from stages.
func NewScript(stages ...Stage) *Script { return &Script{Stages: stages} }

// Step advances the actor state by dt under script control.
func (sc *Script) Step(ctx *Context, st vehicle.FrenetState, dt float64) vehicle.FrenetState {
	sc.StepInto(ctx, &st, dt)
	return st
}

// StepInto is Step mutating st in place — the simulator's per-actor
// integration form, which skips the state copies through the call
// boundary.
func (sc *Script) StepInto(ctx *Context, st *vehicle.FrenetState, dt float64) {
	accel, latVel := 0.0, 0.0
	if sc.idx < len(sc.Stages) {
		stage := &sc.Stages[sc.idx]
		if !sc.active && stage.When(ctx, *st) {
			sc.active = true
			stage.Do.Init(ctx, *st)
		}
		if sc.active {
			var done bool
			accel, latVel, done = stage.Do.Apply(ctx, *st, dt)
			if done {
				sc.idx++
				sc.active = false
			}
		}
	}
	st.Accel = accel
	st.LatVel = latVel
	st.StepInPlace(dt)
}

// Finished reports whether all stages have completed.
func (sc *Script) Finished() bool { return sc.idx >= len(sc.Stages) }

// BrakeTo decelerates at Decel (positive magnitude) until the speed
// drops to Target m/s. It reproduces maneuvers like the paper's Vehicle
// following scenario, where "the actor applies sudden braking, reducing
// its speed to zero".
type BrakeTo struct {
	Target float64
	Decel  float64
}

// Init implements Action.
func (b *BrakeTo) Init(*Context, vehicle.FrenetState) {}

// Apply implements Action.
func (b *BrakeTo) Apply(_ *Context, st vehicle.FrenetState, _ float64) (float64, float64, bool) {
	if st.Speed <= b.Target+1e-9 {
		return 0, 0, true
	}
	return -b.Decel, 0, false
}

// AccelTo accelerates at Accel until the speed reaches Target m/s.
type AccelTo struct {
	Target float64
	Accel  float64
}

// Init implements Action.
func (a *AccelTo) Init(*Context, vehicle.FrenetState) {}

// Apply implements Action.
func (a *AccelTo) Apply(_ *Context, st vehicle.FrenetState, _ float64) (float64, float64, bool) {
	if st.Speed >= a.Target-1e-9 {
		return 0, 0, true
	}
	return a.Accel, 0, false
}

// Hold cruises at the current speed for Duration seconds.
type Hold struct {
	Duration float64

	t0      float64
	started bool
}

// Init implements Action.
func (h *Hold) Init(ctx *Context, _ vehicle.FrenetState) { h.t0 = ctx.Time; h.started = true }

// Apply implements Action.
func (h *Hold) Apply(ctx *Context, _ vehicle.FrenetState, _ float64) (float64, float64, bool) {
	return 0, 0, ctx.Time-h.t0 >= h.Duration
}

// LaneChange moves the actor laterally from its current offset to the
// center of TargetLane over Duration seconds with a smooth single-period
// sinusoidal profile (zero lateral velocity at both ends). It implements
// both cut-in (into the ego's lane) and cut-out (away from it).
type LaneChange struct {
	TargetLane int
	Duration   float64

	t0, d0, d1 float64
}

// Init implements Action.
func (lc *LaneChange) Init(ctx *Context, st vehicle.FrenetState) {
	lc.t0 = ctx.Time
	lc.d0 = st.D
	lc.d1 = ctx.Road.LaneCenterOffset(lc.TargetLane)
}

// Apply implements Action.
func (lc *LaneChange) Apply(ctx *Context, _ vehicle.FrenetState, _ float64) (float64, float64, bool) {
	if lc.Duration <= 0 {
		return 0, 0, true
	}
	tau := (ctx.Time - lc.t0) / lc.Duration
	if tau >= 1 {
		return 0, 0, true
	}
	// d(tau) = d0 + (d1-d0)*(tau - sin(2π tau)/(2π)); latVel is its time
	// derivative, which starts and ends at zero.
	latVel := (lc.d1 - lc.d0) / lc.Duration * (1 - math.Cos(2*math.Pi*tau))
	return 0, latVel, false
}

// FollowEgo trails the ego at the desired station gap using a
// proportional-derivative controller. It never completes; use it as the
// final stage (e.g. "another actor is launched at the back of the ego
// and follows the ego", paper §4.1).
type FollowEgo struct {
	Gap      float64 // desired ego.S − actor.S, m
	MaxAccel float64
	MaxBrake float64
}

// Init implements Action.
func (f *FollowEgo) Init(*Context, vehicle.FrenetState) {}

// Apply implements Action.
func (f *FollowEgo) Apply(ctx *Context, st vehicle.FrenetState, _ float64) (float64, float64, bool) {
	const kGap, kVel = 0.4, 1.2
	gapErr := (ctx.Ego.S - st.S) - f.Gap
	velErr := ctx.Ego.Speed - st.Speed
	a := kGap*gapErr + kVel*velErr
	a = math.Max(-f.MaxBrake, math.Min(f.MaxAccel, a))
	return a, 0, false
}

// MatchBeside holds a station offset relative to the ego ("matches its
// position side to side to the ego with similar speed", paper §4.1).
// OffsetS is the desired actor.S − ego.S. It never completes.
type MatchBeside struct {
	OffsetS  float64
	MaxAccel float64
	MaxBrake float64
}

// Init implements Action.
func (m *MatchBeside) Init(*Context, vehicle.FrenetState) {}

// Apply implements Action.
func (m *MatchBeside) Apply(ctx *Context, st vehicle.FrenetState, _ float64) (float64, float64, bool) {
	const kGap, kVel = 0.5, 1.4
	gapErr := (ctx.Ego.S + m.OffsetS) - st.S
	velErr := ctx.Ego.Speed - st.Speed
	a := kGap*gapErr + kVel*velErr
	a = math.Max(-m.MaxBrake, math.Min(m.MaxAccel, a))
	return a, 0, false
}

// Drift applies a constant lateral velocity for Duration seconds —
// used for crossing agents (pedestrians, cyclists) that traverse the
// road laterally rather than changing lanes.
type Drift struct {
	LatVel   float64
	Duration float64

	t0      float64
	started bool
}

// Init implements Action.
func (d *Drift) Init(ctx *Context, _ vehicle.FrenetState) { d.t0 = ctx.Time; d.started = true }

// Apply implements Action.
func (d *Drift) Apply(ctx *Context, _ vehicle.FrenetState, _ float64) (float64, float64, bool) {
	if ctx.Time-d.t0 >= d.Duration {
		return 0, 0, true
	}
	return 0, d.LatVel, false
}

// Cruise holds the current speed forever (an explicit do-nothing stage;
// actors also cruise implicitly between stages).
type Cruise struct{}

// Init implements Action.
func (Cruise) Init(*Context, vehicle.FrenetState) {}

// Apply implements Action.
func (Cruise) Apply(*Context, vehicle.FrenetState, float64) (float64, float64, bool) {
	return 0, 0, false
}
