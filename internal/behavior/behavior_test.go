package behavior

import (
	"math"
	"testing"

	"repro/internal/road"
	"repro/internal/vehicle"
)

const dt = 0.01

func ctxAt(t float64, r *road.Road, ego vehicle.FrenetState) *Context {
	return &Context{Time: t, Road: r, Ego: ego}
}

func runScript(sc *Script, st vehicle.FrenetState, ego vehicle.FrenetState, seconds float64, r *road.Road) vehicle.FrenetState {
	for t := 0.0; t < seconds; t += dt {
		egoNow := ego
		egoNow.S += ego.Speed * t
		st = sc.Step(ctxAt(t, r, egoNow), st, dt)
	}
	return st
}

func TestTriggers(t *testing.T) {
	r := road.NewStraight(3, 2000)
	st := vehicle.FrenetState{S: 100, Speed: 20}
	ego := vehicle.FrenetState{S: 50, Speed: 25}

	if !Immediately()(ctxAt(0, r, ego), st) {
		t.Error("Immediately should fire")
	}
	if AtTime(5)(ctxAt(4.9, r, ego), st) {
		t.Error("AtTime fired early")
	}
	if !AtTime(5)(ctxAt(5, r, ego), st) {
		t.Error("AtTime did not fire")
	}
	// Actor leads ego by 50 m.
	if WhenGapToEgoBelow(40)(ctxAt(0, r, ego), st) {
		t.Error("gap trigger fired early")
	}
	if !WhenGapToEgoBelow(50)(ctxAt(0, r, ego), st) {
		t.Error("gap trigger did not fire")
	}
	if !WhenEgoWithin(60)(ctxAt(0, r, ego), st) {
		t.Error("WhenEgoWithin did not fire")
	}
	if WhenEgoWithin(40)(ctxAt(0, r, ego), st) {
		t.Error("WhenEgoWithin fired early")
	}
	if !AtStation(100)(ctxAt(0, r, ego), st) {
		t.Error("AtStation did not fire")
	}
	if AtStation(101)(ctxAt(0, r, ego), st) {
		t.Error("AtStation fired early")
	}
	// Ego behind actor: ego gap = ego.S - st.S = -50, below any positive gap.
	if !WhenEgoGapBelow(10)(ctxAt(0, r, ego), st) {
		t.Error("WhenEgoGapBelow did not fire")
	}
}

func TestBrakeToStopsActor(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(Stage{When: AtTime(1), Do: &BrakeTo{Target: 0, Decel: 6}})
	st := vehicle.FrenetState{S: 0, Speed: 30}
	st = runScript(sc, st, vehicle.FrenetState{}, 8, r)
	if st.Speed > 1e-9 {
		t.Errorf("speed = %v, want ~0", st.Speed)
	}
	// Cruise 1 s at 30 then brake 30->0 at 6: 30 + 75 = 105 m.
	if math.Abs(st.S-105) > 1.0 {
		t.Errorf("S = %v, want ~105", st.S)
	}
	if !sc.Finished() {
		t.Error("script not finished")
	}
}

func TestAccelTo(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(Stage{When: Immediately(), Do: &AccelTo{Target: 20, Accel: 2}})
	st := vehicle.FrenetState{Speed: 10}
	st = runScript(sc, st, vehicle.FrenetState{}, 6, r)
	if math.Abs(st.Speed-20) > 0.1 {
		t.Errorf("speed = %v, want 20", st.Speed)
	}
}

func TestHold(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(
		Stage{When: Immediately(), Do: &Hold{Duration: 2}},
		Stage{When: Immediately(), Do: &BrakeTo{Target: 0, Decel: 5}},
	)
	st := vehicle.FrenetState{Speed: 10}
	// After 1 s: still holding, speed unchanged.
	for t := 0.0; t < 1; t += dt {
		st = sc.Step(ctxAt(t, r, vehicle.FrenetState{}), st, dt)
	}
	if st.Speed != 10 {
		t.Errorf("speed during hold = %v", st.Speed)
	}
	for t := 1.0; t < 6; t += dt {
		st = sc.Step(ctxAt(t, r, vehicle.FrenetState{}), st, dt)
	}
	if st.Speed != 0 {
		t.Errorf("speed after brake = %v", st.Speed)
	}
}

func TestLaneChangeReachesTargetLane(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(Stage{When: Immediately(), Do: &LaneChange{TargetLane: 1, Duration: 3}})
	st := vehicle.FrenetState{S: 0, D: 0, Speed: 20}
	st = runScript(sc, st, vehicle.FrenetState{}, 4, r)
	if math.Abs(st.D-3.5) > 0.05 {
		t.Errorf("D = %v, want ~3.5", st.D)
	}
	if !sc.Finished() {
		t.Error("script not finished")
	}
}

func TestLaneChangeSmooth(t *testing.T) {
	r := road.NewStraight(3, 2000)
	lc := &LaneChange{TargetLane: 2, Duration: 4}
	sc := NewScript(Stage{When: Immediately(), Do: lc})
	st := vehicle.FrenetState{D: 0, Speed: 20}
	maxLatVel := 0.0
	prevD := st.D
	for clock := 0.0; clock < 4.5; clock += dt {
		st = sc.Step(ctxAt(clock, r, vehicle.FrenetState{}), st, dt)
		if v := math.Abs(st.LatVel); v > maxLatVel {
			maxLatVel = v
		}
		if st.D < prevD-1e-9 {
			t.Fatalf("lateral motion reversed at t=%v", clock)
		}
		prevD = st.D
	}
	// Peak lateral velocity of the sinusoidal profile is 2·Δd/T = 3.5 m/s.
	if maxLatVel > 3.6 {
		t.Errorf("max lateral velocity = %v", maxLatVel)
	}
	if maxLatVel < 3.0 {
		t.Errorf("profile too flat: max lateral velocity = %v", maxLatVel)
	}
}

func TestLaneChangeZeroDuration(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(Stage{When: Immediately(), Do: &LaneChange{TargetLane: 1, Duration: 0}})
	st := vehicle.FrenetState{D: 0, Speed: 20}
	st = sc.Step(ctxAt(0, r, vehicle.FrenetState{}), st, dt)
	if !sc.Finished() {
		t.Error("zero-duration lane change should finish immediately")
	}
}

func TestFollowEgoConvergesToGap(t *testing.T) {
	r := road.NewStraight(3, 4000)
	sc := NewScript(Stage{When: Immediately(), Do: &FollowEgo{Gap: 20, MaxAccel: 3, MaxBrake: 6}})
	st := vehicle.FrenetState{S: 0, Speed: 25}
	ego := vehicle.FrenetState{S: 40, Speed: 25}
	for t := 0.0; t < 30; t += dt {
		egoNow := ego
		egoNow.S += ego.Speed * t
		st = sc.Step(ctxAt(t, r, egoNow), st, dt)
	}
	finalEgoS := ego.S + ego.Speed*30
	gap := finalEgoS - st.S
	if math.Abs(gap-20) > 2 {
		t.Errorf("gap = %v, want ~20", gap)
	}
	if math.Abs(st.Speed-25) > 1 {
		t.Errorf("speed = %v, want ~25", st.Speed)
	}
}

func TestMatchBesideTracksEgo(t *testing.T) {
	r := road.NewStraight(3, 4000)
	sc := NewScript(Stage{When: Immediately(), Do: &MatchBeside{OffsetS: 0, MaxAccel: 3, MaxBrake: 6}})
	st := vehicle.FrenetState{S: 30, D: 3.5, Speed: 20}
	ego := vehicle.FrenetState{S: 0, Speed: 22}
	for t := 0.0; t < 30; t += dt {
		egoNow := ego
		egoNow.S += ego.Speed * t
		st = sc.Step(ctxAt(t, r, egoNow), st, dt)
	}
	finalEgoS := ego.Speed * 30
	if math.Abs(st.S-finalEgoS) > 2 {
		t.Errorf("station offset = %v, want ~0", st.S-finalEgoS)
	}
}

func TestScriptSequencing(t *testing.T) {
	r := road.NewStraight(3, 4000)
	// Cut-out choreography: cruise until gap to ego < 30, change lane,
	// then brake to a stop.
	sc := NewScript(
		Stage{When: WhenGapToEgoBelow(30), Do: &LaneChange{TargetLane: 1, Duration: 2}},
		Stage{When: Immediately(), Do: &BrakeTo{Target: 0, Decel: 4}},
	)
	st := vehicle.FrenetState{S: 100, D: 0, Speed: 15}
	ego := vehicle.FrenetState{S: 0, Speed: 25}
	for t := 0.0; t < 30; t += dt {
		egoNow := ego
		egoNow.S += ego.Speed * t
		st = sc.Step(ctxAt(t, r, egoNow), st, dt)
	}
	if math.Abs(st.D-3.5) > 0.05 {
		t.Errorf("D = %v, want 3.5 (lane change completed)", st.D)
	}
	if st.Speed > 1e-9 {
		t.Errorf("speed = %v, want ~0 (braked after lane change)", st.Speed)
	}
}

func TestEmptyScriptCruises(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript()
	st := vehicle.FrenetState{Speed: 20}
	st = runScript(sc, st, vehicle.FrenetState{}, 2, r)
	if math.Abs(st.S-40) > 0.5 || st.Speed != 20 {
		t.Errorf("cruise state = %+v", st)
	}
	if !sc.Finished() {
		t.Error("empty script should be finished")
	}
}

func TestDriftTraversesLaterally(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(Stage{When: AtTime(1), Do: &Drift{LatVel: 1.5, Duration: 4}})
	st := vehicle.FrenetState{S: 0, D: -3, Speed: 1}
	st = runScript(sc, st, vehicle.FrenetState{}, 8, r)
	// 4 s at 1.5 m/s = 6 m of lateral travel.
	if math.Abs(st.D-3) > 0.1 {
		t.Errorf("D = %v, want ~3", st.D)
	}
	if !sc.Finished() {
		t.Error("drift not finished")
	}
	if st.LatVel != 0 {
		t.Errorf("lateral velocity %v after drift ended", st.LatVel)
	}
}

func TestCruiseNeverFinishes(t *testing.T) {
	r := road.NewStraight(3, 2000)
	sc := NewScript(Stage{When: Immediately(), Do: Cruise{}})
	st := vehicle.FrenetState{Speed: 20}
	st = runScript(sc, st, vehicle.FrenetState{}, 2, r)
	if sc.Finished() {
		t.Error("cruise should not finish")
	}
	if math.Abs(st.S-40) > 0.5 {
		t.Errorf("S = %v", st.S)
	}
}
