package search

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/scenario"
)

// WriteCorpus serializes a search result as indented JSON. The bytes
// are a pure function of the result, so two deterministic searches
// produce byte-identical corpus files — which is what the determinism
// smoke diffs.
func WriteCorpus(w io.Writer, r *Result) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("search: encode corpus: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadCorpus parses a corpus file written by WriteCorpus.
func ReadCorpus(r io.Reader) (*Result, error) {
	var out Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("search: decode corpus: %w", err)
	}
	return &out, nil
}

// Register loads every corpus spec into the registry, hardest first.
func (r *Result) Register(reg *scenario.Registry) error {
	for _, sp := range r.Specs() {
		if err := reg.RegisterSpec(sp); err != nil {
			return err
		}
	}
	return nil
}
