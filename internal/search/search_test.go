package search

// The determinism/property wall around the search stack. Most tests
// inject a deterministic fake runner (collisions keyed on the genome
// name) so the evolutionary dynamics — determinism across runs and
// worker counts, monotone best-MRF, validity of every emitted spec —
// are exercised in milliseconds; the warm-store test runs the real
// simulator on a tiny budget to prove a rerun against a warm store
// schedules zero fresh simulations.

import (
	"bytes"
	"context"
	"hash/fnv"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// fakeRunner is a deterministic stand-in for the simulator: each
// scenario name hashes to a collision threshold on the default grid
// (or to "never collides" / "always collides"), so MRF scores are a
// pure function of the genome name.
func fakeRunner(j engine.Job) (*sim.Result, error) {
	grid := metrics.DefaultFPRGrid()
	h := fnv.New64a()
	h.Write([]byte(j.Scenario.Name))
	idx := int(h.Sum64() % uint64(len(grid)+2))
	collide := false
	switch {
	case idx == len(grid): // safe everywhere
	case idx == len(grid)+1:
		collide = true // unsafe everywhere
	default:
		collide = j.FPR < grid[idx]
	}
	res := &sim.Result{Level: trace.LevelSummary, MinBumperGap: 3}
	if collide {
		res.Collision = &trace.Collision{Time: 1, ActorID: "fake"}
	}
	return res, nil
}

func fakeEngine(t *testing.T, workers int) *engine.Engine {
	t.Helper()
	eng := engine.New(engine.Options{Workers: workers, Runner: fakeRunner})
	t.Cleanup(eng.Close)
	return eng
}

// testOptions is the shared tiny budget: two families (one of them a
// new search-exploitable family), three generations.
func testOptions(eng *engine.Engine) Options {
	return Options{
		Families:    []scenario.Family{scenario.FamilyCutIn, scenario.FamilyCutInChain},
		Seed:        5,
		Generations: 3,
		Population:  6,
		Seeds:       2,
		Engine:      eng,
	}
}

func runSearch(t *testing.T, opt Options) (*Result, []GenerationSummary, []byte) {
	t.Helper()
	var progress []GenerationSummary
	opt.Progress = func(g GenerationSummary) { progress = append(progress, g) }
	res, err := Search(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, res); err != nil {
		t.Fatal(err)
	}
	return res, progress, buf.Bytes()
}

// TestSearchDeterministicAcrossRunsAndWorkers: the same options
// produce bitwise-identical corpora and progress streams on repeated
// runs and regardless of the engine's worker count.
func TestSearchDeterministicAcrossRunsAndWorkers(t *testing.T) {
	_, prog1, corpus1 := runSearch(t, testOptions(fakeEngine(t, 1)))
	_, prog2, corpus2 := runSearch(t, testOptions(fakeEngine(t, 8)))
	_, prog3, corpus3 := runSearch(t, testOptions(fakeEngine(t, 8)))
	if !bytes.Equal(corpus1, corpus2) || !bytes.Equal(corpus2, corpus3) {
		t.Fatal("corpus bytes differ across runs / worker counts")
	}
	if !reflect.DeepEqual(prog1, prog2) || !reflect.DeepEqual(prog2, prog3) {
		t.Fatal("progress streams differ across runs / worker counts")
	}
	other := testOptions(fakeEngine(t, 4))
	other.Seed = 6
	_, _, corpus4 := runSearch(t, other)
	if bytes.Equal(corpus1, corpus4) {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestSearchBestMRFMonotone: per family, the best score reported per
// generation never decreases (elitism), and every generation reports.
func TestSearchBestMRFMonotone(t *testing.T) {
	opt := testOptions(fakeEngine(t, 4))
	_, progress, _ := runSearch(t, opt)
	if len(progress) != len(opt.Families)*opt.Generations {
		t.Fatalf("got %d progress lines, want %d", len(progress), len(opt.Families)*opt.Generations)
	}
	best := map[string]float64{}
	gen := map[string]int{}
	for _, g := range progress {
		score := g.BestMRF
		if g.BestAboveGrid {
			score = math.Inf(1)
		}
		if g.Generation != gen[g.Family]+1 {
			t.Fatalf("family %s: generation %d out of order", g.Family, g.Generation)
		}
		gen[g.Family] = g.Generation
		if prev, ok := best[g.Family]; ok && score < prev {
			t.Fatalf("family %s: best MRF decreased %v -> %v at generation %d",
				g.Family, prev, score, g.Generation)
		}
		best[g.Family] = score
	}
}

// TestSearchCorpusValidAndRegistrable: every emitted candidate is a
// valid, compilable, correctly named and tagged spec; the corpus is
// sorted hardest first and registers cleanly.
func TestSearchCorpusValidAndRegistrable(t *testing.T) {
	opt := testOptions(fakeEngine(t, 4))
	res, _, _ := runSearch(t, opt)
	if res.Evaluated < opt.Population*len(opt.Families) {
		t.Fatalf("evaluated %d candidates, want >= %d", res.Evaluated, opt.Population*len(opt.Families))
	}
	if len(res.Corpus) != res.Evaluated {
		t.Fatalf("corpus %d != evaluated %d with TopN unset", len(res.Corpus), res.Evaluated)
	}
	reg := scenario.NewRegistry()
	if err := res.Register(reg); err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, c := range res.Corpus {
		if err := c.Spec.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got := GenomeName(scenario.Family(c.Family), c.Spec); got != c.Name {
			t.Fatalf("candidate name %s does not match its content address %s", c.Name, got)
		}
		if !c.Spec.HasTag(TagSearch) || !c.Spec.HasTag(c.Family) || !c.Spec.HasTag(scenario.TagGenerated) {
			t.Fatalf("%s: missing search/family tags %v", c.Name, c.Spec.Tags)
		}
		if err := sim.ValidateConfig(c.Spec.Compile(7.5, 3)); err != nil {
			t.Fatalf("%s: compiled config invalid: %v", c.Name, err)
		}
		if c.score() > prev {
			t.Fatal("corpus not sorted hardest first")
		}
		prev = c.score()
		if c.Generation < 1 || c.Generation > opt.Generations {
			t.Fatalf("%s: generation %d out of range", c.Name, c.Generation)
		}
	}
}

// TestSearchTopN trims the corpus but not the evaluation accounting.
func TestSearchTopN(t *testing.T) {
	opt := testOptions(fakeEngine(t, 4))
	opt.TopN = 3
	res, _, _ := runSearch(t, opt)
	if len(res.Corpus) != 3 {
		t.Fatalf("corpus %d, want 3", len(res.Corpus))
	}
	if res.Evaluated <= 3 || res.Runs == 0 {
		t.Fatalf("accounting lost under TopN: evaluated %d runs %d", res.Evaluated, res.Runs)
	}
}

// TestSearchOptionsValidate: negatives and unknown families are
// rejected before any simulation.
func TestSearchOptionsValidate(t *testing.T) {
	cases := []Options{
		{Generations: -1},
		{Population: -2},
		{Seeds: -1},
		{TopN: -5},
		{FPRGrid: []float64{0}},
		{FPRGrid: []float64{-3}},
		{Families: []scenario.Family{"no-such-family"}},
	}
	for _, opt := range cases {
		opt.Engine = fakeEngine(t, 1)
		if _, err := Search(context.Background(), opt); err == nil {
			t.Fatalf("options %+v accepted, want error", opt)
		}
	}
}

// TestSearchCorpusRoundTrip: WriteCorpus/ReadCorpus is lossless.
func TestSearchCorpusRoundTrip(t *testing.T) {
	opt := testOptions(fakeEngine(t, 4))
	opt.TopN = 4
	res, _, corpus := runSearch(t, opt)
	back, err := ReadCorpus(bytes.NewReader(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("corpus did not round-trip")
	}
	if len(back.Specs()) != 4 {
		t.Fatalf("specs %d, want 4", len(back.Specs()))
	}
	for _, c := range back.Corpus {
		if c.MRFString() == "" {
			t.Fatal("empty MRF rendering")
		}
	}
}

// TestSearchWarmStoreRerunZeroFresh: a second search with the same
// options against the store the first one filled answers every point
// from the manifest — zero fresh simulations — and reproduces the
// corpus byte for byte. Runs the real simulator on a tiny budget.
func TestSearchWarmStoreRerunZeroFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := filepath.Join(t.TempDir(), "store")
	opt := Options{
		Families:    []scenario.Family{scenario.FamilyFollowing},
		Seed:        9,
		Generations: 2,
		Population:  3,
		Seeds:       1,
		FPRGrid:     []float64{5, 30},
	}
	run := func() (stats engine.Stats, corpus []byte) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.Options{Store: st})
		defer func() { eng.Close(); st.Close() }()
		o := opt
		o.Engine = eng
		res, err := Search(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCorpus(&buf, res); err != nil {
			t.Fatal(err)
		}
		return eng.Stats(), buf.Bytes()
	}
	cold, corpus1 := run()
	if cold.Executed == 0 {
		t.Fatal("cold search simulated nothing")
	}
	warm, corpus2 := run()
	if warm.Executed != 0 {
		t.Fatalf("warm rerun executed %d fresh simulations, want 0 (stats %+v)", warm.Executed, warm)
	}
	if warm.ManifestHits == 0 {
		t.Fatal("warm rerun did not touch the manifest")
	}
	if !bytes.Equal(corpus1, corpus2) {
		t.Fatal("warm rerun corpus differs from cold corpus")
	}
}
