// Package search is the adversarial scenario-search layer: a seeded
// evolutionary/bisection optimizer over scenario.Spec jitter space
// that breeds each spec family toward its highest minimum-required
// frame rate (MRF). Populations seed from the procedural Generator,
// candidates are scored by the adaptive MRF search through the shared
// run engine — so warm manifest reads re-score populations without
// simulating — and each generation keeps the hardest half (elitism,
// which makes the per-generation best monotone) while breeding the
// rest by Val-range bisection (Mutate) and gene exchange (Crossover).
//
// The whole search is deterministic given (families, seed, budget):
// candidates are content-addressed by GenomeName, evaluation results
// are gathered by index, and all randomness flows from per-family
// seeded streams consumed only between evaluation barriers — so the
// corpus is bitwise-identical across runs and engine worker counts,
// and a rerun against a warm store performs zero fresh simulations.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// Default search budget: generations per family, population per
// family, and MRF seeds per candidate, used when Options leaves the
// corresponding field zero.
const (
	DefaultGenerations = 4
	DefaultPopulation  = 8
	DefaultSeeds       = 3
)

// breedAttempts bounds how many breeding draws are spent per child
// slot before the population is left short for a generation.
const breedAttempts = 12

// Options configures Search. The zero value searches every family
// with the default budget on the shared default engine.
type Options struct {
	// Families restricts the search; empty means every spec family.
	// Each family evolves its own independent population.
	Families []scenario.Family
	// Seed drives every random choice. The same (Families, Seed,
	// Generations, Population, Seeds, FPRGrid) is guaranteed to
	// reproduce the same corpus bit for bit.
	Seed int64
	// Generations is the number of evaluate→breed rounds per family
	// (default DefaultGenerations). Negative is an error.
	Generations int
	// Population is the per-family population size (default
	// DefaultPopulation). Negative is an error.
	Population int
	// Seeds is the number of simulation seeds per MRF evaluation
	// (default DefaultSeeds). Negative is an error.
	Seeds int
	// TopN trims the final corpus to the hardest N candidates; zero
	// keeps every evaluated candidate. Negative is an error.
	TopN int
	// FPRGrid is the candidate rate grid for the MRF search (default
	// metrics.DefaultFPRGrid). Sorted and deduplicated before use.
	FPRGrid []float64
	// Engine runs the simulations. Nil uses engine.Default(). Attach a
	// store-backed engine to content-address every evaluated candidate
	// and make warm reruns free.
	Engine *engine.Engine
	// Progress, when set, receives one summary per (family,
	// generation), in order, from the searching goroutine.
	Progress func(GenerationSummary)
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if len(o.Families) == 0 {
		o.Families = scenario.Families()
	}
	if o.Generations == 0 {
		o.Generations = DefaultGenerations
	}
	if o.Population == 0 {
		o.Population = DefaultPopulation
	}
	if o.Seeds == 0 {
		o.Seeds = DefaultSeeds
	}
	if len(o.FPRGrid) == 0 {
		o.FPRGrid = metrics.DefaultFPRGrid()
	}
	grid := append([]float64(nil), o.FPRGrid...)
	sort.Float64s(grid)
	out := grid[:0]
	for i, f := range grid {
		if i == 0 || f != grid[i-1] {
			out = append(out, f)
		}
	}
	o.FPRGrid = out
	if o.Engine == nil {
		o.Engine = engine.Default()
	}
	return o
}

// Validate rejects impossible budgets and unknown families before any
// simulation is scheduled. Zero counts mean "use the default"; only
// negatives are errors here — CLI and HTTP layers reject explicit
// zeros themselves, where "0" is a user mistake rather than a
// zero-value default.
func (o Options) Validate() error {
	if o.Generations < 0 {
		return fmt.Errorf("search: negative generations %d", o.Generations)
	}
	if o.Population < 0 {
		return fmt.Errorf("search: negative population %d", o.Population)
	}
	if o.Seeds < 0 {
		return fmt.Errorf("search: negative seeds %d", o.Seeds)
	}
	if o.TopN < 0 {
		return fmt.Errorf("search: negative top-n %d", o.TopN)
	}
	for _, f := range o.FPRGrid {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("search: invalid rate %v in grid", f)
		}
	}
	return (scenario.GenOptions{Families: o.Families}).Validate()
}

// Candidate is one evaluated genome: a fully concrete, registrable
// scenario spec plus its MRF score. The spec's Description is
// inherited from its generator ancestor (it describes the family
// archetype; the genome's exact ranges live in the spec itself).
type Candidate struct {
	// Name is the content-addressed genome name (GenomeName).
	Name string `json:"name"`
	// Family is the spec family the candidate evolved in.
	Family string `json:"family"`
	// Generation is the generation the candidate was first evaluated
	// in (1-based).
	Generation int `json:"generation"`
	// MRF is the scored minimum required FPR. Zero with BelowGrid set
	// means safe at every tested rate; zero with AboveGrid set means
	// colliding at every tested rate (the +Inf score — kept off the
	// wire because JSON has no infinities).
	MRF float64 `json:"mrf"`
	// BelowGrid mirrors metrics.MRF.BelowGrid.
	BelowGrid bool `json:"below_grid,omitempty"`
	// AboveGrid marks candidates unsafe at every rate in the grid.
	AboveGrid bool `json:"above_grid,omitempty"`
	// Runs is the number of engine points the MRF search scheduled for
	// this candidate (cache hits included).
	Runs int `json:"runs"`
	// Spec is the candidate genome itself, registry-loadable as-is.
	Spec scenario.Spec `json:"spec"`
}

// score is the sortable hardness of a candidate: MRF, with above-grid
// encoded as +Inf and below-grid as 0.
func (c Candidate) score() float64 {
	if c.AboveGrid {
		return math.Inf(1)
	}
	return c.MRF
}

// MRFString renders the candidate's score the way Table 1 does.
func (c Candidate) MRFString() string {
	switch {
	case c.AboveGrid:
		return "+Inf"
	case c.BelowGrid:
		return "<1"
	default:
		return fmt.Sprintf("%g", c.MRF)
	}
}

// GenerationSummary is the per-(family, generation) progress record
// streamed over NDJSON by the CLI and /v1/search.
type GenerationSummary struct {
	// Family being evolved.
	Family string `json:"family"`
	// Generation is 1-based.
	Generation int `json:"generation"`
	// Population is the population size after this generation's
	// evaluation (breeding can leave it short when duplicates win).
	Population int `json:"population"`
	// Evaluated counts fresh candidate evaluations this generation
	// (elites keep their cached scores).
	Evaluated int `json:"evaluated"`
	// Best* describe the hardest candidate in the population, which is
	// non-decreasing across generations (elitism).
	BestName      string  `json:"best_name"`
	BestMRF       float64 `json:"best_mrf"`
	BestBelowGrid bool    `json:"best_below_grid,omitempty"`
	BestAboveGrid bool    `json:"best_above_grid,omitempty"`
}

// BestMRFString renders the generation's best score the way Table 1
// does.
func (g GenerationSummary) BestMRFString() string {
	switch {
	case g.BestAboveGrid:
		return "+Inf"
	case g.BestBelowGrid:
		return "<1"
	default:
		return fmt.Sprintf("%g", g.BestMRF)
	}
}

// Result is the search outcome and the on-disk corpus format: every
// field needed to reproduce the run plus the hardest-N candidates.
type Result struct {
	// The resolved budget that produced the corpus.
	Seed        int64     `json:"seed"`
	Families    []string  `json:"families"`
	Generations int       `json:"generations"`
	Population  int       `json:"population"`
	Seeds       int       `json:"seeds"`
	FPRGrid     []float64 `json:"fpr_grid"`
	// Evaluated is the number of distinct genomes scored; Runs the
	// engine points scheduled for them (cache hits included).
	Evaluated int `json:"evaluated"`
	Runs      int `json:"runs"`
	// Corpus holds the hardest-N candidates, hardest first (ties by
	// name).
	Corpus []Candidate `json:"corpus"`
}

// Specs returns the corpus as registrable scenario specs, hardest
// first.
func (r *Result) Specs() []scenario.Spec {
	out := make([]scenario.Spec, len(r.Corpus))
	for i, c := range r.Corpus {
		out[i] = c.Spec
	}
	return out
}

// member is a population slot: a candidate and whether it has been
// scored yet.
type member struct {
	cand   Candidate
	scored bool
}

// Search runs the evolutionary MRF search and returns the hardest-N
// corpus. Families evolve sequentially (each from its own seeded
// stream); within a generation all unscored candidates evaluate
// concurrently through the engine. See the package comment for the
// determinism contract.
func Search(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Seed:        opt.Seed,
		Generations: opt.Generations,
		Population:  opt.Population,
		Seeds:       opt.Seeds,
		FPRGrid:     opt.FPRGrid,
	}
	for _, f := range opt.Families {
		res.Families = append(res.Families, string(f))
	}
	var all []Candidate
	for _, family := range opt.Families {
		evaluated, err := searchFamily(ctx, opt, family, res)
		if err != nil {
			return nil, err
		}
		all = append(all, evaluated...)
	}
	sortCandidates(all)
	res.Evaluated = len(all)
	for _, c := range all {
		res.Runs += c.Runs
	}
	if opt.TopN > 0 && opt.TopN < len(all) {
		all = all[:opt.TopN]
	}
	res.Corpus = all
	return res, nil
}

// searchFamily evolves one family's population and returns every
// candidate it evaluated.
func searchFamily(ctx context.Context, opt Options, family scenario.Family, res *Result) ([]Candidate, error) {
	rng := rand.New(rand.NewSource(familySeed(opt.Seed, family)))
	gen := scenario.NewGenerator(scenario.GenOptions{
		Seed:     familySeed(opt.Seed, family),
		Families: []scenario.Family{family},
		Prefix:   "seedpop",
	})
	seen := map[string]bool{}
	var pop []*member
	for len(pop) < opt.Population {
		sp := finalize(family, gen.Next())
		if seen[sp.Name] {
			continue // astronomically unlikely, but keep names unique
		}
		seen[sp.Name] = true
		pop = append(pop, &member{cand: Candidate{
			Name: sp.Name, Family: string(family), Spec: sp,
		}})
	}

	var evaluated []Candidate
	for g := 1; g <= opt.Generations; g++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fresh, err := evaluate(ctx, opt, pop, g)
		if err != nil {
			return nil, err
		}
		evaluated = append(evaluated, fresh...)
		sortMembers(pop)
		if opt.Progress != nil {
			best := pop[0].cand
			opt.Progress(GenerationSummary{
				Family:        string(family),
				Generation:    g,
				Population:    len(pop),
				Evaluated:     len(fresh),
				BestName:      best.Name,
				BestMRF:       best.MRF,
				BestBelowGrid: best.BelowGrid,
				BestAboveGrid: best.AboveGrid,
			})
		}
		if g == opt.Generations {
			break
		}
		pop = breed(opt, family, pop, seen, rng)
	}
	return evaluated, nil
}

// evaluate scores every unscored member concurrently through the
// engine, gathering results by index so completion order never leaks
// into the outcome. Returns the freshly evaluated candidates in
// population order.
func evaluate(ctx context.Context, opt Options, pop []*member, generation int) ([]Candidate, error) {
	var toEval []*member
	for _, m := range pop {
		if !m.scored {
			toEval = append(toEval, m)
		}
	}
	mrfs := make([]metrics.MRF, len(toEval))
	errs := make([]error, len(toEval))
	var wg sync.WaitGroup
	for i, m := range toEval {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			mrfs[i], errs[i] = metrics.FindMRFContext(ctx, opt.Engine, m.cand.Spec.Scenario(), opt.FPRGrid, opt.Seeds)
		}(i, m)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	fresh := make([]Candidate, 0, len(toEval))
	for i, m := range toEval {
		mrf := mrfs[i]
		m.cand.Generation = generation
		m.cand.Runs = mrf.Runs
		m.cand.BelowGrid = mrf.BelowGrid()
		m.cand.AboveGrid = math.IsInf(mrf.Value, 1)
		if m.cand.AboveGrid {
			m.cand.MRF = 0
		} else {
			m.cand.MRF = mrf.Value
		}
		m.scored = true
		fresh = append(fresh, m.cand)
	}
	return fresh, nil
}

// breed builds the next generation: the hardest half survives with
// cached scores (elitism), the rest are children bred by crossover of
// elite pairs or bisection of a single elite. Children that duplicate
// any genome ever seen this search, or fail validity probes, are
// discarded and the draw retried a bounded number of times.
func breed(opt Options, family scenario.Family, pop []*member, seen map[string]bool, rng *rand.Rand) []*member {
	elite := pop[:(len(pop)+1)/2]
	next := make([]*member, 0, opt.Population)
	next = append(next, elite...)
	for len(next) < opt.Population {
		child, ok := breedOne(family, elite, seen, rng)
		if !ok {
			break // jitter space exhausted at this resolution
		}
		next = append(next, &member{cand: child})
	}
	return next
}

// breedOne draws one admissible child from the elites.
func breedOne(family scenario.Family, elite []*member, seen map[string]bool, rng *rand.Rand) (Candidate, bool) {
	for a := 0; a < breedAttempts; a++ {
		i := rng.Intn(len(elite))
		j := rng.Intn(len(elite))
		var sp scenario.Spec
		ok := false
		if i != j {
			sp, ok = Crossover(elite[i].cand.Spec, elite[j].cand.Spec, rng)
		}
		if !ok {
			sp, ok = Mutate(elite[i].cand.Spec, rng)
		}
		if !ok {
			continue
		}
		sp = finalize(family, sp)
		if seen[sp.Name] || !specOK(sp) {
			continue
		}
		seen[sp.Name] = true
		return Candidate{Name: sp.Name, Family: string(family), Spec: sp}, true
	}
	return Candidate{}, false
}

// sortMembers orders a population hardest first, ties by name, so
// elite selection is deterministic.
func sortMembers(pop []*member) {
	sort.Slice(pop, func(i, k int) bool {
		si, sk := pop[i].cand.score(), pop[k].cand.score()
		if si != sk {
			return si > sk
		}
		return pop[i].cand.Name < pop[k].cand.Name
	})
}

// sortCandidates orders the corpus hardest first, ties by name.
func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(i, k int) bool {
		si, sk := cs[i].score(), cs[k].score()
		if si != sk {
			return si > sk
		}
		return cs[i].Name < cs[k].Name
	})
}
