package search

// FuzzSpecMutate: for any valid spec the fuzzer can construct, every
// mutated and crossed-over child stays inside the parent's declared
// Val ranges, still validates, and compiles deterministically without
// panicking — the containment contract that makes the evolutionary
// step safe to run unsupervised over arbitrary corpora.

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// fuzzBoundsSane rejects specs whose declared ranges are so extreme
// that interval arithmetic itself degenerates (float overflow): the
// containment property is only meaningful over finite intervals.
func fuzzBoundsSane(sp *scenario.Spec) bool {
	for _, v := range valSlots(sp) {
		lo, hi := v.Bounds()
		if math.Abs(lo) > 1e12 || math.Abs(hi) > 1e12 {
			return false
		}
	}
	return true
}

// checkChild asserts the mutation/crossover contract: child validates,
// every child Val interval is contained in the union of the parents'
// (slot-wise), and compilation is deterministic and panic-free.
func checkChild(t *testing.T, child scenario.Spec, parents ...scenario.Spec) {
	t.Helper()
	if err := child.Validate(); err != nil {
		t.Fatalf("bred child no longer validates: %v", err)
	}
	cs := valSlots(&child)
	for i, cv := range cs {
		clo, chi := cv.Bounds()
		lo, hi := math.Inf(1), math.Inf(-1)
		for pi := range parents {
			pv := valSlots(&parents[pi])[i]
			plo, phi := pv.Bounds()
			lo, hi = math.Min(lo, plo), math.Max(hi, phi)
		}
		eps := 1e-9 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
		if clo < lo-eps || chi > hi+eps {
			t.Fatalf("slot %d escaped declared range: child [%v, %v] vs parents [%v, %v]",
				i, clo, chi, lo, hi)
		}
	}
	cfgA, infoA := child.CompileTraced(checkFPR, 3)
	cfgB, infoB := child.CompileTraced(checkFPR, 3)
	if !reflect.DeepEqual(infoA, infoB) {
		t.Fatal("child compilation not deterministic")
	}
	_, _ = cfgA, cfgB
}

func FuzzSpecMutate(f *testing.F) {
	gen := scenario.NewGenerator(scenario.GenOptions{Seed: 19})
	for _, sp := range gen.Generate(len(scenario.Families()) * 2) {
		b, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b, int64(1))
		f.Add(b, int64(42))
	}
	for _, sp := range scenario.Table1Specs() {
		b, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b, int64(7))
	}
	f.Add([]byte(`{"Name":"x"}`), int64(0))
	f.Add([]byte(`not json`), int64(3))

	f.Fuzz(func(t *testing.T, data []byte, opSeed int64) {
		var sp scenario.Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return
		}
		if sp.Validate() != nil || !fuzzBoundsSane(&sp) {
			return
		}
		rng := rand.New(rand.NewSource(opSeed))

		mut, ok := Mutate(sp, rng)
		if !ok {
			return // no jittered Vals to bisect
		}
		checkChild(t, mut, sp)

		// A parent and its mutant always share a shape, so crossover
		// must succeed and stay within the pair's union of ranges.
		cross, ok := Crossover(sp, mut, rng)
		if !ok {
			t.Fatal("crossover refused a parent/mutant pair")
		}
		checkChild(t, cross, sp, mut)

		// Content addressing: renaming is stable and identity-blind.
		if GenomeName("fuzz", mut) != GenomeName("fuzz", finalize("fuzz", mut)) {
			t.Fatal("GenomeName depends on name/tags")
		}
	})
}
