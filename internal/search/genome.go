package search

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// TagSearch marks specs produced by the adversarial search layer; the
// family name rides along as its own tag, like generator output.
const TagSearch = "search"

// checkFPR is the rate used for compile-validity probes of bred specs
// (the same rate the scenario property suite compiles at).
const checkFPR = 12

// checkSeeds is how many seeds a bred spec must compile cleanly at
// before it is admitted to a population.
const checkSeeds = 2

// cloneSpec deep-copies a spec so genome edits never alias a parent's
// actor or stage slices.
func cloneSpec(sp scenario.Spec) scenario.Spec {
	out := sp
	if sp.Tags != nil {
		out.Tags = append([]string(nil), sp.Tags...)
	}
	if sp.Actors != nil {
		out.Actors = make([]scenario.ActorDef, len(sp.Actors))
		copy(out.Actors, sp.Actors)
		for i := range out.Actors {
			if out.Actors[i].Stages == nil {
				continue
			}
			st := make([]scenario.StageDef, len(out.Actors[i].Stages))
			copy(st, out.Actors[i].Stages)
			out.Actors[i].Stages = st
		}
	}
	return out
}

// valSlots enumerates every jitterable Val in the spec, in the same
// declaration order the compile-time jitter stream consumes them.
func valSlots(sp *scenario.Spec) []*scenario.Val {
	var out []*scenario.Val
	for i := range sp.Actors {
		a := &sp.Actors[i]
		out = append(out, &a.S, &a.Speed)
		for k := range a.Stages {
			st := &a.Stages[k]
			out = append(out, &st.When.Arg, &st.Do.Duration, &st.Do.Target,
				&st.Do.Rate, &st.Do.Offset, &st.Do.LatVel)
		}
	}
	return out
}

// Mutate bisects one jittered Val range: the child keeps the parent's
// spec shape but narrows the chosen Val to a random half of its
// declared interval (halving Frac and re-centering Base). Every value
// the child can evaluate to lies inside the parent's declared range,
// so mutation can only refine — never escape — a family's envelope;
// the search's selection pressure is what steers the kept halves
// toward the hard end. Returns false when the spec has no jittered
// Vals to bisect.
func Mutate(sp scenario.Spec, rng *rand.Rand) (scenario.Spec, bool) {
	child := cloneSpec(sp)
	slots := valSlots(&child)
	var jittered []*scenario.Val
	for _, v := range slots {
		if v.Frac != 0 && v.Jit != 0 {
			jittered = append(jittered, v)
		}
	}
	if len(jittered) == 0 {
		return sp, false
	}
	v := jittered[rng.Intn(len(jittered))]
	center := v.Base + v.Jit
	half := math.Abs(v.Jit) * v.Frac / 2
	if rng.Intn(2) == 0 {
		half = -half
	}
	v.Base = center + half - v.Jit
	v.Frac /= 2
	return child, true
}

// sameShape reports whether two specs share a genome layout: same
// actors (identity, kind, lane, spawn side), same stage kinds, same
// road archetype. Only same-shaped specs can exchange Val genes.
func sameShape(a, b scenario.Spec) bool {
	if len(a.Actors) != len(b.Actors) || a.Duration != b.Duration ||
		a.EgoLane != b.EgoLane || a.Road.Curved != b.Road.Curved ||
		a.Road.Lanes != b.Road.Lanes {
		return false
	}
	for i := range a.Actors {
		x, y := &a.Actors[i], &b.Actors[i]
		if x.ID != y.ID || x.Kind != y.Kind || x.Custom != y.Custom ||
			x.Lane != y.Lane || x.DOffset != y.DOffset ||
			x.SpeedAbsolute != y.SpeedAbsolute || len(x.Stages) != len(y.Stages) {
			return false
		}
		for k := range x.Stages {
			sx, sy := &x.Stages[k], &y.Stages[k]
			if sx.When.Kind != sy.When.Kind || sx.Do.Kind != sy.Do.Kind ||
				sx.Do.TargetLane != sy.Do.TargetLane ||
				sx.Do.TargetAbsolute != sy.Do.TargetAbsolute ||
				sx.Do.MaxAccel != sy.Do.MaxAccel || sx.Do.MaxBrake != sy.Do.MaxBrake {
				return false
			}
		}
	}
	return true
}

// Crossover mixes two same-shaped parents gene by gene: the ego
// speed/road pair is one gene, every Val slot another, each taken
// whole from one parent by coin flip. Each child Val therefore equals
// one parent's declared Val exactly — crossover explores combinations,
// never new ranges. Returns false for shape-incompatible parents
// (callers fall back to Mutate).
func Crossover(a, b scenario.Spec, rng *rand.Rand) (scenario.Spec, bool) {
	if !sameShape(a, b) {
		return scenario.Spec{}, false
	}
	child := cloneSpec(a)
	if rng.Intn(2) == 1 {
		child.EgoSpeedMPH = b.EgoSpeedMPH
		child.Road = b.Road
	}
	bc := cloneSpec(b)
	cs, bs := valSlots(&child), valSlots(&bc)
	for i := range cs {
		if rng.Intn(2) == 1 {
			*cs[i] = *bs[i]
		}
	}
	return child, true
}

// GenomeName content-addresses a candidate: the spec is fingerprinted
// with its identity fields (name, tags) cleared, so two searches that
// breed the same parameters produce the same name — which is exactly
// what lets the engine's singleflight cache and the persistent store
// deduplicate their runs — while distinct genomes can never alias.
func GenomeName(family scenario.Family, sp scenario.Spec) string {
	c := cloneSpec(sp)
	c.Name = ""
	c.Tags = nil
	return fmt.Sprintf("%s/%s-%s", TagSearch, family, scenario.SpecFingerprint(c)[:16])
}

// finalize names and tags a bred spec as a search genome.
func finalize(family scenario.Family, sp scenario.Spec) scenario.Spec {
	sp.Name = GenomeName(family, sp)
	sp.Tags = []string{scenario.TagGenerated, TagSearch, string(family)}
	return sp
}

// specOK admits a bred spec to a population: statically valid and
// simulator-valid at the probe seeds.
func specOK(sp scenario.Spec) bool {
	if sp.Validate() != nil {
		return false
	}
	for seed := int64(1); seed <= checkSeeds; seed++ {
		if sim.ValidateConfig(sp.Compile(checkFPR, seed)) != nil {
			return false
		}
	}
	return true
}

// familySeed folds a family name into the search seed so each family
// breeds from an independent deterministic stream.
func familySeed(seed int64, family scenario.Family) int64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	return seed ^ int64(h.Sum64())
}
