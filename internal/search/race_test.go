package search

// Concurrency wall: searches sharing one engine must be race-clean
// (CI runs this under -race), must not leak state into each other's
// populations, and must let the engine's singleflight collapse
// identical candidates to a single execution.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestSearchConcurrentSharedEngineNoCrossTalk: two different-seed
// searches racing on one shared engine each reproduce exactly the
// corpus they produce alone on a private engine.
func TestSearchConcurrentSharedEngineNoCrossTalk(t *testing.T) {
	optA := testOptions(fakeEngine(t, 4))
	optB := testOptions(fakeEngine(t, 4))
	optB.Seed = 77
	optB.Families = []scenario.Family{scenario.FamilyParkedCorridor, scenario.FamilyCutIn}
	_, _, aloneA := runSearch(t, optA)
	_, _, aloneB := runSearch(t, optB)

	shared := fakeEngine(t, 8)
	optA.Engine, optB.Engine = shared, shared
	var sharedA, sharedB []byte
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _, sharedA = runSearch(t, optA) }()
	go func() { defer wg.Done(); _, _, sharedB = runSearch(t, optB) }()
	wg.Wait()
	if !bytes.Equal(aloneA, sharedA) {
		t.Fatal("search A's corpus changed when sharing an engine")
	}
	if !bytes.Equal(aloneB, sharedB) {
		t.Fatal("search B's corpus changed when sharing an engine")
	}
}

// TestSearchConcurrentIdenticalSingleflight: two identical searches
// racing on one engine+store-less cache execute every (scenario, fpr,
// seed) point at most once — the content-addressed genome names are
// what lets the singleflight tier see the duplicates.
func TestSearchConcurrentIdenticalSingleflight(t *testing.T) {
	var mu sync.Mutex
	executed := map[engine.Key]int{}
	runner := func(j engine.Job) (*sim.Result, error) {
		mu.Lock()
		executed[engine.Key{Scenario: j.Scenario.Name, FPR: j.FPR, Seed: j.Seed}]++
		mu.Unlock()
		return fakeRunner(j)
	}
	eng := engine.New(engine.Options{Workers: 8, Runner: runner})
	t.Cleanup(eng.Close)

	optA, optB := testOptions(eng), testOptions(eng)
	var corpusA, corpusB []byte
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, _, corpusA = runSearch(t, optA) }()
	go func() { defer wg.Done(); _, _, corpusB = runSearch(t, optB) }()
	wg.Wait()
	if !bytes.Equal(corpusA, corpusB) {
		t.Fatal("identical concurrent searches disagree")
	}
	stats := eng.Stats()
	if int(stats.Executed) != len(executed) {
		t.Fatalf("%d executions for %d distinct points", stats.Executed, len(executed))
	}
	for k, n := range executed {
		if n != 1 {
			t.Fatalf("point %+v executed %d times, want 1 (singleflight broken)", k, n)
		}
	}
	if stats.CacheHits == 0 {
		t.Fatal("no cache hits across identical concurrent searches")
	}
}
