// Package admission implements the priority lane that keeps the
// latency-sensitive /v1/rate path responsive while batch campaign
// traffic saturates the engine's workers.
//
// The model is deliberately asymmetric. Rate requests never queue:
// they are pure compute on the request goroutine, so the only way a
// campaign can starve them is by keeping every core busy with
// back-to-back simulation jobs. A Gate closes that gap: the rate
// handler brackets its work with Enter/Leave (two atomic adds), and
// engine workers call Yield between jobs, briefly parking while any
// rate request is in flight. The park is bounded by MaxWait, so a
// sustained flood of rate traffic throttles campaigns instead of
// deadlocking them — campaigns retain liveness, rate requests get the
// cores first.
package admission

import (
	"sync/atomic"
	"time"
)

// DefaultMaxWait bounds how long one Yield call may park a campaign
// worker. With continuous rate traffic a worker still starts at least
// one job per MaxWait, preserving campaign liveness.
const DefaultMaxWait = 100 * time.Millisecond

// pollInterval is how often a yielding worker re-checks the gate.
// Short enough that the worker resumes almost immediately after the
// last rate request leaves, long enough to stay off the scheduler's
// back.
const pollInterval = 100 * time.Microsecond

// Gate is a priority-admission gate shared between the serving tier
// (Enter/Leave around rate requests) and the engine's campaign workers
// (Yield between jobs). The zero value is ready to use with
// DefaultMaxWait. Gates must not be copied after first use.
type Gate struct {
	active atomic.Int64
	yields atomic.Uint64
	waitNS atomic.Uint64

	// MaxWait bounds a single Yield. Zero means DefaultMaxWait.
	MaxWait time.Duration
}

// NewGate returns a gate with the given per-yield bound; maxWait <= 0
// selects DefaultMaxWait.
func NewGate(maxWait time.Duration) *Gate {
	return &Gate{MaxWait: maxWait}
}

// Enter marks one priority request in flight. It never blocks and
// never allocates.
func (g *Gate) Enter() { g.active.Add(1) }

// Leave marks one priority request complete.
func (g *Gate) Leave() { g.active.Add(-1) }

// Active reports the number of priority requests currently in flight.
func (g *Gate) Active() int64 { return g.active.Load() }

// Yield parks the caller while priority traffic is in flight, for at
// most MaxWait. Campaign workers call it between jobs; it returns
// immediately in the common (no rate traffic) case with a single
// atomic load.
func (g *Gate) Yield() {
	if g == nil || g.active.Load() == 0 {
		return
	}
	max := g.MaxWait
	if max <= 0 {
		max = DefaultMaxWait
	}
	start := time.Now()
	for g.active.Load() > 0 {
		if time.Since(start) >= max {
			break
		}
		time.Sleep(pollInterval)
	}
	g.yields.Add(1)
	g.waitNS.Add(uint64(time.Since(start)))
}

// Stats reports how many Yield calls actually parked and their total
// parked time. Surfaced via /v1/stats for observability.
func (g *Gate) Stats() (yields uint64, waited time.Duration) {
	if g == nil {
		return 0, 0
	}
	return g.yields.Load(), time.Duration(g.waitNS.Load())
}
