package admission

import (
	"sync"
	"testing"
	"time"
)

func TestYieldNoTrafficIsImmediate(t *testing.T) {
	g := NewGate(0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		g.Yield()
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("1000 idle yields took %v; should be near-free", d)
	}
	if y, _ := g.Stats(); y != 0 {
		t.Fatalf("idle yields should not count as parked, got %d", y)
	}
}

func TestYieldParksWhileActive(t *testing.T) {
	g := NewGate(time.Second)
	g.Enter()
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		g.Yield()
		done <- time.Since(start)
	}()
	time.Sleep(20 * time.Millisecond)
	g.Leave()
	d := <-done
	if d < 10*time.Millisecond {
		t.Fatalf("yield returned after %v; should have parked until Leave", d)
	}
	if d > 900*time.Millisecond {
		t.Fatalf("yield parked %v; should have resumed promptly after Leave", d)
	}
	if y, w := g.Stats(); y != 1 || w < 10*time.Millisecond {
		t.Fatalf("stats = (%d, %v), want one parked yield", y, w)
	}
}

func TestYieldBoundedByMaxWait(t *testing.T) {
	g := NewGate(30 * time.Millisecond)
	g.Enter() // never leaves: sustained priority traffic
	start := time.Now()
	g.Yield()
	d := time.Since(start)
	if d < 25*time.Millisecond {
		t.Fatalf("yield returned after %v; should have waited near MaxWait", d)
	}
	if d > 500*time.Millisecond {
		t.Fatalf("yield parked %v; MaxWait bound not enforced", d)
	}
}

func TestNilGateYieldIsNoop(t *testing.T) {
	var g *Gate
	g.Yield() // must not panic
	if y, w := g.Stats(); y != 0 || w != 0 {
		t.Fatal("nil gate stats should be zero")
	}
}

func TestConcurrentEnterLeave(t *testing.T) {
	g := NewGate(0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Enter()
				g.Leave()
			}
		}()
	}
	wg.Wait()
	if a := g.Active(); a != 0 {
		t.Fatalf("active = %d after balanced enter/leave", a)
	}
}

func BenchmarkEnterLeave(b *testing.B) {
	g := NewGate(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Enter()
		g.Leave()
	}
}
