package server

import (
	"net/http"
	"time"

	"repro/internal/hist"
)

// LatencySet holds one lock-free latency histogram per route. The
// server records every request into its route's histogram; GET
// /v1/stats reports the merged quantiles. A fabric coordinator shares
// one set with its inner worker server (Options.Latency), so requests
// answered locally by either layer land in the same histograms.
type LatencySet struct {
	routes []string
	hists  []*hist.Histogram
	index  map[string]int
}

// NewLatencySet builds a set over the full route table.
func NewLatencySet() *LatencySet {
	rs := Routes()
	ls := &LatencySet{
		routes: make([]string, len(rs)),
		hists:  make([]*hist.Histogram, len(rs)),
		index:  make(map[string]int, len(rs)),
	}
	for i, r := range rs {
		key := r.Method + " " + r.Pattern
		ls.routes[i] = key
		ls.hists[i] = hist.New()
		ls.index[key] = i
	}
	return ls
}

// Histogram returns the histogram for a "METHOD /pattern" route key,
// or nil for routes outside the table.
func (ls *LatencySet) Histogram(route string) *hist.Histogram {
	if ls == nil {
		return nil
	}
	if i, ok := ls.index[route]; ok {
		return ls.hists[i]
	}
	return nil
}

// Timed wraps a handler to record its wall time. Streaming handlers
// (POST /v1/campaign) record the full stream duration — the histogram
// answers "how long did requests to this route hold a connection",
// which is the right question for every route except the rate path,
// whose handler records itself with a pooled shard hint instead. The
// fabric coordinator wraps its own fabric-aware handlers with it too.
func (ls *LatencySet) Timed(route string, h http.HandlerFunc) http.HandlerFunc {
	hg := ls.Histogram(route)
	if hg == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hg.Observe(time.Since(start))
	}
}

// Snapshot reports every route with at least one observation, in route
// table order. Durations are microseconds: the serving SLO lives in
// the sub-millisecond to low-millisecond range, and quantiles carry
// the histogram's 12.5% bucket resolution anyway.
func (ls *LatencySet) Snapshot() []EndpointLatency {
	if ls == nil {
		return nil
	}
	var out []EndpointLatency
	for i, route := range ls.routes {
		s := ls.hists[i].Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, endpointLatencyFromSnapshot(route, s))
	}
	return out
}

// RateLatency returns the rate route's snapshot alone (the fabric
// stats block surfaces it to prove the coordinator answers /v1/rate
// locally), or nil before the first rate request.
func (ls *LatencySet) RateLatency() *EndpointLatency {
	hg := ls.Histogram("POST /v1/rate")
	if hg == nil {
		return nil
	}
	s := hg.Snapshot()
	if s.Count == 0 {
		return nil
	}
	el := endpointLatencyFromSnapshot("POST /v1/rate", s)
	return &el
}

func endpointLatencyFromSnapshot(route string, s hist.Snapshot) EndpointLatency {
	const us = 1e3 // ns per µs
	return EndpointLatency{
		Route:  route,
		Count:  s.Count,
		MeanUS: s.Mean() / us,
		P50US:  float64(s.Quantile(0.50)) / us,
		P90US:  float64(s.Quantile(0.90)) / us,
		P99US:  float64(s.Quantile(0.99)) / us,
		P999US: float64(s.Quantile(0.999)) / us,
		MaxUS:  float64(s.Max) / us,
	}
}
