//go:build !race

// Allocation budget and benchmarks for the pooled /v1/rate path, gated
// only on non-race builds (race instrumentation allocates; CI runs the
// gate as a dedicated loadtest job). The budget is the PR's contract:
// at most 5 allocations per JSON request, exactly 0 per binary
// request, measured below net/http at the serveRate boundary.
package server

import (
	"bytes"
	"encoding/json"
	"testing"
)

// rateBenchRequest is the fixed snapshot the loadtest driver posts
// too: six actors and an operating point so the check branch runs.
func rateBenchRequest() RateRequest {
	return RateRequest{
		Time: 4.2,
		Ego:  AgentState{ID: "ego", Speed: 22},
		Actors: []AgentState{
			{ID: "lead", X: 32, Speed: 17},
			{ID: "lead2", X: 58, Speed: 19},
			{ID: "left", X: 8, Y: 3.5, Speed: 24, Lane: 1},
			{ID: "left-rear", X: -14, Y: 3.5, Speed: 26, Lane: 1},
			{ID: "right", X: 12, Y: -3.5, Speed: 15, Lane: -1},
			{ID: "merge", X: 40, Y: -3.5, Speed: 13, Heading: 0.12, LatVel: 0.8, Lane: -1},
		},
		Operating: map[string]float64{"front120": 10, "left": 5, "right": 5},
	}
}

func TestRateServeAllocBudget(t *testing.T) {
	s := New(Options{})
	sc := getRateScratch()
	defer putRateScratch(sc)

	jsonBody, err := json.Marshal(rateBenchRequest())
	if err != nil {
		t.Fatal(err)
	}
	binBody, err := AppendRateRequestBinary(nil, rateBenchRequest())
	if err != nil {
		t.Fatal(err)
	}

	rd := bytes.NewReader(nil)
	measure := func(body []byte, binary bool) float64 {
		return testing.AllocsPerRun(500, func() {
			rd.Reset(body)
			if code, msg := s.serveRate(sc, rd, binary); code != 0 {
				t.Fatalf("serveRate failed: %d %s", code, msg)
			}
		})
	}

	if a := measure(jsonBody, false); a > 5 {
		t.Errorf("JSON rate path: %.1f allocs/request, budget is 5", a)
	}
	if a := measure(binBody, true); a != 0 {
		t.Errorf("binary rate path: %.1f allocs/request, budget is 0", a)
	}
}

func benchRateServe(b *testing.B, body []byte, binary bool) {
	s := New(Options{})
	sc := getRateScratch()
	defer putRateScratch(sc)
	rd := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		if code, msg := s.serveRate(sc, rd, binary); code != 0 {
			b.Fatalf("serveRate failed: %d %s", code, msg)
		}
	}
}

func BenchmarkRateServeJSON(b *testing.B) {
	body, err := json.Marshal(rateBenchRequest())
	if err != nil {
		b.Fatal(err)
	}
	benchRateServe(b, body, false)
}

func BenchmarkRateServeBinary(b *testing.B) {
	body, err := AppendRateRequestBinary(nil, rateBenchRequest())
	if err != nil {
		b.Fatal(err)
	}
	benchRateServe(b, body, true)
}
