package server

// ratewire.go is the optional length-prefixed binary wire format for
// POST /v1/rate, negotiated by Content-Type. It exists for callers on
// the tightest loops — a closed-loop controller polling at camera
// rate — where even a pooled JSON parse is measurable: the frame is
// fixed-layout little-endian, the server decodes and encodes it with
// zero allocations, and clients use the exported Append/Decode helpers
// (zhuyi.Client.RateBinary rides on them). Errors are always answered
// in JSON regardless of the request format, so error handling needs no
// second code path. docs/api.md documents the frame layout.

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// RateBinaryContentType selects the binary rate wire format when sent
// as a request Content-Type on POST /v1/rate; successful responses are
// answered in the same format (errors stay JSON).
const RateBinaryContentType = "application/x-zhuyi-rate"

// Frame magics: request and response frames are distinguishable on the
// wire so a mis-routed frame fails loudly instead of mis-decoding.
const (
	rateReqMagic  = "ZYR1"
	rateRespMagic = "ZYS1"
)

// agentBinarySize is the fixed tail of one agent record after its
// variable-length ID: 8 float64 kinematic fields, an int32 lane, and a
// flags byte.
const agentBinarySize = 8*8 + 4 + 1

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendF64(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// appendName appends a uint16-length-prefixed string.
func appendName(b []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return b, fmt.Errorf("rate binary: name longer than 65535 bytes")
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...), nil
}

func appendAgentBinary(b []byte, a AgentState) ([]byte, error) {
	b, err := appendName(b, a.ID)
	if err != nil {
		return b, err
	}
	b = appendF64(b, a.X)
	b = appendF64(b, a.Y)
	b = appendF64(b, a.Heading)
	b = appendF64(b, a.Speed)
	b = appendF64(b, a.Accel)
	b = appendF64(b, a.LatVel)
	b = appendF64(b, a.Length)
	b = appendF64(b, a.Width)
	if a.Lane < math.MinInt32 || a.Lane > math.MaxInt32 {
		return b, fmt.Errorf("rate binary: lane %d overflows int32", a.Lane)
	}
	b = appendU32(b, uint32(int32(a.Lane)))
	var flags byte
	if a.Static {
		flags |= 1
	}
	return append(b, flags), nil
}

// AppendRateRequestBinary appends one binary rate request frame to dst
// and returns the extended slice. Operating keys are emitted sorted,
// so identical requests produce identical frames. The frame layout is
// documented in docs/api.md.
func AppendRateRequestBinary(dst []byte, req RateRequest) ([]byte, error) {
	start := len(dst)
	dst = appendU32(dst, 0) // frame length, patched below
	dst = append(dst, rateReqMagic...)
	dst = appendF64(dst, req.Time)
	var err error
	if dst, err = appendAgentBinary(dst, req.Ego); err != nil {
		return dst, err
	}
	dst = appendU32(dst, uint32(len(req.Actors)))
	for _, a := range req.Actors {
		if dst, err = appendAgentBinary(dst, a); err != nil {
			return dst, err
		}
	}
	dst = appendU32(dst, uint32(len(req.Operating)))
	keys := make([]string, 0, len(req.Operating))
	for k := range req.Operating {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		if dst, err = appendName(dst, k); err != nil {
			return dst, err
		}
		dst = appendF64(dst, req.Operating[k])
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst, nil
}

// binReader walks one received frame; all read methods return an error
// on truncation instead of panicking, so arbitrary bytes are safe.
type binReader struct {
	data []byte
	pos  int
}

func (r *binReader) remaining() int { return len(r.data) - r.pos }

func (r *binReader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("rate binary: truncated frame at offset %d", r.pos)
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *binReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("rate binary: truncated frame at offset %d", r.pos)
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("rate binary: truncated frame at offset %d", r.pos)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("rate binary: truncated frame at offset %d", r.pos)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *binReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("rate binary: truncated frame at offset %d", r.pos)
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

// frameReader validates the outer length prefix and magic and returns
// a reader over the frame payload.
func frameReader(data []byte, magic string) (binReader, error) {
	if len(data) < 4 {
		return binReader{}, fmt.Errorf("rate binary: frame shorter than its length prefix")
	}
	n := binary.LittleEndian.Uint32(data)
	if int64(n) != int64(len(data)-4) {
		return binReader{}, fmt.Errorf("rate binary: length prefix %d does not match %d payload bytes", n, len(data)-4)
	}
	r := binReader{data: data[4:]}
	m, err := r.bytes(4)
	if err != nil {
		return binReader{}, err
	}
	if string(m) != magic {
		return binReader{}, fmt.Errorf("rate binary: bad magic %q (want %s)", m, magic)
	}
	return r, nil
}

// readAgentBinary decodes one agent record into dst, interning the ID
// through the scratch.
func (sc *rateScratch) readAgentBinary(r *binReader, dst *AgentState) error {
	n, err := r.u16()
	if err != nil {
		return err
	}
	id, err := r.bytes(int(n))
	if err != nil {
		return err
	}
	dst.ID = sc.intern(id)
	if dst.X, err = r.f64(); err != nil {
		return err
	}
	if dst.Y, err = r.f64(); err != nil {
		return err
	}
	if dst.Heading, err = r.f64(); err != nil {
		return err
	}
	if dst.Speed, err = r.f64(); err != nil {
		return err
	}
	if dst.Accel, err = r.f64(); err != nil {
		return err
	}
	if dst.LatVel, err = r.f64(); err != nil {
		return err
	}
	if dst.Length, err = r.f64(); err != nil {
		return err
	}
	if dst.Width, err = r.f64(); err != nil {
		return err
	}
	lane, err := r.u32()
	if err != nil {
		return err
	}
	dst.Lane = int(int32(lane))
	flags, err := r.u8()
	if err != nil {
		return err
	}
	dst.Static = flags&1 != 0
	return nil
}

// decodeBinaryRequest decodes sc.body as a binary rate request frame
// into the scratch request, allocation-free in the steady state.
func (sc *rateScratch) decodeBinaryRequest() error {
	r, err := frameReader(sc.body, rateReqMagic)
	if err != nil {
		return err
	}
	if sc.req.Time, err = r.f64(); err != nil {
		return err
	}
	if err := sc.readAgentBinary(&r, &sc.req.Ego); err != nil {
		return err
	}
	actors, err := r.u32()
	if err != nil {
		return err
	}
	// Each agent record is at least its fixed tail plus the ID length
	// prefix; reject counts the remaining bytes cannot hold before
	// growing any buffer.
	if int64(actors)*(agentBinarySize+2) > int64(r.remaining()) {
		return fmt.Errorf("rate binary: actor count %d exceeds frame size", actors)
	}
	for i := 0; i < int(actors); i++ {
		if i < cap(sc.req.Actors) {
			sc.req.Actors = sc.req.Actors[:i+1]
		} else {
			sc.req.Actors = append(sc.req.Actors, AgentState{})
		}
		sc.req.Actors[i] = AgentState{}
		if err := sc.readAgentBinary(&r, &sc.req.Actors[i]); err != nil {
			return err
		}
	}
	entries, err := r.u32()
	if err != nil {
		return err
	}
	if int64(entries)*(2+8) > int64(r.remaining()) {
		return fmt.Errorf("rate binary: operating count %d exceeds frame size", entries)
	}
	for i := 0; i < int(entries); i++ {
		n, err := r.u16()
		if err != nil {
			return err
		}
		name, err := r.bytes(int(n))
		if err != nil {
			return err
		}
		v, err := r.f64()
		if err != nil {
			return err
		}
		sc.req.Operating[sc.intern(name)] = v
	}
	return nil
}

// encodeBinaryResponse renders the computed response as a binary
// frame into sc.out. Map entries are emitted sorted by name so
// identical responses produce identical frames; floats are raw IEEE
// bits, so non-finite values need no fallback path.
func (sc *rateScratch) encodeBinaryResponse() {
	b := sc.out[:0]
	b = appendU32(b, 0) // patched below
	b = append(b, rateRespMagic...)
	b = appendF64(b, sc.e.Time)
	b = sc.appendFloatMapBinary(b, sc.e.CameraFPR)
	b = appendF64(b, sc.sumFPR)
	b = appendF64(b, sc.maxFPR)
	b = sc.appendFloatMapBinary(b, sc.rates)
	if sc.hasCheck {
		b = append(b, 1)
		if sc.chk.OK {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		// Action strings and camera names come from the fixed rig;
		// they cannot exceed a uint16.
		action := sc.chk.Action.String()
		b = appendU16(b, uint16(len(action)))
		b = append(b, action...)
		b = appendU32(b, uint32(len(sc.chk.Alarms)))
		for _, a := range sc.chk.Alarms {
			b = appendU16(b, uint16(len(a.Camera)))
			b = append(b, a.Camera...)
			b = appendF64(b, a.Required)
			b = appendF64(b, a.Operating)
		}
	} else {
		b = append(b, 0)
	}
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	sc.out = b
}

// appendFloatMapBinary appends a sorted uint32-counted name/value
// table, reusing the scratch key slice.
func (sc *rateScratch) appendFloatMapBinary(b []byte, m map[string]float64) []byte {
	sc.keys = sc.keys[:0]
	for k := range m {
		sc.keys = append(sc.keys, k)
	}
	slices.Sort(sc.keys)
	b = appendU32(b, uint32(len(sc.keys)))
	for _, k := range sc.keys {
		b = appendU16(b, uint16(len(k)))
		b = append(b, k...)
		b = appendF64(b, m[k])
	}
	return b
}

// DecodeRateResponseBinary decodes a binary rate response frame (the
// body a successful binary-negotiated POST /v1/rate returns). It is
// the client-side mirror of the server encoder and allocates freely.
func DecodeRateResponseBinary(data []byte) (RateResponse, error) {
	var resp RateResponse
	r, err := frameReader(data, rateRespMagic)
	if err != nil {
		return resp, err
	}
	if resp.Time, err = r.f64(); err != nil {
		return resp, err
	}
	if resp.CameraFPR, err = readFloatMapBinary(&r); err != nil {
		return resp, err
	}
	if resp.SumFPR, err = r.f64(); err != nil {
		return resp, err
	}
	if resp.MaxFPR, err = r.f64(); err != nil {
		return resp, err
	}
	if resp.Rates, err = readFloatMapBinary(&r); err != nil {
		return resp, err
	}
	hasCheck, err := r.u8()
	if err != nil {
		return resp, err
	}
	if hasCheck == 0 {
		if r.remaining() != 0 {
			return resp, fmt.Errorf("rate binary: %d trailing bytes", r.remaining())
		}
		return resp, nil
	}
	chk := &RateCheck{}
	okByte, err := r.u8()
	if err != nil {
		return resp, err
	}
	chk.OK = okByte != 0
	n, err := r.u16()
	if err != nil {
		return resp, err
	}
	action, err := r.bytes(int(n))
	if err != nil {
		return resp, err
	}
	chk.Action = string(action)
	alarms, err := r.u32()
	if err != nil {
		return resp, err
	}
	if int64(alarms)*(2+16) > int64(r.remaining()) {
		return resp, fmt.Errorf("rate binary: alarm count %d exceeds frame size", alarms)
	}
	for i := 0; i < int(alarms); i++ {
		var a RateAlarm
		n, err := r.u16()
		if err != nil {
			return resp, err
		}
		name, err := r.bytes(int(n))
		if err != nil {
			return resp, err
		}
		a.Camera = string(name)
		if a.Required, err = r.f64(); err != nil {
			return resp, err
		}
		if a.Operating, err = r.f64(); err != nil {
			return resp, err
		}
		chk.Alarms = append(chk.Alarms, a)
	}
	resp.Check = chk
	if r.remaining() != 0 {
		return resp, fmt.Errorf("rate binary: %d trailing bytes", r.remaining())
	}
	return resp, nil
}

// readFloatMapBinary reads a uint32-counted name/value table.
func readFloatMapBinary(r *binReader) (map[string]float64, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(n)*(2+8) > int64(r.remaining()) {
		return nil, fmt.Errorf("rate binary: entry count %d exceeds frame size", n)
	}
	m := make(map[string]float64, n)
	for i := 0; i < int(n); i++ {
		k, err := r.u16()
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(int(k))
		if err != nil {
			return nil, err
		}
		v, err := r.f64()
		if err != nil {
			return nil, err
		}
		m[string(name)] = v
	}
	return m, nil
}

// DecodeRateRequestBinary decodes a binary rate request frame into a
// freshly allocated RateRequest — the test-facing mirror of the
// server's pooled decoder (golden tests pin both against
// AppendRateRequestBinary).
func DecodeRateRequestBinary(data []byte) (RateRequest, error) {
	sc := newRateScratch()
	sc.body = append(sc.body[:0], data...)
	var req RateRequest
	if err := sc.decodeBinaryRequest(); err != nil {
		return req, err
	}
	req.Time = sc.req.Time
	req.Ego = sc.req.Ego
	req.Actors = append([]AgentState(nil), sc.req.Actors...)
	if len(sc.req.Operating) > 0 {
		req.Operating = make(map[string]float64, len(sc.req.Operating))
		for k, v := range sc.req.Operating {
			req.Operating[k] = v
		}
	}
	return req, nil
}
