package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/store"
)

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// postCampaign posts points and decodes the NDJSON stream.
func postCampaign(t *testing.T, base string, req CampaignRequest) ([]PointResult, CampaignStats) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var points []PointResult
	var stats *CampaignStats
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var line CampaignLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Point != nil:
			if stats != nil {
				t.Fatal("point line after stats trailer")
			}
			points = append(points, *line.Point)
		case line.Stats != nil:
			stats = line.Stats
		default:
			t.Fatalf("line carries neither point nor stats: %q", sc.Text())
		}
		if line.Error != "" && line.Stats == nil && line.Point == nil {
			t.Fatalf("stream error: %s", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("no stats trailer")
	}
	return points, *stats
}

func campaignTwoPoints() CampaignRequest {
	return CampaignRequest{Points: []Point{
		{Scenario: scenario.CutOut, FPR: 30, Seed: 1},
		{Scenario: scenario.CutOut, FPR: 30, Seed: 2},
	}}
}

// TestCampaignStreamAndTiers is the acceptance round-trip at the
// handler level: a first campaign runs fresh, the identical second
// campaign answers from the memory tier, and a new server process over
// the same store directory answers from the disk tier — each asserted
// via /v1/stats.
func TestCampaignStreamAndTiers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, Options{Store: st})

	points, stats := postCampaign(t, ts.URL, campaignTwoPoints())
	if len(points) != 2 || stats.Jobs != 2 {
		t.Fatalf("got %d points, stats %+v", len(points), stats)
	}
	if stats.Executed != 2 || stats.CacheHits != 0 || stats.DiskHits != 0 {
		t.Errorf("cold campaign stats %+v, want 2 fresh", stats)
	}
	seen := map[int]bool{}
	for _, p := range points {
		if p.Source != "fresh" {
			t.Errorf("point %d source %q, want fresh", p.Index, p.Source)
		}
		if p.Error != "" {
			t.Errorf("point %d error %q", p.Index, p.Error)
		}
		if p.Rows == 0 {
			t.Errorf("point %d has no rows", p.Index)
		}
		seen[p.Index] = true
	}
	if len(seen) != 2 {
		t.Errorf("indices %v, want 0 and 1", seen)
	}

	// Identical request: memory tier.
	_, stats = postCampaign(t, ts.URL, campaignTwoPoints())
	if stats.CacheHits != 2 || stats.Executed != 0 {
		t.Errorf("warm campaign stats %+v, want 2 memory hits", stats)
	}
	var stResp StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stResp)
	if stResp.Engine.CacheHits < 2 || stResp.Engine.Executed != 2 || stResp.Engine.Archived != 2 {
		t.Errorf("engine stats %+v", stResp.Engine)
	}
	if stResp.Server.Campaigns != 2 || stResp.Server.CampaignPoints != 4 {
		t.Errorf("server stats %+v", stResp.Server)
	}
	if stResp.Store == nil || stResp.Store.Entries != 2 {
		t.Errorf("store summary %+v, want 2 entries", stResp.Store)
	}

	// New server over the same store: cold memory, warm disk.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts2 := newTestServer(t, Options{Store: st2})
	_, stats = postCampaign(t, ts2.URL, campaignTwoPoints())
	if stats.DiskHits != 2 || stats.Executed != 0 {
		t.Errorf("disk-tier campaign stats %+v, want 2 disk hits", stats)
	}
	var stResp2 StatsResponse
	getJSON(t, ts2.URL+"/v1/stats", &stResp2)
	if stResp2.Engine.DiskHits != 2 || stResp2.Engine.Executed != 0 {
		t.Errorf("engine stats after disk-tier campaign: %+v", stResp2.Engine)
	}
}

func TestCampaignBadRequests(t *testing.T) {
	ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{"points":[]}`},
		{"unknown scenario", `{"points":[{"scenario":"no-such","fpr":30,"seed":1}]}`},
		{"bad fpr", `{"points":[{"scenario":"cut-out","fpr":0,"seed":1}]}`},
		{"malformed", `{"points":`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("%s: non-JSON error body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func TestMRFEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	var m MRFResponse
	resp := getJSON(t, ts.URL+"/v1/mrf/"+scenario.CutOut+"?seeds=1&fprs=30", &m)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if m.Scenario != scenario.CutOut || m.Seeds != 1 {
		t.Errorf("mrf response %+v", m)
	}
	if len(m.Grid) == 0 {
		t.Error("empty grid")
	}
	if resp := getJSON(t, ts.URL+"/v1/mrf/no-such", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scenario: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/mrf/"+scenario.CutOut+"?seeds=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seeds: status %d, want 400", resp.StatusCode)
	}
}

// TestMRFAboveGridAndUnsortedInput: a grid whose highest rate still
// collides must answer with above_grid (never a broken +Inf body), and
// a descending ?fprs= list must be normalized before the search —
// "30,1" and "1,30" are the same grid.
func TestMRFAboveGridAndUnsortedInput(t *testing.T) {
	ts := newTestServer(t, Options{})
	// cut-out-fast collides at 1 and 2 FPR (MRF is 3): a grid topping
	// out at 2 is above-grid.
	var m MRFResponse
	resp := getJSON(t, ts.URL+"/v1/mrf/cut-out-fast?seeds=1&fprs=1,2", &m)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (a +Inf MRF must still encode)", resp.StatusCode)
	}
	if !m.AboveGrid || m.MRF != 0 || m.BelowGrid {
		t.Errorf("above-grid response %+v", m)
	}

	var sorted, unsorted MRFResponse
	getJSON(t, ts.URL+"/v1/mrf/cut-out-fast?seeds=1&fprs=2,30", &sorted)
	getJSON(t, ts.URL+"/v1/mrf/cut-out-fast?seeds=1&fprs=30,2,2", &unsorted)
	if sorted.MRF != unsorted.MRF || sorted.AboveGrid != unsorted.AboveGrid {
		t.Errorf("grid order changed the answer: sorted %+v vs unsorted %+v", sorted, unsorted)
	}
	if sorted.MRF != 30 {
		t.Errorf("mrf over {2,30} = %g, want 30 (collides at 2)", sorted.MRF)
	}

	// Unbounded work must be rejected, and so must non-finite rates.
	if resp := getJSON(t, ts.URL+"/v1/mrf/cut-out?seeds=100000000", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge seeds: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/mrf/cut-out?seeds=1&fprs=inf", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fprs=inf: status %d, want 400", resp.StatusCode)
	}
}

func TestRateEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	// A braking lead vehicle directly ahead: the front camera must
	// demand a real rate, and operating it at 1 FPR must alarm.
	req := RateRequest{
		Time: 0,
		Ego:  AgentState{X: 0, Y: 0, Speed: 20},
		Actors: []AgentState{
			{ID: "lead", X: 25, Y: 0, Speed: 12, Accel: -4},
		},
		Operating: map[string]float64{"front120": 1, "front60": 1, "left": 1, "right": 1, "rear": 1},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/rate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rr RateResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.CameraFPR) == 0 || len(rr.Rates) == 0 {
		t.Fatalf("empty estimates: %+v", rr)
	}
	if rr.MaxFPR <= 0 {
		t.Errorf("max FPR %g, want positive (threat ahead)", rr.MaxFPR)
	}
	if rr.Check == nil {
		t.Fatal("operating rates posted but no check in response")
	}

	// Invalid kinematics must 400, not 500.
	bad, _ := json.Marshal(RateRequest{Ego: AgentState{Speed: -5}})
	resp2, err := http.Post(ts.URL+"/v1/rate", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("negative speed: status %d, want 400", resp2.StatusCode)
	}
}

func TestScenariosEndpoint(t *testing.T) {
	ts := newTestServer(t, Options{})
	var list ScenariosResponse
	getJSON(t, ts.URL+"/v1/scenarios?tags="+scenario.TagTable1, &list)
	if len(list.Scenarios) != 9 || list.Generated {
		t.Errorf("table1 catalog: %d scenarios, generated=%v", len(list.Scenarios), list.Generated)
	}
	var corpus ScenariosResponse
	getJSON(t, ts.URL+"/v1/scenarios?corpus=5&seed=2", &corpus)
	if len(corpus.Scenarios) != 5 || !corpus.Generated || corpus.Seed != 2 {
		t.Errorf("corpus: %+v", corpus)
	}
	var corpus2 ScenariosResponse
	getJSON(t, ts.URL+"/v1/scenarios?corpus=5&seed=2", &corpus2)
	if fmt.Sprint(corpus) != fmt.Sprint(corpus2) {
		t.Error("generated corpus is not deterministic per seed")
	}
	if resp := getJSON(t, ts.URL+"/v1/scenarios?corpus=0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corpus=0: status %d, want 400", resp.StatusCode)
	}
	// Regression: an unknown family used to fall through to cut-in
	// sampling and come back mislabeled; it must be a 400 naming the
	// bogus family.
	resp, err := http.Get(ts.URL + "/v1/scenarios?corpus=3&families=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("families=bogus: status %d, want 400", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(apiErr.Error, "bogus") {
		t.Errorf("families=bogus error %q does not name the family", apiErr.Error)
	}
	// Valid family subsets still generate.
	var only ScenariosResponse
	getJSON(t, ts.URL+"/v1/scenarios?corpus=3&families=cut-out", &only)
	if len(only.Scenarios) != 3 {
		t.Errorf("families=cut-out corpus: %d scenarios, want 3", len(only.Scenarios))
	}
}

func TestStoreEndpoints(t *testing.T) {
	// Without a store, every /v1/store route is a clean 404.
	bare := newTestServer(t, Options{})
	for _, path := range []string{"/v1/store", "/v1/store/manifest", "/v1/store/peek?scenario=cut-out&fpr=30&seed=1", "/v1/store/diff"} {
		if resp := getJSON(t, bare.URL+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without store: status %d, want 404", path, resp.StatusCode)
		}
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, Options{Store: st})
	postCampaign(t, ts.URL, campaignTwoPoints())

	var sr StoreResponse
	getJSON(t, ts.URL+"/v1/store", &sr)
	if sr.Summary.Entries != 2 || sr.Summary.Scenarios != 1 || sr.Baselines {
		t.Errorf("store response %+v", sr)
	}
	var mr ManifestResponse
	getJSON(t, ts.URL+"/v1/store/manifest?scenario="+scenario.CutOut, &mr)
	if len(mr.Entries) != 2 {
		t.Errorf("manifest entries %d, want 2", len(mr.Entries))
	}
	var none ManifestResponse
	getJSON(t, ts.URL+"/v1/store/manifest?scenario=other", &none)
	if len(none.Entries) != 0 {
		t.Errorf("filtered manifest returned %d entries", len(none.Entries))
	}

	var ent store.Entry
	resp := getJSON(t, ts.URL+"/v1/store/peek?scenario="+scenario.CutOut+"&fpr=30&seed=1", &ent)
	if resp.StatusCode != http.StatusOK || ent.Scenario != scenario.CutOut {
		t.Errorf("peek: status %d entry %+v", resp.StatusCode, ent)
	}
	if resp := getJSON(t, ts.URL+"/v1/store/peek?scenario="+scenario.CutOut+"&fpr=30&seed=99", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("peek miss: status %d, want 404", resp.StatusCode)
	}

	// No baselines recorded yet: diff is a 404, not a failure.
	if resp := getJSON(t, ts.URL+"/v1/store/diff", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("diff without baselines: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestRoutesAllHandled: every descriptor in the route table resolves
// to a handler (Handler panics otherwise) and registers cleanly.
func TestRoutesAllHandled(t *testing.T) {
	s := New(Options{})
	_ = s.Handler()
	if len(Routes()) < 10 {
		t.Errorf("route table has %d routes", len(Routes()))
	}
}

// TestCampaignWithoutStoreRunsSummaryLevel pins the service's
// recording policy: with no persistent store there is nothing to
// archive, so campaign points run at summary level — the streamed
// summaries are complete (source, collision, min gap) but no per-step
// rows were ever materialized (Rows stays 0).
func TestCampaignWithoutStoreRunsSummaryLevel(t *testing.T) {
	ts := newTestServer(t, Options{})
	points, stats := postCampaign(t, ts.URL, campaignTwoPoints())
	if len(points) != 2 || stats.Executed != 2 {
		t.Fatalf("got %d points, stats %+v", len(points), stats)
	}
	for _, p := range points {
		if p.Error != "" {
			t.Errorf("point %d error %q", p.Index, p.Error)
		}
		if p.Rows != 0 {
			t.Errorf("point %d has %d rows: store-less campaigns must not materialize traces", p.Index, p.Rows)
		}
		if !p.MinGapInfinite && p.MinBumperGap == 0 && !p.Collided {
			t.Errorf("point %d summary looks empty: %+v", p.Index, p)
		}
	}
}
