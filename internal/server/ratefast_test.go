package server

// Serving-tier behavior of the pooled /v1/rate path under load: the
// admission gate must keep campaign traffic from starving rate
// requests, and /v1/stats must account every request in the latency
// histograms. Race-safe (no allocation assertions here — those live in
// ratealloc_test.go behind //go:build !race).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestRateNotStarvedByCampaign hammers POST /v1/rate from 8 workers
// while a 40-point campaign streams on the same server. Every rate
// request must complete with 200 (zero dropped or starved), the
// client-observed p99 must stay bounded, and the stats endpoint must
// have histogram-accounted every one of them.
func TestRateNotStarvedByCampaign(t *testing.T) {
	ts := newTestServer(t, Options{})

	campErr := make(chan error, 1)
	go func() {
		pts := make([]Point, 40)
		for i := range pts {
			pts[i] = Point{Scenario: scenario.CutOut, FPR: 30, Seed: int64(1000 + i)}
		}
		body, _ := json.Marshal(CampaignRequest{Points: pts})
		resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", bytes.NewReader(body))
		if err != nil {
			campErr <- err
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			campErr <- fmt.Errorf("campaign status %d", resp.StatusCode)
			return
		}
		campErr <- nil
	}()

	const workers, perWorker = 8, 30
	reqBody, _ := json.Marshal(rateHammerRequest())
	var mu sync.Mutex
	var durations []time.Duration
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				start := time.Now()
				resp, err := http.Post(ts.URL+"/v1/rate", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("rate status %d", resp.StatusCode)
					return
				}
				mu.Lock()
				durations = append(durations, time.Since(start))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("rate request dropped under campaign load: %v", err)
	}
	if err := <-campErr; err != nil {
		t.Fatalf("background campaign: %v", err)
	}

	if len(durations) != workers*perWorker {
		t.Fatalf("completed %d rate requests, want %d", len(durations), workers*perWorker)
	}
	slices.Sort(durations)
	p99 := durations[len(durations)-1-len(durations)/100]
	// Generous for race-mode shared CI runners; without the admission
	// gate a rate request can sit behind a full campaign's compute.
	if limit := 2 * time.Second; p99 > limit {
		t.Errorf("rate p99 under campaign load = %v, bound %v", p99, limit)
	}
	t.Logf("rate p99 under campaign load: %v (max %v)", p99, durations[len(durations)-1])

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Admission == nil {
		t.Fatal("stats response has no admission block")
	}
	if st.Admission.RateInFlight != 0 {
		t.Errorf("rate_in_flight %d after load, want 0", st.Admission.RateInFlight)
	}
	t.Logf("admission: %d worker yields, %.1f ms waited", st.Admission.Yields, st.Admission.WaitedMS)
	rateRow := findLatency(st.Latency, "POST /v1/rate")
	if rateRow == nil {
		t.Fatal("no POST /v1/rate latency row in /v1/stats")
	}
	if rateRow.Count != workers*perWorker {
		t.Errorf("rate histogram count %d, want %d", rateRow.Count, workers*perWorker)
	}
	if rateRow.P99US <= 0 || rateRow.MaxUS < rateRow.P50US {
		t.Errorf("rate latency row looks broken: %+v", rateRow)
	}
	if campRow := findLatency(st.Latency, "POST /v1/campaign"); campRow == nil || campRow.Count != 1 {
		t.Errorf("campaign latency row %+v, want count 1", campRow)
	}
}

func findLatency(rows []EndpointLatency, route string) *EndpointLatency {
	for i := range rows {
		if rows[i].Route == route {
			return &rows[i]
		}
	}
	return nil
}

// rateHammerRequest mirrors the loadtest driver's snapshot: a braking
// lead plus flanking traffic, with an operating point so the safety
// check runs on every request.
func rateHammerRequest() RateRequest {
	return RateRequest{
		Time: 4.2,
		Ego:  AgentState{ID: "ego", Speed: 22},
		Actors: []AgentState{
			{ID: "lead", X: 32, Speed: 17, Accel: -3},
			{ID: "left", X: 8, Y: 3.5, Speed: 24, Lane: 1},
			{ID: "right", X: 12, Y: -3.5, Speed: 15, Lane: -1},
		},
		Operating: map[string]float64{"front120": 10, "left": 5, "right": 5},
	}
}

// TestRateBinaryNegotiation: a binary-framed request must come back as
// a binary frame that decodes to exactly the JSON answer, and
// malformed frames must fail as JSON 400s, never panics.
func TestRateBinaryNegotiation(t *testing.T) {
	ts := newTestServer(t, Options{})
	req := rateHammerRequest()

	jsonBody, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/rate", "application/json", bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	var want RateResponse
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	frame, err := AppendRateRequestBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/rate", RateBinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary rate status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != RateBinaryContentType {
		t.Fatalf("binary response Content-Type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRateResponseBinary(data)
	if err != nil {
		t.Fatalf("decode binary response: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("binary response diverges from JSON:\nbinary: %+v\njson:   %+v", got, want)
	}

	// Error paths: truncated frame, bad magic, and a parameterized
	// Content-Type must all answer JSON 400s.
	for name, tc := range map[string]struct {
		ct   string
		body []byte
		code int
	}{
		"truncated":  {RateBinaryContentType, frame[:len(frame)-3], http.StatusBadRequest},
		"bad magic":  {RateBinaryContentType, append([]byte{4, 0, 0, 0}, "XXXX"...), http.StatusBadRequest},
		"empty":      {RateBinaryContentType, nil, http.StatusBadRequest},
		"with param": {RateBinaryContentType + "; charset=utf-8", frame, http.StatusOK},
	} {
		resp, err := http.Post(ts.URL+"/v1/rate", tc.ct, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.code)
		}
		if tc.code == http.StatusBadRequest {
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("%s: error body not JSON: %v", name, err)
			}
		}
		resp.Body.Close()
	}
}
