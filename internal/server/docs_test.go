package server

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAPIDocsMatchRouteTable pins docs/api.md to Routes(): every route
// must be documented under a heading of the form
//
//	### `METHOD /pattern`
//
// and every such heading must correspond to a route — the hand-written
// reference cannot gain or lose endpoints relative to the mux, which
// is built from the same table.
func TestAPIDocsMatchRouteTable(t *testing.T) {
	data, err := os.ReadFile("../../docs/api.md")
	if err != nil {
		t.Fatalf("docs/api.md must exist: %v", err)
	}
	doc := string(data)

	headingRe := regexp.MustCompile("(?m)^### `([A-Z]+) ([^`]+)`$")
	documented := make(map[string]bool)
	for _, m := range headingRe.FindAllStringSubmatch(doc, -1) {
		documented[m[1]+" "+m[2]] = true
	}

	routes := make(map[string]bool)
	for _, r := range Routes() {
		key := r.Method + " " + r.Pattern
		routes[key] = true
		if !documented[key] {
			t.Errorf("route %q is not documented in docs/api.md (want a heading ### `%s`)", key, key)
		}
		if r.Summary == "" {
			t.Errorf("route %q has an empty summary", key)
		}
	}
	for key := range documented {
		if !routes[key] {
			t.Errorf("docs/api.md documents %q, which is not in the route table", key)
		}
	}
	if len(routes) != len(Routes()) {
		t.Error("duplicate (method, pattern) pairs in the route table")
	}

	// The stream's tier vocabulary is part of the contract; the docs
	// must name all three sources.
	for _, src := range []string{"`fresh`", "`memory`", "`disk`"} {
		if !strings.Contains(doc, src) {
			t.Errorf("docs/api.md does not document the %s source tier", src)
		}
	}
}

// TestRouteSummariesPrintable: the table renders (used by docs
// tooling and the serve startup log if ever needed).
func TestRouteSummariesPrintable(t *testing.T) {
	for _, r := range Routes() {
		if s := fmt.Sprintf("%-6s %-22s %s", r.Method, r.Pattern, r.Summary); len(s) < 10 {
			t.Errorf("unprintable route %+v", r)
		}
	}
}
