package server

// Wire-contract tests for the hand-rolled /v1/rate JSON codec: golden
// bytes pinning the response encoding, a re-encode property proving
// the encoder is byte-identical to encoding/json's MarshalIndent, and
// a fuzz target proving the pooled decoder never panics and agrees
// with encoding/json on every input.

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"testing"
)

// serveRateJSON runs the pooled path directly (below net/http) and
// returns the response bytes, copied out of the scratch.
func serveRateJSON(t *testing.T, body string) []byte {
	t.Helper()
	s := New(Options{})
	sc := getRateScratch()
	defer putRateScratch(sc)
	if code, msg := s.serveRate(sc, bytes.NewReader([]byte(body)), false); code != 0 {
		t.Fatalf("serveRate: %d %s", code, msg)
	}
	return append([]byte(nil), sc.out...)
}

// TestRateResponseGoldenJSON pins the response encoding byte for byte.
// The bytes are exactly what the pre-pooled handler produced with
// json.MarshalIndent(v, "", "  ") + "\n"; any drift here is a breaking
// wire change.
func TestRateResponseGoldenJSON(t *testing.T) {
	goldenMin := "{\n  \"time\": 1.5,\n  \"camera_fpr\": {\n    \"front120\": 1,\n    \"left\": 1,\n    \"right\": 1\n  },\n  \"sum_fpr\": 3,\n  \"max_fpr\": 1,\n  \"rates\": {\n    \"front120\": 1,\n    \"left\": 1,\n    \"right\": 1\n  }\n}\n"
	if got := serveRateJSON(t, `{"time":1.5,"ego":{"id":"ego","speed":20}}`); string(got) != goldenMin {
		t.Errorf("minimal response drifted:\ngot:  %q\nwant: %q", got, goldenMin)
	}

	goldenCheck := "{\n  \"time\": 4.2,\n  \"camera_fpr\": {\n    \"front120\": 30.3030303030303,\n    \"left\": 1,\n    \"right\": 1\n  },\n  \"sum_fpr\": 32.3030303030303,\n  \"max_fpr\": 30.3030303030303,\n  \"rates\": {\n    \"front120\": 30,\n    \"left\": 1,\n    \"right\": 1\n  },\n  \"check\": {\n    \"ok\": false,\n    \"action\": \"emergency-backup\",\n    \"alarms\": [\n      {\n        \"camera\": \"front120\",\n        \"required\": 30.3030303030303,\n        \"operating\": 1\n      }\n    ]\n  }\n}\n"
	body := `{"time":4.2,"ego":{"id":"ego","speed":22},"actors":[{"id":"lead","x":32,"speed":17},{"id":"merge","x":40,"y":-3.5,"speed":13,"heading":0.12,"lat_vel":0.8,"lane":-1}],"operating":{"front120":1,"left":1,"right":1}}`
	if got := serveRateJSON(t, body); string(got) != goldenCheck {
		t.Errorf("check response drifted:\ngot:  %q\nwant: %q", got, goldenCheck)
	}
}

// TestRateResponseMatchesStdlibEncoding is the property behind the
// golden: for randomized scenes, the pooled encoder's bytes must equal
// decoding the response with encoding/json and re-encoding it with
// MarshalIndent — the encoder is bug-compatible with the stdlib, not
// merely similar.
func TestRateResponseMatchesStdlibEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		req := randomRateRequest(rng)
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		got := serveRateJSON(t, string(body))
		var rr RateResponse
		if err := json.Unmarshal(got, &rr); err != nil {
			t.Fatalf("case %d: response does not parse: %v\n%s", i, err, got)
		}
		std, err := json.MarshalIndent(rr, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		std = append(std, '\n')
		if !bytes.Equal(got, std) {
			t.Fatalf("case %d: encoder diverges from stdlib:\nfast: %q\nstd:  %q", i, got, std)
		}
	}
}

func randomRateRequest(rng *rand.Rand) RateRequest {
	req := RateRequest{
		Time: math.Round(rng.Float64()*1e4) / 1e2,
		Ego:  AgentState{ID: "ego", Speed: rng.Float64() * 35},
	}
	for i, n := 0, rng.Intn(7); i < n; i++ {
		req.Actors = append(req.Actors, AgentState{
			ID:      string(rune('a' + i)),
			X:       rng.Float64()*120 - 20,
			Y:       float64(rng.Intn(3)-1) * 3.5,
			Speed:   rng.Float64() * 35,
			Accel:   rng.Float64()*6 - 4,
			Heading: rng.Float64()*0.4 - 0.2,
			LatVel:  rng.Float64()*2 - 1,
			Lane:    rng.Intn(3) - 1,
		})
	}
	if rng.Intn(2) == 0 {
		req.Operating = map[string]float64{}
		for _, cam := range []string{"front120", "left", "right"} {
			if rng.Intn(2) == 0 {
				req.Operating[cam] = float64(rng.Intn(30) + 1)
			}
		}
		if len(req.Operating) == 0 {
			req.Operating["front120"] = 5
		}
	}
	return req
}

// TestRateDecodeBadRequests pins decoder error behavior at the HTTP
// surface: malformed bodies are 400s with JSON error bodies — exactly
// as the encoding/json-based handler answered them.
func TestRateDecodeBadRequests(t *testing.T) {
	ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"empty":           "",
		"truncated":       `{"time":`,
		"array top":       `[1,2]`,
		"bad number":      `{"time":01}`,
		"bad string":      `{"ego":{"id":"a` + "\x01" + `"}}`,
		"float lane":      `{"ego":{"lane":1.5}}`,
		"overflow lane":   `{"ego":{"lane":99999999999999999999}}`,
		"wrong type":      `{"actors":{}}`,
		"unclosed object": `{"operating":{"front120":1`,
	} {
		resp, err := http.Post(ts.URL+"/v1/rate", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// FuzzRateRequestDecode proves the pooled decoder is a drop-in for
// encoding/json: it must never panic on arbitrary bytes, must agree
// with json.Decoder on whether the input is valid, and on valid input
// must produce the identical RateRequest value.
func FuzzRateRequestDecode(f *testing.F) {
	seeds := []string{
		`{"time":1.5,"ego":{"id":"ego","speed":20}}`,
		`{"time":4.2,"ego":{"id":"e"},"actors":[{"id":"a","x":1},{"id":"b","lane":-1,"static":true}],"operating":{"front120":10}}`,
		`null`,
		`{}`,
		`{"TIME":2,"Ego":{"ID":"x"}}`,
		`{"actors":null,"operating":null}`,
		`{"actors":[{"id":"a"}],"actors":[{"x":5}]}`,
		`{"ego":{"id":"\u00e9\ud83d\ude00"},"time":1e-3}`,
		`{"unknown":{"deep":[1,{"k":null},"s"]},"time":3}`,
		`{"time":1.7976931348623157e308}`,
		`{"time":1e999}`,
		`{"time":0.1,"ego":{"lane":9223372036854775807}}`,
		` {"time":2} trailing garbage`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := newRateScratch()
		sc.reset()
		d := rateDecoder{sc: sc, data: data}
		fastErr := d.decodeRequest()

		var want RateRequest
		stdErr := json.NewDecoder(bytes.NewReader(data)).Decode(&want)
		if (fastErr == nil) != (stdErr == nil) {
			t.Fatalf("validity disagreement on %q:\nfast: %v\nstd:  %v", data, fastErr, stdErr)
		}
		if stdErr != nil {
			return
		}
		got := RateRequest{
			Time:      sc.req.Time,
			Ego:       sc.req.Ego,
			Actors:    append([]AgentState(nil), sc.req.Actors...),
			Operating: sc.req.Operating,
		}
		// encoding/json leaves never-assigned slices and maps nil where
		// the scratch holds reusable empties; the wire meaning is the
		// same.
		if len(got.Actors) == 0 {
			got.Actors = nil
		}
		if len(want.Actors) == 0 {
			want.Actors = nil
		}
		if len(got.Operating) == 0 {
			got.Operating = nil
		}
		if len(want.Operating) == 0 {
			want.Operating = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("decode disagreement on %q:\nfast: %+v\nstd:  %+v", data, got, want)
		}
	})
}
