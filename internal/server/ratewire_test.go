package server

// Binary wire-format tests: the request frame layout is pinned byte
// for byte (a wire contract, like the JSON golden), round-trips are
// lossless, and truncated or corrupt frames fail cleanly.

import (
	"encoding/hex"
	"reflect"
	"strings"
	"testing"
)

// TestRateRequestFrameGolden pins the exact frame AppendRateRequestBinary
// emits for a fixed request: length prefix, "ZYR1" magic, ego and
// actor records, and the sorted operating table. Any byte of drift is
// a breaking protocol change.
func TestRateRequestFrameGolden(t *testing.T) {
	req := RateRequest{
		Time: 4.2,
		Ego:  AgentState{ID: "ego", Speed: 22},
		Actors: []AgentState{
			{ID: "lead", X: 32, Speed: 17},
			{ID: "merge", X: 40, Y: -3.5, Speed: 13, Heading: 0.12, LatVel: 0.8, Lane: -1},
		},
		Operating: map[string]float64{"right": 1, "front120": 1, "left": 1},
	}
	const golden = "240100005a595231cdcccccccccc1040030065676f00000000000000000000000000000000000000000000000000000000" +
		"00003640000000000000000000000000000000000000000000000000000000000000000000000000000200000004006c6561" +
		"6400000000000040400000000000000000000000000000000000000000000031400000000000000000000000000000000000" +
		"000000000000000000000000000000000000000005006d6572676500000000000044400000000000000cc0b81e85eb51b8be" +
		"3f0000000000002a4000000000000000009a9999999999e93f00000000000000000000000000000000ffffffff0003000000" +
		"080066726f6e74313230000000000000f03f04006c656674000000000000f03f05007269676874000000000000f03f"
	frame, err := AppendRateRequestBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(frame); got != golden {
		t.Errorf("request frame drifted:\ngot:  %s\nwant: %s", got, golden)
	}
}

func TestRateRequestBinaryRoundTrip(t *testing.T) {
	cases := []RateRequest{
		{},
		{Time: 1.5, Ego: AgentState{ID: "ego", Speed: 20}},
		rateHammerRequest(),
		{Time: -3, Ego: AgentState{ID: "e", Lane: -2, Static: true},
			Actors:    []AgentState{{ID: strings.Repeat("x", 300), X: 1e300, Y: -1e-300}},
			Operating: map[string]float64{"": 0.5, "front120": 30}},
	}
	for i, req := range cases {
		frame, err := AppendRateRequestBinary(nil, req)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeRateRequestBinary(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want := req
		if len(want.Actors) == 0 {
			want.Actors = nil
		}
		if len(want.Operating) == 0 {
			want.Operating = nil
		}
		if len(got.Actors) == 0 {
			got.Actors = nil
		}
		if len(got.Operating) == 0 {
			got.Operating = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: round trip diverged:\ngot:  %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestRateBinaryDecodeRejects: every truncation of a valid frame must
// error (never panic, never succeed), as must corrupt counts and
// trailing bytes.
func TestRateBinaryDecodeRejects(t *testing.T) {
	frame, err := AppendRateRequestBinary(nil, rateHammerRequest())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeRateRequestBinary(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// A count field claiming more records than the frame can hold must
	// be rejected up front, not attempted.
	corrupt := append([]byte(nil), frame...)
	// Actor count sits after the length prefix, magic, time, and the
	// ego record (id length + id + fixed fields).
	off := 4 + 4 + 8 + 2 + len("ego") + agentBinarySize
	copy(corrupt[off:], []byte{0xff, 0xff, 0xff, 0x7f})
	if _, err := DecodeRateRequestBinary(corrupt); err == nil {
		t.Error("absurd actor count decoded successfully")
	}
	withTrailing := append(append([]byte(nil), frame...), 0xAA)
	if _, err := DecodeRateRequestBinary(withTrailing); err == nil {
		t.Error("trailing byte after frame decoded successfully")
	}
}
