package server

// ratejson.go is the hand-rolled JSON codec behind the pooled
// POST /v1/rate path. The decoder parses a RateRequest directly from
// the request bytes into reused scratch storage — no reflection, no
// intermediate values, actor IDs interned so repeated snapshots from
// the same fleet never allocate. It is deliberately bug-compatible
// with encoding/json's Decoder semantics (case-insensitive field
// matching, null handling, duplicate-key merging, trailing data
// ignored after a complete top-level value); FuzzRateRequestDecode
// pins the agreement. The encoder emits byte-for-byte what
// writeJSON (json.MarshalIndent + newline) produced before this path
// existed, so the response body is indistinguishable from the
// reflective one — the golden wire test pins that.

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// maxDecodeDepth mirrors encoding/json's nesting limit.
const maxDecodeDepth = 10000

// Precomputed field names for case-insensitive matching without
// converting constants per call.
var (
	keyTime      = []byte("time")
	keyEgo       = []byte("ego")
	keyActors    = []byte("actors")
	keyOperating = []byte("operating")

	keyID      = []byte("id")
	keyX       = []byte("x")
	keyY       = []byte("y")
	keyHeading = []byte("heading")
	keySpeed   = []byte("speed")
	keyAccel   = []byte("accel")
	keyLatVel  = []byte("lat_vel")
	keyLength  = []byte("length")
	keyWidth   = []byte("width")
	keyLane    = []byte("lane")
	keyStatic  = []byte("static")
)

// pow10Tab covers the exactly-representable powers of ten: the Clinger
// fast path multiplies/divides by these without rounding error.
var pow10Tab = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// rateDecoder walks one request body. Errors allocate (they leave the
// hot path); success does not, beyond first-seen ID interning.
type rateDecoder struct {
	sc    *rateScratch
	data  []byte
	pos   int
	depth int
}

func (d *rateDecoder) errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func (d *rateDecoder) skipSpace() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// peek returns the current byte, or 0 at end of input.
func (d *rateDecoder) peek() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	return d.data[d.pos]
}

func (d *rateDecoder) push() error {
	d.depth++
	if d.depth > maxDecodeDepth {
		return d.errf("exceeded max depth")
	}
	return nil
}

func (d *rateDecoder) literal(s string) error {
	if len(d.data)-d.pos < len(s) || string(d.data[d.pos:d.pos+len(s)]) != s {
		return d.errf("invalid literal at offset %d", d.pos)
	}
	d.pos += len(s)
	return nil
}

// decodeRequest parses one top-level RateRequest value into the
// scratch. Like json.Decoder.Decode, anything after a syntactically
// complete top-level value is ignored.
func (d *rateDecoder) decodeRequest() error {
	d.skipSpace()
	if d.pos >= len(d.data) {
		return io.EOF
	}
	switch c := d.data[d.pos]; c {
	case 'n':
		return d.literal("null") // null body: zero request, like json
	case '{':
	default:
		return d.errf("invalid character %q looking for request object", c)
	}
	d.pos++
	if err := d.push(); err != nil {
		return err
	}
	defer func() { d.depth-- }()
	d.skipSpace()
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	for {
		d.skipSpace()
		key, err := d.parseString()
		if err != nil {
			return err
		}
		d.skipSpace()
		if d.peek() != ':' {
			return d.errf("invalid character %q after object key", d.peek())
		}
		d.pos++
		switch {
		case bytes.EqualFold(key, keyTime):
			err = d.floatField(&d.sc.req.Time)
		case bytes.EqualFold(key, keyEgo):
			err = d.decodeAgent(&d.sc.req.Ego)
		case bytes.EqualFold(key, keyActors):
			err = d.decodeActors()
		case bytes.EqualFold(key, keyOperating):
			err = d.decodeOperating()
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
		d.skipSpace()
		switch c := d.peek(); c {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.errf("invalid character %q after object value", c)
		}
	}
}

// decodeAgent merges one JSON object into dst, mirroring
// encoding/json's struct decoding (null is a no-op, unknown fields are
// skipped, fields match case-insensitively).
func (d *rateDecoder) decodeAgent(dst *AgentState) error {
	d.skipSpace()
	switch c := d.peek(); c {
	case 'n':
		return d.literal("null")
	case '{':
	default:
		return d.errf("invalid character %q decoding agent object", c)
	}
	d.pos++
	if err := d.push(); err != nil {
		return err
	}
	defer func() { d.depth-- }()
	d.skipSpace()
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	for {
		d.skipSpace()
		key, err := d.parseString()
		if err != nil {
			return err
		}
		d.skipSpace()
		if d.peek() != ':' {
			return d.errf("invalid character %q after object key", d.peek())
		}
		d.pos++
		switch {
		case bytes.EqualFold(key, keyID):
			err = d.stringField(&dst.ID)
		case bytes.EqualFold(key, keyX):
			err = d.floatField(&dst.X)
		case bytes.EqualFold(key, keyY):
			err = d.floatField(&dst.Y)
		case bytes.EqualFold(key, keyHeading):
			err = d.floatField(&dst.Heading)
		case bytes.EqualFold(key, keySpeed):
			err = d.floatField(&dst.Speed)
		case bytes.EqualFold(key, keyAccel):
			err = d.floatField(&dst.Accel)
		case bytes.EqualFold(key, keyLatVel):
			err = d.floatField(&dst.LatVel)
		case bytes.EqualFold(key, keyLength):
			err = d.floatField(&dst.Length)
		case bytes.EqualFold(key, keyWidth):
			err = d.floatField(&dst.Width)
		case bytes.EqualFold(key, keyLane):
			err = d.intField(&dst.Lane)
		case bytes.EqualFold(key, keyStatic):
			err = d.boolField(&dst.Static)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
		d.skipSpace()
		switch c := d.peek(); c {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.errf("invalid character %q after object value", c)
		}
	}
}

// decodeActors replicates slice decoding onto the reused scratch
// slice, including encoding/json's oddities: null resets the slice;
// re-decoding (a duplicate key) merges element-wise into the existing
// backing array without zeroing. The scratch zeroes its full capacity
// between requests, so each request starts from the same all-zero
// state a fresh Unmarshal destination would.
func (d *rateDecoder) decodeActors() error {
	d.skipSpace()
	switch c := d.peek(); c {
	case 'n':
		if err := d.literal("null"); err != nil {
			return err
		}
		as := d.sc.req.Actors[:cap(d.sc.req.Actors)]
		for i := range as {
			as[i] = AgentState{}
		}
		d.sc.req.Actors = as[:0]
		return nil
	case '[':
	default:
		return d.errf("invalid character %q decoding actors array", c)
	}
	d.pos++
	if err := d.push(); err != nil {
		return err
	}
	defer func() { d.depth-- }()
	d.skipSpace()
	if d.peek() == ']' {
		d.pos++
		d.sc.req.Actors = d.sc.req.Actors[:0]
		return nil
	}
	i := 0
	for {
		if i >= len(d.sc.req.Actors) {
			if i < cap(d.sc.req.Actors) {
				// Re-expose prior backing memory, exactly as reflect
				// SetLen does inside encoding/json.
				d.sc.req.Actors = d.sc.req.Actors[:i+1]
			} else {
				d.sc.req.Actors = append(d.sc.req.Actors, AgentState{})
			}
		}
		if err := d.decodeAgent(&d.sc.req.Actors[i]); err != nil {
			return err
		}
		i++
		d.skipSpace()
		switch c := d.peek(); c {
		case ',':
			d.pos++
			d.skipSpace()
		case ']':
			d.pos++
			d.sc.req.Actors = d.sc.req.Actors[:i]
			return nil
		default:
			return d.errf("invalid character %q after array element", c)
		}
	}
}

func (d *rateDecoder) decodeOperating() error {
	d.skipSpace()
	switch c := d.peek(); c {
	case 'n':
		if err := d.literal("null"); err != nil {
			return err
		}
		clear(d.sc.req.Operating)
		return nil
	case '{':
	default:
		return d.errf("invalid character %q decoding operating map", c)
	}
	d.pos++
	if err := d.push(); err != nil {
		return err
	}
	defer func() { d.depth-- }()
	d.skipSpace()
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	for {
		d.skipSpace()
		key, err := d.parseString()
		if err != nil {
			return err
		}
		k := d.sc.intern(key)
		d.skipSpace()
		if d.peek() != ':' {
			return d.errf("invalid character %q after object key", d.peek())
		}
		d.pos++
		d.skipSpace()
		var v float64
		if d.peek() == 'n' {
			// json sets the map key to the element's zero value.
			if err := d.literal("null"); err != nil {
				return err
			}
		} else if err := d.floatField(&v); err != nil {
			return err
		}
		d.sc.req.Operating[k] = v
		d.skipSpace()
		switch c := d.peek(); c {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.errf("invalid character %q after object value", c)
		}
	}
}

// floatField decodes a JSON number (or null, a no-op) into dst.
func (d *rateDecoder) floatField(dst *float64) error {
	d.skipSpace()
	c := d.peek()
	if c == 'n' {
		return d.literal("null")
	}
	if c != '-' && (c < '0' || c > '9') {
		return d.errf("invalid character %q decoding number", c)
	}
	lit, err := d.scanNumber()
	if err != nil {
		return err
	}
	f, err := parseJSONFloat(lit)
	if err != nil {
		return err
	}
	*dst = f
	return nil
}

// intField decodes a JSON number into an int with encoding/json's
// semantics: the literal must parse as a base-10 integer (3.0 and 3e2
// are errors), range-checked against int64.
func (d *rateDecoder) intField(dst *int) error {
	d.skipSpace()
	c := d.peek()
	if c == 'n' {
		return d.literal("null")
	}
	if c != '-' && (c < '0' || c > '9') {
		return d.errf("invalid character %q decoding number", c)
	}
	lit, err := d.scanNumber()
	if err != nil {
		return err
	}
	n, err := parseJSONInt(lit)
	if err != nil {
		return err
	}
	*dst = int(n)
	return nil
}

func (d *rateDecoder) boolField(dst *bool) error {
	d.skipSpace()
	switch d.peek() {
	case 't':
		if err := d.literal("true"); err != nil {
			return err
		}
		*dst = true
		return nil
	case 'f':
		if err := d.literal("false"); err != nil {
			return err
		}
		*dst = false
		return nil
	case 'n':
		return d.literal("null")
	default:
		return d.errf("invalid character %q decoding bool", d.peek())
	}
}

// stringField decodes a JSON string (or null, a no-op) into dst,
// interning the value so the steady state never allocates.
func (d *rateDecoder) stringField(dst *string) error {
	d.skipSpace()
	c := d.peek()
	if c == 'n' {
		return d.literal("null")
	}
	if c != '"' {
		return d.errf("invalid character %q decoding string", c)
	}
	b, err := d.parseString()
	if err != nil {
		return err
	}
	*dst = d.sc.intern(b)
	return nil
}

// parseString parses the string starting at the current position and
// returns its decoded bytes — a view into the input when no escapes or
// invalid UTF-8 are present, the scratch unescape buffer otherwise.
// The result is valid only until the next parseString call.
func (d *rateDecoder) parseString() ([]byte, error) {
	if d.peek() != '"' {
		return nil, d.errf("invalid character %q looking for string", d.peek())
	}
	d.pos++
	start := d.pos
	simple := true
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		switch {
		case c == '"':
			s := d.data[start:d.pos]
			d.pos++
			if simple {
				return s, nil
			}
			return d.sc.unescape(s), nil
		case c == '\\':
			simple = false
			d.pos++
			if d.pos >= len(d.data) {
				return nil, d.errf("unexpected end of string")
			}
			switch d.data[d.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				d.pos++
			case 'u':
				d.pos++
				if len(d.data)-d.pos < 4 || !isHex4(d.data[d.pos:d.pos+4]) {
					return nil, d.errf("invalid \\u escape")
				}
				d.pos += 4
			default:
				return nil, d.errf("invalid escape character %q in string", d.data[d.pos])
			}
		case c < 0x20:
			return nil, d.errf("invalid control character %#x in string", c)
		case c < utf8.RuneSelf:
			d.pos++
		default:
			r, size := utf8.DecodeRune(d.data[d.pos:])
			if r == utf8.RuneError && size == 1 {
				simple = false // replaced with U+FFFD by unescape
			}
			d.pos += size
		}
	}
	return nil, d.errf("unexpected end of string")
}

// skipString validates a string without decoding it (escapes and
// control characters are checked; UTF-8 is not, matching the scanner).
func (d *rateDecoder) skipString() error {
	d.pos++ // opening quote, already checked by caller
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; {
		case c == '"':
			d.pos++
			return nil
		case c == '\\':
			d.pos++
			if d.pos >= len(d.data) {
				return d.errf("unexpected end of string")
			}
			switch d.data[d.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				d.pos++
			case 'u':
				d.pos++
				if len(d.data)-d.pos < 4 || !isHex4(d.data[d.pos:d.pos+4]) {
					return d.errf("invalid \\u escape")
				}
				d.pos += 4
			default:
				return d.errf("invalid escape character %q in string", d.data[d.pos])
			}
		case c < 0x20:
			return d.errf("invalid control character %#x in string", c)
		default:
			d.pos++
		}
	}
	return d.errf("unexpected end of string")
}

// skipValue validates and discards one JSON value of any shape.
// Numbers are grammar-checked but not range-checked, exactly like
// encoding/json skipping an unknown field.
func (d *rateDecoder) skipValue() error {
	d.skipSpace()
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	switch c := d.data[d.pos]; {
	case c == '"':
		return d.skipString()
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	case c == '-' || (c >= '0' && c <= '9'):
		_, err := d.scanNumber()
		return err
	case c == '{':
		d.pos++
		if err := d.push(); err != nil {
			return err
		}
		defer func() { d.depth-- }()
		d.skipSpace()
		if d.peek() == '}' {
			d.pos++
			return nil
		}
		for {
			d.skipSpace()
			if d.peek() != '"' {
				return d.errf("invalid character %q looking for object key", d.peek())
			}
			if err := d.skipString(); err != nil {
				return err
			}
			d.skipSpace()
			if d.peek() != ':' {
				return d.errf("invalid character %q after object key", d.peek())
			}
			d.pos++
			if err := d.skipValue(); err != nil {
				return err
			}
			d.skipSpace()
			switch c := d.peek(); c {
			case ',':
				d.pos++
			case '}':
				d.pos++
				return nil
			default:
				return d.errf("invalid character %q after object value", c)
			}
		}
	case c == '[':
		d.pos++
		if err := d.push(); err != nil {
			return err
		}
		defer func() { d.depth-- }()
		d.skipSpace()
		if d.peek() == ']' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			d.skipSpace()
			switch c := d.peek(); c {
			case ',':
				d.pos++
			case ']':
				d.pos++
				return nil
			default:
				return d.errf("invalid character %q after array element", c)
			}
		}
	default:
		return d.errf("invalid character %q looking for value", c)
	}
}

// scanNumber consumes one number per the JSON grammar and returns its
// literal bytes.
func (d *rateDecoder) scanNumber() ([]byte, error) {
	start := d.pos
	if d.peek() == '-' {
		d.pos++
	}
	switch c := d.peek(); {
	case c == '0':
		d.pos++
	case c >= '1' && c <= '9':
		d.pos++
		for c := d.peek(); c >= '0' && c <= '9'; c = d.peek() {
			d.pos++
		}
	default:
		return nil, d.errf("invalid character %q in number", c)
	}
	if d.peek() == '.' {
		d.pos++
		c := d.peek()
		if c < '0' || c > '9' {
			return nil, d.errf("invalid character %q after decimal point", c)
		}
		for c := d.peek(); c >= '0' && c <= '9'; c = d.peek() {
			d.pos++
		}
	}
	if c := d.peek(); c == 'e' || c == 'E' {
		d.pos++
		if c := d.peek(); c == '+' || c == '-' {
			d.pos++
		}
		c := d.peek()
		if c < '0' || c > '9' {
			return nil, d.errf("invalid character %q in exponent", c)
		}
		for c := d.peek(); c >= '0' && c <= '9'; c = d.peek() {
			d.pos++
		}
	}
	return d.data[start:d.pos], nil
}

// parseJSONFloat converts a grammar-valid JSON number literal to a
// float64 with the same rounding and range behavior as
// strconv.ParseFloat. The Clinger fast path (exact mantissa, |decimal
// exponent| ≤ 22) covers every realistic kinematic value without
// allocating; everything else falls back to ParseFloat on a copied
// string — rare, and correct by construction.
func parseJSONFloat(lit []byte) (float64, error) {
	i := 0
	neg := false
	if lit[i] == '-' {
		neg = true
		i++
	}
	var mant uint64
	nd := 0
	exp10 := 0
	afterDot := false
	truncated := false
loop:
	for ; i < len(lit); i++ {
		switch c := lit[i]; {
		case c >= '0' && c <= '9':
			if nd >= 19 {
				truncated = true
				if !afterDot {
					exp10++
				}
				continue
			}
			if c == '0' && nd == 0 {
				if afterDot {
					exp10--
				}
				continue
			}
			mant = mant*10 + uint64(c-'0')
			nd++
			if afterDot {
				exp10--
			}
		case c == '.':
			afterDot = true
		default: // 'e' or 'E'; the grammar admits nothing else here
			i++
			eneg := false
			if lit[i] == '+' {
				i++
			} else if lit[i] == '-' {
				eneg = true
				i++
			}
			e := 0
			for ; i < len(lit); i++ {
				if e < 100000 {
					e = e*10 + int(lit[i]-'0')
				}
			}
			if eneg {
				e = -e
			}
			exp10 += e
			break loop
		}
	}
	if truncated || mant >= 1<<53 || exp10 < -22 || exp10 > 22 {
		f, err := strconv.ParseFloat(string(lit), 64)
		if err != nil {
			return 0, err
		}
		return f, nil
	}
	f := float64(mant)
	if exp10 > 0 {
		f *= pow10Tab[exp10]
	} else if exp10 < 0 {
		f /= pow10Tab[-exp10]
	}
	if neg {
		f = -f
	}
	return f, nil
}

// parseJSONInt converts a grammar-valid JSON number literal with
// strconv.ParseInt semantics: fractions and exponents are errors, as
// is anything outside int64.
func parseJSONInt(lit []byte) (int64, error) {
	for _, c := range lit {
		if c == '.' || c == 'e' || c == 'E' {
			return 0, fmt.Errorf("cannot decode number %s into an integer field", lit)
		}
	}
	i := 0
	neg := false
	if lit[i] == '-' {
		neg = true
		i++
	}
	var n uint64
	for ; i < len(lit); i++ {
		d := uint64(lit[i] - '0')
		if n > (1<<63-1)/10 {
			return 0, fmt.Errorf("number %s overflows an integer field", lit)
		}
		n = n*10 + d
	}
	if neg {
		if n > 1<<63 {
			return 0, fmt.Errorf("number %s overflows an integer field", lit)
		}
		return -int64(n-1) - 1, nil
	}
	if n > 1<<63-1 {
		return 0, fmt.Errorf("number %s overflows an integer field", lit)
	}
	return int64(n), nil
}

func isHex4(b []byte) bool {
	for _, c := range b[:4] {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

func hex4(b []byte) rune {
	var r rune
	for _, c := range b[:4] {
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		default:
			r = r<<4 | rune(c-'A'+10)
		}
	}
	return r
}

// unescape decodes a scanned string body (escapes pre-validated) into
// the scratch buffer, replicating encoding/json's unquote: \uXXXX with
// UTF-16 surrogate pairing, lone surrogates and invalid UTF-8 replaced
// with U+FFFD.
func (sc *rateScratch) unescape(s []byte) []byte {
	b := sc.strbuf[:0]
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == '\\':
			i++
			switch s[i] {
			case '"', '\\', '/':
				b = append(b, s[i])
				i++
			case 'b':
				b = append(b, '\b')
				i++
			case 'f':
				b = append(b, '\f')
				i++
			case 'n':
				b = append(b, '\n')
				i++
			case 'r':
				b = append(b, '\r')
				i++
			case 't':
				b = append(b, '\t')
				i++
			case 'u':
				rr := hex4(s[i+1 : i+5])
				i += 5
				if utf16.IsSurrogate(rr) {
					rr1 := rune(-1)
					if len(s)-i >= 6 && s[i] == '\\' && s[i+1] == 'u' && isHex4(s[i+2:i+6]) {
						rr1 = hex4(s[i+2 : i+6])
					}
					if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
						i += 6
						b = utf8.AppendRune(b, dec)
						continue
					}
					rr = unicode.ReplacementChar
				}
				b = utf8.AppendRune(b, rr)
			}
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			r, size := utf8.DecodeRune(s[i:])
			if r == utf8.RuneError && size == 1 {
				b = utf8.AppendRune(b, utf8.RuneError)
				i++
				continue
			}
			b = append(b, s[i:i+size]...)
			i += size
		}
	}
	sc.strbuf = b
	return b
}

// ---------------------------------------------------------------------
// Encoder: byte-identical to json.MarshalIndent(v, "", "  ") plus the
// trailing newline writeJSON appends.

const jsonHex = "0123456789abcdef"

// appendIndent starts a new line at the given indent level.
func appendIndent(b []byte, level int) []byte {
	b = append(b, '\n')
	for i := 0; i < level; i++ {
		b = append(b, ' ', ' ')
	}
	return b
}

// appendJSONFloat appends a float with encoding/json's formatting
// (shortest round-trip form, exponent form outside [1e-6, 1e21), the
// e-0X exponent cleanup). It reports false for non-finite values,
// which JSON cannot represent — the caller falls back to the
// reflective path for the identical error response.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// appendJSONString appends a quoted string with encoding/json's
// default escaping: HTML-significant characters escaped, invalid UTF-8
// replaced, U+2028/U+2029 escaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `�`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendFloatMapIndent appends a map[string]float64 with sorted keys
// at the given indent level, reusing the scratch key slice.
func (sc *rateScratch) appendFloatMapIndent(b []byte, m map[string]float64, level int) ([]byte, bool) {
	if m == nil {
		return append(b, "null"...), true
	}
	if len(m) == 0 {
		return append(b, '{', '}'), true
	}
	sc.keys = sc.keys[:0]
	for k := range m {
		sc.keys = append(sc.keys, k)
	}
	slices.Sort(sc.keys)
	b = append(b, '{')
	ok := true
	for i, k := range sc.keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendIndent(b, level+1)
		b = appendJSONString(b, k)
		b = append(b, ':', ' ')
		b, ok = appendJSONFloat(b, m[k])
		if !ok {
			return b, false
		}
	}
	b = appendIndent(b, level)
	return append(b, '}'), true
}

// encodeJSONResponse renders the response from the scratch's computed
// state. It reports false when a non-finite float reaches the wire
// (JSON cannot carry it); the handler then falls back to writeJSON for
// the identical legacy 500.
func (sc *rateScratch) encodeJSONResponse() bool {
	b := sc.out[:0]
	ok := true
	b = append(b, "{\n  \"time\": "...)
	if b, ok = appendJSONFloat(b, sc.e.Time); !ok {
		return false
	}
	b = append(b, ",\n  \"camera_fpr\": "...)
	if b, ok = sc.appendFloatMapIndent(b, sc.e.CameraFPR, 1); !ok {
		return false
	}
	b = append(b, ",\n  \"sum_fpr\": "...)
	if b, ok = appendJSONFloat(b, sc.sumFPR); !ok {
		return false
	}
	b = append(b, ",\n  \"max_fpr\": "...)
	if b, ok = appendJSONFloat(b, sc.maxFPR); !ok {
		return false
	}
	b = append(b, ",\n  \"rates\": "...)
	if b, ok = sc.appendFloatMapIndent(b, sc.rates, 1); !ok {
		return false
	}
	if sc.hasCheck {
		b = append(b, ",\n  \"check\": {\n    \"ok\": "...)
		if sc.chk.OK {
			b = append(b, "true"...)
		} else {
			b = append(b, "false"...)
		}
		b = append(b, ",\n    \"action\": "...)
		b = appendJSONString(b, sc.chk.Action.String())
		if len(sc.chk.Alarms) > 0 {
			b = append(b, ",\n    \"alarms\": ["...)
			for i, a := range sc.chk.Alarms {
				if i > 0 {
					b = append(b, ',')
				}
				b = appendIndent(b, 3)
				b = append(b, "{\n        \"camera\": "...)
				b = appendJSONString(b, a.Camera)
				b = append(b, ",\n        \"required\": "...)
				if b, ok = appendJSONFloat(b, a.Required); !ok {
					return false
				}
				b = append(b, ",\n        \"operating\": "...)
				if b, ok = appendJSONFloat(b, a.Operating); !ok {
					return false
				}
				b = append(b, "\n      }"...)
			}
			b = append(b, "\n    ]"...)
		}
		b = append(b, "\n  }"...)
	}
	b = append(b, "\n}\n"...)
	sc.out = b
	return true
}
