package server

// POST /v1/search: the adversarial scenario search over HTTP. Like
// the campaign endpoint, the response is a flushed NDJSON stream —
// one generation summary per (family, generation) as the search
// progresses, then exactly one trailer line carrying the hardest-N
// corpus (or the error that stopped the search). The search runs on
// the service's shared engine, so a warm store answers every rescore
// from the manifest and /v1/stats proves it (executed stays 0).

import (
	"encoding/json"
	"net/http"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/search"
)

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad search request: %v", err)
		return
	}
	var fams []scenario.Family
	for _, f := range req.Families {
		fams = append(fams, scenario.Family(f))
	}
	opt := search.Options{
		Families:    fams,
		Seed:        req.Seed,
		Generations: req.Generations,
		Population:  req.Population,
		Seeds:       req.Seeds,
		TopN:        req.TopN,
		FPRGrid:     req.FPRGrid,
		Engine:      s.eng,
	}
	// Reject bad budgets and unknown families before streaming: once
	// the NDJSON flow starts, errors can only ride in the trailer.
	if err := opt.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if pts := searchPoints(req); pts > s.maxPts {
		writeError(w, http.StatusBadRequest, "search budget of %d points exceeds the %d-point limit", pts, s.maxPts)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line SearchLine) {
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	opt.Progress = func(g search.GenerationSummary) {
		emit(SearchLine{Generation: &g})
	}
	res, err := search.Search(r.Context(), opt)
	if err != nil {
		emit(SearchLine{Error: err.Error()})
		return
	}
	s.points.Add(int64(res.Runs))
	emit(SearchLine{Corpus: res})
}

// searchPoints bounds the work of a search request: the worst-case
// engine points of the resolved budget (every candidate fresh, every
// rate of the grid probed).
func searchPoints(req SearchRequest) int {
	gens, pop, seeds := req.Generations, req.Population, req.Seeds
	if gens == 0 {
		gens = search.DefaultGenerations
	}
	if pop == 0 {
		pop = search.DefaultPopulation
	}
	if seeds == 0 {
		seeds = search.DefaultSeeds
	}
	nfam := len(req.Families)
	if nfam == 0 {
		nfam = len(scenario.Families())
	}
	grid := len(req.FPRGrid)
	if grid == 0 {
		grid = len(metrics.DefaultFPRGrid())
	}
	return nfam * gens * pop * seeds * grid
}
