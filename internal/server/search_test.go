package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"hash/fnv"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/trace"
)

// searchFakeRunner mirrors the search package's deterministic fake:
// collision thresholds keyed on the scenario name, no simulation.
func searchFakeRunner(j engine.Job) (*sim.Result, error) {
	grid := metrics.DefaultFPRGrid()
	h := fnv.New64a()
	h.Write([]byte(j.Scenario.Name))
	idx := int(h.Sum64() % uint64(len(grid)+2))
	res := &sim.Result{Level: trace.LevelSummary, MinBumperGap: 3}
	if idx == len(grid)+1 || (idx < len(grid) && j.FPR < grid[idx]) {
		res.Collision = &trace.Collision{Time: 1, ActorID: "fake"}
	}
	return res, nil
}

func searchTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4, Runner: searchFakeRunner})
	t.Cleanup(eng.Close)
	return eng
}

func postSearch(t *testing.T, base string, req SearchRequest) ([]search.GenerationSummary, *search.Result) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var gens []search.GenerationSummary
	var corpus *search.Result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var line SearchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Generation != nil:
			if corpus != nil {
				t.Fatal("generation line after the corpus trailer")
			}
			gens = append(gens, *line.Generation)
		case line.Corpus != nil:
			if corpus != nil {
				t.Fatal("two corpus trailers")
			}
			corpus = line.Corpus
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if corpus == nil {
		t.Fatal("stream ended without a corpus trailer")
	}
	return gens, corpus
}

// TestSearchEndpointMatchesLibrary: the HTTP stream reproduces exactly
// what the search library produces for the same budget.
func TestSearchEndpointMatchesLibrary(t *testing.T) {
	ts := newTestServer(t, Options{Engine: searchTestEngine(t)})
	req := SearchRequest{
		Families:    []string{string(scenario.FamilyCutInChain), string(scenario.FamilyCrossing)},
		Seed:        13,
		Generations: 2,
		Population:  4,
		Seeds:       2,
		TopN:        5,
	}
	gens, corpus := postSearch(t, ts.URL, req)
	if len(gens) != 4 {
		t.Fatalf("got %d generation lines, want 4", len(gens))
	}
	if len(corpus.Corpus) != 5 {
		t.Fatalf("corpus has %d candidates, want 5", len(corpus.Corpus))
	}

	direct, err := search.Search(context.Background(), search.Options{
		Families:    []scenario.Family{scenario.FamilyCutInChain, scenario.FamilyCrossing},
		Seed:        13,
		Generations: 2,
		Population:  4,
		Seeds:       2,
		TopN:        5,
		Engine:      searchTestEngine(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(corpus, direct) {
		t.Fatal("HTTP corpus differs from the library's for the same budget")
	}
}

// TestSearchEndpointRejectsBadRequests: malformed budgets fail with
// 400 before any streaming starts.
func TestSearchEndpointRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Options{Engine: searchTestEngine(t), MaxCampaignPoints: 50})
	for name, req := range map[string]SearchRequest{
		"negative generations": {Generations: -1},
		"negative population":  {Population: -4},
		"negative seeds":       {Seeds: -1},
		"negative top":         {TopN: -1},
		"unknown family":       {Families: []string{"no-such-family"}},
		"bad grid":             {FPRGrid: []float64{0}},
		"over budget":          {Generations: 10, Population: 100, Seeds: 10},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}
