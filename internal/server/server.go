// Package server is the network-facing campaign service: an HTTP API
// exposing the whole stack — batched campaigns, MRF searches, the §3.2
// online rate estimate, the scenario registry and generator, and the
// persistent store — behind one shared engine.Engine, so concurrent
// identical requests coalesce (singleflight), repeated points answer
// from the memory cache, and archived points answer from the store's
// disk tier without simulating. GET /v1/stats surfaces the
// fresh/memory/disk counters as evidence.
//
// This is the deployment shape the paper argues for: runtime
// rate/latency estimation as a queryable service that a fleet asks
// continuously, not a batch CLI. The `zhuyi serve` subcommand wires it
// to a listener with graceful drain; zhuyi.Client is the typed Go
// client. The endpoint reference lives in docs/api.md and is pinned to
// Routes() by test; the layer diagram placing this package between the
// engine/store tier and the CLIs/facade is in ARCHITECTURE.md.
//
// POST /v1/campaign streams NDJSON: one CampaignLine per point in
// completion order (the engine's RunBatchFunc hook), then a stats
// trailer — a client sees early points while late ones still simulate.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/internal/world"
)

// maxRequestBytes bounds request bodies; a campaign request is a list
// of points, so even huge campaigns fit comfortably.
const maxRequestBytes = 8 << 20

// defaultMaxCampaignPoints caps points per campaign request.
const defaultMaxCampaignPoints = 100_000

// Options configures a Server.
type Options struct {
	// Engine is the shared run engine every query routes through. nil
	// builds a private engine from Workers and Store; when non-nil,
	// Workers is ignored and the store tier is the engine's own.
	Engine *engine.Engine
	// Workers sizes the built engine's pool (0 = GOMAXPROCS). Ignored
	// when Engine is set.
	Workers int
	// Store attaches the persistent tier to the built engine and backs
	// the /v1/store endpoints. Ignored when Engine is set (the engine's
	// attached store is used instead).
	Store *store.Store
	// Registry resolves scenario names; nil uses scenario.Default().
	Registry *scenario.Registry
	// MaxCampaignPoints caps points per campaign request (0 = 100000).
	MaxCampaignPoints int
	// Admission is the priority gate bracketing /v1/rate requests. nil
	// builds a private gate; when the engine is also built privately the
	// gate is shared with it, so campaign workers yield to rate traffic.
	// Callers that pass their own Engine should pass the same gate to
	// both (as `zhuyi serve` does) for admission to take effect.
	Admission *admission.Gate
	// Latency overrides the per-route latency histogram set; nil builds
	// a private one. A fabric coordinator shares its set with its inner
	// server so both layers' locally answered requests merge.
	Latency *LatencySet
}

// Server is the campaign service. Construct with New; serve its
// Handler with net/http. A Server is safe for concurrent use — all run
// fan-out goes through one engine, which is the point.
type Server struct {
	eng       *engine.Engine
	st        *store.Store
	reg       *scenario.Registry
	maxPts    int
	gate      *admission.Gate
	lat       *LatencySet
	rateHist  *hist.Histogram // the rate route's histogram, cached
	requests  atomic.Int64
	campaigns atomic.Int64
	points    atomic.Int64
}

// New builds a Server over one shared engine. A privately built engine
// records at summary level: every response on this API carries run
// summaries, never traces, so per-step rows would be materialized only
// to be discarded — except for store-archived points, which the engine
// upgrades to full so the persistent tier stays complete. Callers that
// pass their own Engine keep its recording policy.
func New(opts Options) *Server {
	gate := opts.Admission
	if gate == nil {
		gate = admission.NewGate(0)
	}
	eng := opts.Engine
	st := opts.Store
	if eng == nil {
		eng = engine.New(engine.Options{Workers: opts.Workers, Store: st, Record: trace.LevelSummary, Admission: gate})
	} else {
		st = eng.Store()
	}
	reg := opts.Registry
	if reg == nil {
		reg = scenario.Default()
	}
	maxPts := opts.MaxCampaignPoints
	if maxPts <= 0 {
		maxPts = defaultMaxCampaignPoints
	}
	lat := opts.Latency
	if lat == nil {
		lat = NewLatencySet()
	}
	return &Server{
		eng: eng, st: st, reg: reg, maxPts: maxPts,
		gate: gate, lat: lat, rateHist: lat.Histogram("POST /v1/rate"),
	}
}

// Engine returns the server's shared engine (the `zhuyi serve` stats
// line reads it on shutdown).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the service's HTTP handler, built from Routes().
// Every route records into its latency histogram; the rate path
// records itself (with a pooled shard hint) instead of going through
// the generic wrapper.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range Routes() {
		h, ok := s.handlerFor(r)
		if !ok {
			panic(fmt.Sprintf("server: route %s %s has no handler", r.Method, r.Pattern))
		}
		key := r.Method + " " + r.Pattern
		if key != "POST /v1/rate" {
			h = s.lat.Timed(key, h)
		}
		mux.HandleFunc(key, h)
	}
	return s.counting(mux)
}

// handlerFor maps a route descriptor to its handler. Every entry of
// Routes() must resolve; Handler panics at construction otherwise, so
// a table/handler mismatch cannot ship.
func (s *Server) handlerFor(r Route) (http.HandlerFunc, bool) {
	switch r.Pattern {
	case "/healthz":
		return s.handleHealthz, true
	case "/v1/campaign":
		return s.handleCampaign, true
	case "/v1/mrf/{scenario}":
		return s.handleMRF, true
	case "/v1/rate":
		return s.handleRate, true
	case "/v1/scenarios":
		return s.handleScenarios, true
	case "/v1/search":
		return s.handleSearch, true
	case "/v1/stats":
		return s.handleStats, true
	case "/v1/store":
		return s.handleStore, true
	case "/v1/store/manifest":
		return s.handleStoreManifest, true
	case "/v1/store/peek":
		return s.handleStorePeek, true
	case "/v1/store/diff":
		return s.handleStoreDiff, true
	}
	return nil, false
}

// counting wraps the mux with the request counter.
func (s *Server) counting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
		next.ServeHTTP(w, r)
	})
}

// writeJSON marshals before writing any header, so an encoding failure
// (e.g. a non-finite float reaching a wire type) surfaces as a 500
// instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\": %q}\n", "response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleCampaign is the tentpole endpoint: a batch of points streamed
// back as NDJSON, one line per point in completion order, then a stats
// trailer. Unknown scenarios fail the whole request up front (400) —
// nothing has been scheduled yet at that point. Run failures do not:
// the stream is already flowing, so they ride in per-point Error
// fields and the trailer's Error summary.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad campaign request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "campaign has no points")
		return
	}
	if len(req.Points) > s.maxPts {
		writeError(w, http.StatusBadRequest, "campaign has %d points (limit %d)", len(req.Points), s.maxPts)
		return
	}
	jobs := make([]engine.Job, len(req.Points))
	for i, pt := range req.Points {
		sc, ok := s.reg.Lookup(pt.Scenario)
		if !ok {
			writeError(w, http.StatusBadRequest, "point %d: unknown scenario %q (GET /v1/scenarios)", i, pt.Scenario)
			return
		}
		if pt.FPR <= 0 {
			writeError(w, http.StatusBadRequest, "point %d: non-positive fpr %g", i, pt.FPR)
			return
		}
		jobs[i] = engine.Job{Scenario: sc, FPR: pt.FPR, Seed: pt.Seed}
	}
	s.campaigns.Add(1)
	s.points.Add(int64(len(jobs)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line CampaignLine) {
		_ = enc.Encode(line) // Encode appends the newline NDJSON needs
		if flusher != nil {
			flusher.Flush()
		}
	}
	batch, err := s.eng.RunBatchFunc(r.Context(), jobs, func(i int, o engine.Outcome) {
		pr := outcomeToPointResult(i, o)
		emit(CampaignLine{Point: &pr})
	})
	trailer := CampaignLine{}
	if batch != nil {
		st := statsToWire(batch.Stats)
		trailer.Stats = &st
	}
	if err != nil {
		trailer.Error = err.Error()
	}
	emit(trailer)
}

func (s *Server) handleMRF(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("scenario")
	sc, ok := s.reg.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q (GET /v1/scenarios)", name)
		return
	}
	seeds, fprs, err := ParseMRFQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// One cheap GET must not schedule unbounded work on the shared
	// engine: the search costs at most seeds x len(grid) points, capped
	// by the same limit as a campaign request.
	if seeds*len(fprs) > s.maxPts {
		writeError(w, http.StatusBadRequest, "mrf search of %d seeds x %d rates exceeds the %d-point limit", seeds, len(fprs), s.maxPts)
		return
	}
	m, err := metrics.FindMRFContext(r.Context(), s.eng, sc, fprs, seeds)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "mrf %s: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, MRFResponseFor(m, fprs))
}

// ParseMRFQuery parses the seeds/fprs query parameters of
// GET /v1/mrf/{scenario}, defaulting to 10 seeds on the default FPR
// grid. The fabric coordinator parses with the same function before
// deciding whether the shared manifest can answer, so worker and
// coordinator cannot disagree about the searched grid.
func ParseMRFQuery(q url.Values) (seeds int, fprs []float64, err error) {
	seeds = 10
	if v := q.Get("seeds"); v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n <= 0 {
			return 0, nil, fmt.Errorf("bad seeds %q", v)
		}
		seeds = n
	}
	fprs = metrics.DefaultFPRGrid()
	if v := q.Get("fprs"); v != "" {
		parsed, perr := parseFloats(v)
		if perr != nil {
			return 0, nil, fmt.Errorf("bad fprs %q: %v", v, perr)
		}
		// The MRF search walks the grid descending from the last element
		// and reads fprs[i+1] as "the next-higher rate", so it requires
		// an ascending, duplicate-free grid; normalize user input.
		sort.Float64s(parsed)
		fprs = slices.Compact(parsed)
	}
	return seeds, fprs, nil
}

// MRFResponseFor shapes a completed MRF search into its wire form over
// the searched grid (shared with the fabric coordinator's warm path).
func MRFResponseFor(m metrics.MRF, fprs []float64) MRFResponse {
	resp := MRFResponse{Scenario: m.Scenario, MRF: m.Value, BelowGrid: m.BelowGrid(), Seeds: m.Seeds, Runs: m.Runs}
	if math.IsInf(m.Value, 1) {
		// "Unsafe at every tested rate" is not representable in JSON as
		// +Inf; flag it instead (the mirror of below_grid).
		resp.MRF, resp.AboveGrid = 0, true
	}
	for _, f := range fprs {
		if n, ok := m.Collisions[f]; ok {
			resp.Grid = append(resp.Grid, RatePoint{FPR: f, Collisions: n})
		}
	}
	return resp
}

// agentFromWire lowers a wire AgentState to a world.Agent, defaulting
// the footprint to the passenger-car preset.
func agentFromWire(a AgentState) world.Agent {
	car := vehicle.Car()
	if a.Length <= 0 {
		a.Length = car.Length
	}
	if a.Width <= 0 {
		a.Width = car.Width
	}
	return world.Agent{
		ID:     a.ID,
		Pose:   geomPose(a.X, a.Y, a.Heading),
		Speed:  a.Speed,
		Accel:  a.Accel,
		LatVel: a.LatVel,
		Length: a.Length,
		Width:  a.Width,
		Lane:   a.Lane,
		Static: a.Static,
	}
}

// handleRate is the pooled serving path: one borrowed scratch carries
// the request from raw bytes to encoded response with no per-request
// allocation on the hot path (see ratefast.go). The admission gate is
// held for the full decode-compute-encode span so campaign workers
// yield while this request runs; latency is self-recorded with the
// scratch's stable shard hint.
func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sc := getRateScratch()
	binary := isBinaryRate(r.Header.Get("Content-Type"))
	s.gate.Enter()
	code, msg := s.serveRate(sc, r.Body, binary)
	s.gate.Leave()
	switch code {
	case 0:
		ct := "application/json"
		if binary {
			ct = RateBinaryContentType
		}
		w.Header().Set("Content-Type", ct)
		w.WriteHeader(http.StatusOK)
		w.Write(sc.out)
	case rateStatusFallback:
		// A non-finite float reached the JSON wire: reproduce the
		// legacy writeJSON behavior exactly (a 500 from MarshalIndent).
		writeJSON(w, http.StatusOK, sc.fallbackResponse())
	default:
		writeError(w, code, "%s", msg)
	}
	if s.rateHist != nil {
		s.rateHist.ObserveShard(time.Since(start), sc.shard)
	}
	putRateScratch(sc)
}

// isBinaryRate reports whether a Content-Type selects the binary rate
// wire format.
func isBinaryRate(ct string) bool {
	return ct == RateBinaryContentType || strings.HasPrefix(ct, RateBinaryContentType+";")
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if v := q.Get("corpus"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 10_000 {
			writeError(w, http.StatusBadRequest, "bad corpus size %q (1..10000)", v)
			return
		}
		var seed int64 = 1
		if sv := q.Get("seed"); sv != "" {
			seed, err = strconv.ParseInt(sv, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad seed %q", sv)
				return
			}
		}
		var fams []scenario.Family
		for _, f := range splitComma(q.Get("families")) {
			fams = append(fams, scenario.Family(f))
		}
		opt := scenario.GenOptions{Seed: seed, Families: fams}
		if err := opt.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		specs := scenario.NewGenerator(opt).Generate(n)
		resp := ScenariosResponse{Generated: true, Seed: seed}
		for _, sp := range specs {
			resp.Scenarios = append(resp.Scenarios, scenario.InfoOf(sp))
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, ScenariosResponse{Scenarios: s.reg.Catalog(splitComma(q.Get("tags"))...)})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.eng.Stats()
	resp := StatsResponse{
		Workers: s.eng.Workers(),
		Engine:  EngineStatsToWire(es),
		Server: ServerStats{
			Requests:       s.requests.Load(),
			Campaigns:      s.campaigns.Load(),
			CampaignPoints: s.points.Load(),
		},
	}
	if s.st != nil {
		sum := s.st.Summarize()
		resp.Store = &sum
	}
	resp.Latency = s.lat.Snapshot()
	yields, waited := s.gate.Stats()
	resp.Admission = &AdmissionStats{
		RateInFlight: s.gate.Active(),
		Yields:       yields,
		WaitedMS:     float64(waited) / 1e6,
	}
	writeJSON(w, http.StatusOK, resp)
}

// requireStore answers nil when no persistent store is attached.
func (s *Server) requireStore(w http.ResponseWriter) *store.Store {
	if s.st == nil {
		writeError(w, http.StatusNotFound, "no persistent store attached (start with `zhuyi serve -store DIR`)")
		return nil
	}
	return s.st
}

func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	_, err := os.Stat(replay.BaselinePath(st))
	writeJSON(w, http.StatusOK, StoreResponse{Dir: st.Dir(), Summary: st.Summarize(), Baselines: err == nil})
}

func (s *Server) handleStoreManifest(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	name := r.URL.Query().Get("scenario")
	entries := st.Entries()
	if name != "" {
		filtered := entries[:0]
		for _, e := range entries {
			if e.Scenario == name {
				filtered = append(filtered, e)
			}
		}
		entries = filtered
	}
	writeJSON(w, http.StatusOK, ManifestResponse{Entries: entries})
}

func (s *Server) handleStorePeek(w http.ResponseWriter, r *http.Request) {
	if s.requireStore(w) == nil {
		return
	}
	q := r.URL.Query()
	name := q.Get("scenario")
	sc, ok := s.reg.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario %q", name)
		return
	}
	fpr, err := strconv.ParseFloat(q.Get("fpr"), 64)
	if err != nil || fpr <= 0 {
		writeError(w, http.StatusBadRequest, "bad fpr %q", q.Get("fpr"))
		return
	}
	seed, err := strconv.ParseInt(q.Get("seed"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seed %q", q.Get("seed"))
		return
	}
	ent, ok := s.eng.Peek(engine.Job{Scenario: sc, FPR: fpr, Seed: seed})
	if !ok {
		writeError(w, http.StatusNotFound, "point not archived: %s fpr %g seed %d", name, fpr, seed)
		return
	}
	writeJSON(w, http.StatusOK, ent)
}

func (s *Server) handleStoreDiff(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	base, err := replay.LoadBaselines(st)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, "no baselines in %s (run `zhuyi record` first)", st.Dir())
			return
		}
		writeError(w, http.StatusInternalServerError, "baselines: %v", err)
		return
	}
	rep, err := replay.Run(r.Context(), st, replay.Options{})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "replay: %v", err)
		return
	}
	divs := replay.Diff(base, rep.Summaries)
	resp := DiffResponse{Runs: len(rep.Summaries), Baselines: len(base), Clean: len(divs) == 0}
	for _, d := range divs {
		resp.Divergences = append(resp.Divergences, d.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

func geomPose(x, y, heading float64) geom.Pose {
	return geom.Pose{Pos: geom.Vec2{X: x, Y: y}, Heading: heading}
}

// splitComma parses a comma-separated flag value, trimming whitespace
// and dropping empty items.
func splitComma(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// parseFloats parses a comma-separated positive rate list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, item := range splitComma(s) {
		f, err := strconv.ParseFloat(item, 64)
		if err != nil || f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("bad rate %q", item)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty rate list")
	}
	return out, nil
}
