package server

// ratefast.go is the pooled zero-allocation serving path behind
// POST /v1/rate. Each request borrows a rateScratch from a sync.Pool:
// the body buffer, decoded request, estimator scratch, controller, and
// response buffer all live in it and are reused across requests, so a
// steady-state rate request performs no heap allocation at all on the
// binary wire format and stays within a small fixed budget on JSON
// (both pinned by TestRateServeAllocBudget and gated in CI via
// BENCH_serve.json). The scratch also carries a stable histogram shard
// hint, so latency self-recording never contends across pooled
// requests. Admission priority (internal/admission) brackets the
// compute; the engine's campaign workers yield while any rate request
// is in flight.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/predict"
	"repro/internal/safety"
	"repro/internal/sensor"
	"repro/internal/world"
)

// maxInternEntries bounds the per-scratch ID intern table; a table
// that outgrows it (an adversarial stream of unique IDs) is dropped
// and rebuilt rather than growing without bound.
const maxInternEntries = 4096

// rateStatusFallback signals the handler to re-encode through the
// reflective writeJSON path: a non-finite float reached the wire and
// the legacy behavior (a 500 from MarshalIndent) must be preserved.
const rateStatusFallback = -1

// rateWireReq is the decoded RateRequest in scratch form. Actors keeps
// its backing array across requests (zeroed between them) and
// Operating is cleared, not reallocated.
type rateWireReq struct {
	Time      float64
	Ego       AgentState
	Actors    []AgentState
	Operating map[string]float64
}

// rateScratch is the per-request working set of the pooled path.
type rateScratch struct {
	body   []byte // request body, read fully before decoding
	out    []byte // encoded response
	strbuf []byte // string unescape scratch

	// ids interns agent IDs and operating-map keys: a fleet posting
	// the same snapshot shape allocates each distinct string once per
	// pooled scratch, ever.
	ids map[string]string

	req     rateWireReq
	actorsW []world.Agent // lowered world-model actors

	est  *core.Estimator
	pred predict.Predictor // pre-boxed: converting per call allocates
	cfg  safety.ControllerConfig
	l0   float64
	ctrl *safety.Controller
	esc  core.EstimateScratch

	// Computed per request, consumed by the encoders.
	e        core.Estimate
	rates    map[string]float64
	sumFPR   float64
	maxFPR   float64
	hasCheck bool
	chk      safety.CheckResult

	analyzed []string // sensor.AnalyzedCameras(), cached
	keys     []string // sorted map keys scratch for encoding

	// shard is this scratch's stable histogram shard hint: pooled
	// scratches spread across shards once and stay there, avoiding
	// both rotor contention and cross-scratch false sharing.
	shard uint32
}

var rateShardRotor atomic.Uint32

var rateScratchPool = sync.Pool{New: func() any { return newRateScratch() }}

func newRateScratch() *rateScratch {
	est := core.NewEstimator()
	cfg := safety.DefaultControllerConfig()
	var pred predict.Predictor = predict.MultiHypothesis{Horizon: est.Params.Horizon, Dt: 0.1}
	sc := &rateScratch{
		body:     make([]byte, 0, 4096),
		out:      make([]byte, 0, 1024),
		ids:      make(map[string]string, 64),
		est:      est,
		pred:     pred,
		cfg:      cfg,
		l0:       1 / cfg.MaxFPR,
		ctrl:     safety.NewController(est, pred, cfg),
		analyzed: sensor.AnalyzedCameras(),
		shard:    rateShardRotor.Add(1) % hist.NumShards,
	}
	sc.req.Operating = make(map[string]float64, 8)
	return sc
}

func getRateScratch() *rateScratch   { return rateScratchPool.Get().(*rateScratch) }
func putRateScratch(sc *rateScratch) { rateScratchPool.Put(sc) }

// reset restores the decode destination to the all-zero state a fresh
// json.Unmarshal target would have. The actor backing array is zeroed
// through its full capacity so the duplicate-key merge semantics the
// decoder replicates start from clean memory.
func (sc *rateScratch) reset() {
	sc.req.Time = 0
	sc.req.Ego = AgentState{}
	as := sc.req.Actors[:cap(sc.req.Actors)]
	for i := range as {
		as[i] = AgentState{}
	}
	sc.req.Actors = as[:0]
	clear(sc.req.Operating)
	if len(sc.ids) > maxInternEntries {
		clear(sc.ids)
	}
}

// intern returns the canonical string for b, allocating only the first
// time a given ID or key is seen by this scratch.
func (sc *rateScratch) intern(b []byte) string {
	if s, ok := sc.ids[string(b)]; ok { // compiler-optimized, no alloc
		return s
	}
	s := string(b)
	sc.ids[s] = s
	return s
}

// readBody drains r into the reused body buffer.
func (sc *rateScratch) readBody(r io.Reader) error {
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := r.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// serveRate runs the pooled path end to end: read, decode (JSON or
// binary per Content-Type), validate, compute, encode. On success it
// returns (0, "") with the response encoded in sc.out; otherwise the
// HTTP status and message for writeError, or rateStatusFallback.
// Validation order and error messages match the pre-pooled handler
// exactly. Error paths may allocate — they are off the hot path.
func (s *Server) serveRate(sc *rateScratch, body io.Reader, binary bool) (int, string) {
	sc.reset()
	if err := sc.readBody(body); err != nil {
		return 400, "bad rate request: " + err.Error()
	}
	if binary {
		if err := sc.decodeBinaryRequest(); err != nil {
			return 400, "bad rate request: " + err.Error()
		}
	} else {
		d := rateDecoder{sc: sc, data: sc.body}
		if err := d.decodeRequest(); err != nil {
			return 400, "bad rate request: " + err.Error()
		}
	}

	if sc.req.Ego.ID == "" {
		sc.req.Ego.ID = world.EgoID
	}
	ego := agentFromWire(sc.req.Ego)
	sc.actorsW = sc.actorsW[:0]
	for i := range sc.req.Actors {
		if sc.req.Actors[i].ID == "" {
			return 400, fmt.Sprintf("actor %d: missing id", i)
		}
		sc.actorsW = append(sc.actorsW, agentFromWire(sc.req.Actors[i]))
	}
	if err := ego.Validate(); err != nil {
		return 400, "ego: " + err.Error()
	}
	for i := range sc.actorsW {
		if err := sc.actorsW[i].Validate(); err != nil {
			return 400, err.Error()
		}
	}

	// Same semantics as a fresh estimator + controller per request
	// (the endpoint is stateless); Reset clears the hysteresis state
	// while keeping capacity.
	sc.est.EstimateOnlineInto(&sc.e, &sc.esc, sc.req.Time, ego, sc.actorsW, sc.pred, sc.l0)
	sc.ctrl.Reset()
	sc.rates = sc.ctrl.RatesFromEstimateReuse(sc.req.Time, ego, sc.actorsW, sc.e)
	sc.sumFPR = sc.e.SumFPR(sc.analyzed)
	sc.maxFPR = sc.e.MaxFPR(sc.analyzed)
	sc.hasCheck = len(sc.req.Operating) > 0
	if sc.hasCheck {
		safety.CheckInto(&sc.chk, sc.e, sc.req.Operating)
	}

	if binary {
		sc.encodeBinaryResponse()
		return 0, ""
	}
	if !sc.encodeJSONResponse() {
		return rateStatusFallback, ""
	}
	return 0, ""
}

// fallbackResponse rebuilds the wire response allocating freely; only
// the non-finite-float fallback uses it, to reproduce the exact legacy
// writeJSON behavior (a 500 from MarshalIndent).
func (sc *rateScratch) fallbackResponse() RateResponse {
	resp := RateResponse{
		Time:      sc.e.Time,
		CameraFPR: sc.e.CameraFPR,
		SumFPR:    sc.sumFPR,
		MaxFPR:    sc.maxFPR,
		Rates:     sc.rates,
	}
	if sc.hasCheck {
		rc := RateCheck{OK: sc.chk.OK, Action: sc.chk.Action.String()}
		for _, a := range sc.chk.Alarms {
			rc.Alarms = append(rc.Alarms, RateAlarm{Camera: a.Camera, Required: a.Required, Operating: a.Operating})
		}
		resp.Check = &rc
	}
	return resp
}
