package server

import (
	"math"

	"repro/internal/engine"
	"repro/internal/scenario"
	"repro/internal/search"
	"repro/internal/store"
)

// This file is the service's wire contract: the JSON types every
// endpoint consumes and produces, plus the route table the handler mux
// and docs/api.md are both built from. zhuyi.Client speaks exactly
// these types; changing a field here is an API change and must be
// reflected in docs/api.md (the route-table test pins the endpoint
// list, the client round-trip tests pin the shapes).

// Point names one seeded closed-loop run, mirroring the facade's
// CampaignPoint.
type Point struct {
	Scenario string  `json:"scenario"`
	FPR      float64 `json:"fpr"`
	Seed     int64   `json:"seed"`
}

// CampaignRequest is the body of POST /v1/campaign.
type CampaignRequest struct {
	Points []Point `json:"points"`
}

// PointResult is the streamed outcome of one campaign point: the run
// summary (never the full trace — traces stay server-side; fetch them
// through the store endpoints if archived) plus the tier that answered
// ("fresh", "memory", or "disk").
type PointResult struct {
	Index    int     `json:"index"` // submission index within the request
	Scenario string  `json:"scenario"`
	FPR      float64 `json:"fpr"`
	Seed     int64   `json:"seed"`
	Source   string  `json:"source"`
	Error    string  `json:"error,omitempty"`

	Collided        bool           `json:"collided"`
	CollisionTime   float64        `json:"collision_time,omitempty"`
	CollisionActor  string         `json:"collision_actor,omitempty"`
	MinBumperGap    float64        `json:"min_bumper_gap"`
	MinGapInfinite  bool           `json:"min_gap_infinite,omitempty"`
	EgoStopped      bool           `json:"ego_stopped,omitempty"`
	Rows            int            `json:"rows,omitempty"`
	FramesProcessed map[string]int `json:"frames_processed,omitempty"`
}

// CampaignStats mirrors engine.CampaignStats over the wire.
type CampaignStats struct {
	Jobs      int     `json:"jobs"`
	Executed  int     `json:"executed"`
	CacheHits int     `json:"cache_hits"`
	DiskHits  int     `json:"disk_hits"`
	Failures  int     `json:"failures"`
	Skipped   int     `json:"skipped"`
	WallMS    float64 `json:"wall_ms"`
}

// CampaignLine is one NDJSON line of the POST /v1/campaign response
// stream: per-point lines carry Point, the final line carries Stats
// (and Error when any run failed). Exactly one of Point/Stats is set.
type CampaignLine struct {
	Point *PointResult   `json:"point,omitempty"`
	Stats *CampaignStats `json:"stats,omitempty"`
	Error string         `json:"error,omitempty"`
}

// SearchRequest is the body of POST /v1/search: the budget of an
// adversarial scenario search (see internal/search). Zero fields take
// the search defaults; the resolved budget must fit the server's
// campaign point limit.
type SearchRequest struct {
	// Families restricts the search (default: every spec family).
	Families []string `json:"families,omitempty"`
	// Seed makes the search reproducible: the same request body always
	// streams the same generations and corpus.
	Seed int64 `json:"seed"`
	// Generations and Population set the per-family budget.
	Generations int `json:"generations,omitempty"`
	Population  int `json:"population,omitempty"`
	// Seeds is the number of simulation seeds per MRF evaluation.
	Seeds int `json:"seeds,omitempty"`
	// TopN trims the returned corpus to the hardest N candidates.
	TopN int `json:"top_n,omitempty"`
	// FPRGrid overrides the Table-1 candidate rate grid.
	FPRGrid []float64 `json:"fpr_grid,omitempty"`
}

// SearchLine is one NDJSON line of the POST /v1/search stream: a
// generation summary while the search runs, then exactly one corpus
// (or error) trailer.
type SearchLine struct {
	Generation *search.GenerationSummary `json:"generation,omitempty"`
	Corpus     *search.Result            `json:"corpus,omitempty"`
	Error      string                    `json:"error,omitempty"`
}

// RatePoint is one tested rate of an MRF search.
type RatePoint struct {
	FPR        float64 `json:"fpr"`
	Collisions int     `json:"collisions"`
}

// MRFResponse is the body of GET /v1/mrf/{scenario}.
type MRFResponse struct {
	Scenario string `json:"scenario"`
	// MRF is the minimum required FPR; 0 with BelowGrid set encodes
	// "safe at every tested rate" (the paper's "<1"), 0 with AboveGrid
	// set encodes "collided even at the highest tested rate" (+Inf is
	// not representable in JSON).
	MRF       float64     `json:"mrf"`
	BelowGrid bool        `json:"below_grid"`
	AboveGrid bool        `json:"above_grid"`
	Seeds     int         `json:"seeds"`
	Runs      int         `json:"runs"` // points scheduled, including cache hits
	Grid      []RatePoint `json:"grid"` // tested rates only; skipped rates are absent
}

// AgentState is the wire form of one vehicle's kinematic state for
// POST /v1/rate. Length and Width default to the passenger-car preset
// when zero.
type AgentState struct {
	ID      string  `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Heading float64 `json:"heading"` // radians CCW from +X
	Speed   float64 `json:"speed"`   // longitudinal, m/s
	Accel   float64 `json:"accel"`   // m/s², negative = braking
	LatVel  float64 `json:"lat_vel"` // left-positive, m/s
	Length  float64 `json:"length,omitempty"`
	Width   float64 `json:"width,omitempty"`
	Lane    int     `json:"lane,omitempty"`
	Static  bool    `json:"static,omitempty"`
}

// RateRequest is the body of POST /v1/rate: one kinematic snapshot,
// optionally with the per-camera rates currently operating (enabling
// the §3.2 safety check in the response).
type RateRequest struct {
	Time      float64            `json:"time"`
	Ego       AgentState         `json:"ego"`
	Actors    []AgentState       `json:"actors"`
	Operating map[string]float64 `json:"operating,omitempty"`
}

// RateAlarm is one camera operating below its estimated requirement.
type RateAlarm struct {
	Camera    string  `json:"camera"`
	Required  float64 `json:"required"`
	Operating float64 `json:"operating"`
}

// RateCheck is the §3.2 safety-check verdict on the posted operating
// rates.
type RateCheck struct {
	OK     bool        `json:"ok"`
	Action string      `json:"action"`
	Alarms []RateAlarm `json:"alarms,omitempty"`
}

// RateResponse is the body of POST /v1/rate: the raw Zhuyi per-camera
// estimates, their aggregates over the analyzed cameras, the
// controller's allocated rates (margin, floor, cap applied), and the
// safety check when operating rates were posted.
type RateResponse struct {
	Time      float64            `json:"time"`
	CameraFPR map[string]float64 `json:"camera_fpr"`
	SumFPR    float64            `json:"sum_fpr"`
	MaxFPR    float64            `json:"max_fpr"`
	Rates     map[string]float64 `json:"rates"`
	Check     *RateCheck         `json:"check,omitempty"`
}

// ScenariosResponse is the body of GET /v1/scenarios: the registered
// catalog, or a generated corpus when ?corpus=N is given.
type ScenariosResponse struct {
	Scenarios []scenario.Info `json:"scenarios"`
	// Generated is set when the listing is a procedural corpus rather
	// than the registry; Seed then records the generator seed.
	Generated bool  `json:"generated,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
}

// EngineStats mirrors engine.Stats over the wire.
type EngineStats struct {
	Executed    int64 `json:"executed"`
	CacheHits   int64 `json:"cache_hits"`
	DiskHits    int64 `json:"disk_hits"`
	Archived    int64 `json:"archived"`
	Failures    int64 `json:"failures"`
	StoreErrors int64 `json:"store_errors"`
	// ManifestHits counts queries answered from the store manifest
	// summary alone (no artifact decode, no simulation) — the fabric
	// coordinator's warm tier.
	ManifestHits int64 `json:"manifest_hits"`
	// ArchivePending is the depth of the asynchronous archive queue:
	// fresh results handed back to their waiters whose store write has
	// not yet landed on disk.
	ArchivePending int64 `json:"archive_pending"`
}

// ReplicaStats are one fabric replica's coordinator-side counters.
type ReplicaStats struct {
	URL string `json:"url"`
	// Healthy reflects the last delegation attempt: false after a
	// failed stream until a later attempt succeeds.
	Healthy bool `json:"healthy"`
	// Assigned counts campaign points partitioned to this replica
	// (retries of the same point onto another replica count there).
	Assigned int64 `json:"assigned"`
	// Completed counts point outcomes this replica streamed back.
	Completed int64 `json:"completed"`
	// Failures counts delegation attempts that errored (connection
	// refused, mid-stream death, timeout).
	Failures int64 `json:"failures"`
}

// FabricStats are the coordinator's fan-out counters, present on
// GET /v1/stats only in coordinator mode.
type FabricStats struct {
	Replicas []ReplicaStats `json:"replicas"`
	// Retried counts points re-partitioned onto the next replica on the
	// ring after their owner failed mid-campaign.
	Retried int64 `json:"retried"`
	// Proxied counts cold MRF searches delegated to a replica because
	// the shared manifest could not answer them.
	Proxied int64 `json:"proxied"`
	// RateLocal is the coordinator's own POST /v1/rate latency summary:
	// rate requests are answered locally, never delegated, so this block
	// stays live even when every replica is dead.
	RateLocal *EndpointLatency `json:"rate_local,omitempty"`
}

// EndpointLatency is one route's served-latency summary on GET
// /v1/stats: merged from the route's lock-free histogram shards, with
// quantiles reported as the upper bound of their log bucket (at most
// 12.5% above the true value). All durations are microseconds.
type EndpointLatency struct {
	Route  string  `json:"route"` // "METHOD /pattern", as in the route table
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// AdmissionStats reports the priority gate's activity: how many
// campaign-worker yields actually parked for rate traffic and their
// total parked time.
type AdmissionStats struct {
	RateInFlight int64   `json:"rate_in_flight"`
	Yields       uint64  `json:"yields"`
	WaitedMS     float64 `json:"waited_ms"`
}

// ServerStats are service-lifetime request counters.
type ServerStats struct {
	Requests       int64 `json:"requests"`
	Campaigns      int64 `json:"campaigns"`
	CampaignPoints int64 `json:"campaign_points"`
}

// StatsResponse is the body of GET /v1/stats: evidence of how the
// service is answering — fresh simulations versus memory and disk
// tiers — plus the attached store's manifest volume.
type StatsResponse struct {
	Workers int            `json:"workers"`
	Engine  EngineStats    `json:"engine"`
	Server  ServerStats    `json:"server"`
	Store   *store.Summary `json:"store,omitempty"`
	// Latency reports per-endpoint served-latency histograms (routes
	// with at least one request, in route-table order).
	Latency []EndpointLatency `json:"latency,omitempty"`
	// Admission reports the rate-priority gate, when one is attached.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Fabric is set only by a coordinator: per-replica health and
	// assignment counters plus retry/proxy totals.
	Fabric *FabricStats `json:"fabric,omitempty"`
}

// StoreResponse is the body of GET /v1/store.
type StoreResponse struct {
	Dir       string        `json:"dir"`
	Summary   store.Summary `json:"summary"`
	Baselines bool          `json:"baselines"` // baselines.jsonl present
}

// ManifestResponse is the body of GET /v1/store/manifest.
type ManifestResponse struct {
	Entries []store.Entry `json:"entries"`
}

// DiffResponse is the body of GET /v1/store/diff: the differential
// replay of every archived trace against the recorded baselines.
type DiffResponse struct {
	Runs        int      `json:"runs"`
	Baselines   int      `json:"baselines"`
	Clean       bool     `json:"clean"`
	Divergences []string `json:"divergences,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Route describes one endpoint: the docs/api.md reference is checked
// against this table, and the handler mux is built from it, so the
// three cannot drift apart.
type Route struct {
	Method  string `json:"method"`
	Pattern string `json:"pattern"`
	Summary string `json:"summary"`
}

// Routes returns the service's complete route table.
func Routes() []Route {
	return []Route{
		{"GET", "/healthz", "liveness probe; returns ok once the service accepts requests"},
		{"POST", "/v1/campaign", "run a batch of (scenario, FPR, seed) points; streams one NDJSON line per point as it completes, then a stats trailer"},
		{"GET", "/v1/mrf/{scenario}", "minimum-required-FPR search for one scenario (paper §4.2)"},
		{"POST", "/v1/rate", "online §3.2 rate estimate on a posted kinematic snapshot, with controller allocation and optional safety check"},
		{"GET", "/v1/scenarios", "registered scenario catalog, or a generated corpus with ?corpus=N&seed=S"},
		{"POST", "/v1/search", "adversarial scenario search: evolve spec families toward MRF-hard corpora; streams one NDJSON generation summary per (family, generation), then the hardest-N corpus"},
		{"GET", "/v1/stats", "engine and service counters: fresh runs vs memory/disk hits, store volume"},
		{"GET", "/v1/store", "attached persistent store: directory, manifest summary, baseline presence"},
		{"GET", "/v1/store/manifest", "manifest entries, optionally filtered by ?scenario="},
		{"GET", "/v1/store/peek", "one manifest entry by ?scenario=&fpr=&seed= without decoding its artifact"},
		{"GET", "/v1/store/diff", "differential replay of every archived trace against recorded baselines"},
	}
}

func outcomeToPointResult(i int, o engine.Outcome) PointResult {
	pr := PointResult{
		Index:    i,
		Scenario: o.Job.Scenario.Name,
		FPR:      o.Job.FPR,
		Seed:     o.Job.Seed,
		Source:   o.Source.String(),
	}
	if o.Err != nil {
		pr.Error = o.Err.Error()
		return pr
	}
	res := o.Result
	if res == nil {
		pr.Error = "no result"
		return pr
	}
	if res.Collision != nil {
		pr.Collided = true
		pr.CollisionTime = res.Collision.Time
		pr.CollisionActor = res.Collision.ActorID
	}
	pr.MinBumperGap = res.MinBumperGap
	if math.IsInf(res.MinBumperGap, 1) {
		pr.MinBumperGap, pr.MinGapInfinite = 0, true
	}
	pr.EgoStopped = res.EgoStopped
	pr.FramesProcessed = res.FramesProcessed
	if res.Trace != nil {
		pr.Rows = res.Trace.Len()
	}
	return pr
}

// EngineStatsToWire lifts engine counters to their wire form; the
// fabric coordinator shares it so its /v1/stats engine block cannot
// drift from a worker's.
func EngineStatsToWire(s engine.Stats) EngineStats {
	return EngineStats{
		Executed:       s.Executed,
		CacheHits:      s.CacheHits,
		DiskHits:       s.DiskHits,
		Archived:       s.Archived,
		Failures:       s.Failures,
		StoreErrors:    s.StoreErrors,
		ManifestHits:   s.ManifestHits,
		ArchivePending: s.ArchivePending,
	}
}

func statsToWire(s engine.CampaignStats) CampaignStats {
	return CampaignStats{
		Jobs:      s.Jobs,
		Executed:  s.Executed,
		CacheHits: s.CacheHits,
		DiskHits:  s.DiskHits,
		Failures:  s.Failures,
		Skipped:   s.Skipped,
		WallMS:    float64(s.Wall) / 1e6,
	}
}
