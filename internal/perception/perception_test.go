package perception

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/units"
	"repro/internal/world"
)

func frontCam() sensor.Camera {
	return sensor.Camera{Name: sensor.Front120, MountHeading: 0, FOV: units.DegToRad(120), Range: 150}
}

func egoAt(x float64) world.Agent {
	return world.Agent{ID: world.EgoID, Pose: geom.Pose{Pos: geom.V(x, 0)}, Length: 4.6, Width: 1.9}
}

func actorAt(id string, x, y, speed float64) world.Agent {
	return world.Agent{
		ID:     id,
		Pose:   geom.Pose{Pos: geom.V(x, y), Heading: 0},
		Speed:  speed,
		Length: 4.6,
		Width:  1.9,
	}
}

// noiseless returns a config with no measurement noise and guaranteed
// detection, isolating the confirmation/tracking logic under test.
func noiseless(k int) Config {
	cfg := DefaultConfig()
	cfg.ConfirmFrames = k
	cfg.DetectProb = 1
	cfg.PosNoise = 0
	cfg.VelNoise = 0
	return cfg
}

func TestConfirmationTakesKFrames(t *testing.T) {
	const k = 5
	p := NewPipeline(noiseless(k), 1)
	cam := frontCam()
	ego := egoAt(0)
	a := actorAt("a1", 40, 0, 10)

	frameInterval := 0.1
	for i := 0; i < k; i++ {
		tm := float64(i) * frameInterval
		if len(p.WorldModel(tm)) != 0 && i < k {
			t.Fatalf("track confirmed early at frame %d", i)
		}
		a.Pose.Pos.X = 40 + 10*tm
		p.ProcessFrame(cam, tm, ego, []world.Agent{a})
	}
	wm := p.WorldModel(0.5)
	if len(wm) != 1 {
		t.Fatalf("world model size = %d after %d frames", len(wm), k)
	}
	// Confirmation delay = (K-1) frame intervals from first sighting.
	if got := p.ConfirmationDelay("a1"); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("confirmation delay = %v, want 0.4", got)
	}
}

func TestConfirmationDelayScalesWithFrameInterval(t *testing.T) {
	for _, interval := range []float64{0.033, 0.1, 0.5, 1.0} {
		p := NewPipeline(noiseless(5), 1)
		cam := frontCam()
		ego := egoAt(0)
		for i := 0; i < 5; i++ {
			tm := float64(i) * interval
			a := actorAt("a1", 40+10*tm, 0, 10)
			p.ProcessFrame(cam, tm, ego, []world.Agent{a})
		}
		want := 4 * interval
		if got := p.ConfirmationDelay("a1"); math.Abs(got-want) > 1e-9 {
			t.Errorf("interval %v: delay = %v, want %v", interval, got, want)
		}
	}
}

func TestUnconfirmedConsecutiveRequirement(t *testing.T) {
	p := NewPipeline(noiseless(3), 1)
	cam := frontCam()
	ego := egoAt(0)
	a := actorAt("a1", 40, 0, 0)

	// Two detections, one miss (actor out of view), then more detections:
	// hits must restart.
	p.ProcessFrame(cam, 0.0, ego, []world.Agent{a})
	p.ProcessFrame(cam, 0.1, ego, []world.Agent{a})
	p.ProcessFrame(cam, 0.2, ego, []world.Agent{}) // miss
	p.ProcessFrame(cam, 0.3, ego, []world.Agent{a})
	p.ProcessFrame(cam, 0.4, ego, []world.Agent{a})
	if len(p.WorldModel(0.45)) != 0 {
		t.Fatal("confirmed despite interrupted detection streak")
	}
	p.ProcessFrame(cam, 0.5, ego, []world.Agent{a})
	if len(p.WorldModel(0.55)) != 1 {
		t.Fatal("not confirmed after 3 consecutive detections")
	}
}

func TestTrackDropsAfterMisses(t *testing.T) {
	cfg := noiseless(1)
	cfg.MaxMisses = 3
	p := NewPipeline(cfg, 1)
	cam := frontCam()
	ego := egoAt(0)
	a := actorAt("a1", 40, 0, 0)

	p.ProcessFrame(cam, 0, ego, []world.Agent{a})
	if len(p.WorldModel(0)) != 1 {
		t.Fatal("track not confirmed with K=1")
	}
	// The actor vanishes (e.g. leaves the scene) but its estimate stays in
	// FOV; after MaxMisses+1 missed frames the track drops.
	for i := 1; i <= 4; i++ {
		p.ProcessFrame(cam, float64(i)*0.1, ego, nil)
	}
	if len(p.WorldModel(0.5)) != 0 {
		t.Fatal("stale track not dropped")
	}
}

func TestTrackSurvivesOutOfFOV(t *testing.T) {
	cfg := noiseless(1)
	cfg.MaxMisses = 2
	p := NewPipeline(cfg, 1)
	front := frontCam()
	ego := egoAt(0)
	a := actorAt("a1", 40, 0, 0)
	p.ProcessFrame(front, 0, ego, []world.Agent{a})

	// Frames from a rear camera shouldn't penalize a front track.
	rear := sensor.Camera{Name: sensor.Rear, MountHeading: math.Pi, FOV: units.DegToRad(120), Range: 100}
	for i := 1; i <= 10; i++ {
		p.ProcessFrame(rear, float64(i)*0.1, ego, []world.Agent{a})
	}
	if len(p.WorldModel(1.1)) != 1 {
		t.Fatal("front track dropped by rear-camera frames")
	}
}

func TestTrackingEstimatesVelocity(t *testing.T) {
	p := NewPipeline(noiseless(1), 1)
	cam := frontCam()
	ego := egoAt(0)
	// Actor moving at 15 m/s; frames every 100 ms.
	for i := 0; i <= 20; i++ {
		tm := float64(i) * 0.1
		a := actorAt("a1", 40+15*tm, 0, 15)
		p.ProcessFrame(cam, tm, ego, []world.Agent{a})
	}
	wm := p.WorldModel(2.0)
	if len(wm) != 1 {
		t.Fatal("no track")
	}
	if math.Abs(wm[0].Speed-15) > 0.5 {
		t.Errorf("estimated speed = %v, want ~15", wm[0].Speed)
	}
	if math.Abs(wm[0].Pose.Pos.X-70) > 1.0 {
		t.Errorf("estimated x = %v, want ~70", wm[0].Pose.Pos.X)
	}
}

func TestCoastingBetweenFrames(t *testing.T) {
	p := NewPipeline(noiseless(1), 1)
	cam := frontCam()
	ego := egoAt(0)
	for i := 0; i <= 10; i++ {
		tm := float64(i) * 0.1
		a := actorAt("a1", 40+15*tm, 0, 15)
		p.ProcessFrame(cam, tm, ego, []world.Agent{a})
	}
	// Query half a second past the last frame: the estimate coasts.
	wm := p.WorldModel(1.5)
	if math.Abs(wm[0].Pose.Pos.X-(40+15*1.5)) > 1.5 {
		t.Errorf("coasted x = %v, want ~%v", wm[0].Pose.Pos.X, 40+15*1.5)
	}
}

func TestStalenessGrowsWithFrameInterval(t *testing.T) {
	// A lead actor starts braking hard at t=0. The planner consumes the
	// coasted world-model estimate continuously; its *overestimate* of the
	// lead's speed (perceived − true, positive part) integrated over the
	// braking period is the staleness that makes low FPR unsafe. It must
	// grow as the frame interval grows.
	lagFor := func(interval float64) float64 {
		p := NewPipeline(noiseless(1), 1)
		cam := frontCam()
		ego := egoAt(0)
		const decel = 6.0
		trueSpeed := func(t float64) float64 { return math.Max(0, 30-decel*t) }
		truePos := func(t float64) float64 {
			tStop := 30 / decel
			if t > tStop {
				t = tStop
			}
			return 60 + 30*t - 0.5*decel*t*t
		}
		// Warm up with two pre-braking frames so a track exists at t=0.
		p.ProcessFrame(cam, -2*interval, ego, []world.Agent{actorAt("a1", truePos(0)-30*2*interval, 0, 30)})
		p.ProcessFrame(cam, -interval, ego, []world.Agent{actorAt("a1", truePos(0)-30*interval, 0, 30)})
		next := 0.0
		sum := 0.0
		const dt = 0.01
		for tm := 0.0; tm <= 3.0; tm += dt {
			if tm >= next {
				p.ProcessFrame(cam, tm, ego, []world.Agent{actorAt("a1", truePos(tm), 0, trueSpeed(tm))})
				next += interval
			}
			wm := p.WorldModel(tm)
			if len(wm) == 1 {
				sum += math.Max(0, wm[0].Speed-trueSpeed(tm)) * dt
			}
		}
		return sum
	}
	lagFast := lagFor(0.033)
	lagSlow := lagFor(0.5)
	if !(lagSlow > lagFast) {
		t.Errorf("integrated speed overestimate at 2 FPR (%v) should exceed 30 FPR (%v)", lagSlow, lagFast)
	}
}

func TestDetectionNoiseSeeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectProb = 0.7
	run := func(seed int64) int {
		p := NewPipeline(cfg, seed)
		cam := frontCam()
		ego := egoAt(0)
		for i := 0; i < 50; i++ {
			p.ProcessFrame(cam, float64(i)*0.1, ego, []world.Agent{actorAt("a1", 40, 0, 0)})
		}
		return p.Detections
	}
	if run(1) != run(1) {
		t.Error("same seed produced different detection counts")
	}
	if run(1) == run(2) {
		// With 50 Bernoulli(0.7) trials, two seeds almost surely differ.
		t.Log("warning: two seeds produced identical detection counts (possible but unlikely)")
	}
}

func TestStaticObstacleState(t *testing.T) {
	p := NewPipeline(noiseless(1), 1)
	cam := frontCam()
	ego := egoAt(0)
	obs := world.Agent{ID: "obs", Pose: geom.Pose{Pos: geom.V(80, 0)}, Length: 4, Width: 1.9, Static: true}
	for i := 0; i < 5; i++ {
		p.ProcessFrame(cam, float64(i)*0.1, ego, []world.Agent{obs})
	}
	wm := p.WorldModel(0.5)
	if len(wm) != 1 {
		t.Fatal("no obstacle track")
	}
	if !wm[0].Static || wm[0].Speed > 0.3 {
		t.Errorf("static obstacle state = %+v", wm[0])
	}
}

func TestConfirmationDelayNaNWhenUnconfirmed(t *testing.T) {
	p := NewPipeline(noiseless(5), 1)
	if got := p.ConfirmationDelay("ghost"); !math.IsNaN(got) {
		t.Errorf("delay for unknown track = %v, want NaN", got)
	}
	cam := frontCam()
	p.ProcessFrame(cam, 0, egoAt(0), []world.Agent{actorAt("a1", 40, 0, 0)})
	if got := p.ConfirmationDelay("a1"); !math.IsNaN(got) {
		t.Errorf("delay for unconfirmed track = %v, want NaN", got)
	}
}

func TestTracksSorted(t *testing.T) {
	p := NewPipeline(noiseless(1), 1)
	cam := frontCam()
	ego := egoAt(0)
	p.ProcessFrame(cam, 0, ego, []world.Agent{
		actorAt("b", 40, 0, 0),
		actorAt("a", 50, 2, 0),
		actorAt("c", 60, -2, 0),
	})
	tracks := p.Tracks()
	if len(tracks) != 3 || tracks[0].ID != "a" || tracks[2].ID != "c" {
		t.Errorf("tracks order: %v, %v, %v", tracks[0].ID, tracks[1].ID, tracks[2].ID)
	}
	if _, ok := p.Track("b"); !ok {
		t.Error("Track(b) not found")
	}
}
