// Package perception simulates the AV's camera perception stack at the
// fidelity Zhuyi is sensitive to. Real DNN perception is replaced by a
// measurement model with the same latency structure (see DESIGN.md):
//
//   - each camera only produces measurements when a frame is processed,
//     so all tracks go stale between frames at low processing rates;
//   - a new object must be detected in K consecutive processed frames
//     before it is confirmed and exposed to the planner — the actor
//     confirmation delay the paper models as α = K·(l − l0);
//   - measurements carry seeded Gaussian noise and a detection
//     probability, producing the run-to-run variance the paper averages
//     over ten runs.
//
// Track states are estimated with an independent g-h-k (alpha-beta-gamma)
// filter per axis, so position, velocity, and acceleration estimates lag
// reality by an amount that grows as the frame interval grows.
package perception

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/world"
)

// Config tunes the simulated perception stack.
type Config struct {
	ConfirmFrames int     // K: consecutive detections to confirm a track
	MaxMisses     int     // processed-frame misses before a track drops
	DetectProb    float64 // per-frame detection probability of a visible actor
	PosNoise      float64 // std-dev of position measurement noise, m
	VelNoise      float64 // std-dev of velocity measurement noise, m/s
	Alpha         float64 // g-h-k position gain
	Beta          float64 // g-h-k velocity gain
	Gamma         float64 // g-h-k acceleration gain
	VelGain       float64 // direct velocity-measurement blend gain
	MaxAccelEst   float64 // clamp on the acceleration estimate, m/s²
}

// DefaultConfig matches the paper's perception parameters where given
// (K = 5) and uses typical tracker gains elsewhere.
func DefaultConfig() Config {
	return Config{
		ConfirmFrames: 5,
		MaxMisses:     8,
		DetectProb:    1.0,
		PosNoise:      0.25,
		VelNoise:      0.5,
		Alpha:         0.6,
		Beta:          0.4,
		Gamma:         0.08,
		VelGain:       0.5,
		MaxAccelEst:   12,
	}
}

// axisFilter is a g-h-k filter along one world axis.
type axisFilter struct {
	X, V, A float64
}

func (f *axisFilter) predict(dt float64) {
	f.X += f.V*dt + 0.5*f.A*dt*dt
	f.V += f.A * dt
}

// update fuses a position measurement z and a direct velocity
// measurement zv. The g-h-k position-residual gains divide by the frame
// interval, so with irregular schedules (dynamic frame rates) a short
// interval would amplify position noise into huge velocity/acceleration
// corrections; the direct velocity blend and the acceleration clamp
// keep the estimate physical.
func (f *axisFilter) update(z, zv, dt float64, cfg Config) {
	r := z - f.X
	f.X += cfg.Alpha * r
	if dt > 0 {
		f.V += cfg.Beta / dt * r
		f.A += 2 * cfg.Gamma / (dt * dt) * r
	}
	if cfg.VelGain > 0 {
		f.V += cfg.VelGain * (zv - f.V)
	}
	if cfg.MaxAccelEst > 0 {
		if f.A > cfg.MaxAccelEst {
			f.A = cfg.MaxAccelEst
		}
		if f.A < -cfg.MaxAccelEst {
			f.A = -cfg.MaxAccelEst
		}
	}
}

// Track is the pipeline's estimate of one actor.
type Track struct {
	ID          string
	Confirmed   bool
	Hits        int // consecutive detections while unconfirmed
	Misses      int // consecutive missed frames
	FirstSeen   float64
	ConfirmedAt float64
	LastUpdate  float64
	Length      float64
	Width       float64

	fx, fy axisFilter

	// Coasted-state memo: within one simulation step the same track is
	// queried at the same instant by several cameras' miss checks and
	// the world model; State is pure, so the pipeline caches it
	// (invalidated on every measurement update).
	cacheValid bool
	cacheT     float64
	cacheState world.Agent
}

// State coasts the track estimate to time t and returns it as an agent.
func (tk *Track) State(t float64) world.Agent {
	dt := t - tk.LastUpdate
	x := tk.fx
	y := tk.fy
	x.predict(dt)
	y.predict(dt)
	vel := geom.V(x.V, y.V)
	speed := vel.Len()
	heading := vel.Angle()
	if speed < 0.3 {
		heading = 0 // slow/static targets: keep a stable heading
	}
	// Longitudinal acceleration: projection of the estimated acceleration
	// onto the velocity direction (or its magnitude for slow targets).
	accel := geom.V(x.A, y.A).Dot(vel.Unit())
	if speed < 0.3 {
		accel = 0
	}
	return world.Agent{
		ID:     tk.ID,
		Pose:   geom.Pose{Pos: geom.V(x.X, y.X), Heading: heading},
		Speed:  speed,
		Accel:  accel,
		Length: tk.Length,
		Width:  tk.Width,
		Static: speed < 0.3,
	}
}

// Pipeline is the camera perception stack: it consumes processed frames
// and maintains the set of tracks that form the perceived world model.
type Pipeline struct {
	cfg Config
	rng *rand.Rand

	tracks map[string]*Track

	// Per-frame scratch, reused across ProcessFrame calls so the
	// simulator's hot loop does not allocate per frame.
	visScratch []world.Agent
	detScratch map[string]bool

	// Stats.
	FramesProcessed int
	Detections      int
	Confirmations   int
}

// NewPipeline builds a pipeline with the given config and noise seed.
func NewPipeline(cfg Config, seed int64) *Pipeline {
	return &Pipeline{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		tracks:     make(map[string]*Track),
		detScratch: make(map[string]bool),
	}
}

// ProcessFrame ingests one processed camera frame at time t. cam is the
// camera whose frame this is; ego is the ground-truth ego agent; actors
// are the ground-truth actors (the frame "sees" those inside the
// camera's FOV and not occluded).
func (p *Pipeline) ProcessFrame(cam sensor.Camera, t float64, ego world.Agent, actors []world.Agent) {
	p.FramesProcessed++
	p.visScratch = sensor.AppendVisible(p.visScratch[:0], cam, ego.Pose, actors)
	visible := p.visScratch
	clear(p.detScratch)
	detected := p.detScratch

	for _, a := range visible {
		if p.rng.Float64() > p.cfg.DetectProb {
			continue // missed detection
		}
		detected[a.ID] = true
		p.Detections++
		p.updateTrack(a, t)
	}

	// Tracks whose estimate lies in this camera's FOV but were not
	// detected this frame accumulate misses.
	cone := sensor.NewFrameCone(cam, ego.Pose)
	for id, tk := range p.tracks {
		if detected[id] {
			continue
		}
		est := p.stateAt(tk, t)
		if cone.CannotSee(est) || !cam.SeesAgent(ego.Pose, est) {
			continue // not this camera's responsibility
		}
		tk.Misses++
		if !tk.Confirmed {
			tk.Hits = 0 // confirmation requires consecutive detections
		}
		if tk.Misses > p.cfg.MaxMisses {
			delete(p.tracks, id)
		}
	}
}

func (p *Pipeline) updateTrack(a world.Agent, t float64) {
	zx := a.Pose.Pos.X + p.rng.NormFloat64()*p.cfg.PosNoise
	zy := a.Pose.Pos.Y + p.rng.NormFloat64()*p.cfg.PosNoise
	vel := a.Velocity()
	zvx := vel.X + p.rng.NormFloat64()*p.cfg.VelNoise
	zvy := vel.Y + p.rng.NormFloat64()*p.cfg.VelNoise

	tk, ok := p.tracks[a.ID]
	if !ok {
		tk = &Track{
			ID:        a.ID,
			FirstSeen: t,
			Length:    a.Length,
			Width:     a.Width,
			fx:        axisFilter{X: zx, V: zvx},
			fy:        axisFilter{X: zy, V: zvy},
		}
		tk.Hits = 1
		tk.LastUpdate = t
		p.tracks[a.ID] = tk
		p.maybeConfirm(tk, t)
		return
	}

	dt := t - tk.LastUpdate
	tk.fx.predict(dt)
	tk.fy.predict(dt)
	tk.fx.update(zx, zvx, dt, p.cfg)
	tk.fy.update(zy, zvy, dt, p.cfg)
	tk.LastUpdate = t
	tk.Misses = 0
	tk.cacheValid = false
	if !tk.Confirmed {
		tk.Hits++
		p.maybeConfirm(tk, t)
	}
}

// stateAt is Track.State memoized per (track, t): State is a pure
// function of the filter state, which only updateTrack mutates (it
// invalidates the memo), so the cached agent is exactly what State
// would recompute.
func (p *Pipeline) stateAt(tk *Track, t float64) world.Agent {
	if tk.cacheValid && tk.cacheT == t {
		return tk.cacheState
	}
	tk.cacheState = tk.State(t)
	tk.cacheT, tk.cacheValid = t, true
	return tk.cacheState
}

func (p *Pipeline) maybeConfirm(tk *Track, t float64) {
	if !tk.Confirmed && tk.Hits >= p.cfg.ConfirmFrames {
		tk.Confirmed = true
		tk.ConfirmedAt = t
		p.Confirmations++
	}
}

// WorldModel returns the perceived world model at time t: every
// confirmed track coasted to t. The result is sorted by ID for
// determinism.
func (p *Pipeline) WorldModel(t float64) []world.Agent {
	return p.WorldModelAppend(nil, t)
}

// WorldModelAppend is WorldModel appending into dst (reusing its
// backing array), so per-step callers — the simulator's perception
// stage — amortize the allocation to zero. Track IDs are unique, so
// the unstable sort is still deterministic.
func (p *Pipeline) WorldModelAppend(dst []world.Agent, t float64) []world.Agent {
	for _, tk := range p.tracks {
		if !tk.Confirmed {
			continue
		}
		dst = append(dst, p.stateAt(tk, t))
	}
	slices.SortFunc(dst, func(a, b world.Agent) int { return strings.Compare(a.ID, b.ID) })
	return dst
}

// Tracks returns all current tracks (confirmed or not), sorted by ID.
func (p *Pipeline) Tracks() []*Track {
	var out []*Track
	for _, tk := range p.tracks {
		out = append(out, tk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Track returns the track for the given actor ID, if present.
func (p *Pipeline) Track(id string) (*Track, bool) {
	tk, ok := p.tracks[id]
	return tk, ok
}

// ConfirmationDelay returns how long the given actor took from first
// sighting to confirmation, or NaN if it is not confirmed.
func (p *Pipeline) ConfirmationDelay(id string) float64 {
	tk, ok := p.tracks[id]
	if !ok || !tk.Confirmed {
		return math.NaN()
	}
	return tk.ConfirmedAt - tk.FirstSeen
}
