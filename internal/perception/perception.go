// Package perception simulates the AV's camera perception stack at the
// fidelity Zhuyi is sensitive to. Real DNN perception is replaced by a
// measurement model with the same latency structure (see DESIGN.md):
//
//   - each camera only produces measurements when a frame is processed,
//     so all tracks go stale between frames at low processing rates;
//   - a new object must be detected in K consecutive processed frames
//     before it is confirmed and exposed to the planner — the actor
//     confirmation delay the paper models as α = K·(l − l0);
//   - measurements carry seeded Gaussian noise and a detection
//     probability, producing the run-to-run variance the paper averages
//     over ten runs.
//
// Track states are estimated with an independent g-h-k (alpha-beta-gamma)
// filter per axis, so position, velocity, and acceleration estimates lag
// reality by an amount that grows as the frame interval grows.
package perception

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/sensor"
	"repro/internal/world"
)

// Config tunes the simulated perception stack.
type Config struct {
	ConfirmFrames int     // K: consecutive detections to confirm a track
	MaxMisses     int     // processed-frame misses before a track drops
	DetectProb    float64 // per-frame detection probability of a visible actor
	PosNoise      float64 // std-dev of position measurement noise, m
	VelNoise      float64 // std-dev of velocity measurement noise, m/s
	Alpha         float64 // g-h-k position gain
	Beta          float64 // g-h-k velocity gain
	Gamma         float64 // g-h-k acceleration gain
	VelGain       float64 // direct velocity-measurement blend gain
	MaxAccelEst   float64 // clamp on the acceleration estimate, m/s²
}

// DefaultConfig matches the paper's perception parameters where given
// (K = 5) and uses typical tracker gains elsewhere.
func DefaultConfig() Config {
	return Config{
		ConfirmFrames: 5,
		MaxMisses:     8,
		DetectProb:    1.0,
		PosNoise:      0.25,
		VelNoise:      0.5,
		Alpha:         0.6,
		Beta:          0.4,
		Gamma:         0.08,
		VelGain:       0.5,
		MaxAccelEst:   12,
	}
}

// axisFilter is a g-h-k filter along one world axis.
type axisFilter struct {
	X, V, A float64
}

func (f *axisFilter) predict(dt float64) {
	f.X += f.V*dt + 0.5*f.A*dt*dt
	f.V += f.A * dt
}

// update fuses a position measurement z and a direct velocity
// measurement zv. The g-h-k position-residual gains divide by the frame
// interval, so with irregular schedules (dynamic frame rates) a short
// interval would amplify position noise into huge velocity/acceleration
// corrections; the direct velocity blend and the acceleration clamp
// keep the estimate physical.
func (f *axisFilter) update(z, zv, dt float64, cfg Config) {
	r := z - f.X
	f.X += cfg.Alpha * r
	if dt > 0 {
		f.V += cfg.Beta / dt * r
		f.A += 2 * cfg.Gamma / (dt * dt) * r
	}
	if cfg.VelGain > 0 {
		f.V += cfg.VelGain * (zv - f.V)
	}
	if cfg.MaxAccelEst > 0 {
		if f.A > cfg.MaxAccelEst {
			f.A = cfg.MaxAccelEst
		}
		if f.A < -cfg.MaxAccelEst {
			f.A = -cfg.MaxAccelEst
		}
	}
}

// Track is the pipeline's estimate of one actor.
type Track struct {
	ID          string
	Confirmed   bool
	Hits        int // consecutive detections while unconfirmed
	Misses      int // consecutive missed frames
	FirstSeen   float64
	ConfirmedAt float64
	LastUpdate  float64
	Length      float64
	Width       float64

	fx, fy axisFilter

	// detected marks the track as measured in the frame being
	// processed (the per-frame scratch that used to live in a map).
	detected bool

	// Coasted-state memo: within one simulation step the same track is
	// queried at the same instant by several cameras' miss checks and
	// the world model; State is pure, so the pipeline caches it
	// (invalidated on every measurement update).
	cacheValid bool
	cacheT     float64
	cacheState world.Agent
}

// State coasts the track estimate to time t and returns it as an agent.
func (tk *Track) State(t float64) world.Agent {
	var a world.Agent
	tk.fillState(t, &a)
	return a
}

// fillState is State writing into dst in place — the per-step sweeps
// fill the track's own cache slot instead of copying the 112-byte
// agent through a return value.
func (tk *Track) fillState(t float64, dst *world.Agent) {
	dt := t - tk.LastUpdate
	x := tk.fx
	y := tk.fy
	x.predict(dt)
	y.predict(dt)
	vel := geom.V(x.V, y.V)
	speed := vel.Len()
	// Slow/static targets pin heading and acceleration to 0 (a stable
	// heading for near-stationary estimates), so their Atan2 and
	// acceleration projection are never computed at all — stationary
	// obstacles and stopped leads coast through this branch every step.
	heading, accel := 0.0, 0.0
	if speed >= 0.3 {
		heading = vel.Angle()
		// Longitudinal acceleration: projection of the estimated
		// acceleration onto the velocity direction. Scaling by the
		// already-computed length is exactly vel.Unit() — Unit
		// recomputes the identical Len — minus the second hypot.
		accel = geom.V(x.A, y.A).Dot(vel.Scale(1 / speed))
	}
	// Field writes instead of a composite literal: the literal builds a
	// 112-byte temporary and block-copies it into dst every call.
	dst.ID = tk.ID
	dst.Pose.Pos.X = x.X
	dst.Pose.Pos.Y = y.X
	dst.Pose.Heading = heading
	dst.Speed = speed
	dst.Accel = accel
	dst.LatVel = 0
	dst.Length = tk.Length
	dst.Width = tk.Width
	dst.Lane = 0
	dst.Static = speed < 0.3
}

// Pipeline is the camera perception stack: it consumes processed frames
// and maintains the set of tracks that form the perceived world model.
//
// Tracks live in a slice kept sorted by ID (scenes hold a handful of
// actors, so ordered linear scans beat map hashing and give the world
// model its deterministic order for free — the per-step hot path walks
// the slice without the per-frame map iteration and re-sort the map
// representation needed).
type Pipeline struct {
	cfg Config
	rng *rand.Rand

	tracks []*Track // ascending ID order

	// Per-frame scratch, reused across ProcessFrame calls so the
	// simulator's hot loop does not allocate per frame.
	visScratch []world.Agent

	// Stats.
	FramesProcessed int
	Detections      int
	Confirmations   int
}

// NewPipeline builds a pipeline with the given config and noise seed.
func NewPipeline(cfg Config, seed int64) *Pipeline {
	return &Pipeline{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// findTrack returns the track with the given ID, or nil plus the
// insertion index that keeps the slice sorted.
func (p *Pipeline) findTrack(id string) (*Track, int) {
	for i, tk := range p.tracks {
		if tk.ID == id {
			return tk, i
		}
		if tk.ID > id {
			return nil, i
		}
	}
	return nil, len(p.tracks)
}

func (p *Pipeline) insertTrack(at int, tk *Track) {
	p.tracks = append(p.tracks, nil)
	copy(p.tracks[at+1:], p.tracks[at:])
	p.tracks[at] = tk
}

// ProcessFrame ingests one processed camera frame at time t. cam is the
// camera whose frame this is; ego is the ground-truth ego agent; actors
// are the ground-truth actors (the frame "sees" those inside the
// camera's FOV and not occluded).
func (p *Pipeline) ProcessFrame(cam sensor.Camera, t float64, ego world.Agent, actors []world.Agent) {
	p.FramesProcessed++
	p.visScratch = sensor.AppendVisible(p.visScratch[:0], cam, ego.Pose, actors)
	for _, tk := range p.tracks {
		tk.detected = false
	}

	for _, a := range p.visScratch {
		if p.rng.Float64() > p.cfg.DetectProb {
			continue // missed detection
		}
		p.Detections++
		vel := a.Velocity()
		p.ingest(a.ID, a.Pose.Pos.X, a.Pose.Pos.Y, vel.X, vel.Y, a.Length, a.Width, t)
	}

	// Tracks whose estimate lies in this camera's FOV but were not
	// detected this frame accumulate misses.
	cone := sensor.NewFrameCone(cam, ego.Pose)
	kept := p.tracks[:0]
	for _, tk := range p.tracks {
		if tk.detected {
			kept = append(kept, tk)
			continue
		}
		est := p.ensureState(tk, t)
		if cone.CannotSee(*est) || !cam.SeesAgent(ego.Pose, *est) {
			kept = append(kept, tk) // not this camera's responsibility
			continue
		}
		if p.recordMiss(tk) {
			kept = append(kept, tk)
		}
	}
	p.clearTail(len(kept))
	p.tracks = kept
}

// ProcessFrameIdx is ProcessFrame over the structure-of-arrays world
// frame: visIdx holds the frame indices of the visible actors (from
// sensor.RigCones.AppendVisibleIdx), and the measurement and miss
// sweeps read the flat arrays and the precomputed cone table. The RNG
// draw order and every filter update are identical to ProcessFrame on
// the materialized agents.
func (p *Pipeline) ProcessFrameIdx(rc *sensor.RigCones, ci int, t float64, f *world.Frame, visIdx []int) {
	p.FramesProcessed++
	for _, tk := range p.tracks {
		tk.detected = false
	}

	for _, i := range visIdx {
		if p.rng.Float64() > p.cfg.DetectProb {
			continue // missed detection
		}
		p.Detections++
		vel := f.Velocity(i)
		p.ingest(f.IDs[i], f.X[i], f.Y[i], vel.X, vel.Y, f.Length[i], f.Width[i], t)
	}

	kept := p.tracks[:0]
	for _, tk := range p.tracks {
		if tk.detected {
			kept = append(kept, tk)
			continue
		}
		est := p.ensureState(tk, t)
		if !rc.SeesAgentAt(ci, est) {
			kept = append(kept, tk) // not this camera's responsibility
			continue
		}
		if p.recordMiss(tk) {
			kept = append(kept, tk)
		}
	}
	p.clearTail(len(kept))
	p.tracks = kept
}

// recordMiss applies one missed processed frame to the track and
// reports whether the track survives.
func (p *Pipeline) recordMiss(tk *Track) bool {
	tk.Misses++
	if !tk.Confirmed {
		tk.Hits = 0 // confirmation requires consecutive detections
	}
	return tk.Misses <= p.cfg.MaxMisses
}

// clearTail nils the dropped tail of the track slice so deleted tracks
// do not leak through the retained backing array.
func (p *Pipeline) clearTail(from int) {
	for i := from; i < len(p.tracks); i++ {
		p.tracks[i] = nil
	}
}

// ingest fuses one noisy measurement of actor id at (px,py) moving at
// (vx,vy) into its track, creating the track on first sight. The four
// NormFloat64 draws happen in the exact order the original
// agent-of-structs path made them.
func (p *Pipeline) ingest(id string, px, py, vx, vy, length, width, t float64) {
	zx := px + p.rng.NormFloat64()*p.cfg.PosNoise
	zy := py + p.rng.NormFloat64()*p.cfg.PosNoise
	zvx := vx + p.rng.NormFloat64()*p.cfg.VelNoise
	zvy := vy + p.rng.NormFloat64()*p.cfg.VelNoise

	tk, at := p.findTrack(id)
	if tk == nil {
		tk = &Track{
			ID:        id,
			FirstSeen: t,
			Length:    length,
			Width:     width,
			fx:        axisFilter{X: zx, V: zvx},
			fy:        axisFilter{X: zy, V: zvy},
		}
		tk.Hits = 1
		tk.LastUpdate = t
		tk.detected = true
		p.insertTrack(at, tk)
		p.maybeConfirm(tk, t)
		return
	}

	dt := t - tk.LastUpdate
	tk.fx.predict(dt)
	tk.fy.predict(dt)
	tk.fx.update(zx, zvx, dt, p.cfg)
	tk.fy.update(zy, zvy, dt, p.cfg)
	tk.LastUpdate = t
	tk.Misses = 0
	tk.detected = true
	tk.cacheValid = false
	if !tk.Confirmed {
		tk.Hits++
		p.maybeConfirm(tk, t)
	}
}

// stateAt is Track.State memoized per (track, t): State is a pure
// function of the filter state, which only updateTrack mutates (it
// invalidates the memo), so the cached agent is exactly what State
// would recompute.
func (p *Pipeline) stateAt(tk *Track, t float64) world.Agent {
	return *p.ensureState(tk, t)
}

// ensureState is stateAt returning the cache slot itself: callers that
// only read the estimate within the step (the miss sweeps, the world
// model scatter) skip the extra copy. The pointer is only valid until
// the track's next measurement update.
func (p *Pipeline) ensureState(tk *Track, t float64) *world.Agent {
	if !tk.cacheValid || tk.cacheT != t {
		tk.fillState(t, &tk.cacheState)
		tk.cacheT, tk.cacheValid = t, true
	}
	return &tk.cacheState
}

func (p *Pipeline) maybeConfirm(tk *Track, t float64) {
	if !tk.Confirmed && tk.Hits >= p.cfg.ConfirmFrames {
		tk.Confirmed = true
		tk.ConfirmedAt = t
		p.Confirmations++
	}
}

// WorldModel returns the perceived world model at time t: every
// confirmed track coasted to t. The result is sorted by ID for
// determinism.
func (p *Pipeline) WorldModel(t float64) []world.Agent {
	return p.WorldModelAppend(nil, t)
}

// WorldModelAppend is WorldModel appending into dst (reusing its
// backing array), so per-step callers — the simulator's perception
// stage — amortize the allocation to zero. The track slice is kept
// sorted by ID, so the walk emits the deterministic order directly.
func (p *Pipeline) WorldModelAppend(dst []world.Agent, t float64) []world.Agent {
	for _, tk := range p.tracks {
		if !tk.Confirmed {
			continue
		}
		// Fill the new slot directly instead of copying through the
		// track's coast cache: fillState writes every Agent field, and
		// on the common (non-frame-instant) step nothing else needs the
		// state at this t, so priming the cache would only add a
		// 112-byte copy. A cache already valid for t (primed by this
		// step's frame processing) is reused as before.
		n := len(dst)
		if n < cap(dst) {
			dst = dst[:n+1]
		} else {
			dst = append(dst, world.Agent{})
		}
		if tk.cacheValid && tk.cacheT == t {
			dst[n] = tk.cacheState
		} else {
			tk.fillState(t, &dst[n])
		}
	}
	return dst
}

// Tracks returns all current tracks (confirmed or not), sorted by ID.
func (p *Pipeline) Tracks() []*Track {
	if len(p.tracks) == 0 {
		return nil
	}
	out := make([]*Track, len(p.tracks))
	copy(out, p.tracks)
	return out
}

// Track returns the track for the given actor ID, if present.
func (p *Pipeline) Track(id string) (*Track, bool) {
	tk, _ := p.findTrack(id)
	return tk, tk != nil
}

// ConfirmationDelay returns how long the given actor took from first
// sighting to confirmation, or NaN if it is not confirmed.
func (p *Pipeline) ConfirmationDelay(id string) float64 {
	tk, _ := p.findTrack(id)
	if tk == nil || !tk.Confirmed {
		return math.NaN()
	}
	return tk.ConfirmedAt - tk.FirstSeen
}
